package filaments_test

import (
	"fmt"
	"sync"
	"testing"

	"filaments"
	"filaments/internal/apps/jacobi"
)

// These tests exercise the cluster's run-many lifecycle directly: one
// set of endpoints, many complete kernel stacks over them, sequentially
// (lane recycling) and concurrently (lane multiplexing). The service
// layer (internal/cluster/daemon) is built on exactly this contract.

func startCluster(t *testing.T, nodes int) *filaments.UDPCluster {
	t.Helper()
	cl, err := filaments.NewUDPCluster(filaments.UDPConfig{Nodes: nodes})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { cl.Close() })
	return cl
}

// runJacobi starts a run, executes jacobi on it, and verifies the grid
// bitwise against the reference. Errors are returned, not fataled, so
// it is callable from concurrent goroutines.
func runJacobi(cl *filaments.UDPCluster, n, iters int) (*filaments.UDPRun, error) {
	run, err := cl.StartRun(filaments.UDPRunConfig{Protocol: filaments.ImplicitInvalidate})
	if err != nil {
		return nil, err
	}
	rep, grid, err := jacobi.DFOn(jacobi.Config{N: n, Iters: iters}, run)
	if err != nil {
		return nil, err
	}
	want := jacobi.Reference(n, iters)
	for i := range want {
		for j := range want[i] {
			if grid[i][j] != want[i][j] {
				return nil, fmt.Errorf("grid[%d][%d] = %v, want %v", i, j, grid[i][j], want[i][j])
			}
		}
	}
	if out := run.Outstanding(); out != 0 {
		return nil, fmt.Errorf("%d requests outstanding after run", out)
	}
	if len(rep.Metrics) == 0 {
		return nil, fmt.Errorf("run has no metrics")
	}
	return run, nil
}

// TestUDPClusterSequentialRuns runs two programs back to back over the
// same endpoints. The second run must reuse the first's recycled lane —
// a long-lived daemon cycles through thousands of jobs on a bounded
// lane space — and still produce bitwise-correct results, proving the
// first run's service registrations and reply-cache state don't leak
// into its successor.
func TestUDPClusterSequentialRuns(t *testing.T) {
	cl := startCluster(t, 2)
	r1, err := runJacobi(cl, 32, 4)
	if err != nil {
		t.Fatal(err)
	}
	r2, err := runJacobi(cl, 24, 6)
	if err != nil {
		t.Fatal(err)
	}
	if r1.Lane() != r2.Lane() {
		t.Fatalf("sequential runs on lanes %d then %d: finished lane was not recycled", r1.Lane(), r2.Lane())
	}
	if err := cl.Close(); err != nil {
		t.Fatal(err)
	}
}

// TestUDPClusterConcurrentRuns executes two programs at the same time
// over the same endpoints, on distinct service-id lanes. Each has its
// own address space and kernel stack; the shared sockets multiplex both
// jobs' pages, barriers, and events without crosstalk.
func TestUDPClusterConcurrentRuns(t *testing.T) {
	cl := startCluster(t, 2)
	runs := make([]*filaments.UDPRun, 2)
	errs := make([]error, 2)
	sizes := []struct{ n, iters int }{{32, 6}, {48, 4}}
	var wg sync.WaitGroup
	for k := range runs {
		wg.Add(1)
		go func() {
			defer wg.Done()
			runs[k], errs[k] = runJacobi(cl, sizes[k].n, sizes[k].iters)
		}()
	}
	wg.Wait()
	for k, err := range errs {
		if err != nil {
			t.Fatalf("run %d: %v", k, err)
		}
	}
	if runs[0].Lane() == runs[1].Lane() {
		t.Fatalf("concurrent runs shared lane %d", runs[0].Lane())
	}
	if err := cl.Close(); err != nil {
		t.Fatal(err)
	}
}
