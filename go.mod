module filaments

go 1.22
