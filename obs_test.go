package filaments_test

import (
	"bytes"
	"sync"
	"testing"

	"filaments"
)

// pingPongProgram generates steady DSM traffic: every node writes its own
// strip, crosses a barrier, then reads a neighbor's strip (faulting the
// pages over), for several rounds. Shared by the race-hammer and
// trace-determinism tests below.
func pingPongProgram(m filaments.Matrix, rounds int) filaments.Program {
	return func(rt *filaments.Runtime, e *filaments.Exec) {
		id, p := rt.ID(), rt.Nodes()
		rowsPer := m.Rows / p
		lo := id * rowsPer
		for r := 0; r < rounds; r++ {
			for i := lo; i < lo+rowsPer; i++ {
				for j := 0; j < m.Cols; j++ {
					e.WriteF64(m.Addr(i, j), float64(r*1000+i+j))
				}
			}
			e.Barrier()
			peer := (id + 1) % p
			plo := peer * rowsPer
			sum := 0.0
			for i := plo; i < plo+rowsPer; i++ {
				for j := 0; j < m.Cols; j++ {
					sum += e.ReadF64(m.Addr(i, j))
				}
			}
			_ = sum
			e.Barrier()
		}
	}
}

// TestStatsDuringUDPRun reads every node's DSM and Runtime stats — and the
// cluster-wide metric aggregation — from a foreign goroutine while a
// real-time run is moving pages and crossing barriers. Before the
// observability layer, DSM.Stats and Runtime.Stats returned struct copies
// without any synchronization with the node monitor, and this test failed
// under -race; the counters are now lock-free atomics, so live snapshots
// are legal from any goroutine.
func TestStatsDuringUDPRun(t *testing.T) {
	const nodes = 3
	c, err := filaments.NewUDPCluster(filaments.UDPConfig{Nodes: nodes})
	if err != nil {
		t.Fatal(err)
	}
	m := c.AllocMatrixStriped(3*512, 4) // one page per row-group, striped
	stop := make(chan struct{})
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		for {
			select {
			case <-stop:
				return
			default:
			}
			for i := 0; i < nodes; i++ {
				_ = c.DSM(i).Stats()
				_ = c.Runtime(i).Stats()
			}
			_ = c.Metrics()
		}
	}()
	rep, err := c.Run(pingPongProgram(m, 4))
	close(stop)
	wg.Wait()
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Metrics) == 0 {
		t.Fatal("UDPReport.Metrics is empty")
	}
	var faults int64
	for _, s := range rep.Metrics {
		if s.Name == "dsm.read_faults" {
			faults = s.Value
		}
	}
	if faults == 0 {
		t.Error("aggregated dsm.read_faults is zero; the program should have faulted pages across nodes")
	}
}

// TestTraceDeterministicAcrossRuns runs the identical simulated program
// twice with tracing enabled and requires byte-identical Chrome trace JSON:
// the tracer is driven by the virtual clock, so a deterministic simulation
// must produce a deterministic trace.
func TestTraceDeterministicAcrossRuns(t *testing.T) {
	run := func() []byte {
		tr := filaments.NewTracer()
		c := filaments.New(filaments.Config{Nodes: 4, Seed: 42, Tracer: tr})
		m := c.AllocMatrixStriped(4*512, 4)
		if _, err := c.Run(pingPongProgram(m, 3)); err != nil {
			t.Fatal(err)
		}
		if tr.Len() == 0 {
			t.Fatal("trace is empty: no kernel events recorded")
		}
		var buf bytes.Buffer
		if err := tr.WriteJSON(&buf); err != nil {
			t.Fatal(err)
		}
		return buf.Bytes()
	}
	a, b := run(), run()
	if !bytes.Equal(a, b) {
		t.Fatalf("trace output differs between identical runs: %d vs %d bytes", len(a), len(b))
	}
}

// TestReportMetricsMatchStats cross-checks the new aggregated metrics
// against the legacy per-node Stats structs on the simulated binding: the
// summed dsm.* counters must equal the sums over Report.PerNode.
func TestReportMetricsMatchStats(t *testing.T) {
	c := filaments.New(filaments.Config{Nodes: 4, Seed: 7})
	m := c.AllocMatrixStriped(4*512, 4)
	rep, err := c.Run(pingPongProgram(m, 3))
	if err != nil {
		t.Fatal(err)
	}
	byName := map[string]int64{}
	for _, s := range rep.Metrics {
		byName[s.Name] = s.Value
	}
	var reads, writes, served int64
	for _, nr := range rep.PerNode {
		reads += nr.DSM.ReadFaults
		writes += nr.DSM.WriteFaults
		served += nr.DSM.Served
	}
	if byName["dsm.read_faults"] != reads {
		t.Errorf("dsm.read_faults = %d, PerNode sum = %d", byName["dsm.read_faults"], reads)
	}
	if byName["dsm.write_faults"] != writes {
		t.Errorf("dsm.write_faults = %d, PerNode sum = %d", byName["dsm.write_faults"], writes)
	}
	if byName["dsm.served"] != served {
		t.Errorf("dsm.served = %d, PerNode sum = %d", byName["dsm.served"], served)
	}
}
