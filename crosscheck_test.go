package filaments_test

import (
	"testing"

	"filaments"
	"filaments/internal/apps/jacobi"
	"filaments/internal/apps/matmul"
)

// TestProtocolCrossCheck runs jacobi and matmul under every page
// consistency protocol on BOTH bindings — the deterministic simulation
// and the real-time UDP cluster — and requires bitwise-identical results
// against the sequential reference, plus a fully quiesced transport
// (Outstanding() == 0) after every run. The protocols move pages in
// completely different patterns (migration vs read-replication vs
// implicit invalidation), but both programs compute each output word
// from identical inputs in identical FP order, so any difference at all
// is a coherence bug, not roundoff.
func TestProtocolCrossCheck(t *testing.T) {
	const nodes = 2
	protos := []filaments.Protocol{
		filaments.Migratory, filaments.WriteInvalidate, filaments.ImplicitInvalidate,
		filaments.LazyRelease,
	}

	t.Run("jacobi", func(t *testing.T) {
		const n, iters = 32, 3
		want := jacobi.Reference(n, iters)
		for _, proto := range protos {
			proto := proto
			t.Run(proto.String(), func(t *testing.T) {
				cfg := jacobi.Config{N: n, Iters: iters, Nodes: nodes}
				if proto == filaments.Migratory {
					cfg.UseMigratory = true
				} else {
					cfg.Protocol = proto
				}
				_, simGrid, cl := jacobi.DF(cfg)
				compareGrids(t, "sim", simGrid, want)
				if out := cl.Outstanding(); out != 0 {
					t.Errorf("sim cluster has %d outstanding requests after Run", out)
				}
				_, udpGrid, ucl, err := jacobi.DFUDP(cfg)
				if err != nil {
					t.Fatal(err)
				}
				compareGrids(t, "udp", udpGrid, want)
				if out := ucl.Outstanding(); out != 0 {
					t.Errorf("udp cluster has %d outstanding requests after Run", out)
				}
			})
		}
	})

	// The -codec=gob fallback must stay usable for one release, and page
	// diffs must be strictly optional: one leg runs the legacy wire path
	// (gob framing, whole pages) end to end.
	t.Run("jacobi-gob-fallback", func(t *testing.T) {
		const n, iters = 32, 3
		want := jacobi.Reference(n, iters)
		cfg := jacobi.Config{
			N: n, Iters: iters, Nodes: nodes,
			Protocol: filaments.ImplicitInvalidate,
			Tuning:   filaments.UDPTuning{Codec: "gob", NoDiffs: true},
		}
		_, udpGrid, ucl, err := jacobi.DFUDP(cfg)
		if err != nil {
			t.Fatal(err)
		}
		compareGrids(t, "udp-gob", udpGrid, want)
		if out := ucl.Outstanding(); out != 0 {
			t.Errorf("udp cluster has %d outstanding requests after Run", out)
		}
	})

	t.Run("matmul", func(t *testing.T) {
		const n = 32
		want := matmul.Reference(n)
		for _, proto := range protos {
			proto := proto
			t.Run(proto.String(), func(t *testing.T) {
				cfg := matmul.Config{N: n, Nodes: nodes}
				if proto == filaments.Migratory {
					cfg.UseMigratory = true
				} else {
					cfg.Protocol = proto
				}
				_, simC, cl := matmul.DF(cfg)
				compareGrids(t, "sim", simC, want)
				if out := cl.Outstanding(); out != 0 {
					t.Errorf("sim cluster has %d outstanding requests after Run", out)
				}
				_, udpC, ucl, err := matmul.DFUDP(cfg)
				if err != nil {
					t.Fatal(err)
				}
				compareGrids(t, "udp", udpC, want)
				if out := ucl.Outstanding(); out != 0 {
					t.Errorf("udp cluster has %d outstanding requests after Run", out)
				}
			})
		}
	})
}

func compareGrids(t *testing.T, binding string, got, want [][]float64) {
	t.Helper()
	if len(got) != len(want) {
		t.Fatalf("%s: %d rows, want %d", binding, len(got), len(want))
	}
	bad := 0
	for i := range want {
		for j := range want[i] {
			if got[i][j] != want[i][j] {
				if bad == 0 {
					t.Errorf("%s: [%d][%d] = %v, want %v (bitwise)", binding, i, j, got[i][j], want[i][j])
				}
				bad++
			}
		}
	}
	if bad > 1 {
		t.Errorf("%s: %d words differ in total", binding, bad)
	}
}
