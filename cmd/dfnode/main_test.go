package main

import (
	"bytes"
	"context"
	"flag"
	"fmt"
	"net"
	"os"
	"os/exec"
	"strings"
	"testing"
	"time"
)

// TestHelperProcess is not a test: re-executed with DFNODE_HELPER_PROCESS
// set, it becomes the dfnode binary (the arguments after "--" are dfnode's
// flags). This lets the smoke test below spawn real dfnode processes
// without building a separate binary.
func TestHelperProcess(t *testing.T) {
	if os.Getenv("DFNODE_HELPER_PROCESS") != "1" {
		return
	}
	args := os.Args
	for i, a := range args {
		if a == "--" {
			args = args[i+1:]
			break
		}
	}
	os.Args = append([]string{"dfnode"}, args...)
	flag.CommandLine = flag.NewFlagSet("dfnode", flag.ExitOnError)
	main()
	os.Exit(0)
}

// freePorts reserves n distinct loopback UDP ports by binding ephemeral
// sockets, then releases them for the child processes to rebind.
func freePorts(t *testing.T, n int) []int {
	t.Helper()
	ports := make([]int, n)
	conns := make([]*net.UDPConn, n)
	for i := range ports {
		c, err := net.ListenUDP("udp", &net.UDPAddr{IP: net.IPv4(127, 0, 0, 1)})
		if err != nil {
			t.Fatal(err)
		}
		conns[i] = c
		ports[i] = c.LocalAddr().(*net.UDPAddr).Port
	}
	for _, c := range conns {
		c.Close()
	}
	return ports
}

// TestTwoProcessJacobi runs the DF Jacobi program across two separate OS
// processes talking over loopback UDP. Each process verifies the final
// grid against the sequential reference in-program (the mismatch count is
// reduced across the cluster), so a clean "RESULT OK" from both is an
// end-to-end check of the real-time binding: sockets, retransmission,
// page migration, barriers, and reductions between address spaces.
func TestTwoProcessJacobi(t *testing.T) {
	ports := freePorts(t, 2)
	peers := fmt.Sprintf("127.0.0.1:%d,127.0.0.1:%d", ports[0], ports[1])

	ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
	defer cancel()
	var outs [2]bytes.Buffer
	var cmds [2]*exec.Cmd
	for id := range cmds {
		cmd := exec.CommandContext(ctx, os.Args[0], "-test.run=^TestHelperProcess$", "--",
			"-id", fmt.Sprint(id), "-nodes", "2", "-peers", peers,
			"-n", "32", "-iters", "4", "-v")
		cmd.Env = append(os.Environ(), "DFNODE_HELPER_PROCESS=1")
		cmd.Stdout = &outs[id]
		cmd.Stderr = &outs[id]
		if err := cmd.Start(); err != nil {
			t.Fatal(err)
		}
		cmds[id] = cmd
	}
	for id, cmd := range cmds {
		if err := cmd.Wait(); err != nil {
			t.Errorf("node %d exited: %v\n%s", id, err, outs[id].String())
			continue
		}
		if !strings.Contains(outs[id].String(), "RESULT OK") {
			t.Errorf("node %d did not report RESULT OK:\n%s", id, outs[id].String())
		}
	}
}
