// dfnode runs ONE node of a multi-process DF cluster over real UDP. Start
// one process per node with the same -nodes, -peers, and problem flags;
// each binds the peer address at its own -id and they find each other over
// the wire. The program verifies its own result: every node checks its
// strip of the final grid against the sequential reference, the mismatch
// counts are combined by a reduction, and every process prints RESULT OK
// (or RESULT MISMATCH n and a non-zero exit).
//
// Two-node Jacobi on loopback:
//
//	dfnode -id 0 -nodes 2 -peers 127.0.0.1:9800,127.0.0.1:9801 &
//	dfnode -id 1 -nodes 2 -peers 127.0.0.1:9800,127.0.0.1:9801
package main

import (
	"flag"
	"fmt"
	"net/http"
	_ "net/http/pprof" // -http serves the standard profiling endpoints
	"os"
	"strings"

	"filaments"
	"filaments/internal/apps/jacobi"
)

func main() {
	var (
		id    = flag.Int("id", 0, "this node's identity, in [0, nodes)")
		nodes = flag.Int("nodes", 2, "cluster size")
		peers = flag.String("peers", "", "comma-separated node addresses, indexed by id (entry id is this node's bind address)")
		app   = flag.String("app", "jacobi", "application: jacobi")
		n     = flag.Int("n", 64, "problem dimension")
		iters = flag.Int("iters", 8, "jacobi iterations")
		proto = flag.String("protocol", "", "DSM protocol override: migratory | wi | ii")
		hAddr = flag.String("http", "", "serve pprof (/debug/pprof/) and live counters (/metrics) on this address, e.g. 127.0.0.1:6060")
		v     = flag.Bool("v", false, "print per-node counters")
	)
	flag.Parse()

	protocol := filaments.Migratory
	switch *proto {
	case "", "migratory":
	case "wi":
		protocol = filaments.WriteInvalidate
	case "ii":
		protocol = filaments.ImplicitInvalidate
	default:
		fail("unknown -protocol %q", *proto)
	}

	addrs := strings.Split(*peers, ",")
	if *peers == "" || len(addrs) != *nodes {
		fail("-peers must list exactly -nodes addresses (got %d for %d nodes)", len(addrs), *nodes)
	}

	if *app != "jacobi" {
		fail("only -app jacobi runs multi-process; %q is unsupported", *app)
	}

	u, err := filaments.NewUDPNode(filaments.UDPNodeConfig{
		ID:       *id,
		Nodes:    *nodes,
		Peers:    addrs,
		Protocol: protocol,
	})
	if err != nil {
		fail("%v", err)
	}
	if *hAddr != "" {
		// The node's counters are lock-free atomics, so /metrics reads
		// them live while the run is in progress. pprof registers itself
		// on the default mux via the blank import.
		http.HandleFunc("/metrics", func(w http.ResponseWriter, _ *http.Request) {
			w.Header().Set("Content-Type", "text/plain; version=0.0.4")
			for _, s := range u.Metrics() {
				fmt.Fprintf(w, "df_%s %d\n", strings.ReplaceAll(s.Name, ".", "_"), s.Value)
			}
		})
		go func() {
			if err := http.ListenAndServe(*hAddr, nil); err != nil {
				fmt.Fprintf(os.Stderr, "dfnode: http: %v\n", err)
			}
		}()
	}
	rep, mismatches, err := jacobi.DFNode(jacobi.Config{N: *n, Iters: *iters, Nodes: *nodes, Protocol: protocol}, u)
	if err != nil {
		fail("%v", err)
	}

	if *v {
		fmt.Printf("node %d: %d faults, %d pages served, %d requests, %d retransmits\n",
			*id, rep.DSM.ReadFaults+rep.DSM.WriteFaults, rep.DSM.Served,
			rep.Transport.RequestsSent, rep.Transport.Retransmits)
	}
	if mismatches != 0 {
		fmt.Printf("RESULT MISMATCH %d\n", mismatches)
		os.Exit(1)
	}
	fmt.Println("RESULT OK")
}

func fail(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "dfnode: "+format+"\n", args...)
	os.Exit(1)
}
