// dfnode is the cluster's node daemon, in one of three modes.
//
// One-shot (the default): run ONE node of a multi-process DF cluster
// over real UDP. Start one process per node with the same -nodes,
// -peers, and problem flags; each binds the peer address at its own -id
// and they find each other over the wire. The program verifies its own
// result: every node checks its strip of the final grid against the
// sequential reference, the mismatch counts are combined by a
// reduction, and every process prints RESULT OK (or RESULT MISMATCH n
// and a non-zero exit).
//
//	dfnode -id 0 -nodes 2 -peers 127.0.0.1:9800,127.0.0.1:9801 &
//	dfnode -id 1 -nodes 2 -peers 127.0.0.1:9800,127.0.0.1:9801
//
// Coordinator (-coordinator): run the service layer. The process hosts
// the compute cluster (-nodes live endpoints), owns the membership
// table, and serves the REST job API on -http: POST /jobs to submit,
// GET /jobs/{id} to poll, GET /cluster for the membership view. See
// "Running as a service" in the README.
//
//	dfnode -coordinator -nodes 4 -http 127.0.0.1:8080
//
// Worker (-join): join a coordinator's membership and heartbeat until
// terminated, leaving cleanly on SIGINT/SIGTERM. Combine with the
// one-shot flags to run a compute epoch while enrolled, or use it bare
// as a standby member.
//
// All modes shut down on SIGINT/SIGTERM by releasing their resources in
// order — stop accepting work, leave the membership, close the UDP
// endpoints, stop the HTTP server — rather than exiting mid-epoch with
// sockets and memberships dangling.
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"net"
	"net/http"
	_ "net/http/pprof" // -http serves the standard profiling endpoints
	"os"
	"os/signal"
	"strings"
	"sync/atomic"
	"syscall"
	"time"

	"filaments"
	"filaments/internal/apps/jacobi"
	"filaments/internal/cluster/daemon"
)

func main() {
	os.Exit(run())
}

// run is the real main: every path returns an exit code through here,
// so deferred cleanup (sockets, memberships, HTTP listeners) always
// executes — os.Exit never skips it mid-epoch.
func run() int {
	var (
		coord = flag.Bool("coordinator", false, "run the service coordinator: host the compute cluster, the membership table, and the REST job API on -http")
		join  = flag.String("join", "", "join the coordinator at this address as a cluster member (host:port of its membership endpoint)")
		id    = flag.Int("id", 0, "this node's identity, in [0, nodes)")
		nodes = flag.Int("nodes", 2, "cluster size")
		peers = flag.String("peers", "", "comma-separated node addresses, indexed by id (entry id is this node's bind address)")
		app   = flag.String("app", "jacobi", "application: jacobi")
		n     = flag.Int("n", 64, "problem dimension")
		iters = flag.Int("iters", 8, "jacobi iterations")
		proto = flag.String("protocol", "", "DSM protocol override: migratory | wi | ii")
		jobs  = flag.Int("jobs", 2, "coordinator: max concurrently running jobs")
		hAddr = flag.String("http", "", "serve HTTP on this address: pprof (/debug/pprof/) and /metrics; with -coordinator, the job API (default 127.0.0.1:8080)")
		v     = flag.Bool("v", false, "print per-node counters")
	)
	flag.Parse()

	if *coord {
		addr := *hAddr
		if addr == "" {
			addr = "127.0.0.1:8080"
		}
		return runCoordinator(addr, *nodes, *jobs)
	}

	protocol := filaments.Migratory
	switch *proto {
	case "", "migratory":
	case "wi":
		protocol = filaments.WriteInvalidate
	case "ii":
		protocol = filaments.ImplicitInvalidate
	default:
		return fail("unknown -protocol %q", *proto)
	}
	return runNode(nodeFlags{
		join: *join, id: *id, nodes: *nodes, peers: *peers,
		app: *app, n: *n, iters: *iters, protocol: protocol,
		hAddr: *hAddr, verbose: *v,
	})
}

func fail(format string, args ...any) int {
	fmt.Fprintf(os.Stderr, "dfnode: "+format+"\n", args...)
	return 1
}

// serveHTTP binds addr synchronously — a bad address or an occupied
// port is a startup failure the operator sees immediately, not a
// message lost on stderr while the process runs on without its
// endpoints — and serves handler until Shutdown. Serve errors arrive on
// the returned channel.
func serveHTTP(addr string, handler http.Handler) (*http.Server, net.Addr, <-chan error, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, nil, nil, err
	}
	srv := &http.Server{Handler: handler}
	errc := make(chan error, 1)
	go func() { errc <- srv.Serve(ln) }()
	return srv, ln.Addr(), errc, nil
}

func shutdownHTTP(srv *http.Server) {
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	srv.Shutdown(ctx) //nolint:errcheck // best-effort drain on the way out
}

// runCoordinator hosts the service: compute cluster + membership + job
// API, until SIGINT/SIGTERM.
func runCoordinator(httpAddr string, nodes, maxJobs int) int {
	co, err := daemon.NewCoordinator(daemon.Config{Nodes: nodes, MaxConcurrent: maxJobs})
	if err != nil {
		return fail("%v", err)
	}
	defer co.Close() //nolint:errcheck // second Close on the signal path is a no-op

	mux := http.NewServeMux()
	mux.Handle("/", co.Handler())
	mux.Handle("/debug/pprof/", http.DefaultServeMux)
	srv, addr, errc, err := serveHTTP(httpAddr, mux)
	if err != nil {
		return fail("http: %v", err)
	}
	fmt.Printf("dfnode: coordinator serving on http://%s (cluster %s, %d nodes, %d job slots)\n",
		addr, co.Addr(), nodes, maxJobs)

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, syscall.SIGINT, syscall.SIGTERM)
	select {
	case err := <-errc:
		// The API listener died under us; the service is headless, so
		// stop — through the same ordered shutdown as a signal.
		shutdownHTTP(srv)
		if cerr := co.Close(); cerr != nil {
			return fail("http: %v; close: %v", err, cerr)
		}
		return fail("http: %v", err)
	case s := <-sig:
		fmt.Printf("dfnode: %v: draining jobs and shutting down\n", s)
		shutdownHTTP(srv)
		if err := co.Close(); err != nil {
			return fail("close: %v", err)
		}
		fmt.Println("dfnode: coordinator shut down cleanly")
		return 0
	}
}

type nodeFlags struct {
	join       string
	id, nodes  int
	peers, app string
	n, iters   int
	protocol   filaments.Protocol
	hAddr      string
	verbose    bool
}

// runNode is the one-shot compute node, optionally enrolled in a
// coordinator's membership for its lifetime.
func runNode(f nodeFlags) int {
	addrs := strings.Split(f.peers, ",")
	if f.peers == "" || len(addrs) != f.nodes {
		return fail("-peers must list exactly -nodes addresses (got %d for %d nodes)", len(addrs), f.nodes)
	}
	if f.app != "jacobi" {
		return fail("only -app jacobi runs multi-process; %q is unsupported", f.app)
	}

	u, err := filaments.NewUDPNode(filaments.UDPNodeConfig{
		ID:       f.id,
		Nodes:    f.nodes,
		Peers:    addrs,
		Protocol: f.protocol,
		// With -join, the membership Leave must go out over this socket
		// after the epoch; the deferred Closes below run agent-then-node.
		KeepOpen: f.join != "",
	})
	if err != nil {
		return fail("%v", err)
	}
	defer u.Close()

	var agent *daemon.Agent
	if f.join != "" {
		// Membership traffic shares the kernel endpoint: one socket, one
		// identity. Deregistration rides the deferred Close paths below.
		agent, err = daemon.NewAgent(f.join, u.Endpoint())
		if err != nil {
			return fail("%v", err)
		}
		agent.Start()
		defer agent.Close()
	}

	// /metrics declares itself unready (503, JSON error body) until the
	// node is actually serving; scrapers distinguish "starting" from
	// "broken" by status, not by absence.
	var ready atomic.Bool
	if f.hAddr != "" {
		http.HandleFunc("/metrics", func(w http.ResponseWriter, _ *http.Request) {
			if !ready.Load() {
				w.Header().Set("Content-Type", "application/json")
				w.WriteHeader(http.StatusServiceUnavailable)
				json.NewEncoder(w).Encode(map[string]string{ //nolint:errcheck // client went away
					"error": "node is not serving yet",
				})
				return
			}
			var gen uint64
			if agent != nil {
				gen = agent.Generation()
			}
			// The node's counters are lock-free atomics, so this reads
			// them live while the run is in progress.
			w.Header().Set("Content-Type", "text/plain; version=0.0.4")
			fmt.Fprintf(w, "df_membership_generation %d\n", gen)
			for _, s := range u.Metrics() {
				fmt.Fprintf(w, "df_%s %d\n", strings.ReplaceAll(s.Name, ".", "_"), s.Value)
			}
		})
		srv, _, errc, err := serveHTTP(f.hAddr, nil) // nil: the default mux (pprof + /metrics)
		if err != nil {
			return fail("http: %v", err)
		}
		defer shutdownHTTP(srv)
		go func() {
			if err := <-errc; err != nil && err != http.ErrServerClosed {
				fmt.Fprintf(os.Stderr, "dfnode: http: %v\n", err)
			}
		}()
	}
	ready.Store(true)

	type outcome struct {
		rep        *filaments.UDPNodeReport
		mismatches int
		err        error
	}
	done := make(chan outcome, 1)
	go func() {
		rep, mismatches, err := jacobi.DFNode(jacobi.Config{
			N: f.n, Iters: f.iters, Nodes: f.nodes, Protocol: f.protocol,
		}, u)
		done <- outcome{rep, mismatches, err}
	}()

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, syscall.SIGINT, syscall.SIGTERM)
	var out outcome
	select {
	case out = <-done:
	case s := <-sig:
		// Mid-epoch termination: leave the membership and release the
		// socket (the deferred agent.Close and u.Close), then report the
		// interruption honestly instead of os.Exit-ing around cleanup.
		fmt.Fprintf(os.Stderr, "dfnode: %v: leaving membership and closing endpoint\n", s)
		u.Close()
		select {
		case <-done: // the run noticed the closed endpoint
		case <-time.After(5 * time.Second):
		}
		return fail("interrupted mid-epoch by %v", s)
	}
	if out.err != nil {
		return fail("%v", out.err)
	}

	if f.verbose {
		rep := out.rep
		fmt.Printf("node %d: %d faults, %d pages served, %d requests, %d retransmits\n",
			f.id, rep.DSM.ReadFaults+rep.DSM.WriteFaults, rep.DSM.Served,
			rep.Transport.RequestsSent, rep.Transport.Retransmits)
	}
	if out.mismatches != 0 {
		fmt.Printf("RESULT MISMATCH %d\n", out.mismatches)
		return 1
	}
	fmt.Println("RESULT OK")
	return 0
}
