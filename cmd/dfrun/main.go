// dfrun executes one application/variant combination and prints its
// timing and per-node counters. The default -transport=sim runs on the
// simulated cluster (virtual time); -transport=udp runs the same node
// program over real loopback UDP endpoints, one per node, in this process
// (wall-clock time; see cmd/dfnode for the multi-process form).
//
// Usage:
//
//	dfrun -app jacobi -variant df -nodes 8
//	dfrun -app jacobi -variant df -nodes 4 -transport udp
//	dfrun -app matmul -variant cg -nodes 4 -n 256
//	dfrun -app quadrature -variant bag -nodes 8
//	dfrun -app exprtree -variant df -nodes 8 -protocol migratory
package main

import (
	"flag"
	"fmt"
	"os"

	"filaments"
	"filaments/internal/apps/exprtree"
	"filaments/internal/apps/fft"
	"filaments/internal/apps/jacobi"
	"filaments/internal/apps/matmul"
	"filaments/internal/apps/mergesort"
	"filaments/internal/apps/quadrature"
	"filaments/internal/threads"
)

// main is the only caller of os.Exit: every error path returns through
// realMain, so the UDP variants' teardown (endpoint close, the
// Outstanding()==0 quiescence check inside UDPRun.Run) always executes
// before the process exits. The previous structure called os.Exit(1)
// from arbitrary depths, skipping both.
func main() {
	if err := realMain(); err != nil {
		fmt.Fprintf(os.Stderr, "dfrun: %v\n", err)
		os.Exit(1)
	}
}

func realMain() error {
	var (
		app     = flag.String("app", "jacobi", "application: matmul | jacobi | quadrature | exprtree | fft | mergesort")
		variant = flag.String("variant", "df", "variant: seq | cg | df | bag (quadrature only)")
		nodes   = flag.Int("nodes", 8, "cluster size")
		n       = flag.Int("n", 0, "problem dimension (0 = paper default)")
		iters   = flag.Int("iters", 0, "jacobi iterations (0 = paper default)")
		height  = flag.Int("height", 0, "exprtree height (0 = paper default)")
		leaf    = flag.Int("leaf", 0, "fft/mergesort sequential-leaf size (0 = paper default)")
		tol     = flag.Float64("tol", 0, "quadrature tolerance (0 = paper default)")
		proto   = flag.String("protocol", "", "DSM protocol override: migratory | wi | ii | lrc")
		trans   = flag.String("transport", "sim", "binding: sim (virtual time) | udp (real loopback endpoints)")
		codec   = flag.String("codec", "binary", "UDP wire codec: binary | gob (previous release's framing)")
		noDiffs = flag.Bool("nodiffs", false, "disable twin-and-diff page shipping over UDP")
		trace   = flag.String("trace", "", "write a Chrome trace-event JSON file (DF variants; load in about:tracing or Perfetto)")
		metrics = flag.Bool("metrics", false, "print the cluster-wide metric aggregation after the run")
		verbose = flag.Bool("v", false, "per-node counters")
	)
	flag.Parse()

	var tracer *filaments.Tracer
	if *trace != "" {
		tracer = filaments.NewTracer()
	}

	protocol := filaments.Migratory // zero value: app defaults apply
	switch *proto {
	case "":
	case "migratory":
		protocol = filaments.Migratory
	case "wi":
		protocol = filaments.WriteInvalidate
	case "ii":
		protocol = filaments.ImplicitInvalidate
	case "lrc", "lazy-release":
		protocol = filaments.LazyRelease
	default:
		return fmt.Errorf("unknown -protocol %q", *proto)
	}

	switch *trans {
	case "sim":
	case "udp":
		tuning := filaments.UDPTuning{Codec: *codec, NoDiffs: *noDiffs}
		return runUDP(*app, *variant, *nodes, *n, *iters, *tol, protocol, tuning, tracer, *trace, *metrics, *verbose)
	default:
		return fmt.Errorf("unknown -transport %q (sim | udp)", *trans)
	}

	var rep *filaments.Report
	switch *app {
	case "matmul":
		cfg := matmul.Config{N: *n, Nodes: *nodes, Protocol: protocol, Tracer: tracer}
		switch *variant {
		case "seq":
			rep, _ = matmul.Sequential(cfg)
		case "cg":
			rep, _ = matmul.CoarseGrain(cfg)
		case "df":
			rep, _, _ = matmul.DF(cfg)
		default:
			return fmt.Errorf("matmul has variants seq|cg|df")
		}
	case "jacobi":
		cfg := jacobi.Config{N: *n, Iters: *iters, Nodes: *nodes, Protocol: protocol, Tracer: tracer}
		switch *variant {
		case "seq":
			rep, _ = jacobi.Sequential(cfg)
		case "cg":
			rep, _ = jacobi.CoarseGrain(cfg)
		case "df":
			rep, _, _ = jacobi.DF(cfg)
		default:
			return fmt.Errorf("jacobi has variants seq|cg|df")
		}
	case "quadrature":
		cfg := quadrature.Config{Tol: *tol, Nodes: *nodes, Tracer: tracer}
		switch *variant {
		case "seq":
			rep, _ = quadrature.Sequential(cfg)
		case "cg":
			rep, _ = quadrature.CoarseGrain(cfg)
		case "bag":
			rep, _ = quadrature.BagOfTasks(cfg, 0)
		case "df":
			rep, _, _ = quadrature.DF(cfg)
		default:
			return fmt.Errorf("quadrature has variants seq|cg|df|bag")
		}
	case "exprtree":
		cfg := exprtree.Config{Height: *height, N: *n, Nodes: *nodes, Tracer: tracer}
		switch *variant {
		case "seq":
			rep, _ = exprtree.Sequential(cfg)
		case "cg":
			rep, _ = exprtree.CoarseGrain(cfg)
		case "df":
			rep, _, _ = exprtree.DF(cfg)
		default:
			return fmt.Errorf("exprtree has variants seq|cg|df")
		}
	case "fft":
		cfg := fft.Config{N: *n, Leaf: *leaf, Nodes: *nodes, Protocol: protocol, Tracer: tracer}
		switch *variant {
		case "seq":
			rep, _, _ = fft.Sequential(cfg)
		case "df":
			rep, _, _, _ = fft.DF(cfg)
		default:
			return fmt.Errorf("fft has variants seq|df")
		}
	case "mergesort":
		cfg := mergesort.Config{N: *n, Leaf: *leaf, Nodes: *nodes, Protocol: protocol, Tracer: tracer}
		switch *variant {
		case "seq":
			rep, _ = mergesort.Sequential(cfg)
		case "df":
			rep, _, _ = mergesort.DF(cfg)
		default:
			return fmt.Errorf("mergesort has variants seq|df")
		}
	default:
		return fmt.Errorf("unknown -app %q", *app)
	}

	fmt.Printf("%s/%s on %d nodes: %.2f simulated seconds\n",
		*app, *variant, *nodes, rep.Seconds())
	fmt.Printf("network: %d frames, %.1f MB, medium busy %.1f s (utilization %.0f%%)\n",
		rep.Net.FramesSent, float64(rep.Net.BytesSent)/(1<<20), rep.Net.Busy.Seconds(),
		100*rep.Net.Utilization(rep.Elapsed))
	if tracer != nil {
		if err := writeTrace(*trace, tracer); err != nil {
			return err
		}
	}
	if *metrics {
		printMetrics(rep.Metrics)
	}
	if !*verbose {
		return nil
	}
	fmt.Printf("%-5s %8s %9s %8s %8s %10s %8s %8s %8s\n",
		"node", "work(s)", "fil(s)", "data(s)", "sync(s)", "syncdly(s)", "idle(s)", "faults", "served")
	for i, nr := range rep.PerNode {
		a := nr.CPU
		fmt.Printf("%-5d %8.2f %9.3f %8.2f %8.2f %10.2f %8.2f %8d %8d\n",
			i,
			a[threads.CatWork].Seconds(),
			a[threads.CatFilament].Seconds(),
			a[threads.CatData].Seconds(),
			a[threads.CatSync].Seconds(),
			a[threads.CatSyncDelay].Seconds(),
			a[threads.CatIdle].Seconds(),
			nr.DSM.ReadFaults+nr.DSM.WriteFaults,
			nr.DSM.Served)
	}
	return nil
}

// runUDP executes the DF variant on the real-time binding: one UDP
// endpoint per node on loopback, wall-clock timing. The DF variants of
// jacobi, matmul, and quadrature run over udp — the seq/cg variants are
// single-address-space programs and exprtree has not been ported to the
// real-time binding. An error from the run — including the quiescence
// check (requests still outstanding after the last barrier) — returns
// through realMain so teardown is never skipped.
func runUDP(app, variant string, nodes, n, iters int, tol float64, protocol filaments.Protocol, tuning filaments.UDPTuning, tracer *filaments.Tracer, trace string, metrics, verbose bool) error {
	if variant != "df" {
		return fmt.Errorf("-transport=udp runs only -variant df (got %q): seq and cg do not use the cluster", variant)
	}
	var rep *filaments.UDPReport
	switch app {
	case "jacobi":
		cfg := jacobi.Config{N: n, Iters: iters, Nodes: nodes, Protocol: protocol, Tracer: tracer, Tuning: tuning}
		r, _, _, err := jacobi.DFUDP(cfg)
		if err != nil {
			return err
		}
		rep = r
	case "matmul":
		cfg := matmul.Config{N: n, Nodes: nodes, Protocol: protocol, Tracer: tracer, Tuning: tuning}
		r, _, _, err := matmul.DFUDP(cfg)
		if err != nil {
			return err
		}
		rep = r
	case "quadrature":
		cfg := quadrature.Config{Tol: tol, Nodes: nodes, Tracer: tracer, Tuning: tuning}
		r, _, err := quadrature.DFUDP(cfg, true)
		if err != nil {
			return err
		}
		rep = r
	default:
		return fmt.Errorf("-app %s is not supported over -transport=udp (supported: jacobi, matmul, quadrature)", app)
	}

	fmt.Printf("%s/df on %d nodes over loopback UDP: %.3f wall seconds\n",
		app, nodes, rep.Elapsed.Seconds())
	var reqs, retrans, faults int64
	for _, nr := range rep.PerNode {
		reqs += nr.Transport.RequestsSent
		retrans += nr.Transport.Retransmits
		faults += nr.DSM.ReadFaults + nr.DSM.WriteFaults
	}
	fmt.Printf("network: %d requests, %d retransmits, %d page faults\n", reqs, retrans, faults)
	if tracer != nil {
		if err := writeTrace(trace, tracer); err != nil {
			return err
		}
	}
	if metrics {
		printMetrics(rep.Metrics)
	}
	if !verbose {
		return nil
	}
	fmt.Printf("%-5s %8s %8s %8s %10s %8s\n",
		"node", "faults", "served", "reqs", "retrans", "steals")
	for i, nr := range rep.PerNode {
		fmt.Printf("%-5d %8d %8d %8d %10d %8d\n",
			i,
			nr.DSM.ReadFaults+nr.DSM.WriteFaults,
			nr.DSM.Served,
			nr.Transport.RequestsSent,
			nr.Transport.Retransmits,
			nr.Runtime.StealsGranted)
	}
	return nil
}

// writeTrace exports the collected events as Chrome trace-event JSON.
func writeTrace(path string, tr *filaments.Tracer) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := tr.WriteJSON(f); err != nil {
		f.Close()
		return fmt.Errorf("trace: %w", err)
	}
	if err := f.Close(); err != nil {
		return fmt.Errorf("trace: %w", err)
	}
	fmt.Printf("trace: %d events -> %s\n", tr.Len(), path)
	return nil
}

// printMetrics prints the aggregated cluster-wide counters.
func printMetrics(samples []filaments.Sample) {
	fmt.Printf("metrics (cluster-wide):\n")
	for _, s := range samples {
		fmt.Printf("  %-24s %d\n", s.Name, s.Value)
	}
}
