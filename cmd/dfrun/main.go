// dfrun executes one application/variant combination on the simulated
// cluster and prints its timing and per-node counters.
//
// Usage:
//
//	dfrun -app jacobi -variant df -nodes 8
//	dfrun -app matmul -variant cg -nodes 4 -n 256
//	dfrun -app quadrature -variant bag -nodes 8
//	dfrun -app exprtree -variant df -nodes 8 -protocol migratory
package main

import (
	"flag"
	"fmt"
	"os"

	"filaments"
	"filaments/internal/apps/exprtree"
	"filaments/internal/apps/jacobi"
	"filaments/internal/apps/matmul"
	"filaments/internal/apps/quadrature"
	"filaments/internal/threads"
)

func main() {
	var (
		app     = flag.String("app", "jacobi", "application: matmul | jacobi | quadrature | exprtree")
		variant = flag.String("variant", "df", "variant: seq | cg | df | bag (quadrature only)")
		nodes   = flag.Int("nodes", 8, "cluster size")
		n       = flag.Int("n", 0, "problem dimension (0 = paper default)")
		iters   = flag.Int("iters", 0, "jacobi iterations (0 = paper default)")
		height  = flag.Int("height", 0, "exprtree height (0 = paper default)")
		tol     = flag.Float64("tol", 0, "quadrature tolerance (0 = paper default)")
		proto   = flag.String("protocol", "", "DSM protocol override: migratory | wi | ii")
		verbose = flag.Bool("v", false, "per-node counters")
	)
	flag.Parse()

	protocol := filaments.Migratory // zero value: app defaults apply
	switch *proto {
	case "":
	case "migratory":
		protocol = filaments.Migratory
	case "wi":
		protocol = filaments.WriteInvalidate
	case "ii":
		protocol = filaments.ImplicitInvalidate
	default:
		fail("unknown -protocol %q", *proto)
	}

	var rep *filaments.Report
	switch *app {
	case "matmul":
		cfg := matmul.Config{N: *n, Nodes: *nodes, Protocol: protocol}
		switch *variant {
		case "seq":
			rep, _ = matmul.Sequential(cfg)
		case "cg":
			rep, _ = matmul.CoarseGrain(cfg)
		case "df":
			rep, _, _ = matmul.DF(cfg)
		default:
			fail("matmul has variants seq|cg|df")
		}
	case "jacobi":
		cfg := jacobi.Config{N: *n, Iters: *iters, Nodes: *nodes, Protocol: protocol}
		switch *variant {
		case "seq":
			rep, _ = jacobi.Sequential(cfg)
		case "cg":
			rep, _ = jacobi.CoarseGrain(cfg)
		case "df":
			rep, _, _ = jacobi.DF(cfg)
		default:
			fail("jacobi has variants seq|cg|df")
		}
	case "quadrature":
		cfg := quadrature.Config{Tol: *tol, Nodes: *nodes}
		switch *variant {
		case "seq":
			rep, _ = quadrature.Sequential(cfg)
		case "cg":
			rep, _ = quadrature.CoarseGrain(cfg)
		case "bag":
			rep, _ = quadrature.BagOfTasks(cfg, 0)
		case "df":
			rep, _, _ = quadrature.DF(cfg)
		default:
			fail("quadrature has variants seq|cg|df|bag")
		}
	case "exprtree":
		cfg := exprtree.Config{Height: *height, N: *n, Nodes: *nodes}
		switch *variant {
		case "seq":
			rep, _ = exprtree.Sequential(cfg)
		case "cg":
			rep, _ = exprtree.CoarseGrain(cfg)
		case "df":
			rep, _, _ = exprtree.DF(cfg)
		default:
			fail("exprtree has variants seq|cg|df")
		}
	default:
		fail("unknown -app %q", *app)
	}

	fmt.Printf("%s/%s on %d nodes: %.2f simulated seconds\n",
		*app, *variant, *nodes, rep.Seconds())
	fmt.Printf("network: %d frames, %.1f MB, medium busy %.1f s (utilization %.0f%%)\n",
		rep.Net.FramesSent, float64(rep.Net.BytesSent)/(1<<20), rep.Net.Busy.Seconds(),
		100*rep.Net.Utilization(rep.Elapsed))
	if !*verbose {
		return
	}
	fmt.Printf("%-5s %8s %9s %8s %8s %10s %8s %8s %8s\n",
		"node", "work(s)", "fil(s)", "data(s)", "sync(s)", "syncdly(s)", "idle(s)", "faults", "served")
	for i, nr := range rep.PerNode {
		a := nr.CPU
		fmt.Printf("%-5d %8.2f %9.3f %8.2f %8.2f %10.2f %8.2f %8d %8d\n",
			i,
			a[threads.CatWork].Seconds(),
			a[threads.CatFilament].Seconds(),
			a[threads.CatData].Seconds(),
			a[threads.CatSync].Seconds(),
			a[threads.CatSyncDelay].Seconds(),
			a[threads.CatIdle].Seconds(),
			nr.DSM.ReadFaults+nr.DSM.WriteFaults,
			nr.DSM.Served)
	}
}

func fail(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "dfrun: "+format+"\n", args...)
	os.Exit(1)
}
