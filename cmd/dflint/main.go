// Command dflint checks the kernel-seam contracts documented in
// internal/kernel and enforced by internal/lint: no wall-clock time, raw
// goroutines, sync primitives, or map-order dependence in kernel-layer
// packages; no blocking calls in node-context handlers; gob and binary
// codec registrations for every concrete wire payload; and the
// whole-program rules (codec symmetry, lock ordering, hot-path
// allocation freedom, frame escape), plus the protocol-contract tier
// (handler idempotence, the wire-tag namespace and WIRE.lock manifest,
// state-machine exhaustiveness/transitions, atomic-access discipline).
//
// It runs two ways:
//
//	dflint ./...                      # standalone, like a linter
//	go vet -vettool=$(which dflint) ./...   # as a vet tool
//
// Standalone mode type-checks the whole module from source (one shared
// FileSet, so object identities span packages) and runs both the
// per-package analyzers and the whole-program ones. Vettool mode speaks
// go vet's unitchecker protocol (-flags, -V=full, then one JSON .cfg
// file per package); vet hands dflint one export-data unit at a time,
// which cannot see dependency function bodies, so vettool mode runs the
// per-package analyzers only. Both print diagnostics as
// file:line:col: message and exit non-zero when any are found.
// Violations are suppressed, with a mandatory reason, by
//
//	//dflint:allow <rule> <one-line reason>
//
// on the flagged line or the line above it.
//
// Standalone flags:
//
//	-json          emit diagnostics as a JSON array instead of text
//	-sarif FILE    additionally write a SARIF 2.1.0 log to FILE
//	-allowlist     print the //dflint:allow baseline lines and exit
//	-fix-baseline  rewrite internal/lint/allow-baseline.txt in place
//	-tags          print the wire-tag map (tag, type, enc shape) and exit
//	-fix-wirelock  rewrite WIRE.lock at the module root and exit
//
// When a WIRE.lock manifest exists at the module root, standalone runs
// diff it against the program's registered codecs and report any drift
// as tagspace diagnostics: renumbered tags and reordered fields fail CI
// until the manifest is regenerated deliberately.
package main

import (
	"crypto/sha256"
	"encoding/json"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"
	"os/exec"
	"path/filepath"
	"sort"
	"strings"

	"filaments/internal/lint"
)

func main() {
	args := os.Args[1:]
	// go vet's vettool handshake: report our flags, then our identity.
	if len(args) == 1 && args[0] == "-flags" {
		fmt.Println("[]")
		return
	}
	for _, a := range args {
		if a == "-V=full" || a == "-V" || strings.HasPrefix(a, "-V=") {
			printVersion()
			return
		}
	}
	if len(args) == 1 && strings.HasSuffix(args[0], ".cfg") {
		os.Exit(runVetUnit(args[0]))
	}
	os.Exit(runStandalone(args))
}

// printVersion implements -V=full. go vet fingerprints the tool for its
// cache, so the line must carry a build ID that changes when the binary
// does: the hash of the executable itself.
func printVersion() {
	id := "unknown"
	if exe, err := os.Executable(); err == nil {
		if data, err := os.ReadFile(exe); err == nil {
			id = fmt.Sprintf("%x", sha256.Sum256(data))
		}
	}
	fmt.Printf("%s version devel comments-go-here buildID=%s\n", os.Args[0], id)
}

// --- vettool mode: one type-check unit described by a JSON config. ---

// vetConfig is the subset of go vet's unitchecker config that dflint
// needs: the files of the unit, and how to resolve its imports to
// export-data files.
type vetConfig struct {
	ID                        string
	Dir                       string
	ImportPath                string
	GoFiles                   []string
	ImportMap                 map[string]string
	PackageFile               map[string]string
	Standard                  map[string]bool
	VetxOnly                  bool
	VetxOutput                string
	SucceedOnTypecheckFailure bool
}

func runVetUnit(cfgPath string) int {
	data, err := os.ReadFile(cfgPath)
	if err != nil {
		fmt.Fprintf(os.Stderr, "dflint: %v\n", err)
		return 1
	}
	var cfg vetConfig
	if err := json.Unmarshal(data, &cfg); err != nil {
		fmt.Fprintf(os.Stderr, "dflint: parsing %s: %v\n", cfgPath, err)
		return 1
	}
	// Dependencies are visited only so vet can chain facts; dflint keeps
	// no cross-package facts, so an empty output satisfies the protocol.
	if cfg.VetxOutput != "" {
		if err := os.WriteFile(cfg.VetxOutput, nil, 0o666); err != nil {
			fmt.Fprintf(os.Stderr, "dflint: %v\n", err)
			return 1
		}
	}
	if cfg.VetxOnly {
		return 0
	}

	fset := token.NewFileSet()
	files, err := parseFiles(fset, cfg.GoFiles)
	if err != nil {
		fmt.Fprintf(os.Stderr, "dflint: %v\n", err)
		return 1
	}
	lookup := func(path string) (io.ReadCloser, error) {
		if mapped, ok := cfg.ImportMap[path]; ok {
			path = mapped
		}
		file, ok := cfg.PackageFile[path]
		if !ok {
			return nil, fmt.Errorf("no export data for %q", path)
		}
		return os.Open(file)
	}
	pkg, info, err := check(fset, cfg.ImportPath, files, importer.ForCompiler(fset, "gc", lookup))
	if err != nil {
		if cfg.SucceedOnTypecheckFailure {
			return 0
		}
		fmt.Fprintf(os.Stderr, "dflint: typechecking %s: %v\n", cfg.ImportPath, err)
		return 1
	}
	diags := lint.Run(lint.Analyzers(), fset, files, pkg, info)
	for _, d := range diags {
		fmt.Fprintf(os.Stderr, "%s: %s\n", d.Pos, d.Message)
	}
	if len(diags) > 0 {
		return 2
	}
	return 0
}

// --- standalone mode: load the whole module from source. ---

// listUnit is the subset of `go list -json` dflint consumes. With -test,
// a package can appear several times: the plain unit, a test variant
// ("pkg [pkg.test]", its GoFiles merged with the in-package _test files),
// an external test package ("pkg_test [pkg.test]"), and the synthesized
// ".test" main, which has no source of its own and is skipped.
type listUnit struct {
	ImportPath string
	Dir        string
	GoFiles    []string
	ImportMap  map[string]string
	Export     string
	Standard   bool
	DepOnly    bool
	ForTest    string
}

func runStandalone(args []string) int {
	var (
		jsonOut     bool
		sarifPath   string
		allowlist   bool
		fixBaseline bool
		tagsDump    bool
		fixWirelock bool
		patterns    []string
	)
	for i := 0; i < len(args); i++ {
		switch a := args[i]; {
		case a == "-json":
			jsonOut = true
		case a == "-allowlist":
			allowlist = true
		case a == "-fix-baseline":
			fixBaseline = true
		case a == "-tags":
			tagsDump = true
		case a == "-fix-wirelock":
			fixWirelock = true
		case a == "-sarif":
			i++
			if i >= len(args) {
				fmt.Fprintln(os.Stderr, "dflint: -sarif needs a file argument")
				return 2
			}
			sarifPath = args[i]
		case strings.HasPrefix(a, "-sarif="):
			sarifPath = strings.TrimPrefix(a, "-sarif=")
		case strings.HasPrefix(a, "-"):
			fmt.Fprintf(os.Stderr, "usage: dflint [-json] [-sarif file] [-allowlist] [-fix-baseline] [-tags] [-fix-wirelock] [packages]\n       go vet -vettool=$(which dflint) [packages]\n")
			return 2
		default:
			patterns = append(patterns, a)
		}
	}
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	if allowlist || fixBaseline {
		return runAllowlist(patterns, fixBaseline)
	}

	units, err := goList("", patterns)
	if err != nil {
		fmt.Fprintf(os.Stderr, "dflint: %v\n", err)
		return 1
	}
	loader := newProgLoader(token.NewFileSet(), units)

	// The whole-program analyzers need every module-local package's
	// bodies: plain units give the objects other packages link against,
	// test variants add the _test.go files. Load both; the call graph
	// and the diagnostic dedupe tolerate the shared files appearing in
	// two units.
	prog := &lint.Program{Fset: loader.fset}
	exit := 0
	for _, u := range units {
		if u.Standard || len(u.GoFiles) == 0 || strings.HasSuffix(u.ImportPath, ".test") {
			continue
		}
		unit, err := loader.unit(u.ImportPath)
		if err != nil {
			fmt.Fprintf(os.Stderr, "dflint: %s: %v\n", u.ImportPath, err)
			exit = 1
			continue
		}
		prog.Units = append(prog.Units, unit)
	}

	if tagsDump || fixWirelock {
		return runWireTags(prog, tagsDump, fixWirelock, exit)
	}

	// Per-package analyzers run over the pattern-matched units,
	// preferring a package's test variant (whose GoFiles are a superset)
	// so _test.go files are covered without analyzing shared files
	// twice. Program analyzers run once over everything.
	hasTestVariant := make(map[string]bool)
	for _, u := range units {
		if u.ForTest != "" && basePath(u.ImportPath) == u.ForTest {
			hasTestVariant[u.ForTest] = true
		}
	}
	var diags []lint.Diagnostic
	for _, u := range units {
		switch {
		case u.Standard || u.DepOnly || len(u.GoFiles) == 0,
			strings.HasSuffix(u.ImportPath, ".test"),
			u.ForTest == "" && hasTestVariant[u.ImportPath]:
			continue
		}
		unit, err := loader.unit(u.ImportPath)
		if err != nil {
			continue // already reported above
		}
		diags = append(diags, lint.Run(lint.Analyzers(), loader.fset, unit.Files, unit.Pkg, unit.Info)...)
	}
	diags = append(diags, lint.RunProgram(lint.ProgramAnalyzers(), prog)...)
	diags = append(diags, lint.RunProgram(lint.ProtocolAnalyzers(), prog)...)
	diags = append(diags, wireLockDrift(prog)...)
	diags = dedupeDiags(diags)

	cwd, _ := os.Getwd()
	for i := range diags {
		diags[i].Pos.Filename = relPath(cwd, diags[i].Pos.Filename)
	}

	if sarifPath != "" {
		if err := writeSARIF(sarifPath, diags); err != nil {
			fmt.Fprintf(os.Stderr, "dflint: writing %s: %v\n", sarifPath, err)
			exit = 1
		}
	}
	switch {
	case jsonOut:
		if err := writeJSON(os.Stdout, diags); err != nil {
			fmt.Fprintf(os.Stderr, "dflint: %v\n", err)
			exit = 1
		}
	default:
		for _, d := range diags {
			fmt.Printf("%s: %s [%s]\n", d.Pos, d.Message, d.Analyzer)
		}
	}
	if len(diags) > 0 && exit == 0 {
		exit = 2
	}
	return exit
}

// runWireTags implements -tags (print the wire-tag map) and
// -fix-wirelock (rewrite the module-root manifest).
func runWireTags(prog *lint.Program, dump, fix bool, exit int) int {
	tags := lint.WireTags(prog)
	if dump {
		fmt.Printf("tag\ttype\tenc shape\n")
		for _, t := range tags {
			fmt.Printf("%d\t%s\t%s\n", t.Tag, t.Type, t.Shape)
		}
		return exit
	}
	root, err := findModuleRoot()
	if err != nil {
		fmt.Fprintf(os.Stderr, "dflint: %v\n", err)
		return 1
	}
	target := filepath.Join(root, "WIRE.lock")
	if err := os.WriteFile(target, []byte(lint.FormatWireLock(tags)), 0o644); err != nil {
		fmt.Fprintf(os.Stderr, "dflint: %v\n", err)
		return 1
	}
	fmt.Printf("dflint: wrote %d wire tags to %s\n", len(tags), target)
	return exit
}

// wireLockDrift diffs the checked-in WIRE.lock (when one exists at the
// module root) against the program's registered codecs. Drift surfaces
// as tagspace diagnostics so the allow machinery, JSON, and SARIF paths
// all apply.
func wireLockDrift(prog *lint.Program) []lint.Diagnostic {
	root, err := findModuleRoot()
	if err != nil {
		return nil
	}
	lockPath := filepath.Join(root, "WIRE.lock")
	data, err := os.ReadFile(lockPath)
	if err != nil {
		return nil // no manifest checked in: nothing to hold the line against
	}
	var diags []lint.Diagnostic
	for _, why := range lint.DiffWireLock(string(data), lint.WireTags(prog)) {
		diags = append(diags, lint.Diagnostic{
			Analyzer: "tagspace",
			Pos:      token.Position{Filename: lockPath, Line: 1, Column: 1},
			Message:  "WIRE.lock drift: " + why + "; if the protocol change is deliberate and reviewed, regenerate with: dflint -fix-wirelock ./...",
		})
	}
	return diags
}

// dedupeDiags sorts by position and drops diagnostics that repeat at
// the same position with the same message (a file analyzed both in a
// plain unit and its test variant reports twice).
func dedupeDiags(diags []lint.Diagnostic) []lint.Diagnostic {
	sort.Slice(diags, func(i, j int) bool {
		a, b := diags[i], diags[j]
		if a.Pos.Filename != b.Pos.Filename {
			return a.Pos.Filename < b.Pos.Filename
		}
		if a.Pos.Line != b.Pos.Line {
			return a.Pos.Line < b.Pos.Line
		}
		if a.Pos.Column != b.Pos.Column {
			return a.Pos.Column < b.Pos.Column
		}
		return a.Message < b.Message
	})
	out := diags[:0]
	for i, d := range diags {
		if i > 0 && d.Analyzer == diags[i-1].Analyzer && d.Message == diags[i-1].Message &&
			d.Pos.Filename == diags[i-1].Pos.Filename && d.Pos.Line == diags[i-1].Pos.Line &&
			d.Pos.Column == diags[i-1].Pos.Column {
			continue
		}
		out = append(out, d)
	}
	return out
}

func relPath(base, path string) string {
	if base == "" {
		return path
	}
	if rel, err := filepath.Rel(base, path); err == nil && !strings.HasPrefix(rel, "..") {
		return filepath.ToSlash(rel)
	}
	return path
}

// --- the source loader ---

// progLoader type-checks module-local packages from source with one
// shared FileSet, falling back to gc export data for the standard
// library (and any other bodiless dependency). Source loading is what
// gives the program analyzers cross-package object identity: a call
// from dsm into rtnode resolves to the same *types.Func the rtnode unit
// declared.
type progLoader struct {
	fset   *token.FileSet
	byPath map[string]*listUnit
	units  map[string]*lint.Unit
	gcPkgs map[string]*types.Package
	gc     types.Importer
}

func newProgLoader(fset *token.FileSet, units []*listUnit) *progLoader {
	byPath := make(map[string]*listUnit, len(units))
	exports := make(map[string]string, len(units))
	for _, u := range units {
		byPath[u.ImportPath] = u
		if u.Export != "" {
			exports[u.ImportPath] = u.Export
		}
	}
	l := &progLoader{
		fset:   fset,
		byPath: byPath,
		units:  make(map[string]*lint.Unit),
		gcPkgs: make(map[string]*types.Package),
	}
	l.gc = importer.ForCompiler(fset, "gc", func(path string) (io.ReadCloser, error) {
		file, ok := exports[path]
		if !ok {
			return nil, fmt.Errorf("no export data for %q", path)
		}
		return os.Open(file)
	})
	return l
}

// unit loads (or returns the cached) source-checked package for the
// exact go list import path, test-variant suffix included.
func (l *progLoader) unit(path string) (*lint.Unit, error) {
	if u, ok := l.units[path]; ok {
		return u, nil
	}
	lu := l.byPath[path]
	if lu == nil {
		return nil, fmt.Errorf("package %q not in the load set", path)
	}
	paths := make([]string, len(lu.GoFiles))
	for i, f := range lu.GoFiles {
		paths[i] = filepath.Join(lu.Dir, f)
	}
	files, err := parseFiles(l.fset, paths)
	if err != nil {
		return nil, err
	}
	imp := importerFunc(func(ipath string) (*types.Package, error) {
		if mapped, ok := lu.ImportMap[ipath]; ok {
			ipath = mapped
		}
		return l.importPkg(ipath)
	})
	pkg, info, err := check(l.fset, lu.ImportPath, files, imp)
	if err != nil {
		return nil, err
	}
	u := &lint.Unit{Files: files, Pkg: pkg, Info: info}
	l.units[path] = u
	return u, nil
}

// importPkg resolves one import: from source for module-local units,
// from export data otherwise.
func (l *progLoader) importPkg(path string) (*types.Package, error) {
	if path == "unsafe" {
		return types.Unsafe, nil
	}
	if u, ok := l.units[path]; ok {
		return u.Pkg, nil
	}
	if lu := l.byPath[path]; lu != nil && !lu.Standard && len(lu.GoFiles) > 0 {
		u, err := l.unit(path)
		if err != nil {
			return nil, err
		}
		return u.Pkg, nil
	}
	if p, ok := l.gcPkgs[path]; ok {
		return p, nil
	}
	p, err := l.gc.Import(path)
	if err != nil {
		return nil, err
	}
	l.gcPkgs[path] = p
	return p, nil
}

type importerFunc func(string) (*types.Package, error)

func (f importerFunc) Import(path string) (*types.Package, error) { return f(path) }

func goList(dir string, patterns []string) ([]*listUnit, error) {
	args := append([]string{
		"list", "-e", "-deps", "-test", "-export",
		"-json=ImportPath,Dir,GoFiles,ImportMap,Export,Standard,DepOnly,ForTest",
	}, patterns...)
	cmd := exec.Command("go", args...)
	cmd.Dir = dir
	cmd.Stderr = os.Stderr
	out, err := cmd.StdoutPipe()
	if err != nil {
		return nil, err
	}
	if err := cmd.Start(); err != nil {
		return nil, err
	}
	var units []*listUnit
	dec := json.NewDecoder(out)
	for {
		u := new(listUnit)
		if err := dec.Decode(u); err == io.EOF {
			break
		} else if err != nil {
			return nil, fmt.Errorf("go list: %v", err)
		}
		units = append(units, u)
	}
	if err := cmd.Wait(); err != nil {
		return nil, fmt.Errorf("go list: %v", err)
	}
	return units, nil
}

// --- machine-readable output ---

type jsonDiag struct {
	File    string `json:"file"`
	Line    int    `json:"line"`
	Column  int    `json:"column"`
	Rule    string `json:"rule"`
	Message string `json:"message"`
}

func writeJSON(w io.Writer, diags []lint.Diagnostic) error {
	out := make([]jsonDiag, 0, len(diags))
	for _, d := range diags {
		out = append(out, jsonDiag{
			File:    d.Pos.Filename,
			Line:    d.Pos.Line,
			Column:  d.Pos.Column,
			Rule:    d.Analyzer,
			Message: d.Message,
		})
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(out)
}

// writeSARIF emits a minimal SARIF 2.1.0 log: one run, one rule per
// analyzer (both the per-package and whole-program suites), one result
// per diagnostic. CI uploads it as the code-scanning artifact.
func writeSARIF(path string, diags []lint.Diagnostic) error {
	type sarifRule struct {
		ID               string `json:"id"`
		ShortDescription struct {
			Text string `json:"text"`
		} `json:"shortDescription"`
	}
	type sarifLocation struct {
		PhysicalLocation struct {
			ArtifactLocation struct {
				URI string `json:"uri"`
			} `json:"artifactLocation"`
			Region struct {
				StartLine   int `json:"startLine"`
				StartColumn int `json:"startColumn"`
			} `json:"region"`
		} `json:"physicalLocation"`
	}
	type sarifResult struct {
		RuleID  string `json:"ruleId"`
		Level   string `json:"level"`
		Message struct {
			Text string `json:"text"`
		} `json:"message"`
		Locations []sarifLocation `json:"locations"`
	}

	var rules []sarifRule
	addRule := func(name, doc string) {
		r := sarifRule{ID: name}
		r.ShortDescription.Text = doc
		rules = append(rules, r)
	}
	for _, a := range lint.Analyzers() {
		addRule(a.Name, a.Doc)
	}
	for _, a := range lint.ProgramAnalyzers() {
		addRule(a.Name, a.Doc)
	}
	for _, a := range lint.ProtocolAnalyzers() {
		addRule(a.Name, a.Doc)
	}

	results := make([]sarifResult, 0, len(diags))
	for _, d := range diags {
		var r sarifResult
		r.RuleID = d.Analyzer
		r.Level = "error"
		r.Message.Text = d.Message
		var loc sarifLocation
		loc.PhysicalLocation.ArtifactLocation.URI = filepath.ToSlash(d.Pos.Filename)
		loc.PhysicalLocation.Region.StartLine = d.Pos.Line
		loc.PhysicalLocation.Region.StartColumn = d.Pos.Column
		r.Locations = []sarifLocation{loc}
		results = append(results, r)
	}

	doc := map[string]any{
		"$schema": "https://raw.githubusercontent.com/oasis-tcs/sarif-spec/master/Schemata/sarif-schema-2.1.0.json",
		"version": "2.1.0",
		"runs": []map[string]any{{
			"tool": map[string]any{
				"driver": map[string]any{
					"name":           "dflint",
					"informationUri": "https://example.invalid/dflint",
					"rules":          rules,
				},
			},
			"results": results,
		}},
	}
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	enc := json.NewEncoder(f)
	enc.SetIndent("", "  ")
	if err := enc.Encode(doc); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// --- allowlist mode: audit the //dflint:allow escape hatches. ---

// runAllowlist prints (or, with fix set, rewrites the checked-in
// baseline with) the current //dflint:allow inventory. Entries are
// keyed by package, rule, and reason — not file:line — so reformatting
// or moving code does not churn the baseline; only adding, removing, or
// rewording a hatch does.
func runAllowlist(patterns []string, fix bool) int {
	lines, err := allowlistLines("", patterns)
	if err != nil {
		fmt.Fprintf(os.Stderr, "dflint: %v\n", err)
		return 1
	}
	if !fix {
		for _, l := range lines {
			fmt.Println(l)
		}
		return 0
	}
	root, err := findModuleRoot()
	if err != nil {
		fmt.Fprintf(os.Stderr, "dflint: %v\n", err)
		return 1
	}
	out := strings.Join(lines, "\n")
	if out != "" {
		out += "\n"
	}
	target := filepath.Join(root, "internal", "lint", "allow-baseline.txt")
	if err := os.WriteFile(target, []byte(out), 0o644); err != nil {
		fmt.Fprintf(os.Stderr, "dflint: %v\n", err)
		return 1
	}
	fmt.Printf("dflint: wrote %d baseline entries to %s\n", len(lines), target)
	return 0
}

// allowlistLines collects the allow hatches of the matched packages as
// "pkg: rule: reason" lines, sorted, with an (xN) suffix when the same
// hatch appears N>1 times in the package.
func allowlistLines(dir string, patterns []string) ([]string, error) {
	units, err := goList(dir, patterns)
	if err != nil {
		return nil, err
	}
	fset := token.NewFileSet()
	seen := make(map[string]bool)
	count := make(map[string]int)
	for _, u := range units {
		if u.Standard || u.DepOnly || strings.HasSuffix(u.ImportPath, ".test") {
			continue
		}
		pkg := basePath(u.ImportPath)
		for _, f := range u.GoFiles {
			p := filepath.Join(u.Dir, f)
			if seen[p] {
				continue
			}
			seen[p] = true
			parsed, err := parser.ParseFile(fset, p, nil, parser.ParseComments)
			if err != nil {
				return nil, err
			}
			for _, a := range lint.CollectAllows(fset, []*ast.File{parsed}) {
				count[fmt.Sprintf("%s: %s: %s", pkg, a.Rule, a.Reason)]++
			}
		}
	}
	lines := make([]string, 0, len(count))
	for key, n := range count {
		if n > 1 {
			key = fmt.Sprintf("%s (x%d)", key, n)
		}
		lines = append(lines, key)
	}
	sort.Strings(lines)
	return lines, nil
}

func findModuleRoot() (string, error) {
	dir, err := os.Getwd()
	if err != nil {
		return "", err
	}
	for {
		if _, err := os.Stat(filepath.Join(dir, "go.mod")); err == nil {
			return dir, nil
		}
		parent := filepath.Dir(dir)
		if parent == dir {
			return "", fmt.Errorf("no go.mod above %s", dir)
		}
		dir = parent
	}
}

// --- shared ---

func parseFiles(fset *token.FileSet, paths []string) ([]*ast.File, error) {
	var files []*ast.File
	for _, p := range paths {
		f, err := parser.ParseFile(fset, p, nil, parser.ParseComments)
		if err != nil {
			return nil, err
		}
		files = append(files, f)
	}
	return files, nil
}

func check(fset *token.FileSet, path string, files []*ast.File, imp types.Importer) (*types.Package, *types.Info, error) {
	info := lint.NewInfo()
	conf := types.Config{Importer: imp}
	pkg, err := conf.Check(path, fset, files, info)
	if err != nil {
		return nil, nil, err
	}
	return pkg, info, nil
}

// basePath strips go list's test-variant suffix: "pkg [pkg.test]" → "pkg".
func basePath(path string) string {
	if i := strings.IndexByte(path, ' '); i >= 0 {
		return path[:i]
	}
	return path
}
