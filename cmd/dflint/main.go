// Command dflint checks the kernel-seam contracts documented in
// internal/kernel and enforced by internal/lint: no wall-clock time, raw
// goroutines, sync primitives, or map-order dependence in kernel-layer
// packages; no blocking calls in node-context handlers; and gob
// registrations for every concrete wire payload.
//
// It runs two ways:
//
//	dflint ./...                      # standalone, like a linter
//	go vet -vettool=$(which dflint) ./...   # as a vet tool
//
// Standalone mode shells out to `go list -deps -test -export` for type
// information; vettool mode speaks go vet's unitchecker protocol
// (-flags, -V=full, then one JSON .cfg file per package). Both print
// diagnostics as file:line:col: message and exit non-zero when any are
// found. Violations are suppressed, with a mandatory reason, by
//
//	//dflint:allow <rule> <one-line reason>
//
// on the flagged line or the line above it.
package main

import (
	"crypto/sha256"
	"encoding/json"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"
	"os/exec"
	"path/filepath"
	"sort"
	"strings"

	"filaments/internal/lint"
)

func main() {
	args := os.Args[1:]
	// go vet's vettool handshake: report our flags, then our identity.
	if len(args) == 1 && args[0] == "-flags" {
		fmt.Println("[]")
		return
	}
	for _, a := range args {
		if a == "-V=full" || a == "-V" || strings.HasPrefix(a, "-V=") {
			printVersion()
			return
		}
	}
	if len(args) == 1 && strings.HasSuffix(args[0], ".cfg") {
		os.Exit(runVetUnit(args[0]))
	}
	os.Exit(runStandalone(args))
}

// printVersion implements -V=full. go vet fingerprints the tool for its
// cache, so the line must carry a build ID that changes when the binary
// does: the hash of the executable itself.
func printVersion() {
	id := "unknown"
	if exe, err := os.Executable(); err == nil {
		if data, err := os.ReadFile(exe); err == nil {
			id = fmt.Sprintf("%x", sha256.Sum256(data))
		}
	}
	fmt.Printf("%s version devel comments-go-here buildID=%s\n", os.Args[0], id)
}

// --- vettool mode: one type-check unit described by a JSON config. ---

// vetConfig is the subset of go vet's unitchecker config that dflint
// needs: the files of the unit, and how to resolve its imports to
// export-data files.
type vetConfig struct {
	ID                        string
	Dir                       string
	ImportPath                string
	GoFiles                   []string
	ImportMap                 map[string]string
	PackageFile               map[string]string
	Standard                  map[string]bool
	VetxOnly                  bool
	VetxOutput                string
	SucceedOnTypecheckFailure bool
}

func runVetUnit(cfgPath string) int {
	data, err := os.ReadFile(cfgPath)
	if err != nil {
		fmt.Fprintf(os.Stderr, "dflint: %v\n", err)
		return 1
	}
	var cfg vetConfig
	if err := json.Unmarshal(data, &cfg); err != nil {
		fmt.Fprintf(os.Stderr, "dflint: parsing %s: %v\n", cfgPath, err)
		return 1
	}
	// Dependencies are visited only so vet can chain facts; dflint keeps
	// no cross-package facts, so an empty output satisfies the protocol.
	if cfg.VetxOutput != "" {
		if err := os.WriteFile(cfg.VetxOutput, nil, 0o666); err != nil {
			fmt.Fprintf(os.Stderr, "dflint: %v\n", err)
			return 1
		}
	}
	if cfg.VetxOnly {
		return 0
	}

	fset := token.NewFileSet()
	files, err := parseFiles(fset, cfg.GoFiles)
	if err != nil {
		fmt.Fprintf(os.Stderr, "dflint: %v\n", err)
		return 1
	}
	lookup := func(path string) (io.ReadCloser, error) {
		if mapped, ok := cfg.ImportMap[path]; ok {
			path = mapped
		}
		file, ok := cfg.PackageFile[path]
		if !ok {
			return nil, fmt.Errorf("no export data for %q", path)
		}
		return os.Open(file)
	}
	pkg, info, err := check(fset, cfg.ImportPath, files, importer.ForCompiler(fset, "gc", lookup))
	if err != nil {
		if cfg.SucceedOnTypecheckFailure {
			return 0
		}
		fmt.Fprintf(os.Stderr, "dflint: typechecking %s: %v\n", cfg.ImportPath, err)
		return 1
	}
	diags := lint.Run(lint.Analyzers(), fset, files, pkg, info)
	for _, d := range diags {
		fmt.Fprintf(os.Stderr, "%s: %s\n", d.Pos, d.Message)
	}
	if len(diags) > 0 {
		return 2
	}
	return 0
}

// --- standalone mode: load packages via the go command. ---

// listUnit is the subset of `go list -json` dflint consumes. With -test,
// a package can appear several times: the plain unit, a test variant
// ("pkg [pkg.test]", its GoFiles merged with the in-package _test files),
// an external test package ("pkg_test [pkg.test]"), and the synthesized
// ".test" main, which has no source of its own and is skipped.
type listUnit struct {
	ImportPath string
	Dir        string
	GoFiles    []string
	ImportMap  map[string]string
	Export     string
	Standard   bool
	DepOnly    bool
	ForTest    string
}

func runStandalone(patterns []string) int {
	if len(patterns) > 0 && patterns[0] == "-allowlist" {
		return runAllowlist(patterns[1:])
	}
	for _, p := range patterns {
		if strings.HasPrefix(p, "-") {
			fmt.Fprintf(os.Stderr, "usage: dflint [-allowlist] [packages]\n       go vet -vettool=$(which dflint) [packages]\n")
			return 2
		}
	}
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	units, err := goList("", patterns)
	if err != nil {
		fmt.Fprintf(os.Stderr, "dflint: %v\n", err)
		return 1
	}
	byPath := make(map[string]*listUnit, len(units))
	for _, u := range units {
		byPath[u.ImportPath] = u
	}

	// Analyze every in-scope unit, preferring a package's test variant
	// (whose GoFiles are a superset) over the plain unit so _test.go
	// files are covered without analyzing the shared files twice.
	hasTestVariant := make(map[string]bool)
	for _, u := range units {
		if u.ForTest != "" && basePath(u.ImportPath) == u.ForTest {
			hasTestVariant[u.ForTest] = true
		}
	}
	exit := 0
	seen := make(map[string]bool)
	for _, u := range units {
		switch {
		case u.Standard || u.DepOnly || len(u.GoFiles) == 0,
			strings.HasSuffix(u.ImportPath, ".test"),
			u.ForTest == "" && hasTestVariant[u.ImportPath]:
			continue
		}
		diags, err := analyzeUnit(u, byPath)
		if err != nil {
			fmt.Fprintf(os.Stderr, "dflint: %s: %v\n", u.ImportPath, err)
			exit = 1
			continue
		}
		for _, d := range diags {
			line := fmt.Sprintf("%s: %s", d.Pos, d.Message)
			if seen[line] {
				continue
			}
			seen[line] = true
			fmt.Println(line)
			if exit == 0 {
				exit = 2
			}
		}
	}
	return exit
}

func goList(dir string, patterns []string) ([]*listUnit, error) {
	args := append([]string{
		"list", "-e", "-deps", "-test", "-export",
		"-json=ImportPath,Dir,GoFiles,ImportMap,Export,Standard,DepOnly,ForTest",
	}, patterns...)
	cmd := exec.Command("go", args...)
	cmd.Dir = dir
	cmd.Stderr = os.Stderr
	out, err := cmd.StdoutPipe()
	if err != nil {
		return nil, err
	}
	if err := cmd.Start(); err != nil {
		return nil, err
	}
	var units []*listUnit
	dec := json.NewDecoder(out)
	for {
		u := new(listUnit)
		if err := dec.Decode(u); err == io.EOF {
			break
		} else if err != nil {
			return nil, fmt.Errorf("go list: %v", err)
		}
		units = append(units, u)
	}
	if err := cmd.Wait(); err != nil {
		return nil, fmt.Errorf("go list: %v", err)
	}
	return units, nil
}

func analyzeUnit(u *listUnit, byPath map[string]*listUnit) ([]lint.Diagnostic, error) {
	fset := token.NewFileSet()
	paths := make([]string, len(u.GoFiles))
	for i, f := range u.GoFiles {
		paths[i] = filepath.Join(u.Dir, f)
	}
	files, err := parseFiles(fset, paths)
	if err != nil {
		return nil, err
	}
	lookup := func(path string) (io.ReadCloser, error) {
		if mapped, ok := u.ImportMap[path]; ok {
			path = mapped
		}
		dep := byPath[path]
		if dep == nil || dep.Export == "" {
			return nil, fmt.Errorf("no export data for %q", path)
		}
		return os.Open(dep.Export)
	}
	pkg, info, err := check(fset, u.ImportPath, files, importer.ForCompiler(fset, "gc", lookup))
	if err != nil {
		return nil, err
	}
	return lint.Run(lint.Analyzers(), fset, files, pkg, info), nil
}

// --- allowlist mode: audit the //dflint:allow escape hatches. ---

// runAllowlist prints every //dflint:allow comment in the matched
// packages, one per line, sorted. The output is diffed against a
// checked-in baseline (internal/lint/allow-baseline.txt) in CI, so
// adding an escape hatch requires a reviewed baseline change.
func runAllowlist(patterns []string) int {
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	lines, err := allowlistLines("", patterns)
	if err != nil {
		fmt.Fprintf(os.Stderr, "dflint: %v\n", err)
		return 1
	}
	for _, l := range lines {
		fmt.Println(l)
	}
	return 0
}

// allowlistLines collects the allow hatches of the packages matched from
// dir ("" = cwd) as "relpath:line: rule: reason" lines, sorted. File
// paths are relative to dir so the output is stable across checkouts.
func allowlistLines(dir string, patterns []string) ([]string, error) {
	units, err := goList(dir, patterns)
	if err != nil {
		return nil, err
	}
	root := dir
	if root == "" {
		if root, err = os.Getwd(); err != nil {
			return nil, err
		}
	}
	fset := token.NewFileSet()
	seen := make(map[string]bool)
	var files []*ast.File
	for _, u := range units {
		if u.Standard || u.DepOnly || strings.HasSuffix(u.ImportPath, ".test") {
			continue
		}
		for _, f := range u.GoFiles {
			p := filepath.Join(u.Dir, f)
			if seen[p] {
				continue
			}
			seen[p] = true
			parsed, err := parser.ParseFile(fset, p, nil, parser.ParseComments)
			if err != nil {
				return nil, err
			}
			files = append(files, parsed)
		}
	}
	allows := lint.CollectAllows(fset, files)
	sort.Slice(allows, func(i, j int) bool {
		a, b := allows[i].Pos, allows[j].Pos
		if a.Filename != b.Filename {
			return a.Filename < b.Filename
		}
		return a.Line < b.Line
	})
	lines := make([]string, 0, len(allows))
	for _, a := range allows {
		rel, err := filepath.Rel(root, a.Pos.Filename)
		if err != nil {
			rel = a.Pos.Filename
		}
		lines = append(lines, fmt.Sprintf("%s:%d: %s: %s", filepath.ToSlash(rel), a.Pos.Line, a.Rule, a.Reason))
	}
	return lines, nil
}

// --- shared ---

func parseFiles(fset *token.FileSet, paths []string) ([]*ast.File, error) {
	var files []*ast.File
	for _, p := range paths {
		f, err := parser.ParseFile(fset, p, nil, parser.ParseComments)
		if err != nil {
			return nil, err
		}
		files = append(files, f)
	}
	return files, nil
}

func check(fset *token.FileSet, path string, files []*ast.File, imp types.Importer) (*types.Package, *types.Info, error) {
	info := lint.NewInfo()
	conf := types.Config{Importer: imp}
	pkg, err := conf.Check(path, fset, files, info)
	if err != nil {
		return nil, nil, err
	}
	return pkg, info, nil
}

// basePath strips go list's test-variant suffix: "pkg [pkg.test]" → "pkg".
func basePath(path string) string {
	if i := strings.IndexByte(path, ' '); i >= 0 {
		return path[:i]
	}
	return path
}
