package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// TestAllowBaseline keeps internal/lint/allow-baseline.txt in lockstep
// with the //dflint:allow hatches actually present in the tree: the
// hatches are contract exceptions, so adding one (or rewording its
// reason) must show up as a reviewed baseline change, not slip in
// silently. Entries are keyed by package, rule, and reason — not
// file:line — so pure code motion does not churn the file. Regenerate
// with:
//
//	go run ./cmd/dflint -fix-baseline ./...
func TestAllowBaseline(t *testing.T) {
	root := moduleRoot(t)
	got, err := allowlistLines(root, []string{"./..."})
	if err != nil {
		t.Fatalf("collecting allows: %v", err)
	}
	data, err := os.ReadFile(filepath.Join(root, "internal", "lint", "allow-baseline.txt"))
	if err != nil {
		t.Fatalf("reading baseline: %v", err)
	}
	want := strings.Split(strings.TrimRight(string(data), "\n"), "\n")
	if len(data) == 0 {
		want = nil
	}
	for i := 0; i < len(got) || i < len(want); i++ {
		switch {
		case i >= len(want):
			t.Errorf("hatch not in baseline: %s", got[i])
		case i >= len(got):
			t.Errorf("baseline entry no longer in tree: %s", want[i])
		case got[i] != want[i]:
			t.Errorf("baseline drift at line %d:\n  tree:     %s\n  baseline: %s", i+1, got[i], want[i])
		}
	}
}

func moduleRoot(t *testing.T) string {
	t.Helper()
	dir, err := os.Getwd()
	if err != nil {
		t.Fatal(err)
	}
	for {
		if _, err := os.Stat(filepath.Join(dir, "go.mod")); err == nil {
			return dir
		}
		parent := filepath.Dir(dir)
		if parent == dir {
			t.Fatal("no go.mod above test working directory")
		}
		dir = parent
	}
}
