// dfbench regenerates the tables and figures of "Distributed Filaments:
// Efficient Fine-Grain Parallelism on a Cluster of Workstations" (OSDI '94)
// on the simulated cluster, and (with -transport=udp) measures the
// wall-clock wire path over real loopback UDP endpoints.
//
// Usage:
//
//	dfbench -list
//	dfbench                      # all experiments at paper scale
//	dfbench -experiment fig5     # one experiment
//	dfbench -quick               # reduced problem sizes (shape only)
//	dfbench -json fig5           # also write BENCH_fig5.json
//	dfbench -transport=udp -json # wall-clock wire-path tables -> BENCH_udp_*.json
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"time"

	"filaments/internal/bench"
)

func main() {
	var (
		exp    = flag.String("experiment", "", "experiment ID to run (default: all)")
		quick  = flag.Bool("quick", false, "reduced problem sizes for fast runs")
		list   = flag.Bool("list", false, "list experiments and exit")
		emit   = flag.Bool("json", false, "write BENCH_<id>.json next to the prose output")
		outdir = flag.String("outdir", ".", "directory for -json output files")
		trans  = flag.String("transport", "sim", "experiment set: sim (virtual time, paper tables) | udp (wall clock, wire path)")
	)
	flag.Parse()
	all, find := bench.All, bench.Find
	switch *trans {
	case "sim":
	case "udp":
		all, find = bench.AllUDP, bench.FindUDP
	default:
		fmt.Fprintf(os.Stderr, "dfbench: unknown -transport %q (sim | udp)\n", *trans)
		os.Exit(1)
	}
	if *list {
		for _, e := range all() {
			fmt.Printf("%-12s %s\n", e.ID, e.Title)
		}
		return
	}
	opts := bench.Options{Quick: *quick}
	run := func(e bench.Experiment) {
		fmt.Printf("=== %s: %s ===\n", e.ID, e.Title)
		t0 := time.Now()
		if *emit {
			// RunCaptured streams the prose to stdout while recording the
			// machine-readable rows; the JSON cells are the same formatted
			// strings that appear above, bit for bit.
			res := bench.RunCaptured(e, opts, os.Stdout)
			path := filepath.Join(*outdir, "BENCH_"+e.ID+".json")
			b, err := json.MarshalIndent(res, "", "  ")
			if err == nil {
				err = os.WriteFile(path, append(b, '\n'), 0o644)
			}
			if err != nil {
				fmt.Fprintf(os.Stderr, "dfbench: write %s: %v\n", path, err)
				os.Exit(1)
			}
			fmt.Printf("    [wrote %s]\n", path)
		} else {
			e.Run(os.Stdout, opts)
		}
		fmt.Printf("    [%.1fs wall clock]\n\n", time.Since(t0).Seconds())
	}
	// Experiments may be named with -experiment or as positional
	// arguments (dfbench -json fig5).
	ids := flag.Args()
	if *exp != "" {
		ids = append(ids, *exp)
	}
	if len(ids) > 0 {
		for _, id := range ids {
			e, ok := find(id)
			if !ok {
				fmt.Fprintf(os.Stderr, "dfbench: unknown experiment %q (try -list)\n", id)
				os.Exit(1)
			}
			run(e)
		}
		return
	}
	for _, e := range all() {
		run(e)
	}
}
