// dfbench regenerates the tables and figures of "Distributed Filaments:
// Efficient Fine-Grain Parallelism on a Cluster of Workstations" (OSDI '94)
// on the simulated cluster.
//
// Usage:
//
//	dfbench -list
//	dfbench                      # all experiments at paper scale
//	dfbench -experiment fig5     # one experiment
//	dfbench -quick               # reduced problem sizes (shape only)
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"filaments/internal/bench"
)

func main() {
	var (
		exp   = flag.String("experiment", "", "experiment ID to run (default: all)")
		quick = flag.Bool("quick", false, "reduced problem sizes for fast runs")
		list  = flag.Bool("list", false, "list experiments and exit")
	)
	flag.Parse()
	if *list {
		for _, e := range bench.All() {
			fmt.Printf("%-8s %s\n", e.ID, e.Title)
		}
		return
	}
	opts := bench.Options{Quick: *quick}
	run := func(e bench.Experiment) {
		fmt.Printf("=== %s: %s ===\n", e.ID, e.Title)
		t0 := time.Now()
		e.Run(os.Stdout, opts)
		fmt.Printf("    [%.1fs wall clock]\n\n", time.Since(t0).Seconds())
	}
	if *exp != "" {
		e, ok := bench.Find(*exp)
		if !ok {
			fmt.Fprintf(os.Stderr, "dfbench: unknown experiment %q (try -list)\n", *exp)
			os.Exit(1)
		}
		run(e)
		return
	}
	for _, e := range bench.All() {
		run(e)
	}
}
