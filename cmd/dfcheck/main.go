// dfcheck is the DSM memory-model checker: it runs the shipped DF
// applications in the simulator with a vector-clock happens-before race
// detector attached to every typed access, and replays each run on a
// single node to assert sequential consistency (bitwise-equal pages at
// every quiescent barrier epoch).
//
// Usage:
//
//	dfcheck [-app all|jacobi|matmul|fft|mergesort|exprtree|quadrature|racer|racer-overlap]
//	        [-protocol all|migratory|write-invalidate|implicit-invalidate|lazy-release]
//	        [-mirage both|on|off] [-nodes n] [-selftest] [-v]
//
// dfcheck exits 0 when every checked configuration is race-free,
// annotation-clean, and oracle-clean, and 1 otherwise. The oracle is
// per-model: the single-writer protocols are held to sequential
// consistency, lazy-release to release consistency (same digest
// comparison — the home holds every merge at the fold — plus a
// no-unflushed-state assertion). -selftest runs the deliberately racy
// seeded programs (internal/apps/racer) and exits 0 only if the checker
// catches both the write/read race under write-invalidate and the
// write/write overlap under lazy-release — the checker checking itself.
//
// The static half of the memory-model suite lives in dflint: the
// sharedrange, loopcapture, and barrierphase analyzers flag the same bug
// patterns at compile time.
package main

import (
	"flag"
	"fmt"
	"os"

	"filaments"
	"filaments/internal/check"
)

func main() {
	appFlag := flag.String("app", "all", "application to check: all, jacobi, matmul, fft, mergesort, exprtree, quadrature, racer, or racer-overlap")
	protoFlag := flag.String("protocol", "all", "page consistency protocol: all, migratory, write-invalidate, implicit-invalidate, or lazy-release")
	mirageFlag := flag.String("mirage", "both", "Mirage anti-thrashing window: both, on, or off")
	nodes := flag.Int("nodes", 4, "cluster size for the parallel run")
	selftest := flag.Bool("selftest", false, "run the seeded-race program and require the checker to catch it")
	verbose := flag.Bool("v", false, "print every checked configuration, not just failures")
	flag.Parse()
	if flag.NArg() != 0 {
		flag.Usage()
		os.Exit(2)
	}

	if *selftest {
		os.Exit(runSelftest(*nodes))
	}

	var apps []check.App
	if *appFlag == "all" {
		apps = check.Apps()
	} else {
		a, ok := check.AppByName(*appFlag)
		if !ok {
			fmt.Fprintf(os.Stderr, "dfcheck: unknown app %q\n", *appFlag)
			os.Exit(2)
		}
		apps = []check.App{a}
	}

	protos, ok := parseProtocols(*protoFlag)
	if !ok {
		fmt.Fprintf(os.Stderr, "dfcheck: unknown protocol %q\n", *protoFlag)
		os.Exit(2)
	}
	var mirages []bool
	switch *mirageFlag {
	case "both":
		mirages = []bool{true, false}
	case "on":
		mirages = []bool{true}
	case "off":
		mirages = []bool{false}
	default:
		fmt.Fprintf(os.Stderr, "dfcheck: unknown -mirage value %q\n", *mirageFlag)
		os.Exit(2)
	}

	failures := 0
	checked := 0
	for _, app := range apps {
		for _, proto := range protos {
			for _, mirage := range mirages {
				if !mirage && app.MirageOffSafe != nil && !app.MirageOffSafe(proto, *nodes) {
					if *verbose {
						fmt.Printf("SKIP %s (window-off leg would livelock by design: see internal/check)\n",
							configName(app.Name, proto, mirage, *nodes))
					}
					continue
				}
				res := check.CheckApp(app, *nodes, proto, mirage)
				checked++
				if reportResult(res, *verbose) {
					failures++
				}
			}
		}
	}
	if checked == 0 {
		fmt.Fprintln(os.Stderr, "dfcheck: no configuration checked")
		os.Exit(2)
	}
	if failures > 0 {
		fmt.Printf("dfcheck: %d of %d configurations FAILED\n", failures, checked)
		os.Exit(1)
	}
	fmt.Printf("dfcheck: %d configurations clean\n", checked)
}

func parseProtocols(s string) ([]filaments.Protocol, bool) {
	switch s {
	case "all":
		return []filaments.Protocol{
			filaments.Migratory, filaments.WriteInvalidate, filaments.ImplicitInvalidate,
			filaments.LazyRelease,
		}, true
	case "migratory":
		return []filaments.Protocol{filaments.Migratory}, true
	case "write-invalidate":
		return []filaments.Protocol{filaments.WriteInvalidate}, true
	case "implicit-invalidate":
		return []filaments.Protocol{filaments.ImplicitInvalidate}, true
	case "lazy-release":
		return []filaments.Protocol{filaments.LazyRelease}, true
	}
	return nil, false
}

func configName(app string, proto filaments.Protocol, mirage bool, nodes int) string {
	w := "on"
	if !mirage {
		w = "off"
	}
	return fmt.Sprintf("%s nodes=%d proto=%s mirage=%s", app, nodes, proto, w)
}

// reportResult prints one configuration's outcome; true means it failed.
func reportResult(res *check.Result, verbose bool) bool {
	name := configName(res.App, res.Protocol, res.Mirage, res.Nodes) + " model=" + res.Model.String()
	bad := !res.Ok()
	if bad {
		fmt.Printf("FAIL %s (%d accesses, %d epochs)\n", name, res.Parallel.Accesses, res.Epochs)
		if res.Err != nil {
			fmt.Printf("  oracle: %v\n", res.Err)
		}
		for _, r := range res.Parallel.Races {
			fmt.Printf("  %s\n", r)
		}
		for _, v := range res.Parallel.Violations {
			fmt.Printf("  %s\n", v)
		}
		for _, m := range res.Mismatches {
			fmt.Printf("  oracle: %s\n", m)
		}
	} else if verbose {
		fmt.Printf("ok   %s (%d accesses, %d quiescent epochs)\n", name, res.Parallel.Accesses, res.Epochs)
	}
	return bad
}

// runSelftest checks the checker: the seeded-race programs must produce
// race reports naming both accesses — the write/read race under
// write-invalidate and the write/write overlap under lazy-release (whose
// barrier-time flush edges must not order same-interval writes).
func runSelftest(nodes int) int {
	if nodes < 2 {
		nodes = 2
	}
	res := check.CheckApp(check.Racer(), nodes, filaments.WriteInvalidate, true)
	if len(res.Parallel.Races) == 0 {
		fmt.Println("dfcheck selftest: FAILED — seeded race not detected")
		return 1
	}
	fmt.Printf("dfcheck selftest: seeded race detected (%d report(s)):\n", len(res.Parallel.Races))
	for _, r := range res.Parallel.Races {
		fmt.Printf("  %s\n", r)
	}
	overlap := check.CheckApp(check.RacerOverlap(), nodes, filaments.LazyRelease, true)
	if len(overlap.Parallel.Races) == 0 {
		fmt.Println("dfcheck selftest: FAILED — overlapping writers not detected under lazy-release")
		return 1
	}
	fmt.Printf("dfcheck selftest: lazy-release overlap detected (%d report(s)):\n", len(overlap.Parallel.Races))
	for _, r := range overlap.Parallel.Races {
		fmt.Printf("  %s\n", r)
	}
	return 0
}
