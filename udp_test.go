package filaments_test

import (
	"math"
	"testing"

	"filaments"
	"filaments/internal/apps/jacobi"
	"filaments/internal/apps/quadrature"
)

// TestUDPJacobiMatchesReference runs the DF Jacobi program on the
// real-time binding — four nodes, each a set of goroutines with its own
// UDP endpoint on loopback — and requires the result to match the plain
// sequential reference exactly: both compute 0.25*(up+down+left+right)
// over identical inputs in identical order, so every float64 is
// bitwise-equal.
func TestUDPJacobiMatchesReference(t *testing.T) {
	const n, iters, nodes = 64, 8, 4
	rep, grid, _, err := jacobi.DFUDP(jacobi.Config{N: n, Iters: iters, Nodes: nodes})
	if err != nil {
		t.Fatal(err)
	}
	want := jacobi.Reference(n, iters)
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			if grid[i][j] != want[i][j] {
				t.Fatalf("grid[%d][%d] = %v, want %v", i, j, grid[i][j], want[i][j])
			}
		}
	}
	if rep.Elapsed <= 0 {
		t.Fatal("report has no elapsed time")
	}
	var faults int64
	for _, nr := range rep.PerNode {
		faults += nr.DSM.ReadFaults + nr.DSM.WriteFaults
	}
	if faults == 0 {
		t.Fatal("no DSM faults: the grid never moved between nodes")
	}
}

// TestUDPQuadratureMatchesReference runs the fork/join quadrature program
// over the real-time binding with work stealing on. Steal races make the
// summation order nondeterministic, so the area is compared to the
// sequential reference within a rounding tolerance rather than exactly.
func TestUDPQuadratureMatchesReference(t *testing.T) {
	cfg := quadrature.Config{Nodes: 4, MaxDepth: 8}
	rep, got, err := quadrature.DFUDP(cfg, true)
	if err != nil {
		t.Fatal(err)
	}
	want, _ := quadrature.Reference(cfg)
	if math.Abs(got-want) > 1e-9*math.Abs(want) {
		t.Fatalf("area = %v, want %v (diff %v)", got, want, got-want)
	}
	if rep.Elapsed <= 0 {
		t.Fatal("report has no elapsed time")
	}
}

// redirectProgram exercises the DSM stale-owner redirect path: node 1
// takes ownership of a page from node 0, then node 2 (whose page table
// still names node 0) faults — node 0 answers with a redirect and node 2
// chases it to node 1. The returned program runs identically on both
// bindings; got receives node 2's read.
func redirectProgram(a filaments.Addr, got *float64) filaments.Program {
	return func(rt *filaments.Runtime, e *filaments.Exec) {
		if rt.ID() == 1 {
			e.WriteF64(a, 42) // migrate ownership 0 -> 1
		}
		e.Barrier()
		if rt.ID() == 2 {
			*got = e.ReadF64(a)
		}
		e.Barrier()
	}
}

// TestRedirectChaseSim drives redirectProgram through the simulation
// binding and checks the redirect was taken.
func TestRedirectChaseSim(t *testing.T) {
	cl := filaments.New(filaments.Config{Nodes: 3, Protocol: filaments.Migratory})
	a := cl.AllocOwned(8, 0)
	var got float64
	if _, err := cl.Run(redirectProgram(a, &got)); err != nil {
		t.Fatal(err)
	}
	if got != 42 {
		t.Fatalf("node 2 read %v, want 42", got)
	}
	if cl.Runtime(2).DSM().Stats().Redirected == 0 {
		t.Fatal("node 2 never chased a redirect")
	}
}

// TestRedirectChaseUDP drives the identical program through the real-time
// binding: the redirect crosses real UDP sockets.
func TestRedirectChaseUDP(t *testing.T) {
	cl, err := filaments.NewUDPCluster(filaments.UDPConfig{Nodes: 3, Protocol: filaments.Migratory})
	if err != nil {
		t.Fatal(err)
	}
	a := cl.AllocOwned(8, 0)
	var got float64
	if _, err := cl.Run(redirectProgram(a, &got)); err != nil {
		t.Fatal(err)
	}
	if got != 42 {
		t.Fatalf("node 2 read %v, want 42", got)
	}
	if cl.DSM(2).Stats().Redirected == 0 {
		t.Fatal("node 2 never chased a redirect")
	}
}

// TestUDPClusterBarrierAndDSM is a minimal cross-binding sanity check:
// writes on one node become visible on another after a barrier.
func TestUDPClusterBarrierAndDSM(t *testing.T) {
	cl, err := filaments.NewUDPCluster(filaments.UDPConfig{Nodes: 2})
	if err != nil {
		t.Fatal(err)
	}
	a := cl.AllocOwned(8, 0)
	var got float64
	_, err = cl.Run(func(rt *filaments.Runtime, e *filaments.Exec) {
		if rt.ID() == 0 {
			e.WriteF64(a, 42)
		}
		e.Barrier()
		if rt.ID() == 1 {
			got = e.ReadF64(a)
		}
		e.Barrier()
	})
	if err != nil {
		t.Fatal(err)
	}
	if got != 42 {
		t.Fatalf("node 1 read %v, want 42", got)
	}
}
