// Binary expression tree evaluation over the DSM with the migratory
// protocol (§4.4): fork/join filaments traverse a balanced tree whose
// leaves are matrices and whose interior operators multiply them.
//
// Each matrix lives in shared memory as one page group, so it migrates to
// whichever node needs it in a single Packet exchange. The example prints
// the speedup against the tail-end cap the paper derives (work doubles
// with each level down the tree, so nodes go idle near the root).
//
// Run with:
//
//	go run ./examples/exprtree [-height 6] [-n 32] [-nodes 8]
package main

import (
	"flag"
	"fmt"

	"filaments"
)

const fnEval = 1

func main() {
	var (
		height = flag.Int("height", 6, "tree height (2^height leaves)")
		n      = flag.Int("n", 32, "matrix dimension")
		nodes  = flag.Int("nodes", 8, "cluster size")
	)
	flag.Parse()

	seq := run(*height, *n, 1)
	par := run(*height, *n, *nodes)
	mults := 1<<*height - 1
	// Tail-end cap: sum over levels of ceil(2^level / p).
	capUnits := 0
	for l := 0; l < *height; l++ {
		m := 1 << l
		capUnits += (m + *nodes - 1) / *nodes
	}
	fmt.Printf("expression tree: height %d (%d multiplies of %d×%d)\n",
		*height, mults, *n, *n)
	fmt.Printf("  sequential : %8.2f s\n", seq.Seconds())
	fmt.Printf("  %d nodes    : %8.2f s  (speedup %.2f)\n",
		*nodes, par.Seconds(), seq.Seconds()/par.Seconds())
	fmt.Printf("  tail-end speedup cap: %.2f\n", float64(mults)/float64(capUnits))
}

func run(height, n, nodes int) *filaments.Report {
	cluster := filaments.New(filaments.Config{
		Nodes:     nodes,
		Protocol:  filaments.Migratory,
		WakeFront: true,
	})
	// One shared matrix slot per tree node (heap numbering, slot 1 = root).
	slots := make([]filaments.Matrix, 1<<(height+1))
	for k := 1; k < len(slots); k++ {
		slots[k] = cluster.AllocMatrix(n, n)
	}
	mulCost := filaments.Duration(n) * filaments.Duration(n) * filaments.Duration(n) * 2 * filaments.Microsecond

	report, err := cluster.Run(func(rt *filaments.Runtime, e *filaments.Exec) {
		if rt.ID() == 0 {
			for k := 1 << height; k < 1<<(height+1); k++ {
				for i := 0; i < n; i++ {
					for j := 0; j < n; j++ {
						e.WriteF64(slots[k].Addr(i, j), float64((i+j+k)%5)-2)
					}
				}
			}
		}
		eval := func(e *filaments.Exec, a filaments.Args) float64 {
			k, h := int(a[0]), int(a[1])
			rtl := e.Runtime()
			if h > 1 {
				j := rtl.NewJoin()
				rtl.Fork(e, j, fnEval, filaments.Args{int64(2 * k), int64(h - 1)})
				rtl.Fork(e, j, fnEval, filaments.Args{int64(2*k + 1), int64(h - 1)})
				j.Wait(e)
			}
			l, r, dst := slots[2*k], slots[2*k+1], slots[k]
			for i := 0; i < n; i++ {
				for jj := 0; jj < n; jj++ {
					var s float64
					for kk := 0; kk < n; kk++ {
						s += e.ReadF64(l.Addr(i, kk)) * e.ReadF64(r.Addr(kk, jj))
					}
					e.WriteF64(dst.Addr(i, jj), s)
				}
			}
			e.Compute(mulCost)
			return 1
		}
		rt.RegisterFJ(fnEval, eval)
		e.Barrier()
		rt.RunForkJoin(e, fnEval, filaments.Args{1, int64(height)})
	})
	if err != nil {
		panic(err)
	}
	return report
}
