// Quickstart: a minimal Distributed Filaments program.
//
// Four simulated workstations share a vector in distributed shared memory.
// Each node runs one run-to-completion filament per element of its strip,
// squaring the values the master initialized, and a reduction sums the
// results. The program prints the timing the simulated 1994-era cluster
// would have shown.
//
// Run with:
//
//	go run ./examples/quickstart
package main

import (
	"fmt"

	"filaments"
)

func main() {
	const (
		nodes = 4
		size  = 4096
	)
	cluster := filaments.New(filaments.Config{
		Nodes:    nodes,
		Protocol: filaments.WriteInvalidate,
	})

	// Shared data is allocated during setup; the master (node 0) owns it
	// initially and the other nodes page it in on demand.
	vec := cluster.Alloc(size * 8)

	var total float64
	report, err := cluster.Run(func(rt *filaments.Runtime, e *filaments.Exec) {
		// This function runs on every node (SPMD).
		if rt.ID() == 0 {
			for i := 0; i < size; i++ {
				e.WriteF64(vec+filaments.Addr(i*8), float64(i%100))
			}
		}
		e.Barrier() // data initialized before anyone computes

		// One filament per element of this node's strip.
		per := size / rt.Nodes()
		lo := rt.ID() * per
		pool := rt.NewPool("squares")
		var localSum float64
		square := func(e *filaments.Exec, a filaments.Args) {
			i := int(a[0])
			v := e.ReadF64(vec + filaments.Addr(i*8))
			localSum += v * v
			e.Compute(5 * filaments.Microsecond) // the work this stands for
		}
		for i := lo; i < lo+per; i++ {
			pool.Add(e, square, filaments.Args{int64(i)})
		}
		rt.RunPools(e)

		// A reduction both sums the per-node values and acts as a barrier.
		sum := e.Reduce(localSum, filaments.Sum)
		if rt.ID() == 0 {
			total = sum
		}
	})
	if err != nil {
		panic(err)
	}

	fmt.Printf("sum of squares      : %.0f\n", total)
	fmt.Printf("virtual running time: %.2f ms on %d nodes\n",
		report.Elapsed.Milliseconds(), nodes)
	fmt.Printf("network             : %d frames, %d bytes\n",
		report.Net.FramesSent, report.Net.BytesSent)
	for i, nr := range report.PerNode {
		fmt.Printf("node %d              : %d filaments run, %d page faults\n",
			i, nr.Runtime.FilamentsRun, nr.DSM.ReadFaults+nr.DSM.WriteFaults)
	}
}
