// packetnet demonstrates the Packet reliable datagram protocol on real UDP
// sockets (package udptrans): a miniature page server and a client that
// fetches pages, with injected packet loss to show the retransmission and
// reply-replay machinery from the paper's Figure 3.
//
// Run with:
//
//	go run ./examples/packetnet [-loss 0.3] [-pages 64]
package main

import (
	"encoding/binary"
	"flag"
	"fmt"
	"math/rand"
	"net"
	"sync/atomic"
	"time"

	"filaments/internal/udptrans"
)

const (
	svcPage  = 1
	pageSize = 4096
)

func main() {
	var (
		loss  = flag.Float64("loss", 0.3, "probability of dropping each datagram")
		pages = flag.Int("pages", 64, "pages to fetch")
	)
	flag.Parse()
	rng := rand.New(rand.NewSource(1))
	var dropped atomic.Int64

	drop := func(b []byte) bool {
		if rng.Float64() < *loss {
			dropped.Add(1)
			return true
		}
		return false
	}

	server, err := udptrans.Listen("127.0.0.1:0", udptrans.Options{DropSend: drop})
	if err != nil {
		panic(err)
	}
	defer server.Close()
	var served atomic.Int64
	server.Register(svcPage, udptrans.Service{
		Idempotent: true, // replies are regenerated from current contents
		Handler: func(_ *net.UDPAddr, req []byte) ([]byte, bool) {
			id := binary.BigEndian.Uint32(req)
			served.Add(1)
			page := make([]byte, pageSize)
			for i := range page {
				page[i] = byte(id)
			}
			return page, false
		},
	})

	client, err := udptrans.Listen("127.0.0.1:0", udptrans.Options{
		DropSend:          drop,
		RetransmitTimeout: 30 * time.Millisecond,
		MaxRetries:        20,
	})
	if err != nil {
		panic(err)
	}
	defer client.Close()

	start := time.Now()
	for id := 0; id < *pages; id++ {
		req := make([]byte, 4)
		binary.BigEndian.PutUint32(req, uint32(id))
		page, err := client.Call(server.Addr(), svcPage, req)
		if err != nil {
			panic(fmt.Sprintf("page %d: %v", id, err))
		}
		if len(page) != pageSize || page[0] != byte(id) || page[pageSize-1] != byte(id) {
			panic(fmt.Sprintf("page %d corrupted", id))
		}
	}
	fmt.Printf("fetched %d pages of %d bytes over real UDP with %.0f%% loss\n",
		*pages, pageSize, *loss*100)
	fmt.Printf("  wall time     : %v\n", time.Since(start).Round(time.Millisecond))
	fmt.Printf("  datagrams lost: %d (recovered by retransmission)\n", dropped.Load())
	fmt.Printf("  server served : %d requests (duplicates re-served from current contents)\n",
		served.Load())

	// Per-endpoint transport health, the same counters package packet
	// reports inside the simulation.
	cs, ss := client.Stats(), server.Stats()
	fmt.Printf("  client        : %d requests, %d retransmits, %d replies received, %d timeouts\n",
		cs.RequestsSent, cs.Retransmits, cs.RepliesReceived, cs.Timeouts)
	fmt.Printf("  server        : %d replies sent, %d dup-coalesced, %d cache hits, in-flight high-water %d\n",
		ss.RepliesSent, ss.DupSuppressed, ss.CacheHits, ss.InFlightHWM)
}
