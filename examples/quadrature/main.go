// Adaptive quadrature with fork/join filaments: the paper's recursive
// parallelism showcase (§2.3, §4.3).
//
// The integrand has a sharp needle near one end of the interval, so a
// static split across nodes is badly imbalanced. The fork/join program
// just writes the natural recursion; the runtime distributes the initial
// forks down the binomial tree and receiver-initiated stealing balances
// the rest. The example prints the dynamic-balancing win over the static
// split.
//
// Run with:
//
//	go run ./examples/quadrature [-nodes 8]
package main

import (
	"flag"
	"fmt"
	"math"

	"filaments"
)

const (
	evalCost = 150 * filaments.Microsecond
	fnQuad   = 1
)

// f has most of its quadrature work concentrated near x = 9.7.
func f(x float64) float64 {
	return math.Cos(x) + 2 + 0.01/((x-9.7)*(x-9.7)+1e-5)
}

func main() {
	nodes := flag.Int("nodes", 8, "cluster size")
	flag.Parse()

	area, dyn := integrate(*nodes, true)
	_, stat := integrate(*nodes, false)
	fmt.Printf("∫f over [0,10] ≈ %.6f on %d nodes\n", area, *nodes)
	fmt.Printf("  with stealing   : %8.2f s\n", dyn.Seconds())
	fmt.Printf("  without stealing: %8.2f s\n", stat.Seconds())
	fmt.Printf("  dynamic load balancing won %.1f%%\n",
		100*(stat.Seconds()-dyn.Seconds())/stat.Seconds())
}

func integrate(nodes int, stealing bool) (float64, *filaments.Report) {
	cluster := filaments.New(filaments.Config{
		Nodes:     nodes,
		Stealing:  stealing,
		WakeFront: true, // fork/join scheduling policy
	})
	bits := func(x float64) int64 { return int64(math.Float64bits(x)) }
	val := func(b int64) float64 { return math.Float64frombits(uint64(b)) }

	var area float64
	report, err := cluster.Run(func(rt *filaments.Runtime, e *filaments.Exec) {
		quad := func(e *filaments.Exec, a filaments.Args) float64 {
			lo, hi := val(a[0]), val(a[1])
			fa, fb, fm := val(a[2]), val(a[3]), val(a[4])
			depth := a[5]
			m := (lo + hi) / 2
			e.Compute(2 * evalCost)
			lm, rm := f((lo+m)/2), f((m+hi)/2)
			trap := (hi - lo) * (fa + fb) / 2
			simp := (hi - lo) * (fa + 4*lm + 2*fm + 4*rm + fb) / 12
			if depth <= 0 || math.Abs(simp-trap) < 1e-6*(hi-lo) {
				return simp
			}
			j := rt.NewJoin()
			rt.Fork(e, j, fnQuad, filaments.Args{a[0], bits(m), a[2], bits(fm), bits(lm), depth - 1})
			rt.Fork(e, j, fnQuad, filaments.Args{bits(m), a[1], bits(fm), a[3], bits(rm), depth - 1})
			return j.Wait(e)
		}
		rt.RegisterFJ(fnQuad, quad)
		var root filaments.Args
		if rt.ID() == 0 {
			e.Compute(3 * evalCost)
			root = filaments.Args{bits(0), bits(10), bits(f(0)), bits(f(10)), bits(f(5)), 30}
		}
		v := rt.RunForkJoin(e, fnQuad, root)
		if rt.ID() == 0 {
			area = v
		}
	})
	if err != nil {
		panic(err)
	}
	return area, report
}
