// Jacobi iteration on the simulated cluster: the paper's flagship
// iterative-filament application (§4.2).
//
// The program solves Laplace's equation on an n×n grid with a hot top
// edge. Each node runs three pools of iterative filaments — top row,
// bottom row, interior — so the two faulting pools are frontloaded and the
// interior computation overlaps the neighbour-edge page fetches. It then
// compares the same run without overlap (a single pool, Figure 12 in the
// paper) and prints the improvement.
//
// Run with:
//
//	go run ./examples/jacobi [-n 128] [-iters 100] [-nodes 4]
package main

import (
	"flag"
	"fmt"

	"filaments"
)

func main() {
	var (
		n     = flag.Int("n", 128, "grid dimension")
		iters = flag.Int("iters", 100, "iterations")
		nodes = flag.Int("nodes", 4, "cluster size")
	)
	flag.Parse()

	overlap := run(*n, *iters, *nodes, false)
	single := run(*n, *iters, *nodes, true)
	fmt.Printf("\n%d×%d grid, %d iterations, %d nodes (implicit-invalidate)\n",
		*n, *n, *iters, *nodes)
	fmt.Printf("  three pools (overlap)  : %8.2f s\n", overlap.Seconds())
	fmt.Printf("  single pool (no overlap): %7.2f s\n", single.Seconds())
	fmt.Printf("  overlap improvement    : %8.1f %%  (paper: 21%% on 8 nodes)\n",
		100*(single.Seconds()-overlap.Seconds())/single.Seconds())
}

func run(n, iters, nodes int, singlePool bool) *filaments.Report {
	cluster := filaments.New(filaments.Config{
		Nodes:    nodes,
		Protocol: filaments.ImplicitInvalidate,
	})
	src := cluster.AllocMatrixOwned(n, n, 0)
	dst := cluster.AllocMatrixOwned(n, n, 0)

	report, err := cluster.Run(func(rt *filaments.Runtime, e *filaments.Exec) {
		if rt.ID() == 0 {
			for i := 0; i < n; i++ {
				for j := 0; j < n; j++ {
					v := 0.0
					if i == 0 {
						v = 100 // hot top edge
					}
					e.WriteF64(src.Addr(i, j), v)
					e.WriteF64(dst.Addr(i, j), v)
				}
			}
		}
		e.Barrier()

		// My strip of rows, clipped to the interior.
		per := n / rt.Nodes()
		lo, hi := rt.ID()*per, (rt.ID()+1)*per
		if rt.ID() == rt.Nodes()-1 {
			hi = n
		}
		if lo < 1 {
			lo = 1
		}
		if hi > n-1 {
			hi = n - 1
		}

		grids := struct{ s, d filaments.Matrix }{src, dst}
		point := func(e *filaments.Exec, a filaments.Args) {
			i, j := int(a[0]), int(a[1])
			v := 0.25 * (e.ReadF64(grids.s.Addr(i-1, j)) +
				e.ReadF64(grids.s.Addr(i+1, j)) +
				e.ReadF64(grids.s.Addr(i, j-1)) +
				e.ReadF64(grids.s.Addr(i, j+1)))
			e.WriteF64(grids.d.Addr(i, j), v)
			e.Compute(9 * filaments.Microsecond) // ~1994-era point update
		}
		addRows := func(p *filaments.Pool, r0, r1 int) {
			for i := r0; i < r1; i++ {
				for j := 1; j < n-1; j++ {
					p.Add(e, point, filaments.Args{int64(i), int64(j)})
				}
			}
		}
		if singlePool || hi-lo < 3 {
			addRows(rt.NewPool("all"), lo, hi)
		} else {
			// Faulting pools first: their edge-page fetches overlap the
			// interior pool's computation.
			addRows(rt.NewPool("top"), lo, lo+1)
			addRows(rt.NewPool("bottom"), hi-1, hi)
			addRows(rt.NewPool("interior"), lo+1, hi-1)
		}
		for it := 0; it < iters; it++ {
			rt.RunPools(e)
			e.Reduce(0, filaments.Max) // convergence check + barrier
			grids.s, grids.d = grids.d, grids.s
		}
	})
	if err != nil {
		panic(err)
	}
	return report
}
