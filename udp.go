package filaments

import (
	"fmt"
	"net"
	"sync"
	"time"

	"filaments/internal/cost"
	"filaments/internal/dsm"
	"filaments/internal/filament"
	"filaments/internal/kernel"
	"filaments/internal/obs"
	"filaments/internal/reduce"
	"filaments/internal/rtnode"
	"filaments/internal/udptrans"
)

// This file is the real-time face of the package: the same DF kernel
// layers (DSM, reductions, filaments) that run inside the deterministic
// simulation are wired to internal/rtnode and internal/udptrans instead,
// so a program runs over real UDP sockets in real goroutines. UDPCluster
// hosts every node in one process (endpoints on loopback); UDPNode hosts
// one node of a multi-process cluster (see cmd/dfnode).
//
// The cluster's lifecycle is split in two since the service layer
// (internal/cluster/daemon) arrived: a UDPCluster is built once — its
// endpoints, sockets, and peers' reply caches live for the daemon's
// lifetime — and then hosts many UDPRuns, each a complete kernel stack
// (address space, nodes, DSMs, reducers, runtimes) on its own service-id
// lane (rtnode/mux.go), so several jobs can run concurrently over the
// same sockets. The single-program form (NewUDPCluster → Alloc → Run)
// still works: it is a cluster with one default run that closes the
// endpoints when the run completes.
//
// Results are exact — the identical kernel code moves the data — but time
// is wall time, so performance depends on the host, not on the paper's
// calibrated cost model.

// UDPConfig describes a single-process UDP cluster. The per-run fields
// (Protocol, SharedBytes, Stealing, MaxWorkers, WakeFront, Model,
// Tracer, Monitor, MirageWindow) seed the default run for the
// single-program form; StartRun takes its own UDPRunConfig.
type UDPConfig struct {
	// Nodes is the cluster size (>= 1). Each node gets its own UDP
	// endpoint on 127.0.0.1.
	Nodes int
	// Protocol is the page consistency protocol (default Migratory).
	Protocol Protocol
	// SharedBytes is the size of the shared address space (default 64 MB).
	SharedBytes int64
	// Stealing enables receiver-initiated fork/join load balancing.
	Stealing bool
	// MaxWorkers caps per-node fork/join server threads (default 16).
	MaxWorkers int
	// WakeFront schedules page-arrival wakeups at the front (fork/join
	// setting); it is advisory here — the Go scheduler owns ordering.
	WakeFront bool
	// Model overrides the cost model used for ledger accounting; nil uses
	// cost.Default.
	Model *CostModel
	// Tracer, when non-nil, records kernel events from every node in wall
	// time.
	Tracer *Tracer
	// Monitor, when non-nil, observes every node's DSM accesses, page
	// transfers, and synchronization events. Under this binding callbacks
	// arrive concurrently from per-node monitor goroutines, so the Monitor
	// must synchronize internally.
	Monitor Monitor
	// MirageWindow overrides the cost model's Mirage anti-thrashing
	// window: 0 keeps the model's default, a negative value disables the
	// window, and a positive value replaces it.
	MirageWindow Duration
	// Tuning collects the wall-clock wire-path knobs.
	Tuning UDPTuning
}

// UDPTuning tunes the real-time wire path. Every knob is cluster-wide:
// all nodes must run the same values, like the protocol choice.
type UDPTuning struct {
	// Codec selects the payload encoding: "" or "binary" for the
	// hand-rolled zero-allocation codec, "gob" for the previous release's
	// framing (kept for one release as a fallback).
	Codec string
	// NoDiffs disables twin-and-diff page shipping, which is on by
	// default under UDP (the simulation keeps whole pages either way, so
	// its byte accounting matches the paper's tables).
	NoDiffs bool
	// BatchWindow coalesces small one-way events per peer into single
	// datagrams, holding each back at most this long. Zero disables
	// batching (the default: a delayed barrier release costs more than a
	// datagram header saves unless events are bursty).
	BatchWindow time.Duration
}

// UDPRunConfig describes one program run on a live UDPCluster. Zero
// values take the same defaults as UDPConfig.
type UDPRunConfig struct {
	// Protocol is the page consistency protocol (default Migratory).
	Protocol Protocol
	// SharedBytes is the size of the run's shared address space (default
	// 64 MB). Each run has its own address space.
	SharedBytes int64
	// Stealing enables receiver-initiated fork/join load balancing.
	Stealing bool
	// MaxWorkers caps per-node fork/join server threads (default 16).
	MaxWorkers int
	// WakeFront is advisory under real time (see UDPConfig.WakeFront).
	WakeFront bool
	// Model overrides the ledger cost model; nil uses cost.Default.
	Model *CostModel
	// Tracer, when non-nil, records this run's kernel events.
	Tracer *Tracer
	// Monitor, when non-nil, observes this run's DSM (see
	// UDPConfig.Monitor).
	Monitor Monitor
	// MirageWindow overrides the Mirage window (see UDPConfig).
	MirageWindow Duration
}

// UDPNodeReport is one node's accounting after a real-time run.
type UDPNodeReport struct {
	CPU       kernel.Account
	DSM       dsm.Stats
	Transport udptrans.Stats
	Runtime   filament.Stats
}

// UDPReport summarizes a real-time run.
type UDPReport struct {
	// Elapsed is the wall time from Run's start until the last node's main
	// thread finished.
	Elapsed time.Duration
	// PerNode holds each node's counters. Transport counters are
	// endpoint-cumulative: on a run-many cluster they include other runs'
	// traffic (the per-run view is Metrics).
	PerNode []UDPNodeReport
	// Metrics is the run-scoped metric aggregation: every node's counters
	// summed by name, plus the endpoints' counters as the interval delta
	// across the run. On a cluster running jobs concurrently the node
	// counters are exact per-run; the endpoint deltas also include
	// overlapping runs' wire traffic (documented in DESIGN.md §6).
	Metrics []Sample
}

// UDPCluster is a set of live UDP endpoints on loopback hosting DF
// program runs. Create with NewUDPCluster; then either use the
// single-program form (Alloc/Run/Peek on the cluster itself, which
// closes the cluster when the run finishes) or the service form
// (StartRun per job, many runs concurrently, Close when the daemon
// exits).
type UDPCluster struct {
	cfg   UDPConfig
	codec rtnode.Codec
	eps   []*udptrans.Endpoint
	addrs []*net.UDPAddr
	muxes []*rtnode.EventMux

	mu       sync.Mutex
	nextLane uint16
	freed    []uint16
	active   []*UDPRun
	closed   bool

	// The single-program form's default run, built on first use so a
	// service cluster (StartRun per job) never pays for it.
	defOnce sync.Once
	def     *UDPRun
	defErr  error
	ran     bool
}

// rtOptions configures the real-time binding's endpoints with an
// effectively unbounded retry budget: one logical request keeps one
// sequence number until it is answered, so the receiver's reply cache
// absorbs duplicates and non-idempotent handlers execute exactly once.
// Re-issuing a timed-out call under a fresh sequence number would
// re-execute the handler — a steal grant whose reply was lost would lose
// the stolen filament with it.
func rtOptions(t UDPTuning) udptrans.Options {
	return udptrans.Options{MaxRetries: 1 << 30, BatchWindow: t.BatchWindow}
}

// NewUDPCluster builds a cluster from cfg, opening one UDP endpoint per
// node on 127.0.0.1 and seeding the default run from cfg's per-run
// fields.
func NewUDPCluster(cfg UDPConfig) (*UDPCluster, error) {
	if cfg.Nodes <= 0 {
		return nil, fmt.Errorf("filaments: UDPConfig.Nodes must be >= 1")
	}
	codec, err := rtnode.ParseCodec(cfg.Tuning.Codec)
	if err != nil {
		return nil, fmt.Errorf("filaments: %w", err)
	}
	c := &UDPCluster{cfg: cfg, codec: codec}
	c.eps = make([]*udptrans.Endpoint, cfg.Nodes)
	c.addrs = make([]*net.UDPAddr, cfg.Nodes)
	c.muxes = make([]*rtnode.EventMux, cfg.Nodes)
	for i := range c.eps {
		ep, err := udptrans.Listen("127.0.0.1:0", rtOptions(cfg.Tuning))
		if err != nil {
			for _, open := range c.eps[:i] {
				open.Close() //nolint:errcheck // best-effort unwind
			}
			return nil, err
		}
		c.eps[i] = ep
		c.addrs[i] = ep.Addr()
		c.muxes[i] = rtnode.NewEventMux(ep)
	}
	return c, nil
}

// defaultRun builds (once) and returns the default run the
// single-program API delegates to, seeded from UDPConfig's per-run
// fields. A fresh cluster always has a lane free, so failure here means
// the cluster was already closed — a misuse, reported as a panic like
// any other use-after-close.
func (c *UDPCluster) defaultRun() *UDPRun {
	c.defOnce.Do(func() {
		c.def, c.defErr = c.StartRun(UDPRunConfig{
			Protocol:     c.cfg.Protocol,
			SharedBytes:  c.cfg.SharedBytes,
			Stealing:     c.cfg.Stealing,
			MaxWorkers:   c.cfg.MaxWorkers,
			WakeFront:    c.cfg.WakeFront,
			Model:        c.cfg.Model,
			Tracer:       c.cfg.Tracer,
			Monitor:      c.cfg.Monitor,
			MirageWindow: c.cfg.MirageWindow,
		})
	})
	if c.defErr != nil {
		panic(fmt.Sprintf("filaments: default run on closed cluster: %v", c.defErr))
	}
	return c.def
}

// Nodes returns the cluster size.
func (c *UDPCluster) Nodes() int { return c.cfg.Nodes }

// Addrs returns every node's endpoint address, indexed by node ID.
func (c *UDPCluster) Addrs() []*net.UDPAddr {
	return append([]*net.UDPAddr(nil), c.addrs...)
}

// Endpoint returns node i's endpoint (the daemon registers its
// membership services on endpoint 0).
func (c *UDPCluster) Endpoint(i int) *udptrans.Endpoint { return c.eps[i] }

// acquireLane hands out a free service-id lane, recycling lanes of
// finished runs so a long-lived daemon never exhausts the lane space.
func (c *UDPCluster) acquireLane() (uint16, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.closed {
		return 0, fmt.Errorf("filaments: UDP cluster is closed")
	}
	if n := len(c.freed); n > 0 {
		lane := c.freed[n-1]
		c.freed = c.freed[:n-1]
		return lane, nil
	}
	if c.nextLane >= rtnode.MaxLanes {
		return 0, fmt.Errorf("filaments: all %d lanes busy", rtnode.MaxLanes)
	}
	lane := c.nextLane
	c.nextLane++
	return lane, nil
}

func (c *UDPCluster) finishRun(r *UDPRun) {
	c.mu.Lock()
	defer c.mu.Unlock()
	for i, a := range c.active {
		if a == r {
			c.active = append(c.active[:i], c.active[i+1:]...)
			break
		}
	}
	c.freed = append(c.freed, r.lane)
}

// netMetrics aggregates every endpoint's counter registry.
func (c *UDPCluster) netMetrics() []Sample {
	var regs []*obs.Registry
	for _, ep := range c.eps {
		regs = append(regs, ep.Metrics())
	}
	return obs.Aggregate(regs...)
}

// StartRun builds a fresh kernel stack — address space, nodes, DSMs,
// reducers, runtimes — on its own service-id lane over the cluster's
// live endpoints. Runs are independent and may execute concurrently;
// each is used once: allocate, Run, Peek.
func (c *UDPCluster) StartRun(rc UDPRunConfig) (*UDPRun, error) {
	if rc.SharedBytes == 0 {
		rc.SharedBytes = 64 << 20
	}
	if rc.MaxWorkers == 0 {
		rc.MaxWorkers = 16
	}
	lane, err := c.acquireLane()
	if err != nil {
		return nil, err
	}
	r := &UDPRun{c: c, lane: lane}
	if rc.Model != nil {
		r.model = *rc.Model
	} else {
		r.model = cost.Default()
	}
	switch {
	case rc.MirageWindow > 0:
		r.model.MirageWindow = rc.MirageWindow
	case rc.MirageWindow < 0:
		r.model.MirageWindow = 0
	}
	r.space = dsm.NewSpace(rc.SharedBytes)
	if rc.Monitor != nil {
		r.space.SetMonitor(rc.Monitor)
	}
	r.netBase = c.netMetrics()
	// Same construction order as the simulated Cluster: every DSM exists
	// before the first allocation.
	for i := 0; i < c.cfg.Nodes; i++ {
		node := rtnode.NewNode(kernel.NodeID(i), &r.model)
		if rc.Tracer != nil {
			node.Obs().SetTracer(rc.Tracer)
		}
		tr := rtnode.NewTransportOn(c.muxes[i], node, lane)
		tr.SetCodec(c.codec)
		tr.SetPeers(c.addrs)
		d := dsm.New(node, tr, r.space, rc.Protocol)
		d.SetDiffs(!c.cfg.Tuning.NoDiffs)
		d.WakeFront = rc.WakeFront
		red := reduce.New(node, tr, d, c.cfg.Nodes)
		rt := filament.New(node, tr, d, red, c.cfg.Nodes)
		rt.Stealing = rc.Stealing
		rt.MaxWorkers = rc.MaxWorkers
		r.nodes = append(r.nodes, node)
		r.trs = append(r.trs, tr)
		r.dsms = append(r.dsms, d)
		r.reds = append(r.reds, red)
		r.rts = append(r.rts, rt)
	}
	c.mu.Lock()
	c.active = append(c.active, r)
	c.mu.Unlock()
	return r, nil
}

// Metrics aggregates the cluster's live counters: every endpoint's
// registry plus every active run's node registries, summed by name,
// sorted by name. Safe to call at any time from any goroutine; counters
// are race-free.
func (c *UDPCluster) Metrics() []Sample {
	c.mu.Lock()
	runs := append([]*UDPRun(nil), c.active...)
	c.mu.Unlock()
	var regs []*obs.Registry
	for _, ep := range c.eps {
		regs = append(regs, ep.Metrics())
	}
	for _, r := range runs {
		for _, n := range r.nodes {
			regs = append(regs, n.Obs().Reg)
		}
	}
	if c.def != nil {
		// The default run leaves active when it finishes, but the
		// single-program form reads Metrics after Run; keep its node
		// counters visible.
		if done := c.def.finished(); done {
			for _, n := range c.def.nodes {
				regs = append(regs, n.Obs().Reg)
			}
		}
	}
	return obs.Aggregate(regs...)
}

// Close shuts the cluster's endpoints down. Calls still in flight on
// active runs fail over to their shutdown paths; the single-program form
// calls this implicitly at the end of Run.
func (c *UDPCluster) Close() error {
	c.mu.Lock()
	if c.closed {
		c.mu.Unlock()
		return nil
	}
	c.closed = true
	c.mu.Unlock()
	var first error
	for _, ep := range c.eps {
		if err := ep.Close(); err != nil && first == nil {
			first = err
		}
	}
	return first
}

// The single-program face: every method delegates to the default run,
// preserving the original one-cluster-one-run API.

// Runtime returns node i's runtime (for inspecting stats after Run).
func (c *UDPCluster) Runtime(i int) *Runtime { return c.defaultRun().Runtime(i) }

// Outstanding sums the requests still awaiting replies across every
// node's endpoint. After Run returns it must be zero: a nonzero value
// means a protocol layer leaked an in-flight request past its barrier.
func (c *UDPCluster) Outstanding() int { return c.defaultRun().Outstanding() }

// DSM returns node i's DSM instance (for inspecting stats after Run).
func (c *UDPCluster) DSM(i int) *dsm.DSM { return c.defaultRun().DSM(i) }

// EnableTracing installs t as every node's trace sink. Equivalent to
// setting UDPConfig.Tracer before NewUDPCluster.
func (c *UDPCluster) EnableTracing(t *Tracer) { c.defaultRun().EnableTracing(t) }

// Alloc reserves shared memory owned initially by node 0.
func (c *UDPCluster) Alloc(size int64) Addr { return c.defaultRun().Alloc(size) }

// AllocOwned reserves shared memory owned initially by the given node.
func (c *UDPCluster) AllocOwned(size int64, owner int) Addr {
	return c.defaultRun().AllocOwned(size, owner)
}

// AllocMatrixOwned allocates a shared matrix initially owned by one node.
func (c *UDPCluster) AllocMatrixOwned(rows, cols, owner int) Matrix {
	return c.defaultRun().AllocMatrixOwned(rows, cols, owner)
}

// AllocMatrixStriped allocates a matrix owned in one horizontal strip per
// node.
func (c *UDPCluster) AllocMatrixStriped(rows, cols int) Matrix {
	return c.defaultRun().AllocMatrixStriped(rows, cols)
}

// Run executes program on the default run and closes the cluster — the
// single-program form. It may be called once per UDPCluster.
func (c *UDPCluster) Run(program Program) (*UDPReport, error) {
	if c.ran {
		return nil, fmt.Errorf("filaments: UDP cluster already ran")
	}
	c.ran = true
	rep, err := c.defaultRun().Run(program)
	if cerr := c.Close(); err == nil && cerr != nil {
		err = cerr
	}
	return rep, err
}

// PeekF64 reads a shared float64 from whichever node owns it, for result
// verification after Run.
func (c *UDPCluster) PeekF64(a Addr) float64 { return c.defaultRun().PeekF64(a) }

// PeekMatrix copies a shared matrix out of the cluster after Run.
func (c *UDPCluster) PeekMatrix(m Matrix) [][]float64 { return c.defaultRun().PeekMatrix(m) }

// UDPRun is one program run on a live UDPCluster: a complete kernel
// stack on its own service-id lane. Allocate shared data, call Run once,
// then Peek the results; the lane and transports are reclaimed when Run
// returns, the endpoints stay up for the next run.
type UDPRun struct {
	c     *UDPCluster
	lane  uint16
	model cost.Model
	space *dsm.Space
	nodes []*rtnode.Node
	trs   []*rtnode.Transport
	dsms  []*dsm.DSM
	reds  []*reduce.Reducer
	rts   []*filament.Runtime

	netBase []Sample // endpoint counters at StartRun, for the run delta

	mu   sync.Mutex
	ran  bool
	done bool
}

// Lane returns the run's service-id lane (diagnostics).
func (r *UDPRun) Lane() int { return int(r.lane) }

// Nodes returns the cluster size.
func (r *UDPRun) Nodes() int { return r.c.cfg.Nodes }

// Runtime returns node i's runtime (for inspecting stats after Run).
func (r *UDPRun) Runtime(i int) *Runtime { return r.rts[i] }

// DSM returns node i's DSM instance (for inspecting stats after Run).
func (r *UDPRun) DSM(i int) *dsm.DSM { return r.dsms[i] }

// EnableTracing installs t as every node's trace sink for this run.
func (r *UDPRun) EnableTracing(t *Tracer) {
	for _, n := range r.nodes {
		n.Obs().SetTracer(t)
	}
}

// Outstanding sums this run's requests still awaiting replies. After Run
// returns it must be zero: a nonzero value means a protocol layer leaked
// an in-flight request past its barrier.
func (r *UDPRun) Outstanding() int {
	n := 0
	for _, rt := range r.rts {
		n += rt.Endpoint().Outstanding()
	}
	return n
}

func (r *UDPRun) finished() bool {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.done
}

// Metrics aggregates the run's node counters plus the endpoints'
// counters as the delta since StartRun. Node counters are exactly this
// run's; the endpoint delta also includes any overlapping run's wire
// traffic (endpoints are shared — see DESIGN.md §6).
func (r *UDPRun) Metrics() []Sample {
	var regs []*obs.Registry
	for _, n := range r.nodes {
		regs = append(regs, n.Obs().Reg)
	}
	return obs.Merge(obs.Aggregate(regs...), obs.Delta(r.c.netMetrics(), r.netBase))
}

// Alloc reserves shared memory owned initially by node 0.
func (r *UDPRun) Alloc(size int64) Addr {
	return r.space.Alloc(size, dsm.AllocOpts{})
}

// AllocOwned reserves shared memory owned initially by the given node.
func (r *UDPRun) AllocOwned(size int64, owner int) Addr {
	return r.space.Alloc(size, dsm.AllocOpts{Owner: kernel.NodeID(owner)})
}

// AllocMatrixOwned allocates a shared matrix initially owned by one node.
func (r *UDPRun) AllocMatrixOwned(rows, cols, owner int) Matrix {
	return dsm.AllocMatrix(r.space, rows, cols, dsm.AllocOpts{Owner: kernel.NodeID(owner)})
}

// AllocMatrixStriped allocates a matrix owned in one horizontal strip per
// node.
func (r *UDPRun) AllocMatrixStriped(rows, cols int) Matrix {
	return dsm.AllocMatrixStriped(r.space, rows, cols, r.c.cfg.Nodes)
}

// Run executes program on every node and returns the run report. It may
// be called once per UDPRun; on completion the run's transports detach
// from the shared endpoints (which stay up) and its lane is recycled.
// A non-nil report may accompany a non-nil error when the run completed
// but failed its quiescence invariant.
func (r *UDPRun) Run(program Program) (*UDPReport, error) {
	r.mu.Lock()
	if r.ran {
		r.mu.Unlock()
		return nil, fmt.Errorf("filaments: UDP run already ran")
	}
	r.ran = true
	r.mu.Unlock()
	start := time.Now()
	var wg sync.WaitGroup
	for i := range r.nodes {
		i := i
		wg.Add(1)
		r.nodes[i].Spawn("main", func(t kernel.Thread) {
			defer wg.Done()
			e := r.rts[i].NewExec(t)
			program(r.rts[i], e)
			e.Flush()
		})
	}
	// Every main has passed its final synchronization before the first
	// transport detaches, so any straggling retransmissions are still
	// answered (from the reply caches) while it matters.
	wg.Wait()
	rep := &UDPReport{Elapsed: time.Since(start), PerNode: make([]UDPNodeReport, r.c.cfg.Nodes)}
	for _, tr := range r.trs {
		tr.Detach()
	}
	// Detach drained the async request goroutines, so the per-transport
	// outstanding counts are settled; the invariant transconf enforces
	// after every scenario must hold after every job too.
	leaked := r.Outstanding()
	for _, n := range r.nodes {
		n.Close()
		n.Wait()
	}
	for i := range rep.PerNode {
		rep.PerNode[i] = UDPNodeReport{
			CPU:       r.nodes[i].Account(),
			DSM:       r.dsms[i].Stats(),
			Transport: r.trs[i].Endpoint().Stats(),
			Runtime:   r.rts[i].Stats(),
		}
	}
	rep.Metrics = r.Metrics()
	r.mu.Lock()
	r.done = true
	r.mu.Unlock()
	r.c.finishRun(r)
	if leaked != 0 {
		return rep, fmt.Errorf("filaments: %d requests still outstanding after run", leaked)
	}
	return rep, nil
}

// PeekF64 reads a shared float64 from whichever node owns it, for result
// verification after Run.
func (r *UDPRun) PeekF64(a Addr) float64 {
	for i, d := range r.dsms {
		var v float64
		var ok bool
		r.nodes[i].WithLock(func() { v, ok = d.Peek(a) })
		if ok {
			return v
		}
	}
	panic(fmt.Sprintf("filaments: no owner holds address %d", a))
}

// PeekMatrix copies a shared matrix out of the cluster after Run.
func (r *UDPRun) PeekMatrix(m Matrix) [][]float64 {
	out := make([][]float64, m.Rows)
	for i := range out {
		row := make([]float64, m.Cols)
		for j := range row {
			row[j] = r.PeekF64(m.Addr(i, j))
		}
		out[i] = row
	}
	return out
}

// UDPNodeConfig describes one node of a multi-process UDP cluster. Every
// process must allocate identical shared data in identical order (the
// SPMD convention), so the address spaces agree.
type UDPNodeConfig struct {
	// ID is this node's identity, in [0, Nodes).
	ID int
	// Nodes is the cluster size.
	Nodes int
	// Peers holds every node's endpoint address, indexed by node ID; entry
	// ID is the address this node binds.
	Peers []string
	// Protocol is the page consistency protocol (default Migratory).
	Protocol Protocol
	// SharedBytes is the size of the shared address space (default 64 MB).
	SharedBytes int64
	// Stealing enables receiver-initiated fork/join load balancing.
	Stealing bool
	// MaxWorkers caps per-node fork/join server threads (default 16).
	MaxWorkers int
	// WakeFront is advisory under real time (see UDPConfig.WakeFront).
	WakeFront bool
	// Linger is how long the node keeps servicing requests after its own
	// main finishes, so slower peers' retransmissions still get answered
	// (default 500 ms).
	Linger time.Duration
	// KeepOpen leaves the endpoint open when Run completes; the caller
	// owns shutdown via Close. The service layer needs this ordering: a
	// worker's membership Leave rides the same socket as kernel traffic,
	// so it must be sent after the epoch but before the socket dies.
	KeepOpen bool
	// Model overrides the ledger cost model; nil uses cost.Default.
	Model *CostModel
	// Tuning collects the wall-clock wire-path knobs; identical values on
	// every process of the cluster.
	Tuning UDPTuning
}

// UDPNode is one process's node in a multi-process cluster.
type UDPNode struct {
	cfg   UDPNodeConfig
	model cost.Model
	space *dsm.Space
	node  *rtnode.Node
	tr    *rtnode.Transport
	d     *dsm.DSM
	red   *reduce.Reducer
	rt    *filament.Runtime
	ran   bool

	shutdown sync.Once
}

// NewUDPNode builds this process's node and binds its endpoint.
func NewUDPNode(cfg UDPNodeConfig) (*UDPNode, error) {
	if cfg.Nodes <= 0 || cfg.ID < 0 || cfg.ID >= cfg.Nodes {
		return nil, fmt.Errorf("filaments: bad node identity %d of %d", cfg.ID, cfg.Nodes)
	}
	if len(cfg.Peers) != cfg.Nodes {
		return nil, fmt.Errorf("filaments: %d peer addresses for %d nodes", len(cfg.Peers), cfg.Nodes)
	}
	if cfg.SharedBytes == 0 {
		cfg.SharedBytes = 64 << 20
	}
	if cfg.MaxWorkers == 0 {
		cfg.MaxWorkers = 16
	}
	if cfg.Linger == 0 {
		cfg.Linger = 500 * time.Millisecond
	}
	u := &UDPNode{cfg: cfg}
	if cfg.Model != nil {
		u.model = *cfg.Model
	} else {
		u.model = cost.Default()
	}
	addrs := make([]*net.UDPAddr, cfg.Nodes)
	for i, s := range cfg.Peers {
		a, err := net.ResolveUDPAddr("udp", s)
		if err != nil {
			return nil, fmt.Errorf("filaments: peer %d: %w", i, err)
		}
		addrs[i] = a
	}
	codec, err := rtnode.ParseCodec(cfg.Tuning.Codec)
	if err != nil {
		return nil, fmt.Errorf("filaments: %w", err)
	}
	ep, err := udptrans.Listen(cfg.Peers[cfg.ID], rtOptions(cfg.Tuning))
	if err != nil {
		return nil, err
	}
	u.space = dsm.NewSpace(cfg.SharedBytes)
	u.node = rtnode.NewNode(kernel.NodeID(cfg.ID), &u.model)
	u.tr = rtnode.NewTransport(u.node, ep)
	u.tr.SetCodec(codec)
	u.tr.SetPeers(addrs)
	u.d = dsm.New(u.node, u.tr, u.space, cfg.Protocol)
	u.d.SetDiffs(!cfg.Tuning.NoDiffs)
	u.d.WakeFront = cfg.WakeFront
	u.red = reduce.New(u.node, u.tr, u.d, cfg.Nodes)
	u.rt = filament.New(u.node, u.tr, u.d, u.red, cfg.Nodes)
	u.rt.Stealing = cfg.Stealing
	u.rt.MaxWorkers = cfg.MaxWorkers
	return u, nil
}

// Runtime returns the node's runtime.
func (u *UDPNode) Runtime() *Runtime { return u.rt }

// Endpoint returns the node's UDP endpoint. The service layer
// (internal/cluster/daemon) sends its membership traffic — join,
// heartbeat, leave — over this same socket, so a worker needs exactly
// one bound address for both roles.
func (u *UDPNode) Endpoint() *udptrans.Endpoint { return u.tr.Endpoint() }

// EnableTracing installs t as the node's trace sink (wall-time stamps).
func (u *UDPNode) EnableTracing(t *Tracer) { u.node.Obs().SetTracer(t) }

// Metrics aggregates this node's counter registry with its endpoint's.
// Safe to call live from any goroutine (e.g. an HTTP metrics handler);
// counters are race-free.
func (u *UDPNode) Metrics() []Sample {
	return obs.Aggregate(u.node.Obs().Reg, u.tr.Endpoint().Metrics())
}

// Alloc reserves shared memory owned initially by node 0. Every process
// must perform identical allocations in identical order.
func (u *UDPNode) Alloc(size int64) Addr {
	return u.space.Alloc(size, dsm.AllocOpts{})
}

// AllocOwned reserves shared memory owned initially by the given node.
func (u *UDPNode) AllocOwned(size int64, owner int) Addr {
	return u.space.Alloc(size, dsm.AllocOpts{Owner: kernel.NodeID(owner)})
}

// AllocMatrixOwned allocates a shared matrix initially owned by one node.
func (u *UDPNode) AllocMatrixOwned(rows, cols, owner int) Matrix {
	return dsm.AllocMatrix(u.space, rows, cols, dsm.AllocOpts{Owner: kernel.NodeID(owner)})
}

// Close shuts the node down: the endpoint closes (failing any pending
// calls) and the node scheduler stops. Idempotent, safe to call
// concurrently with Run — it is the SIGTERM path, where a daemon must
// release its socket even mid-epoch.
func (u *UDPNode) Close() {
	u.shutdown.Do(func() {
		u.tr.Close() //nolint:errcheck // best-effort shutdown
		u.node.Close()
		u.node.Wait()
	})
}

// Run executes this node's part of the SPMD program, lingers so lagging
// peers' retransmissions are still answered, then closes the endpoint.
func (u *UDPNode) Run(program Program) (*UDPNodeReport, error) {
	if u.ran {
		return nil, fmt.Errorf("filaments: UDP node already ran")
	}
	u.ran = true
	done := make(chan struct{})
	u.node.Spawn("main", func(t kernel.Thread) {
		defer close(done)
		e := u.rt.NewExec(t)
		program(u.rt, e)
		e.Flush()
	})
	<-done
	time.Sleep(u.cfg.Linger)
	if !u.cfg.KeepOpen {
		u.Close()
	}
	return &UDPNodeReport{
		CPU:       u.node.Account(),
		DSM:       u.d.Stats(),
		Transport: u.tr.Endpoint().Stats(),
		Runtime:   u.rt.Stats(),
	}, nil
}
