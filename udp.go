package filaments

import (
	"fmt"
	"net"
	"sync"
	"time"

	"filaments/internal/cost"
	"filaments/internal/dsm"
	"filaments/internal/filament"
	"filaments/internal/kernel"
	"filaments/internal/obs"
	"filaments/internal/reduce"
	"filaments/internal/rtnode"
	"filaments/internal/udptrans"
)

// This file is the real-time face of the package: the same DF kernel
// layers (DSM, reductions, filaments) that run inside the deterministic
// simulation are wired to internal/rtnode and internal/udptrans instead,
// so a program runs over real UDP sockets in real goroutines. UDPCluster
// hosts every node in one process (endpoints on loopback); UDPNode hosts
// one node of a multi-process cluster (see cmd/dfnode).
//
// Results are exact — the identical kernel code moves the data — but time
// is wall time, so performance depends on the host, not on the paper's
// calibrated cost model.

// UDPConfig describes a single-process UDP cluster.
type UDPConfig struct {
	// Nodes is the cluster size (>= 1). Each node gets its own UDP
	// endpoint on 127.0.0.1.
	Nodes int
	// Protocol is the page consistency protocol (default Migratory).
	Protocol Protocol
	// SharedBytes is the size of the shared address space (default 64 MB).
	SharedBytes int64
	// Stealing enables receiver-initiated fork/join load balancing.
	Stealing bool
	// MaxWorkers caps per-node fork/join server threads (default 16).
	MaxWorkers int
	// WakeFront schedules page-arrival wakeups at the front (fork/join
	// setting); it is advisory here — the Go scheduler owns ordering.
	WakeFront bool
	// Model overrides the cost model used for ledger accounting; nil uses
	// cost.Default.
	Model *CostModel
	// Tracer, when non-nil, records kernel events from every node in wall
	// time.
	Tracer *Tracer
	// Monitor, when non-nil, observes every node's DSM accesses, page
	// transfers, and synchronization events. Under this binding callbacks
	// arrive concurrently from per-node monitor goroutines, so the Monitor
	// must synchronize internally.
	Monitor Monitor
	// MirageWindow overrides the cost model's Mirage anti-thrashing
	// window: 0 keeps the model's default, a negative value disables the
	// window, and a positive value replaces it.
	MirageWindow Duration
	// Tuning collects the wall-clock wire-path knobs.
	Tuning UDPTuning
}

// UDPTuning tunes the real-time wire path. Every knob is cluster-wide:
// all nodes must run the same values, like the protocol choice.
type UDPTuning struct {
	// Codec selects the payload encoding: "" or "binary" for the
	// hand-rolled zero-allocation codec, "gob" for the previous release's
	// framing (kept for one release as a fallback).
	Codec string
	// NoDiffs disables twin-and-diff page shipping, which is on by
	// default under UDP (the simulation keeps whole pages either way, so
	// its byte accounting matches the paper's tables).
	NoDiffs bool
	// BatchWindow coalesces small one-way events per peer into single
	// datagrams, holding each back at most this long. Zero disables
	// batching (the default: a delayed barrier release costs more than a
	// datagram header saves unless events are bursty).
	BatchWindow time.Duration
}

// UDPNodeReport is one node's accounting after a real-time run.
type UDPNodeReport struct {
	CPU       kernel.Account
	DSM       dsm.Stats
	Transport udptrans.Stats
	Runtime   filament.Stats
}

// UDPReport summarizes a real-time run.
type UDPReport struct {
	// Elapsed is the wall time from Run's start until the last node's main
	// thread finished.
	Elapsed time.Duration
	// PerNode holds each node's counters.
	PerNode []UDPNodeReport
	// Metrics is the cluster-wide metric aggregation: every node's and
	// endpoint's counters summed by name, sorted by name.
	Metrics []Sample
}

// UDPCluster runs a DF program across UDP endpoints on loopback, every
// node in its own set of goroutines. Create with NewUDPCluster, allocate
// shared data, call Run once, then Peek the results.
type UDPCluster struct {
	cfg   UDPConfig
	model cost.Model
	space *dsm.Space
	nodes []*rtnode.Node
	trs   []*rtnode.Transport
	dsms  []*dsm.DSM
	reds  []*reduce.Reducer
	rts   []*filament.Runtime
	ran   bool
}

// rtOptions configures the real-time binding's endpoints with an
// effectively unbounded retry budget: one logical request keeps one
// sequence number until it is answered, so the receiver's reply cache
// absorbs duplicates and non-idempotent handlers execute exactly once.
// Re-issuing a timed-out call under a fresh sequence number would
// re-execute the handler — a steal grant whose reply was lost would lose
// the stolen filament with it.
func rtOptions(t UDPTuning) udptrans.Options {
	return udptrans.Options{MaxRetries: 1 << 30, BatchWindow: t.BatchWindow}
}

// NewUDPCluster builds a cluster from cfg, opening one UDP endpoint per
// node on 127.0.0.1.
func NewUDPCluster(cfg UDPConfig) (*UDPCluster, error) {
	if cfg.Nodes <= 0 {
		return nil, fmt.Errorf("filaments: UDPConfig.Nodes must be >= 1")
	}
	if cfg.SharedBytes == 0 {
		cfg.SharedBytes = 64 << 20
	}
	if cfg.MaxWorkers == 0 {
		cfg.MaxWorkers = 16
	}
	codec, err := rtnode.ParseCodec(cfg.Tuning.Codec)
	if err != nil {
		return nil, fmt.Errorf("filaments: %w", err)
	}
	c := &UDPCluster{cfg: cfg}
	if cfg.Model != nil {
		c.model = *cfg.Model
	} else {
		c.model = cost.Default()
	}
	switch {
	case cfg.MirageWindow > 0:
		c.model.MirageWindow = cfg.MirageWindow
	case cfg.MirageWindow < 0:
		c.model.MirageWindow = 0
	}
	c.space = dsm.NewSpace(cfg.SharedBytes)
	if cfg.Monitor != nil {
		c.space.SetMonitor(cfg.Monitor)
	}

	eps := make([]*udptrans.Endpoint, cfg.Nodes)
	addrs := make([]*net.UDPAddr, cfg.Nodes)
	for i := range eps {
		ep, err := udptrans.Listen("127.0.0.1:0", rtOptions(cfg.Tuning))
		if err != nil {
			for _, open := range eps[:i] {
				open.Close() //nolint:errcheck // best-effort unwind
			}
			return nil, err
		}
		eps[i] = ep
		addrs[i] = ep.Addr()
	}
	// Same construction order as the simulated Cluster: every DSM exists
	// before the first allocation.
	for i := 0; i < cfg.Nodes; i++ {
		node := rtnode.NewNode(kernel.NodeID(i), &c.model)
		if cfg.Tracer != nil {
			node.Obs().SetTracer(cfg.Tracer)
		}
		tr := rtnode.NewTransport(node, eps[i])
		tr.SetCodec(codec)
		tr.SetPeers(addrs)
		d := dsm.New(node, tr, c.space, cfg.Protocol)
		d.SetDiffs(!cfg.Tuning.NoDiffs)
		d.WakeFront = cfg.WakeFront
		red := reduce.New(node, tr, d, cfg.Nodes)
		rt := filament.New(node, tr, d, red, cfg.Nodes)
		rt.Stealing = cfg.Stealing
		rt.MaxWorkers = cfg.MaxWorkers
		c.nodes = append(c.nodes, node)
		c.trs = append(c.trs, tr)
		c.dsms = append(c.dsms, d)
		c.reds = append(c.reds, red)
		c.rts = append(c.rts, rt)
	}
	return c, nil
}

// Nodes returns the cluster size.
func (c *UDPCluster) Nodes() int { return c.cfg.Nodes }

// Runtime returns node i's runtime (for inspecting stats after Run).
func (c *UDPCluster) Runtime(i int) *Runtime { return c.rts[i] }

// Outstanding sums the requests still awaiting replies across every
// node's endpoint. After Run returns it must be zero: a nonzero value
// means a protocol layer leaked an in-flight request past its barrier.
func (c *UDPCluster) Outstanding() int {
	n := 0
	for _, rt := range c.rts {
		n += rt.Endpoint().Outstanding()
	}
	return n
}

// DSM returns node i's DSM instance (for inspecting stats after Run).
func (c *UDPCluster) DSM(i int) *dsm.DSM { return c.dsms[i] }

// EnableTracing installs t as every node's trace sink. Equivalent to
// setting UDPConfig.Tracer before NewUDPCluster.
func (c *UDPCluster) EnableTracing(t *Tracer) {
	for _, n := range c.nodes {
		n.Obs().SetTracer(t)
	}
}

// Metrics aggregates every node's and endpoint's counter registries:
// values summed by name, sorted by name. Safe to call at any time from
// any goroutine; counters are race-free.
func (c *UDPCluster) Metrics() []Sample {
	var regs []*obs.Registry
	for i, n := range c.nodes {
		regs = append(regs, n.Obs().Reg, c.trs[i].Endpoint().Metrics())
	}
	return obs.Aggregate(regs...)
}

// Alloc reserves shared memory owned initially by node 0.
func (c *UDPCluster) Alloc(size int64) Addr {
	return c.space.Alloc(size, dsm.AllocOpts{})
}

// AllocOwned reserves shared memory owned initially by the given node.
func (c *UDPCluster) AllocOwned(size int64, owner int) Addr {
	return c.space.Alloc(size, dsm.AllocOpts{Owner: kernel.NodeID(owner)})
}

// AllocMatrixOwned allocates a shared matrix initially owned by one node.
func (c *UDPCluster) AllocMatrixOwned(rows, cols, owner int) Matrix {
	return dsm.AllocMatrix(c.space, rows, cols, dsm.AllocOpts{Owner: kernel.NodeID(owner)})
}

// AllocMatrixStriped allocates a matrix owned in one horizontal strip per
// node.
func (c *UDPCluster) AllocMatrixStriped(rows, cols int) Matrix {
	return dsm.AllocMatrixStriped(c.space, rows, cols, c.cfg.Nodes)
}

// Run executes program on every node and returns the run report. It may
// be called once per UDPCluster; it closes the transports on completion.
func (c *UDPCluster) Run(program Program) (*UDPReport, error) {
	if c.ran {
		return nil, fmt.Errorf("filaments: UDP cluster already ran")
	}
	c.ran = true
	start := time.Now()
	var wg sync.WaitGroup
	for i := range c.nodes {
		i := i
		wg.Add(1)
		c.nodes[i].Spawn("main", func(t kernel.Thread) {
			defer wg.Done()
			e := c.rts[i].NewExec(t)
			program(c.rts[i], e)
			e.Flush()
		})
	}
	// Every main has passed its final synchronization before the first
	// transport closes, so any straggling retransmissions are still
	// answered (from the reply caches) while it matters.
	wg.Wait()
	rep := &UDPReport{Elapsed: time.Since(start), PerNode: make([]UDPNodeReport, c.cfg.Nodes)}
	for _, tr := range c.trs {
		tr.Close() //nolint:errcheck // best-effort shutdown
	}
	for _, n := range c.nodes {
		n.Close()
		n.Wait()
	}
	for i := range rep.PerNode {
		rep.PerNode[i] = UDPNodeReport{
			CPU:       c.nodes[i].Account(),
			DSM:       c.dsms[i].Stats(),
			Transport: c.trs[i].Endpoint().Stats(),
			Runtime:   c.rts[i].Stats(),
		}
	}
	rep.Metrics = c.Metrics()
	return rep, nil
}

// PeekF64 reads a shared float64 from whichever node owns it, for result
// verification after Run.
func (c *UDPCluster) PeekF64(a Addr) float64 {
	for i, d := range c.dsms {
		var v float64
		var ok bool
		c.nodes[i].WithLock(func() { v, ok = d.Peek(a) })
		if ok {
			return v
		}
	}
	panic(fmt.Sprintf("filaments: no owner holds address %d", a))
}

// PeekMatrix copies a shared matrix out of the cluster after Run.
func (c *UDPCluster) PeekMatrix(m Matrix) [][]float64 {
	out := make([][]float64, m.Rows)
	for i := range out {
		row := make([]float64, m.Cols)
		for j := range row {
			row[j] = c.PeekF64(m.Addr(i, j))
		}
		out[i] = row
	}
	return out
}

// UDPNodeConfig describes one node of a multi-process UDP cluster. Every
// process must allocate identical shared data in identical order (the
// SPMD convention), so the address spaces agree.
type UDPNodeConfig struct {
	// ID is this node's identity, in [0, Nodes).
	ID int
	// Nodes is the cluster size.
	Nodes int
	// Peers holds every node's endpoint address, indexed by node ID; entry
	// ID is the address this node binds.
	Peers []string
	// Protocol is the page consistency protocol (default Migratory).
	Protocol Protocol
	// SharedBytes is the size of the shared address space (default 64 MB).
	SharedBytes int64
	// Stealing enables receiver-initiated fork/join load balancing.
	Stealing bool
	// MaxWorkers caps per-node fork/join server threads (default 16).
	MaxWorkers int
	// WakeFront is advisory under real time (see UDPConfig.WakeFront).
	WakeFront bool
	// Linger is how long the node keeps servicing requests after its own
	// main finishes, so slower peers' retransmissions still get answered
	// (default 500 ms).
	Linger time.Duration
	// Model overrides the ledger cost model; nil uses cost.Default.
	Model *CostModel
	// Tuning collects the wall-clock wire-path knobs; identical values on
	// every process of the cluster.
	Tuning UDPTuning
}

// UDPNode is one process's node in a multi-process cluster.
type UDPNode struct {
	cfg   UDPNodeConfig
	model cost.Model
	space *dsm.Space
	node  *rtnode.Node
	tr    *rtnode.Transport
	d     *dsm.DSM
	red   *reduce.Reducer
	rt    *filament.Runtime
	ran   bool
}

// NewUDPNode builds this process's node and binds its endpoint.
func NewUDPNode(cfg UDPNodeConfig) (*UDPNode, error) {
	if cfg.Nodes <= 0 || cfg.ID < 0 || cfg.ID >= cfg.Nodes {
		return nil, fmt.Errorf("filaments: bad node identity %d of %d", cfg.ID, cfg.Nodes)
	}
	if len(cfg.Peers) != cfg.Nodes {
		return nil, fmt.Errorf("filaments: %d peer addresses for %d nodes", len(cfg.Peers), cfg.Nodes)
	}
	if cfg.SharedBytes == 0 {
		cfg.SharedBytes = 64 << 20
	}
	if cfg.MaxWorkers == 0 {
		cfg.MaxWorkers = 16
	}
	if cfg.Linger == 0 {
		cfg.Linger = 500 * time.Millisecond
	}
	u := &UDPNode{cfg: cfg}
	if cfg.Model != nil {
		u.model = *cfg.Model
	} else {
		u.model = cost.Default()
	}
	addrs := make([]*net.UDPAddr, cfg.Nodes)
	for i, s := range cfg.Peers {
		a, err := net.ResolveUDPAddr("udp", s)
		if err != nil {
			return nil, fmt.Errorf("filaments: peer %d: %w", i, err)
		}
		addrs[i] = a
	}
	codec, err := rtnode.ParseCodec(cfg.Tuning.Codec)
	if err != nil {
		return nil, fmt.Errorf("filaments: %w", err)
	}
	ep, err := udptrans.Listen(cfg.Peers[cfg.ID], rtOptions(cfg.Tuning))
	if err != nil {
		return nil, err
	}
	u.space = dsm.NewSpace(cfg.SharedBytes)
	u.node = rtnode.NewNode(kernel.NodeID(cfg.ID), &u.model)
	u.tr = rtnode.NewTransport(u.node, ep)
	u.tr.SetCodec(codec)
	u.tr.SetPeers(addrs)
	u.d = dsm.New(u.node, u.tr, u.space, cfg.Protocol)
	u.d.SetDiffs(!cfg.Tuning.NoDiffs)
	u.d.WakeFront = cfg.WakeFront
	u.red = reduce.New(u.node, u.tr, u.d, cfg.Nodes)
	u.rt = filament.New(u.node, u.tr, u.d, u.red, cfg.Nodes)
	u.rt.Stealing = cfg.Stealing
	u.rt.MaxWorkers = cfg.MaxWorkers
	return u, nil
}

// Runtime returns the node's runtime.
func (u *UDPNode) Runtime() *Runtime { return u.rt }

// EnableTracing installs t as the node's trace sink (wall-time stamps).
func (u *UDPNode) EnableTracing(t *Tracer) { u.node.Obs().SetTracer(t) }

// Metrics aggregates this node's counter registry with its endpoint's.
// Safe to call live from any goroutine (e.g. an HTTP metrics handler);
// counters are race-free.
func (u *UDPNode) Metrics() []Sample {
	return obs.Aggregate(u.node.Obs().Reg, u.tr.Endpoint().Metrics())
}

// Alloc reserves shared memory owned initially by node 0. Every process
// must perform identical allocations in identical order.
func (u *UDPNode) Alloc(size int64) Addr {
	return u.space.Alloc(size, dsm.AllocOpts{})
}

// AllocOwned reserves shared memory owned initially by the given node.
func (u *UDPNode) AllocOwned(size int64, owner int) Addr {
	return u.space.Alloc(size, dsm.AllocOpts{Owner: kernel.NodeID(owner)})
}

// AllocMatrixOwned allocates a shared matrix initially owned by one node.
func (u *UDPNode) AllocMatrixOwned(rows, cols, owner int) Matrix {
	return dsm.AllocMatrix(u.space, rows, cols, dsm.AllocOpts{Owner: kernel.NodeID(owner)})
}

// Run executes this node's part of the SPMD program, lingers so lagging
// peers' retransmissions are still answered, then closes the endpoint.
func (u *UDPNode) Run(program Program) (*UDPNodeReport, error) {
	if u.ran {
		return nil, fmt.Errorf("filaments: UDP node already ran")
	}
	u.ran = true
	done := make(chan struct{})
	u.node.Spawn("main", func(t kernel.Thread) {
		defer close(done)
		e := u.rt.NewExec(t)
		program(u.rt, e)
		e.Flush()
	})
	<-done
	time.Sleep(u.cfg.Linger)
	u.tr.Close() //nolint:errcheck // best-effort shutdown
	u.node.Close()
	u.node.Wait()
	return &UDPNodeReport{
		CPU:       u.node.Account(),
		DSM:       u.d.Stats(),
		Transport: u.tr.Endpoint().Stats(),
		Runtime:   u.rt.Stats(),
	}, nil
}
