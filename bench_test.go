// Benchmarks regenerating the paper's tables and figures, one per
// experiment, at reduced problem sizes (wall-clock friendly). Each reports
// the *virtual* time of the simulated 1994 cluster as "vsec" — the number
// the paper's tables hold — alongside Go wall time. Full paper-scale
// tables come from cmd/dfbench.
package filaments_test

import (
	"fmt"
	"io"
	"testing"

	"filaments"
	"filaments/internal/apps/exprtree"
	"filaments/internal/apps/fft"
	"filaments/internal/apps/jacobi"
	"filaments/internal/apps/matmul"
	"filaments/internal/apps/mergesort"
	"filaments/internal/apps/quadrature"
	"filaments/internal/bench"
)

// report attaches the simulated time to the benchmark result.
func report(b *testing.B, rep *filaments.Report) {
	b.ReportMetric(rep.Seconds(), "vsec")
}

func nodesSweep(b *testing.B, run func(b *testing.B, nodes int)) {
	for _, p := range []int{1, 2, 4, 8} {
		b.Run(fmt.Sprintf("nodes=%d", p), func(b *testing.B) {
			run(b, p)
		})
	}
}

// --- Figure 4: matrix multiplication ---

func BenchmarkFig4MatmulCG(b *testing.B) {
	nodesSweep(b, func(b *testing.B, p int) {
		var rep *filaments.Report
		for i := 0; i < b.N; i++ {
			rep, _ = matmul.CoarseGrain(matmul.Config{N: 128, Nodes: p})
		}
		report(b, rep)
	})
}

func BenchmarkFig4MatmulDF(b *testing.B) {
	nodesSweep(b, func(b *testing.B, p int) {
		var rep *filaments.Report
		for i := 0; i < b.N; i++ {
			rep, _, _ = matmul.DF(matmul.Config{N: 128, Nodes: p})
		}
		report(b, rep)
	})
}

// --- Figure 5: Jacobi iteration ---

func BenchmarkFig5JacobiCG(b *testing.B) {
	nodesSweep(b, func(b *testing.B, p int) {
		var rep *filaments.Report
		for i := 0; i < b.N; i++ {
			rep, _ = jacobi.CoarseGrain(jacobi.Config{N: 128, Iters: 60, Nodes: p})
		}
		report(b, rep)
	})
}

func BenchmarkFig5JacobiDF(b *testing.B) {
	nodesSweep(b, func(b *testing.B, p int) {
		var rep *filaments.Report
		for i := 0; i < b.N; i++ {
			rep, _, _ = jacobi.DF(jacobi.Config{N: 128, Iters: 60, Nodes: p})
		}
		report(b, rep)
	})
}

// --- Figure 6: adaptive quadrature ---

func BenchmarkFig6QuadratureCG(b *testing.B) {
	nodesSweep(b, func(b *testing.B, p int) {
		var rep *filaments.Report
		for i := 0; i < b.N; i++ {
			rep, _ = quadrature.CoarseGrain(quadrature.Config{Tol: 1e-4, Nodes: p})
		}
		report(b, rep)
	})
}

func BenchmarkFig6QuadratureDF(b *testing.B) {
	nodesSweep(b, func(b *testing.B, p int) {
		var rep *filaments.Report
		for i := 0; i < b.N; i++ {
			rep, _, _ = quadrature.DF(quadrature.Config{Tol: 1e-4, Nodes: p})
		}
		report(b, rep)
	})
}

func BenchmarkFig6QuadratureBag(b *testing.B) {
	nodesSweep(b, func(b *testing.B, p int) {
		if p == 1 {
			b.Skip("bag needs a master and slaves")
		}
		var rep *filaments.Report
		for i := 0; i < b.N; i++ {
			rep, _ = quadrature.BagOfTasks(quadrature.Config{Tol: 1e-4, Nodes: p}, 0)
		}
		report(b, rep)
	})
}

// --- Figure 7: binary expression trees ---

func BenchmarkFig7ExprTreeCG(b *testing.B) {
	nodesSweep(b, func(b *testing.B, p int) {
		var rep *filaments.Report
		for i := 0; i < b.N; i++ {
			rep, _ = exprtree.CoarseGrain(exprtree.Config{Height: 5, N: 24, Nodes: p})
		}
		report(b, rep)
	})
}

func BenchmarkFig7ExprTreeDF(b *testing.B) {
	nodesSweep(b, func(b *testing.B, p int) {
		var rep *filaments.Report
		for i := 0; i < b.N; i++ {
			rep, _, _ = exprtree.DF(exprtree.Config{Height: 5, N: 24, Nodes: p})
		}
		report(b, rep)
	})
}

// --- Figure 8: barrier synchronization ---

func BenchmarkFig8Barrier(b *testing.B) {
	for _, p := range []int{2, 4, 8} {
		b.Run(fmt.Sprintf("nodes=%d", p), func(b *testing.B) {
			var perBarrier float64
			for i := 0; i < b.N; i++ {
				cl := filaments.New(filaments.Config{Nodes: p})
				rep, err := cl.Run(func(rt *filaments.Runtime, e *filaments.Exec) {
					for k := 0; k < 100; k++ {
						e.Barrier()
					}
				})
				if err != nil {
					b.Fatal(err)
				}
				perBarrier = rep.Elapsed.Milliseconds() / 100
			}
			b.ReportMetric(perBarrier, "vms/barrier")
		})
	}
}

// --- Figure 9: filament overheads (real Go wall clock per operation) ---

func BenchmarkFig9FilamentCreate(b *testing.B) {
	cl := filaments.New(filaments.Config{Nodes: 1})
	_, err := cl.Run(func(rt *filaments.Runtime, e *filaments.Exec) {
		p := rt.NewPool("bench")
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			p.Add(e, func(e *filaments.Exec, a filaments.Args) {}, filaments.Args{int64(i)})
		}
	})
	if err != nil {
		b.Fatal(err)
	}
}

func BenchmarkFig9FilamentRunInlined(b *testing.B) {
	cl := filaments.New(filaments.Config{Nodes: 1})
	_, err := cl.Run(func(rt *filaments.Runtime, e *filaments.Exec) {
		p := rt.NewPool("bench")
		fn := func(e *filaments.Exec, a filaments.Args) {}
		// Process b.N filaments in bounded chunks so auto-scaled b.N does
		// not build one enormous pool.
		const chunk = 65536
		b.ResetTimer()
		for done := 0; done < b.N; done += chunk {
			n := b.N - done
			if n > chunk {
				n = chunk
			}
			b.StopTimer()
			rt.ResetPools()
			for i := 0; i < n; i++ {
				p.Add(e, fn, filaments.Args{int64(i)})
			}
			b.StartTimer()
			rt.RunPools(e)
		}
	})
	if err != nil {
		b.Fatal(err)
	}
}

func BenchmarkFig9PageFault(b *testing.B) {
	// Virtual cost of a remote 4 KB fault, measured once; b.N loops the
	// measurement to satisfy the benchmark contract.
	var vus float64
	for i := 0; i < b.N; i++ {
		cl := filaments.New(filaments.Config{Nodes: 2, Protocol: filaments.ImplicitInvalidate})
		addr := cl.AllocOwned(8, 0)
		_, err := cl.Run(func(rt *filaments.Runtime, e *filaments.Exec) {
			if rt.ID() == 0 {
				rt.DSM().WriteF64(e.Thread(), addr, 1)
				e.Barrier()
				e.Barrier()
				return
			}
			e.Barrier()
			t0 := rt.Node().Now()
			_ = rt.DSM().ReadF64(e.Thread(), addr)
			vus = rt.Node().Now().Sub(t0).Microseconds()
			e.Barrier()
		})
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(vus, "vµs/fault")
}

// --- Figures 10-12 and the ablations, via the bench registry ---

func BenchmarkFig10JacobiBreakdown(b *testing.B) {
	var rep *filaments.Report
	for i := 0; i < b.N; i++ {
		rep, _, _ = jacobi.DF(jacobi.Config{N: 128, Iters: 60, Nodes: 8})
	}
	report(b, rep)
}

func BenchmarkFig11JacobiWriteInvalidate(b *testing.B) {
	var rep *filaments.Report
	for i := 0; i < b.N; i++ {
		rep, _, _ = jacobi.DF(jacobi.Config{
			N: 128, Iters: 60, Nodes: 4, Protocol: filaments.WriteInvalidate,
		})
	}
	report(b, rep)
}

func BenchmarkFig12JacobiSinglePool(b *testing.B) {
	var rep *filaments.Report
	for i := 0; i < b.N; i++ {
		rep, _, _ = jacobi.DF(jacobi.Config{N: 128, Iters: 60, Nodes: 4, SinglePool: true})
	}
	report(b, rep)
}

// BenchmarkExperiments runs every registered dfbench experiment at quick
// scale, making `go test -bench` regenerate all tables end to end.
func BenchmarkExperiments(b *testing.B) {
	for _, e := range bench.All() {
		e := e
		b.Run(e.ID, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				e.Run(io.Discard, bench.Options{Quick: true})
			}
		})
	}
}

// --- Extensions: merge sort and recursive FFT (paper §2.3) ---

func BenchmarkExtMergesortDF(b *testing.B) {
	nodesSweep(b, func(b *testing.B, p int) {
		var rep *filaments.Report
		for i := 0; i < b.N; i++ {
			rep, _, _ = mergesort.DF(mergesort.Config{N: 1 << 13, Leaf: 512, Nodes: p})
		}
		report(b, rep)
	})
}

func BenchmarkExtFFTDF(b *testing.B) {
	nodesSweep(b, func(b *testing.B, p int) {
		var rep *filaments.Report
		for i := 0; i < b.N; i++ {
			rep, _, _, _ = fft.DF(fft.Config{N: 1 << 12, Leaf: 256, Nodes: p})
		}
		report(b, rep)
	})
}
