package cost

import (
	"testing"
	"testing/quick"

	"filaments/internal/sim"
)

func TestTransmitTimeAnchors(t *testing.T) {
	m := Default()
	// A 4 KB page with 70 bytes of framing at 10 Mbps: (4096+70)*8 bits at
	// 100 ns/bit.
	if got, want := m.TransmitTime(4096), sim.Duration((4096+70)*8*100); got != want {
		t.Fatalf("TransmitTime(4096) = %v, want %v", got, want)
	}
	// The paper's 20-byte request.
	if got, want := m.TransmitTime(20), sim.Duration((20+70)*8*100); got != want {
		t.Fatalf("TransmitTime(20) = %v, want %v", got, want)
	}
}

func TestPageFaultBudget(t *testing.T) {
	// The constants must keep the end-to-end 4 KB fault near the paper's
	// 4120 µs (Figure 9). Recompute the analytic path here so a future
	// recalibration that breaks the anchor fails loudly.
	m := Default()
	fault := m.FaultHandle +
		m.SendCost(16) + m.TransmitTime(16) + m.WireLatency +
		m.RecvCost(16) + m.PageServe +
		m.SendCost(4096+16) + m.TransmitTime(4096+16) + m.WireLatency +
		m.RecvCost(4096+16) + m.PageInstall +
		m.ThreadSwitch
	us := fault.Microseconds()
	if us < 3700 || us > 4900 {
		t.Fatalf("analytic page fault = %.0f µs, outside the 4120 µs ± 20%% anchor", us)
	}
}

func TestFigure9Constants(t *testing.T) {
	m := Default()
	cases := []struct {
		name string
		got  sim.Duration
		want sim.Duration
	}{
		{"creation", m.FilamentCreate, 2100},
		{"switch", m.FilamentSwitch, 643},
		{"inlined", m.FilamentSwitchInlined, 126},
		{"thread", m.ThreadSwitch, 48800},
	}
	for _, c := range cases {
		if c.got != c.want*sim.Nanosecond {
			t.Errorf("%s = %v, want %v ns", c.name, c.got, c.want)
		}
	}
}

func TestCostMonotonicity(t *testing.T) {
	m := Default()
	f := func(a, b uint16) bool {
		x, y := int(a), int(b)
		if x > y {
			x, y = y, x
		}
		return m.TransmitTime(x) <= m.TransmitTime(y) &&
			m.SendCost(x) <= m.SendCost(y) &&
			m.RecvCost(x) <= m.RecvCost(y)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestSequentialAnchors(t *testing.T) {
	// The per-operation costs must reproduce the paper's sequential times.
	cases := []struct {
		name string
		ops  int64
		per  sim.Duration
		want float64 // seconds
		tol  float64
	}{
		{"matmul", 512 * 512 * 512, MatmulMACost, 205, 1},
		{"jacobi", 254 * 254 * 360, JacobiPointCost, 215, 1},
		{"exprtree", 127 * 70 * 70 * 70, ExprTreeMACost, 92.1, 1},
		{"quadrature", 538305, QuadEvalCost, 203, 2},
	}
	for _, c := range cases {
		got := (sim.Duration(c.ops) * c.per).Seconds()
		if got < c.want-c.tol || got > c.want+c.tol {
			t.Errorf("%s: %d ops × %v = %.1f s, want %.1f ± %.0f", c.name, c.ops, c.per, got, c.want, c.tol)
		}
	}
}
