// Package cost holds the calibrated virtual-time cost model for the
// simulated cluster: a network of Sun IPC-class workstations on a 10 Mbps
// shared Ethernet, matching the testbed of the Distributed Filaments paper
// (OSDI '94, section 4).
//
// Two kinds of constants live here. Machine and runtime constants are
// calibrated once against the paper's microbenchmarks (Figures 8 and 9) and
// then held fixed for every experiment. Per-application compute costs are
// calibrated so each sequential program's virtual running time matches the
// sequential time the paper reports, which pins speedup figures to the
// paper's scale.
package cost

import "filaments/internal/sim"

// Model is the set of machine and runtime costs charged in virtual time.
// The zero value is not meaningful; start from Default.
type Model struct {
	// Network.

	// WireLatencyPerHop is the fixed propagation plus interface latency of
	// one frame on the Ethernet, excluding transmission (size/bandwidth)
	// time.
	WireLatency sim.Duration
	// BandwidthBps is the shared medium's bandwidth in bits per second.
	// 10 Mbps Ethernet.
	BandwidthBps int64
	// FrameOverheadBytes is charged per frame on the wire in addition to
	// payload (Ethernet + IP + UDP headers, preamble).
	FrameOverheadBytes int

	// Per-message host CPU costs (SunOS UDP stack).

	// SendCPU is the processor time to push a small datagram into the
	// network, including the Packet bookkeeping.
	SendCPU sim.Duration
	// RecvCPU is the processor time to take a datagram out of the network
	// and dispatch it to a handler.
	RecvCPU sim.Duration
	// SendPerKB and RecvPerKB are the additional per-kilobyte copy costs
	// for large payloads such as DSM pages.
	SendPerKB sim.Duration
	RecvPerKB sim.Duration

	// DSM costs.

	// FaultHandle is the cost of taking the segmentation-violation signal
	// and entering the DSM fault handler.
	FaultHandle sim.Duration
	// PageInstall is the cost of installing a received page (copy +
	// mprotect).
	PageInstall sim.Duration
	// PageServe is the cost, beyond RecvCPU/SendCPU, of servicing a page
	// request at the owner (lookup, protection check).
	PageServe sim.Duration

	// Filaments runtime costs (paper Figure 9).

	// FilamentCreate is the cost of creating one filament descriptor.
	FilamentCreate sim.Duration
	// FilamentSwitch is the per-filament dispatch cost when iterating a
	// pool without inlining (read descriptor, indirect call).
	FilamentSwitch sim.Duration
	// FilamentSwitchInlined is the per-filament dispatch cost when the
	// pattern recognizer has switched to inline strip iteration.
	FilamentSwitchInlined sim.Duration
	// ThreadSwitch is a full server-thread (stackful) context switch.
	ThreadSwitch sim.Duration

	// Synchronization.

	// BarrierProcess is the per-node bookkeeping cost of entering a
	// barrier (scheduler entry/exit).
	BarrierProcess sim.Duration
	// BarrierMerge is the cost a tournament winner pays to process one
	// child's arrive message (merge the value, bookkeeping). It is the
	// dominant term of Figure 8's per-round barrier latency.
	BarrierMerge sim.Duration

	// Packet protocol.

	// RetransmitTimeout is how long a requester waits for a reply before
	// retransmitting the request.
	RetransmitTimeout sim.Duration
	// MirageWindow is the minimum time a node keeps a DSM page before
	// honouring requests that would take it away (the Mirage time-window
	// anti-thrashing mechanism). Zero disables the window.
	MirageWindow sim.Duration
}

// Default is the calibrated model. Derivations:
//
//   - Page fault, Figure 9: 4120 µs total for a 4 KB page at 10 Mbps.
//     Wire time of the reply is (4096+70)*8/10e6 ≈ 3333 µs, so all host
//     overheads on the fault path must sum to ≈ 790 µs.
//   - Barrier, Figure 8: 3.20 ms for 2 nodes. The two figures are in
//     mild tension (see EXPERIMENTS.md); we favour the page-fault figure,
//     which dominates application behaviour, and add BarrierProcess to
//     close part of the barrier gap.
//   - Figure 9 runtime costs are used directly.
func Default() Model {
	return Model{
		WireLatency:        60 * sim.Microsecond,
		BandwidthBps:       10_000_000,
		FrameOverheadBytes: 70,

		SendCPU:   160 * sim.Microsecond,
		RecvCPU:   160 * sim.Microsecond,
		SendPerKB: 20 * sim.Microsecond,
		RecvPerKB: 20 * sim.Microsecond,

		FaultHandle: 70 * sim.Microsecond,
		PageInstall: 60 * sim.Microsecond,
		PageServe:   30 * sim.Microsecond,

		FilamentCreate:        2100 * sim.Nanosecond,  // 2.10 µs
		FilamentSwitch:        643 * sim.Nanosecond,   // 0.643 µs
		FilamentSwitchInlined: 126 * sim.Nanosecond,   // 0.126 µs
		ThreadSwitch:          48800 * sim.Nanosecond, // 48.8 µs

		BarrierProcess: 250 * sim.Microsecond,
		BarrierMerge:   1750 * sim.Microsecond,

		RetransmitTimeout: 40 * sim.Millisecond,
		// The Mirage anti-thrashing window: a node keeps a page at least
		// this long before honouring requests that would take it away.
		// Without it, two writers false-sharing a page can hand it back
		// and forth forever without either making progress, because the
		// kernel services the peer's queued request before the woken
		// writer thread runs.
		MirageWindow: 2 * sim.Millisecond,
	}
}

// TransmitTime returns the medium occupancy of a frame with the given
// payload size.
func (m *Model) TransmitTime(payloadBytes int) sim.Duration {
	bits := int64(payloadBytes+m.FrameOverheadBytes) * 8
	return sim.Duration(bits * int64(sim.Second) / m.BandwidthBps)
}

// SendCost returns the host CPU cost of sending a payload of the given
// size.
func (m *Model) SendCost(payloadBytes int) sim.Duration {
	return m.SendCPU + sim.Duration(int64(m.SendPerKB)*int64(payloadBytes)/1024)
}

// RecvCost returns the host CPU cost of receiving a payload of the given
// size.
func (m *Model) RecvCost(payloadBytes int) sim.Duration {
	return m.RecvCPU + sim.Duration(int64(m.RecvPerKB)*int64(payloadBytes)/1024)
}

// Application compute costs, calibrated to the paper's sequential times.
// Each is virtual time charged per unit of real computation performed.
const (
	// MatmulMACost: 512³ = 134,217,728 multiply-adds in 205 s → 1.527 µs.
	MatmulMACost = 1527 * sim.Nanosecond
	// JacobiPointCost: 254²·360 = 23,225,760 interior-point updates in
	// 215 s → 9.257 µs (the paper's 256×256 grid has 254×254 interior
	// points).
	JacobiPointCost = 9257 * sim.Nanosecond
	// QuadEvalCost: virtual cost of one integrand evaluation in adaptive
	// quadrature. The workload in internal/apps/quadrature performs
	// 538,305 evaluations at the default tolerance, so 377 µs/eval gives
	// the paper's 203 s sequential time.
	QuadEvalCost = 377 * sim.Microsecond
	// ExprTreeMACost: 127 multiplications of 70×70 matrices (127·70³ =
	// 43,561,000 multiply-adds) in 92.1 s → 2.114 µs. (The Sun IPC ran
	// this footprint-heavy kernel slower per MA than the blocked 512²
	// matmul.)
	ExprTreeMACost = 2114 * sim.Nanosecond
)
