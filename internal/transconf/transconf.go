// Package transconf is a transport-agnostic conformance and stress suite
// for the Packet protocol. The same scenarios — the paper's Figure 3 (no
// problems, request lost, reply lost, reply delayed) plus reordering,
// duplication, loss sweeps, concurrent clients, and symmetric cross-calls
// between endpoints whose handlers call each other — run against both
// implementations of the protocol: package packet on the simulated Ethernet
// and package udptrans on real loopback UDP (under the race detector).
//
// Passing the suite on both transports is the repo's equivalence argument
// between the simulation that carries every experiment and the deployable
// UDP transport: whatever the protocol guarantees in the experiments, the
// real sockets deliver too.
//
// A transport plugs in by providing a Harness that builds a Cluster of n
// endpoints from a Config; each scenario constructs a fresh cluster, runs
// Workers (client bodies pinned to nodes), and asserts on effects observed
// through handler closures.
package transconf

import "testing"

// Caller issues protocol calls from a specific node. Workers receive one;
// handlers of services marked Calls receive one bound to their own node.
type Caller interface {
	// Call sends req to service svc on node dst and returns the reply.
	Call(dst, svc int, req []byte) ([]byte, error)
}

// Service describes one request type, transport-independently.
type Service struct {
	// Idempotent handlers may re-execute for duplicate requests;
	// non-idempotent ones must take effect at most once per request.
	Idempotent bool
	// Calls marks a handler that issues Calls through the Caller it
	// receives. Transports must service such handlers off the receive path
	// (worker pool, server thread, deferred drop-and-retry) so the nested
	// call cannot deadlock the endpoint.
	Calls bool
	// Handler services one request. c is only valid when Calls is set.
	Handler func(c Caller, from int, req []byte) (reply []byte, drop bool)
}

// Faults configures injection for a scenario. Scripted faults (DropFirst*)
// fire once, cluster-wide, on the first matching protocol message.
type Faults struct {
	Loss    float64 // per-datagram loss probability
	Dup     float64 // per-datagram duplication probability
	Reorder float64 // probability a datagram is delayed past later ones

	DropFirstRequest bool // Figure 3(b)
	DropFirstReply   bool // Figure 3(c)
	DelayFirstReply  bool // Figure 3(d): delay past the retransmit timeout
}

// Config describes the cluster a scenario needs.
type Config struct {
	Nodes  int
	Faults Faults
	// Services maps service id to a per-node factory, so handlers can hold
	// per-node state. Every service is registered on every node.
	Services map[int]func(node int) Service
	// StatsProbe asks the harness to read every endpoint's Stats()
	// snapshot repeatedly while the workers run. A transport whose
	// counters are not safe to snapshot during live traffic fails this
	// under the race detector (or, in the simulation, violates its
	// single-threaded engine model).
	StatsProbe bool
}

// Worker is one client body, pinned to a node.
type Worker struct {
	Node int
	Body func(c Caller)
}

// Cluster is a running set of endpoints built by a Harness.
type Cluster interface {
	// Run executes the workers concurrently, each on its node, and returns
	// once every body has completed. It is called exactly once per cluster.
	Run(t *testing.T, workers ...Worker)
	// Outstanding reports how many requests are still awaiting replies,
	// summed across every endpoint in the cluster. Once Run has returned —
	// every worker body finished, so every Call was answered — it must be
	// zero; RunAll asserts that after each scenario. A residue means the
	// transport leaked request state (a retransmit timer still armed, a
	// pending-call entry never retired by its reply).
	Outstanding() int
}

// Reregisterer is an optional Cluster capability: a transport whose
// endpoints outlive one program run (the service daemon keeps sockets up
// across jobs) must be able to unregister a quiescent service and
// register a fresh instance under the same id. The ServiceReuse scenario
// exercises it; clusters without the capability skip that scenario.
type Reregisterer interface {
	// Reregister replaces node's service svc with a fresh instance from
	// factory. Only valid while the service is quiescent: no requests for
	// svc in flight toward node.
	Reregister(node, svc int, factory func(node int) Service)
}

// Harness builds a transport's cluster for one scenario. Cleanup should be
// registered on t.
type Harness func(t *testing.T, cfg Config) Cluster
