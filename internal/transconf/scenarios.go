package transconf

import (
	"fmt"
	"sync"
	"sync/atomic"
	"testing"
)

// RunAll runs every conformance scenario as a subtest against the harness.
// Every scenario's cluster is additionally checked for leaked request
// state: after its workers finish, Cluster.Outstanding must be zero.
func RunAll(t *testing.T, h Harness) {
	h = checkedHarness(h)
	t.Run("NoProblems", func(t *testing.T) { scenarioNoProblems(t, h) })
	t.Run("RequestLost", func(t *testing.T) { scenarioRequestLost(t, h) })
	t.Run("ReplyLost", func(t *testing.T) { scenarioReplyLost(t, h) })
	t.Run("ReplyDelayed", func(t *testing.T) { scenarioReplyDelayed(t, h) })
	t.Run("Reorder", func(t *testing.T) { scenarioReorder(t, h) })
	t.Run("Duplication", func(t *testing.T) { scenarioDuplication(t, h) })
	t.Run("LossSweep", func(t *testing.T) { scenarioLossSweep(t, h) })
	t.Run("ConcurrentClients", func(t *testing.T) { scenarioConcurrentClients(t, h) })
	t.Run("CrossCall", func(t *testing.T) { scenarioCrossCall(t, h) })
	t.Run("StatsUnderLoad", func(t *testing.T) { scenarioStatsUnderLoad(t, h) })
	t.Run("ServiceReuse", func(t *testing.T) { scenarioServiceReuse(t, h) })
}

// checkedHarness wraps a harness so that every cluster it builds asserts
// zero outstanding requests once its workers are done.
func checkedHarness(h Harness) Harness {
	return func(t *testing.T, cfg Config) Cluster {
		return &checkedCluster{inner: h(t, cfg)}
	}
}

type checkedCluster struct{ inner Cluster }

func (c *checkedCluster) Run(t *testing.T, workers ...Worker) {
	t.Helper()
	c.inner.Run(t, workers...)
	if n := c.inner.Outstanding(); n != 0 {
		t.Errorf("%d outstanding requests after all workers returned: the transport leaked request state", n)
	}
}

func (c *checkedCluster) Outstanding() int { return c.inner.Outstanding() }

// reregisterer unwraps the leak-check decorator and reports whether the
// transport's cluster offers the optional Reregisterer capability.
func reregisterer(cl Cluster) (Reregisterer, bool) {
	if c, ok := cl.(*checkedCluster); ok {
		cl = c.inner
	}
	r, ok := cl.(Reregisterer)
	return r, ok
}

// Service ids shared by the scenarios.
const (
	svcEcho  = 1
	svcOnce  = 2 // non-idempotent: effect must happen exactly once per call
	svcOuter = 3 // handler that Calls svcEcho on another node
)

func echoService(prefix string) func(int) Service {
	return func(int) Service {
		return Service{
			Idempotent: true,
			Handler: func(_ Caller, _ int, req []byte) ([]byte, bool) {
				return append([]byte(prefix), req...), false
			},
		}
	}
}

// onceRecorder builds svcOnce and exposes the per-payload execution counts.
type onceRecorder struct {
	mu   sync.Mutex
	seen map[string]int
}

func newOnceRecorder() *onceRecorder { return &onceRecorder{seen: make(map[string]int)} }

func (r *onceRecorder) service(int) Service {
	return Service{
		Idempotent: false,
		Handler: func(_ Caller, _ int, req []byte) ([]byte, bool) {
			r.mu.Lock()
			r.seen[string(req)]++
			n := r.seen[string(req)]
			r.mu.Unlock()
			return []byte{byte(n)}, false
		},
	}
}

func (r *onceRecorder) distinct() int {
	r.mu.Lock()
	defer r.mu.Unlock()
	return len(r.seen)
}

func (r *onceRecorder) assertExactlyOnce(t *testing.T, want int) {
	t.Helper()
	r.mu.Lock()
	defer r.mu.Unlock()
	for id, n := range r.seen {
		if n != 1 {
			t.Errorf("effect %q happened %d times", id, n)
		}
	}
	if len(r.seen) != want {
		t.Fatalf("recorded %d distinct effects, want %d", len(r.seen), want)
	}
}

func mustCall(t *testing.T, c Caller, dst, svc int, req []byte) []byte {
	t.Helper()
	got, err := c.Call(dst, svc, req)
	if err != nil {
		t.Errorf("call svc %d to node %d: %v", svc, dst, err)
		return nil
	}
	return got
}

// Figure 3(a): no problems — one request, one reply.
func scenarioNoProblems(t *testing.T, h Harness) {
	cl := h(t, Config{
		Nodes:    2,
		Services: map[int]func(int) Service{svcEcho: echoService("echo:")},
	})
	cl.Run(t, Worker{Node: 0, Body: func(c Caller) {
		if got := mustCall(t, c, 1, svcEcho, []byte("hi")); string(got) != "echo:hi" {
			t.Errorf("got %q", got)
		}
	}})
}

// Figure 3(b): the request is lost; the requester's retransmission recovers.
func scenarioRequestLost(t *testing.T, h Harness) {
	cl := h(t, Config{
		Nodes:    2,
		Faults:   Faults{DropFirstRequest: true},
		Services: map[int]func(int) Service{svcEcho: echoService("echo:")},
	})
	cl.Run(t, Worker{Node: 0, Body: func(c Caller) {
		if got := mustCall(t, c, 1, svcEcho, []byte("hi")); string(got) != "echo:hi" {
			t.Errorf("got %q", got)
		}
	}})
}

// Figure 3(c): the reply is lost; the request is retransmitted and the
// reply regenerated — without re-executing the non-idempotent handler.
func scenarioReplyLost(t *testing.T, h Harness) {
	rec := newOnceRecorder()
	cl := h(t, Config{
		Nodes:    2,
		Faults:   Faults{DropFirstReply: true},
		Services: map[int]func(int) Service{svcOnce: rec.service},
	})
	cl.Run(t, Worker{Node: 0, Body: func(c Caller) {
		if got := mustCall(t, c, 1, svcOnce, []byte("tx-1")); len(got) != 1 || got[0] != 1 {
			t.Errorf("reply = %v, want execution count 1", got)
		}
	}})
	rec.assertExactlyOnce(t, 1)
}

// Figure 3(d): the reply is delayed past the timeout; the retransmission
// produces a duplicate reply, which the requester must discard — the next
// call must still pair with its own reply.
func scenarioReplyDelayed(t *testing.T, h Harness) {
	var executions atomic.Int32
	cl := h(t, Config{
		Nodes:  2,
		Faults: Faults{DelayFirstReply: true},
		Services: map[int]func(int) Service{
			svcEcho: func(int) Service {
				return Service{
					Idempotent: true,
					Handler: func(_ Caller, _ int, req []byte) ([]byte, bool) {
						executions.Add(1)
						return append([]byte("echo:"), req...), false
					},
				}
			},
		},
	})
	cl.Run(t, Worker{Node: 0, Body: func(c Caller) {
		if got := mustCall(t, c, 1, svcEcho, []byte("a")); string(got) != "echo:a" {
			t.Errorf("first call got %q", got)
		}
		if got := mustCall(t, c, 1, svcEcho, []byte("b")); string(got) != "echo:b" {
			t.Errorf("second call got %q (stale reply leaked across calls)", got)
		}
	}})
	if executions.Load() < 2 {
		t.Errorf("handler executed %d times; the delayed reply never forced a retransmission", executions.Load())
	}
}

// Reordered datagrams must not cross replies between calls.
func scenarioReorder(t *testing.T, h Harness) {
	cl := h(t, Config{
		Nodes:    2,
		Faults:   Faults{Reorder: 0.5},
		Services: map[int]func(int) Service{svcEcho: echoService("r:")},
	})
	cl.Run(t, Worker{Node: 0, Body: func(c Caller) {
		for i := 0; i < 16; i++ {
			msg := fmt.Sprintf("m%d", i)
			if got := mustCall(t, c, 1, svcEcho, []byte(msg)); string(got) != "r:"+msg {
				t.Errorf("call %d got %q", i, got)
			}
		}
	}})
}

// Duplicated datagrams: non-idempotent effects still happen exactly once.
func scenarioDuplication(t *testing.T, h Harness) {
	rec := newOnceRecorder()
	cl := h(t, Config{
		Nodes:    2,
		Faults:   Faults{Dup: 0.5},
		Services: map[int]func(int) Service{svcOnce: rec.service},
	})
	const calls = 12
	cl.Run(t, Worker{Node: 0, Body: func(c Caller) {
		for i := 0; i < calls; i++ {
			mustCall(t, c, 1, svcOnce, []byte(fmt.Sprintf("dup-%d", i)))
		}
	}})
	rec.assertExactlyOnce(t, calls)
}

// 0–10% random loss: every call completes with the right payload.
func scenarioLossSweep(t *testing.T, h Harness) {
	for _, loss := range []float64{0, 0.02, 0.05, 0.10} {
		loss := loss
		t.Run(fmt.Sprintf("loss=%.0f%%", loss*100), func(t *testing.T) {
			cl := h(t, Config{
				Nodes:    2,
				Faults:   Faults{Loss: loss},
				Services: map[int]func(int) Service{svcEcho: echoService("l:")},
			})
			worker := func(id int) Worker {
				return Worker{Node: 0, Body: func(c Caller) {
					for i := 0; i < 8; i++ {
						msg := fmt.Sprintf("w%d-%d", id, i)
						if got := mustCall(t, c, 1, svcEcho, []byte(msg)); string(got) != "l:"+msg {
							t.Errorf("got %q want %q", got, "l:"+msg)
						}
					}
				}}
			}
			cl.Run(t, worker(0), worker(1))
		})
	}
}

// Several clients against several servers, non-idempotent, under light
// loss+duplication: zero lost calls, exactly-once effects.
func scenarioConcurrentClients(t *testing.T, h Harness) {
	recs := map[int]*onceRecorder{1: newOnceRecorder(), 2: newOnceRecorder()}
	cl := h(t, Config{
		Nodes:  3,
		Faults: Faults{Loss: 0.05, Dup: 0.1},
		Services: map[int]func(int) Service{
			svcOnce: func(node int) Service {
				if r, ok := recs[node]; ok {
					return r.service(node)
				}
				return newOnceRecorder().service(node)
			},
		},
	})
	const perWorker = 8
	var workers []Worker
	for w := 0; w < 4; w++ {
		w := w
		workers = append(workers, Worker{Node: 0, Body: func(c Caller) {
			for i := 0; i < perWorker; i++ {
				dst := 1 + (w+i)%2
				mustCall(t, c, dst, svcOnce, []byte(fmt.Sprintf("w%d-%d", w, i)))
			}
		}})
	}
	cl.Run(t, workers...)
	if got := recs[1].distinct() + recs[2].distinct(); got != 4*perWorker {
		t.Fatalf("recorded %d effects, want %d", got, 4*perWorker)
	}
	recs[1].assertExactlyOnce(t, recs[1].distinct())
	recs[2].assertExactlyOnce(t, recs[2].distinct())
}

// Stats snapshots must be safe to take while traffic is in flight. The
// harness probes every endpoint's Stats() concurrently with the workers
// (StatsProbe); loss and duplication keep the retransmission and
// dup-suppression counters moving while the probe reads them. The UDP
// harness runs under -race, so a torn or unsynchronized snapshot fails
// the build's race job even though the payload assertions here are mild.
func scenarioStatsUnderLoad(t *testing.T, h Harness) {
	cl := h(t, Config{
		Nodes:      3,
		Faults:     Faults{Loss: 0.05, Dup: 0.1},
		Services:   map[int]func(int) Service{svcEcho: echoService("s:")},
		StatsProbe: true,
	})
	var workers []Worker
	for w := 0; w < 4; w++ {
		w := w
		workers = append(workers, Worker{Node: 0, Body: func(c Caller) {
			for i := 0; i < 8; i++ {
				dst := 1 + (w+i)%2
				msg := fmt.Sprintf("w%d-%d", w, i)
				if got := mustCall(t, c, dst, svcEcho, []byte(msg)); string(got) != "s:"+msg {
					t.Errorf("got %q want %q", got, "s:"+msg)
				}
			}
		}})
	}
	cl.Run(t, workers...)
}

// Endpoint reuse across runs: a quiescent service is torn down and a
// fresh instance registered under the same id on the same endpoint, as
// the service daemon does between jobs. The second generation's handler
// must serve subsequent calls, and the first generation's reply cache
// must not leak stale replies into them.
func scenarioServiceReuse(t *testing.T, h Harness) {
	cl := h(t, Config{
		Nodes:    2,
		Services: map[int]func(int) Service{svcEcho: echoService("gen1:")},
	})
	rr, ok := reregisterer(cl)
	if !ok {
		t.Skip("transport does not support service reregistration")
	}
	cl.Run(t, Worker{Node: 0, Body: func(c Caller) {
		for i := 0; i < 4; i++ {
			if got := mustCall(t, c, 1, svcEcho, []byte("x")); string(got) != "gen1:x" {
				t.Errorf("gen1 call %d got %q", i, got)
			}
		}
		rr.Reregister(1, svcEcho, echoService("gen2:"))
		for i := 0; i < 4; i++ {
			msg := fmt.Sprintf("y%d", i)
			if got := mustCall(t, c, 1, svcEcho, []byte(msg)); string(got) != "gen2:"+msg {
				t.Errorf("gen2 call %d got %q (stale generation answered)", i, got)
			}
		}
	}})
}

// Symmetric cross-call: both nodes call a service on the other whose
// handler in turn calls back — the DSM page-request pattern from both sides
// at once. A transport that services requests on its receive path deadlocks
// here.
func scenarioCrossCall(t *testing.T, h Harness) {
	cl := h(t, Config{
		Nodes: 2,
		Services: map[int]func(int) Service{
			svcEcho: echoService("inner:"),
			svcOuter: func(node int) Service {
				peer := 1 - node
				return Service{
					Idempotent: true,
					Calls:      true,
					Handler: func(c Caller, _ int, req []byte) ([]byte, bool) {
						inner, err := c.Call(peer, svcEcho, req)
						if err != nil {
							return nil, true
						}
						return append([]byte("outer:"), inner...), false
					},
				}
			},
		},
	})
	worker := func(node int) Worker {
		peer := 1 - node
		return Worker{Node: node, Body: func(c Caller) {
			msg := fmt.Sprintf("n%d", node)
			if got := mustCall(t, c, peer, svcOuter, []byte(msg)); string(got) != "outer:inner:"+msg {
				t.Errorf("node %d got %q", node, got)
			}
		}}
	}
	cl.Run(t, worker(0), worker(1))
}
