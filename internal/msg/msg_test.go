package msg

import (
	"testing"

	"filaments/internal/cost"
	"filaments/internal/kernel"
	"filaments/internal/packet"
	"filaments/internal/sim"
	"filaments/internal/simnet"
	"filaments/internal/threads"
)

type fixture struct {
	eng   *sim.Engine
	nodes []*threads.Node
	ports []*Endpoint
}

func newFixture(t *testing.T, n int) *fixture {
	t.Helper()
	eng := sim.New(1)
	m := cost.Default()
	nw := simnet.New(eng, &m, n)
	fx := &fixture{eng: eng}
	for i := 0; i < n; i++ {
		node := threads.NewNode(nw, simnet.NodeID(i))
		ep := packet.New(node)
		fx.nodes = append(fx.nodes, node)
		fx.ports = append(fx.ports, New(node, ep))
		node.Start()
	}
	return fx
}

func (fx *fixture) run(t *testing.T, bodies map[int]func(th *threads.Thread)) {
	t.Helper()
	remaining := len(bodies)
	fx.eng.Schedule(0, func() {
		// Spawn in node order: map iteration order would vary the spawn
		// sequence run to run (dflint: maprange).
		for id := range fx.nodes {
			body, ok := bodies[id]
			if !ok {
				continue
			}
			fx.nodes[id].Spawn("main", func(kt kernel.Thread) {
				th := kt.(*threads.Thread)
				body(th)
				remaining--
				if remaining == 0 {
					for _, n := range fx.nodes {
						n.Stop()
					}
				}
			})
		}
	})
	if err := fx.eng.Run(); err != nil {
		t.Fatal(err)
	}
}

func TestSendRecv(t *testing.T) {
	fx := newFixture(t, 2)
	var got any
	fx.run(t, map[int]func(*threads.Thread){
		0: func(th *threads.Thread) { fx.ports[0].Send(1, 7, "hello", 20) },
		1: func(th *threads.Thread) { got = fx.ports[1].Recv(th, 0, 7) },
	})
	if got != "hello" {
		t.Fatalf("got %v", got)
	}
}

func TestRecvBlocksUntilArrival(t *testing.T) {
	fx := newFixture(t, 2)
	var recvAt, sendAt sim.Time
	fx.run(t, map[int]func(*threads.Thread){
		0: func(th *threads.Thread) {
			fx.nodes[0].Charge(threads.CatWork, 50*sim.Millisecond)
			sendAt = fx.eng.Now()
			fx.ports[0].Send(1, 1, 42, 20)
		},
		1: func(th *threads.Thread) {
			_ = fx.ports[1].Recv(th, 0, 1)
			recvAt = fx.eng.Now()
		},
	})
	if recvAt < sendAt {
		t.Fatalf("received at %v before send at %v", recvAt, sendAt)
	}
}

func TestTagsAreIndependentStreams(t *testing.T) {
	fx := newFixture(t, 2)
	var a, b any
	fx.run(t, map[int]func(*threads.Thread){
		0: func(th *threads.Thread) {
			fx.ports[0].Send(1, 2, "second", 20)
			fx.ports[0].Send(1, 1, "first", 20)
		},
		1: func(th *threads.Thread) {
			// Receive in the opposite order of tags.
			a = fx.ports[1].Recv(th, 0, 1)
			b = fx.ports[1].Recv(th, 0, 2)
		},
	})
	if a != "first" || b != "second" {
		t.Fatalf("got %v, %v", a, b)
	}
}

func TestFIFOWithinTag(t *testing.T) {
	fx := newFixture(t, 2)
	var got []int
	fx.run(t, map[int]func(*threads.Thread){
		0: func(th *threads.Thread) {
			for i := 0; i < 10; i++ {
				fx.ports[0].Send(1, 1, i, 20)
			}
		},
		1: func(th *threads.Thread) {
			for i := 0; i < 10; i++ {
				got = append(got, fx.ports[1].Recv(th, 0, 1).(int))
			}
		},
	})
	for i, v := range got {
		if v != i {
			t.Fatalf("out of order: %v", got)
		}
	}
}

func TestBroadcast(t *testing.T) {
	fx := newFixture(t, 4)
	got := make([]any, 4)
	bodies := map[int]func(*threads.Thread){
		0: func(th *threads.Thread) { fx.ports[0].Broadcast(3, "all", 64) },
	}
	for i := 1; i < 4; i++ {
		i := i
		bodies[i] = func(th *threads.Thread) { got[i] = fx.ports[i].Recv(th, 0, 3) }
	}
	fx.run(t, bodies)
	for i := 1; i < 4; i++ {
		if got[i] != "all" {
			t.Fatalf("node %d got %v", i, got[i])
		}
	}
}

func TestRecvAnyArrivalOrder(t *testing.T) {
	fx := newFixture(t, 3)
	var order []simnet.NodeID
	fx.run(t, map[int]func(*threads.Thread){
		0: func(th *threads.Thread) {
			for i := 0; i < 2; i++ {
				src, _ := fx.ports[0].RecvAny(th, 9)
				order = append(order, src)
			}
		},
		1: func(th *threads.Thread) {
			fx.nodes[1].Charge(threads.CatWork, 20*sim.Millisecond)
			fx.ports[1].Send(0, 9, "late", 20)
		},
		2: func(th *threads.Thread) { fx.ports[2].Send(0, 9, "early", 20) },
	})
	if len(order) != 2 || order[0] != 2 || order[1] != 1 {
		t.Fatalf("arrival order = %v, want [2 1]", order)
	}
}

func TestCounters(t *testing.T) {
	fx := newFixture(t, 2)
	fx.run(t, map[int]func(*threads.Thread){
		0: func(th *threads.Thread) {
			fx.ports[0].Send(1, 1, "x", 20)
			fx.ports[0].Send(1, 1, "y", 20)
		},
		1: func(th *threads.Thread) {
			fx.ports[1].Recv(th, 0, 1)
			fx.ports[1].Recv(th, 0, 1)
		},
	})
	if fx.ports[0].Sent() != 2 || fx.ports[1].Received() != 2 {
		t.Fatalf("sent=%d received=%d", fx.ports[0].Sent(), fx.ports[1].Received())
	}
}
