package msg

import "filaments/internal/rtnode"

// Binary wire codec for the CG envelope (tag 40; see the tag map in
// rtnode/codec.go). Data is an interface, so the envelope recurses
// through EncodeAny/DecodeAny: a registered payload type ([][]float64,
// the CG matrix shape) nests its binary form, anything else nests the gob
// escape hatch.
func init() {
	rtnode.RegisterWireCodec(wire{}, 40,
		func(e *rtnode.Enc, v any) {
			w := v.(wire)
			e.Varint(int64(w.Tag))
			e.Varint(int64(w.Size))
			rtnode.EncodeAny(e, w.Data)
		},
		func(d *rtnode.Dec) any {
			var w wire
			w.Tag = Tag(d.Varint())
			w.Size = int(d.Varint())
			w.Data = rtnode.DecodeAny(d)
			return w
		})
}
