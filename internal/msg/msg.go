// Package msg provides the explicit message passing used by the paper's
// coarse-grain (CG) comparison programs (§4): plain unreliable datagrams
// over the shared Ethernet, exactly as those programs used UDP. There is
// no retransmission — the paper notes that when a message was lost "the
// program hung and the test was aborted" — so CG runs assume a lossless
// network, while the DF programs tolerate loss through Packet.
package msg

import (
	"fmt"

	"filaments/internal/kernel"
	"filaments/internal/obs"
	"filaments/internal/rtnode"
)

// Tag distinguishes message streams between the same pair of nodes.
type Tag int32

type wire struct {
	Tag  Tag
	Data any
	Size int
}

// The real-time binding serializes payloads with gob. The envelope was
// missing from the registry until dflint's gobreg check caught it: every
// simulated CG test passed, and the first UDP frame would have failed to
// encode.
func init() {
	rtnode.RegisterWire(wire{})
}

type key struct {
	src kernel.NodeID
	tag Tag
}

// Endpoint is one node's explicit-messaging port.
type Endpoint struct {
	node   kernel.Node
	tr     kernel.Transport
	queues map[key][]wire
	// waiter is the thread blocked in Recv for a given key (at most one).
	waiters map[key]kernel.Thread
	// anyFIFO records, per tag, the arrival order of sources, for RecvAny.
	anyFIFO    map[Tag][]kernel.NodeID
	anyWaiters map[Tag]kernel.Thread

	sent, received *obs.Counter
}

// New wires an endpoint into the transport's raw-datagram chain.
func New(node kernel.Node, tr kernel.Transport) *Endpoint {
	o := obs.Of(node)
	m := &Endpoint{
		node:       node,
		tr:         tr,
		sent:       o.Counter("msg.sent"),
		received:   o.Counter("msg.received"),
		queues:     make(map[key][]wire),
		waiters:    make(map[key]kernel.Thread),
		anyFIFO:    make(map[Tag][]kernel.NodeID),
		anyWaiters: make(map[Tag]kernel.Thread),
	}
	tr.HandleRaw(m.handle)
	return m
}

// Sent and Received report message counters. The counters are atomic, so
// the reads are safe from any goroutine.
func (m *Endpoint) Sent() int64     { return m.sent.Load() }
func (m *Endpoint) Received() int64 { return m.received.Load() }

// Send transmits payload to dst. Unreliable: a lost frame is lost.
func (m *Endpoint) Send(dst kernel.NodeID, tag Tag, payload any, size int) {
	m.sent.Inc()
	m.tr.Send(dst, wire{Tag: tag, Data: payload, Size: size}, size, kernel.CatData)
}

// Broadcast transmits payload to every other node in one frame (the CG
// matrix-multiplication program broadcasts the B matrix this way).
func (m *Endpoint) Broadcast(tag Tag, payload any, size int) {
	m.sent.Inc()
	m.tr.Send(kernel.Broadcast, wire{Tag: tag, Data: payload, Size: size}, size, kernel.CatData)
}

// Recv blocks the calling thread until a message with the given source and
// tag arrives, then returns its payload.
func (m *Endpoint) Recv(t kernel.Thread, src kernel.NodeID, tag Tag) any {
	k := key{src: src, tag: tag}
	for len(m.queues[k]) == 0 {
		if m.waiters[k] != nil {
			panic(fmt.Sprintf("msg: two receivers on node %d for src=%d tag=%d", m.node.ID(), src, tag))
		}
		m.waiters[k] = t
		t.Block()
	}
	q := m.queues[k]
	w := q[0]
	m.queues[k] = q[1:]
	m.received.Inc()
	return w.Data
}

// RecvAny blocks until a message with the given tag arrives from any
// source, returning the sender and payload in arrival order. Do not mix
// RecvAny and Recv on the same tag.
func (m *Endpoint) RecvAny(t kernel.Thread, tag Tag) (kernel.NodeID, any) {
	for len(m.anyFIFO[tag]) == 0 {
		if m.anyWaiters[tag] != nil {
			panic(fmt.Sprintf("msg: two RecvAny on node %d tag %d", m.node.ID(), tag))
		}
		m.anyWaiters[tag] = t
		t.Block()
	}
	src := m.anyFIFO[tag][0]
	m.anyFIFO[tag] = m.anyFIFO[tag][1:]
	k := key{src: src, tag: tag}
	q := m.queues[k]
	w := q[0]
	m.queues[k] = q[1:]
	m.received.Inc()
	return src, w.Data
}

// handle consumes raw datagrams carrying msg wires; runs in node context.
func (m *Endpoint) handle(from kernel.NodeID, payload any) bool {
	w, ok := payload.(wire)
	if !ok {
		return false
	}
	m.node.Charge(kernel.CatData, m.node.Model().RecvCost(w.Size))
	k := key{src: from, tag: w.Tag}
	//dflint:allow handleridem raw datagrams are never retransmitted (only RPC requests are), so each wire arrives at most once and FIFO growth mirrors sends one-to-one
	m.queues[k] = append(m.queues[k], w)
	//dflint:allow handleridem raw datagrams are never retransmitted (only RPC requests are), so each wire arrives at most once and FIFO growth mirrors sends one-to-one
	m.anyFIFO[w.Tag] = append(m.anyFIFO[w.Tag], from)
	if t := m.waiters[k]; t != nil {
		delete(m.waiters, k)
		m.node.Ready(t, true)
	} else if t := m.anyWaiters[w.Tag]; t != nil {
		delete(m.anyWaiters, w.Tag)
		m.node.Ready(t, true)
	}
	return true
}
