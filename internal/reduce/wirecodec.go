package reduce

import "filaments/internal/rtnode"

// Binary wire codecs for the barrier messages (tags 32–33; see the tag
// map in rtnode/codec.go). Barrier latency is a headline number in the
// paper's tables, and under UDP the arrive/release pair is pure software
// overhead — these keep it to a handful of bytes and zero codec
// allocations.
func init() {
	rtnode.RegisterWireCodec(arriveMsg{}, 32,
		func(e *rtnode.Enc, v any) {
			m := v.(arriveMsg)
			e.Varint(m.Epoch)
			e.Varint(int64(m.Round))
			e.F64(m.Value)
			e.Bool(m.Has)
		},
		func(d *rtnode.Dec) any {
			var m arriveMsg
			m.Epoch = d.Varint()
			m.Round = int32(d.Varint())
			m.Value = d.F64()
			m.Has = d.Bool()
			return m
		})
	rtnode.RegisterWireCodec(releaseMsg{}, 33,
		func(e *rtnode.Enc, v any) {
			m := v.(releaseMsg)
			e.Varint(m.Epoch)
			e.F64(m.Result)
		},
		func(d *rtnode.Dec) any {
			var m releaseMsg
			m.Epoch = d.Varint()
			m.Result = d.F64()
			return m
		})
}
