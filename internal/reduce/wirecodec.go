package reduce

import "filaments/internal/rtnode"

// Binary wire codecs for the barrier messages (tags 32–33; see the tag
// map in rtnode/codec.go). Barrier latency is a headline number in the
// paper's tables, and under UDP the arrive/release pair is pure software
// overhead — these keep it to a handful of bytes and zero codec
// allocations.
func init() {
	rtnode.RegisterWireCodec(arriveMsg{}, 32,
		func(e *rtnode.Enc, v any) {
			m := v.(arriveMsg)
			e.Varint(m.Epoch)
			e.Varint(int64(m.Round))
			e.F64(m.Value)
			e.Bool(m.Has)
			encNotices(e, m.Notices)
		},
		func(d *rtnode.Dec) any {
			var m arriveMsg
			m.Epoch = d.Varint()
			m.Round = int32(d.Varint())
			m.Value = d.F64()
			m.Has = d.Bool()
			m.Notices = decNotices(d)
			return m
		})
	rtnode.RegisterWireCodec(releaseMsg{}, 33,
		func(e *rtnode.Enc, v any) {
			m := v.(releaseMsg)
			e.Varint(m.Epoch)
			e.F64(m.Result)
			encNotices(e, m.Notices)
		},
		func(d *rtnode.Dec) any {
			var m releaseMsg
			m.Epoch = d.Varint()
			m.Result = d.F64()
			m.Notices = decNotices(d)
			return m
		})
}

// encNotices/decNotices carry the LRC write-notice set; a single zero
// byte when empty, which it always is under the single-writer protocols.
//
//dflint:hotpath
func encNotices(e *rtnode.Enc, ns []int32) {
	e.Uvarint(uint64(len(ns)))
	for _, n := range ns {
		e.Varint(int64(n))
	}
}

//dflint:hotpath
func decNotices(d *rtnode.Dec) []int32 {
	n := d.Uvarint()
	if n > uint64(d.Remaining()) { // each entry costs ≥1 byte; reject bogus lengths
		d.Fail()
		return nil
	}
	var ns []int32
	for i := uint64(0); i < n; i++ {
		//dflint:allow hotalloc notices are empty under single-writer protocols; LRC pays one amortized slice per barrier by design
		ns = append(ns, int32(d.Varint()))
	}
	return ns
}
