// Package reduce implements the paper's reductions: a primitive that
// accumulates a value from every node, disseminates the result to all
// nodes, and doubles as a barrier (§3). A "pure" barrier is a reduction
// that computes no value.
//
// The implementation is the paper's tournament barrier with broadcast
// dissemination [HFM88]: O(p) messages and O(log p) latency. Losers send
// their partial value up a binomial tournament; the champion broadcasts the
// release. Reliability comes from Packet's retransmission: a lost release
// is recovered because the loser keeps retransmitting its arrive request
// until some node that has seen the release replies with the result.
//
// Reductions are integrated with the page consistency protocol: before
// arriving, a node waits for its outstanding page operations and, under
// implicit-invalidate, discards all read-only copies — which is what lets
// that protocol omit invalidation messages entirely.
package reduce

import (
	"math"

	"filaments/internal/dsm"
	"filaments/internal/kernel"
	"filaments/internal/obs"
	"filaments/internal/rtnode"
)

// SvcArrive is the service ID for tournament arrive messages.
const SvcArrive kernel.ServiceID = 20

// The real-time binding serializes payloads with gob.
func init() {
	rtnode.RegisterWire(arriveMsg{}, releaseMsg{})
}

// Op combines two reduction values. It must be commutative and
// associative, and identical on every node for a given reduction.
type Op func(a, b float64) float64

// Predefined operators.
var (
	Sum = func(a, b float64) float64 { return a + b }
	Max = math.Max
	Min = math.Min
)

// Style selects the barrier algorithm.
type Style int

const (
	// Tournament is the paper's algorithm: binomial combining tree plus a
	// broadcast release.
	Tournament Style = iota
	// Central is the ablation baseline: every node reports to node 0,
	// which broadcasts the release. O(p) messages but all serialized at
	// the coordinator.
	Central
	// Dissemination is the butterfly allreduce the paper lists as future
	// work ("experiments with different types of barriers for large
	// numbers of processors"): log2(p) fully parallel rounds, in round k
	// node i sending its partial to (i+2^k) mod p. O(p·log p) messages
	// but the lowest latency at scale. Value reductions require a
	// power-of-two cluster (otherwise contributions would double-count);
	// the constructor falls back to Tournament then.
	Dissemination
)

type arriveMsg struct {
	Epoch int64
	Round int32 // dissemination round; 0 for tournament/central arrivals
	Value float64
	Has   bool
	// Notices is the sender's (subtree-unioned) write-notice set under
	// lazy release consistency: the sorted blocks written since the last
	// barrier. Always nil under the single-writer protocols.
	Notices []int32
}

type releaseMsg struct {
	Epoch   int64
	Result  float64
	Notices []int32 // cluster-wide write-notice union (see arriveMsg)
}

const msgSize = 20 // the paper's bound on request size (empty-notice case)

// noticeBytes is the charged wire cost of a write-notice set riding on a
// barrier message: zero when empty, so the single-writer protocols charge
// exactly the paper's msgSize.
func noticeBytes(notices []int32) int { return 4 * len(notices) }

// mergeNotices unions two sorted, duplicate-free notice sets. It copies
// rather than aliasing its inputs, so decoded messages are never retained.
func mergeNotices(a, b []int32) []int32 {
	if len(b) == 0 {
		return a
	}
	if len(a) == 0 {
		return append([]int32(nil), b...)
	}
	out := make([]int32, 0, len(a)+len(b))
	i, j := 0, 0
	for i < len(a) && j < len(b) {
		switch {
		case a[i] < b[j]:
			out = append(out, a[i])
			i++
		case b[j] < a[i]:
			out = append(out, b[j])
			j++
		default:
			out = append(out, a[i])
			i++
			j++
		}
	}
	out = append(out, a[i:]...)
	out = append(out, b[j:]...)
	return out
}

type epochState struct {
	vals     []float64 // child values plus own, folded at completion
	arrived  map[kernel.NodeID]bool
	own      bool
	released bool
	result   float64
	waiter   kernel.Thread // local thread parked on this epoch
	handle   kernel.Handle // outstanding arrive request, if a loser

	// notices is the union of this node's own write notices and those of
	// every merged child; rNotices is the cluster-wide union that arrived
	// with the release. Both stay nil under the single-writer protocols.
	notices  []int32
	rNotices []int32

	// Dissemination state: the value received for each round, keyed by
	// round number, and the notices that rode with it (allocated lazily).
	roundVal     map[int32]float64
	roundNotices map[int32][]int32
}

// Reducer is one node's reduction/barrier instance.
type Reducer struct {
	node  kernel.Node
	ep    kernel.Transport
	d     *dsm.DSM // optional; nil for programs without DSM
	id    int
	n     int
	Style Style

	epoch  int64
	op     Op
	states map[int64]*epochState
	// results retains recently released results so that a node lagging by
	// several epochs (repeated losses) still gets the right value when its
	// retransmitted arrive reaches us. noticesHist retains the released
	// write-notice unions over the same window.
	results     map[int64]float64
	noticesHist map[int64][]int32

	obs      *obs.Obs
	barriers *obs.Counter
}

const resultHistory = 8

// New creates the reducer for one node of an n-node cluster. d may be nil
// when the program does not use the DSM.
func New(node kernel.Node, ep kernel.Transport, d *dsm.DSM, n int) *Reducer {
	o := obs.Of(node)
	r := &Reducer{
		node:        node,
		ep:          ep,
		d:           d,
		id:          int(node.ID()),
		n:           n,
		states:      make(map[int64]*epochState),
		results:     make(map[int64]float64),
		noticesHist: make(map[int64][]int32),
		obs:         o,
		barriers:    o.Counter("reduce.barriers"),
	}
	ep.Register(SvcArrive, kernel.Service{
		Name:       "reduce-arrive",
		Idempotent: true, // duplicates are filtered by the arrived set
		Category:   kernel.CatSync,
		Handler:    r.serveArrive,
	})
	ep.HandleRaw(r.handleRelease)
	return r
}

// Count returns how many reductions/barriers completed on this node. The
// counter is atomic, so the read is safe from any goroutine.
func (r *Reducer) Count() int64 { return r.barriers.Load() }

func (r *Reducer) state(e int64) *epochState {
	st, ok := r.states[e]
	if !ok {
		st = &epochState{
			arrived:  make(map[kernel.NodeID]bool),
			roundVal: make(map[int32]float64),
		}
		r.states[e] = st
	}
	return st
}

// Barrier blocks t until every node has arrived at the same barrier.
func (r *Reducer) Barrier(t kernel.Thread) {
	r.Reduce(t, 0, Sum)
}

// Reduce contributes x, blocks until all nodes have contributed, and
// returns the combined value (identical on every node).
func (r *Reducer) Reduce(t kernel.Thread, x float64, op Op) float64 {
	model := r.node.Model()
	t0 := r.node.Now()
	// Synchronization-point duties (paper §3): flush this interval's diffs
	// toward their homes (lazy release consistency only), drain outstanding
	// page operations — which covers the flush acks — then apply the
	// protocol's synchronization rule to read-only copies.
	var myNotices []int32
	if r.d != nil {
		myNotices = r.d.AtRelease()
		r.d.Quiesce(t)
		r.d.AtBarrier()
	}
	r.node.Charge(kernel.CatSync, model.BarrierProcess)

	e := r.epoch
	r.op = op
	st := r.state(e)
	st.own = true
	st.vals = append(st.vals, x)
	st.notices = mergeNotices(st.notices, myNotices)
	if m := r.monitor(); m != nil {
		m.OnBarrierArrive(r.node.ID(), e, r.node.Now())
	}

	switch {
	case r.n == 1:
		st.released = true
		st.result = x
		st.rNotices = st.notices
		if m := r.monitor(); m != nil {
			m.OnEpochQuiesced(r.node.ID(), e, r.node.Now())
		}
	case r.Style == Dissemination && r.n&(r.n-1) == 0:
		r.disseminate(t, e, st, x)
	case r.id == 0:
		r.championWait(t, e, st)
	default:
		r.loserPath(t, e, st)
	}

	result := st.result
	acquired := st.rNotices
	delete(r.states, e)
	r.results[e] = result
	delete(r.results, e-resultHistory)
	r.noticesHist[e] = acquired
	delete(r.noticesHist, e-resultHistory)
	r.epoch++
	r.barriers.Inc()
	// Acquire-side duty: invalidate the copies the cluster-wide notice set
	// marks stale (a no-op under the single-writer protocols).
	if r.d != nil {
		r.d.AtAcquire(acquired)
	}
	if m := r.monitor(); m != nil {
		m.OnBarrierRelease(r.node.ID(), e, r.node.Now())
	}
	if r.obs.Enabled() {
		r.obs.TraceSpan(int64(t0), int64(r.node.Now().Sub(t0)), "sync", "barrier",
			obs.Arg{Key: "epoch", Val: e})
	}
	return result
}

// monitor returns the space's memory-model monitor, if the program runs a
// DSM and one is attached.
func (r *Reducer) monitor() dsm.Monitor {
	if r.d == nil {
		return nil
	}
	return r.d.Space().Monitor()
}

// children returns this node's tournament children in arrival-round order
// (node id receives from id+1, id+2, id+4, ... until the next set bit of
// id or the cluster size cuts it off). Under the Central style node 0's
// children are everyone.
func (r *Reducer) children() []kernel.NodeID {
	var cs []kernel.NodeID
	if r.Style == Central {
		if r.id == 0 {
			for i := 1; i < r.n; i++ {
				cs = append(cs, kernel.NodeID(i))
			}
		}
		return cs
	}
	for bit := 1; ; bit <<= 1 {
		if r.id != 0 && r.id&bit != 0 {
			break // we lose at this round
		}
		c := r.id + bit
		if c >= r.n {
			break
		}
		cs = append(cs, kernel.NodeID(c))
	}
	return cs
}

// parent returns the node this one reports to when it loses.
func (r *Reducer) parent() kernel.NodeID {
	if r.Style == Central {
		return 0
	}
	// Clear the lowest set bit: the winner of our losing round.
	return kernel.NodeID(r.id & (r.id - 1))
}

// championWait runs node 0's side: wait for all children, fold, broadcast.
func (r *Reducer) championWait(t kernel.Thread, e int64, st *epochState) {
	want := len(r.children())
	t0 := r.node.Now()
	for len(st.arrived) < want {
		st.waiter = t
		t.Block()
		st.waiter = nil
	}
	r.node.AddDelay(kernel.CatSyncDelay, r.node.Now().Sub(t0))
	st.result = r.fold(st)
	st.released = true
	st.rNotices = st.notices // the champion's union is the cluster's
	// The fold is a globally quiescent instant: every node has arrived
	// (transitively, through its subtree's partials), each drained its
	// outstanding page operations before arriving, and none resumes until
	// the release below — so page frames are stable and snapshotable. The
	// dissemination butterfly has no such instant, which is why the
	// consistency oracle only supports the tournament and central styles.
	if m := r.monitor(); m != nil {
		m.OnEpochQuiesced(r.node.ID(), e, r.node.Now())
	}
	// Broadcast dissemination: one frame releases everyone.
	rel := releaseMsg{Epoch: e, Result: st.result, Notices: st.rNotices}
	r.ep.Send(kernel.Broadcast, rel, msgSize+noticeBytes(rel.Notices), kernel.CatSync)
}

// loserPath runs a non-champion: collect children (if any), then send the
// partial up and wait for the release.
func (r *Reducer) loserPath(t kernel.Thread, e int64, st *epochState) {
	want := len(r.children())
	t0 := r.node.Now()
	for len(st.arrived) < want {
		st.waiter = t
		t.Block()
		st.waiter = nil
	}
	partial := r.fold(st)
	up := arriveMsg{Epoch: e, Value: partial, Has: true, Notices: st.notices}
	st.handle = r.ep.RequestAsync(r.parent(), SvcArrive, up,
		msgSize+noticeBytes(up.Notices), kernel.CatSync, func(reply any) {
			// Direct reply: the parent (or champion) had already released.
			if m, ok := reply.(releaseMsg); ok && !st.released {
				st.released = true
				st.result = m.Result
				st.rNotices = mergeNotices(nil, m.Notices)
			}
			if st.waiter != nil {
				w := st.waiter
				st.waiter = nil
				r.node.Ready(w, true)
			}
		})
	for !st.released {
		st.waiter = t
		t.Block()
		st.waiter = nil
	}
	st.handle.Cancel()
	r.node.AddDelay(kernel.CatSyncDelay, r.node.Now().Sub(t0))
}

// disseminate runs the butterfly: in round k, exchange partials with the
// nodes ±2^k away; after log2(p) rounds every node holds the full result.
func (r *Reducer) disseminate(t kernel.Thread, e int64, st *epochState, x float64) {
	partial := x
	partialN := st.notices
	t0 := r.node.Now()
	for k, dist := int32(0), 1; dist < r.n; k, dist = k+1, dist*2 {
		dst := kernel.NodeID((r.id + dist) % r.n)
		out := arriveMsg{Epoch: e, Round: k, Value: partial, Has: true, Notices: partialN}
		r.ep.RequestAsync(dst, SvcArrive, out,
			msgSize+noticeBytes(out.Notices), kernel.CatSync, func(any) {})
		for {
			v, ok := st.roundVal[k]
			if ok {
				partial = r.op(partial, v)
				// Set union is idempotent, so the butterfly's double
				// counting is harmless for notices.
				partialN = mergeNotices(partialN, st.roundNotices[k])
				break
			}
			st.waiter = t
			t.Block()
		}
	}
	st.result = partial
	st.released = true
	st.rNotices = partialN
	r.node.AddDelay(kernel.CatSyncDelay, r.node.Now().Sub(t0))
}

func (r *Reducer) fold(st *epochState) float64 {
	acc := st.vals[0]
	for _, v := range st.vals[1:] {
		acc = r.op(acc, v)
	}
	return acc
}

// serveArrive handles a child's arrive request. If this epoch is already
// released we answer with the result (covers a lost broadcast); otherwise
// we merge the value and drop — the broadcast will release the child, and
// its retransmission covers loss.
func (r *Reducer) serveArrive(from kernel.NodeID, req any) (any, int, kernel.Verdict) {
	m := req.(arriveMsg)
	if m.Epoch < r.epoch {
		// Old epoch: it completed globally (we have moved on), so the
		// release exists; resend it from the retained history.
		rel := releaseMsg{Epoch: m.Epoch, Result: r.results[m.Epoch], Notices: r.noticesHist[m.Epoch]}
		return rel, msgSize + noticeBytes(rel.Notices), kernel.Reply
	}
	st := r.state(m.Epoch)
	if r.Style == Dissemination && r.n&(r.n-1) == 0 && r.n > 1 {
		// Record the round's value (duplicates ignored) and ack.
		if _, dup := st.roundVal[m.Round]; !dup {
			st.roundVal[m.Round] = m.Value
			if len(m.Notices) > 0 {
				if st.roundNotices == nil {
					st.roundNotices = make(map[int32][]int32)
				}
				st.roundNotices[m.Round] = mergeNotices(nil, m.Notices)
			}
			r.node.Charge(kernel.CatSync, r.node.Model().BarrierMerge)
			if st.waiter != nil {
				w := st.waiter
				st.waiter = nil
				r.node.Ready(w, true)
			}
		}
		return nil, 8, kernel.Reply
	}
	if st.released {
		rel := releaseMsg{Epoch: m.Epoch, Result: st.result, Notices: st.rNotices}
		return rel, msgSize + noticeBytes(rel.Notices), kernel.Reply
	}
	if !st.arrived[from] {
		st.arrived[from] = true
		r.node.Charge(kernel.CatSync, r.node.Model().BarrierMerge)
		st.vals = append(st.vals, m.Value)
		st.notices = mergeNotices(st.notices, m.Notices)
		if st.waiter != nil && st.own {
			w := st.waiter
			st.waiter = nil
			r.node.Ready(w, true)
		}
	}
	return nil, 0, kernel.Drop
}

// handleRelease consumes broadcast release datagrams.
func (r *Reducer) handleRelease(from kernel.NodeID, payload any) bool {
	m, ok := payload.(releaseMsg)
	if !ok {
		return false
	}
	r.node.Charge(kernel.CatSync, r.node.Model().RecvCost(msgSize+noticeBytes(m.Notices)))
	if m.Epoch < r.epoch {
		return true // stale
	}
	st := r.state(m.Epoch)
	if st.released {
		return true
	}
	st.released = true
	st.result = m.Result
	st.rNotices = mergeNotices(nil, m.Notices)
	if st.handle != nil {
		st.handle.Cancel()
	}
	if st.waiter != nil {
		w := st.waiter
		st.waiter = nil
		r.node.Ready(w, true)
	}
	return true
}
