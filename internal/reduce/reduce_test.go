package reduce

import (
	"testing"

	"filaments/internal/cost"
	"filaments/internal/kernel"
	"filaments/internal/packet"
	"filaments/internal/sim"
	"filaments/internal/simnet"
	"filaments/internal/threads"
)

type fixture struct {
	eng      *sim.Engine
	nw       *simnet.Network
	nodes    []*threads.Node
	reducers []*Reducer
}

func newFixture(t *testing.T, n int, style Style) *fixture {
	t.Helper()
	return newFixtureSeed(t, n, style, 1)
}

func newFixtureSeed(t *testing.T, n int, style Style, seed int64) *fixture {
	t.Helper()
	eng := sim.New(seed)
	m := cost.Default()
	nw := simnet.New(eng, &m, n)
	fx := &fixture{eng: eng, nw: nw}
	for i := 0; i < n; i++ {
		node := threads.NewNode(nw, simnet.NodeID(i))
		ep := packet.New(node)
		r := New(node, ep, nil, n)
		r.Style = style
		fx.nodes = append(fx.nodes, node)
		fx.reducers = append(fx.reducers, r)
		node.Start()
	}
	return fx
}

func (fx *fixture) run(t *testing.T, body func(id int, th *threads.Thread)) {
	t.Helper()
	remaining := len(fx.nodes)
	fx.eng.Schedule(0, func() {
		for i := range fx.nodes {
			i := i
			fx.nodes[i].Spawn("main", func(kt kernel.Thread) {
				th := kt.(*threads.Thread)
				body(i, th)
				remaining--
				if remaining == 0 {
					for _, n := range fx.nodes {
						n.Stop()
					}
				}
			})
		}
	})
	if err := fx.eng.Run(); err != nil {
		t.Fatal(err)
	}
}

func TestReduceSum(t *testing.T) {
	for _, n := range []int{1, 2, 3, 4, 5, 8} {
		fx := newFixture(t, n, Tournament)
		results := make([]float64, n)
		fx.run(t, func(id int, th *threads.Thread) {
			results[id] = fx.reducers[id].Reduce(th, float64(id+1), Sum)
		})
		want := float64(n * (n + 1) / 2)
		for id, got := range results {
			if got != want {
				t.Fatalf("n=%d node %d: sum = %v, want %v", n, id, got, want)
			}
		}
	}
}

func TestReduceMaxMin(t *testing.T) {
	fx := newFixture(t, 4, Tournament)
	maxs := make([]float64, 4)
	mins := make([]float64, 4)
	fx.run(t, func(id int, th *threads.Thread) {
		maxs[id] = fx.reducers[id].Reduce(th, float64(id*id), Max)
		mins[id] = fx.reducers[id].Reduce(th, float64(id*id), Min)
	})
	for id := range maxs {
		if maxs[id] != 9 || mins[id] != 0 {
			t.Fatalf("node %d: max=%v min=%v", id, maxs[id], mins[id])
		}
	}
}

func TestBarrierNoEarlyRelease(t *testing.T) {
	fx := newFixture(t, 4, Tournament)
	var arrived, released [4]sim.Time
	fx.run(t, func(id int, th *threads.Thread) {
		// Node 3 arrives much later than everyone else.
		if id == 3 {
			th.Node().Charge(threads.CatWork, 200*sim.Millisecond)
		}
		arrived[id] = fx.eng.Now()
		fx.reducers[id].Barrier(th)
		released[id] = fx.eng.Now()
	})
	for id := 0; id < 4; id++ {
		if released[id] < arrived[3] {
			t.Fatalf("node %d released at %v before node 3 arrived at %v", id, released[id], arrived[3])
		}
	}
}

func TestManyConsecutiveBarriers(t *testing.T) {
	const rounds = 50
	fx := newFixture(t, 8, Tournament)
	fx.run(t, func(id int, th *threads.Thread) {
		for i := 0; i < rounds; i++ {
			got := fx.reducers[id].Reduce(th, float64(i), Sum)
			if got != float64(8*i) {
				t.Errorf("round %d node %d: got %v", i, id, got)
				return
			}
		}
	})
	for id, r := range fx.reducers {
		if r.Count() != rounds {
			t.Fatalf("node %d completed %d barriers", id, r.Count())
		}
	}
}

func TestMessageCountLinear(t *testing.T) {
	// Tournament with broadcast dissemination: p-1 arrives + 1 broadcast
	// per barrier (plus nothing else in a lossless run).
	for _, n := range []int{2, 4, 8} {
		fx := newFixture(t, n, Tournament)
		fx.run(t, func(id int, th *threads.Thread) {
			fx.reducers[id].Barrier(th)
		})
		frames := fx.nw.Stats().FramesSent
		if want := int64(n); frames != want {
			t.Fatalf("n=%d: %d frames per barrier, want %d", n, frames, want)
		}
	}
}

func TestBarrierLatencyGrowsLogarithmically(t *testing.T) {
	times := map[int]sim.Duration{}
	for _, n := range []int{2, 4, 8} {
		fx := newFixture(t, n, Tournament)
		const rounds = 100
		var elapsed sim.Duration
		fx.run(t, func(id int, th *threads.Thread) {
			start := fx.eng.Now()
			for i := 0; i < rounds; i++ {
				fx.reducers[id].Barrier(th)
			}
			if id == 0 {
				elapsed = fx.eng.Now().Sub(start)
			}
		})
		times[n] = elapsed / rounds
	}
	if !(times[2] < times[4] && times[4] < times[8]) {
		t.Fatalf("barrier times not monotone: %v", times)
	}
	// O(log p): the 8-node barrier (3 rounds) should cost well under 3x
	// the 2-node barrier (1 round), and the 4->8 increment should be
	// comparable to the 2->4 increment.
	if times[8] > 3*times[2] {
		t.Fatalf("8-node barrier %v vs 2-node %v: worse than linear", times[8], times[2])
	}
}

func TestCentralStyle(t *testing.T) {
	fx := newFixture(t, 8, Central)
	results := make([]float64, 8)
	fx.run(t, func(id int, th *threads.Thread) {
		results[id] = fx.reducers[id].Reduce(th, 1, Sum)
	})
	for id, got := range results {
		if got != 8 {
			t.Fatalf("node %d: got %v", id, got)
		}
	}
}

func TestBarrierUnderLoss(t *testing.T) {
	for _, seed := range []int64{1, 2, 3} {
		fx := newFixtureSeed(t, 8, Tournament, seed)
		fx.nw.LossRate = 0.2
		const rounds = 10
		fx.run(t, func(id int, th *threads.Thread) {
			for i := 0; i < rounds; i++ {
				got := fx.reducers[id].Reduce(th, 1, Sum)
				if got != 8 {
					t.Errorf("seed %d round %d node %d: got %v", seed, i, id, got)
					return
				}
			}
		})
	}
}

func TestSyncDelayAccounting(t *testing.T) {
	fx := newFixture(t, 2, Tournament)
	fx.run(t, func(id int, th *threads.Thread) {
		if id == 1 {
			th.Node().Charge(threads.CatWork, 100*sim.Millisecond)
		}
		fx.reducers[id].Barrier(th)
	})
	// Node 0 waited ~100ms for node 1.
	delay := fx.nodes[0].Account()[threads.CatSyncDelay]
	if delay < 90*sim.Millisecond {
		t.Fatalf("node 0 sync delay = %v, want ~100ms", delay)
	}
}

func TestDisseminationReduceSum(t *testing.T) {
	for _, n := range []int{2, 4, 8, 16} {
		fx := newFixture(t, n, Dissemination)
		results := make([]float64, n)
		fx.run(t, func(id int, th *threads.Thread) {
			results[id] = fx.reducers[id].Reduce(th, float64(id+1), Sum)
		})
		want := float64(n * (n + 1) / 2)
		for id, got := range results {
			if got != want {
				t.Fatalf("n=%d node %d: sum = %v, want %v", n, id, got, want)
			}
		}
	}
}

func TestDisseminationManyRounds(t *testing.T) {
	const rounds = 30
	fx := newFixture(t, 8, Dissemination)
	fx.run(t, func(id int, th *threads.Thread) {
		for i := 0; i < rounds; i++ {
			if got := fx.reducers[id].Reduce(th, 1, Sum); got != 8 {
				t.Errorf("round %d node %d: got %v", i, id, got)
				return
			}
		}
	})
}

func TestDisseminationUnderLoss(t *testing.T) {
	fx := newFixtureSeed(t, 8, Dissemination, 5)
	fx.nw.LossRate = 0.15
	fx.run(t, func(id int, th *threads.Thread) {
		for i := 0; i < 5; i++ {
			if got := fx.reducers[id].Reduce(th, 2, Sum); got != 16 {
				t.Errorf("node %d round %d: got %v", id, i, got)
				return
			}
		}
	})
}

// Dissemination falls back to the tournament for non-power-of-two
// clusters, where the butterfly would double-count.
func TestDisseminationFallbackOddNodes(t *testing.T) {
	fx := newFixture(t, 6, Dissemination)
	results := make([]float64, 6)
	fx.run(t, func(id int, th *threads.Thread) {
		results[id] = fx.reducers[id].Reduce(th, 1, Sum)
	})
	for id, got := range results {
		if got != 6 {
			t.Fatalf("node %d: got %v, want 6", id, got)
		}
	}
}

func TestDisseminationMessageCount(t *testing.T) {
	// p·log2(p) arrive messages plus their acks.
	fx := newFixture(t, 8, Dissemination)
	fx.run(t, func(id int, th *threads.Thread) {
		fx.reducers[id].Barrier(th)
	})
	frames := fx.nw.Stats().FramesSent
	want := int64(2 * 8 * 3) // (arrive + ack) * p * log2(p)
	if frames != want {
		t.Fatalf("frames = %d, want %d", frames, want)
	}
}
