// Package kernel defines the seam between the DF kernel layers (DSM,
// reductions, filaments — the paper's Figure 1) and the machinery that
// hosts them. The kernel layers are written against three small
// interfaces:
//
//   - Transport: a reliable request/reply endpoint with service
//     registration plus unreliable one-way sends, the contract Packet
//     provides (paper §2.2).
//   - Clock: time and timers, virtual or wall.
//   - Executor: node-local threads — spawn, block, ready — and CPU cost
//     accounting, whether threads are simulator procs on one virtual CPU
//     or real goroutines.
//
// Two bindings exist: the deterministic simulation
// (internal/threads + internal/packet on internal/simnet), which carries
// every experiment in EXPERIMENTS.md, and the real-time binding
// (internal/rtnode on internal/udptrans), which runs the same kernel
// code over loopback UDP sockets in real goroutines — in one process or
// several.
//
// Time and Duration are aliases of the simulator's nanosecond types:
// they are plain int64 nanosecond counts with no behavior tied to the
// event loop, and reusing them keeps the two bindings' cost ledgers
// directly comparable.
package kernel

import (
	"filaments/internal/cost"
	"filaments/internal/sim"
)

// Time is a point in time, in nanoseconds since the node started.
// Virtual under the simulation binding, wall time under the real-time
// binding.
type Time = sim.Time

// Duration is an interval in nanoseconds.
type Duration = sim.Duration

// Convenient duration units, re-exported from the sim package.
const (
	Nanosecond  = sim.Nanosecond
	Microsecond = sim.Microsecond
	Millisecond = sim.Millisecond
	Second      = sim.Second
)

// NodeID identifies a node in the cluster, in [0, Nodes).
type NodeID int

// Broadcast is the destination that delivers a Send to every node except
// the sender.
const Broadcast NodeID = -1

// ServiceID names a registered request/reply service, unique per
// endpoint.
type ServiceID int

// Verdict is a service handler's decision about a request.
type Verdict int

const (
	// Reply sends the returned reply back to the requester.
	Reply Verdict = iota
	// Drop discards the request without replying; the requester's
	// retransmission will retry it (the paper's server-busy case).
	Drop
)

// Category classifies where CPU time goes, mirroring the paper's Table 2
// cost breakdown.
type Category int

const (
	// CatWork is useful application work.
	CatWork Category = iota
	// CatFilament is filament runtime overhead (creation, scheduling).
	CatFilament
	// CatData is data movement: page faults, page transfers, explicit
	// messages.
	CatData
	// CatSync is synchronization processing: barriers and reductions.
	CatSync
	// CatSyncDelay is time spent waiting at synchronization points.
	CatSyncDelay
	// CatIdle is time with nothing to run.
	CatIdle

	// NumCategories is the number of accounting categories.
	NumCategories = int(CatIdle) + 1
)

var categoryNames = [NumCategories]string{
	"work", "filament", "data", "sync", "sync-delay", "idle",
}

func (c Category) String() string {
	if c >= 0 && int(c) < NumCategories {
		return categoryNames[c]
	}
	return "unknown"
}

// Account is a per-category ledger of CPU time.
type Account [NumCategories]Duration

// Total sums all categories.
func (a Account) Total() Duration {
	var t Duration
	for _, d := range a {
		t += d
	}
	return t
}

// Service describes one registered request handler, transport-agnostic.
type Service struct {
	// Name is used in diagnostics.
	Name string
	// Handler services one request. It runs in node context (under the
	// node's scheduler or monitor) and must not block; long work belongs
	// on a thread it wakes. The returned size is the reply's wire size in
	// bytes.
	Handler func(from NodeID, req any) (reply any, size int, v Verdict)
	// Idempotent handlers may safely re-execute for duplicate requests.
	// Non-idempotent ones execute at most once per request; the transport
	// caches and replays their replies.
	Idempotent bool
	// ModifiesCritical marks handlers that mutate state a thread may be
	// inspecting in a critical section; the transport drops such requests
	// while the node is critical, relying on retransmission (the paper's
	// §2.3 deadlock-avoidance rule).
	ModifiesCritical bool
	// Category is the accounting category charged for handling.
	Category Category
}

// Thread is a kernel-schedulable thread on one node: a simulator proc
// under the simulation binding, a goroutine holding the node monitor
// under the real-time binding.
type Thread interface {
	// Name returns the thread's diagnostic name.
	Name() string
	// Block suspends the calling thread until a Ready. Must be called by
	// the thread itself.
	Block()
	// Yield gives other runnable threads (and, on the real-time binding,
	// pending message handlers) a chance to run.
	Yield()
	// Preempt is a dispatch point: the simulated SIGIO model processes
	// pending network input here; the real-time binding briefly releases
	// the node monitor.
	Preempt()
}

// Timer is a cancelable scheduled callback.
type Timer interface {
	// Stop cancels the timer; it reports false if the callback already
	// ran or was stopped.
	Stop() bool
}

// Clock provides time and timers: virtual (event-driven) in the
// simulation, wall time in the real-time binding.
type Clock interface {
	// Now returns the current time.
	Now() Time
	// Schedule runs fn in node context after d.
	Schedule(d Duration, fn func()) Timer
}

// Executor is the node-local thread scheduler and CPU ledger.
type Executor interface {
	// ID returns this node's identity.
	ID() NodeID
	// Spawn creates a ready-to-run thread.
	Spawn(name string, body func(t Thread)) Thread
	// Ready makes a blocked thread runnable; front queues it ahead of
	// other ready threads where the binding supports ordering.
	Ready(t Thread, front bool)
	// Charge spends d of CPU in category c. Under the simulation this
	// advances virtual time on the calling proc; under the real-time
	// binding it only updates the ledger.
	Charge(c Category, d Duration)
	// AddDelay records d in the ledger without consuming CPU (overlapped
	// costs, e.g. wait time attributed to synchronization).
	AddDelay(c Category, d Duration)
	// Model returns the cost model used for accounting.
	Model() *cost.Model
}

// Node is what the kernel layers hold: a clock plus an executor.
type Node interface {
	Clock
	Executor
}

// Handle tracks one outstanding asynchronous request.
type Handle interface {
	// Complete resolves the request locally with the given reply, as if
	// it had been answered; the transport stops retransmitting and the
	// callback runs. Used when the answer arrives out of band (e.g. a
	// barrier release broadcast overtaking the reply).
	Complete(reply any)
	// Cancel abandons the request; no callback will run.
	Cancel()
	// Done reports whether the request has completed or been canceled.
	Done() bool
}

// Transport is a reliable request/reply endpoint bound to one node, plus
// unreliable one-way sends — the Packet contract from the paper's §2.2.
// All methods must be called from node context; callbacks and raw
// handlers are likewise delivered in node context.
type Transport interface {
	// Register installs a service. All registration happens before
	// traffic flows.
	Register(id ServiceID, s Service)
	// RequestAsync issues a reliable request and invokes cb with the
	// reply. The request is retransmitted until answered, canceled, or
	// completed.
	RequestAsync(dst NodeID, svc ServiceID, req any, size int, cat Category, cb func(reply any)) Handle
	// RequestSized is RequestAsync with an expected reply size, used to
	// stretch retransmission timeouts for large replies (page transfers).
	RequestSized(dst NodeID, svc ServiceID, req any, size, expectedReply int, cat Category, cb func(reply any)) Handle
	// Call issues a request and blocks thread t until the reply arrives.
	Call(t Thread, dst NodeID, svc ServiceID, req any, size int, cat Category) any
	// Send transmits an unreliable one-way datagram (dst may be
	// Broadcast). Delivery is not guaranteed; protocols layered above
	// must tolerate loss (the barrier release broadcast does, via arrive
	// retransmission).
	Send(dst NodeID, payload any, size int, cat Category)
	// HandleRaw appends a handler for one-way datagrams. Handlers run in
	// node context, in registration order, until one returns true.
	HandleRaw(h func(from NodeID, payload any) bool)
	// Outstanding returns the number of requests in flight from this
	// endpoint.
	Outstanding() int
}
