package udptrans

import (
	"bytes"
	"errors"
	"fmt"
	"net"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

func collectEvents(ep *Endpoint) (*sync.Mutex, *[][]byte) {
	var mu sync.Mutex
	var got [][]byte
	ep.SetEventHandler(func(_ *net.UDPAddr, payload []byte) {
		mu.Lock()
		got = append(got, append([]byte(nil), payload...))
		mu.Unlock()
	})
	return &mu, &got
}

func waitEvents(t *testing.T, mu *sync.Mutex, got *[][]byte, want int) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for {
		mu.Lock()
		n := len(*got)
		mu.Unlock()
		if n >= want {
			return
		}
		if time.Now().After(deadline) {
			t.Fatalf("received %d events, want %d", n, want)
		}
		time.Sleep(time.Millisecond)
	}
}

// TestEventBatchingCoalesces: with a flush window set, a burst of small
// events to one peer must arrive complete and in order, but in far fewer
// datagrams than events.
func TestEventBatchingCoalesces(t *testing.T) {
	a, err := Listen("127.0.0.1:0", Options{BatchWindow: 2 * time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	defer a.Close()
	b, err := Listen("127.0.0.1:0", Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer b.Close()
	mu, got := collectEvents(b)

	const n = 64
	for i := 0; i < n; i++ {
		if err := a.SendEvent(b.Addr(), []byte(fmt.Sprintf("ev-%02d", i))); err != nil {
			t.Fatal(err)
		}
	}
	waitEvents(t, mu, got, n)

	mu.Lock()
	defer mu.Unlock()
	for i, p := range *got {
		if want := fmt.Sprintf("ev-%02d", i); string(p) != want {
			t.Fatalf("event %d = %q, want %q (reordered within batch?)", i, p, want)
		}
	}
	s := a.Stats()
	if s.EventsBatched != n {
		t.Fatalf("EventsBatched = %d, want %d", s.EventsBatched, n)
	}
	if s.BatchesSent == 0 || s.BatchesSent >= n {
		t.Fatalf("BatchesSent = %d; want coalescing (0 < batches < %d)", s.BatchesSent, n)
	}
}

// TestBatchFlushOnSize: a batch that would overflow the datagram bound
// must flush immediately, not wait for the window.
func TestBatchFlushOnSize(t *testing.T) {
	a, err := Listen("127.0.0.1:0", Options{BatchWindow: time.Minute}) // timer never fires in-test
	if err != nil {
		t.Fatal(err)
	}
	defer a.Close()
	b, err := Listen("127.0.0.1:0", Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer b.Close()
	mu, got := collectEvents(b)

	big := bytes.Repeat([]byte{0xCD}, 24*1024)
	// Two fit under MaxPayload (60K); the third overflows and forces a
	// flush of the first two, while it stays pending under the window.
	for i := 0; i < 3; i++ {
		if err := a.SendEvent(b.Addr(), big); err != nil {
			t.Fatal(err)
		}
	}
	waitEvents(t, mu, got, 2)
	mu.Lock()
	defer mu.Unlock()
	for i, p := range *got {
		if !bytes.Equal(p, big) {
			t.Fatalf("event %d corrupted (%d bytes)", i, len(p))
		}
	}
	if s := a.Stats(); s.BatchesSent != 1 {
		t.Fatalf("BatchesSent = %d, want exactly 1 size-triggered flush", s.BatchesSent)
	}
}

// TestCloseFlushesBatch: Close must put pending batches on the wire
// before tearing the socket down, or the tail of a run's events would
// vanish whenever the window outlives the program.
func TestCloseFlushesBatch(t *testing.T) {
	a, err := Listen("127.0.0.1:0", Options{BatchWindow: time.Minute})
	if err != nil {
		t.Fatal(err)
	}
	b, err := Listen("127.0.0.1:0", Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer b.Close()
	mu, got := collectEvents(b)

	if err := a.SendEvent(b.Addr(), []byte("tail")); err != nil {
		t.Fatal(err)
	}
	a.Close()
	waitEvents(t, mu, got, 1)
	mu.Lock()
	defer mu.Unlock()
	if string((*got)[0]) != "tail" {
		t.Fatalf("flushed event = %q", (*got)[0])
	}
}

// TestEventDropCounted: events discarded by a full worker queue must be
// visible — the Stats counter and the drop hook both fire once per loss.
// The seed code dropped them silently, which made lost barrier releases
// look like network loss instead of local backpressure.
func TestEventDropCounted(t *testing.T) {
	b, err := Listen("127.0.0.1:0", Options{Workers: 1, QueueDepth: 1})
	if err != nil {
		t.Fatal(err)
	}
	defer b.Close()
	a, err := Listen("127.0.0.1:0", Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer a.Close()

	var hooked atomic.Int64
	b.SetEventDropHook(func() { hooked.Add(1) })
	release := make(chan struct{})
	var served atomic.Int64
	b.SetEventHandler(func(_ *net.UDPAddr, _ []byte) {
		served.Add(1)
		<-release // wedge the only worker: queue fills, later events drop
	})

	for i := 0; i < 64; i++ {
		if err := a.SendEvent(b.Addr(), []byte{byte(i)}); err != nil {
			t.Fatal(err)
		}
	}
	deadline := time.Now().Add(5 * time.Second)
	for b.Stats().EventsDropped == 0 {
		if time.Now().After(deadline) {
			t.Fatal("no events dropped despite a wedged 1-deep queue")
		}
		time.Sleep(time.Millisecond)
	}
	close(release)
	if d, h := b.Stats().EventsDropped, hooked.Load(); d != h {
		t.Fatalf("EventsDropped = %d but hook fired %d times", d, h)
	}
}

// TestDupSendClosedSocketSurfaced: the duplicate-injection path tolerates
// its own send failing (it is extra loss-recovery traffic), but a closed
// socket is different — every future send fails too, so it must surface
// and stop the caller's retry loop. The seed discarded the duplicate's
// error entirely. Closing the socket from inside the DupSend callback
// lands the failure exactly on the duplicate write.
func TestDupSendClosedSocketSurfaced(t *testing.T) {
	var a *Endpoint
	a, err := Listen("127.0.0.1:0", Options{DupSend: func(_ []byte) bool {
		a.conn.Close() // primary write already succeeded; the duplicate hits a closed socket
		return true
	}})
	if err != nil {
		t.Fatal(err)
	}
	defer a.Close()
	b, err := Listen("127.0.0.1:0", Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer b.Close()

	frame := appendFrame(nil, header{kind: kindEvent}, []byte("x"))
	if err := a.send(frame, b.Addr()); !errors.Is(err, net.ErrClosed) {
		t.Fatalf("send with closed-socket duplicate returned %v, want net.ErrClosed", err)
	}
}
