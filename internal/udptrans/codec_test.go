package udptrans

import (
	"bytes"
	"net"
	"testing"
	"testing/quick"
	"time"
)

func TestHeaderRoundTrip(t *testing.T) {
	f := func(kindBit bool, svc uint16, seq uint32, payload []byte) bool {
		h := header{kind: kindRequest, svc: svc, seq: seq}
		if kindBit {
			h.kind = kindReply
		}
		got, p, ok := decode(encode(h, payload))
		return ok && got == h && bytes.Equal(p, payload)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestDecodeRejectsGarbage(t *testing.T) {
	if _, _, ok := decode([]byte{kindRequest, 0, 1}); ok {
		t.Fatal("decoded a datagram shorter than the header")
	}
	if _, _, ok := decode(encode(header{kind: 0x7F, svc: 1, seq: 1}, nil)); ok {
		t.Fatal("decoded an unknown kind")
	}
}

// Regression: replies must carry the service id in bytes 1–2, as the
// documented wire format | kind | svc | seq | says. The seed implementation
// left them zero.
func TestReplyHeaderCarriesService(t *testing.T) {
	srv, err := Listen("127.0.0.1:0", Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	const svc = 0x1234
	srv.Register(svc, Service{
		Idempotent: true,
		Handler: func(_ *net.UDPAddr, req []byte) ([]byte, bool) {
			return []byte("ok"), false
		},
	})

	// Speak the wire format directly so the assertion is on raw bytes.
	raw, err := net.DialUDP("udp", nil, srv.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer raw.Close()
	if _, err := raw.Write(encode(header{kind: kindRequest, svc: svc, seq: 99}, nil)); err != nil {
		t.Fatal(err)
	}
	raw.SetReadDeadline(time.Now().Add(2 * time.Second))
	buf := make([]byte, 256)
	n, err := raw.Read(buf)
	if err != nil {
		t.Fatal(err)
	}
	h, payload, ok := decode(buf[:n])
	if !ok {
		t.Fatalf("reply undecodable: % x", buf[:n])
	}
	if h.kind != kindReply || h.svc != svc || h.seq != 99 {
		t.Fatalf("reply header = %+v, want kind=%d svc=%#x seq=99", h, kindReply, svc)
	}
	if string(payload) != "ok" {
		t.Fatalf("payload = %q", payload)
	}
}
