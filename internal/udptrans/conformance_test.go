package udptrans

import (
	"math/rand"
	"net"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"filaments/internal/transconf"
)

// udpCluster adapts a set of loopback Endpoints to the shared conformance
// suite, mapping the suite's integer node ids to socket addresses.
type udpCluster struct {
	eps   []*Endpoint
	addrs []*net.UDPAddr
	ids   map[string]int // addr string → node id
	probe bool           // read every endpoint's Stats() while workers run
}

type udpCaller struct {
	cl *udpCluster
	ep *Endpoint
}

func (c *udpCaller) Call(dst, svc int, req []byte) ([]byte, error) {
	return c.ep.Call(c.cl.addrs[dst], uint16(svc), req)
}

func (cl *udpCluster) Outstanding() int {
	n := 0
	for _, ep := range cl.eps {
		n += ep.Outstanding()
	}
	return n
}

// Reregister implements the suite's optional endpoint-reuse capability:
// the daemon's between-jobs move of unregistering a quiescent service
// and installing a fresh one under the same id.
func (cl *udpCluster) Reregister(node, svc int, factory func(node int) transconf.Service) {
	ep := cl.eps[node]
	ep.Unregister(uint16(svc))
	cl.register(ep, svc, factory(node))
}

// register installs one suite service on ep, bridging the suite handler
// signature to the endpoint's.
func (cl *udpCluster) register(ep *Endpoint, svc int, s transconf.Service) {
	caller := &udpCaller{cl: cl, ep: ep}
	handler := s.Handler
	ep.Register(uint16(svc), Service{
		Idempotent: s.Idempotent,
		Handler: func(from *net.UDPAddr, req []byte) ([]byte, bool) {
			var c transconf.Caller
			if s.Calls {
				c = caller
			}
			return handler(c, cl.ids[from.String()], req)
		},
	})
}

func (cl *udpCluster) Run(t *testing.T, workers ...transconf.Worker) {
	if cl.probe {
		// Hammer every endpoint's Stats() from a foreign goroutine for
		// the whole run; with -race this fails on any snapshot that
		// isn't properly synchronized with the datagram paths.
		stop := make(chan struct{})
		var pw sync.WaitGroup
		pw.Add(1)
		go func() {
			defer pw.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				for _, ep := range cl.eps {
					_ = ep.Stats()
				}
				time.Sleep(50 * time.Microsecond)
			}
		}()
		defer func() {
			close(stop)
			pw.Wait()
		}()
	}
	var wg sync.WaitGroup
	for _, w := range workers {
		w := w
		wg.Add(1)
		go func() {
			defer wg.Done()
			w.Body(&udpCaller{cl: cl, ep: cl.eps[w.Node]})
		}()
	}
	wg.Wait()
}

// udpHarness builds loopback clusters with the suite's faults mapped onto
// the endpoint's DropSend/DelaySend/DupSend hooks.
func udpHarness(t *testing.T, cfg transconf.Config) transconf.Cluster {
	const baseTimeout = 5 * time.Millisecond
	var (
		rngMu        sync.Mutex
		rng          = rand.New(rand.NewSource(7))
		firstRequest atomic.Bool
		firstReply   atomic.Bool
	)
	chance := func(p float64) bool {
		if p <= 0 {
			return false
		}
		rngMu.Lock()
		defer rngMu.Unlock()
		return rng.Float64() < p
	}
	f := cfg.Faults
	opts := Options{
		RetransmitTimeout: baseTimeout,
		MaxBackoff:        50 * time.Millisecond,
		MaxRetries:        80,
		DropSend: func(b []byte) bool {
			if f.DropFirstRequest && b[0] == kindRequest && firstRequest.CompareAndSwap(false, true) {
				return true
			}
			if f.DropFirstReply && b[0] == kindReply && firstReply.CompareAndSwap(false, true) {
				return true
			}
			return chance(f.Loss)
		},
		DupSend: func(b []byte) bool { return chance(f.Dup) },
		DelaySend: func(b []byte) time.Duration {
			if f.DelayFirstReply && b[0] == kindReply && firstReply.CompareAndSwap(false, true) {
				return 4 * baseTimeout // past the timeout: forces a retransmission
			}
			if chance(f.Reorder) {
				rngMu.Lock()
				defer rngMu.Unlock()
				return time.Duration(rng.Int63n(int64(2 * baseTimeout)))
			}
			return 0
		},
	}

	cl := &udpCluster{ids: make(map[string]int), probe: cfg.StatsProbe}
	for i := 0; i < cfg.Nodes; i++ {
		ep, err := Listen("127.0.0.1:0", opts)
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(func() { ep.Close() })
		cl.eps = append(cl.eps, ep)
		cl.addrs = append(cl.addrs, ep.Addr())
		cl.ids[ep.Addr().String()] = i
	}
	for svc, factory := range cfg.Services {
		for node, ep := range cl.eps {
			cl.register(ep, svc, factory(node))
		}
	}
	return cl
}

// TestConformance runs the shared transport conformance suite — the same
// scenarios package packet runs on the simulated Ethernet — on loopback
// UDP. Run with -race; the symmetric CrossCall scenario hangs on any
// implementation that services requests on its receive path.
func TestConformance(t *testing.T) {
	transconf.RunAll(t, udpHarness)
}
