package udptrans

import (
	"bytes"
	"testing"
)

// FuzzBatchFraming round-trips event payloads through the kindBatch
// coalescing path: each payload is appended with appendBatchEntry, the
// body is framed with appendFrame, and the receive side must recover
// exactly the same payloads, in order, via decode and nextBatchEntry.
// Payload boundaries are fuzz-chosen so entry lengths cross the uvarint
// width breaks (127/128, 16383/16384).
func FuzzBatchFraming(f *testing.F) {
	f.Add([]byte{}, uint8(0))
	f.Add([]byte{0x01}, uint8(1))
	f.Add(bytes.Repeat([]byte{0xab}, 400), uint8(3))
	f.Add(bytes.Repeat([]byte{0x00}, 130), uint8(2)) // crosses the 1-byte uvarint break
	f.Fuzz(func(t *testing.T, data []byte, k uint8) {
		// Split data into k+1 contiguous chunks (some possibly empty).
		n := int(k%8) + 1
		var chunks [][]byte
		for i := 0; i < n; i++ {
			lo, hi := i*len(data)/n, (i+1)*len(data)/n
			chunks = append(chunks, data[lo:hi])
		}

		body := make([]byte, 0, len(data)+n*3)
		for _, c := range chunks {
			body = appendBatchEntry(body, c)
		}
		if len(body) > MaxPayload {
			t.Skip("batch larger than a datagram; the endpoint flushes before this")
		}
		dgram := appendFrame(nil, header{kind: kindBatch}, body)

		h, payload, ok := decode(dgram)
		if !ok {
			t.Fatalf("decode rejected a well-formed batch datagram (%d bytes)", len(dgram))
		}
		if h.kind != kindBatch || h.svc != 0 || h.seq != 0 {
			t.Fatalf("header changed in transit: %+v", h)
		}

		var got [][]byte
		for rest := payload; ; {
			entry, r, ok := nextBatchEntry(rest)
			if !ok {
				if len(rest) != 0 {
					t.Fatalf("batch walk stopped with %d undecoded bytes", len(rest))
				}
				break
			}
			got = append(got, entry)
			rest = r
		}
		if len(got) != len(chunks) {
			t.Fatalf("sent %d entries, decoded %d", len(chunks), len(got))
		}
		for i := range chunks {
			if !bytes.Equal(got[i], chunks[i]) {
				t.Fatalf("entry %d changed in transit:\n sent %x\n got  %x", i, chunks[i], got[i])
			}
		}
	})
}

// FuzzBatchDecodeMalformed walks arbitrary bytes as a batch body: the
// walk must terminate, never panic, and every entry it yields must lie
// within the input. This is the loss-tolerant receive path — a truncated
// or corrupt datagram must degrade to "fewer events", not a crash.
func FuzzBatchDecodeMalformed(f *testing.F) {
	f.Add([]byte{})
	f.Add([]byte{0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0x7f}) // huge length prefix
	f.Add([]byte{0x05, 0x01})                                                 // length past the end
	f.Add([]byte{0x80})                                                       // unterminated uvarint
	f.Add(appendBatchEntry(nil, []byte{1}))                                   // one valid entry
	f.Fuzz(func(t *testing.T, raw []byte) {
		total := 0
		for rest := raw; ; {
			entry, r, ok := nextBatchEntry(rest)
			if !ok {
				break
			}
			if len(r) >= len(rest) {
				t.Fatalf("batch walk did not make progress: %d -> %d bytes", len(rest), len(r))
			}
			total += len(entry)
			rest = r
		}
		if total > len(raw) {
			t.Fatalf("entries total %d bytes from a %d-byte input", total, len(raw))
		}
	})
}
