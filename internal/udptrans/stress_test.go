package udptrans

import (
	"encoding/binary"
	"fmt"
	"math/rand"
	"net"
	"sync"
	"testing"
	"time"
)

// faultRNG drives the loss/dup/reorder hooks deterministically and safely
// from many goroutines.
type faultRNG struct {
	mu  sync.Mutex
	rng *rand.Rand
}

func (f *faultRNG) chance(p float64) bool {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.rng.Float64() < p
}

func (f *faultRNG) jitter(max time.Duration) time.Duration {
	f.mu.Lock()
	defer f.mu.Unlock()
	return time.Duration(f.rng.Int63n(int64(max)))
}

// N clients × M servers under simultaneous loss, duplication, and
// reordering: every call must complete, every non-idempotent effect must
// happen exactly once, and no reply may cross between calls. This is the
// -race stress companion to the transconf suite.
func TestStressLossDupReorder(t *testing.T) {
	const (
		servers        = 2
		clients        = 4
		callsPerClient = 24
		svcRecord      = 7
	)
	rng := &faultRNG{rng: rand.New(rand.NewSource(42))}
	opts := Options{
		RetransmitTimeout: 5 * time.Millisecond,
		MaxBackoff:        50 * time.Millisecond,
		MaxRetries:        60,
		DropSend:          func(b []byte) bool { return rng.chance(0.10) },
		DupSend:           func(b []byte) bool { return rng.chance(0.10) },
		DelaySend: func(b []byte) time.Duration {
			if rng.chance(0.15) {
				return rng.jitter(8 * time.Millisecond)
			}
			return 0
		},
	}

	type record struct {
		mu   sync.Mutex
		seen map[string]int
	}
	var srvEps []*Endpoint
	var records []*record
	for i := 0; i < servers; i++ {
		ep, err := Listen("127.0.0.1:0", opts)
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(func() { ep.Close() })
		rec := &record{seen: make(map[string]int)}
		ep.Register(svcRecord, Service{
			Idempotent: false, // each id must be recorded exactly once
			Handler: func(_ *net.UDPAddr, req []byte) ([]byte, bool) {
				rec.mu.Lock()
				rec.seen[string(req)]++
				n := rec.seen[string(req)]
				rec.mu.Unlock()
				out := make([]byte, 4+len(req))
				binary.BigEndian.PutUint32(out, uint32(n))
				copy(out[4:], req)
				return out, false
			},
		})
		srvEps = append(srvEps, ep)
		records = append(records, rec)
	}

	var wg sync.WaitGroup
	errs := make(chan error, clients*callsPerClient)
	for c := 0; c < clients; c++ {
		c := c
		cli, err := Listen("127.0.0.1:0", opts)
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(func() { cli.Close() })
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < callsPerClient; i++ {
				srv := srvEps[(c+i)%servers]
				id := fmt.Sprintf("c%d-call%d", c, i)
				got, err := cli.Call(srv.Addr(), svcRecord, []byte(id))
				if err != nil {
					errs <- fmt.Errorf("%s: %v", id, err)
					return
				}
				if string(got[4:]) != id {
					errs <- fmt.Errorf("%s: reply for %q; calls crossed", id, got[4:])
					return
				}
				if n := binary.BigEndian.Uint32(got); n != 1 {
					errs <- fmt.Errorf("%s: executed %d times", id, n)
					return
				}
			}
		}()
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}

	total := 0
	for s, rec := range records {
		rec.mu.Lock()
		for id, n := range rec.seen {
			if n != 1 {
				t.Errorf("server %d: %s executed %d times", s, id, n)
			}
			total++
		}
		rec.mu.Unlock()
	}
	if total != clients*callsPerClient {
		t.Fatalf("recorded %d effects, want %d (lost calls)", total, clients*callsPerClient)
	}
}
