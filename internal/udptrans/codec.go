package udptrans

import "encoding/binary"

// Wire format: | kind(1) | svc(2) | seq(4) | payload |. Both requests and
// replies carry the full header; a reply echoes the request's svc and seq so
// the requester can validate it against the pending call.
const (
	kindRequest = 0x01
	kindReply   = 0x02
	// kindEvent is an unreliable one-way datagram: no seq tracking, no
	// retransmission, no reply. Protocols layered above must tolerate loss
	// (the barrier release broadcast does, via arrive retransmission). The
	// svc and seq header fields are zero.
	kindEvent = 0x03
	headerLen = 7
)

// header is the decoded fixed prefix of every datagram.
type header struct {
	kind byte
	svc  uint16
	seq  uint32
}

// encode builds a datagram from a header and payload.
func encode(h header, payload []byte) []byte {
	buf := make([]byte, headerLen+len(payload))
	buf[0] = h.kind
	binary.BigEndian.PutUint16(buf[1:], h.svc)
	binary.BigEndian.PutUint32(buf[3:], h.seq)
	copy(buf[headerLen:], payload)
	return buf
}

// decode splits a received datagram into header and payload. The payload is
// copied so the caller's receive buffer can be reused. ok is false for
// datagrams too short to carry a header or with an unknown kind.
func decode(b []byte) (h header, payload []byte, ok bool) {
	if len(b) < headerLen {
		return header{}, nil, false
	}
	h.kind = b[0]
	if h.kind != kindRequest && h.kind != kindReply && h.kind != kindEvent {
		return header{}, nil, false
	}
	h.svc = binary.BigEndian.Uint16(b[1:])
	h.seq = binary.BigEndian.Uint32(b[3:])
	payload = make([]byte, len(b)-headerLen)
	copy(payload, b[headerLen:])
	return h, payload, true
}
