package udptrans

import (
	"encoding/binary"
	"sync"
)

// Wire format: | kind(1) | svc(2) | seq(4) | payload |. Both requests and
// replies carry the full header; a reply echoes the request's svc and seq so
// the requester can validate it against the pending call.
const (
	kindRequest = 0x01
	kindReply   = 0x02
	// kindEvent is an unreliable one-way datagram: no seq tracking, no
	// retransmission, no reply. Protocols layered above must tolerate loss
	// (the barrier release broadcast does, via arrive retransmission). The
	// svc and seq header fields are zero.
	kindEvent = 0x03
	// kindBatch coalesces several events to the same peer into one
	// datagram: the payload is a sequence of uvarint-length-prefixed event
	// payloads. Same reliability contract as kindEvent.
	kindBatch = 0x04
	headerLen = 7
)

// header is the decoded fixed prefix of every datagram.
type header struct {
	kind byte
	svc  uint16
	seq  uint32
}

// frameCap is the largest datagram an endpoint sends or receives; every
// pooled buffer holds this much.
const frameCap = headerLen + MaxPayload

// bufPool recycles full-size frame buffers across sends and receives. The
// pool stores *[]byte (a pooled []byte header would itself allocate), and
// every entry keeps its original frameCap backing array.
var bufPool = sync.Pool{
	New: func() any {
		b := make([]byte, 0, frameCap)
		return &b
	},
}

func getBuf() *[]byte { return bufPool.Get().(*[]byte) }

func putBuf(bp *[]byte) {
	if bp == nil || cap(*bp) < frameCap {
		return // foreign or shrunken buffer; let the GC have it
	}
	*bp = (*bp)[:0]
	bufPool.Put(bp)
}

// appendFrame appends a framed datagram (header then payload) to dst.
//
//dflint:hotpath
func appendFrame(dst []byte, h header, payload []byte) []byte {
	dst = append(dst, h.kind)
	dst = binary.BigEndian.AppendUint16(dst, h.svc)
	dst = binary.BigEndian.AppendUint32(dst, h.seq)
	return append(dst, payload...)
}

// encode builds a datagram from a header and payload in a fresh buffer
// (tests; the endpoint frames into pooled buffers via appendFrame).
func encode(h header, payload []byte) []byte {
	return appendFrame(make([]byte, 0, headerLen+len(payload)), h, payload)
}

// decode splits a received datagram into header and payload. The payload
// ALIASES b — the caller owns the receive buffer and must keep it alive
// (and unrecycled) until the payload has been consumed. ok is false for
// datagrams too short to carry a header or with an unknown kind.
//
//dflint:hotpath
func decode(b []byte) (h header, payload []byte, ok bool) {
	if len(b) < headerLen {
		return header{}, nil, false
	}
	h.kind = b[0]
	if h.kind != kindRequest && h.kind != kindReply && h.kind != kindEvent && h.kind != kindBatch {
		return header{}, nil, false
	}
	h.svc = binary.BigEndian.Uint16(b[1:])
	h.seq = binary.BigEndian.Uint32(b[3:])
	return h, b[headerLen:], true
}

// appendBatchEntry appends one uvarint-length-prefixed event payload to a
// batch body.
//
//dflint:hotpath
func appendBatchEntry(dst, payload []byte) []byte {
	dst = binary.AppendUvarint(dst, uint64(len(payload)))
	return append(dst, payload...)
}

// nextBatchEntry splits the first entry off a batch body. ok is false at
// the end of the batch or on a malformed entry.
//
//dflint:hotpath
func nextBatchEntry(b []byte) (entry, rest []byte, ok bool) {
	if len(b) == 0 {
		return nil, nil, false
	}
	n, w := binary.Uvarint(b)
	if w <= 0 || n > uint64(len(b)-w) {
		return nil, nil, false
	}
	return b[w : w+int(n)], b[w+int(n):], true
}
