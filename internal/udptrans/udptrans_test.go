package udptrans

import (
	"bytes"
	"fmt"
	"net"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

const (
	svcEcho    = 1
	svcCounter = 2
	svcDrop    = 3
)

func pair(t *testing.T, opts Options) (*Endpoint, *Endpoint) {
	t.Helper()
	a, err := Listen("127.0.0.1:0", opts)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Listen("127.0.0.1:0", opts)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { a.Close(); b.Close() })
	return a, b
}

func registerEcho(ep *Endpoint) {
	ep.Register(svcEcho, Service{
		Idempotent: true,
		Handler: func(_ *net.UDPAddr, req []byte) ([]byte, bool) {
			return append([]byte("echo:"), req...), false
		},
	})
}

func TestEcho(t *testing.T) {
	a, b := pair(t, Options{})
	registerEcho(b)
	got, err := a.Call(b.Addr(), svcEcho, []byte("hi"))
	if err != nil {
		t.Fatal(err)
	}
	if string(got) != "echo:hi" {
		t.Fatalf("got %q", got)
	}
}

func TestLargePayload(t *testing.T) {
	a, b := pair(t, Options{})
	b.Register(svcEcho, Service{
		Idempotent: true,
		Handler: func(_ *net.UDPAddr, req []byte) ([]byte, bool) {
			return req, false
		},
	})
	page := bytes.Repeat([]byte{0xAB}, 40960) // a 10-page DSM group
	got, err := a.Call(b.Addr(), svcEcho, page)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, page) {
		t.Fatal("payload corrupted")
	}
}

func TestConcurrentCalls(t *testing.T) {
	a, b := pair(t, Options{})
	b.Register(svcEcho, Service{
		Idempotent: true,
		Handler: func(_ *net.UDPAddr, req []byte) ([]byte, bool) {
			return req, false
		},
	})
	var wg sync.WaitGroup
	errs := make(chan error, 32)
	for i := 0; i < 32; i++ {
		i := i
		wg.Add(1)
		go func() {
			defer wg.Done()
			want := fmt.Sprintf("msg-%d", i)
			got, err := a.Call(b.Addr(), svcEcho, []byte(want))
			if err != nil {
				errs <- err
				return
			}
			if string(got) != want {
				errs <- fmt.Errorf("got %q want %q", got, want)
			}
		}()
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
}

// Figure 3(b): first request lost; retransmission recovers.
func TestRequestLossRecovered(t *testing.T) {
	var dropped atomic.Bool
	opts := Options{
		RetransmitTimeout: 20 * time.Millisecond,
		DropSend: func(buf []byte) bool {
			if buf[0] == kindRequest && !dropped.Load() {
				dropped.Store(true)
				return true
			}
			return false
		},
	}
	a, err := Listen("127.0.0.1:0", opts)
	if err != nil {
		t.Fatal(err)
	}
	defer a.Close()
	b, err := Listen("127.0.0.1:0", Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer b.Close()
	registerEcho(b)
	got, err := a.Call(b.Addr(), svcEcho, []byte("x"))
	if err != nil {
		t.Fatal(err)
	}
	if string(got) != "echo:x" || !dropped.Load() {
		t.Fatalf("got %q dropped=%v", got, dropped.Load())
	}
}

// Figure 3(c) for a non-idempotent service: the reply is lost, the request
// retransmitted, and the handler must not re-execute.
func TestNonIdempotentReplayOnReplyLoss(t *testing.T) {
	var dropReply atomic.Bool
	dropReply.Store(true)
	serverOpts := Options{
		DropSend: func(buf []byte) bool {
			if buf[0] == kindReply && dropReply.Load() {
				dropReply.Store(false)
				return true
			}
			return false
		},
	}
	b, err := Listen("127.0.0.1:0", serverOpts)
	if err != nil {
		t.Fatal(err)
	}
	defer b.Close()
	a, err := Listen("127.0.0.1:0", Options{RetransmitTimeout: 20 * time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	defer a.Close()

	var count atomic.Int32
	b.Register(svcCounter, Service{
		Idempotent: false,
		Handler: func(_ *net.UDPAddr, req []byte) ([]byte, bool) {
			return []byte{byte(count.Add(1))}, false
		},
	})
	got, err := a.Call(b.Addr(), svcCounter, nil)
	if err != nil {
		t.Fatal(err)
	}
	if got[0] != 1 || count.Load() != 1 {
		t.Fatalf("reply %d, executions %d; duplicate re-executed", got[0], count.Load())
	}
}

// A handler that drops (critical section busy) is retried until it serves.
func TestHandlerDropRetried(t *testing.T) {
	a, b := pair(t, Options{RetransmitTimeout: 15 * time.Millisecond})
	var calls atomic.Int32
	b.Register(svcDrop, Service{
		Idempotent: true,
		Handler: func(_ *net.UDPAddr, req []byte) ([]byte, bool) {
			if calls.Add(1) < 3 {
				return nil, true // busy: drop
			}
			return []byte("finally"), false
		},
	})
	got, err := a.Call(b.Addr(), svcDrop, nil)
	if err != nil {
		t.Fatal(err)
	}
	if string(got) != "finally" || calls.Load() < 3 {
		t.Fatalf("got %q after %d calls", got, calls.Load())
	}
}

func TestTimeout(t *testing.T) {
	a, _ := pair(t, Options{RetransmitTimeout: 5 * time.Millisecond, MaxRetries: 2})
	dead := &net.UDPAddr{IP: net.IPv4(127, 0, 0, 1), Port: 1} // nothing listens
	_, err := a.Call(dead, svcEcho, []byte("x"))
	if err != ErrTimeout {
		t.Fatalf("err = %v, want ErrTimeout", err)
	}
}

func TestClosedEndpoint(t *testing.T) {
	a, b := pair(t, Options{})
	registerEcho(b)
	a.Close()
	if _, err := a.Call(b.Addr(), svcEcho, nil); err != ErrClosed {
		t.Fatalf("err = %v, want ErrClosed", err)
	}
}
