package udptrans

import (
	"bytes"
	"context"
	"fmt"
	"net"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

const (
	svcEcho    = 1
	svcCounter = 2
	svcDrop    = 3
)

func pair(t *testing.T, opts Options) (*Endpoint, *Endpoint) {
	t.Helper()
	a, err := Listen("127.0.0.1:0", opts)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Listen("127.0.0.1:0", opts)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { a.Close(); b.Close() })
	return a, b
}

func registerEcho(ep *Endpoint) {
	ep.Register(svcEcho, Service{
		Idempotent: true,
		Handler: func(_ *net.UDPAddr, req []byte) ([]byte, bool) {
			return append([]byte("echo:"), req...), false
		},
	})
}

func TestEcho(t *testing.T) {
	a, b := pair(t, Options{})
	registerEcho(b)
	got, err := a.Call(b.Addr(), svcEcho, []byte("hi"))
	if err != nil {
		t.Fatal(err)
	}
	if string(got) != "echo:hi" {
		t.Fatalf("got %q", got)
	}
}

func TestLargePayload(t *testing.T) {
	a, b := pair(t, Options{})
	b.Register(svcEcho, Service{
		Idempotent: true,
		Handler: func(_ *net.UDPAddr, req []byte) ([]byte, bool) {
			return req, false
		},
	})
	page := bytes.Repeat([]byte{0xAB}, 40960) // a 10-page DSM group
	got, err := a.Call(b.Addr(), svcEcho, page)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, page) {
		t.Fatal("payload corrupted")
	}
}

func TestConcurrentCalls(t *testing.T) {
	a, b := pair(t, Options{})
	b.Register(svcEcho, Service{
		Idempotent: true,
		Handler: func(_ *net.UDPAddr, req []byte) ([]byte, bool) {
			return req, false
		},
	})
	var wg sync.WaitGroup
	errs := make(chan error, 32)
	for i := 0; i < 32; i++ {
		i := i
		wg.Add(1)
		go func() {
			defer wg.Done()
			want := fmt.Sprintf("msg-%d", i)
			got, err := a.Call(b.Addr(), svcEcho, []byte(want))
			if err != nil {
				errs <- err
				return
			}
			if string(got) != want {
				errs <- fmt.Errorf("got %q want %q", got, want)
			}
		}()
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
}

// Figure 3(b): first request lost; retransmission recovers.
func TestRequestLossRecovered(t *testing.T) {
	var dropped atomic.Bool
	opts := Options{
		RetransmitTimeout: 20 * time.Millisecond,
		DropSend: func(buf []byte) bool {
			if buf[0] == kindRequest && !dropped.Load() {
				dropped.Store(true)
				return true
			}
			return false
		},
	}
	a, err := Listen("127.0.0.1:0", opts)
	if err != nil {
		t.Fatal(err)
	}
	defer a.Close()
	b, err := Listen("127.0.0.1:0", Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer b.Close()
	registerEcho(b)
	got, err := a.Call(b.Addr(), svcEcho, []byte("x"))
	if err != nil {
		t.Fatal(err)
	}
	if string(got) != "echo:x" || !dropped.Load() {
		t.Fatalf("got %q dropped=%v", got, dropped.Load())
	}
}

// Figure 3(c) for a non-idempotent service: the reply is lost, the request
// retransmitted, and the handler must not re-execute.
func TestNonIdempotentReplayOnReplyLoss(t *testing.T) {
	var dropReply atomic.Bool
	dropReply.Store(true)
	serverOpts := Options{
		DropSend: func(buf []byte) bool {
			if buf[0] == kindReply && dropReply.Load() {
				dropReply.Store(false)
				return true
			}
			return false
		},
	}
	b, err := Listen("127.0.0.1:0", serverOpts)
	if err != nil {
		t.Fatal(err)
	}
	defer b.Close()
	a, err := Listen("127.0.0.1:0", Options{RetransmitTimeout: 20 * time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	defer a.Close()

	var count atomic.Int32
	b.Register(svcCounter, Service{
		Idempotent: false,
		Handler: func(_ *net.UDPAddr, req []byte) ([]byte, bool) {
			return []byte{byte(count.Add(1))}, false
		},
	})
	got, err := a.Call(b.Addr(), svcCounter, nil)
	if err != nil {
		t.Fatal(err)
	}
	if got[0] != 1 || count.Load() != 1 {
		t.Fatalf("reply %d, executions %d; duplicate re-executed", got[0], count.Load())
	}
}

// A handler that drops (critical section busy) is retried until it serves.
func TestHandlerDropRetried(t *testing.T) {
	a, b := pair(t, Options{RetransmitTimeout: 15 * time.Millisecond})
	var calls atomic.Int32
	b.Register(svcDrop, Service{
		Idempotent: true,
		Handler: func(_ *net.UDPAddr, req []byte) ([]byte, bool) {
			if calls.Add(1) < 3 {
				return nil, true // busy: drop
			}
			return []byte("finally"), false
		},
	})
	got, err := a.Call(b.Addr(), svcDrop, nil)
	if err != nil {
		t.Fatal(err)
	}
	if string(got) != "finally" || calls.Load() < 3 {
		t.Fatalf("got %q after %d calls", got, calls.Load())
	}
}

func TestTimeout(t *testing.T) {
	a, _ := pair(t, Options{RetransmitTimeout: 5 * time.Millisecond, MaxRetries: 2})
	dead := &net.UDPAddr{IP: net.IPv4(127, 0, 0, 1), Port: 1} // nothing listens
	_, err := a.Call(dead, svcEcho, []byte("x"))
	if err != ErrTimeout {
		t.Fatalf("err = %v, want ErrTimeout", err)
	}
}

func TestClosedEndpoint(t *testing.T) {
	a, b := pair(t, Options{})
	registerEcho(b)
	a.Close()
	if _, err := a.Call(b.Addr(), svcEcho, nil); err != ErrClosed {
		t.Fatalf("err = %v, want ErrClosed", err)
	}
}

// Regression: a stray reply from a third node carrying a pending seq must
// not complete the call. The seed implementation matched replies by seq
// alone, so the forged payload below won the race against the real server.
func TestStrayReplyRejected(t *testing.T) {
	a, b := pair(t, Options{RetransmitTimeout: 30 * time.Millisecond})
	b.Register(svcEcho, Service{
		Idempotent: true,
		Handler: func(_ *net.UDPAddr, req []byte) ([]byte, bool) {
			time.Sleep(60 * time.Millisecond) // hold the call open for the forger
			return append([]byte("real:"), req...), false
		},
	})

	// A third node forges replies for every plausible seq while the call is
	// outstanding.
	forger, err := net.DialUDP("udp", nil, a.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer forger.Close()
	stop := make(chan struct{})
	defer close(stop)
	go func() {
		for {
			select {
			case <-stop:
				return
			case <-time.After(5 * time.Millisecond):
				for seq := uint32(1); seq <= 4; seq++ {
					forger.Write(encode(header{kind: kindReply, svc: svcEcho, seq: seq}, []byte("forged")))
				}
			}
		}
	}()

	got, err := a.Call(b.Addr(), svcEcho, []byte("x"))
	if err != nil {
		t.Fatal(err)
	}
	if string(got) != "real:x" {
		t.Fatalf("call completed with %q; stray reply accepted", got)
	}
	if a.Stats().BadReplies == 0 {
		t.Fatal("no stray replies were rejected")
	}
}

// Two servers serviced by interleaved calls from one client: every reply
// must match its own request even when one server is slow, so replies
// arrive out of call order and from different peers.
func TestTwoServersInterleaved(t *testing.T) {
	a, b := pair(t, Options{})
	c, err := Listen("127.0.0.1:0", Options{})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { c.Close() })
	for _, srv := range []*Endpoint{b, c} {
		srv := srv
		srv.Register(svcEcho, Service{
			Idempotent: true,
			Handler: func(_ *net.UDPAddr, req []byte) ([]byte, bool) {
				if srv == b {
					time.Sleep(10 * time.Millisecond) // b answers late
				}
				return append([]byte(srv.Addr().String()+":"), req...), false
			},
		})
	}
	var wg sync.WaitGroup
	errs := make(chan error, 32)
	for i := 0; i < 16; i++ {
		i := i
		dst := b
		if i%2 == 0 {
			dst = c
		}
		wg.Add(1)
		go func() {
			defer wg.Done()
			msg := fmt.Sprintf("m%d", i)
			got, err := a.Call(dst.Addr(), svcEcho, []byte(msg))
			if err != nil {
				errs <- err
				return
			}
			if want := dst.Addr().String() + ":" + msg; string(got) != want {
				errs <- fmt.Errorf("got %q want %q", got, want)
			}
		}()
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
}

// Regression: backoff must be capped and jittered. The seed schedule doubled
// without bound: 10 retries at 50 ms base slept up to 51.15 s in total.
func TestBackoffCapAndJitter(t *testing.T) {
	base, cap := 50*time.Millisecond, time.Second
	prev := time.Duration(0)
	for attempt := 0; attempt < 30; attempt++ {
		d := backoffBase(base, cap, attempt)
		if d < prev {
			t.Fatalf("backoff shrank at attempt %d: %v < %v", attempt, d, prev)
		}
		if d > cap {
			t.Fatalf("backoff %v exceeds cap at attempt %d", d, attempt)
		}
		prev = d
		for i := 0; i < 50; i++ {
			j := backoffInterval(base, cap, attempt)
			if j < time.Duration(float64(d)*0.75) || j > time.Duration(float64(d)*1.25) {
				t.Fatalf("jittered interval %v outside ±25%% of %v", j, d)
			}
		}
	}
	if backoffBase(base, cap, 40) != cap { // far past any overflow point
		t.Fatal("deep attempt not capped")
	}
}

func TestWorstCaseLatencyBounded(t *testing.T) {
	opts := resolveOptions(Options{})
	var worst time.Duration
	for attempt := 0; attempt <= opts.MaxRetries; attempt++ {
		worst += time.Duration(float64(backoffBase(opts.RetransmitTimeout, opts.MaxBackoff, attempt)) * 1.25)
	}
	// Seed behaviour was 51.15 s for the same budget; the cap brings the
	// default worst case under 15 s.
	if worst > 15*time.Second {
		t.Fatalf("default worst-case call latency %v not bounded", worst)
	}
}

func TestResolveOptionsDefaults(t *testing.T) {
	got := resolveOptions(Options{})
	if got.MaxRetries != 10 || got.RetransmitTimeout != 50*time.Millisecond ||
		got.MaxBackoff != time.Second || got.Workers != 4 || got.QueueDepth != 64 {
		t.Fatalf("defaults = %+v", got)
	}
	if resolveOptions(Options{MaxRetries: NoRetry}).MaxRetries != 0 {
		t.Fatal("NoRetry did not resolve to zero retries")
	}
	if resolveOptions(Options{MaxRetries: 3}).MaxRetries != 3 {
		t.Fatal("explicit MaxRetries overridden")
	}
}

// Regression: a fire-once configuration must be expressible. With the seed
// options, MaxRetries could not be set to zero (0 meant "default 10").
func TestNoRetrySendsOnce(t *testing.T) {
	var sends atomic.Int32
	a, err := Listen("127.0.0.1:0", Options{
		RetransmitTimeout: 10 * time.Millisecond,
		MaxRetries:        NoRetry,
		DropSend: func(b []byte) bool {
			if b[0] == kindRequest {
				sends.Add(1)
			}
			return false
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer a.Close()
	dead := &net.UDPAddr{IP: net.IPv4(127, 0, 0, 1), Port: 1}
	start := time.Now()
	if _, err := a.Call(dead, svcEcho, nil); err != ErrTimeout {
		t.Fatalf("err = %v, want ErrTimeout", err)
	}
	if got := sends.Load(); got != 1 {
		t.Fatalf("sent %d requests, want exactly 1", got)
	}
	if elapsed := time.Since(start); elapsed > 500*time.Millisecond {
		t.Fatalf("fire-once call took %v", elapsed)
	}
}

// Regression: duplicate retransmissions of a non-idempotent request arriving
// while the handler is still executing must be coalesced, not re-executed.
// The seed only consulted the reply cache, which is populated after the
// handler returns.
func TestInFlightCoalescing(t *testing.T) {
	b, err := Listen("127.0.0.1:0", Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer b.Close()
	a, err := Listen("127.0.0.1:0", Options{RetransmitTimeout: 10 * time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	defer a.Close()

	var executions atomic.Int32
	b.Register(svcCounter, Service{
		Idempotent: false,
		Handler: func(_ *net.UDPAddr, req []byte) ([]byte, bool) {
			n := executions.Add(1)
			time.Sleep(80 * time.Millisecond) // several client retransmissions land here
			return []byte{byte(n)}, false
		},
	})
	got, err := a.Call(b.Addr(), svcCounter, nil)
	if err != nil {
		t.Fatal(err)
	}
	if got[0] != 1 || executions.Load() != 1 {
		t.Fatalf("reply %d, executions %d; mid-execution duplicate re-executed", got[0], executions.Load())
	}
	if b.Stats().DupSuppressed == 0 {
		t.Fatal("no duplicates were coalesced")
	}
}

// A handler that itself issues a Call back to the requester (the DSM
// page-request pattern). On the seed code this deadlocked: the handler ran
// on the read loop, so the endpoint could never receive the nested reply.
func TestReentrantHandlerCall(t *testing.T) {
	a, b := pair(t, Options{RetransmitTimeout: 20 * time.Millisecond})
	registerEcho(a)
	b.Register(svcDrop, Service{
		Idempotent: true,
		Handler: func(from *net.UDPAddr, req []byte) ([]byte, bool) {
			inner, err := b.Call(from, svcEcho, []byte("nested"))
			if err != nil {
				return nil, true
			}
			return append([]byte("outer+"), inner...), false
		},
	})
	done := make(chan struct{})
	var got []byte
	var err error
	go func() {
		got, err = a.Call(b.Addr(), svcDrop, nil)
		close(done)
	}()
	select {
	case <-done:
	case <-time.After(5 * time.Second):
		t.Fatal("re-entrant call deadlocked")
	}
	if err != nil {
		t.Fatal(err)
	}
	if string(got) != "outer+echo:nested" {
		t.Fatalf("got %q", got)
	}
}

func TestCallContextCancel(t *testing.T) {
	a, _ := pair(t, Options{RetransmitTimeout: 20 * time.Millisecond, MaxRetries: 100})
	dead := &net.UDPAddr{IP: net.IPv4(127, 0, 0, 1), Port: 1}
	ctx, cancel := context.WithTimeout(context.Background(), 50*time.Millisecond)
	defer cancel()
	start := time.Now()
	_, err := a.CallContext(ctx, dead, svcEcho, nil)
	if err != context.DeadlineExceeded {
		t.Fatalf("err = %v, want DeadlineExceeded", err)
	}
	if elapsed := time.Since(start); elapsed > time.Second {
		t.Fatalf("cancellation took %v; deadline not honoured", elapsed)
	}
}

func TestStatsCounters(t *testing.T) {
	a, b := pair(t, Options{RetransmitTimeout: 10 * time.Millisecond})
	registerEcho(b)
	var count atomic.Int32
	b.Register(svcCounter, Service{
		Handler: func(_ *net.UDPAddr, req []byte) ([]byte, bool) {
			return []byte{byte(count.Add(1))}, false
		},
	})
	for i := 0; i < 3; i++ {
		if _, err := a.Call(b.Addr(), svcEcho, []byte("s")); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := a.Call(b.Addr(), svcCounter, nil); err != nil {
		t.Fatal(err)
	}
	as, bs := a.Stats(), b.Stats()
	if as.RequestsSent != 4 || as.RepliesReceived != 4 {
		t.Fatalf("client stats = %+v", as)
	}
	if bs.RepliesSent != 4 || bs.InFlightHWM < 1 {
		t.Fatalf("server stats = %+v", bs)
	}
}
