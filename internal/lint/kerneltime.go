package lint

import (
	"go/ast"
)

// kernelTimeForbidden are the package time functions whose use in kernel
// code silently substitutes wall time for the binding's clock.
var kernelTimeForbidden = map[string]bool{
	"Now":       true,
	"Sleep":     true,
	"After":     true,
	"AfterFunc": true,
	"NewTimer":  true,
	"NewTicker": true,
	"Tick":      true,
	"Since":     true,
	"Until":     true,
}

// KernelTime flags wall-clock use in kernel-layer packages.
//
// Kernel code runs under two clocks: the simulation's virtual time (which
// produces the exact-time figure tests) and rtnode's wall time. A
// time.Now or time.Sleep in shared code reads the host clock under both
// bindings, so simulated runs stop being deterministic functions of the
// event queue — the figures drift without any test failing loudly. All
// time must flow through kernel.Clock (Now, Schedule).
var KernelTime = &Analyzer{
	Name: "kerneltime",
	Doc: "forbid time.Now/Sleep/After/... in kernel-layer packages; " +
		"use kernel.Clock so simulated virtual time stays exact",
	Run: runKernelTime,
}

func runKernelTime(pass *Pass) {
	if !pass.Kernel() {
		return
	}
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			sel, ok := n.(*ast.SelectorExpr)
			if !ok {
				return true
			}
			obj := pass.Info.Uses[sel.Sel]
			if obj == nil || obj.Pkg() == nil || obj.Pkg().Path() != "time" {
				return true
			}
			if kernelTimeForbidden[obj.Name()] {
				pass.Reportf(sel.Pos(),
					"time.%s in kernel-layer code: use kernel.Clock (Now/Schedule) so the simulation binding keeps exact virtual time",
					obj.Name())
			}
			return true
		})
	}
}
