package lint_test

import (
	"testing"

	"filaments/internal/lint"
	"filaments/internal/lint/linttest"
)

func TestKernelTime(t *testing.T) {
	linttest.Run(t, "testdata/src", "kerneltime", lint.KernelTime)
}

func TestKernelSpawn(t *testing.T) {
	linttest.Run(t, "testdata/src", "kernelspawn", lint.KernelSpawn)
}

func TestHandlerNoBlock(t *testing.T) {
	linttest.Run(t, "testdata/src", "handlernoblock", lint.HandlerNoBlock)
}

func TestMapRange(t *testing.T) {
	linttest.Run(t, "testdata/src", "maprange", lint.MapRange)
}

func TestGobReg(t *testing.T) {
	linttest.Run(t, "testdata/src", "gobreg", lint.GobReg)
}

func TestSharedRange(t *testing.T) {
	linttest.Run(t, "testdata/src", "sharedrange", lint.SharedRange)
}

func TestLoopCapture(t *testing.T) {
	linttest.Run(t, "testdata/src", "loopcapture", lint.LoopCapture)
}

func TestCodecSym(t *testing.T) {
	linttest.Run(t, "testdata/src", "codecsym", lint.CodecSym)
}

func TestBarrierPhase(t *testing.T) {
	linttest.Run(t, "testdata/src", "barrierphase", lint.BarrierPhase)
}

func TestFrameScope(t *testing.T) {
	linttest.Run(t, "testdata/src", "framescope", lint.FrameScope)
}

func TestLockOrder(t *testing.T) {
	linttest.RunProgram(t, "testdata/src", []string{"lockorderdep", "lockorder"}, lint.LockOrder)
}

func TestHotAlloc(t *testing.T) {
	linttest.RunProgram(t, "testdata/src", []string{"hotalloc"}, lint.HotAlloc)
}

func TestHandlerIdem(t *testing.T) {
	linttest.RunProgram(t, "testdata/src", []string{"handleridem"}, lint.HandlerIdem)
}

func TestTagSpace(t *testing.T) {
	linttest.RunProgram(t, "testdata/src", []string{"tagspace"}, lint.TagSpace)
}

func TestStateMach(t *testing.T) {
	linttest.RunProgram(t, "testdata/src", []string{"statemach"}, lint.StateMach)
}

func TestAtomicField(t *testing.T) {
	linttest.RunProgram(t, "testdata/src", []string{"atomicfield"}, lint.AtomicField)
}

// TestRacefix pins down that the full static suite flags the same seeded
// program dfcheck's dynamic prong detects (internal/apps/racer, minus
// its //dflint:allow hatches).
func TestRacefix(t *testing.T) {
	linttest.Run(t, "testdata/src", "racefix", lint.Analyzers()...)
}

// TestNonKernelExempt runs the whole suite over a package outside the
// kernel layer: none of the kernel-gated rules may fire.
func TestNonKernelExempt(t *testing.T) {
	linttest.Run(t, "testdata/src", "nonkernel", lint.Analyzers()...)
}
