package lint

import (
	"go/ast"
	"go/token"
	"go/types"
	"sort"
)

// HotAlloc proves //dflint:hotpath-marked functions allocation-free.
//
// The marked functions are the per-message kernel inner loops — codec
// Enc/Dec primitives, page-diff apply/merge, the UDP batching flush —
// where one heap allocation per call turns into megabytes per second of
// garbage at the paper's message rates and shows up directly in the
// null-latency and bandwidth figures. The rule walks the program call
// graph from each marked root and flags, in every reachable function
// with a body, the allocation shapes the gc compiler cannot elide:
//
//   - make, new, &composite, and slice/map composite literals
//   - append whose base slice is not caller-provided: append into a
//     buffer the caller owns (e.B = append(e.B, ...), dst = append(dst,
//     ...)) is the amortized idiom and allowed; append onto a fresh
//     local backing array allocates on the hot path itself
//   - boxing a non-pointer value into an interface (call arguments,
//     returns, assignments); constants are exempt (the runtime interns
//     small ones, and constant boxes are loop-invariant)
//   - string<->[]byte conversions, which copy
//   - closures and go statements
//   - calls into stdlib packages known to allocate (fmt, gob, reflect,
//     sort, strings, strconv); other bodiless callees are trusted
//
// Dynamic calls (interface methods, function values) are trusted: the
// seam's indirections are bound to implementations the graph cannot
// see, and flagging every indirect call would bury the signal. panic
// arguments are the cold path and exempt.
var HotAlloc = &ProgramAnalyzer{
	Name: "hotalloc",
	Doc: "prove //dflint:hotpath functions (codec primitives, diff apply/merge, batch " +
		"flush) allocation-free across the whole call graph",
	Run: runHotAlloc,
}

// allocStdlib is the deny-list of bodiless callees: stdlib packages a
// hot path must not enter because their common entry points allocate.
var allocStdlib = map[string]bool{
	"fmt":          true,
	"encoding/gob": true,
	"reflect":      true,
	"sort":         true,
	"strings":      true,
	"strconv":      true,
}

func runHotAlloc(pass *ProgramPass) {
	cg := pass.Program.CallGraph()

	var roots []*types.Func
	for obj, node := range cg.Funcs {
		if funcAnnotated(node.Decl, "//dflint:hotpath") {
			roots = append(roots, obj)
		}
	}
	if len(roots) == 0 {
		return
	}
	sort.Slice(roots, func(i, j int) bool { return roots[i].Name() < roots[j].Name() })

	// Attribute each reachable function to the first root (by name)
	// that reaches it, so diagnostics name a deterministic route.
	owner := make(map[*types.Func]*types.Func)
	for _, r := range roots {
		for f := range cg.Reachable([]*types.Func{r}) {
			if _, claimed := owner[f]; !claimed {
				owner[f] = r
			}
		}
	}

	for f, root := range owner {
		node := cg.Node(f)
		if node == nil {
			continue
		}
		scanHotAllocs(pass, node, root)
	}
}

// scanHotAllocs reports the allocation sites in one function body.
func scanHotAllocs(pass *ProgramPass, node *FuncNode, root *types.Func) {
	info := node.Unit.Info
	caller := callerRootedObjs(node, info)
	report := func(pos ast.Node, what string) {
		pass.Reportf(pos.Pos(),
			"hot path (via //dflint:hotpath %s) allocates: %s; hot-path code must reuse caller-provided buffers",
			root.Name(), what)
	}
	sig := node.Obj.Type().(*types.Signature)

	var walk func(n ast.Node) bool
	walk = func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.FuncLit:
			report(n, "a closure captures its environment on the heap")
			return false
		case *ast.GoStmt:
			report(n, "go spawns a goroutine (stack + descriptor)")
		case *ast.UnaryExpr:
			if n.Op == token.AND {
				if _, ok := ast.Unparen(n.X).(*ast.CompositeLit); ok {
					report(n, "&composite literal escapes to the heap")
					return false
				}
			}
		case *ast.CompositeLit:
			if tv, ok := info.Types[n]; ok {
				switch tv.Type.Underlying().(type) {
				case *types.Slice, *types.Map:
					report(n, "slice/map composite literal allocates its backing store")
				}
			}
		case *ast.ReturnStmt:
			res := sig.Results()
			if len(n.Results) == res.Len() {
				for i, r := range n.Results {
					if boxesInto(info, r, res.At(i).Type()) {
						report(r, "returning a concrete value as "+res.At(i).Type().String()+" boxes it")
					}
				}
			}
		case *ast.AssignStmt:
			if len(n.Lhs) == len(n.Rhs) {
				for i, lhs := range n.Lhs {
					if lt, ok := info.Types[lhs]; ok && boxesInto(info, n.Rhs[i], lt.Type) {
						report(n.Rhs[i], "assigning a concrete value into an interface boxes it")
					}
				}
			}
		case *ast.CallExpr:
			if name := builtinName(info, n); name != "" {
				switch name {
				case "panic":
					return false // cold path
				case "make", "new":
					report(n, name+" allocates")
					return true
				case "append":
					if len(n.Args) > 0 && !caller.rooted(n.Args[0]) {
						report(n, "append onto a slice the caller does not own may grow a fresh backing array")
					}
					return true
				}
				return true
			}
			if tv, ok := info.Types[n.Fun]; ok && tv.IsType() {
				// Conversion: string <-> []byte/[]rune copies.
				if convCopies(tv.Type, info, n) {
					report(n, "string/[]byte conversion copies")
				}
				return true
			}
			callee := StaticCallee(info, n)
			if callee != nil {
				if callee.Pkg() != nil && allocStdlib[callee.Pkg().Path()] {
					report(n, callee.Pkg().Path()+"."+callee.Name()+" allocates")
				}
				// Boxing at the call boundary.
				if csig, ok := callee.Type().(*types.Signature); ok {
					checkCallBoxing(info, n, csig, report)
				}
			}
		}
		return true
	}
	ast.Inspect(node.Decl.Body, walk)
}

// checkCallBoxing reports arguments boxed into interface parameters.
func checkCallBoxing(info *types.Info, call *ast.CallExpr, sig *types.Signature, report func(ast.Node, string)) {
	params := sig.Params()
	for i, arg := range call.Args {
		var pt types.Type
		switch {
		case sig.Variadic() && i >= params.Len()-1:
			if call.Ellipsis.IsValid() {
				return // spread: no per-element boxing
			}
			pt = params.At(params.Len() - 1).Type().(*types.Slice).Elem()
		case i < params.Len():
			pt = params.At(i).Type()
		default:
			return
		}
		if boxesInto(info, arg, pt) {
			report(arg, "passing a concrete value as "+pt.String()+" boxes it")
		}
	}
}

// boxesInto reports whether storing expr into a destination of type dst
// allocates an interface box: dst is an interface, the value is a
// concrete non-pointer-shaped type, and it is not a constant.
func boxesInto(info *types.Info, expr ast.Expr, dst types.Type) bool {
	if dst == nil {
		return false
	}
	if _, iface := dst.Underlying().(*types.Interface); !iface {
		return false
	}
	tv, ok := info.Types[expr]
	if !ok || tv.Type == nil || tv.Value != nil {
		return false
	}
	switch u := tv.Type.Underlying().(type) {
	case *types.Pointer, *types.Interface, *types.Chan, *types.Map, *types.Signature:
		return false // pointer-shaped: stored directly in the iface word
	case *types.Basic:
		return u.Info()&types.IsUntyped == 0
	}
	return true // struct, array, slice, string headers all spill to the heap
}

// convCopies reports whether the conversion call copies its operand:
// string <-> []byte / []rune.
func convCopies(target types.Type, info *types.Info, call *ast.CallExpr) bool {
	if len(call.Args) != 1 {
		return false
	}
	tv, ok := info.Types[call.Args[0]]
	if !ok {
		return false
	}
	return (isStringType(target) && isByteSliceType(tv.Type)) ||
		(isByteSliceType(target) && isStringType(tv.Type))
}

func isStringType(t types.Type) bool {
	b, ok := t.Underlying().(*types.Basic)
	return ok && b.Info()&types.IsString != 0
}

func isByteSliceType(t types.Type) bool {
	s, ok := t.Underlying().(*types.Slice)
	if !ok {
		return false
	}
	e, ok := s.Elem().Underlying().(*types.Basic)
	return ok && (e.Kind() == types.Byte || e.Kind() == types.Rune || e.Kind() == types.Uint8 || e.Kind() == types.Int32)
}

// builtinName resolves call's callee to a builtin's name, or "".
func builtinName(info *types.Info, call *ast.CallExpr) string {
	id, ok := ast.Unparen(call.Fun).(*ast.Ident)
	if !ok {
		return ""
	}
	if b, ok := info.Uses[id].(*types.Builtin); ok {
		return b.Name()
	}
	return ""
}

// callerRooted tracks which expressions alias storage the caller
// provided: parameters, the receiver, and locals assigned from them.
// Appending into caller-rooted storage is the amortized idiom the hot
// paths are built on; appending anywhere else allocates here.
type callerRooted struct {
	info *types.Info
	objs map[types.Object]bool
}

func callerRootedObjs(node *FuncNode, info *types.Info) *callerRooted {
	c := &callerRooted{info: info, objs: make(map[types.Object]bool)}
	sig := node.Obj.Type().(*types.Signature)
	if r := sig.Recv(); r != nil {
		c.objs[r] = true
	}
	for i := 0; i < sig.Params().Len(); i++ {
		c.objs[sig.Params().At(i)] = true
	}
	// Receiver/param objects in the signature are the same *types.Var
	// the body's identifiers resolve to, so no extra mapping is needed.
	// Fixed point: locals aliased from caller-rooted storage join it.
	for changed := true; changed; {
		changed = false
		ast.Inspect(node.Decl.Body, func(n ast.Node) bool {
			assign, ok := n.(*ast.AssignStmt)
			if !ok || len(assign.Lhs) != len(assign.Rhs) {
				return true
			}
			for i, lhs := range assign.Lhs {
				id, ok := ast.Unparen(lhs).(*ast.Ident)
				if !ok || id.Name == "_" || !c.rooted(assign.Rhs[i]) {
					continue
				}
				obj := info.Defs[id]
				if obj == nil {
					obj = info.Uses[id]
				}
				if obj != nil && !c.objs[obj] {
					c.objs[obj] = true
					changed = true
				}
			}
			return true
		})
	}
	return c
}

// rooted reports whether e aliases caller-provided storage.
func (c *callerRooted) rooted(e ast.Expr) bool {
	switch e := ast.Unparen(e).(type) {
	case *ast.Ident:
		if obj := c.info.Uses[e]; obj != nil {
			return c.objs[obj]
		}
	case *ast.SelectorExpr:
		return c.rooted(e.X)
	case *ast.IndexExpr:
		return c.rooted(e.X)
	case *ast.SliceExpr:
		return c.rooted(e.X)
	case *ast.StarExpr:
		return c.rooted(e.X)
	case *ast.CallExpr:
		if builtinName(c.info, e) == "append" && len(e.Args) > 0 {
			return c.rooted(e.Args[0])
		}
	}
	return false
}
