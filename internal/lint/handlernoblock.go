package lint

import (
	"fmt"
	"go/ast"
	"go/types"
)

// HandlerNoBlock flags blocking calls inside code that runs in node
// context: kernel.Service handlers, raw datagram handlers, request
// callbacks, and scheduled timer callbacks.
//
// Handlers run under the node's scheduler (simulation) or monitor
// (rtnode) — the paper's §2.2 Packet rule that a request is serviced
// without blocking, dropping instead when it cannot be answered yet. A
// handler that calls Transport.Call or Thread.Block deadlocks the rtnode
// monitor (the handler holds it while waiting for traffic that needs it)
// and corrupts the simulation's one-CPU model. Long work belongs on a
// server thread the handler wakes.
//
// Detection is transitive within a package: a handler calling a local
// function that (eventually) blocks is flagged at the handler's call
// site. Blocking is (a) the kernel seam's own suspension points —
// Transport.Call, Thread.Block/Yield/Preempt — and (b) by seam
// convention, any call that passes a kernel.Thread argument: the kernel
// layers' APIs take the calling thread exactly when they may suspend it
// (dsm accessors, Reducer.Reduce, msg.Recv, ...). Executor.Ready and
// constructors are exempt from (b).
var HandlerNoBlock = &Analyzer{
	Name: "handlernoblock",
	Doc: "forbid blocking calls (Transport.Call, Thread.Block, anything taking a " +
		"kernel.Thread) inside Service handlers, raw handlers, and node-context callbacks",
	Run: runHandlerNoBlock,
}

// blockingKernelMethods are the seam's direct suspension/dispatch points.
// Call blocks the thread for a reply; Block suspends; Yield and Preempt
// are dispatch points that release the monitor, which a handler must
// never do mid-update.
var blockingKernelMethods = []string{"Call", "Block", "Yield", "Preempt"}

// threadArgExempt lists callees that take a kernel.Thread without ever
// suspending the caller: waking a thread and wrapping one.
var threadArgExempt = map[string]bool{
	"Ready":   true,
	"NewExec": true,
	"Spawn":   true,
	"Name":    true,
}

type hnbContext struct {
	expr ast.Expr // the handler/callback expression
	kind string   // human label for diagnostics
}

func runHandlerNoBlock(pass *Pass) {
	// Collect package-level function declarations.
	decls := funcDecls(pass.Files, pass.Info)

	// Fixed point: which package functions block, and via what.
	blocks := make(map[*types.Func]string)
	for changed := true; changed; {
		changed = false
		for obj, fd := range decls {
			if _, done := blocks[obj]; done {
				continue
			}
			witness := ""
			inspectSkipNestedFuncs(fd.Body, func(n ast.Node) bool {
				if witness != "" {
					return false
				}
				call, ok := n.(*ast.CallExpr)
				if !ok {
					return true
				}
				if w, ok := blockingCall(pass.Info, call); ok {
					witness = w
					return false
				}
				if callee, ok := useOf(pass.Info, call.Fun).(*types.Func); ok {
					if w, ok := blocks[callee]; ok {
						witness = callee.Name() + " → " + w
						return false
					}
				}
				return true
			})
			if witness != "" {
				blocks[obj] = witness
				changed = true
			}
		}
	}

	// Find node-context handler expressions and check them.
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			for _, ctx := range handlerContexts(pass.Info, n) {
				checkHandler(pass, ctx, blocks)
			}
			return true
		})
	}
}

// handlerContexts returns the node-context function expressions rooted at
// n: Service{Handler: ...} fields, HandleRaw handlers, request callbacks,
// and Schedule callbacks.
func handlerContexts(info *types.Info, n ast.Node) []hnbContext {
	switch n := n.(type) {
	case *ast.CompositeLit:
		tv, ok := info.Types[n]
		if !ok || !isKernelType(tv.Type, "Service") {
			return nil
		}
		for _, elt := range n.Elts {
			kv, ok := elt.(*ast.KeyValueExpr)
			if !ok {
				continue
			}
			if key, ok := kv.Key.(*ast.Ident); ok && key.Name == "Handler" {
				return []hnbContext{{expr: kv.Value, kind: "kernel.Service handler"}}
			}
		}
	case *ast.CallExpr:
		switch {
		case kernelMethod(info, n, "HandleRaw") && len(n.Args) == 1:
			return []hnbContext{{expr: n.Args[0], kind: "raw datagram handler"}}
		case (kernelMethod(info, n, "RequestAsync") || kernelMethod(info, n, "RequestSized")) && len(n.Args) > 0:
			return []hnbContext{{expr: n.Args[len(n.Args)-1], kind: "request callback"}}
		case kernelMethod(info, n, "Schedule") && len(n.Args) == 2:
			return []hnbContext{{expr: n.Args[1], kind: "scheduled callback"}}
		}
	}
	return nil
}

// checkHandler reports blocking calls inside one handler expression.
func checkHandler(pass *Pass, ctx hnbContext, blocks map[*types.Func]string) {
	switch e := ast.Unparen(ctx.expr).(type) {
	case *ast.FuncLit:
		inspectSkipNestedFuncs(e.Body, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			if w, ok := blockingCall(pass.Info, call); ok {
				pass.Reportf(call.Pos(),
					"%s must not block: %s runs in node context; wake a server thread instead",
					ctx.kind, w)
				return true
			}
			if callee, ok := useOf(pass.Info, call.Fun).(*types.Func); ok {
				if w, ok := blocks[callee]; ok {
					pass.Reportf(call.Pos(),
						"%s must not block: %s blocks (via %s); handlers run in node context",
						ctx.kind, callee.Name(), w)
				}
			}
			return true
		})
	default:
		// Method value or function reference: d.servePage, handleRelease.
		if callee, ok := useOf(pass.Info, e).(*types.Func); ok {
			if w, ok := blocks[callee]; ok {
				pass.Reportf(e.Pos(),
					"%s %s blocks (via %s); handlers run in node context and must not block",
					ctx.kind, callee.Name(), w)
			}
		}
	}
}

// blockingCall reports whether call is a direct seam suspension point,
// with a human-readable witness.
func blockingCall(info *types.Info, call *ast.CallExpr) (string, bool) {
	for _, name := range blockingKernelMethods {
		if kernelMethod(info, call, name) {
			return "kernel." + name, true
		}
	}
	callee := useOf(info, call.Fun)
	if callee == nil || threadArgExempt[callee.Name()] {
		return "", false
	}
	for _, arg := range call.Args {
		if tv, ok := info.Types[arg]; ok && isKernelType(tv.Type, "Thread") {
			return fmt.Sprintf("%s takes the calling kernel.Thread (may suspend it)", callee.Name()), true
		}
	}
	return "", false
}

// isKernelType reports whether t (possibly behind a pointer) is the named
// internal/kernel type.
func isKernelType(t types.Type, name string) bool {
	if t == nil {
		return false
	}
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	return isPkgObj(named.Obj(), "filaments/internal/kernel", name)
}

// inspectSkipNestedFuncs walks body like ast.Inspect but does not descend
// into nested function literals: a FuncLit inside a handler or function is
// deferred work (a spawned thread body, a callback) that runs in its own
// context and is analyzed through its own registration site.
func inspectSkipNestedFuncs(body *ast.BlockStmt, fn func(ast.Node) bool) {
	ast.Inspect(body, func(n ast.Node) bool {
		if _, ok := n.(*ast.FuncLit); ok {
			return false
		}
		return fn(n)
	})
}
