package lint

import (
	"go/ast"
	"go/types"
)

// The conservative intraprocedural dataflow/escape lattice.
//
// Several dflint rules reduce to the same question: given a set of
// "source" expressions inside one function body, which local variables
// can hold a value derived from a source, and where do such values
// escape the function's epoch (a store to package state, a channel
// send, capture by a long-lived closure)? The answer does not need the
// precision of a real points-to analysis — the lattice is the two-point
// {untainted, tainted} per local object, with a fixed point over the
// body's assignments.
//
// Derivation is alias-preserving operations only: plain assignment,
// slicing (x[i:j] still aliases x's backing array), parenthesization,
// and multi-assignment position matching. Operations that copy
// (append into a fresh slice, copy, string conversion, arithmetic) do
// NOT propagate taint: a copied frame is a snapshot, not an alias, and
// the rules built on this lattice are about aliases outliving an epoch.

// An EscapeSink classifies where a tainted value escaped.
type EscapeSink int

const (
	// EscGlobal is a store reachable from a package-level variable.
	EscGlobal EscapeSink = iota
	// EscChannel is a channel send.
	EscChannel
	// EscCapture is capture by a function literal that outlives the
	// enclosing call (registered as a deferred callback, spawned, or
	// stored rather than invoked in place).
	EscCapture
)

func (s EscapeSink) String() string {
	switch s {
	case EscGlobal:
		return "stored to package state"
	case EscChannel:
		return "sent across a channel"
	case EscCapture:
		return "captured by a deferred closure"
	}
	return "escaped"
}

// An Escape is one place a tainted value left the function's epoch.
type Escape struct {
	Sink EscapeSink
	// Node is the escaping expression or statement, for reporting.
	Node ast.Node
	// Via is the tainted expression that escaped (the channel operand,
	// the stored value, or the captured identifier).
	Via ast.Expr
}

// Taint computes the escape lattice for one function body. isSource
// reports whether an expression is a taint source by itself (before
// derivation); the caller decides what "source" means — framescope
// passes frame-annotated field reads and aliasing decoder results.
//
// deferredCallArg reports whether the function literal appearing as an
// argument of call outlives the call (a callback registration rather
// than an in-place application); it selects which closures count for
// EscCapture. Closures stored to variables, fields, or slices always
// count, and closures invoked in place never do.
func Taint(info *types.Info, body *ast.BlockStmt, isSource func(ast.Expr) bool, deferredCallArg func(call *ast.CallExpr, arg ast.Expr) bool) []Escape {
	t := &tainter{
		info:     info,
		isSource: isSource,
		tainted:  make(map[types.Object]bool),
	}
	// Fixed point: propagate through assignments until no new local
	// becomes tainted. Bodies are small; quadratic is fine.
	for {
		before := len(t.tainted)
		ast.Inspect(body, func(n ast.Node) bool {
			t.propagate(n)
			return true
		})
		if len(t.tainted) == before {
			break
		}
	}

	var escapes []Escape
	record := func(sink EscapeSink, node ast.Node, via ast.Expr) {
		escapes = append(escapes, Escape{Sink: sink, Node: node, Via: via})
	}

	// Which function literals outlive the epoch: assigned/stored ones
	// always, call arguments when the caller says so, immediately
	// invoked ones never.
	longLived := make(map[*ast.FuncLit]bool)
	ast.Inspect(body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.AssignStmt:
			for _, rhs := range n.Rhs {
				if fl, ok := ast.Unparen(rhs).(*ast.FuncLit); ok {
					longLived[fl] = true
				}
			}
		case *ast.CompositeLit:
			for _, elt := range n.Elts {
				e := elt
				if kv, ok := e.(*ast.KeyValueExpr); ok {
					e = kv.Value
				}
				if fl, ok := ast.Unparen(e).(*ast.FuncLit); ok {
					longLived[fl] = true
				}
			}
		case *ast.ReturnStmt:
			for _, r := range n.Results {
				if fl, ok := ast.Unparen(r).(*ast.FuncLit); ok {
					longLived[fl] = true
				}
			}
		case *ast.GoStmt:
			if fl, ok := ast.Unparen(n.Call.Fun).(*ast.FuncLit); ok {
				longLived[fl] = true
			}
		case *ast.CallExpr:
			for _, arg := range n.Args {
				fl, ok := ast.Unparen(arg).(*ast.FuncLit)
				if !ok {
					continue
				}
				if deferredCallArg != nil && deferredCallArg(n, arg) {
					longLived[fl] = true
				}
			}
		}
		return true
	})

	ast.Inspect(body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.SendStmt:
			if t.taintedExpr(n.Value) {
				record(EscChannel, n, n.Value)
			}
		case *ast.AssignStmt:
			for i, lhs := range n.Lhs {
				if i >= len(n.Rhs) && len(n.Rhs) != 1 {
					break
				}
				rhs := n.Rhs[0]
				if len(n.Rhs) == len(n.Lhs) {
					rhs = n.Rhs[i]
				}
				if t.taintedExpr(rhs) && t.globalDest(lhs) {
					record(EscGlobal, n, rhs)
				}
			}
		case *ast.FuncLit:
			if !longLived[n] {
				return true
			}
			// A capture is a use, inside the literal, of a tainted
			// object declared outside it.
			ast.Inspect(n.Body, func(m ast.Node) bool {
				id, ok := m.(*ast.Ident)
				if !ok {
					return true
				}
				obj := t.info.Uses[id]
				if obj == nil || !t.tainted[obj] {
					return true
				}
				if obj.Pos() >= n.Pos() && obj.Pos() < n.End() {
					return true // declared inside the literal
				}
				record(EscCapture, n, id)
				return true
			})
			return false // escapes inside nested literals report once
		}
		return true
	})
	return escapes
}

type tainter struct {
	info     *types.Info
	isSource func(ast.Expr) bool
	tainted  map[types.Object]bool
}

// taintedExpr reports whether e evaluates to an alias of a source:
// a source expression itself, a tainted local (or slice of one), or a
// parenthesization thereof.
func (t *tainter) taintedExpr(e ast.Expr) bool {
	e = ast.Unparen(e)
	if t.isSource(e) {
		return true
	}
	switch e := e.(type) {
	case *ast.Ident:
		if obj := t.info.Uses[e]; obj != nil {
			return t.tainted[obj]
		}
	case *ast.SliceExpr:
		return t.taintedExpr(e.X)
	}
	return false
}

// propagate marks locals assigned from tainted expressions.
func (t *tainter) propagate(n ast.Node) {
	assign, ok := n.(*ast.AssignStmt)
	if !ok {
		return
	}
	for i, lhs := range assign.Lhs {
		id, ok := ast.Unparen(lhs).(*ast.Ident)
		if !ok || id.Name == "_" {
			continue
		}
		var rhs ast.Expr
		switch {
		case len(assign.Rhs) == len(assign.Lhs):
			rhs = assign.Rhs[i]
		case len(assign.Rhs) == 1:
			// Multi-value RHS (call, map read): no alias tracking
			// through these, except a bare source call result.
			rhs = assign.Rhs[0]
			if len(assign.Lhs) > 1 && !t.isSource(ast.Unparen(rhs)) {
				continue
			}
		default:
			continue
		}
		if !t.taintedExpr(rhs) {
			continue
		}
		obj := t.info.Defs[id]
		if obj == nil {
			obj = t.info.Uses[id]
		}
		if obj != nil {
			t.tainted[obj] = true
		}
	}
}

// globalDest reports whether the assignment target lhs is reachable
// from a package-level variable: the variable itself, or an index,
// field, or dereference chain rooted at one.
func (t *tainter) globalDest(lhs ast.Expr) bool {
	for {
		switch e := ast.Unparen(lhs).(type) {
		case *ast.Ident:
			obj, ok := t.info.Uses[e].(*types.Var)
			if !ok {
				if obj, ok := t.info.Defs[e].(*types.Var); ok {
					return isPackageLevel(obj)
				}
				return false
			}
			return isPackageLevel(obj)
		case *ast.SelectorExpr:
			// A qualified package var (pkg.V) resolves through the
			// selection; a field store walks to the root expression.
			if obj, ok := t.info.Uses[e.Sel].(*types.Var); ok && isPackageLevel(obj) {
				return true
			}
			lhs = e.X
		case *ast.IndexExpr:
			lhs = e.X
		case *ast.StarExpr:
			lhs = e.X
		default:
			return false
		}
	}
}

// isPackageLevel reports whether v is a package-level variable.
func isPackageLevel(v *types.Var) bool {
	if v.Pkg() == nil {
		return false
	}
	return v.Parent() == v.Pkg().Scope()
}
