package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// The interprocedural core.
//
// The original dflint analyzers reason about one AST node (kerneltime,
// maprange) or, at most, one package's functions (handlernoblock's
// fixed point). The wire codec, the lock discipline, and the hot-path
// allocation budget are properties of call *chains* that cross package
// boundaries: an Enc method in rtnode appends into a buffer a dsm codec
// owns; a mutex in udptrans is held across a call into obs. This file
// adds the two pieces those analyzers share:
//
//   - a Program: every type-checked package of one dflint run, loaded
//     from source with a single FileSet so types.Object identities are
//     stable across packages, and
//   - a CallGraph over the program: each function/method declaration,
//     its body, and its statically resolved callees.
//
// Per-package analyzers (Analyzer) still run through Run and work under
// both the standalone loader and go vet's unitchecker protocol. Program
// analyzers (ProgramAnalyzer) need every package's syntax at once, so
// they only run in standalone mode, where cmd/dflint type-checks the
// whole module from source (vet hands dflint one export-data unit at a
// time, which cannot see a dependency's function bodies).
//
// The companion escape/dataflow lattice lives in escape.go.

// A Unit is one type-checked package inside a Program.
type Unit struct {
	Files []*ast.File
	Pkg   *types.Package
	Info  *types.Info
}

// A Program is the full set of packages one standalone dflint run
// loaded, sharing one FileSet.
type Program struct {
	Fset  *token.FileSet
	Units []*Unit

	cg *CallGraph
}

// A ProgramAnalyzer describes one whole-program dflint check.
type ProgramAnalyzer struct {
	// Name is the rule name used in diagnostics and //dflint:allow
	// comments.
	Name string
	// Doc is a one-paragraph description of what the rule guards.
	Doc string
	// Run reports the rule's diagnostics for the whole program.
	Run func(*ProgramPass)
}

// ProgramAnalyzers returns the whole-program half of the dflint suite.
func ProgramAnalyzers() []*ProgramAnalyzer {
	return []*ProgramAnalyzer{
		LockOrder,
		HotAlloc,
	}
}

// ProtocolAnalyzers returns the protocol-contract tier: whole-program
// analyzers for the distributed invariants (at-least-once idempotence,
// wire-tag namespace and format stability, state-machine discipline,
// atomic-access discipline). They run alongside ProgramAnalyzers in
// standalone mode; the tier is separate so cmd/dflint can also drive
// the WIRE.lock manifest through the same machinery.
func ProtocolAnalyzers() []*ProgramAnalyzer {
	return []*ProgramAnalyzer{
		HandlerIdem,
		TagSpace,
		StateMach,
		AtomicField,
	}
}

// A ProgramPass carries one Program through one program analyzer.
type ProgramPass struct {
	Analyzer *ProgramAnalyzer
	Program  *Program

	allows allowIndex
	sink   *[]Diagnostic
}

// Reportf records a diagnostic at pos unless a //dflint:allow comment
// for this analyzer covers the line, exactly like Pass.Reportf.
func (p *ProgramPass) Reportf(pos token.Pos, format string, args ...any) {
	reportf(p.Program.Fset, p.allows, p.sink, p.Analyzer.Name, pos, format, args...)
}

// RunProgram applies the program analyzers and returns the diagnostics
// sorted by position, deduplicated (a package loaded both plain and as
// a test variant contributes its shared files twice).
func RunProgram(analyzers []*ProgramAnalyzer, prog *Program) []Diagnostic {
	var diags []Diagnostic
	var all []*ast.File
	for _, u := range prog.Units {
		all = append(all, u.Files...)
	}
	allows := buildAllowIndex(prog.Fset, all)
	for _, a := range analyzers {
		pass := &ProgramPass{
			Analyzer: a,
			Program:  prog,
			allows:   allows,
			sink:     &diags,
		}
		a.Run(pass)
	}
	return sortDedupe(diags)
}

// reportf is the shared allow-aware diagnostic sink behind Pass.Reportf
// and ProgramPass.Reportf.
func reportf(fset *token.FileSet, allows allowIndex, sink *[]Diagnostic, rule string, pos token.Pos, format string, args ...any) {
	position := fset.Position(pos)
	if e, ok := allows.lookup(position, rule); ok {
		if e.reason == "" {
			*sink = append(*sink, Diagnostic{
				Analyzer: rule,
				Pos:      position,
				Message:  "//dflint:allow " + rule + " needs a one-line reason",
			})
		}
		return
	}
	*sink = append(*sink, Diagnostic{
		Analyzer: rule,
		Pos:      position,
		Message:  fmt.Sprintf(format, args...),
	})
}

// sortDedupe orders diagnostics by position and drops exact duplicates.
func sortDedupe(diags []Diagnostic) []Diagnostic {
	sort.Slice(diags, func(i, j int) bool {
		a, b := diags[i], diags[j]
		if a.Pos.Filename != b.Pos.Filename {
			return a.Pos.Filename < b.Pos.Filename
		}
		if a.Pos.Line != b.Pos.Line {
			return a.Pos.Line < b.Pos.Line
		}
		if a.Pos.Column != b.Pos.Column {
			return a.Pos.Column < b.Pos.Column
		}
		return a.Message < b.Message
	})
	out := diags[:0]
	for i, d := range diags {
		if i > 0 && d == diags[i-1] {
			continue
		}
		out = append(out, d)
	}
	return out
}

// --- The call graph. ---

// A FuncNode is one function or method declaration in the program.
type FuncNode struct {
	Obj  *types.Func
	Decl *ast.FuncDecl
	Unit *Unit
	// Calls lists the statically resolvable call sites in Decl's body,
	// in source order. Calls through interface values or function
	// variables are dynamic and do not appear; program analyzers must
	// state their policy for them (lockorder and hotalloc both treat
	// them as opaque leaves).
	Calls []CallSite
}

// A CallSite is one statically resolved call.
type CallSite struct {
	Call   *ast.CallExpr
	Callee *types.Func
}

// A CallGraph maps every function declaration in the program to its
// node. Because the standalone loader type-checks the whole module from
// source with shared package identities, a call from dsm into rtnode
// resolves to rtnode's own *types.Func, and the graph walks straight
// through the package boundary.
type CallGraph struct {
	Funcs map[*types.Func]*FuncNode
}

// CallGraph builds (once) and returns the program's call graph.
func (p *Program) CallGraph() *CallGraph {
	if p.cg != nil {
		return p.cg
	}
	cg := &CallGraph{Funcs: make(map[*types.Func]*FuncNode)}
	for _, u := range p.Units {
		for obj, fd := range funcDecls(u.Files, u.Info) {
			if _, dup := cg.Funcs[obj]; dup {
				continue // a test variant re-declares the plain package's funcs
			}
			node := &FuncNode{Obj: obj, Decl: fd, Unit: u}
			unit := u
			inspectSkipNestedFuncs(fd.Body, func(n ast.Node) bool {
				call, ok := n.(*ast.CallExpr)
				if !ok {
					return true
				}
				if callee := StaticCallee(unit.Info, call); callee != nil {
					node.Calls = append(node.Calls, CallSite{Call: call, Callee: callee})
				}
				return true
			})
			cg.Funcs[obj] = node
		}
	}
	p.cg = cg
	return cg
}

// Node returns the graph node for obj, nil when obj's body is outside
// the program (stdlib, export-data-only dependency).
func (g *CallGraph) Node(obj *types.Func) *FuncNode {
	return g.Funcs[obj]
}

// Reachable returns every function reachable from the roots through
// statically resolved calls, including the roots themselves. Functions
// without a body in the program appear in the result (as leaves) so
// callers can apply their policy for them.
func (g *CallGraph) Reachable(roots []*types.Func) map[*types.Func]bool {
	seen := make(map[*types.Func]bool)
	var visit func(f *types.Func)
	visit = func(f *types.Func) {
		if seen[f] {
			return
		}
		seen[f] = true
		node := g.Funcs[f]
		if node == nil {
			return
		}
		for _, cs := range node.Calls {
			visit(cs.Callee)
		}
	}
	for _, r := range roots {
		visit(r)
	}
	return seen
}

// --- Shared syntax/type helpers for interprocedural analyzers. ---

// funcDecls indexes the package-level function and method declarations
// (with bodies) of one type-checked package.
func funcDecls(files []*ast.File, info *types.Info) map[*types.Func]*ast.FuncDecl {
	decls := make(map[*types.Func]*ast.FuncDecl)
	for _, f := range files {
		for _, d := range f.Decls {
			fd, ok := d.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			if obj, ok := info.Defs[fd.Name].(*types.Func); ok {
				decls[obj] = fd
			}
		}
	}
	return decls
}

// StaticCallee resolves call to the *types.Func it statically invokes:
// a package function, a method on a concrete receiver, or a method
// value's origin. Calls through interface values and function-typed
// variables return nil (dynamic). Conversions (T(x)) also return nil.
func StaticCallee(info *types.Info, call *ast.CallExpr) *types.Func {
	switch f := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		if fn, ok := info.Uses[f].(*types.Func); ok {
			return fn
		}
	case *ast.SelectorExpr:
		fn, ok := info.Uses[f.Sel].(*types.Func)
		if !ok {
			return nil
		}
		// A method selected from an interface value is a dynamic call.
		if sel, ok := info.Selections[f]; ok {
			if _, iface := sel.Recv().Underlying().(*types.Interface); iface {
				return nil
			}
		}
		return fn
	}
	return nil
}

// funcAnnotated reports whether fd's declaration carries the marker
// comment (e.g. "//dflint:hotpath"), either in its doc comment or on
// the line directly above the declaration.
func funcAnnotated(fd *ast.FuncDecl, marker string) bool {
	if fd.Doc != nil {
		for _, c := range fd.Doc.List {
			if strings.TrimSpace(c.Text) == marker {
				return true
			}
		}
	}
	return false
}

// isPkgType reports whether t (possibly behind a pointer) is the named
// type from the package with the given path, accepting a bare final
// path element so hermetic fixture packages match their real
// counterparts (same contract as isPkgObj).
func isPkgType(t types.Type, pkgPath, name string) bool {
	if t == nil {
		return false
	}
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	return isPkgObj(named.Obj(), pkgPath, name)
}
