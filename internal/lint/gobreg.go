package lint

import (
	"go/ast"
	"go/types"
)

// GobReg cross-checks the concrete payload types a package puts on the
// wire against the gob registrations it makes.
//
// The simulation binding passes payloads by reference, so an unregistered
// wire type works perfectly in every simulated test — and then the UDP
// binding's gob encoder fails at runtime on the first real message
// ("type not registered for interface"). This analyzer makes that a vet
// error: every concrete type a package passes to Transport.Send /
// Request* / Call, to msg.Endpoint.Send/Broadcast, or returns as a
// handler reply must be registered in that same package (gob.Register or
// rtnode.RegisterWire in an init).
//
// Types gob encodes inside an interface without registration — untyped
// basics, unnamed strings/numbers/bools, []byte, and unnamed slices of
// unnamed basics like []float64 — are skipped. Interface-typed payload
// expressions (forwarding an `any` received elsewhere) are skipped too:
// the dynamic type is checked at its original send site.
var GobReg = &Analyzer{
	Name: "gobreg",
	Doc: "require every concrete payload type sent through the transport to be " +
		"gob-registered in the sending package; the UDP binding cannot encode it otherwise",
	Run: runGobReg,
}

// payloadArgIndex maps sending methods (on kernel.Transport and
// msg.Endpoint) to the index of their payload argument.
type sendSig struct {
	pkgPath string
	arg     int
}

var gobSendSites = map[string]sendSig{
	"RequestAsync": {"filaments/internal/kernel", 2},
	"RequestSized": {"filaments/internal/kernel", 2},
	"Call":         {"filaments/internal/kernel", 3},
	"Send":         {"filaments/internal/kernel", 1}, // msg.Endpoint.Send resolved separately
	"Broadcast":    {"filaments/internal/msg", 1},
}

func runGobReg(pass *Pass) {
	if !pass.Kernel() {
		return
	}
	registered := collectRegistrations(pass)

	check := func(arg ast.Expr, how string) {
		tv, ok := pass.Info.Types[ast.Unparen(arg)]
		if !ok || tv.Type == nil {
			return
		}
		t := tv.Type
		if tv.IsNil() || gobSelfDescribing(t) {
			return
		}
		if _, isIface := t.Underlying().(*types.Interface); isIface {
			return // forwarded any; checked where the concrete value was made
		}
		if registered[t.String()] {
			return
		}
		pass.Reportf(arg.Pos(),
			"%s %s without a gob registration in this package: the UDP binding's encoder will reject it at runtime; add it to the rtnode.RegisterWire call in this package's init",
			how, types.TypeString(t, types.RelativeTo(pass.Pkg)))
	}

	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.CallExpr:
				name, idx, ok := sendPayload(pass.Info, n)
				if ok && idx < len(n.Args) {
					check(n.Args[idx], "sends "+name+" payload of type")
				}
			case *ast.FuncDecl:
				if n.Body != nil && isHandlerSig(pass.Info.Defs[n.Name]) {
					checkHandlerReplies(pass, n.Body, check)
				}
			case *ast.FuncLit:
				if tv, ok := pass.Info.Types[n]; ok && handlerSigType(tv.Type) {
					checkHandlerReplies(pass, n.Body, check)
				}
			}
			return true
		})
	}
}

// collectRegistrations gathers the type strings this package registers via
// gob.Register, gob.RegisterName, or rtnode.RegisterWire.
func collectRegistrations(pass *Pass) map[string]bool {
	registered := make(map[string]bool)
	add := func(arg ast.Expr) {
		if tv, ok := pass.Info.Types[ast.Unparen(arg)]; ok && tv.Type != nil && !tv.IsNil() {
			registered[tv.Type.String()] = true
		}
	}
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			obj := useOf(pass.Info, call.Fun)
			switch {
			case isPkgObj(obj, "encoding/gob", "Register") && len(call.Args) == 1:
				add(call.Args[0])
			case isPkgObj(obj, "encoding/gob", "RegisterName") && len(call.Args) == 2:
				add(call.Args[1])
			case isPkgObj(obj, "filaments/internal/rtnode", "RegisterWire"):
				for _, a := range call.Args {
					add(a)
				}
			}
			return true
		})
	}
	return registered
}

// sendPayload resolves call to a known wire-sending method and the index
// of its payload argument.
func sendPayload(info *types.Info, call *ast.CallExpr) (string, int, bool) {
	obj := useOf(info, call.Fun)
	if obj == nil {
		return "", 0, false
	}
	sig, ok := gobSendSites[obj.Name()]
	if !ok {
		return "", 0, false
	}
	// Send exists on both kernel.Transport (payload at 1) and
	// msg.Endpoint (payload at 2); every other name is unambiguous.
	if obj.Name() == "Send" && isPkgObj(obj, "filaments/internal/msg", "Send") {
		return "msg.Send", 2, true
	}
	if !isPkgObj(obj, sig.pkgPath, obj.Name()) {
		return "", 0, false
	}
	return obj.Name(), sig.arg, true
}

// gobSelfDescribing reports whether gob encodes t inside an interface
// without an explicit registration: unnamed basics, []byte, and unnamed
// slices of unnamed basics ([]float64, []int, ...).
func gobSelfDescribing(t types.Type) bool {
	switch t := t.(type) {
	case *types.Basic:
		return true
	case *types.Slice:
		_, basic := t.Elem().(*types.Basic)
		return basic
	}
	return false
}

// isHandlerSig reports whether obj is a function with the kernel.Service
// handler signature func(NodeID, any) (any, int, Verdict).
func isHandlerSig(obj types.Object) bool {
	fn, ok := obj.(*types.Func)
	if !ok {
		return false
	}
	return handlerSigType(fn.Type())
}

func handlerSigType(t types.Type) bool {
	sig, ok := t.(*types.Signature)
	if !ok || sig.Params().Len() != 2 || sig.Results().Len() != 3 {
		return false
	}
	return isKernelType(sig.Params().At(0).Type(), "NodeID") &&
		isKernelType(sig.Results().At(2).Type(), "Verdict")
}

// checkHandlerReplies applies check to the reply operand of every return
// in a handler body (the reply is gob-encoded when it crosses the wire).
func checkHandlerReplies(pass *Pass, body *ast.BlockStmt, check func(ast.Expr, string)) {
	inspectSkipNestedFuncs(body, func(n ast.Node) bool {
		ret, ok := n.(*ast.ReturnStmt)
		if !ok || len(ret.Results) != 3 {
			return true
		}
		check(ret.Results[0], "handler returns reply of type")
		return true
	})
}
