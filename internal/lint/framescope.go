package lint

import (
	"go/ast"
	"go/types"
	"strings"
)

// FrameScope is escape analysis for DSM frame slices: the []byte (and
// [][]byte) buffers that back shared-memory blocks, twins, and decoded
// page payloads.
//
// A frame alias is only valid inside its barrier epoch: the DSM revokes,
// re-homes, diffs, and recycles frames at every synchronization point,
// and under the real-time binding a decoded payload's bytes alias a
// pooled receive buffer that is recycled when the handler returns. An
// alias that outlives the epoch — captured by a deferred callback,
// stored in package state, sent across a channel to another goroutine —
// reads (or worse, writes) memory whose contents have moved on. dfcheck
// catches the resulting races dynamically when a test happens to hit
// them; this analyzer is the static twin, flagging the alias at the
// point it escapes.
//
// Frame provenance is declared, not inferred: a struct field whose
// declaration carries a //dflint:frame comment (on the field's line or
// its doc comment) is a frame source, as is every (*rtnode.Dec).Bytes
// result (documented to alias the receive buffer). Aliases propagate
// through assignment and slicing; copies (copy, append to a fresh
// slice, string conversion) deliberately do not — a snapshot is the
// sanctioned way to keep page bytes past the epoch.
var FrameScope = &Analyzer{
	Name: "framescope",
	Doc: "forbid DSM frame aliases (//dflint:frame fields, Dec.Bytes results) from " +
		"escaping their barrier epoch via deferred closures, package state, or channels",
	Run: runFrameScope,
}

// frameDeferredCallees are the kernel-seam registration points whose
// function-literal arguments run after the current epoch's node-context
// turn: request callbacks, timers, raw handlers, and spawned threads.
var frameDeferredCallees = []string{
	"RequestAsync", "RequestSized", "Schedule", "HandleRaw", "Spawn", "NewExec",
}

func runFrameScope(pass *Pass) {
	frameFields := collectFrameFields(pass)

	isSource := func(e ast.Expr) bool {
		switch e := e.(type) {
		case *ast.SelectorExpr:
			if fld, ok := pass.Info.Uses[e.Sel].(*types.Var); ok {
				return frameFields[fld]
			}
		case *ast.CallExpr:
			if sel, ok := ast.Unparen(e.Fun).(*ast.SelectorExpr); ok && sel.Sel.Name == "Bytes" {
				if tv, ok := pass.Info.Types[sel.X]; ok && isPkgType(tv.Type, "filaments/internal/rtnode", "Dec") {
					return true
				}
			}
		}
		return false
	}
	deferred := func(call *ast.CallExpr, arg ast.Expr) bool {
		for _, name := range frameDeferredCallees {
			if kernelMethod(pass.Info, call, name) {
				return true
			}
		}
		return false
	}

	for _, f := range pass.Files {
		for _, d := range f.Decls {
			fd, ok := d.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			for _, esc := range Taint(pass.Info, fd.Body, isSource, deferred) {
				pass.Reportf(esc.Node.Pos(),
					"DSM frame alias %s %s: frames are revoked and recycled at barrier epochs (and decoded payloads alias pooled receive buffers), so the alias outlives its bytes; copy instead",
					describeVia(esc.Via), esc.Sink)
			}
		}
	}
}

// collectFrameFields indexes the struct fields of this package whose
// declarations carry a //dflint:frame marker.
func collectFrameFields(pass *Pass) map[*types.Var]bool {
	// Comment positions by file/line, so a trailing marker on the
	// field's own line works like //dflint:allow does.
	marked := make(map[string]map[int]bool)
	for _, f := range pass.Files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				if strings.TrimSpace(c.Text) != "//dflint:frame" {
					continue
				}
				p := pass.Fset.Position(c.Slash)
				if marked[p.Filename] == nil {
					marked[p.Filename] = make(map[int]bool)
				}
				marked[p.Filename][p.Line] = true
			}
		}
	}
	fields := make(map[*types.Var]bool)
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			st, ok := n.(*ast.StructType)
			if !ok {
				return true
			}
			for _, fld := range st.Fields.List {
				p := pass.Fset.Position(fld.Pos())
				if !marked[p.Filename][p.Line] && !fieldDocMarked(fld) {
					continue
				}
				for _, name := range fld.Names {
					if v, ok := pass.Info.Defs[name].(*types.Var); ok {
						fields[v] = true
					}
				}
			}
			return true
		})
	}
	return fields
}

func fieldDocMarked(fld *ast.Field) bool {
	if fld.Doc == nil {
		return false
	}
	for _, c := range fld.Doc.List {
		if strings.TrimSpace(c.Text) == "//dflint:frame" {
			return true
		}
	}
	return false
}

// describeVia names the escaping expression for the diagnostic.
func describeVia(e ast.Expr) string {
	switch e := ast.Unparen(e).(type) {
	case *ast.Ident:
		return "'" + e.Name + "'"
	case *ast.SliceExpr:
		return describeVia(e.X)
	case *ast.SelectorExpr:
		if x, ok := ast.Unparen(e.X).(*ast.Ident); ok {
			return "'" + x.Name + "." + e.Sel.Name + "'"
		}
		return "'" + e.Sel.Name + "'"
	}
	return "value"
}
