package lint

import (
	"go/ast"
	"go/token"
	"go/types"
)

// AtomicField enforces all-or-nothing atomicity on shared counters: a
// location that is accessed through sync/atomic anywhere in the program
// may never be read or written plainly anywhere else. A mixed access
// pattern is the classic torn-counter bug — the plain read races the
// atomic writer, the race detector only catches it when both paths run
// in one test, and on weak memory the plain read can see a stale value
// forever.
//
// Two forms are checked, matching the two idioms in this module:
//
//  1. Function-style atomics: any `&x.f` (or `&pkgVar`) passed to a
//     sync/atomic function marks that field for the whole program; a
//     plain mention of the field outside an atomic call's argument or
//     another address-taking is flagged.
//
//  2. Typed atomics (atomic.Int64, atomic.Bool, atomic.Value, ... — the
//     obs metric fields and the udptrans sequence counters): the value
//     may only be used as a method-call receiver or have its address
//     taken. Assigning it, copying it into a variable, or passing it by
//     value silently forks the counter (each copy counts alone); all
//     are flagged.
var AtomicField = &ProgramAnalyzer{
	Name: "atomicfield",
	Doc: "forbid plain reads/writes of fields accessed via sync/atomic and " +
		"value copies of typed atomics",
	Run: runAtomicField,
}

func runAtomicField(pass *ProgramPass) {
	// Pass 1, program-wide: which objects are atomically accessed, and
	// which identifier positions are sanctioned (atomic call arguments
	// and other address-takings — taking the address is not a data
	// access).
	targets := make(map[types.Object]token.Position)
	allowed := make(map[token.Pos]bool)
	for _, u := range pass.Program.Units {
		info := u.Info
		for _, f := range u.Files {
			ast.Inspect(f, func(n ast.Node) bool {
				switch n := n.(type) {
				case *ast.CallExpr:
					callee := useOf(info, n.Fun)
					if callee == nil || !atomicPkg(callee.Pkg()) {
						return true
					}
					for _, arg := range n.Args {
						ue, ok := ast.Unparen(arg).(*ast.UnaryExpr)
						if !ok || ue.Op != token.AND {
							continue
						}
						obj, id := addrTarget(info, ue.X)
						if obj == nil {
							continue
						}
						if _, have := targets[obj]; !have {
							targets[obj] = pass.Program.Fset.Position(n.Pos())
						}
						allowed[id.Pos()] = true
					}
				case *ast.UnaryExpr:
					// Any other address-taking of any object: sanctioned
					// (the pointer presumably feeds an atomic elsewhere;
					// framescope/escape rules police pointers).
					if n.Op == token.AND {
						if _, id := addrTarget(info, n.X); id != nil {
							allowed[id.Pos()] = true
						}
					}
				}
				return true
			})
		}
	}

	// Pass 2: flag plain accesses of marked objects and value uses of
	// typed atomics.
	for _, u := range pass.Program.Units {
		info := u.Info
		for _, f := range u.Files {
			ast.Inspect(f, func(n ast.Node) bool {
				switch n := n.(type) {
				case *ast.SelectorExpr:
					obj := info.Uses[n.Sel]
					if at, hot := targets[obj]; hot && !allowed[n.Sel.Pos()] {
						pass.Reportf(n.Sel.Pos(),
							"plain access to %s, which is accessed atomically at %s — every access must go through sync/atomic",
							n.Sel.Name, at)
					}
				case *ast.Ident:
					obj := info.Uses[n]
					v, isVar := obj.(*types.Var)
					if !isVar || v.IsField() || v.Pkg() == nil || v.Parent() != v.Pkg().Scope() {
						return true
					}
					if at, hot := targets[obj]; hot && !allowed[n.Pos()] {
						pass.Reportf(n.Pos(),
							"plain access to %s, which is accessed atomically at %s — every access must go through sync/atomic",
							n.Name, at)
					}
				case *ast.AssignStmt:
					for _, e := range n.Lhs {
						flagAtomicValue(pass, info, e, "assigned over")
					}
					for _, e := range n.Rhs {
						flagAtomicValue(pass, info, e, "copied")
					}
				case *ast.ValueSpec:
					for _, e := range n.Values {
						flagAtomicValue(pass, info, e, "copied")
					}
				case *ast.CallExpr:
					for _, e := range n.Args {
						flagAtomicValue(pass, info, e, "passed by value")
					}
				}
				return true
			})
		}
	}
}

// flagAtomicValue reports e when it is a typed-atomic VALUE expression
// (not a pointer, not an address-taking).
func flagAtomicValue(pass *ProgramPass, info *types.Info, e ast.Expr, how string) {
	e = ast.Unparen(e)
	if ue, ok := e.(*ast.UnaryExpr); ok && ue.Op == token.AND {
		return
	}
	// A composite literal of the atomic type itself (zero-value reset
	// idiom does not exist for atomics; initializing a struct containing
	// one is handled by the field's enclosing literal, not here).
	tv, ok := info.Types[e]
	if !ok || !tv.IsValue() || !atomicNamedType(tv.Type) {
		return
	}
	pass.Reportf(e.Pos(),
		"typed atomic %s %s as a value — each copy is an independent counter and copying races its writers; use its methods, or a pointer",
		types.ExprString(e), how)
}

// atomicPkg reports whether pkg is sync/atomic (accepting the bare
// path fixtures use).
func atomicPkg(pkg *types.Package) bool {
	if pkg == nil {
		return false
	}
	return pkg.Path() == "sync/atomic" || pkg.Path() == "atomic"
}

// atomicNamedType reports whether t is a named type declared by
// sync/atomic (Int32, Int64, Uint64, Bool, Value, Pointer[T], ...).
func atomicNamedType(t types.Type) bool {
	if t == nil {
		return false
	}
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	return atomicPkg(named.Obj().Pkg())
}

// addrTarget resolves the terminal object an address-of expression
// names: the field for &x.f, the variable for &v. Index expressions
// (&s[i]) have per-element granularity the object model cannot carry
// and resolve to nothing.
func addrTarget(info *types.Info, e ast.Expr) (types.Object, *ast.Ident) {
	switch e := ast.Unparen(e).(type) {
	case *ast.Ident:
		if v, ok := info.Uses[e].(*types.Var); ok {
			return v, e
		}
	case *ast.SelectorExpr:
		if v, ok := info.Uses[e.Sel].(*types.Var); ok && v.IsField() {
			return v, e.Sel
		}
	}
	return nil, nil
}
