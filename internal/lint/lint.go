// Package lint is dflint's analysis framework: a small, dependency-free
// core in the shape of golang.org/x/tools/go/analysis (which this module
// deliberately does not depend on) plus the analyzers that machine-check
// the kernel-seam contracts from internal/kernel's documentation and the
// DSM memory-model contracts from internal/check's documentation.
//
// The contracts exist because the same kernel code (dsm, reduce, filament,
// msg, apps) runs under two bindings: the deterministic simulation that
// produces the paper's figures in virtual time, and the real-time UDP
// binding where handlers run under a per-node monitor. Code that reaches
// for time, raw goroutines, sync primitives, map iteration order, or
// blocking calls inside handlers works under one binding and silently
// breaks the other. Doc comments used to be the only enforcement; these
// analyzers make the rules part of `go vet`.
//
// Escape hatch: a comment of the form
//
//	//dflint:allow <rule> <one-line reason>
//
// on the flagged line, or on the line directly above it, suppresses that
// rule there. The reason is mandatory; an allow without one is itself
// reported.
package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"regexp"
	"strings"
)

// An Analyzer describes one dflint check.
type Analyzer struct {
	// Name is the rule name used in diagnostics and //dflint:allow
	// comments.
	Name string
	// Doc is a one-paragraph description of what the rule guards.
	Doc string
	// Run reports the rule's diagnostics for one package.
	Run func(*Pass)
}

// Analyzers returns the full dflint suite.
func Analyzers() []*Analyzer {
	return []*Analyzer{
		KernelTime,
		KernelSpawn,
		HandlerNoBlock,
		MapRange,
		GobReg,
		SharedRange,
		LoopCapture,
		BarrierPhase,
		CodecSym,
		FrameScope,
	}
}

// A Diagnostic is one reported violation, with its position resolved.
type Diagnostic struct {
	Analyzer string
	Pos      token.Position
	Message  string
}

func (d Diagnostic) String() string {
	return fmt.Sprintf("%s: %s [%s]", d.Pos, d.Message, d.Analyzer)
}

// A Pass carries one type-checked package through one analyzer.
type Pass struct {
	Analyzer *Analyzer
	Fset     *token.FileSet
	Files    []*ast.File
	Pkg      *types.Package
	Info     *types.Info

	kernel bool
	allows allowIndex
	sink   *[]Diagnostic
}

// Kernel reports whether this package is part of the kernel layer (the
// code written against internal/kernel's seam and shared by both
// bindings). Most rules only apply there.
func (p *Pass) Kernel() bool { return p.kernel }

// Reportf records a diagnostic at pos unless a //dflint:allow comment for
// this analyzer covers the line. An allow comment without a reason is
// converted into its own diagnostic rather than honored silently.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	reportf(p.Fset, p.allows, p.sink, p.Analyzer.Name, pos, format, args...)
}

// kernelPkgPaths are the import paths of the kernel-layer packages: the
// protocol layers plus every application, all of which must run
// identically under the simulation and UDP bindings. New kernel-layer
// packages either extend this list or carry a //dflint:kernel comment in
// any file.
var kernelPkgPaths = map[string]bool{
	"filaments/internal/kernel":   true,
	"filaments/internal/dsm":      true,
	"filaments/internal/reduce":   true,
	"filaments/internal/filament": true,
	"filaments/internal/msg":      true,
	"filaments/internal/obs":      true,
	// The membership state machine is explicit-clock and single-threaded
	// by design; the lint tiers enforce that its impurities stay in
	// cluster/daemon (which matches by exact path, so it is exempt).
	"filaments/internal/cluster": true,
}

const kernelPkgPrefix = "filaments/internal/apps/"

// isKernelPackage classifies a package as kernel-layer by import path or
// by an explicit //dflint:kernel marker comment (used by fixtures and
// available to future packages).
func isKernelPackage(path string, files []*ast.File) bool {
	// Strip go list's test-variant suffix: "pkg [pkg.test]".
	if i := strings.IndexByte(path, ' '); i >= 0 {
		path = path[:i]
	}
	if kernelPkgPaths[path] || strings.HasPrefix(path, kernelPkgPrefix) {
		return true
	}
	for _, f := range files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				if strings.TrimSpace(c.Text) == "//dflint:kernel" {
					return true
				}
			}
		}
	}
	return false
}

// --- //dflint:allow comment index. ---

type allowEntry struct {
	pos    token.Pos
	reason string
}

// allowIndex maps filename → line → rule → entry. A diagnostic on line L
// is suppressed by an allow on L (trailing comment) or L-1 (comment on
// its own line above).
type allowIndex map[string]map[int]map[string]allowEntry

var allowRE = regexp.MustCompile(`^//dflint:allow\s+([A-Za-z0-9_-]+)\s*(.*)$`)

func buildAllowIndex(fset *token.FileSet, files []*ast.File) allowIndex {
	idx := make(allowIndex)
	for _, f := range files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				m := allowRE.FindStringSubmatch(c.Text)
				if m == nil {
					continue
				}
				p := fset.Position(c.Slash)
				byLine := idx[p.Filename]
				if byLine == nil {
					byLine = make(map[int]map[string]allowEntry)
					idx[p.Filename] = byLine
				}
				byRule := byLine[p.Line]
				if byRule == nil {
					byRule = make(map[string]allowEntry)
					byLine[p.Line] = byRule
				}
				byRule[m[1]] = allowEntry{pos: c.Slash, reason: strings.TrimSpace(m[2])}
			}
		}
	}
	return idx
}

func (idx allowIndex) lookup(pos token.Position, rule string) (allowEntry, bool) {
	byLine, ok := idx[pos.Filename]
	if !ok {
		return allowEntry{}, false
	}
	for _, line := range [2]int{pos.Line, pos.Line - 1} {
		if e, ok := byLine[line][rule]; ok {
			return e, true
		}
	}
	return allowEntry{}, false
}

// Run applies the analyzers to one type-checked package and returns the
// diagnostics sorted by position. info must have Types, Defs, Uses and
// Selections populated.
func Run(analyzers []*Analyzer, fset *token.FileSet, files []*ast.File, pkg *types.Package, info *types.Info) []Diagnostic {
	var diags []Diagnostic
	kernel := isKernelPackage(pkg.Path(), files)
	allows := buildAllowIndex(fset, files)
	for _, a := range analyzers {
		pass := &Pass{
			Analyzer: a,
			Fset:     fset,
			Files:    files,
			Pkg:      pkg,
			Info:     info,
			kernel:   kernel,
			allows:   allows,
			sink:     &diags,
		}
		a.Run(pass)
	}
	// Sort and dedupe: the same file can be analyzed both in a package
	// and in its test variant.
	return sortDedupe(diags)
}

// An Allow is one //dflint:allow escape hatch found in source, for
// dflint's -allowlist audit mode: the hatches are part of the checked
// contract surface, so the full set is kept in a reviewed baseline and
// CI fails when a new one appears without a baseline change.
type Allow struct {
	Pos    token.Position
	Rule   string
	Reason string
}

// CollectAllows extracts every //dflint:allow comment from the files.
func CollectAllows(fset *token.FileSet, files []*ast.File) []Allow {
	var out []Allow
	for _, f := range files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				m := allowRE.FindStringSubmatch(c.Text)
				if m == nil {
					continue
				}
				out = append(out, Allow{
					Pos:    fset.Position(c.Slash),
					Rule:   m[1],
					Reason: strings.TrimSpace(m[2]),
				})
			}
		}
	}
	return out
}

// NewInfo returns a types.Info with every map the analyzers need.
func NewInfo() *types.Info {
	return &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Implicits:  make(map[ast.Node]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
		Scopes:     make(map[ast.Node]*types.Scope),
	}
}

// --- Shared type-resolution helpers. ---

// useOf resolves a call's callee to the used object: the selected method
// or function for selector calls, the function for plain ident calls.
func useOf(info *types.Info, fun ast.Expr) types.Object {
	switch f := ast.Unparen(fun).(type) {
	case *ast.Ident:
		return info.Uses[f]
	case *ast.SelectorExpr:
		return info.Uses[f.Sel]
	}
	return nil
}

// isPkgObj reports whether obj is the named member of the package with
// the given path. A bare final path element is also accepted, so fixture
// packages ("kernel", "rtnode") match their real counterparts
// ("filaments/internal/kernel", ...).
func isPkgObj(obj types.Object, pkgPath, name string) bool {
	if obj == nil || obj.Pkg() == nil || obj.Name() != name {
		return false
	}
	p := obj.Pkg().Path()
	return p == pkgPath || p == pkgPath[strings.LastIndexByte(pkgPath, '/')+1:]
}

// kernelMethod reports whether the call invokes a method declared by an
// internal/kernel interface (Transport, Thread, Clock, Executor, Node)
// with the given name, and returns the selector if so.
func kernelMethod(info *types.Info, call *ast.CallExpr, name string) bool {
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok {
		return false
	}
	obj := info.Uses[sel.Sel]
	return isPkgObj(obj, "filaments/internal/kernel", name)
}
