package lint

import (
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// StateMach checks declared state machines. An enum type annotated
//
//	//dflint:states
//	//dflint:transitions Alive->Suspect Suspect->Dead ...
//
// (on the type declaration; multiple transitions lines union) gets two
// whole-program guarantees:
//
//  1. Exhaustiveness: every switch over the enum either lists all of
//     its constants or carries an explicit default. Adding a state then
//     breaks the build of every switch that silently ignored it — the
//     membership failure-detector bug class.
//
//  2. Transition discipline: every plain assignment `x = Const` into an
//     enum-typed location must be a declared transition. The analyzer
//     infers the from-states from the dominating guards and their
//     polarity (`if m.State == Suspect` in the true branch narrows to
//     {Suspect}; `case m.State != Alive:` narrows to everything but
//     Alive; tagged switch cases narrow to their listed constants) and
//     requires every inferred from→to pair to appear in the table. When
//     no guard constrains the from-state, the weak check still applies:
//     the target must be the destination of at least one declared
//     transition, so a state with no legal inbound edge cannot be
//     assigned at all.
//
// An enum annotated //dflint:states without a transitions table gets
// only the exhaustiveness check. Initial states (composite literals,
// var declarations, :=) are construction, not transition, and are not
// checked.
var StateMach = &ProgramAnalyzer{
	Name: "statemach",
	Doc: "require switches over //dflint:states enums to be exhaustive and " +
		"assignments to follow the declared //dflint:transitions table",
	Run: runStateMach,
}

// An enumSpec is one annotated enum type in one type-checked unit.
type enumSpec struct {
	typ    *types.TypeName
	consts []*types.Const
	// transitions maps "From->To" (constant names); nil when the type
	// has no table.
	transitions map[string]bool
	targets     map[string]bool // declared destination states
}

func (e *enumSpec) isConst(obj types.Object) (*types.Const, bool) {
	c, ok := obj.(*types.Const)
	if !ok {
		return nil, false
	}
	for _, k := range e.consts {
		if k == c {
			return c, true
		}
	}
	return nil, false
}

func (e *enumSpec) allNames() []string {
	var out []string
	for _, k := range e.consts {
		out = append(out, k.Name())
	}
	return out
}

func runStateMach(pass *ProgramPass) {
	// Collect program-wide first: the loader shares dependency package
	// identities across units, so a daemon switch over cluster.State
	// resolves to the same *types.TypeName the cluster unit declared.
	specs := make(map[*types.TypeName]*enumSpec)
	for _, u := range pass.Program.Units {
		collectEnumSpecs(u, specs)
	}
	if len(specs) == 0 {
		return
	}
	for _, u := range pass.Program.Units {
		for _, f := range u.Files {
			checkEnumUsage(pass, u, f, specs)
		}
	}
}

// collectEnumSpecs adds the //dflint:states-annotated types declared in
// one unit, with their constants and transition tables, to specs.
func collectEnumSpecs(u *Unit, specs map[*types.TypeName]*enumSpec) {
	for _, f := range u.Files {
		for _, d := range f.Decls {
			gd, ok := d.(*ast.GenDecl)
			if !ok || gd.Tok != token.TYPE {
				continue
			}
			for _, s := range gd.Specs {
				ts, ok := s.(*ast.TypeSpec)
				if !ok {
					continue
				}
				annotated, table := parseStatesDoc(gd.Doc, ts.Doc)
				if !annotated {
					continue
				}
				tn, ok := u.Info.Defs[ts.Name].(*types.TypeName)
				if !ok {
					continue
				}
				spec := &enumSpec{typ: tn}
				if table != nil {
					spec.transitions = table
					spec.targets = make(map[string]bool)
					for t := range table {
						if i := strings.Index(t, "->"); i >= 0 {
							spec.targets[t[i+2:]] = true
						}
					}
				}
				// The enum's constants: package-level consts of the
				// named type, in declaration order.
				scope := tn.Pkg().Scope()
				var names []string
				names = append(names, scope.Names()...)
				var consts []*types.Const
				for _, name := range names {
					if c, ok := scope.Lookup(name).(*types.Const); ok &&
						types.Identical(c.Type(), tn.Type()) {
						consts = append(consts, c)
					}
				}
				sort.Slice(consts, func(i, j int) bool { return consts[i].Pos() < consts[j].Pos() })
				spec.consts = consts
				specs[tn] = spec
			}
		}
	}
}

// parseStatesDoc scans the declaration's doc comments for the
// annotation pair. It returns whether //dflint:states is present and
// the union of all //dflint:transitions lines (nil when none).
func parseStatesDoc(groups ...*ast.CommentGroup) (bool, map[string]bool) {
	annotated := false
	var table map[string]bool
	for _, g := range groups {
		if g == nil {
			continue
		}
		for _, c := range g.List {
			text := strings.TrimSpace(c.Text)
			if text == "//dflint:states" {
				annotated = true
				continue
			}
			rest, ok := strings.CutPrefix(text, "//dflint:transitions ")
			if !ok {
				continue
			}
			if table == nil {
				table = make(map[string]bool)
			}
			for _, pair := range strings.Fields(rest) {
				table[pair] = true
			}
		}
	}
	return annotated, table
}

// checkEnumUsage walks one file for switches over and assignments into
// annotated enums.
func checkEnumUsage(pass *ProgramPass, u *Unit, f *ast.File, specs map[*types.TypeName]*enumSpec) {
	for _, d := range f.Decls {
		fd, ok := d.(*ast.FuncDecl)
		if !ok || fd.Body == nil {
			continue
		}
		var flow *Flow // built lazily; only assignments need it
		inspectSkipNestedFuncs(fd.Body, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.SwitchStmt:
				checkEnumSwitch(pass, u, n, specs)
			case *ast.AssignStmt:
				if flow == nil && assignsEnum(u, n, specs) {
					flow = BuildFlow(fd.Body)
				}
				if flow != nil {
					checkEnumAssign(pass, u, flow, n, specs)
				}
			}
			return true
		})
	}
	// Handler literals and other nested functions get the switch check
	// only (their CFG is not the declaration's).
	ast.Inspect(f, func(n ast.Node) bool {
		lit, ok := n.(*ast.FuncLit)
		if !ok {
			return true
		}
		ast.Inspect(lit.Body, func(m ast.Node) bool {
			if sw, ok := m.(*ast.SwitchStmt); ok {
				checkEnumSwitch(pass, u, sw, specs)
			}
			return true
		})
		return false
	})
}

// enumOf resolves the annotated enum of an expression's type.
func enumOf(u *Unit, e ast.Expr, specs map[*types.TypeName]*enumSpec) *enumSpec {
	tv, ok := u.Info.Types[e]
	if !ok || tv.Type == nil {
		return nil
	}
	named, ok := tv.Type.(*types.Named)
	if !ok {
		return nil
	}
	return specs[named.Obj()]
}

// checkEnumSwitch enforces exhaustiveness: all constants listed or an
// explicit default.
func checkEnumSwitch(pass *ProgramPass, u *Unit, sw *ast.SwitchStmt, specs map[*types.TypeName]*enumSpec) {
	if sw.Tag == nil {
		return
	}
	spec := enumOf(u, sw.Tag, specs)
	if spec == nil || len(spec.consts) == 0 {
		return
	}
	covered := make(map[*types.Const]bool)
	for _, cs := range sw.Body.List {
		cc, ok := cs.(*ast.CaseClause)
		if !ok {
			continue
		}
		if cc.List == nil {
			return // explicit default: exhaustive by construction
		}
		for _, e := range cc.List {
			if c, ok := spec.isConst(useOf(u.Info, e)); ok {
				covered[c] = true
			}
		}
	}
	var missing []string
	for _, c := range spec.consts {
		if !covered[c] {
			missing = append(missing, c.Name())
		}
	}
	if len(missing) > 0 {
		pass.Reportf(sw.Pos(),
			"switch over %s is not exhaustive: missing %s — add the cases or an explicit default (//dflint:states)",
			spec.typ.Name(), strings.Join(missing, ", "))
	}
}

// assignsEnum reports whether the assignment stores an enum constant
// into an enum-typed location (the statement the transition check
// applies to).
func assignsEnum(u *Unit, as *ast.AssignStmt, specs map[*types.TypeName]*enumSpec) bool {
	if as.Tok != token.ASSIGN {
		return false
	}
	for i := range as.Lhs {
		if i >= len(as.Rhs) {
			break
		}
		if spec := enumOf(u, as.Lhs[i], specs); spec != nil && spec.transitions != nil {
			if _, ok := spec.isConst(useOf(u.Info, as.Rhs[i])); ok {
				return true
			}
		}
	}
	return false
}

// checkEnumAssign validates one transition assignment against the
// declared table.
func checkEnumAssign(pass *ProgramPass, u *Unit, flow *Flow, as *ast.AssignStmt, specs map[*types.TypeName]*enumSpec) {
	if as.Tok != token.ASSIGN {
		return
	}
	for i := range as.Lhs {
		if i >= len(as.Rhs) {
			break
		}
		spec := enumOf(u, as.Lhs[i], specs)
		if spec == nil || spec.transitions == nil {
			continue
		}
		to, ok := spec.isConst(useOf(u.Info, as.Rhs[i]))
		if !ok {
			continue
		}
		lvPath := types.ExprString(ast.Unparen(as.Lhs[i]))
		from := inferFromStates(u, flow, as, lvPath, spec)
		if from == nil {
			// Unconstrained: the weak check — `to` must be reachable by
			// some declared edge.
			if !spec.targets[to.Name()] {
				pass.Reportf(as.Pos(),
					"assignment %s = %s: %s is not the destination of any declared //dflint:transitions edge of %s",
					lvPath, to.Name(), to.Name(), spec.typ.Name())
			}
			continue
		}
		var bad []string
		for _, f := range from {
			if f == to.Name() {
				continue // self-transition: an overwrite, always legal
			}
			if !spec.transitions[f+"->"+to.Name()] {
				bad = append(bad, f+"->"+to.Name())
			}
		}
		if len(bad) > 0 {
			pass.Reportf(as.Pos(),
				"assignment %s = %s takes undeclared transition(s) %s — declare them in %s's //dflint:transitions table or tighten the guard",
				lvPath, to.Name(), strings.Join(bad, ", "), spec.typ.Name())
		}
	}
}

// inferFromStates intersects the constraints every dominating guard
// places on lvPath's value before the assignment. nil means
// unconstrained.
func inferFromStates(u *Unit, flow *Flow, as *ast.AssignStmt, lvPath string, spec *enumSpec) []string {
	b := flow.BlockOf(as)
	if b == nil {
		return nil
	}
	all := spec.allNames()
	var result map[string]bool // nil: unconstrained so far
	intersect := func(set map[string]bool) {
		if result == nil {
			result = set
			return
		}
		for k := range result {
			if !set[k] {
				delete(result, k)
			}
		}
	}
	for _, g := range flow.Guards(b) {
		if set, ok := guardStates(u, g, lvPath, spec, all); ok {
			intersect(set)
		}
	}
	if result == nil {
		return nil
	}
	var out []string
	for _, name := range all { // declaration order, deterministic
		if result[name] {
			out = append(out, name)
		}
	}
	return out
}

// guardStates extracts the constraint one guard places on lvPath.
func guardStates(u *Unit, g Guard, lvPath string, spec *enumSpec, all []string) (map[string]bool, bool) {
	// Uniform edge polarity: all-true or all-false branches evaluate the
	// condition; case edges evaluate the clause lists.
	kinds := make(map[EdgeKind]bool)
	for _, e := range g.Taken {
		kinds[e.Kind] = true
	}
	switch {
	case len(kinds) == 1 && kinds[EdgeTrue]:
		return condStates(u, g.Cond, lvPath, spec, all, true)
	case len(kinds) == 1 && kinds[EdgeFalse]:
		return condStates(u, g.Cond, lvPath, spec, all, false)
	case kinds[EdgeCase] && !kinds[EdgeNoCase]:
		// Union over the taken clauses.
		union := make(map[string]bool)
		for _, e := range g.Taken {
			cc, ok := e.Clause.(*ast.CaseClause)
			if !ok {
				return nil, false
			}
			var clauseSet map[string]bool
			if g.Cond != nil && types.ExprString(ast.Unparen(g.Cond)) == lvPath {
				// Tagged switch on the location itself: the clause
				// constants are the possible values.
				clauseSet = make(map[string]bool)
				for _, ce := range cc.List {
					c, isC := spec.isConst(useOf(u.Info, ce))
					if !isC {
						return nil, false
					}
					clauseSet[c.Name()] = true
				}
			} else if g.Cond == nil {
				// Bare switch: each clause expression is a condition;
				// a multi-expression clause is a disjunction.
				for _, ce := range cc.List {
					s, ok := condStates(u, ce, lvPath, spec, all, true)
					if !ok {
						return nil, false
					}
					if clauseSet == nil {
						clauseSet = make(map[string]bool)
					}
					for k := range s {
						clauseSet[k] = true
					}
				}
			}
			if clauseSet == nil {
				return nil, false
			}
			for k := range clauseSet {
				union[k] = true
			}
		}
		return union, true
	}
	return nil, false
}

// condStates evaluates a boolean condition under the given truth value
// into the set of lvPath values consistent with it.
func condStates(u *Unit, cond ast.Expr, lvPath string, spec *enumSpec, all []string, truth bool) (map[string]bool, bool) {
	switch e := ast.Unparen(cond).(type) {
	case *ast.UnaryExpr:
		if e.Op == token.NOT {
			return condStates(u, e.X, lvPath, spec, all, !truth)
		}
	case *ast.BinaryExpr:
		switch {
		case (e.Op == token.LAND && truth) || (e.Op == token.LOR && !truth):
			// Both sides hold: intersect whichever constrain.
			ls, lok := condStates(u, e.X, lvPath, spec, all, truth)
			rs, rok := condStates(u, e.Y, lvPath, spec, all, truth)
			switch {
			case lok && rok:
				out := make(map[string]bool)
				for k := range ls {
					if rs[k] {
						out[k] = true
					}
				}
				return out, true
			case lok:
				return ls, true
			case rok:
				return rs, true
			}
			return nil, false
		case (e.Op == token.LOR && truth) || (e.Op == token.LAND && !truth):
			// Either side may hold: union, only if both constrain.
			ls, lok := condStates(u, e.X, lvPath, spec, all, truth)
			rs, rok := condStates(u, e.Y, lvPath, spec, all, truth)
			if lok && rok {
				out := make(map[string]bool)
				for k := range ls {
					out[k] = true
				}
				for k := range rs {
					out[k] = true
				}
				return out, true
			}
			return nil, false
		case e.Op == token.EQL || e.Op == token.NEQ:
			k, ok := comparisonConst(u, e, lvPath, spec)
			if !ok {
				return nil, false
			}
			wantEqual := (e.Op == token.EQL) == truth
			out := make(map[string]bool)
			if wantEqual {
				out[k] = true
			} else {
				for _, name := range all {
					if name != k {
						out[name] = true
					}
				}
			}
			return out, true
		}
	}
	return nil, false
}

// comparisonConst matches `lvPath ==/!= Const` in either operand order.
func comparisonConst(u *Unit, e *ast.BinaryExpr, lvPath string, spec *enumSpec) (string, bool) {
	x, y := ast.Unparen(e.X), ast.Unparen(e.Y)
	if types.ExprString(x) == lvPath {
		if c, ok := spec.isConst(useOf(u.Info, y)); ok {
			return c.Name(), true
		}
	}
	if types.ExprString(y) == lvPath {
		if c, ok := spec.isConst(useOf(u.Info, x)); ok {
			return c.Name(), true
		}
	}
	return "", false
}
