package lint

import (
	"go/ast"
	"go/token"
	"go/types"
)

// BarrierPhase flags filament distribution that follows a DSM write with
// no barrier in between.
//
// The DF memory model publishes writes at barriers (and reductions,
// which ride the barrier): a master that writes shared pages and then
// calls RunPools or RunForkJoin in the same phase races the distributed
// filaments against its own unpublished writes — under write-invalidate
// or implicit-invalidate the filaments can read stale page copies. This
// is exactly the stale-copy hazard dfcheck's dynamic prong detects, and
// the third seeded bug in internal/apps/racer; this rule catches the
// shape at compile time.
//
// The analysis is a per-function abstract interpretation of one bit:
// "a typed DSM write has happened since the last barrier". WriteF64 and
// WriteI64 (on Exec or DSM) set it; Barrier and Reduce clear it;
// RunPools and RunForkJoin while it is set are reported. Fork is
// deliberately NOT a trigger: shipping a fork/join task is itself a
// happens-before edge (the task carries its origin's clock), so
// write-then-Fork is ordered. If branches merge pessimistically (dirty
// if either arm is), and loop bodies are evaluated twice so a write at
// the bottom of one iteration reaches a distribution at the top of the
// next. Each function literal is analyzed independently: a filament
// body's writes belong to its own execution, not to the phase of the
// function that created it.
var BarrierPhase = &Analyzer{
	Name: "barrierphase",
	Doc: "forbid RunPools/RunForkJoin while a DSM write from the same phase has " +
		"not been published by a barrier or reduction",
	Run: runBarrierPhase,
}

func runBarrierPhase(pass *Pass) {
	if !pass.Kernel() {
		return
	}
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			switch fn := n.(type) {
			case *ast.FuncDecl:
				if fn.Body != nil {
					bp := &bpWalk{pass: pass, reported: make(map[token.Pos]bool)}
					bp.block(fn.Body, bpState{})
				}
			case *ast.FuncLit:
				bp := &bpWalk{pass: pass, reported: make(map[token.Pos]bool)}
				bp.block(fn.Body, bpState{})
			}
			return true
		})
	}
}

// bpState is the abstract state: whether an unpublished DSM write exists
// and where the most recent one was.
type bpState struct {
	dirty bool
	write token.Pos
}

func merge(a, b bpState) bpState {
	switch {
	case a.dirty:
		return a
	case b.dirty:
		return b
	}
	return bpState{}
}

type bpWalk struct {
	pass     *Pass
	reported map[token.Pos]bool
}

func (w *bpWalk) block(b *ast.BlockStmt, s bpState) bpState {
	for _, st := range b.List {
		s = w.stmt(st, s)
	}
	return s
}

func (w *bpWalk) stmt(st ast.Stmt, s bpState) bpState {
	switch n := st.(type) {
	case *ast.BlockStmt:
		return w.block(n, s)
	case *ast.IfStmt:
		if n.Init != nil {
			s = w.stmt(n.Init, s)
		}
		s = w.scan(n.Cond, s)
		then := w.block(n.Body, s)
		alt := s
		if n.Else != nil {
			alt = w.stmt(n.Else, s)
		}
		return merge(then, alt)
	case *ast.ForStmt:
		if n.Init != nil {
			s = w.stmt(n.Init, s)
		}
		// Two trips around the loop so a write at the bottom of one
		// iteration reaches a distribution at the top of the next.
		once := s
		for i := 0; i < 2; i++ {
			once = w.scan(n.Cond, once)
			once = w.block(n.Body, once)
			if n.Post != nil {
				once = w.stmt(n.Post, once)
			}
		}
		return merge(s, once)
	case *ast.RangeStmt:
		s = w.scan(n.X, s)
		once := s
		for i := 0; i < 2; i++ {
			once = w.block(n.Body, once)
		}
		return merge(s, once)
	case *ast.SwitchStmt:
		if n.Init != nil {
			s = w.stmt(n.Init, s)
		}
		s = w.scan(n.Tag, s)
		return w.cases(n.Body, s)
	case *ast.TypeSwitchStmt:
		if n.Init != nil {
			s = w.stmt(n.Init, s)
		}
		return w.cases(n.Body, s)
	case *ast.SelectStmt:
		return w.cases(n.Body, s)
	case *ast.LabeledStmt:
		return w.stmt(n.Stmt, s)
	default:
		// Straight-line statements: classify every call in the subtree.
		return w.scan(st, s)
	}
}

// cases merges a switch/select body: any clause may run.
func (w *bpWalk) cases(body *ast.BlockStmt, s bpState) bpState {
	out := s
	for _, c := range body.List {
		clause := s
		switch cc := c.(type) {
		case *ast.CaseClause:
			for _, st := range cc.Body {
				clause = w.stmt(st, clause)
			}
		case *ast.CommClause:
			for _, st := range cc.Body {
				clause = w.stmt(st, clause)
			}
		}
		out = merge(out, clause)
	}
	return out
}

// scan classifies the calls in an expression or straight-line statement,
// skipping nested function literals (each is analyzed on its own).
func (w *bpWalk) scan(root ast.Node, s bpState) bpState {
	if root == nil {
		return s
	}
	ast.Inspect(root, func(n ast.Node) bool {
		if _, ok := n.(*ast.FuncLit); ok {
			return false
		}
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		switch classifyPhaseCall(w.pass.Info, call) {
		case bpWrite:
			s = bpState{dirty: true, write: call.Pos()}
		case bpClear:
			s = bpState{}
		case bpDistribute:
			if s.dirty && !w.reported[call.Pos()] {
				w.reported[call.Pos()] = true
				w.pass.Reportf(call.Pos(),
					"filaments distributed while the DSM write at %s has not been published by a barrier; remote filaments may read stale pages — put a Barrier or Reduce between the write and the distribution",
					w.pass.Fset.Position(s.write))
			}
		}
		return true
	})
	return s
}

type bpKind int

const (
	bpOther bpKind = iota
	bpWrite
	bpClear
	bpDistribute
)

func classifyPhaseCall(info *types.Info, call *ast.CallExpr) bpKind {
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok {
		return bpOther
	}
	fn, ok := info.Uses[sel.Sel].(*types.Func)
	if !ok {
		return bpOther
	}
	switch fn.Name() {
	case "WriteF64", "WriteI64":
		if recvNamed(fn, "Exec", "DSM") {
			return bpWrite
		}
	case "Barrier", "Reduce":
		if recvNamed(fn, "Exec") {
			return bpClear
		}
	case "RunPools", "RunForkJoin":
		if recvNamed(fn, "Runtime") {
			return bpDistribute
		}
	}
	return bpOther
}
