package lint

import (
	"go/ast"
	"go/token"
	"go/types"
)

// The SSA-lite dataflow core behind the protocol-contract tier.
//
// The protocol analyzers (handleridem, statemach) need a question the
// AST alone cannot answer: "is this statement protected by a branch on
// some condition?" — where the protection can be AST nesting
// (`if !dup { m[k] = v }`) or an early exit (`if dup { return };
// m[k] = v`). Both are the same property on a control-flow graph: a
// dominating branch block with at least one outgoing edge that cannot
// reach the statement without coming back through the branch.
//
// So this file builds, per function body:
//
//   - a statement-level CFG (Flow/FlowBlock) with labeled out-edges
//     recording which condition outcome each edge represents,
//   - dominators over that graph (iterative dataflow on reverse
//     postorder; the graph is tiny — one node per basic block of one
//     function — so the textbook algorithm is plenty),
//   - the guard query above (Flow.Guards), and
//   - def-use chains (BuildDefUse) for the state-machine analyzer.
//
// Deliberate simplifications, safe for "is there a guard" questions
// because they only ever add edges (making guards harder, never easier,
// to prove): goto branches to the function exit; panic calls terminate
// their block into the exit; defer/go statements are ordinary nodes.

// An EdgeKind labels which outcome of a branching block an edge
// represents, so analyzers can reason about guard polarity.
type EdgeKind int

const (
	// EdgeAlways is an unconditional edge.
	EdgeAlways EdgeKind = iota
	// EdgeTrue is taken when the block's Cond evaluates true (if/for
	// bodies, range iterations).
	EdgeTrue
	// EdgeFalse is taken when the block's Cond evaluates false (else
	// branches, loop exits).
	EdgeFalse
	// EdgeCase is taken when a switch/type-switch/select clause
	// matches; Clause carries the clause.
	EdgeCase
	// EdgeNoCase is taken when no case of a default-less switch
	// matches.
	EdgeNoCase
)

// A FlowEdge is one control-flow successor edge.
type FlowEdge struct {
	To   *FlowBlock
	Kind EdgeKind
	// Clause is the matched *ast.CaseClause or *ast.CommClause for
	// EdgeCase edges, nil otherwise.
	Clause ast.Stmt
}

// A FlowBlock is one basic block: a maximal run of straight-line
// statements followed by at most one branching construct.
type FlowBlock struct {
	// Index is the block's position in Flow.Blocks.
	Index int
	// Nodes are the non-branching statements executed in order. The
	// branching statement itself (if/for/switch/select head) is not a
	// node; its condition lives in Cond.
	Nodes []ast.Node
	// Cond is the branch condition evaluated at the end of the block:
	// the if/for condition, the switch tag (nil for a bare switch),
	// the type-switch operand, or the ranged expression. Nil for
	// unconditional blocks.
	Cond ast.Expr
	// Succs are the outgoing edges in source order.
	Succs []FlowEdge

	preds []*FlowBlock
	idom  *FlowBlock
	order int // reverse-postorder number; -1 when unreachable
}

// A Flow is the control-flow graph of one function body.
type Flow struct {
	Entry  *FlowBlock
	Exit   *FlowBlock
	Blocks []*FlowBlock

	blockOf map[ast.Node]*FlowBlock
}

// flowBuilder carries the state of one BuildFlow run.
type flowBuilder struct {
	flow *Flow
	cur  *FlowBlock
	// breakTo/continueTo are the innermost targets; labels maps label
	// names to their loop's targets for labeled break/continue.
	breakTo    []*FlowBlock
	continueTo []*FlowBlock
	labels     map[string]*labelTargets
	// nextCase is the fallthrough target while building a case body.
	nextCase *FlowBlock
}

type labelTargets struct {
	brk, cont *FlowBlock
}

// BuildFlow constructs the control-flow graph of one function body.
func BuildFlow(body *ast.BlockStmt) *Flow {
	f := &Flow{blockOf: make(map[ast.Node]*FlowBlock)}
	b := &flowBuilder{flow: f, labels: make(map[string]*labelTargets)}
	f.Entry = b.newBlock()
	f.Exit = b.newBlock()
	b.cur = f.Entry
	b.stmts(body.List)
	b.edge(b.cur, f.Exit, EdgeAlways, nil)
	f.computeDominators()
	return f
}

func (b *flowBuilder) newBlock() *FlowBlock {
	blk := &FlowBlock{Index: len(b.flow.Blocks), order: -1}
	b.flow.Blocks = append(b.flow.Blocks, blk)
	return blk
}

func (b *flowBuilder) edge(from, to *FlowBlock, kind EdgeKind, clause ast.Stmt) {
	from.Succs = append(from.Succs, FlowEdge{To: to, Kind: kind, Clause: clause})
	to.preds = append(to.preds, from)
}

// add records a straight-line statement in the current block.
func (b *flowBuilder) add(n ast.Node) {
	b.cur.Nodes = append(b.cur.Nodes, n)
	b.flow.blockOf[n] = b.cur
}

// terminate ends the current block with an edge to target and starts a
// fresh (initially unreachable) block for any dead code that follows.
func (b *flowBuilder) terminate(target *FlowBlock, kind EdgeKind) {
	b.edge(b.cur, target, kind, nil)
	b.cur = b.newBlock()
}

func (b *flowBuilder) stmts(list []ast.Stmt) {
	for _, s := range list {
		b.stmt(s)
	}
}

func (b *flowBuilder) stmt(s ast.Stmt) {
	switch s := s.(type) {
	case *ast.BlockStmt:
		b.stmts(s.List)

	case *ast.ReturnStmt:
		b.add(s)
		b.terminate(b.flow.Exit, EdgeAlways)

	case *ast.ExprStmt:
		b.add(s)
		if call, ok := ast.Unparen(s.X).(*ast.CallExpr); ok {
			if id, ok := ast.Unparen(call.Fun).(*ast.Ident); ok && id.Name == "panic" {
				b.terminate(b.flow.Exit, EdgeAlways)
			}
		}

	case *ast.IfStmt:
		if s.Init != nil {
			b.add(s.Init)
		}
		head := b.cur
		head.Cond = s.Cond
		then := b.newBlock()
		join := b.newBlock()
		b.edge(head, then, EdgeTrue, nil)
		b.cur = then
		b.stmts(s.Body.List)
		b.edge(b.cur, join, EdgeAlways, nil)
		if s.Else != nil {
			els := b.newBlock()
			b.edge(head, els, EdgeFalse, nil)
			b.cur = els
			b.stmt(s.Else)
			b.edge(b.cur, join, EdgeAlways, nil)
		} else {
			b.edge(head, join, EdgeFalse, nil)
		}
		b.cur = join

	case *ast.ForStmt:
		if s.Init != nil {
			b.add(s.Init)
		}
		head := b.newBlock()
		body := b.newBlock()
		post := b.newBlock()
		after := b.newBlock()
		b.edge(b.cur, head, EdgeAlways, nil)
		head.Cond = s.Cond
		b.edge(head, body, EdgeTrue, nil)
		if s.Cond != nil {
			b.edge(head, after, EdgeFalse, nil)
		}
		b.pushLoop(s, after, post)
		b.cur = body
		b.stmts(s.Body.List)
		b.popLoop()
		b.edge(b.cur, post, EdgeAlways, nil)
		b.cur = post
		if s.Post != nil {
			b.add(s.Post)
		}
		b.edge(b.cur, head, EdgeAlways, nil)
		b.cur = after

	case *ast.RangeStmt:
		head := b.newBlock()
		body := b.newBlock()
		after := b.newBlock()
		b.edge(b.cur, head, EdgeAlways, nil)
		head.Cond = s.X
		head.Nodes = append(head.Nodes, s)
		b.flow.blockOf[s] = head
		b.edge(head, body, EdgeTrue, nil)
		b.edge(head, after, EdgeFalse, nil)
		b.pushLoop(s, after, head)
		b.cur = body
		b.stmts(s.Body.List)
		b.popLoop()
		b.edge(b.cur, head, EdgeAlways, nil)
		b.cur = after

	case *ast.SwitchStmt:
		if s.Init != nil {
			b.add(s.Init)
		}
		head := b.cur
		head.Cond = s.Tag
		b.switchClauses(s, head, s.Body.List)

	case *ast.TypeSwitchStmt:
		if s.Init != nil {
			b.add(s.Init)
		}
		head := b.cur
		head.Cond = typeSwitchOperand(s)
		b.add(s.Assign)
		b.switchClauses(s, head, s.Body.List)

	case *ast.SelectStmt:
		head := b.cur
		b.switchClauses(s, head, s.Body.List)

	case *ast.BranchStmt:
		b.add(s)
		switch s.Tok {
		case token.BREAK:
			if t := b.branchTarget(s.Label, true); t != nil {
				b.terminate(t, EdgeAlways)
			} else {
				b.terminate(b.flow.Exit, EdgeAlways)
			}
		case token.CONTINUE:
			if t := b.branchTarget(s.Label, false); t != nil {
				b.terminate(t, EdgeAlways)
			} else {
				b.terminate(b.flow.Exit, EdgeAlways)
			}
		case token.FALLTHROUGH:
			if b.nextCase != nil {
				b.terminate(b.nextCase, EdgeAlways)
			}
		case token.GOTO:
			// Conservative: a goto may reach anywhere, so route it to
			// the exit; guards are never *proved* by this edge.
			b.terminate(b.flow.Exit, EdgeAlways)
		}

	case *ast.LabeledStmt:
		// Pre-register the label so break/continue inside the labeled
		// loop resolve; non-loop labeled statements just pass through.
		switch inner := s.Stmt.(type) {
		case *ast.ForStmt, *ast.RangeStmt:
			b.labels[s.Label.Name] = &labelTargets{}
			b.stmt(inner.(ast.Stmt))
		default:
			b.stmt(s.Stmt)
		}

	default:
		// Assignments, declarations, inc/dec, send, defer, go, empty.
		b.add(s)
	}
}

// switchClauses builds the clause blocks of a switch, type switch, or
// select: head gets one EdgeCase edge per clause (plus EdgeNoCase when
// there is no default), and every clause body flows into a shared join.
func (b *flowBuilder) switchClauses(sw ast.Stmt, head *FlowBlock, clauses []ast.Stmt) {
	join := b.newBlock()
	blocks := make([]*FlowBlock, len(clauses))
	hasDefault := false
	for i, c := range clauses {
		blocks[i] = b.newBlock()
		b.edge(head, blocks[i], EdgeCase, c)
		if isDefaultClause(c) {
			hasDefault = true
		}
	}
	if !hasDefault {
		b.edge(head, join, EdgeNoCase, nil)
	}
	b.breakTo = append(b.breakTo, join)
	b.continueTo = append(b.continueTo, nil)
	savedNext := b.nextCase
	for i, c := range clauses {
		b.cur = blocks[i]
		if i+1 < len(blocks) {
			b.nextCase = blocks[i+1]
		} else {
			b.nextCase = nil
		}
		b.stmts(clauseBody(c))
		b.edge(b.cur, join, EdgeAlways, nil)
	}
	b.nextCase = savedNext
	b.breakTo = b.breakTo[:len(b.breakTo)-1]
	b.continueTo = b.continueTo[:len(b.continueTo)-1]
	b.cur = join
	_ = sw
}

func (b *flowBuilder) pushLoop(s ast.Stmt, brk, cont *FlowBlock) {
	b.breakTo = append(b.breakTo, brk)
	b.continueTo = append(b.continueTo, cont)
	// If this loop is the body of a labeled statement registered just
	// before, bind the label's targets now.
	for _, lt := range b.labels {
		if lt.brk == nil && lt.cont == nil {
			lt.brk, lt.cont = brk, cont
		}
	}
	_ = s
}

func (b *flowBuilder) popLoop() {
	b.breakTo = b.breakTo[:len(b.breakTo)-1]
	b.continueTo = b.continueTo[:len(b.continueTo)-1]
}

// branchTarget resolves a break (brk=true) or continue target, walking
// past select/switch frames (whose continueTo is nil) for continue.
func (b *flowBuilder) branchTarget(label *ast.Ident, brk bool) *FlowBlock {
	if label != nil {
		if lt := b.labels[label.Name]; lt != nil {
			if brk {
				return lt.brk
			}
			return lt.cont
		}
		return nil
	}
	if brk {
		if n := len(b.breakTo); n > 0 {
			return b.breakTo[n-1]
		}
		return nil
	}
	for i := len(b.continueTo) - 1; i >= 0; i-- {
		if b.continueTo[i] != nil {
			return b.continueTo[i]
		}
	}
	return nil
}

func isDefaultClause(c ast.Stmt) bool {
	switch c := c.(type) {
	case *ast.CaseClause:
		return c.List == nil
	case *ast.CommClause:
		return c.Comm == nil
	}
	return false
}

func clauseBody(c ast.Stmt) []ast.Stmt {
	switch c := c.(type) {
	case *ast.CaseClause:
		return c.Body
	case *ast.CommClause:
		return c.Body
	}
	return nil
}

// typeSwitchOperand extracts the switched expression of a type switch
// (`switch v := x.(type)` or `switch x.(type)`).
func typeSwitchOperand(s *ast.TypeSwitchStmt) ast.Expr {
	var e ast.Expr
	switch a := s.Assign.(type) {
	case *ast.AssignStmt:
		e = a.Rhs[0]
	case *ast.ExprStmt:
		e = a.X
	}
	if ta, ok := ast.Unparen(e).(*ast.TypeAssertExpr); ok {
		return ta.X
	}
	return e
}

// --- Dominators. ---

// computeDominators runs the iterative dominator algorithm (Cooper,
// Harvey & Kennedy) over the reachable blocks in reverse postorder.
func (f *Flow) computeDominators() {
	// Reverse postorder over successor edges from Entry.
	var post []*FlowBlock
	seen := make([]bool, len(f.Blocks))
	var dfs func(b *FlowBlock)
	dfs = func(b *FlowBlock) {
		seen[b.Index] = true
		for _, e := range b.Succs {
			if !seen[e.To.Index] {
				dfs(e.To)
			}
		}
		post = append(post, b)
	}
	dfs(f.Entry)
	rpo := make([]*FlowBlock, 0, len(post))
	for i := len(post) - 1; i >= 0; i-- {
		post[i].order = len(rpo)
		rpo = append(rpo, post[i])
	}

	intersect := func(a, b *FlowBlock) *FlowBlock {
		for a != b {
			for a.order > b.order {
				a = a.idom
			}
			for b.order > a.order {
				b = b.idom
			}
		}
		return a
	}

	f.Entry.idom = f.Entry
	for changed := true; changed; {
		changed = false
		for _, b := range rpo[1:] {
			var idom *FlowBlock
			for _, p := range b.preds {
				if p.order < 0 || p.idom == nil {
					continue // unreachable predecessor
				}
				if idom == nil {
					idom = p
				} else {
					idom = intersect(idom, p)
				}
			}
			if idom != nil && b.idom != idom {
				b.idom = idom
				changed = true
			}
		}
	}
}

// Dominates reports whether a dominates b (reflexively).
func (f *Flow) Dominates(a, b *FlowBlock) bool {
	if a.order < 0 || b.order < 0 {
		return false
	}
	for {
		if b == a {
			return true
		}
		if b == f.Entry || b.idom == nil {
			return false
		}
		b = b.idom
	}
}

// BlockOf returns the block holding the statement n was recorded in,
// nil if n is not a recorded node (e.g. it is nested inside another
// statement — callers should pass the enclosing statement).
func (f *Flow) BlockOf(n ast.Node) *FlowBlock {
	return f.blockOf[n]
}

// A Guard is one branching block that stands between the function entry
// and a guarded block: the branch dominates the block, and at least one
// of its outcomes cannot reach the block (without re-traversing the
// branch), so the condition genuinely decides whether the block runs.
type Guard struct {
	// Block is the branching block.
	Block *FlowBlock
	// Cond is Block.Cond (may be nil for bare switch/select heads).
	Cond ast.Expr
	// Taken are the out-edges of Block that lead to the guarded block;
	// their kinds give the polarity under which the block executes.
	Taken []FlowEdge
}

// Guards returns every guard of block b, innermost last.
func (f *Flow) Guards(b *FlowBlock) []Guard {
	if b == nil || b.order < 0 {
		return nil
	}
	var out []Guard
	for _, d := range f.Blocks {
		if d == b || len(d.Succs) < 2 || !f.Dominates(d, b) {
			continue
		}
		var taken []FlowEdge
		skips := false
		for _, e := range d.Succs {
			if f.reachesAvoiding(e.To, b, d) {
				taken = append(taken, e)
			} else {
				skips = true
			}
		}
		if skips && len(taken) > 0 {
			out = append(out, Guard{Block: d, Cond: d.Cond, Taken: taken})
		}
	}
	// Innermost (highest rpo order) last.
	for i := 0; i < len(out); i++ {
		for j := i + 1; j < len(out); j++ {
			if out[i].Block.order > out[j].Block.order {
				out[i], out[j] = out[j], out[i]
			}
		}
	}
	return out
}

// reachesAvoiding reports whether target is reachable from start
// without passing through avoid. Loops make plain reachability useless
// for guard queries (the back edge reaches everything); excluding the
// branch block itself asks the right question — "can this outcome reach
// the statement before control re-evaluates the condition?".
func (f *Flow) reachesAvoiding(start, target, avoid *FlowBlock) bool {
	if start == avoid {
		return false
	}
	if start == target {
		return true
	}
	seen := make([]bool, len(f.Blocks))
	stack := []*FlowBlock{start}
	seen[start.Index] = true
	for len(stack) > 0 {
		b := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		for _, e := range b.Succs {
			n := e.To
			if n == avoid || seen[n.Index] {
				continue
			}
			if n == target {
				return true
			}
			seen[n.Index] = true
			stack = append(stack, n)
		}
	}
	return false
}

// --- Def-use chains. ---

// A DefUse indexes, for one function body, which identifiers write and
// which read each types.Object.
type DefUse struct {
	// Defs maps an object to the statements that assign it (including
	// its declaration, := and =, inc/dec, and range key/value).
	Defs map[types.Object][]ast.Node
	// Uses maps an object to the identifiers that read it.
	Uses map[types.Object][]*ast.Ident
}

// BuildDefUse walks body (skipping nested function literals) and
// classifies every resolved identifier as a definition or a use.
func BuildDefUse(info *types.Info, body *ast.BlockStmt) *DefUse {
	du := &DefUse{
		Defs: make(map[types.Object][]ast.Node),
		Uses: make(map[types.Object][]*ast.Ident),
	}
	written := make(map[*ast.Ident]ast.Node)
	markLHS := func(e ast.Expr, at ast.Node) {
		if id, ok := ast.Unparen(e).(*ast.Ident); ok {
			written[id] = at
		}
	}
	inspectSkipNestedFuncs(body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.AssignStmt:
			for _, lhs := range n.Lhs {
				markLHS(lhs, n)
			}
		case *ast.IncDecStmt:
			markLHS(n.X, n)
		case *ast.RangeStmt:
			markLHS(n.Key, n)
			markLHS(n.Value, n)
		}
		return true
	})
	inspectSkipNestedFuncs(body, func(n ast.Node) bool {
		id, ok := n.(*ast.Ident)
		if !ok {
			return true
		}
		if obj := info.Defs[id]; obj != nil {
			du.Defs[obj] = append(du.Defs[obj], id)
			return true
		}
		obj := info.Uses[id]
		if obj == nil {
			return true
		}
		if at, w := written[id]; w {
			du.Defs[obj] = append(du.Defs[obj], at)
		} else {
			du.Uses[obj] = append(du.Uses[obj], id)
		}
		return true
	})
	return du
}
