package lint

import (
	"fmt"
	"go/ast"
	"go/types"
	"strings"
)

// CodecSym statically matches the encode and decode halves of every
// binary wire codec registered with rtnode.RegisterWireCodec.
//
// The hand-rolled codec (rtnode/codec.go) exists because gob's
// per-message overhead is exactly the software cost the paper says
// kills fine-grain parallelism on a cluster — but unlike gob it is not
// self-describing: nothing at runtime checks that the field sequence
// Enc writes is the sequence Dec reads. A drifted pair (a field added
// to one side, a Varint read where a Uvarint was written, two fields
// swapped) does not fail loudly; it decodes the wrong bytes into the
// wrong fields and corrupts pages in flight. This analyzer recovers
// each half's wire shape — the ordered sequence of primitive reads or
// writes, with length-prefixed repetition, fixed-size array repetition,
// conditional segments, and the EncodeAny/DecodeAny gob escape hatch —
// by walking the registered functions and, interprocedurally, the
// same-package helpers they call (encPageData, decTask, ...), then
// requires the two shapes to match op for op: count, order, and width.
//
// Varint and Uvarint are distinct widths (zig-zag changes the bit
// layout); Bytes and String are interchangeable (identical
// length-prefixed framing). Branches whose arms carry no wire
// operations — decoder bounds guards, nil-normalization — are ignored;
// a branch that conditionally reads or writes matches the same ops
// unconditional or conditional on the other side (presence is a runtime
// property the analyzer cannot see, but the op sequence still must
// agree). A codec that manipulates the raw buffer (Enc.B, Dec.Off)
// directly, calls an unknown function with the encoder in hand, or
// splits shapes across unequal branches is beyond the abstraction and
// is skipped rather than guessed at.
var CodecSym = &Analyzer{
	Name: "codecsym",
	Doc: "require the Enc and Dec halves of every registered binary wire codec to " +
		"read and write the same field sequence (count, order, and width)",
	Run: runCodecSym,
}

// wireOp is one primitive codec operation, identified by wire format.
type wireOp int

const (
	opNone    wireOp = iota
	opUvarint        // unsigned varint
	opVarint         // zig-zag varint
	opF64            // 8 fixed bytes
	opBool           // 1 byte
	opBytes          // uvarint length + raw bytes (Bytes and String)
	opAny            // nested EncodeAny/DecodeAny framing
)

func (o wireOp) String() string {
	switch o {
	case opUvarint:
		return "uvarint"
	case opVarint:
		return "varint"
	case opF64:
		return "f64"
	case opBool:
		return "bool"
	case opBytes:
		return "bytes"
	case opAny:
		return "any"
	}
	return "?"
}

// primOps maps Enc/Dec method names to their wire op. The two types
// deliberately mirror each other's method set.
var primOps = map[string]wireOp{
	"Uvarint": opUvarint,
	"Varint":  opVarint,
	"F64":     opF64,
	"Bool":    opBool,
	"Bytes":   opBytes,
	"String":  opBytes,
}

// A shapeNode is one element of a wire shape: a primitive op, a
// repeated sub-shape (loop), or a conditionally present sub-shape.
type shapeNode struct {
	op    wireOp
	loop  []shapeNode // non-nil: repeated body
	fixed int         // >0: loop over a fixed-size array of this length
	opt   []shapeNode // non-nil: conditionally present segment
	label string      // optional field name (WIRE.lock manifests only)
}

func renderShape(s []shapeNode) string {
	var b strings.Builder
	for i, n := range s {
		if i > 0 {
			b.WriteByte(' ')
		}
		switch {
		case n.loop != nil:
			if n.fixed > 0 {
				fmt.Fprintf(&b, "%d×[%s]", n.fixed, renderShape(n.loop))
			} else {
				fmt.Fprintf(&b, "×[%s]", renderShape(n.loop))
			}
		case n.opt != nil:
			fmt.Fprintf(&b, "?(%s)", renderShape(n.opt))
		default:
			b.WriteString(n.op.String())
			if n.label != "" {
				b.WriteByte(':')
				b.WriteString(n.label)
			}
		}
	}
	return b.String()
}

func runCodecSym(pass *Pass) {
	decls := funcDecls(pass.Files, pass.Info)
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			obj := useOf(pass.Info, call.Fun)
			if !isPkgObj(obj, "filaments/internal/rtnode", "RegisterWireCodec") || len(call.Args) != 4 {
				return true
			}
			checkCodecPair(pass, decls, call)
			return true
		})
	}
}

func checkCodecPair(pass *Pass, decls map[*types.Func]*ast.FuncDecl, call *ast.CallExpr) {
	protoName := "?"
	if tv, ok := pass.Info.Types[ast.Unparen(call.Args[0])]; ok && tv.Type != nil {
		protoName = types.TypeString(tv.Type, types.RelativeTo(pass.Pkg))
	}
	tag := "?"
	if tv, ok := pass.Info.Types[call.Args[1]]; ok && tv.Value != nil {
		tag = tv.Value.String()
	}

	encX := &shapeExtractor{info: pass.Info, decls: decls}
	enc := encX.fromExpr(call.Args[2])
	decX := &shapeExtractor{info: pass.Info, decls: decls}
	dec := decX.fromExpr(call.Args[3])
	if encX.opaque || decX.opaque {
		return // beyond the wire-shape abstraction; see the analyzer doc
	}
	if why := matchShapes(enc, dec); why != "" {
		pass.Reportf(call.Args[3].Pos(),
			"wire codec for %s (tag %s) is asymmetric: Enc writes [%s] but Dec reads [%s] — %s; a drifted codec corrupts this payload on the wire",
			protoName, tag, renderShape(enc), renderShape(dec), why)
	}
}

// --- Shape extraction. ---

type shapeExtractor struct {
	info  *types.Info
	decls map[*types.Func]*ast.FuncDecl
	stack []*types.Func // inlining chain, for cycle detection
	// labels: record the encoded field's name on each primitive op
	// (best effort, from the argument expression), for the WIRE.lock
	// manifest — a same-width field reorder then still changes the
	// rendered shape.
	labels bool
	opaque bool
}

// fromExpr extracts the shape of a codec function expression: a literal
// or a reference to a same-package declaration.
func (x *shapeExtractor) fromExpr(fn ast.Expr) []shapeNode {
	switch e := ast.Unparen(fn).(type) {
	case *ast.FuncLit:
		return x.stmts(e.Body.List)
	default:
		if callee, ok := useOf(x.info, e).(*types.Func); ok {
			return x.inline(callee)
		}
	}
	x.opaque = true
	return nil
}

// inline extracts the shape of a called same-package function body.
func (x *shapeExtractor) inline(fn *types.Func) []shapeNode {
	fd, ok := x.decls[fn]
	if !ok {
		x.opaque = true // no body in this package; could hide wire ops
		return nil
	}
	for _, f := range x.stack {
		if f == fn {
			x.opaque = true // recursive codec; no finite shape
			return nil
		}
	}
	x.stack = append(x.stack, fn)
	s := x.stmts(fd.Body.List)
	x.stack = x.stack[:len(x.stack)-1]
	return s
}

func (x *shapeExtractor) stmts(list []ast.Stmt) []shapeNode {
	var out []shapeNode
	for _, s := range list {
		out = append(out, x.stmt(s)...)
		if x.opaque {
			return nil
		}
	}
	return out
}

func (x *shapeExtractor) stmt(s ast.Stmt) []shapeNode {
	switch s := s.(type) {
	case nil:
		return nil
	case *ast.ExprStmt:
		return x.expr(s.X)
	case *ast.AssignStmt:
		var out []shapeNode
		for _, r := range s.Rhs {
			out = append(out, x.expr(r)...)
		}
		for _, l := range s.Lhs {
			// Index/selector targets can hold ops (rare) and raw
			// buffer stores (opaque); plain idents cannot.
			if _, ok := ast.Unparen(l).(*ast.Ident); !ok {
				out = append(out, x.expr(l)...)
			}
		}
		return out
	case *ast.DeclStmt:
		gd, ok := s.Decl.(*ast.GenDecl)
		if !ok {
			return nil
		}
		var out []shapeNode
		for _, spec := range gd.Specs {
			if vs, ok := spec.(*ast.ValueSpec); ok {
				for _, v := range vs.Values {
					out = append(out, x.expr(v)...)
				}
			}
		}
		return out
	case *ast.ReturnStmt:
		var out []shapeNode
		for _, r := range s.Results {
			out = append(out, x.expr(r)...)
		}
		return out
	case *ast.IfStmt:
		out := x.stmt(s.Init)
		out = append(out, x.expr(s.Cond)...)
		thenS := x.stmts(s.Body.List)
		var elseS []shapeNode
		if s.Else != nil {
			elseS = x.stmt(s.Else)
		}
		switch {
		case len(thenS) == 0 && len(elseS) == 0:
			// Bounds guards, Fail() arms, normalization: no wire ops.
			return out
		case len(elseS) == 0:
			return append(out, shapeNode{opt: thenS})
		case len(thenS) == 0:
			return append(out, shapeNode{opt: elseS})
		case matchShapes(thenS, elseS) == "":
			return append(out, thenS...)
		}
		x.opaque = true // branch-dependent wire shape
		return nil
	case *ast.BlockStmt:
		return x.stmts(s.List)
	case *ast.ForStmt:
		out := x.stmt(s.Init)
		out = append(out, x.expr(s.Cond)...)
		out = append(out, x.stmt(s.Post)...)
		if body := x.stmts(s.Body.List); len(body) > 0 {
			out = append(out, shapeNode{loop: body})
		}
		return out
	case *ast.RangeStmt:
		out := x.expr(s.X)
		if body := x.stmts(s.Body.List); len(body) > 0 {
			out = append(out, shapeNode{loop: body, fixed: x.rangeLen(s.X)})
		}
		return out
	case *ast.SwitchStmt, *ast.TypeSwitchStmt, *ast.SelectStmt:
		// Multi-way shape divergence is beyond the abstraction; only
		// op-free switches pass.
		if x.containsOps(s) {
			x.opaque = true
			return nil
		}
		return nil
	case *ast.DeferStmt, *ast.GoStmt:
		// Ops deferred or spawned run out of sequence.
		if x.containsOps(s) {
			x.opaque = true
		}
		return nil
	case *ast.BranchStmt, *ast.IncDecStmt, *ast.EmptyStmt:
		return nil
	case *ast.LabeledStmt:
		return x.stmt(s.Stmt)
	case *ast.SendStmt:
		return append(x.expr(s.Chan), x.expr(s.Value)...)
	default:
		if x.containsOps(s) {
			x.opaque = true
		}
		return nil
	}
}

// expr collects the wire ops an expression performs, in evaluation
// order.
func (x *shapeExtractor) expr(e ast.Expr) []shapeNode {
	switch e := e.(type) {
	case nil:
		return nil
	case *ast.CallExpr:
		return x.call(e)
	case *ast.ParenExpr:
		return x.expr(e.X)
	case *ast.UnaryExpr:
		return x.expr(e.X)
	case *ast.BinaryExpr:
		return append(x.expr(e.X), x.expr(e.Y)...)
	case *ast.SelectorExpr:
		// Direct access to the raw codec state (Enc.B, Dec.Off) moves
		// the stream without a recognizable op.
		if x.isCodecRecv(e.X) && (e.Sel.Name == "B" || e.Sel.Name == "Off") {
			x.opaque = true
			return nil
		}
		return x.expr(e.X)
	case *ast.IndexExpr:
		return append(x.expr(e.X), x.expr(e.Index)...)
	case *ast.SliceExpr:
		out := x.expr(e.X)
		out = append(out, x.expr(e.Low)...)
		out = append(out, x.expr(e.High)...)
		return append(out, x.expr(e.Max)...)
	case *ast.StarExpr:
		return x.expr(e.X)
	case *ast.TypeAssertExpr:
		return x.expr(e.X)
	case *ast.KeyValueExpr:
		return x.expr(e.Value)
	case *ast.CompositeLit:
		var out []shapeNode
		for _, elt := range e.Elts {
			out = append(out, x.expr(elt)...)
		}
		return out
	case *ast.FuncLit:
		if x.containsOps(e.Body) {
			x.opaque = true
		}
		return nil
	default:
		return nil
	}
}

// call handles one call: argument ops first (evaluation order), then
// the call itself — a primitive, the escape hatch, an inlined
// same-package helper, or an ignorable leaf.
func (x *shapeExtractor) call(c *ast.CallExpr) []shapeNode {
	var out []shapeNode
	for _, a := range c.Args {
		out = append(out, x.expr(a)...)
	}

	// Enc/Dec primitive method?
	if sel, ok := ast.Unparen(c.Fun).(*ast.SelectorExpr); ok && x.isCodecRecv(sel.X) {
		if op, ok := primOps[sel.Sel.Name]; ok {
			n := shapeNode{op: op}
			if x.labels && len(c.Args) > 0 {
				n.label = labelExpr(c.Args[0])
			}
			return append(out, n)
		}
		switch sel.Sel.Name {
		case "Fail", "Remaining", "Bad":
			return out
		}
		// An unknown method on the codec value (fixtures aside, there
		// are none) could do anything to the stream.
		x.opaque = true
		return nil
	}

	obj := useOf(x.info, c.Fun)
	switch {
	case isPkgObj(obj, "filaments/internal/rtnode", "EncodeAny"),
		isPkgObj(obj, "filaments/internal/rtnode", "DecodeAny"):
		return append(out, shapeNode{op: opAny})
	}
	if fn, ok := obj.(*types.Func); ok {
		if _, local := x.decls[fn]; local {
			return append(out, x.inline(fn)...)
		}
		// A foreign callee handed the live Enc/Dec can move the stream
		// invisibly; anything else cannot touch it.
		for _, a := range c.Args {
			if tv, ok := x.info.Types[a]; ok && (isPkgType(tv.Type, "filaments/internal/rtnode", "Enc") || isPkgType(tv.Type, "filaments/internal/rtnode", "Dec")) {
				x.opaque = true
				return nil
			}
		}
	}
	return out
}

// isCodecRecv reports whether e is a value of type rtnode.Enc or
// rtnode.Dec (possibly behind a pointer).
func (x *shapeExtractor) isCodecRecv(e ast.Expr) bool {
	tv, ok := x.info.Types[e]
	if !ok {
		return false
	}
	return isPkgType(tv.Type, "filaments/internal/rtnode", "Enc") ||
		isPkgType(tv.Type, "filaments/internal/rtnode", "Dec")
}

// rangeLen returns the length of e's type when ranging over it repeats
// the body a fixed number of times (an array), else 0.
func (x *shapeExtractor) rangeLen(e ast.Expr) int {
	tv, ok := x.info.Types[e]
	if !ok || tv.Type == nil {
		return 0
	}
	t := tv.Type.Underlying()
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem().Underlying()
	}
	if arr, ok := t.(*types.Array); ok {
		return int(arr.Len())
	}
	return 0
}

// containsOps reports whether any recognizable wire op appears under n
// (used to decide whether an unmodelled construct can be ignored).
func (x *shapeExtractor) containsOps(n ast.Node) bool {
	found := false
	ast.Inspect(n, func(m ast.Node) bool {
		call, ok := m.(*ast.CallExpr)
		if !ok {
			return true
		}
		if sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr); ok && x.isCodecRecv(sel.X) {
			if _, isOp := primOps[sel.Sel.Name]; isOp {
				found = true
				return false
			}
		}
		obj := useOf(x.info, call.Fun)
		if isPkgObj(obj, "filaments/internal/rtnode", "EncodeAny") || isPkgObj(obj, "filaments/internal/rtnode", "DecodeAny") {
			found = true
			return false
		}
		if fn, ok := obj.(*types.Func); ok {
			if fd, local := x.decls[fn]; local {
				// One level of indirection is enough for the guards
				// this is used on; recursion is cycle-checked in
				// inline, not here.
				if x.containsOps(fd.Body) {
					found = true
					return false
				}
			}
		}
		return true
	})
	return found
}

// --- Shape matching. ---

// matchShapes reports "" when enc and dec agree, or a human-readable
// first point of divergence.
func matchShapes(enc, dec []shapeNode) string {
	return matchSeq(enc, dec, 1)
}

// matchSeq matches two shape sequences; step numbers ops for messages.
func matchSeq(a, b []shapeNode, step int) string {
	switch {
	case len(a) == 0 && len(b) == 0:
		return ""
	case len(a) > 0 && a[0].opt != nil:
		// A conditional segment must match the other side's ops when
		// taken; presence itself is a runtime property.
		if why := matchSeq(append(append([]shapeNode{}, a[0].opt...), a[1:]...), b, step); why == "" {
			return ""
		}
		return matchSeq(a[1:], b, step)
	case len(b) > 0 && b[0].opt != nil:
		if why := matchSeq(a, append(append([]shapeNode{}, b[0].opt...), b[1:]...), step); why == "" {
			return ""
		}
		return matchSeq(a, b[1:], step)
	case len(a) == 0:
		return fmt.Sprintf("Dec reads %d op(s) past the end of the encoding (first extra: %s)", len(b), renderShape(b[:1]))
	case len(b) == 0:
		return fmt.Sprintf("Enc writes %d op(s) Dec never reads (first unread: %s)", len(a), renderShape(a[:1]))
	}
	an, bn := a[0], b[0]
	switch {
	case an.loop != nil && bn.loop != nil:
		if an.fixed != bn.fixed {
			return fmt.Sprintf("step %d: Enc repeats %s but Dec repeats %s", step, loopCount(an), loopCount(bn))
		}
		if why := matchSeq(an.loop, bn.loop, 1); why != "" {
			return fmt.Sprintf("step %d, inside the repeated segment: %s", step, why)
		}
	case an.loop != nil:
		return fmt.Sprintf("step %d: Enc writes a repeated segment [%s] but Dec reads %s", step, renderShape(an.loop), bn.op)
	case bn.loop != nil:
		return fmt.Sprintf("step %d: Enc writes %s but Dec reads a repeated segment [%s]", step, an.op, renderShape(bn.loop))
	case an.op != bn.op:
		return fmt.Sprintf("step %d: Enc writes %s but Dec reads %s", step, an.op, bn.op)
	}
	return matchSeq(a[1:], b[1:], step+1)
}

func loopCount(n shapeNode) string {
	if n.fixed > 0 {
		return fmt.Sprintf("a fixed-size array of %d", n.fixed)
	}
	return "a counted sequence"
}

// labelExpr renders the field name an encoder argument names: the final
// selector of m.Gen, through conversions like uint64(m.Gen). Best
// effort; unknown shapes label as "".
func labelExpr(e ast.Expr) string {
	switch e := ast.Unparen(e).(type) {
	case *ast.Ident:
		return e.Name
	case *ast.SelectorExpr:
		return e.Sel.Name
	case *ast.IndexExpr:
		return labelExpr(e.X)
	case *ast.StarExpr:
		return labelExpr(e.X)
	case *ast.CallExpr:
		if len(e.Args) == 1 {
			return labelExpr(e.Args[0])
		}
	case *ast.SliceExpr:
		return labelExpr(e.X)
	}
	return ""
}
