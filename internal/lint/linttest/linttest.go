// Package linttest runs dflint analyzers over fixture packages and
// checks their diagnostics against expectations written in the fixtures
// themselves, in the style of x/tools' analysistest:
//
//	time.Sleep(0) // want `time\.Sleep in kernel-layer code`
//
// Fixtures live under a source root (testdata/src in the lint package's
// tests) laid out as one directory per import path. Imports resolve
// inside the same tree, so fixtures depend on small fake copies of time,
// sync, encoding/gob, kernel, and rtnode rather than on the real
// packages — the analyzers accept a bare final import-path element
// ("kernel") precisely so these hermetic fakes exercise them.
package linttest

import (
	"go/ast"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"regexp"
	"strings"
	"testing"

	"filaments/internal/lint"
)

// wantRE extracts `// want "regexp"` expectations. The capture is used as
// a regular expression verbatim (no string unquoting), so fixtures write
// `\[` for a literal bracket and cannot contain a double quote.
var wantRE = regexp.MustCompile(`// want "([^"]*)"`)

// Run loads the fixture package at srcRoot/pkgPath, applies the
// analyzers, and reports any mismatch between produced diagnostics and
// the fixture's // want expectations as test errors.
func Run(t *testing.T, srcRoot, pkgPath string, analyzers ...*lint.Analyzer) {
	t.Helper()
	l := newLoader(srcRoot)
	pkg, err := l.Import(pkgPath)
	if err != nil {
		t.Fatalf("loading fixture %s: %v", pkgPath, err)
	}
	files := l.files[pkgPath]
	diags := lint.Run(analyzers, l.fset, files, pkg, l.infos[pkgPath])
	checkWants(t, l, files, diags)
}

// RunProgram loads the fixture packages at srcRoot/pkgPaths[i] into one
// shared Program (a common FileSet and importer, so types.Object
// identities span the packages exactly as under cmd/dflint's standalone
// loader), applies the whole-program analyzers, and checks // want
// expectations across all listed packages.
func RunProgram(t *testing.T, srcRoot string, pkgPaths []string, analyzers ...*lint.ProgramAnalyzer) {
	t.Helper()
	l := newLoader(srcRoot)
	prog := &lint.Program{Fset: l.fset}
	var all []*ast.File
	for _, path := range pkgPaths {
		pkg, err := l.Import(path)
		if err != nil {
			t.Fatalf("loading fixture %s: %v", path, err)
		}
		prog.Units = append(prog.Units, &lint.Unit{
			Files: l.files[path],
			Pkg:   pkg,
			Info:  l.infos[path],
		})
		all = append(all, l.files[path]...)
	}
	diags := lint.RunProgram(analyzers, prog)
	checkWants(t, l, all, diags)
}

// checkWants matches produced diagnostics against the fixtures'
// // want expectations, reporting both unexpected and missing ones.
func checkWants(t *testing.T, l *loader, files []*ast.File, diags []lint.Diagnostic) {
	t.Helper()
	type key struct {
		file string
		line int
	}
	type want struct {
		re      *regexp.Regexp
		matched bool
	}
	wants := make(map[key][]*want)
	for _, f := range files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				for _, m := range wantRE.FindAllStringSubmatch(c.Text, -1) {
					re, err := regexp.Compile(m[1])
					if err != nil {
						t.Fatalf("bad want pattern %q: %v", m[1], err)
					}
					pos := l.fset.Position(c.Slash)
					k := key{pos.Filename, pos.Line}
					wants[k] = append(wants[k], &want{re: re})
				}
			}
		}
	}

	for _, d := range diags {
		k := key{d.Pos.Filename, d.Pos.Line}
		matched := false
		for _, w := range wants[k] {
			if !w.matched && w.re.MatchString(d.Message) {
				w.matched = true
				matched = true
				break
			}
		}
		if !matched {
			t.Errorf("unexpected diagnostic at %s: %s [%s]", d.Pos, d.Message, d.Analyzer)
		}
	}
	for k, ws := range wants {
		for _, w := range ws {
			if !w.matched {
				t.Errorf("%s:%d: no diagnostic matching %q", k.file, k.line, w.re)
			}
		}
	}
}

// loader type-checks fixture packages, resolving every import path to a
// directory under root.
type loader struct {
	fset  *token.FileSet
	root  string
	pkgs  map[string]*types.Package
	files map[string][]*ast.File
	infos map[string]*types.Info
}

func newLoader(root string) *loader {
	return &loader{
		fset:  token.NewFileSet(),
		root:  root,
		pkgs:  make(map[string]*types.Package),
		files: make(map[string][]*ast.File),
		infos: make(map[string]*types.Info),
	}
}

// Import implements types.Importer over the fixture tree; the type
// checker calls it re-entrantly for fixture dependencies.
func (l *loader) Import(path string) (*types.Package, error) {
	if p, ok := l.pkgs[path]; ok {
		return p, nil
	}
	dir := filepath.Join(l.root, filepath.FromSlash(path))
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	var files []*ast.File
	for _, e := range entries {
		if e.IsDir() || !strings.HasSuffix(e.Name(), ".go") {
			continue
		}
		f, err := parser.ParseFile(l.fset, filepath.Join(dir, e.Name()), nil, parser.ParseComments)
		if err != nil {
			return nil, err
		}
		files = append(files, f)
	}
	info := lint.NewInfo()
	conf := types.Config{Importer: l}
	pkg, err := conf.Check(path, l.fset, files, info)
	if err != nil {
		return nil, err
	}
	l.pkgs[path] = pkg
	l.files[path] = files
	l.infos[path] = info
	return pkg, nil
}
