package lint

import (
	"fmt"
	"go/ast"
	"go/constant"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// TagSpace owns the wire-tag namespace. The binary codec registry
// (rtnode.RegisterWireCodec) is written to by ten call sites across six
// packages, each claiming a small numeric tag; the runtime panics on a
// collision, but only when both packages happen to be linked into the
// same process — a daemon-only tag can silently collide with a
// bench-only tag for months. This analyzer sees the whole module at
// once:
//
//   - duplicate tags: two production registrations (tags below the
//     0x7F00 test base) claiming one tag for different types is an
//     error at the second site, whether or not any binary links both;
//
//   - codec coverage: a module-defined struct type passed as the
//     payload of Transport.Call, Send, RequestAsync, or RequestSized
//     must have a registered binary codec. Without one it silently
//     rides the gob escape hatch (tag 1), which works — at the
//     per-message cost the paper's Table 2 says kills fine-grain
//     parallelism, and invisibly to the WIRE.lock manifest.
//
// The third guarantee, wire-format *stability*, lives in the WIRE.lock
// manifest (WireTags/FormatWireLock/DiffWireLock, driven by
// cmd/dflint): tag → payload type → labeled field sequence, extracted
// from each registered encoder by codecsym's symbolic executor. CI
// diffs the checked-in manifest against the source of truth, so
// renumbering a tag or reordering two same-width fields — changes that
// type-check, pass every single-version test, and corrupt every
// mixed-version cluster — fail loudly. Regenerate deliberately with
// `dflint -fix-wirelock` after a reviewed protocol change.
var TagSpace = &ProgramAnalyzer{
	Name: "tagspace",
	Doc: "whole-module wire-tag map: no duplicate tags, every Transport payload " +
		"type reaches a registered binary codec, WIRE.lock drift detection",
	Run: runTagSpace,
}

// TagTestBase mirrors rtnode.TagTestBase: tags at or above it are
// per-test scratch space, excluded from the namespace checks and the
// manifest.
const tagTestBase = 0x7F00

// A wireReg is one RegisterWireCodec call site.
type wireReg struct {
	unit     *Unit
	call     *ast.CallExpr
	tag      uint64
	tagKnown bool
	typeKey  string // payload type, package-qualified
	pos      token.Position
	testFile bool
}

// collectRegistrations finds every RegisterWireCodec call in the
// program, deduplicated by position (test variants re-load files).
func collectWireRegs(prog *Program) []wireReg {
	var regs []wireReg
	seen := make(map[string]bool)
	for _, u := range prog.Units {
		for _, f := range u.Files {
			unit := u
			ast.Inspect(f, func(n ast.Node) bool {
				call, ok := n.(*ast.CallExpr)
				if !ok {
					return true
				}
				obj := useOf(unit.Info, call.Fun)
				if !isPkgObj(obj, "filaments/internal/rtnode", "RegisterWireCodec") || len(call.Args) != 4 {
					return true
				}
				pos := prog.Fset.Position(call.Pos())
				key := pos.String()
				if seen[key] {
					return true
				}
				seen[key] = true
				reg := wireReg{
					unit:     unit,
					call:     call,
					pos:      pos,
					testFile: strings.HasSuffix(pos.Filename, "_test.go"),
					typeKey:  payloadTypeKey(unit.Info, call.Args[0]),
				}
				if tv, ok := unit.Info.Types[call.Args[1]]; ok && tv.Value != nil {
					if v, exact := constant.Uint64Val(constant.ToInt(tv.Value)); exact {
						reg.tag = v
						reg.tagKnown = true
					}
				}
				regs = append(regs, reg)
				return true
			})
		}
	}
	sort.Slice(regs, func(i, j int) bool {
		if regs[i].tag != regs[j].tag {
			return regs[i].tag < regs[j].tag
		}
		return regs[i].pos.String() < regs[j].pos.String()
	})
	return regs
}

// payloadTypeKey renders the static type of a payload or prototype
// expression as a stable, package-qualified key ("dsm.pageData",
// "[][]float64"). Pointers are dereferenced: codecs encode the value.
func payloadTypeKey(info *types.Info, e ast.Expr) string {
	tv, ok := info.Types[ast.Unparen(e)]
	if !ok || tv.Type == nil {
		return "?"
	}
	return typeKeyOf(tv.Type)
}

func typeKeyOf(t types.Type) string {
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	return types.TypeString(t, func(p *types.Package) string { return p.Name() })
}

func runTagSpace(pass *ProgramPass) {
	regs := collectWireRegs(pass.Program)

	// Duplicate production tags. The registry panics at runtime, but
	// only a whole-module view catches tags claimed by packages no
	// binary links together yet.
	first := make(map[uint64]wireReg)
	for _, r := range regs {
		if !r.tagKnown || r.tag >= tagTestBase {
			continue
		}
		prev, dup := first[r.tag]
		if !dup {
			first[r.tag] = r
			continue
		}
		if prev.typeKey != r.typeKey {
			pass.Reportf(r.call.Args[1].Pos(),
				"wire tag %d is already registered for %s at %s — claim a fresh tag (see the tag map: dflint -tags)",
				r.tag, prev.typeKey, prev.pos)
		}
	}

	// Codec coverage for Transport payloads.
	registered := make(map[string]bool)
	for _, r := range regs {
		registered[r.typeKey] = true
	}
	for _, u := range pass.Program.Units {
		for _, f := range u.Files {
			unit := u
			ast.Inspect(f, func(n ast.Node) bool {
				call, ok := n.(*ast.CallExpr)
				if !ok {
					return true
				}
				arg, ok := transportPayloadArg(unit.Info, call)
				if !ok {
					return true
				}
				t, name := modulePayloadStruct(unit.Info, arg)
				if t == "" {
					return true
				}
				if !registered[t] {
					pass.Reportf(arg.Pos(),
						"payload type %s reaches the wire with no registered binary codec (gob escape hatch): add a RegisterWireCodec for it or //dflint:allow tagspace",
						name)
				}
				return true
			})
		}
	}
}

// transportPayloadArg returns the payload argument of a kernel
// Transport call (Call, Send, RequestAsync, RequestSized), matching by
// method name plus an `any`-typed parameter at the known position so
// unrelated Send methods don't match.
func transportPayloadArg(info *types.Info, call *ast.CallExpr) (ast.Expr, bool) {
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok {
		return nil, false
	}
	idx, known := map[string]int{
		"Call":         3,
		"Send":         1,
		"RequestAsync": 2,
		"RequestSized": 2,
	}[sel.Sel.Name]
	if !known {
		return nil, false
	}
	fn, ok := info.Uses[sel.Sel].(*types.Func)
	if !ok {
		return nil, false
	}
	sig, ok := fn.Type().(*types.Signature)
	if !ok || sig.Params().Len() <= idx || len(call.Args) <= idx {
		return nil, false
	}
	iface, ok := sig.Params().At(idx).Type().Underlying().(*types.Interface)
	if !ok || !iface.Empty() {
		return nil, false
	}
	return call.Args[idx], true
}

// modulePayloadStruct resolves arg's static type to a module-declared
// named struct type; other payloads (basic values, foreign types,
// already-interface forwards) are outside this rule.
func modulePayloadStruct(info *types.Info, arg ast.Expr) (key, name string) {
	tv, ok := info.Types[ast.Unparen(arg)]
	if !ok || tv.Type == nil {
		return "", ""
	}
	t := tv.Type
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok {
		return "", ""
	}
	obj := named.Obj()
	if obj.Pkg() == nil {
		return "", ""
	}
	path := obj.Pkg().Path()
	if !strings.HasPrefix(path, "filaments/") && strings.Contains(path, "/") {
		return "", ""
	}
	if _, isStruct := named.Underlying().(*types.Struct); !isStruct {
		return "", ""
	}
	return typeKeyOf(named), obj.Pkg().Name() + "." + obj.Name()
}

// --- The WIRE.lock manifest. ---

// A WireTag is one row of the wire-format manifest: a production tag,
// its payload type, and the labeled field sequence its encoder writes.
type WireTag struct {
	Tag   uint64
	Type  string
	Shape string
}

// WireTags extracts the manifest rows from the program: every
// production (non-test) registration below the test base, in tag order.
func WireTags(prog *Program) []WireTag {
	var out []WireTag
	for _, r := range collectWireRegs(prog) {
		if !r.tagKnown || r.tag >= tagTestBase || r.testFile {
			continue
		}
		x := &shapeExtractor{
			info:   r.unit.Info,
			decls:  funcDecls(r.unit.Files, r.unit.Info),
			labels: true,
		}
		shape := x.fromExpr(r.call.Args[2])
		rendered := "(opaque)"
		if !x.opaque {
			rendered = renderShape(shape)
		}
		out = append(out, WireTag{Tag: r.tag, Type: r.typeKey, Shape: rendered})
	}
	return out
}

const wireLockHeader = `# WIRE.lock — the module's wire-format manifest, checked by dflint.
#
# Each row is one registered binary codec: tag, payload type, and the
# field sequence its encoder writes (op:field, × marks repetition,
# ? a conditional segment). Renumbering a tag or reordering fields
# changes a row and fails CI: such a change breaks mixed-version
# clusters and must be made deliberately. After a reviewed protocol
# change, regenerate with:
#
#   go run ./cmd/dflint -fix-wirelock ./...
#
`

// FormatWireLock renders the manifest file content.
func FormatWireLock(tags []WireTag) string {
	var b strings.Builder
	b.WriteString(wireLockHeader)
	for _, t := range tags {
		fmt.Fprintf(&b, "%d\t%s\t%s\n", t.Tag, t.Type, t.Shape)
	}
	return b.String()
}

// parseWireLock reads manifest content back into rows (comments and
// blank lines ignored; malformed lines surface as a synthetic row so
// the diff names them).
func parseWireLock(content string) map[uint64]WireTag {
	rows := make(map[uint64]WireTag)
	for _, line := range strings.Split(content, "\n") {
		line = strings.TrimSpace(line)
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		parts := strings.SplitN(line, "\t", 3)
		if len(parts) != 3 {
			continue
		}
		var tag uint64
		if _, err := fmt.Sscanf(parts[0], "%d", &tag); err != nil {
			continue
		}
		rows[tag] = WireTag{Tag: tag, Type: parts[1], Shape: parts[2]}
	}
	return rows
}

// DiffWireLock compares checked-in manifest content against the
// program's current wire tags and describes every divergence. An empty
// result means the wire format is unchanged.
func DiffWireLock(checkedIn string, current []WireTag) []string {
	old := parseWireLock(checkedIn)
	cur := make(map[uint64]WireTag, len(current))
	var diffs []string
	for _, t := range current {
		cur[t.Tag] = t
		o, ok := old[t.Tag]
		if !ok {
			diffs = append(diffs, fmt.Sprintf("tag %d (%s) is new — regenerate WIRE.lock to claim it", t.Tag, t.Type))
			continue
		}
		if o.Type != t.Type {
			diffs = append(diffs, fmt.Sprintf("tag %d changed type: %s -> %s (renumbering breaks mixed-version decode)", t.Tag, o.Type, t.Type))
		}
		if o.Shape != t.Shape {
			diffs = append(diffs, fmt.Sprintf("tag %d (%s) changed wire shape: [%s] -> [%s]", t.Tag, t.Type, o.Shape, t.Shape))
		}
	}
	var removed []uint64
	for tag := range old {
		if _, ok := cur[tag]; !ok {
			removed = append(removed, tag)
		}
	}
	sort.Slice(removed, func(i, j int) bool { return removed[i] < removed[j] })
	for _, tag := range removed {
		diffs = append(diffs, fmt.Sprintf("tag %d (%s) disappeared — old peers still send it", tag, old[tag].Type))
	}
	return diffs
}
