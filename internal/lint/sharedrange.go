package lint

import (
	"go/ast"
	"go/types"
)

// SharedRange flags filament bodies that address shared memory through
// captured integer variables instead of their Args record.
//
// A filament body is a func literal whose second parameter is the
// six-word Args record (filament.Args). The runtime's pool recognizer,
// fault frontloader, and fork/join distributor all assume a body is a
// pure function of its Args: Args are what gets shipped with a task,
// what the auto-pool signature hashes, and what the memory-model
// checker's range describers see. An integer index captured from the
// enclosing scope is shared by every instance of the filament — all of
// them touch the word the variable happens to hold when they run, not
// the word each was created for. That is the moral equivalent of a data
// race even when it happens to produce the right answer, and it is the
// first seeded bug in internal/apps/racer.
//
// The rule fires only on captured variables with a basic integer
// underlying type that appear inside the argument subtree of a typed
// DSM access (ReadF64/WriteF64/ReadI64/WriteI64 on Exec or DSM).
// Captured base addresses (named Addr types), constants, and structures
// are fine — they are the same for every filament by construction; so
// are integers used outside addressing (loop bounds, Compute costs).
var SharedRange = &Analyzer{
	Name: "sharedrange",
	Doc: "forbid filament bodies from addressing shared memory through captured " +
		"integer variables; per-filament coordinates must flow through Args",
	Run: runSharedRange,
}

func runSharedRange(pass *Pass) {
	if !pass.Kernel() {
		return
	}
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			lit, ok := n.(*ast.FuncLit)
			if ok && isFilamentBody(pass.Info, lit) {
				checkFilamentBody(pass, lit)
			}
			return true
		})
	}
}

// isFilamentBody reports whether lit has the filament shape: its second
// parameter is the Args record. (Pool bodies are func(*Exec, Args);
// fork/join bodies add a float64 result — both match.)
func isFilamentBody(info *types.Info, lit *ast.FuncLit) bool {
	tv, ok := info.Types[lit]
	if !ok {
		return false
	}
	sig, ok := tv.Type.(*types.Signature)
	if !ok || sig.Params().Len() != 2 {
		return false
	}
	named, ok := sig.Params().At(1).Type().(*types.Named)
	return ok && named.Obj().Name() == "Args"
}

func checkFilamentBody(pass *Pass, lit *ast.FuncLit) {
	ast.Inspect(lit.Body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		if _, ok := dsmAccess(pass.Info, call); !ok {
			return true
		}
		for _, arg := range call.Args {
			ast.Inspect(arg, func(m ast.Node) bool {
				id, ok := m.(*ast.Ident)
				if !ok {
					return true
				}
				obj, ok := pass.Info.Uses[id].(*types.Var)
				if !ok {
					return true
				}
				if obj.Pos() >= lit.Pos() && obj.Pos() < lit.End() {
					return true // declared inside the body: per-filament
				}
				if !capturedIndexType(obj.Type()) {
					return true
				}
				pass.Reportf(id.Pos(),
					"filament body addresses shared memory through captured variable %s; every filament instance shares it — pass per-filament coordinates through Args",
					id.Name)
				return true
			})
		}
		return true
	})
}

// capturedIndexType reports whether a captured variable of this type is
// suspect: basic integer underlying type, but not a named Addr (base
// addresses are global and identical for every filament).
func capturedIndexType(t types.Type) bool {
	if named, ok := t.(*types.Named); ok && named.Obj().Name() == "Addr" {
		return false
	}
	b, ok := t.Underlying().(*types.Basic)
	return ok && b.Info()&types.IsInteger != 0
}

// dsmAccess reports whether call is a typed DSM access — a
// ReadF64/WriteF64/ReadI64/WriteI64 method on an Exec or DSM receiver —
// and whether it writes.
func dsmAccess(info *types.Info, call *ast.CallExpr) (write, ok bool) {
	sel, isSel := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !isSel {
		return false, false
	}
	fn, isFn := info.Uses[sel.Sel].(*types.Func)
	if !isFn {
		return false, false
	}
	switch fn.Name() {
	case "WriteF64", "WriteI64":
		write = true
	case "ReadF64", "ReadI64":
	default:
		return false, false
	}
	return write, recvNamed(fn, "Exec", "DSM")
}

// recvNamed reports whether fn is a method whose receiver's (possibly
// pointer-stripped) named type has one of the given names.
func recvNamed(fn *types.Func, names ...string) bool {
	sig, ok := fn.Type().(*types.Signature)
	if !ok || sig.Recv() == nil {
		return false
	}
	t := sig.Recv().Type()
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	for _, n := range names {
		if named.Obj().Name() == n {
			return true
		}
	}
	return false
}
