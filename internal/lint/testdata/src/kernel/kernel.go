// Package kernel is a hermetic stand-in for filaments/internal/kernel.
// The analyzers accept the bare final import-path element, so this fake
// exercises the same code paths as the real seam.
package kernel

type NodeID int

type ServiceID int

type Category int

type Verdict int

const (
	Reply Verdict = iota
	Drop
)

type Handle int

type Service struct {
	Name             string
	Handler          func(from NodeID, req any) (reply any, size int, v Verdict)
	Idempotent       bool
	ModifiesCritical bool
	Category         Category
}

type Thread interface {
	Name() string
	Block()
	Yield()
	Preempt()
}

type Transport interface {
	Register(svc ServiceID, s Service)
	RequestAsync(dst NodeID, svc ServiceID, req any, size int, cat Category, cb func(reply any)) Handle
	RequestSized(dst NodeID, svc ServiceID, req any, size, expectedReply int, cat Category, cb func(reply any)) Handle
	Call(t Thread, dst NodeID, svc ServiceID, req any, size int, cat Category) any
	Send(dst NodeID, payload any, size int, cat Category)
	HandleRaw(h func(from NodeID, payload any) bool)
	Outstanding() int
}

type Clock interface {
	Now() int64
	Schedule(after int64, f func())
}

type Executor interface {
	Spawn(name string, f func(t Thread))
	Ready(t Thread, front bool)
}
