// Fixtures for the hotalloc analyzer: //dflint:hotpath functions and
// everything they reach must not allocate.
package hotalloc

import "fmt"

type enc struct{ B []byte }

type big struct{ A, B, C int64 }

func consume(x any, n int) {}

// The amortized idiom: self-append into the receiver's buffer.
//
//dflint:hotpath
func encFast(e *enc, v uint64) {
	for v >= 0x80 {
		e.B = append(e.B, byte(v)|0x80)
		v >>= 7
	}
	e.B = append(e.B, byte(v))
}

// A local alias of a caller-provided base stays caller-owned.
//
//dflint:hotpath
func appendInto(dst, src []byte) []byte {
	b := dst
	b = append(b, src...)
	return b
}

//dflint:hotpath
func freshAppend(n int) []byte {
	var out []byte
	for i := 0; i < n; i++ {
		out = append(out, byte(i)) // want "append onto a slice the caller does not own"
	}
	return out
}

//dflint:hotpath
func makes(e *enc) {
	tmp := make([]byte, 16) // want "make allocates"
	copy(tmp, e.B)
	e.B = tmp
}

// The allocation hides one frame down; the diagnostic names the route.
//
//dflint:hotpath
func viaHelper(dst []byte, v int64) []byte {
	return helper(dst, v)
}

func helper(dst []byte, v int64) []byte {
	dst = append(dst, byte(v))
	p := &big{A: v} // want "hot path \(via //dflint:hotpath viaHelper\) allocates: &composite literal"
	_ = p
	return dst
}

//dflint:hotpath
func boxing(v big) any {
	return v // want "returning a concrete value as any boxes it"
}

//dflint:hotpath
func sink(e *enc) {
	consume(e.B, 7) // want "passing a concrete value as any boxes it"
}

//dflint:hotpath
func toBytes(e *enc, s string) {
	e.B = append(e.B, []byte(s)...) // want "string/\[\]byte conversion copies"
}

//dflint:hotpath
func format() string {
	return fmt.Sprintf("x") // want "fmt.Sprintf allocates"
}

//dflint:hotpath
func closes() {
	f := func() {} // want "a closure captures its environment"
	f()
}

// panic arguments are the cold path: no diagnostic for the Sprintf.
//
//dflint:hotpath
func guarded(e *enc, i int) byte {
	if i >= len(e.B) {
		panic(fmt.Sprintf("out of range"))
	}
	return e.B[i]
}

// Not annotated and not reachable from any root: free to allocate.
func coldAlloc() []byte {
	return make([]byte, 64)
}

// The escape hatch still works for deliberate amortized setup.
//
//dflint:hotpath
func allowed() []byte {
	//dflint:allow hotalloc one-time pool refill, amortized across the epoch
	return make([]byte, 4096)
}
