// Package time is a hermetic stand-in for the standard library's time
// package, carrying just enough surface for the kerneltime fixtures.
package time

type Time struct{}

type Duration int64

func Now() Time             { return Time{} }
func Sleep(d Duration)      {}
func Since(t Time) Duration { return 0 }
func Until(t Time) Duration { return 0 }

func After(d Duration) <-chan Time { return nil }
func Tick(d Duration) <-chan Time  { return nil }

type Timer struct{}

func NewTimer(d Duration) *Timer            { return nil }
func AfterFunc(d Duration, f func()) *Timer { return nil }

type Ticker struct{}

func NewTicker(d Duration) *Ticker { return nil }
