// Package tagspace exercises the wire-tag namespace rule: no duplicate
// production tags, and every module struct payload handed to a
// Transport must reach a registered binary codec.
package tagspace

import (
	"kernel"
	"rtnode"
)

type pingMsg struct{ N int64 }

type pongMsg struct{ N int64 }

type strayMsg struct{ S string }

type scratchMsg struct{ B []byte }

const (
	tagPing    = 70
	tagPong    = 71
	tagScratch = 0x7F00
)

func register() {
	rtnode.RegisterWireCodec(pingMsg{}, tagPing, encPing, decPing)
	rtnode.RegisterWireCodec(pongMsg{}, tagPing, encPong, decPong) // want "wire tag 70 is already registered for tagspace\.pingMsg"
	rtnode.RegisterWireCodec(pongMsg{}, tagPong, encPong, decPong)
	// At or above the test base tags are per-test scratch space: two
	// tests may claim the same number.
	rtnode.RegisterWireCodec(scratchMsg{}, tagScratch, encScratch, decScratch)
	rtnode.RegisterWireCodec(pingMsg{}, tagScratch, encPing, decPing)
}

func encPing(e *rtnode.Enc, v any) { e.Varint(v.(pingMsg).N) }
func decPing(d *rtnode.Dec) any    { return pingMsg{N: d.Varint()} }

func encPong(e *rtnode.Enc, v any) { e.Varint(v.(pongMsg).N) }
func decPong(d *rtnode.Dec) any    { return pongMsg{N: d.Varint()} }

func encScratch(e *rtnode.Enc, v any) { e.Bytes(v.(scratchMsg).B) }
func decScratch(d *rtnode.Dec) any    { return scratchMsg{B: d.Bytes()} }

func send(t kernel.Thread, tr kernel.Transport, dst kernel.NodeID) {
	tr.Send(dst, pingMsg{N: 1}, 8, 0)
	tr.Send(dst, strayMsg{S: "x"}, 8, 0) // want "payload type tagspace\.strayMsg reaches the wire with no registered binary codec"
	tr.Call(t, dst, 1, strayMsg{S: "y"}, 8, 0) // want "payload type tagspace\.strayMsg reaches the wire with no registered binary codec"
	tr.RequestAsync(dst, 1, pongMsg{N: 2}, 8, 0, nil)
	// Non-struct and non-module payloads are outside the rule.
	tr.Send(dst, []byte("raw"), 3, 0)
	tr.Send(dst, 7, 1, 0)
}
