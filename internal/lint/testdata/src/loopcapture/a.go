//dflint:kernel

// Hermetic stand-ins for the spawning surfaces (Pool.Add, Spawn): the
// analyzer matches on method names, so these fakes exercise the real
// code paths.
package loopcapture

type Args [6]int64

type Exec struct{}

type Pool struct{}

func (p *Pool) Add(e *Exec, fn func(*Exec, Args), a Args) {}

type Node struct{}

func (n *Node) Spawn(name string, f func()) {}

func bad(pool *Pool, e *Exec, nd *Node) {
	var i int
	for i = 0; i < 4; i++ {
		pool.Add(e, func(e *Exec, a Args) { // want "captures loop variable i"
			_ = i
		}, Args{})
	}
	// Any variable the for statement assigns is shared, not only the
	// first.
	var k, v int
	for k, v = 0, 3; k < 4; k++ {
		nd.Spawn("w", func() { // want "captures loop variable v"
			_ = v
		})
	}
	_ = k
	var j int
	for j = range make([]int, 4) {
		nd.Spawn("w", func() { // want "captures loop variable j"
			_ = j
		})
	}
}

func good(pool *Pool, e *Exec, nd *Node) {
	// := declares a fresh variable per iteration (Go >= 1.22): safe.
	for i := 0; i < 4; i++ {
		pool.Add(e, func(e *Exec, a Args) {
			_ = i
		}, Args{})
	}
	// A copy declared inside the body is per-iteration by construction.
	var n int
	for n = 0; n < 4; n++ {
		m := n
		nd.Spawn("w", func() { _ = m })
	}
	// The assigned loop variable is shared, but no closure captures it.
	var q int
	for q = 0; q < 4; q++ {
		nd.Spawn("w", func() {})
	}
	_ = q
	// Using the shared variable outside a spawning call is ordinary
	// sequential code.
	var r, sum int
	for r = 0; r < 4; r++ {
		sum += r
	}
	_ = sum
}

func allowed(nd *Node, done chan struct{}) {
	var i int
	for i = 0; i < 4; i++ {
		//dflint:allow loopcapture the spawn blocks on done before the next iteration
		nd.Spawn("w", func() { _ = i })
		<-done
	}
}
