// Fixtures for the lockorder analyzer: a cross-package lock-order
// cycle and blocking seam calls made with a mutex held.
package lockorder

import (
	"kernel"
	"lockorderdep"
	"sync"
)

type node struct {
	mu  sync.Mutex
	reg sync.RWMutex
	st  *lockorderdep.Store
	ep  kernel.Transport
	th  kernel.Thread
	n   int
}

// One half of the cycle: node.mu is held while Store.Mu is acquired
// inside the other package's Put.
func (n *node) abEdge() {
	n.mu.Lock()
	n.st.Put(1, 2) // want "lock-order cycle: lockorderdep.Store.Mu is acquired via Put while lockorder.node.mu is held"
	n.mu.Unlock()
}

// The other half: Store.Mu is held while node.mu is acquired directly.
func (n *node) baEdge() {
	n.st.Mu.Lock()
	n.mu.Lock() // want "lock-order cycle: lockorder.node.mu is acquired directly while lockorderdep.Store.Mu is held"
	n.n++
	n.mu.Unlock()
	n.st.Mu.Unlock()
}

// A direct seam suspension point under a lock.
func (n *node) blockUnderLock() {
	n.mu.Lock()
	n.ep.Call(n.th, 0, 1, nil, 8, 0) // want "kernel.Call with lockorder.node.mu held"
	n.mu.Unlock()
}

func (n *node) pump() {
	n.th.Block()
}

// The blocking call hides one frame down.
func (n *node) badTransitive() {
	n.mu.Lock()
	n.pump() // want "pump blocks \(via kernel.Block\) and is called with lockorder.node.mu held"
	n.mu.Unlock()
}

// Negative: a consistent mu -> reg order never cycles.
func (n *node) good() {
	n.mu.Lock()
	n.reg.Lock()
	n.n++
	n.reg.Unlock()
	n.mu.Unlock()
}

// Negative: reader side of the same consistent order.
func (n *node) goodRead() int {
	n.mu.Lock()
	defer n.mu.Unlock()
	n.reg.RLock()
	defer n.reg.RUnlock()
	return n.n
}

// Negative: released before blocking.
func (n *node) goodrelease() {
	n.mu.Lock()
	n.n++
	n.mu.Unlock()
	n.ep.Call(n.th, 0, 1, nil, 8, 0)
}
