// Fixtures for the codecsym analyzer: every RegisterWireCodec pair's
// Enc and Dec halves must read and write the same wire-op sequence.
package codecsym

import "rtnode"

type point struct {
	X, Y int64
}

type drifted struct {
	A int64
	B float64
}

type swapped struct {
	N uint64
	S string
}

type extra struct {
	A, B int64
}

type nested struct {
	Rows [][]float64
}

type envelope struct {
	Tag  int64
	Data any
}

type task struct {
	Fn   int32
	Args [3]int64
}

type viaHelper struct {
	T task
}

type counted struct {
	Blocks []int32
	Diffs  [][]byte
}

type badLoop struct {
	Vals []int64
}

type widthDrift struct {
	N int64
}

func init() {
	// Symmetric: matches exactly.
	rtnode.RegisterWireCodec(point{}, 16,
		func(e *rtnode.Enc, v any) {
			p := v.(point)
			e.Varint(p.X)
			e.Varint(p.Y)
		},
		func(d *rtnode.Dec) any {
			var p point
			p.X = d.Varint()
			p.Y = d.Varint()
			return p
		})

	// One-field drift: Enc writes A's varint then B's f64, Dec reads
	// them in the other order.
	rtnode.RegisterWireCodec(drifted{}, 17,
		func(e *rtnode.Enc, v any) {
			m := v.(drifted)
			e.Varint(m.A)
			e.F64(m.B)
		},
		func(d *rtnode.Dec) any { // want "wire codec for drifted \(tag 17\) is asymmetric.*step 1: Enc writes varint but Dec reads f64"
			var m drifted
			m.B = d.F64()
			m.A = d.Varint()
			return m
		})

	// Width drift: a Uvarint written, a Varint read (zig-zag differs).
	rtnode.RegisterWireCodec(swapped{}, 18,
		func(e *rtnode.Enc, v any) {
			m := v.(swapped)
			e.Uvarint(m.N)
			e.String(m.S)
		},
		func(d *rtnode.Dec) any { // want "tag 18.*step 1: Enc writes uvarint but Dec reads varint"
			var m swapped
			m.N = uint64(d.Varint())
			m.S = d.String()
			return m
		})

	// Count drift: Enc writes a second field Dec never reads.
	rtnode.RegisterWireCodec(extra{}, 19,
		func(e *rtnode.Enc, v any) {
			m := v.(extra)
			e.Varint(m.A)
			e.Varint(m.B)
		},
		func(d *rtnode.Dec) any { // want "tag 19.*Enc writes 1 op\(s\) Dec never reads"
			return extra{A: d.Varint()}
		})

	// Length-prefixed nesting with decoder bounds guards and nil
	// normalization: symmetric, no diagnostic.
	rtnode.RegisterWireCodec(nested{}, 20,
		func(e *rtnode.Enc, v any) {
			m := v.(nested)
			e.Uvarint(uint64(len(m.Rows)))
			for _, row := range m.Rows {
				e.Uvarint(uint64(len(row)))
				for _, f := range row {
					e.F64(f)
				}
			}
		},
		func(d *rtnode.Dec) any {
			var m nested
			n := d.Uvarint()
			if n > uint64(d.Remaining()) {
				d.Fail()
				return m
			}
			if n > 0 {
				m.Rows = make([][]float64, n)
				for i := range m.Rows {
					c := d.Uvarint()
					if c == 0 {
						continue
					}
					row := make([]float64, c)
					for j := range row {
						row[j] = d.F64()
					}
					m.Rows[i] = row
				}
			}
			if len(m.Rows) == 0 {
				m.Rows = nil
			}
			return m
		})

	// The gob escape hatch: EncodeAny must pair with DecodeAny.
	rtnode.RegisterWireCodec(envelope{}, 21,
		func(e *rtnode.Enc, v any) {
			m := v.(envelope)
			e.Varint(m.Tag)
			rtnode.EncodeAny(e, m.Data)
		},
		func(d *rtnode.Dec) any {
			var m envelope
			m.Tag = d.Varint()
			m.Data = rtnode.DecodeAny(d)
			return m
		})

	// Same-package helper indirection with a fixed-size array loop:
	// both halves route through encTask/decTask, symmetric.
	rtnode.RegisterWireCodec(viaHelper{}, 22,
		func(e *rtnode.Enc, v any) { encTask(e, v.(viaHelper).T) },
		func(d *rtnode.Dec) any { return viaHelper{T: decTask(d)} })

	// Counted pair loop (the lrcFlush shape): symmetric.
	rtnode.RegisterWireCodec(counted{}, 23,
		func(e *rtnode.Enc, v any) {
			m := v.(counted)
			e.Uvarint(uint64(len(m.Blocks)))
			for i, b := range m.Blocks {
				e.Varint(int64(b))
				e.Bytes(m.Diffs[i])
			}
		},
		func(d *rtnode.Dec) any {
			var m counted
			n := d.Uvarint()
			if n > uint64(d.Remaining()) {
				d.Fail()
				return m
			}
			for i := uint64(0); i < n; i++ {
				m.Blocks = append(m.Blocks, int32(d.Varint()))
				m.Diffs = append(m.Diffs, d.Bytes())
			}
			return m
		})

	// Loop-body drift: the repeated segment disagrees.
	rtnode.RegisterWireCodec(badLoop{}, 24,
		func(e *rtnode.Enc, v any) {
			m := v.(badLoop)
			e.Uvarint(uint64(len(m.Vals)))
			for _, x := range m.Vals {
				e.Varint(x)
			}
		},
		func(d *rtnode.Dec) any { // want "tag 24.*inside the repeated segment: step 1: Enc writes varint but Dec reads f64"
			var m badLoop
			n := d.Uvarint()
			for i := uint64(0); i < n; i++ {
				m.Vals = append(m.Vals, int64(d.F64()))
			}
			return m
		})

	// Helper drift: the asymmetry hides one call deep — Enc's helper
	// writes a trailing bool the Dec helper never reads.
	rtnode.RegisterWireCodec(widthDrift{}, 25,
		encDrift,
		decDrift) // want "tag 25.*Enc writes 1 op\(s\) Dec never reads \(first unread: bool\)"
}

func encTask(e *rtnode.Enc, t task) {
	e.Varint(int64(t.Fn))
	for _, a := range t.Args {
		e.Varint(a)
	}
}

func decTask(d *rtnode.Dec) task {
	var t task
	t.Fn = int32(d.Varint())
	for i := range t.Args {
		t.Args[i] = d.Varint()
	}
	return t
}

func encDrift(e *rtnode.Enc, v any) {
	m := v.(widthDrift)
	e.Varint(m.N)
	e.Bool(true)
}

func decDrift(d *rtnode.Dec) any {
	return widthDrift{N: d.Varint()}
}
