// Package fmt is a hermetic stand-in for the standard library's fmt
// package, for the hotalloc fixtures' allocating-stdlib checks.
package fmt

func Sprintf(format string, args ...any) string { return format }

func Errorf(format string, args ...any) error { return nil }
