// Package statemach exercises the declared-state-machine rule: switch
// exhaustiveness and the //dflint:transitions discipline.
package statemach

// Phase is the fixture lifecycle. Broken has no inbound edge, so it can
// never be assigned outside construction.
//
//dflint:states
//dflint:transitions Idle->Run Run->Halt Run->Idle
type Phase int

const (
	Idle Phase = iota
	Run
	Halt
	Broken
)

type machine struct{ phase Phase }

func newMachine() *machine {
	return &machine{phase: Idle} // construction, not a transition
}

func (m *machine) missingCases() int {
	switch m.phase { // want "switch over Phase is not exhaustive: missing Halt, Broken"
	case Idle:
		return 0
	case Run:
		return 1
	}
	return 2
}

func (m *machine) allCases() int {
	switch m.phase {
	case Idle, Run:
		return 0
	case Halt, Broken:
		return 1
	}
	return 2
}

func (m *machine) hasDefault() int {
	switch m.phase {
	case Idle:
		return 0
	default:
		return 1
	}
}

func (m *machine) goodGuarded() {
	if m.phase == Idle {
		m.phase = Run
	}
}

func (m *machine) badGuarded() {
	if m.phase == Idle {
		m.phase = Halt // want "undeclared transition\(s\) Idle->Halt"
	}
}

func (m *machine) badNegGuard() {
	if m.phase != Run {
		m.phase = Halt // want "undeclared transition\(s\) Idle->Halt, Broken->Halt"
	}
}

func (m *machine) weakOK() {
	m.phase = Run // Run has declared inbound edges
}

func (m *machine) weakBad() {
	m.phase = Broken // want "Broken is not the destination of any declared"
}

func (m *machine) switchGuard() {
	switch m.phase {
	case Run:
		m.phase = Idle
	case Halt, Broken:
		m.phase = Run // want "undeclared transition\(s\) Halt->Run, Broken->Run"
	default:
	}
}

func (m *machine) selfTransition() {
	if m.phase == Halt {
		m.phase = Halt // an overwrite, always legal
	}
}
