//dflint:kernel

package gobreg

import (
	"encoding/gob"
	"kernel"
	"rtnode"
)

type registeredMsg struct{ N int }

type strayMsg struct{ N int }

type namedReply struct{ V float64 }

func init() {
	gob.Register(registeredMsg{})
	rtnode.RegisterWire(namedReply{}, map[int]float64(nil))
}

func send(tr kernel.Transport, t kernel.Thread) {
	tr.Send(1, registeredMsg{N: 1}, 0, 0)
	tr.Send(1, strayMsg{}, 0, 0) // want "payload of type strayMsg without a gob registration"
	tr.Send(1, 42, 0, 0)
	tr.Send(1, "hello", 0, 0)
	tr.Send(1, []byte{1}, 0, 0)
	tr.Send(1, []float64{1}, 0, 0)
	tr.Send(1, map[int]float64{}, 0, 0)
	tr.RequestAsync(1, 1, strayMsg{}, 0, 0, func(reply any) {})    // want "RequestAsync payload of type strayMsg"
	tr.RequestSized(1, 1, strayMsg{}, 0, 8, 0, func(reply any) {}) // want "RequestSized payload of type strayMsg"
	_ = tr.Call(t, 1, 1, [][]float64{}, 0, 0)                      // want "Call payload of type .*float64 without a gob registration"
	forward(tr, strayMsg{})
}

// forward resends an opaque payload; the concrete type was checked where
// it was made, so the interface-typed argument is not reported here.
func forward(tr kernel.Transport, payload any) {
	tr.Send(2, payload, 0, 0)
}

func allowedSend(tr kernel.Transport) {
	//dflint:allow gobreg sim-only diagnostic payload, never crosses the UDP binding
	tr.Send(1, strayMsg{}, 0, 0)
}

func handler(from kernel.NodeID, req any) (any, int, kernel.Verdict) {
	if from == 0 {
		return strayMsg{}, 0, kernel.Reply // want "handler returns reply of type strayMsg"
	}
	if from == 1 {
		return nil, 0, kernel.Drop
	}
	return namedReply{}, 8, kernel.Reply
}
