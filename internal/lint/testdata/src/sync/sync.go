// Package sync is a hermetic stand-in for the standard library's sync
// package, for the kernelspawn fixtures.
package sync

type WaitGroup struct{}

func (*WaitGroup) Add(delta int) {}
func (*WaitGroup) Done()         {}
func (*WaitGroup) Wait()         {}

type Mutex struct{}

func (*Mutex) Lock()   {}
func (*Mutex) Unlock() {}

type RWMutex struct{}

func (*RWMutex) Lock()    {}
func (*RWMutex) Unlock()  {}
func (*RWMutex) RLock()   {}
func (*RWMutex) RUnlock() {}

type Once struct{}

type Map struct{}

type Cond struct{ L *Mutex }

func NewCond(l *Mutex) *Cond { return &Cond{L: l} }
