// Package atomic is a hermetic stand-in for the standard library's
// sync/atomic package, for the atomicfield fixtures.
package atomic

func AddInt64(addr *int64, delta int64) int64              { return 0 }
func LoadInt64(addr *int64) int64                          { return 0 }
func StoreInt64(addr *int64, v int64)                      {}
func CompareAndSwapInt64(addr *int64, old, new int64) bool { return false }
func AddUint64(addr *uint64, delta uint64) uint64          { return 0 }
func AddInt32(addr *int32, delta int32) int32              { return 0 }

type Int64 struct{ v int64 }

func (x *Int64) Load() int64           { return 0 }
func (x *Int64) Store(v int64)         {}
func (x *Int64) Add(delta int64) int64 { return 0 }

type Int32 struct{ v int32 }

func (x *Int32) Load() int32   { return 0 }
func (x *Int32) Store(v int32) {}

type Bool struct{ v uint32 }

func (x *Bool) Load() bool   { return false }
func (x *Bool) Store(v bool) {}

type Value struct{ v any }

func (x *Value) Load() any   { return nil }
func (x *Value) Store(v any) {}
