//dflint:kernel

package maprange

type waiters map[int]string

func bad(m map[int]string, w waiters) {
	for k := range m { // want "range over map"
		_ = k
	}
	for k, v := range w { // want "range over map"
		_, _ = k, v
	}
}

func allowed(m map[int]int) int {
	sum := 0
	//dflint:allow maprange integer sum is commutative; order cannot leak
	for _, v := range m {
		sum += v
	}
	return sum
}

func notMaps(s []int, c chan int) {
	for range s {
	}
	for range c {
	}
}
