// Package atomicfield exercises the all-or-nothing atomic-access rule:
// a location touched through sync/atomic anywhere may never be accessed
// plainly, and typed atomics may not travel by value.
package atomicfield

import "sync/atomic"

type counters struct {
	hits  int64
	total int64
	n     atomic.Int64
}

func (c *counters) bump() {
	atomic.AddInt64(&c.hits, 1)
	atomic.AddInt64(&c.total, 1)
}

// The seeded plain read of an atomically-written field.
func (c *counters) readPlain() int64 {
	return c.hits // want "plain access to hits, which is accessed atomically"
}

func (c *counters) writePlain() {
	c.hits = 0 // want "plain access to hits, which is accessed atomically"
}

func (c *counters) readAtomic() int64 {
	return atomic.LoadInt64(&c.total)
}

// Taking the address is not a data access; the pointer presumably feeds
// an atomic elsewhere.
func (c *counters) addr() *int64 {
	return &c.total
}

func (c *counters) typedOK() int64 {
	c.n.Add(1)
	return c.n.Load()
}

func (c *counters) typedCopy() {
	snapshot := c.n // want "typed atomic c\.n copied as a value"
	_ = snapshot    // want "typed atomic snapshot copied as a value"
}

func consume(v atomic.Int64) int64 { return v.Load() }

func (c *counters) passByValue() int64 {
	return consume(c.n) // want "typed atomic c\.n passed by value"
}

func (c *counters) pointerOK() *atomic.Int64 {
	return &c.n
}

var ops int64

func bumpOps() { atomic.AddInt64(&ops, 1) }

func readOps() int64 {
	return ops // want "plain access to ops, which is accessed atomically"
}
