//dflint:kernel

package kerneltime

import "time"

var epoch time.Time // type names are fine; only the clock calls are not

func bad() {
	_ = time.Now()        // want "time.Now in kernel-layer code"
	time.Sleep(0)         // want "time.Sleep in kernel-layer code"
	_ = time.Since(epoch) // want "time.Since in kernel-layer code"
	select {
	case <-time.After(0): // want "time.After in kernel-layer code"
	case <-time.Tick(0): // want "time.Tick in kernel-layer code"
	}
	_ = time.NewTimer(0)             // want "time.NewTimer in kernel-layer code"
	_ = time.NewTicker(0)            // want "time.NewTicker in kernel-layer code"
	_ = time.AfterFunc(0, func() {}) // want "time.AfterFunc in kernel-layer code"
	_ = time.Until(epoch)            // want "time.Until in kernel-layer code"
}

func allowed() {
	//dflint:allow kerneltime wall-clock stamp for a log line, never feeds the schedule
	_ = time.Now()
}

func allowedTrailing() {
	time.Sleep(0) //dflint:allow kerneltime demonstration of a same-line allow
}

func missingReason() {
	//dflint:allow kerneltime
	time.Sleep(0) // want "needs a one-line reason"
}
