// Package rtnode is a hermetic stand-in for filaments/internal/rtnode's
// wire-type registry, for the gobreg fixtures.
package rtnode

func RegisterWire(protos ...any) {}
