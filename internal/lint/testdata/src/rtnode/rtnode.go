// Package rtnode is a hermetic stand-in for filaments/internal/rtnode's
// wire-type registry and binary codec surface, for the gobreg and
// codecsym fixtures.
package rtnode

func RegisterWire(protos ...any) {}

func RegisterWireCodec(proto any, tag uint16, enc func(*Enc, any), dec func(*Dec) any) {}

// Enc mirrors the real append-only encoder's method set.
type Enc struct{ B []byte }

func (e *Enc) Uvarint(u uint64) {}
func (e *Enc) Varint(i int64)   {}
func (e *Enc) F64(f float64)    {}
func (e *Enc) Bool(b bool)      {}
func (e *Enc) Bytes(b []byte)   {}
func (e *Enc) String(s string)  {}

// Dec mirrors the real decoder's method set.
type Dec struct {
	B   []byte
	Off int
	Bad bool
}

func (d *Dec) Uvarint() uint64 { return 0 }
func (d *Dec) Varint() int64   { return 0 }
func (d *Dec) F64() float64    { return 0 }
func (d *Dec) Bool() bool      { return false }
func (d *Dec) Bytes() []byte   { return nil }
func (d *Dec) String() string  { return "" }
func (d *Dec) Fail()           {}
func (d *Dec) Remaining() int  { return 0 }

func EncodeAny(e *Enc, v any) {}
func DecodeAny(d *Dec) any    { return nil }
