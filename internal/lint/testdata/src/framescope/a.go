// Fixtures for the framescope analyzer: DSM frame aliases must not
// outlive their barrier epoch.
package framescope

import (
	"kernel"
	"rtnode"
)

type blockState struct {
	frame []byte //dflint:frame
	// twin is the lazy-release merge base.
	//dflint:frame
	twin []byte
	ver  int64
}

type pageMsg struct {
	Block int32
	Data  []byte //dflint:frame
}

var debugFrame []byte

var frameSink = make(chan []byte, 1)

type node struct {
	ep     kernel.Transport
	clock  kernel.Clock
	blocks []blockState
	stash  [][]byte
}

// Deferred-closure capture: the callback runs after the epoch.
func (n *node) badCallback(b int) {
	st := &n.blocks[b]
	f := st.frame
	n.ep.RequestAsync(0, 1, nil, 8, 0, func(reply any) { // want "DSM frame alias 'f' captured by a deferred closure"
		_ = f[0]
	})
}

// Timer capture via an intermediate alias and a slice expression.
func (n *node) badTimer(b int) {
	alias := n.blocks[b].frame[8:16]
	n.clock.Schedule(10, func() { // want "DSM frame alias 'alias' captured by a deferred closure"
		alias[0] = 1
	})
}

// Stores to package state.
func (n *node) badGlobal(b int) {
	debugFrame = n.blocks[b].frame // want "DSM frame alias 'frame' stored to package state"
}

// Channel send of a decoded payload's aliasing bytes.
func badChannel(d *rtnode.Dec) {
	data := d.Bytes()
	frameSink <- data // want "DSM frame alias 'data' sent across a channel"
}

// Twin aliases count too.
func (n *node) badTwinGlobal(b int) {
	t := n.blocks[b].twin
	debugFrame = t[:8] // want "DSM frame alias 't' stored to package state"
}

// Negative: copies are the sanctioned way out of the epoch.
func (n *node) goodCopy(b int) {
	st := &n.blocks[b]
	snap := make([]byte, len(st.frame))
	copy(snap, st.frame)
	debugFrame = snap
	n.ep.RequestAsync(0, 1, nil, 8, 0, func(reply any) {
		_ = snap[0]
	})
}

// Negative: append into a fresh slice copies.
func badlyNamedButFine(m pageMsg) {
	snap := append([]byte(nil), m.Data...)
	frameSink <- snap
}

// Negative: synchronous use inside the epoch — encoding a reply,
// patching in place, an immediately invoked literal.
func (n *node) goodSync(b int, m pageMsg) {
	st := &n.blocks[b]
	copy(st.frame, m.Data)
	func() { _ = st.frame[0] }()
	n.stash = nil
}

// Negative: a non-frame field store is not package state.
func (n *node) goodFieldStore(b int) {
	st := &n.blocks[b]
	st.frame = make([]byte, 4096)
}
