// Package handleridem exercises the at-least-once idempotence rule:
// handlers registered with Idempotent: true (or via HandleRaw) may not
// mutate shared state non-idempotently outside a guard that tests
// persistent state.
package handleridem

import "kernel"

type server struct {
	count int
	flags uint64
	log   []string
	seen  map[string]bool
	done  chan int
	last  string
}

func register(tr kernel.Transport, s *server) {
	tr.Register(1, kernel.Service{Name: "count", Idempotent: true, Handler: s.badCount})
	tr.Register(2, kernel.Service{Name: "append", Idempotent: true, Handler: s.badAppend})
	tr.Register(3, kernel.Service{Name: "close", Idempotent: true, Handler: s.badClose})
	tr.Register(4, kernel.Service{Name: "reqguard", Idempotent: true, Handler: s.badReqGuard})
	tr.Register(5, kernel.Service{Name: "opassign", Idempotent: true, Handler: s.badOpAssign})
	tr.Register(6, kernel.Service{Name: "helper", Idempotent: true, Handler: s.badViaHelper})
	tr.Register(7, kernel.Service{Name: "send", Idempotent: true, Handler: s.badSend})
	tr.Register(10, kernel.Service{Name: "guarded", Idempotent: true, Handler: s.goodGuard})
	tr.Register(11, kernel.Service{Name: "derived", Idempotent: true, Handler: s.goodDerived})
	tr.Register(12, kernel.Service{Name: "overwrite", Idempotent: true, Handler: s.goodOverwrite})
	tr.Register(13, kernel.Service{Name: "converge", Idempotent: true, Handler: s.goodConverge})
	// Not marked idempotent: the transport never re-executes it, so the
	// counter is out of this rule's scope.
	tr.Register(14, kernel.Service{Name: "atmostonce", Handler: s.notIdem})
}

// The seeded non-idempotent handler: a bare counter bump, no guard.
func (s *server) badCount(from kernel.NodeID, req any) (any, int, kernel.Verdict) {
	s.count++ // want "retried handler badCount: s\.count\+\+ is not idempotent"
	return nil, 0, kernel.Reply
}

func (s *server) badAppend(from kernel.NodeID, req any) (any, int, kernel.Verdict) {
	s.log = append(s.log, "x") // want "s\.log = append\(s\.log, \.\.\.\) grows on every re-execution"
	return nil, 0, kernel.Reply
}

func (s *server) badClose(from kernel.NodeID, req any) (any, int, kernel.Verdict) {
	close(s.done) // want "close\(s\.done\) panics on the duplicate"
	return nil, 0, kernel.Reply
}

// A guard over the request is no guard: the duplicate carries the same
// request and passes it again.
func (s *server) badReqGuard(from kernel.NodeID, req any) (any, int, kernel.Verdict) {
	if req == nil {
		return nil, 0, kernel.Drop
	}
	s.count++ // want "retried handler badReqGuard"
	return nil, 0, kernel.Reply
}

func (s *server) badOpAssign(from kernel.NodeID, req any) (any, int, kernel.Verdict) {
	s.count += 2 // want "s\.count \+= \.\.\."
	return nil, 0, kernel.Reply
}

// The mutation hides one call deep: the summary charges the call site.
func (s *server) badViaHelper(from kernel.NodeID, req any) (any, int, kernel.Verdict) {
	s.bump() // want "call to bump \(which does s\.count\+\+"
	return nil, 0, kernel.Reply
}

func (s *server) bump() { s.count++ }

func (s *server) badSend(from kernel.NodeID, req any) (any, int, kernel.Verdict) {
	s.done <- 1 // want "send on shared channel s\.done"
	return nil, 0, kernel.Reply
}

// An early return keyed on the dedup map dominates the bump: clean.
func (s *server) goodGuard(from kernel.NodeID, req any) (any, int, kernel.Verdict) {
	key := req.(string)
	if s.seen[key] {
		return nil, 0, kernel.Drop
	}
	s.seen[key] = true
	s.count++
	return nil, 0, kernel.Reply
}

// The comma-ok local carries the persistent-state test: clean.
func (s *server) goodDerived(from kernel.NodeID, req any) (any, int, kernel.Verdict) {
	_, ok := s.seen[req.(string)]
	if !ok {
		s.seen[req.(string)] = true
		s.count++
	}
	return nil, 0, kernel.Reply
}

// Pure overwrites converge on the duplicate: clean.
func (s *server) goodOverwrite(from kernel.NodeID, req any) (any, int, kernel.Verdict) {
	s.last = req.(string)
	s.seen[s.last] = true
	return nil, 0, kernel.Reply
}

func (s *server) goodConverge(from kernel.NodeID, req any) (any, int, kernel.Verdict) {
	s.flags |= 4
	return nil, 0, kernel.Reply
}

func (s *server) notIdem(from kernel.NodeID, req any) (any, int, kernel.Verdict) {
	s.count++
	return nil, 0, kernel.Reply
}

// HandleRaw handlers face network-level duplication with no transport
// dedup at all; a captured accumulator is shared state.
func setupRaw(tr kernel.Transport) {
	var backlog []int
	tr.HandleRaw(func(from kernel.NodeID, payload any) bool {
		backlog = append(backlog, 1) // want "backlog = append\(backlog, \.\.\.\) grows on every re-execution"
		return true
	})
	_ = backlog
}
