// Package nonkernel has no //dflint:kernel marker and is not a known
// kernel-layer import path, so the kernel-gated analyzers stay silent on
// wall-clock use, raw goroutines, sync primitives, and map ranges here.
package nonkernel

import (
	"sync"
	"time"
)

func hostSide(m map[int]int) {
	time.Sleep(0)
	_ = time.Now()
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		for k := range m {
			_ = k
		}
	}()
	wg.Wait()
}
