// Package gob is a hermetic stand-in for encoding/gob, for the gobreg
// fixtures.
package gob

func Register(value any) {}

func RegisterName(name string, value any) {}
