//dflint:kernel

package kernelspawn

import "sync"

func bad() {
	go work()               // want "raw go statement in kernel-layer code"
	var wg sync.WaitGroup   // want "sync.WaitGroup in kernel-layer code"
	var mu sync.Mutex       // want "sync.Mutex in kernel-layer code"
	var ro sync.Once        // want "sync.Once in kernel-layer code"
	cv := sync.NewCond(&mu) // want "sync.NewCond in kernel-layer code"
	_, _, _ = wg, ro, cv
}

func allowed() {
	//dflint:allow kernelspawn host-side bench helper, never runs under a binding
	go work()
}

func work() {}
