//dflint:kernel

// Hermetic stand-ins for the filament runtime: the analyzer matches on
// the type names (Exec, DSM, Args, Addr), not import paths, exactly so
// this fixture exercises the real code paths.
package sharedrange

type Addr int64

type Args [6]int64

type Exec struct{}

func (e *Exec) ReadF64(a Addr) float64     { return 0 }
func (e *Exec) WriteF64(a Addr, v float64) {}
func (e *Exec) ReadI64(a Addr) int64       { return 0 }
func (e *Exec) Compute(n int64)            {}

type Pool struct{}

func (p *Pool) Add(e *Exec, fn func(*Exec, Args), a Args) {}

type index int

func bad(pool *Pool, e *Exec, base Addr) {
	idx := 3
	var off int64
	var typed index
	pool.Add(e, func(e *Exec, a Args) {
		_ = e.ReadF64(base + Addr(idx)*8)   // want "captured variable idx"
		e.WriteF64(base+Addr(off), 1)       // want "captured variable off"
		_ = e.ReadI64(base + Addr(typed)*8) // want "captured variable typed"
	}, Args{})
}

const words = 64

func good(pool *Pool, e *Exec, base Addr, cost int) {
	grid := struct {
		b Addr
		n int
	}{base, 8}
	pool.Add(e, func(e *Exec, a Args) {
		i := int(a[0]) // coordinates from the Args record: the right way
		_ = e.ReadF64(base + Addr(i%words)*8)
		e.Compute(int64(cost)) // captured int outside a DSM access: fine
		v := e.ReadF64(grid.b + Addr(i)*8)
		e.WriteF64(grid.b+Addr(i)*8, v+1)
	}, Args{})
}

func notAFilament(e *Exec, base Addr) {
	idx := 2
	// No Args parameter, so this is not a filament body; ordinary
	// closures may capture whatever they like.
	f := func() float64 { return e.ReadF64(base + Addr(idx)*8) }
	_ = f()
}

func allowed(pool *Pool, e *Exec, base Addr) {
	k := 1
	pool.Add(e, func(e *Exec, a Args) {
		//dflint:allow sharedrange single-filament pool; the capture is the coordinate
		_ = e.ReadF64(base + Addr(k)*8)
	}, Args{})
}
