// Package lockorderdep is the dependency half of the lockorder
// fixtures: its Store lock participates in a cross-package cycle the
// analyzer can only see with both packages' bodies loaded.
package lockorderdep

import "sync"

type Store struct {
	Mu   sync.Mutex
	data map[int]int
}

// Put acquires Store.Mu; callers holding their own lock create an
// acquired-while-held edge into this class.
func (s *Store) Put(k, v int) {
	s.Mu.Lock()
	s.data[k] = v
	s.Mu.Unlock()
}

// Get is the read path; deferred unlock holds to return.
func (s *Store) Get(k int) int {
	s.Mu.Lock()
	defer s.Mu.Unlock()
	return s.data[k]
}
