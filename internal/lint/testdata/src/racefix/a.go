//dflint:kernel

// Package racefix mirrors the three seeded bugs in internal/apps/racer
// (without the //dflint:allow hatches racer carries) to pin down that
// the static suite flags the same program dfcheck's dynamic prong
// detects.
package racefix

type Addr int64

type Args [6]int64

type Thread struct{}

type Exec struct{}

func (e *Exec) Thread() *Thread            { return nil }
func (e *Exec) ReadF64(a Addr) float64     { return 0 }
func (e *Exec) WriteF64(a Addr, v float64) {}
func (e *Exec) Barrier()                   {}

type DSM struct{}

func (d *DSM) WriteF64(t *Thread, a Addr, v float64) {}

type Pool struct{}

func (p *Pool) Add(e *Exec, fn func(*Exec, Args), a Args) {}

type Runtime struct{}

func (rt *Runtime) NewPool(name string) *Pool { return nil }
func (rt *Runtime) RunPools(e *Exec)          {}

const words = 64

func seeded(rt *Runtime, e *Exec, d *DSM, data Addr) {
	pool := rt.NewPool("seeded")
	// Bug 1: the filament body indexes shared memory through a captured
	// plain int instead of its Args record.
	base := 4
	pool.Add(e, func(e *Exec, a Args) {
		_ = e.ReadF64(data + Addr(base*8)) // want "captured variable base"
	}, Args{})
	// Bug 2: i is assigned, not declared, by the for statement.
	var i int
	for i = 0; i < 4; i++ {
		pool.Add(e, func(e *Exec, a Args) { // want "captures loop variable i"
			_ = e.ReadF64(data + Addr(i%words)*8) // want "captured variable i"
		}, Args{})
	}
	// Bug 3: a DSM write distributed without an intervening barrier.
	d.WriteF64(e.Thread(), data, 1)
	rt.RunPools(e) // want "has not been published by a barrier"
	e.Barrier()
}
