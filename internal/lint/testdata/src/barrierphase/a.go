//dflint:kernel

// Hermetic stand-ins for the filament runtime: the analyzer matches on
// receiver type names (Exec, DSM, Runtime) and method names, so these
// fakes exercise the real code paths.
package barrierphase

type Addr int64

type Args [6]int64

type Thread struct{}

type Exec struct{}

func (e *Exec) Thread() *Thread                  { return nil }
func (e *Exec) ReadF64(a Addr) float64           { return 0 }
func (e *Exec) WriteF64(a Addr, v float64)       {}
func (e *Exec) WriteI64(a Addr, v int64)         {}
func (e *Exec) Barrier()                         {}
func (e *Exec) Reduce(x float64, op int) float64 { return 0 }

type DSM struct{}

func (d *DSM) WriteF64(t *Thread, a Addr, v float64) {}

type Join struct{}

type Runtime struct{}

func (rt *Runtime) NewJoin() *Join                              { return nil }
func (rt *Runtime) Fork(e *Exec, j *Join, fn int, a Args)       {}
func (rt *Runtime) RunPools(e *Exec)                            {}
func (rt *Runtime) RunForkJoin(e *Exec, fn int, a Args) float64 { return 0 }

func bad(rt *Runtime, e *Exec, d *DSM, a Addr) {
	e.WriteF64(a, 1)
	rt.RunPools(e) // want "has not been published by a barrier"
	d.WriteF64(e.Thread(), a, 2)
	rt.RunForkJoin(e, 1, Args{}) // want "has not been published by a barrier"
}

func badBranch(rt *Runtime, e *Exec, a Addr, cond bool) {
	if cond {
		e.WriteI64(a, 1)
	}
	// Dirty if either arm is: the write may have happened.
	rt.RunPools(e) // want "has not been published by a barrier"
}

func badLoopCarried(rt *Runtime, e *Exec, a Addr) {
	for i := 0; i < 3; i++ {
		// Clean on the first trip, but the write at the bottom of one
		// iteration reaches this distribution on the next.
		rt.RunPools(e) // want "has not been published by a barrier"
		e.WriteF64(a, float64(i))
	}
}

func good(rt *Runtime, e *Exec, d *DSM, a Addr, cond bool) {
	e.WriteF64(a, 1)
	e.Barrier()
	rt.RunPools(e)

	d.WriteF64(e.Thread(), a, 2)
	_ = e.Reduce(1, 0) // reductions ride the barrier: also a publish
	rt.RunForkJoin(e, 1, Args{})

	if cond {
		e.WriteF64(a, 3)
		e.Barrier()
	} else {
		e.Barrier()
	}
	rt.RunPools(e) // both arms end clean

	for i := 0; i < 3; i++ {
		e.WriteF64(a, float64(i))
		e.Barrier()
		rt.RunPools(e)
	}

	// Fork is not a trigger: shipping the task is itself a
	// happens-before edge, so write-then-Fork is ordered.
	j := rt.NewJoin()
	e.WriteF64(a, 4)
	rt.Fork(e, j, 1, Args{})
}

func filamentBodyIsItsOwnPhase(rt *Runtime, e *Exec, poolAdd func(func(*Exec, Args)), a Addr) {
	// The body's write happens when the filament runs, not here; it must
	// not dirty the enclosing function's phase.
	poolAdd(func(e *Exec, a2 Args) {
		e.WriteF64(a, 9)
	})
	rt.RunPools(e)
}

func allowed(rt *Runtime, e *Exec, a Addr) {
	e.WriteF64(a, 1)
	//dflint:allow barrierphase the pool is node-local in this phase
	rt.RunPools(e)
}
