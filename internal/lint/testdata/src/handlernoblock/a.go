//dflint:kernel

package handlernoblock

import "kernel"

type srv struct {
	tr kernel.Transport
}

func (s *srv) register(t kernel.Thread) {
	s.tr.Register(1, kernel.Service{
		Name: "bad-direct",
		Handler: func(from kernel.NodeID, req any) (any, int, kernel.Verdict) {
			v := s.tr.Call(t, from, 1, req, 0, 0) // want "must not block: kernel.Call"
			return v, 0, kernel.Reply
		},
	})
	s.tr.Register(2, kernel.Service{Name: "bad-indirect", Handler: s.serveIndirect}) // want "serveIndirect blocks .via helper"
	s.tr.HandleRaw(func(from kernel.NodeID, payload any) bool {
		t.Block() // want "raw datagram handler must not block: kernel.Block"
		return true
	})
	s.tr.RequestAsync(1, 1, nil, 0, 0, func(reply any) {
		t.Yield() // want "request callback must not block: kernel.Yield"
	})
}

func (s *srv) serveIndirect(from kernel.NodeID, req any) (any, int, kernel.Verdict) {
	helper(nil)
	return nil, 0, kernel.Reply
}

// helper blocks: it suspends the thread it is handed.
func helper(t kernel.Thread) {
	if t != nil {
		t.Block()
	}
}

func sched(ck kernel.Clock, t kernel.Thread) {
	ck.Schedule(5, func() {
		t.Preempt() // want "scheduled callback must not block: kernel.Preempt"
	})
}

// threadArg exercises the seam convention: passing the calling thread to
// a kernel-layer API means it may suspend, so a handler may not do it.
func (s *srv) threadArg(t kernel.Thread, acquire func(t kernel.Thread)) {
	s.tr.Register(5, kernel.Service{
		Handler: func(from kernel.NodeID, req any) (any, int, kernel.Verdict) {
			acquire(t) // want "acquire takes the calling kernel.Thread"
			return nil, 0, kernel.Reply
		},
	})
}

// good spawns a server thread; the spawned body may block freely — the
// nested function literal runs in thread context, not node context.
func (s *srv) good(ex kernel.Executor) {
	s.tr.Register(3, kernel.Service{
		Name: "good",
		Handler: func(from kernel.NodeID, req any) (any, int, kernel.Verdict) {
			ex.Spawn("worker", func(t kernel.Thread) {
				t.Block()
			})
			return nil, 0, kernel.Drop
		},
	})
}

func (s *srv) allowedHandler(t kernel.Thread) {
	s.tr.Register(4, kernel.Service{
		Handler: func(from kernel.NodeID, req any) (any, int, kernel.Verdict) {
			//dflint:allow handlernoblock startup barrier; runs before the monitor loop exists
			_ = s.tr.Call(t, from, 1, req, 0, 0)
			return nil, 0, kernel.Reply
		},
	})
}
