package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
)

// HandlerIdem verifies the at-least-once delivery contract that every
// transport in this module states in prose: a handler registered with
// Idempotent: true is re-executed for duplicate requests, and a
// HandleRaw handler receives raw datagrams the network itself can
// duplicate, so both must tolerate running twice with the same message.
//
// "Tolerate" is checked structurally. A mutation of shared state —
// state reachable from the handler's receiver, from a captured
// variable, or from a package variable — is idempotent when it is a
// pure overwrite (`x.f = v`, a map store, a delete, `|=`, `&=`): the
// second execution writes the same value. It is NOT idempotent when it
// accumulates (`x.f++`, `x.f += v`, `x.s = append(x.s, v)`, any
// assignment whose right side reads its own target), sends on a shared
// channel, or closes one (a double close panics). Non-idempotent
// mutations are accepted only when a dominating branch — AST nesting or
// an early return, the CFG treats them alike — tests *persistent* state
// (the dedup/sequence guards the transports rely on: `if st.released`,
// `if !st.arrived[from]`, `case m == nil`). A guard that only inspects
// the request is no protection: a duplicate carries the same request
// and passes it again.
//
// The analysis is interprocedural over the static call graph: a helper
// with an unguarded non-idempotent mutation of its receiver or a
// pointer parameter charges every call site that passes shared state
// in, and the call site then needs its own guard (this is how
// Membership.bump's gen++ is accepted — every handler-reachable call
// site is inside a state-tested branch). Dynamic calls (kernel
// interface methods, function values) are opaque leaves; bodies outside
// the program (stdlib) are assumed non-mutating.
//
// Deliberate exemptions, by policy: methods on sync and sync/atomic
// types (locks are per-execution; atomics are the subject of the
// atomicfield rule), and methods on internal/obs metric types — metrics
// deliberately count re-executions, double-counting a duplicate is
// signal, not corruption. Everything else needs a reviewed
// //dflint:allow handleridem with a reason.
var HandlerIdem = &ProgramAnalyzer{
	Name: "handleridem",
	Doc: "require handlers that re-execute on duplicate delivery (Idempotent: true " +
		"registrations, HandleRaw) to guard every non-idempotent shared-state mutation " +
		"with a test of persistent state",
	Run: runHandlerIdem,
}

func runHandlerIdem(pass *ProgramPass) {
	c := &idemChecker{
		pass:      pass,
		cg:        pass.Program.CallGraph(),
		summaries: make(map[*types.Func]*idemSummary),
		active:    make(map[*types.Func]bool),
		done:      make(map[*types.Func]bool),
	}
	seenLit := make(map[token.Pos]bool)
	for _, u := range pass.Program.Units {
		for _, f := range u.Files {
			unit := u
			ast.Inspect(f, func(n ast.Node) bool {
				h, ok := handlerRoot(unit.Info, n)
				if !ok || seenLit[h.Pos()] {
					return true
				}
				seenLit[h.Pos()] = true
				c.checkHandler(unit, h)
				return true
			})
		}
	}
}

// handlerRoot recognizes the two registration idioms that subject a
// handler to duplicate delivery: a Service{Idempotent: true, Handler:
// h} composite literal (kernel, udptrans, and the transconf harness all
// share the field names) and a HandleRaw(h) call.
func handlerRoot(info *types.Info, n ast.Node) (handler ast.Expr, ok bool) {
	switch n := n.(type) {
	case *ast.CompositeLit:
		tv, found := info.Types[n]
		if !found || !typeNamed(tv.Type, "Service") {
			return nil, false
		}
		var h ast.Expr
		idem := false
		for _, elt := range n.Elts {
			kv, isKV := elt.(*ast.KeyValueExpr)
			if !isKV {
				continue
			}
			key, isID := kv.Key.(*ast.Ident)
			if !isID {
				continue
			}
			switch key.Name {
			case "Handler":
				h = kv.Value
			case "Idempotent":
				if v, vok := info.Types[kv.Value]; vok && v.Value != nil && v.Value.String() == "true" {
					idem = true
				}
			}
		}
		if h == nil || !idem {
			return nil, false
		}
		return h, true
	case *ast.CallExpr:
		sel, isSel := ast.Unparen(n.Fun).(*ast.SelectorExpr)
		if !isSel || sel.Sel.Name != "HandleRaw" || len(n.Args) != 1 {
			return nil, false
		}
		return n.Args[0], true
	}
	return nil, false
}

// typeNamed reports whether t (possibly behind a pointer) is a named
// type with the given name, in any package.
func typeNamed(t types.Type, name string) bool {
	if t == nil {
		return false
	}
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	named, ok := t.(*types.Named)
	return ok && named.Obj().Name() == name
}

// --- The checker. ---

type idemChecker struct {
	pass *ProgramPass
	cg   *CallGraph
	// summaries caches, per function, the unguarded non-idempotent
	// mutations visible to callers, classified by root.
	summaries map[*types.Func]*idemSummary
	active    map[*types.Func]bool // cycle guard
	done      map[*types.Func]bool // handlers already reported
}

// rootKind says which binding site a shared value derives from.
type rootKind int

const (
	rootRecv rootKind = iota
	rootParam
	rootGlobal
)

type idemRoot struct {
	kind  rootKind
	param int // parameter index for rootParam
}

// An idemMutation is one unguarded non-idempotent mutation, positioned
// at its statement, with the route that discovered it.
type idemMutation struct {
	pos  token.Pos
	desc string
	root idemRoot
}

type idemSummary struct {
	muts []idemMutation
}

// checkHandler resolves the registered handler expression and reports
// its unguarded mutations.
func (c *idemChecker) checkHandler(unit *Unit, h ast.Expr) {
	switch e := ast.Unparen(h).(type) {
	case *ast.FuncLit:
		shared := capturedRoots(unit.Info, e)
		muts := c.analyzeBody(unit, e.Body, nil, shared, true)
		for _, m := range muts {
			c.report(m, "handler literal")
		}
	default:
		fn, ok := useOf(unit.Info, e).(*types.Func)
		if !ok || c.done[fn] {
			return
		}
		c.done[fn] = true
		node := c.cg.Node(fn)
		if node == nil || node.Decl.Body == nil {
			return
		}
		shared := make(map[types.Object]idemRoot)
		if ro := recvObj(node.Decl, node.Unit.Info); ro != nil {
			shared[ro] = idemRoot{kind: rootRecv}
		}
		muts := c.analyzeBody(node.Unit, node.Decl.Body, node.Decl, shared, true)
		for _, m := range muts {
			c.report(m, fn.Name())
		}
	}
}

func (c *idemChecker) report(m idemMutation, handler string) {
	c.pass.Reportf(m.pos,
		"retried handler %s: %s is not idempotent and no dominating guard tests persistent state — duplicates re-execute this; guard it, make it an overwrite, or //dflint:allow handleridem",
		handler, m.desc)
}

// summarize returns fn's unguarded mutations as seen by a caller,
// analyzing its body on first demand. A function with no body in the
// program, or one reached recursively, summarizes as clean.
func (c *idemChecker) summarize(fn *types.Func) *idemSummary {
	if s, ok := c.summaries[fn]; ok {
		return s
	}
	if c.active[fn] {
		return &idemSummary{}
	}
	node := c.cg.Node(fn)
	if node == nil || node.Decl.Body == nil {
		s := &idemSummary{}
		c.summaries[fn] = s
		return s
	}
	c.active[fn] = true
	shared := make(map[types.Object]idemRoot)
	if ro := recvObj(node.Decl, node.Unit.Info); ro != nil {
		shared[ro] = idemRoot{kind: rootRecv}
	}
	for i, po := range paramObjs(node.Decl, node.Unit.Info) {
		if po != nil && refLike(po.Type()) {
			shared[po] = idemRoot{kind: rootParam, param: i}
		}
	}
	muts := c.analyzeBody(node.Unit, node.Decl.Body, node.Decl, shared, false)
	delete(c.active, fn)
	s := &idemSummary{muts: muts}
	c.summaries[fn] = s
	return s
}

// recvObj returns the receiver's object, nil for functions and unnamed
// receivers.
func recvObj(fd *ast.FuncDecl, info *types.Info) types.Object {
	if fd.Recv == nil || len(fd.Recv.List) == 0 || len(fd.Recv.List[0].Names) == 0 {
		return nil
	}
	return info.Defs[fd.Recv.List[0].Names[0]]
}

// paramObjs returns the parameter objects in declaration order (nil for
// unnamed parameters).
func paramObjs(fd *ast.FuncDecl, info *types.Info) []types.Object {
	var out []types.Object
	for _, field := range fd.Type.Params.List {
		if len(field.Names) == 0 {
			out = append(out, nil)
			continue
		}
		for _, n := range field.Names {
			out = append(out, info.Defs[n])
		}
	}
	return out
}

// refLike reports whether values of t alias the caller's state rather
// than copying it.
func refLike(t types.Type) bool {
	switch t.Underlying().(type) {
	case *types.Pointer, *types.Map, *types.Chan, *types.Slice, *types.Interface:
		return true
	}
	return false
}

// capturedRoots seeds the shared set of a handler literal with the
// variables it captures from enclosing scopes (they outlive one
// delivery exactly like a receiver does).
func capturedRoots(info *types.Info, lit *ast.FuncLit) map[types.Object]idemRoot {
	shared := make(map[types.Object]idemRoot)
	ast.Inspect(lit.Body, func(n ast.Node) bool {
		id, ok := n.(*ast.Ident)
		if !ok {
			return true
		}
		v, ok := info.Uses[id].(*types.Var)
		if !ok || v.IsField() {
			return true
		}
		if v.Pos() < lit.Pos() || v.Pos() > lit.End() {
			shared[v] = idemRoot{kind: rootGlobal}
		}
		return true
	})
	return shared
}

// --- Per-body analysis. ---

// bodyAnalysis carries one function body through the mutation scan.
type bodyAnalysis struct {
	c      *idemChecker
	unit   *Unit
	body   *ast.BlockStmt
	flow   *Flow
	shared map[types.Object]idemRoot
	// derived marks locals of any type whose defining assignment reads
	// shared state (`st, ok := states[key]`). They are not mutation
	// roots, but a guard that tests one is testing persistent state —
	// the comma-ok dedup idiom hinges on exactly this.
	derived map[types.Object]bool
	// handlerMode: true when body IS the registered handler, where
	// parameters are request data (not shared) and every unguarded
	// mutation is reported; false for callees, where reference
	// parameters are shared and mutations become the summary.
	handlerMode bool

	// stmtSpans maps each CFG-recorded statement to its block, for
	// locating arbitrary nested nodes.
	recorded []recordedStmt
}

type recordedStmt struct {
	node  ast.Node
	block *FlowBlock
}

// analyzeBody scans one body and returns its unguarded non-idempotent
// mutations.
func (c *idemChecker) analyzeBody(unit *Unit, body *ast.BlockStmt, fd *ast.FuncDecl, shared map[types.Object]idemRoot, handlerMode bool) []idemMutation {
	a := &bodyAnalysis{
		c:           c,
		unit:        unit,
		body:        body,
		flow:        BuildFlow(body),
		shared:      shared,
		derived:     make(map[types.Object]bool),
		handlerMode: handlerMode,
	}
	for n, b := range a.flow.blockOf {
		a.recorded = append(a.recorded, recordedStmt{node: n, block: b})
	}
	a.propagate()
	return a.scan()
}

// propagate grows the shared set to locals assigned from shared values
// of reference-like type (`m := ms.find(addr)`), to a fixed point.
func (a *bodyAnalysis) propagate() {
	for changed := true; changed; {
		changed = false
		inspectSkipNestedFuncs(a.body, func(n ast.Node) bool {
			as, ok := n.(*ast.AssignStmt)
			if !ok || (as.Tok != token.ASSIGN && as.Tok != token.DEFINE) {
				return true
			}
			// n := m (1:1) and m, ok := f() (n:1) both propagate any
			// shared right side to every reference-like left side.
			anyShared := false
			for _, r := range as.Rhs {
				if _, ok := a.rootOf(r); ok {
					anyShared = true
					break
				}
			}
			// Any read of shared (or already-derived) state taints every
			// left side as guard-grade persistent-state evidence, whatever
			// its type: the ok of `st, ok := states[key]` carries exactly
			// the information the dedup guard needs.
			anyRead := false
			for _, r := range as.Rhs {
				if a.readsShared(r) {
					anyRead = true
					break
				}
			}
			if anyRead {
				for _, l := range as.Lhs {
					id, isID := ast.Unparen(l).(*ast.Ident)
					if !isID || id.Name == "_" {
						continue
					}
					obj := a.unit.Info.Defs[id]
					if obj == nil {
						obj = a.unit.Info.Uses[id]
					}
					if obj != nil && !a.derived[obj] {
						a.derived[obj] = true
						changed = true
					}
				}
			}
			if !anyShared {
				return true
			}
			for i, l := range as.Lhs {
				id, isID := ast.Unparen(l).(*ast.Ident)
				if !isID || id.Name == "_" {
					continue
				}
				obj := a.unit.Info.Defs[id]
				if obj == nil {
					obj = a.unit.Info.Uses[id]
				}
				if obj == nil || !refLike(obj.Type()) {
					continue
				}
				if _, have := a.shared[obj]; have {
					continue
				}
				// 1:1 assignments propagate per position; multi-value
				// right sides propagate their single root to all.
				root, ok := idemRoot{}, false
				if len(as.Rhs) == len(as.Lhs) {
					root, ok = a.rootOf(as.Rhs[i])
				} else if len(as.Rhs) == 1 {
					root, ok = a.rootOf(as.Rhs[0])
				}
				if ok {
					a.shared[obj] = root
					changed = true
				}
			}
			return true
		})
	}
}

// rootOf resolves which shared root (if any) the value of e derives
// from.
func (a *bodyAnalysis) rootOf(e ast.Expr) (idemRoot, bool) {
	switch e := ast.Unparen(e).(type) {
	case *ast.Ident:
		obj := a.unit.Info.Uses[e]
		if obj == nil {
			obj = a.unit.Info.Defs[e]
		}
		return a.rootOfObj(obj)
	case *ast.SelectorExpr:
		// Qualified package member (pkg.Var) or field chain (x.f).
		if id, ok := e.X.(*ast.Ident); ok {
			if _, isPkg := a.unit.Info.Uses[id].(*types.PkgName); isPkg {
				return a.rootOfObj(a.unit.Info.Uses[e.Sel])
			}
		}
		return a.rootOf(e.X)
	case *ast.IndexExpr:
		return a.rootOf(e.X)
	case *ast.StarExpr:
		return a.rootOf(e.X)
	case *ast.SliceExpr:
		return a.rootOf(e.X)
	case *ast.TypeAssertExpr:
		return a.rootOf(e.X)
	case *ast.UnaryExpr:
		if e.Op == token.AND {
			return a.rootOf(e.X)
		}
	case *ast.CallExpr:
		// A call returning into shared state: method on a shared
		// receiver (ms.find(addr)) or any shared argument.
		if sel, ok := ast.Unparen(e.Fun).(*ast.SelectorExpr); ok {
			if r, ok := a.rootOf(sel.X); ok {
				return r, true
			}
		}
		for _, arg := range e.Args {
			if r, ok := a.rootOf(arg); ok {
				return r, true
			}
		}
	}
	return idemRoot{}, false
}

func (a *bodyAnalysis) rootOfObj(obj types.Object) (idemRoot, bool) {
	if obj == nil {
		return idemRoot{}, false
	}
	if r, ok := a.shared[obj]; ok {
		return r, true
	}
	if v, ok := obj.(*types.Var); ok && !v.IsField() && v.Pkg() != nil &&
		v.Parent() == v.Pkg().Scope() {
		return idemRoot{kind: rootGlobal}, true
	}
	return idemRoot{}, false
}

// persistTarget classifies an lvalue: does writing it outlive one
// delivery, and through which root? A bare local or parameter is a
// per-execution location; anything reached through a selector, index,
// or dereference from a shared root is persistent, as is a package
// variable itself.
func (a *bodyAnalysis) persistTarget(lv ast.Expr) (idemRoot, bool) {
	switch e := ast.Unparen(lv).(type) {
	case *ast.Ident:
		obj := a.unit.Info.Uses[e]
		if obj == nil {
			obj = a.unit.Info.Defs[e]
		}
		if v, ok := obj.(*types.Var); ok && !v.IsField() && v.Pkg() != nil &&
			v.Parent() == v.Pkg().Scope() {
			return idemRoot{kind: rootGlobal}, true
		}
		// A captured variable is itself a persistent location.
		if r, ok := a.shared[obj]; ok && r.kind == rootGlobal {
			return r, true
		}
		return idemRoot{}, false
	case *ast.SelectorExpr, *ast.IndexExpr, *ast.StarExpr:
		return a.rootOf(lv)
	}
	return idemRoot{}, false
}

// scan finds the non-idempotent mutations and filters the guarded ones.
func (a *bodyAnalysis) scan() []idemMutation {
	var muts []idemMutation
	add := func(n ast.Node, desc string, root idemRoot) {
		if a.guarded(n) {
			return
		}
		muts = append(muts, idemMutation{pos: n.Pos(), desc: desc, root: root})
	}

	inspectSkipNestedFuncs(a.body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.IncDecStmt:
			if root, ok := a.persistTarget(n.X); ok {
				add(n, fmt.Sprintf("%s%s", types.ExprString(n.X), n.Tok), root)
			}
		case *ast.AssignStmt:
			a.scanAssign(n, add)
		case *ast.SendStmt:
			if root, ok := a.rootOf(n.Chan); ok {
				add(n, fmt.Sprintf("send on shared channel %s", types.ExprString(n.Chan)), root)
			}
		case *ast.CallExpr:
			a.scanCall(n, add)
		}
		return true
	})
	return muts
}

// scanAssign classifies one assignment's left sides.
func (a *bodyAnalysis) scanAssign(as *ast.AssignStmt, add func(ast.Node, string, idemRoot)) {
	switch as.Tok {
	case token.ASSIGN, token.DEFINE:
		for i, lhs := range as.Lhs {
			root, ok := a.persistTarget(lhs)
			if !ok {
				continue
			}
			// A plain store into shared state is an idempotent
			// overwrite — unless the right side reads its own target
			// (read-modify-write) or grows it (self-append).
			if len(as.Rhs) != len(as.Lhs) {
				continue // multi-value: f() cannot read lhs after the fact
			}
			rhs := as.Rhs[i]
			lpath := types.ExprString(ast.Unparen(lhs))
			if call, isCall := ast.Unparen(rhs).(*ast.CallExpr); isCall {
				if id, isID := ast.Unparen(call.Fun).(*ast.Ident); isID && id.Name == "append" &&
					len(call.Args) > 0 && types.ExprString(ast.Unparen(call.Args[0])) == lpath {
					add(as, fmt.Sprintf("%s = append(%s, ...) grows on every re-execution", lpath, lpath), root)
					continue
				}
			}
			if readsPath(rhs, lpath) {
				add(as, fmt.Sprintf("%s = ...%s... (read-modify-write)", lpath, lpath), root)
			}
		}
	case token.OR_ASSIGN, token.AND_ASSIGN:
		// x |= v and x &= v converge: the second execution is a no-op.
	default:
		// +=, -=, *=, /=, %=, ^=, <<=, >>=, &^=: accumulating.
		for _, lhs := range as.Lhs {
			if root, ok := a.persistTarget(lhs); ok {
				add(as, fmt.Sprintf("%s %s ...", types.ExprString(lhs), as.Tok), root)
			}
		}
	}
}

// scanCall charges close() on shared channels and calls whose callee
// summary carries unguarded mutations bound to shared state here.
func (a *bodyAnalysis) scanCall(call *ast.CallExpr, add func(ast.Node, string, idemRoot)) {
	if id, ok := ast.Unparen(call.Fun).(*ast.Ident); ok {
		if _, isBuiltin := a.unit.Info.Uses[id].(*types.Builtin); isBuiltin || a.unit.Info.Uses[id] == nil {
			if id.Name == "close" && len(call.Args) == 1 {
				if root, ok := a.rootOf(call.Args[0]); ok {
					add(call, fmt.Sprintf("close(%s) panics on the duplicate", types.ExprString(call.Args[0])), root)
				}
			}
			return
		}
	}
	callee := StaticCallee(a.unit.Info, call)
	if callee == nil || idemExemptCallee(callee) {
		return
	}
	sum := a.c.summarize(callee)
	for _, m := range sum.muts {
		root, charged := a.bindMutation(call, m)
		if !charged {
			continue
		}
		add(call, fmt.Sprintf("call to %s (which does %s at %s)",
			callee.Name(), m.desc, a.c.pass.Program.Fset.Position(m.pos)), root)
	}
}

// bindMutation maps a callee-summary mutation root onto this call
// site's actual receiver/arguments.
func (a *bodyAnalysis) bindMutation(call *ast.CallExpr, m idemMutation) (idemRoot, bool) {
	switch m.root.kind {
	case rootGlobal:
		return m.root, true
	case rootRecv:
		if sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr); ok {
			return a.rootOf(sel.X)
		}
	case rootParam:
		if m.root.param < len(call.Args) {
			return a.rootOf(call.Args[m.root.param])
		}
	}
	return idemRoot{}, false
}

// idemExemptCallee implements the policy exemptions: sync primitives,
// atomics, and obs metrics.
func idemExemptCallee(fn *types.Func) bool {
	pkg := fn.Pkg()
	if pkg == nil {
		return true
	}
	switch pkg.Path() {
	case "sync", "sync/atomic", "atomic",
		"filaments/internal/obs", "obs":
		return true
	}
	return false
}

// guarded reports whether the statement containing n sits under a
// dominating branch whose condition (or matched case expressions) reads
// persistent state.
func (a *bodyAnalysis) guarded(n ast.Node) bool {
	b := a.enclosingBlock(n)
	if b == nil {
		return false
	}
	for _, g := range a.flow.Guards(b) {
		if g.Cond != nil && a.readsShared(g.Cond) {
			return true
		}
		for _, e := range g.Taken {
			if cc, ok := e.Clause.(*ast.CaseClause); ok {
				for _, ce := range cc.List {
					if a.readsShared(ce) {
						return true
					}
				}
			}
		}
	}
	return false
}

// enclosingBlock finds the CFG block of the innermost recorded
// statement spanning n.
func (a *bodyAnalysis) enclosingBlock(n ast.Node) *FlowBlock {
	if b := a.flow.BlockOf(n); b != nil {
		return b
	}
	var best *FlowBlock
	var bestSpan token.Pos = -1
	for _, r := range a.recorded {
		if r.node.Pos() <= n.Pos() && n.End() <= r.node.End() {
			span := r.node.End() - r.node.Pos()
			if bestSpan < 0 || span < bestSpan {
				best, bestSpan = r.block, span
			}
		}
	}
	return best
}

// readsShared reports whether e mentions any shared-derived value: the
// receiver, a captured or package variable, a reference parameter in
// callee mode, or a local propagated from one. Request parameters in
// handler mode are deliberately NOT shared — a guard that only tests
// the request passes again on the duplicate.
func (a *bodyAnalysis) readsShared(e ast.Expr) bool {
	found := false
	ast.Inspect(e, func(n ast.Node) bool {
		id, ok := n.(*ast.Ident)
		if !ok || found {
			return !found
		}
		obj := a.unit.Info.Uses[id]
		if _, ok := a.rootOfObj(obj); ok || a.derived[obj] {
			found = true
		}
		return !found
	})
	return found
}

// readsPath reports whether any subexpression of e renders to path
// (the textual lvalue), the read half of a read-modify-write.
func readsPath(e ast.Expr, path string) bool {
	found := false
	ast.Inspect(e, func(n ast.Node) bool {
		ex, ok := n.(ast.Expr)
		if !ok || found {
			return !found
		}
		switch ex.(type) {
		case *ast.Ident, *ast.SelectorExpr, *ast.IndexExpr, *ast.StarExpr:
			if types.ExprString(ex) == path {
				found = true
			}
		}
		return !found
	})
	return found
}
