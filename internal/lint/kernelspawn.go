package lint

import (
	"go/ast"
)

// kernelSyncForbidden are the sync package identifiers that smuggle
// binding-owned concurrency into kernel code.
var kernelSyncForbidden = map[string]bool{
	"WaitGroup": true,
	"Cond":      true,
	"NewCond":   true,
	"Mutex":     true,
	"RWMutex":   true,
	"Once":      true,
	"Map":       true,
}

// KernelSpawn flags raw goroutines and sync primitives in kernel-layer
// packages.
//
// Threading in kernel code must go through kernel.Executor (Spawn, Ready,
// Block): under the simulation that is how a thread becomes a scheduled
// proc on the node's one virtual CPU, and under rtnode it is how a
// goroutine acquires the node monitor. A raw `go` statement or a
// sync.WaitGroup/Cond bypasses both — the simulator never sees the
// thread (breaking determinism and cost accounting) and the rtnode
// monitor is not held (a data race on every kernel structure).
var KernelSpawn = &Analyzer{
	Name: "kernelspawn",
	Doc: "forbid raw go statements and sync primitives in kernel-layer packages; " +
		"use kernel.Executor (Spawn/Ready) and Thread.Block",
	Run: runKernelSpawn,
}

func runKernelSpawn(pass *Pass) {
	if !pass.Kernel() {
		return
	}
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.GoStmt:
				pass.Reportf(n.Pos(),
					"raw go statement in kernel-layer code: use kernel.Executor.Spawn so the thread runs under the node's scheduler/monitor")
			case *ast.SelectorExpr:
				obj := pass.Info.Uses[n.Sel]
				if obj == nil || obj.Pkg() == nil || obj.Pkg().Path() != "sync" {
					return true
				}
				if kernelSyncForbidden[obj.Name()] {
					pass.Reportf(n.Pos(),
						"sync.%s in kernel-layer code: node-context serialization is the binding's job; use kernel.Executor/Thread (Spawn, Ready, Block)",
						obj.Name())
				}
			}
			return true
		})
	}
}
