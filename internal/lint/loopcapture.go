package lint

import (
	"go/ast"
	"go/token"
	"go/types"
)

// LoopCapture flags closures handed to spawning calls that capture a
// loop variable the for statement merely ASSIGNS.
//
// Go 1.22 made `for i := ...` declare a fresh variable per iteration, so
// the classic capture bug is gone for the common form. It survives in
// the pre-declared form:
//
//	var i int
//	for i = 0; i < n; i++ {
//		pool.Add(e, func(e *Exec, a Args) { use(i) }, Args{})
//	}
//
// There is exactly one i; every filament added to the pool reads
// whatever it holds when the pool runs — normally the loop's final
// value. Filaments make the bug worse than ordinary goroutine capture
// because the body does not run until RunPools, long after the loop
// finished. This is the second seeded bug in internal/apps/racer.
//
// The rule fires when a closure that uses such a variable is an
// argument of a spawning call (Pool.Add, Runtime.AddAuto, a kernel
// Spawn, or an engine Go). Capturing a copy declared inside the loop
// body, or a `:=`-declared loop variable, is fine.
var LoopCapture = &Analyzer{
	Name: "loopcapture",
	Doc: "forbid closures handed to spawning calls from capturing a loop variable " +
		"that the for statement assigns rather than declares",
	Run: runLoopCapture,
}

// spawnCallNames are the method names that hand a closure to machinery
// that runs it later (or elsewhere): deferred execution is what turns a
// shared loop variable into a final-value bug.
var spawnCallNames = map[string]bool{
	"Add":     true, // Pool.Add
	"AddAuto": true, // Runtime.AddAuto
	"Spawn":   true, // kernel.Executor / threads.Node
	"Go":      true, // sim.Engine
}

func runLoopCapture(pass *Pass) {
	if !pass.Kernel() {
		return
	}
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			var shared []types.Object
			var body *ast.BlockStmt
			switch s := n.(type) {
			case *ast.ForStmt:
				if as, ok := s.Init.(*ast.AssignStmt); ok && as.Tok == token.ASSIGN {
					shared = assignedVars(pass.Info, as.Lhs)
				}
				body = s.Body
			case *ast.RangeStmt:
				if s.Tok == token.ASSIGN {
					shared = assignedVars(pass.Info, []ast.Expr{s.Key, s.Value})
				}
				body = s.Body
			default:
				return true
			}
			if len(shared) == 0 {
				return true
			}
			ast.Inspect(body, func(m ast.Node) bool {
				call, ok := m.(*ast.CallExpr)
				if !ok || !isSpawnCall(pass.Info, call) {
					return true
				}
				for _, arg := range call.Args {
					lit, ok := ast.Unparen(arg).(*ast.FuncLit)
					if !ok {
						continue
					}
					for _, obj := range shared {
						if usesObj(pass.Info, lit.Body, obj) {
							pass.Reportf(lit.Pos(),
								"closure captures loop variable %s, which the for statement assigns rather than declares: every instance shares its final value — declare it with := or pass it through Args",
								obj.Name())
						}
					}
				}
				return true
			})
			return true
		})
	}
}

// assignedVars resolves the identifiers a for statement assigns.
func assignedVars(info *types.Info, exprs []ast.Expr) []types.Object {
	var out []types.Object
	for _, e := range exprs {
		id, ok := e.(*ast.Ident)
		if !ok || id.Name == "_" {
			continue
		}
		if obj := info.Uses[id]; obj != nil {
			out = append(out, obj)
		}
	}
	return out
}

func isSpawnCall(info *types.Info, call *ast.CallExpr) bool {
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok {
		return false
	}
	fn, ok := info.Uses[sel.Sel].(*types.Func)
	if !ok {
		return false
	}
	sig, ok := fn.Type().(*types.Signature)
	return ok && sig.Recv() != nil && spawnCallNames[fn.Name()]
}

// usesObj reports whether the subtree references obj.
func usesObj(info *types.Info, root ast.Node, obj types.Object) bool {
	found := false
	ast.Inspect(root, func(n ast.Node) bool {
		if id, ok := n.(*ast.Ident); ok && info.Uses[id] == obj {
			found = true
		}
		return !found
	})
	return found
}
