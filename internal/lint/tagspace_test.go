package lint

import (
	"strings"
	"testing"
)

func manifestTags() []WireTag {
	return []WireTag{
		{Tag: 16, Type: "dsm.pageReq", Shape: "varint:Block bool:Write varint:HaveVer"},
		{Tag: 17, Type: "dsm.pageData", Shape: "varint:Block bytes:Data"},
		{Tag: 48, Type: "cluster.JoinMsg", Shape: "bytes:Addr"},
	}
}

func TestWireLockRoundTrip(t *testing.T) {
	tags := manifestTags()
	content := FormatWireLock(tags)
	if !strings.HasPrefix(content, "# WIRE.lock") {
		t.Errorf("manifest must open with its header comment")
	}
	if diffs := DiffWireLock(content, tags); len(diffs) != 0 {
		t.Errorf("round trip must be drift-free, got %v", diffs)
	}
}

func TestWireLockDrift(t *testing.T) {
	content := FormatWireLock(manifestTags())

	// A renumbered tag shows up as one disappearance plus one claim.
	renumbered := manifestTags()
	renumbered[2].Tag = 49
	diffs := DiffWireLock(content, renumbered)
	if len(diffs) != 2 {
		t.Fatalf("renumber: got %d diffs %v, want 2", len(diffs), diffs)
	}
	joined := strings.Join(diffs, "\n")
	if !strings.Contains(joined, "tag 49") || !strings.Contains(joined, "tag 48") {
		t.Errorf("renumber diffs must name both tags: %v", diffs)
	}

	// A field reorder changes the shape string.
	reordered := manifestTags()
	reordered[0].Shape = "bool:Write varint:Block varint:HaveVer"
	diffs = DiffWireLock(content, reordered)
	if len(diffs) != 1 || !strings.Contains(diffs[0], "changed wire shape") {
		t.Errorf("reorder: got %v, want one changed-shape diff", diffs)
	}

	// A retyped tag is called out as a renumbering hazard.
	retyped := manifestTags()
	retyped[2].Type = "cluster.LeaveMsg"
	diffs = DiffWireLock(content, retyped)
	if len(diffs) != 1 || !strings.Contains(diffs[0], "changed type") {
		t.Errorf("retype: got %v, want one changed-type diff", diffs)
	}

	// Unchanged wire format tolerates comment/whitespace edits.
	edited := "# local commentary\n\n" + content
	if diffs := DiffWireLock(edited, manifestTags()); len(diffs) != 0 {
		t.Errorf("comment edits must not read as drift: %v", diffs)
	}
}
