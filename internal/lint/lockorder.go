package lint

import (
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// LockOrder builds the program-wide lock-acquisition graph and flags
// the two static deadlock shapes the kernel's real-time binding can hit:
//
//   - a cycle in the acquired-while-held relation: somewhere A is
//     acquired with B held while elsewhere B is acquired with A held.
//     Two threads interleaving those paths deadlock; the fix is one
//     global acquisition order.
//   - a blocking seam call (Transport.Call, Thread.Block, any callee
//     that takes the calling kernel.Thread) with a mutex held. The
//     suspended thread keeps the lock, and the handler path that would
//     produce its wake-up needs that same lock — the monitor wedges.
//
// A lock class is the declaration of the mutex — a struct field or a
// package-level variable — so every instance of dsm's per-block lock is
// one class. That is deliberately coarse: per-instance cycles (two
// blocks locked in both orders) are real deadlocks this analyzer
// over-approximates into a self-edge, which it does NOT report, because
// ordered traversal over instances of one class is the normal idiom.
//
// Both properties are interprocedural: the held set at a call site is
// combined with the callee's transitive acquire summary over the
// program call graph, so a dsm function that locks and then calls into
// udptrans contributes edges no single package shows. Calls through
// interfaces or function values are opaque (no edges, no blocking).
// Held-set tracking is syntactic and path-insensitive — Lock marks the
// class held until a matching Unlock appears later in source order
// (deferred Unlocks hold to function end), which over-approximates
// branchy code in the conservative direction.
var LockOrder = &ProgramAnalyzer{
	Name: "lockorder",
	Doc: "flag lock-order cycles in the cross-package acquired-while-held graph and " +
		"blocking kernel-seam calls made with a mutex held",
	Run: runLockOrder,
}

type lockOpKind int

const (
	lockOpNone lockOpKind = iota
	lockOpAcquire
	lockOpRelease
)

// lockOp classifies call as a sync.Mutex/RWMutex acquire or release and
// resolves the lock class (the mutex's declaring field or package-level
// variable). Lock and RLock both count as acquires: readers participate
// in writer deadlock cycles.
func lockOp(info *types.Info, call *ast.CallExpr) (*types.Var, lockOpKind) {
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok {
		return nil, lockOpNone
	}
	fn, ok := info.Uses[sel.Sel].(*types.Func)
	if !ok || fn.Pkg() == nil {
		return nil, lockOpNone
	}
	if p := fn.Pkg().Path(); p != "sync" {
		return nil, lockOpNone
	}
	var kind lockOpKind
	switch fn.Name() {
	case "Lock", "RLock":
		kind = lockOpAcquire
	case "Unlock", "RUnlock":
		kind = lockOpRelease
	default:
		return nil, lockOpNone
	}
	recv := ast.Unparen(sel.X)
	if !isMutexExpr(info, recv) {
		return nil, lockOpNone
	}
	return lockClassOf(info, recv), kind
}

// isMutexExpr guards against sync.Locker lookalikes: the receiver must
// actually be a sync.Mutex or sync.RWMutex value.
func isMutexExpr(info *types.Info, e ast.Expr) bool {
	tv, ok := info.Types[e]
	if !ok {
		return false
	}
	return isPkgType(tv.Type, "sync", "Mutex") || isPkgType(tv.Type, "sync", "RWMutex")
}

// lockClassOf resolves the mutex expression to its declaration: the
// struct field for s.mu (one class per field, shared by all instances)
// or the package-level/local variable for a bare identifier. nil when
// the expression is too dynamic to classify.
func lockClassOf(info *types.Info, e ast.Expr) *types.Var {
	switch e := ast.Unparen(e).(type) {
	case *ast.Ident:
		if v, ok := info.Uses[e].(*types.Var); ok {
			return v
		}
		if v, ok := info.Defs[e].(*types.Var); ok {
			return v
		}
	case *ast.SelectorExpr:
		if v, ok := info.Uses[e.Sel].(*types.Var); ok {
			return v
		}
	case *ast.IndexExpr:
		return lockClassOf(info, e.X)
	case *ast.StarExpr:
		return lockClassOf(info, e.X)
	}
	return nil
}

// lockClassDisplay names a class for diagnostics: pkg.Type.field for
// struct fields, pkg.var for package-level variables, the bare name for
// locals. The owning type is recovered from the acquisition site's
// receiver expression, so names is filled in lazily as classes appear.
func lockClassDisplay(info *types.Info, e ast.Expr, v *types.Var, names map[*types.Var]string) {
	if v == nil || names[v] != "" {
		return
	}
	name := v.Name()
	if sel, ok := ast.Unparen(e).(*ast.SelectorExpr); ok && v.IsField() {
		if tv, ok := info.Types[sel.X]; ok {
			t := tv.Type
			if p, ok := t.(*types.Pointer); ok {
				t = p.Elem()
			}
			if named, ok := t.(*types.Named); ok {
				name = named.Obj().Name() + "." + name
			}
		}
	}
	if v.Pkg() != nil {
		name = v.Pkg().Name() + "." + name
	}
	names[v] = name
}

type lockEdgeKey struct {
	from, to *types.Var
}

type lockEdgeWitness struct {
	pos  token.Pos
	posn token.Position
	desc string
}

func runLockOrder(pass *ProgramPass) {
	prog := pass.Program
	cg := prog.CallGraph()
	names := make(map[*types.Var]string)

	// Pass 1: direct acquire sets per function (naming classes as they
	// appear), then the transitive closure over the call graph.
	direct := make(map[*types.Func]map[*types.Var]bool)
	for obj, node := range cg.Funcs {
		info := node.Unit.Info
		var set map[*types.Var]bool
		inspectSkipNestedFuncs(node.Decl.Body, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			class, kind := lockOp(info, call)
			if kind == lockOpAcquire && class != nil {
				if sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr); ok {
					lockClassDisplay(info, sel.X, class, names)
				}
				if set == nil {
					set = make(map[*types.Var]bool)
				}
				set[class] = true
			}
			return true
		})
		if set != nil {
			direct[obj] = set
		}
	}
	trans := make(map[*types.Func]map[*types.Var]bool)
	for obj, set := range direct {
		cp := make(map[*types.Var]bool, len(set))
		for c := range set {
			cp[c] = true
		}
		trans[obj] = cp
	}
	for changed := true; changed; {
		changed = false
		for obj, node := range cg.Funcs {
			for _, cs := range node.Calls {
				callee := trans[cs.Callee]
				if callee == nil {
					continue
				}
				mine := trans[obj]
				if mine == nil {
					mine = make(map[*types.Var]bool)
					trans[obj] = mine
				}
				for c := range callee {
					if !mine[c] {
						mine[c] = true
						changed = true
					}
				}
			}
		}
	}

	// Blocking summaries over the whole program, same shape as
	// handlernoblock's per-package fixed point.
	blocksVia := make(map[*types.Func]string)
	for changed := true; changed; {
		changed = false
		for obj, node := range cg.Funcs {
			if _, done := blocksVia[obj]; done {
				continue
			}
			info := node.Unit.Info
			witness := ""
			inspectSkipNestedFuncs(node.Decl.Body, func(n ast.Node) bool {
				if witness != "" {
					return false
				}
				if _, ok := n.(*ast.DeferStmt); ok {
					return false
				}
				call, ok := n.(*ast.CallExpr)
				if !ok {
					return true
				}
				if w, ok := blockingCall(info, call); ok {
					witness = w
					return false
				}
				if callee := StaticCallee(info, call); callee != nil {
					if w, ok := blocksVia[callee]; ok {
						witness = callee.Name() + " → " + w
						return false
					}
				}
				return true
			})
			if witness != "" {
				blocksVia[obj] = witness
				changed = true
			}
		}
	}

	// Pass 2: walk each body in source order tracking the held set;
	// every acquire (direct, or via a callee's summary) under a held
	// class adds an edge, and every blocking call under a held class is
	// reported immediately.
	edges := make(map[lockEdgeKey]lockEdgeWitness)
	addEdge := func(from, to *types.Var, pos token.Pos, desc string) {
		if from == to {
			return // instance ordering within one class is the caller's idiom
		}
		posn := prog.Fset.Position(pos)
		key := lockEdgeKey{from, to}
		if old, ok := edges[key]; ok && lessPosition(old.posn, posn) {
			return
		}
		edges[key] = lockEdgeWitness{pos: pos, posn: posn, desc: desc}
	}
	for obj, node := range cg.Funcs {
		_ = obj
		info := node.Unit.Info
		var held []*types.Var
		release := func(class *types.Var) {
			for i := len(held) - 1; i >= 0; i-- {
				if held[i] == class {
					held = append(held[:i], held[i+1:]...)
					return
				}
			}
		}
		inspectSkipNestedFuncs(node.Decl.Body, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.DeferStmt:
				// A deferred Unlock releases at return: the class simply
				// stays held for the rest of the walk. Other deferred
				// work runs with the locks of that moment; skip it.
				return false
			case *ast.GoStmt:
				// A spawned goroutine does not run under our held set.
				return false
			case *ast.CallExpr:
				class, kind := lockOp(info, n)
				switch kind {
				case lockOpAcquire:
					if class != nil {
						for _, h := range held {
							addEdge(h, class, n.Pos(), "acquired directly")
						}
						held = append(held, class)
					}
					return true
				case lockOpRelease:
					if class != nil {
						release(class)
					}
					return true
				}
				if len(held) == 0 {
					return true
				}
				holding := names[held[len(held)-1]]
				if w, ok := blockingCall(info, n); ok {
					pass.Reportf(n.Pos(),
						"%s with %s held: the suspended thread keeps the lock while the wake-up path needs it; release before blocking",
						w, holding)
					return true
				}
				callee := StaticCallee(info, n)
				if callee == nil {
					return true
				}
				if w, ok := blocksVia[callee]; ok {
					pass.Reportf(n.Pos(),
						"%s blocks (via %s) and is called with %s held; release before blocking",
						callee.Name(), w, holding)
				}
				for c := range trans[callee] {
					for _, h := range held {
						addEdge(h, c, n.Pos(), "acquired via "+callee.Name())
					}
				}
				return true
			}
			return true
		})
	}

	reportLockCycles(pass, edges, names)
}

// lessPosition orders token positions for deterministic edge witnesses.
func lessPosition(a, b token.Position) bool {
	if a.Filename != b.Filename {
		return a.Filename < b.Filename
	}
	if a.Line != b.Line {
		return a.Line < b.Line
	}
	return a.Column < b.Column
}

// reportLockCycles finds strongly connected components of the edge
// graph and reports every edge inside a multi-node component at its
// witness position.
func reportLockCycles(pass *ProgramPass, edges map[lockEdgeKey]lockEdgeWitness, names map[*types.Var]string) {
	succ := make(map[*types.Var][]*types.Var)
	nodes := make(map[*types.Var]bool)
	for k := range edges {
		succ[k.from] = append(succ[k.from], k.to)
		nodes[k.from] = true
		nodes[k.to] = true
	}

	// Tarjan's SCC, iterative enough for our graph sizes via recursion.
	index := make(map[*types.Var]int)
	low := make(map[*types.Var]int)
	onStack := make(map[*types.Var]bool)
	comp := make(map[*types.Var]int)
	var stack []*types.Var
	next, ncomp := 0, 0
	var strongconnect func(v *types.Var)
	strongconnect = func(v *types.Var) {
		index[v] = next
		low[v] = next
		next++
		stack = append(stack, v)
		onStack[v] = true
		for _, w := range succ[v] {
			if _, seen := index[w]; !seen {
				strongconnect(w)
				if low[w] < low[v] {
					low[v] = low[w]
				}
			} else if onStack[w] && index[w] < low[v] {
				low[v] = index[w]
			}
		}
		if low[v] == index[v] {
			for {
				w := stack[len(stack)-1]
				stack = stack[:len(stack)-1]
				onStack[w] = false
				comp[w] = ncomp
				if w == v {
					break
				}
			}
			ncomp++
		}
	}
	// Deterministic visit order by class name.
	var ordered []*types.Var
	for v := range nodes {
		ordered = append(ordered, v)
	}
	sort.Slice(ordered, func(i, j int) bool { return names[ordered[i]] < names[ordered[j]] })
	for _, v := range ordered {
		if _, seen := index[v]; !seen {
			strongconnect(v)
		}
	}

	compSize := make(map[int]int)
	for _, c := range comp {
		compSize[c]++
	}
	for k, w := range edges {
		if comp[k.from] != comp[k.to] || compSize[comp[k.from]] < 2 {
			continue
		}
		var members []string
		for v, c := range comp {
			if c == comp[k.from] {
				members = append(members, names[v])
			}
		}
		sort.Strings(members)
		pass.Reportf(w.pos,
			"lock-order cycle: %s is %s while %s is held, and the reverse order also occurs (cycle members: %s); acquire kernel locks in one global order",
			names[k.to], w.desc, names[k.from], strings.Join(members, ", "))
	}
}
