package lint

import (
	"go/ast"
	"go/types"
)

// MapRange flags `for range` over maps in kernel-layer packages.
//
// Go randomizes map iteration order per run. Kernel code executes under a
// simulation whose figures are asserted byte-for-byte: if a loop's body
// sends messages, charges CPU time, or wakes threads in map order, two
// runs of the same experiment produce different event interleavings and
// the exact-time tests break nondeterministically. Loops whose effect is
// genuinely order-insensitive (pure accumulation into a commutative
// reduction, assertions in tests) carry an explicit escape hatch:
//
//	//dflint:allow maprange <why the order cannot matter>
var MapRange = &Analyzer{
	Name: "maprange",
	Doc: "forbid map iteration in kernel-layer packages unless annotated " +
		"order-insensitive; map order nondeterminism breaks the bitwise-exact figures",
	Run: runMapRange,
}

func runMapRange(pass *Pass) {
	if !pass.Kernel() {
		return
	}
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			rng, ok := n.(*ast.RangeStmt)
			if !ok {
				return true
			}
			tv, ok := pass.Info.Types[rng.X]
			if !ok || tv.Type == nil {
				return true
			}
			if _, isMap := tv.Type.Underlying().(*types.Map); !isMap {
				return true
			}
			pass.Reportf(rng.For,
				"range over map %s iterates in nondeterministic order; make the loop order explicit, or annotate //dflint:allow maprange <reason> if order cannot matter",
				types.TypeString(tv.Type, types.RelativeTo(pass.Pkg)))
			return true
		})
	}
}
