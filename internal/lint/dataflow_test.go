package lint

import (
	"go/ast"
	"go/parser"
	"go/token"
	"go/types"
	"testing"
)

// parseBody type-checks one single-file package and returns the named
// function's body with its type info.
func parseBody(t *testing.T, src, fn string) (*types.Info, *ast.BlockStmt) {
	t.Helper()
	fset := token.NewFileSet()
	f, err := parser.ParseFile(fset, "flow.go", src, parser.ParseComments)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	info := NewInfo()
	conf := types.Config{}
	if _, err := conf.Check("p", fset, []*ast.File{f}, info); err != nil {
		t.Fatalf("typecheck: %v", err)
	}
	for _, d := range f.Decls {
		if fd, ok := d.(*ast.FuncDecl); ok && fd.Name.Name == fn {
			return info, fd.Body
		}
	}
	t.Fatalf("no function %s", fn)
	return nil, nil
}

// findAssign locates the assignment whose sole LHS renders to lhs and
// whose RHS renders to rhs.
func findAssign(t *testing.T, body *ast.BlockStmt, lhs, rhs string) *ast.AssignStmt {
	t.Helper()
	var out *ast.AssignStmt
	ast.Inspect(body, func(n ast.Node) bool {
		as, ok := n.(*ast.AssignStmt)
		if !ok || len(as.Lhs) != 1 || len(as.Rhs) != 1 {
			return true
		}
		if types.ExprString(as.Lhs[0]) == lhs && types.ExprString(as.Rhs[0]) == rhs {
			out = as
		}
		return true
	})
	if out == nil {
		t.Fatalf("no assignment %s = %s", lhs, rhs)
	}
	return out
}

const flowSrc = `package p

func f(x int, done bool) int {
	y := 0
	if x > 0 {
		y = 1
		return y
	}
	y = 2
	for i := 0; i < x; i++ {
		if done {
			y = 3
		}
	}
	switch x {
	case 1:
		y = 10
	default:
		y = 20
	}
	return y
}
`

func TestFlowDominators(t *testing.T) {
	_, body := parseBody(t, flowSrc, "f")
	f := BuildFlow(body)

	inThen := f.BlockOf(findAssign(t, body, "y", "1"))
	afterIf := f.BlockOf(findAssign(t, body, "y", "2"))
	inLoop := f.BlockOf(findAssign(t, body, "y", "3"))
	if inThen == nil || afterIf == nil || inLoop == nil {
		t.Fatalf("statements not mapped to blocks")
	}

	if !f.Dominates(f.Entry, inThen) || !f.Dominates(f.Entry, afterIf) {
		t.Errorf("entry must dominate every block")
	}
	if f.Dominates(inThen, afterIf) {
		t.Errorf("the taken-branch block must not dominate the join")
	}
	if !f.Dominates(afterIf, inLoop) {
		t.Errorf("straight-line predecessor must dominate the loop body")
	}
}

func TestFlowGuards(t *testing.T) {
	_, body := parseBody(t, flowSrc, "f")
	f := BuildFlow(body)

	// y = 1 is guarded by `x > 0`, taken on the true edge only.
	guards := f.Guards(f.BlockOf(findAssign(t, body, "y", "1")))
	if len(guards) != 1 {
		t.Fatalf("y = 1: got %d guards, want 1", len(guards))
	}
	if got := types.ExprString(guards[0].Cond); got != "x > 0" {
		t.Errorf("y = 1 guard cond = %q, want \"x > 0\"", got)
	}
	for _, e := range guards[0].Taken {
		if e.Kind != EdgeTrue {
			t.Errorf("y = 1 taken edge kind = %v, want EdgeTrue", e.Kind)
		}
	}

	// y = 2 runs after the if rejoins only because the then-branch
	// returns: `x > 0` still decides whether it runs (false edge).
	guards = f.Guards(f.BlockOf(findAssign(t, body, "y", "2")))
	if len(guards) != 1 || types.ExprString(guards[0].Cond) != "x > 0" {
		t.Fatalf("y = 2: want the early-return guard \"x > 0\", got %d guards", len(guards))
	}
	for _, e := range guards[0].Taken {
		if e.Kind != EdgeFalse {
			t.Errorf("y = 2 taken edge kind = %v, want EdgeFalse", e.Kind)
		}
	}

	// y = 3 sits in an if inside a loop. The loop's back edge must not
	// wash out the `done` guard (the reaches-avoiding rule).
	guards = f.Guards(f.BlockOf(findAssign(t, body, "y", "3")))
	conds := map[string]bool{}
	for _, g := range guards {
		if g.Cond != nil {
			conds[types.ExprString(g.Cond)] = true
		}
	}
	if !conds["done"] {
		t.Errorf("y = 3: guard set %v must include the in-loop condition \"done\"", conds)
	}
	if !conds["i < x"] {
		t.Errorf("y = 3: guard set %v must include the loop condition \"i < x\"", conds)
	}

	// The final return is NOT guarded by the switch (both arms rejoin),
	// but it is by the early return's condition and by the loop exit:
	// reaching it means x > 0 was false and i < x last evaluated false.
	var ret ast.Stmt
	for _, s := range body.List {
		if _, ok := s.(*ast.ReturnStmt); ok {
			ret = s
		}
	}
	conds = map[string]bool{}
	for _, g := range f.Guards(f.BlockOf(ret)) {
		if g.Cond != nil {
			conds[types.ExprString(g.Cond)] = true
		}
		for _, e := range g.Taken {
			if e.Kind == EdgeTrue {
				t.Errorf("final return guard %q taken on the true edge", types.ExprString(g.Cond))
			}
		}
	}
	if len(conds) != 2 || !conds["x > 0"] || !conds["i < x"] {
		t.Errorf("final return: guard set %v, want {x > 0, i < x}", conds)
	}
}

func TestFlowSwitchGuards(t *testing.T) {
	_, body := parseBody(t, flowSrc, "f")
	f := BuildFlow(body)

	// y = 10 is reached only through `case 1`.
	guards := f.Guards(f.BlockOf(findAssign(t, body, "y", "10")))
	foundCase := false
	for _, g := range guards {
		for _, e := range g.Taken {
			if e.Kind == EdgeCase {
				if cc, ok := e.Clause.(*ast.CaseClause); ok && len(cc.List) == 1 {
					foundCase = true
				}
			}
		}
	}
	if !foundCase {
		t.Errorf("y = 10 must be guarded by its case clause edge")
	}
}

func TestBuildDefUse(t *testing.T) {
	info, body := parseBody(t, flowSrc, "f")
	du := BuildDefUse(info, body)

	var y types.Object
	for obj := range du.Defs {
		if obj.Name() == "y" {
			y = obj
		}
	}
	if y == nil {
		t.Fatalf("no defs recorded for y")
	}
	// y := 0, y = 1, y = 2, y = 3, y = 10, y = 20.
	if got := len(du.Defs[y]); got != 6 {
		t.Errorf("y: got %d defs, want 6", got)
	}
	// return y (twice); the writes' LHS mentions are defs, not uses.
	if got := len(du.Uses[y]); got != 2 {
		t.Errorf("y: got %d uses, want 2", got)
	}
}
