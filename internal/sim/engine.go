// Package sim provides a deterministic discrete-event simulation engine.
//
// The engine maintains a virtual clock and a priority queue of events.
// Code runs in one of two forms: plain events (closures fired at a virtual
// time) and processes (Proc), which are goroutine-backed coroutines that can
// sleep for virtual durations and park/unpark, giving them the blocking
// semantics of threads while virtual time stays fully deterministic.
//
// Exactly one goroutine — either the engine itself or a single running
// process — executes at any moment, so simulation state needs no locking.
// Events scheduled for the same virtual time fire in the order they were
// scheduled.
package sim

import (
	"container/heap"
	"fmt"
	"math/rand"
	"sort"
)

// Time is a point in virtual time, in nanoseconds since the start of the
// simulation.
type Time int64

// Duration is a span of virtual time in nanoseconds. It mirrors
// time.Duration but is a distinct type so real and virtual time cannot be
// mixed accidentally.
type Duration int64

// Common durations.
const (
	Nanosecond  Duration = 1
	Microsecond          = 1000 * Nanosecond
	Millisecond          = 1000 * Microsecond
	Second               = 1000 * Millisecond
)

// Seconds reports the time as a floating-point number of seconds.
func (t Time) Seconds() float64 { return float64(t) / float64(Second) }

// Milliseconds reports the time as a floating-point number of milliseconds.
func (t Time) Milliseconds() float64 { return float64(t) / float64(Millisecond) }

// Microseconds reports the time as a floating-point number of microseconds.
func (t Time) Microseconds() float64 { return float64(t) / float64(Microsecond) }

// Add returns the time advanced by d.
func (t Time) Add(d Duration) Time { return t + Time(d) }

// Sub returns the duration elapsed from u to t.
func (t Time) Sub(u Time) Duration { return Duration(t - u) }

// Seconds reports the duration as a floating-point number of seconds.
func (d Duration) Seconds() float64 { return float64(d) / float64(Second) }

// Milliseconds reports the duration as a floating-point number of
// milliseconds.
func (d Duration) Milliseconds() float64 { return float64(d) / float64(Millisecond) }

// Microseconds reports the duration as a floating-point number of
// microseconds.
func (d Duration) Microseconds() float64 { return float64(d) / float64(Microsecond) }

func (d Duration) String() string {
	switch {
	case d >= Second:
		return fmt.Sprintf("%.3fs", d.Seconds())
	case d >= Millisecond:
		return fmt.Sprintf("%.3fms", d.Milliseconds())
	case d >= Microsecond:
		return fmt.Sprintf("%.3fµs", d.Microseconds())
	}
	return fmt.Sprintf("%dns", int64(d))
}

// event is a scheduled closure. Events with equal time fire in seq order.
type event struct {
	t        Time
	seq      uint64
	fn       func()
	canceled bool
}

type eventHeap []*event

func (h eventHeap) Len() int { return len(h) }
func (h eventHeap) Less(i, j int) bool {
	if h[i].t != h[j].t {
		return h[i].t < h[j].t
	}
	return h[i].seq < h[j].seq
}
func (h eventHeap) Swap(i, j int) { h[i], h[j] = h[j], h[i] }
func (h *eventHeap) Push(x any)   { *h = append(*h, x.(*event)) }
func (h *eventHeap) Pop() any {
	old := *h
	n := len(old)
	e := old[n-1]
	old[n-1] = nil
	*h = old[:n-1]
	return e
}
func (h eventHeap) peek() *event   { return h[0] }
func (h *eventHeap) pop() *event   { return heap.Pop(h).(*event) }
func (h *eventHeap) push(e *event) { heap.Push(h, e) }

// Engine is a discrete-event simulator. The zero value is not usable; call
// New.
type Engine struct {
	now     Time
	events  eventHeap
	seq     uint64
	procs   []*Proc
	running *Proc // the proc currently executing, nil if the engine is
	rng     *rand.Rand
	panic   any // panic value captured from a proc or event
	stopped bool
}

// New returns an engine with virtual time 0 and a deterministic random
// source derived from seed.
func New(seed int64) *Engine {
	return &Engine{rng: rand.New(rand.NewSource(seed))}
}

// Now returns the current virtual time.
func (e *Engine) Now() Time { return e.now }

// Rand returns the engine's deterministic random source. It must only be
// used from simulation code (events and procs).
func (e *Engine) Rand() *rand.Rand { return e.rng }

// Current returns the process that is executing right now, or nil when
// plain event code (or nothing) is running. It lets layered code charge
// virtual CPU time to "whoever is running" without threading a *Proc
// through every call.
func (e *Engine) Current() *Proc { return e.running }

// Timer is a handle to a scheduled event that can be canceled.
type Timer struct{ ev *event }

// Stop cancels the timer. It is a no-op if the event already fired. It
// reports whether the event was still pending.
func (t *Timer) Stop() bool {
	if t == nil || t.ev == nil || t.ev.canceled {
		return false
	}
	t.ev.canceled = true
	return true
}

// Schedule arranges for fn to run after virtual duration d. A negative d is
// treated as zero. It returns a Timer that can cancel the event.
func (e *Engine) Schedule(d Duration, fn func()) *Timer {
	if d < 0 {
		d = 0
	}
	return e.ScheduleAt(e.now.Add(d), fn)
}

// ScheduleAt arranges for fn to run at virtual time t, which must not be in
// the past.
func (e *Engine) ScheduleAt(t Time, fn func()) *Timer {
	if t < e.now {
		panic(fmt.Sprintf("sim: ScheduleAt(%d) is before now (%d)", t, e.now))
	}
	ev := &event{t: t, seq: e.seq, fn: fn}
	e.seq++
	e.events.push(ev)
	return &Timer{ev: ev}
}

// Stop makes Run return after the current event or process step completes.
// Pending events remain queued; a subsequent Run resumes them.
func (e *Engine) Stop() { e.stopped = true }

// Run executes events in virtual-time order until no events remain or Stop
// is called. It returns an error if any processes are still parked when the
// event queue drains (a deadlock in the simulated system). If simulation
// code panicked, Run re-panics with the same value.
func (e *Engine) Run() error {
	e.stopped = false
	for len(e.events) > 0 && !e.stopped {
		ev := e.events.pop()
		if ev.canceled {
			continue
		}
		if ev.t < e.now {
			panic("sim: time went backwards")
		}
		e.now = ev.t
		ev.fn()
		if e.panic != nil {
			p := e.panic
			e.panic = nil
			panic(p)
		}
	}
	if e.stopped {
		return nil
	}
	if parked := e.Parked(); len(parked) > 0 {
		return &DeadlockError{Now: e.now, Parked: parked}
	}
	return nil
}

// RunUntil executes events with time <= t, then sets the clock to t.
func (e *Engine) RunUntil(t Time) {
	e.ScheduleAt(t, func() { e.Stop() })
	if err := e.Run(); err != nil {
		panic(err)
	}
	e.now = t
}

// Parked returns the names of processes that are parked (blocked awaiting an
// Unpark), sorted for determinism.
func (e *Engine) Parked() []string {
	var names []string
	for _, p := range e.procs {
		if p.state == procParked {
			names = append(names, p.name)
		}
	}
	sort.Strings(names)
	return names
}

// Live reports the number of processes that have not yet finished.
func (e *Engine) Live() int {
	n := 0
	for _, p := range e.procs {
		if p.state != procDone {
			n++
		}
	}
	return n
}

// DeadlockError reports that the event queue drained while processes were
// still parked.
type DeadlockError struct {
	Now    Time
	Parked []string
}

func (d *DeadlockError) Error() string {
	return fmt.Sprintf("sim: deadlock at t=%s: parked procs %v", Duration(d.Now), d.Parked)
}
