package sim

import (
	"testing"
	"testing/quick"
)

func TestEventOrdering(t *testing.T) {
	e := New(1)
	var got []int
	e.Schedule(30*Microsecond, func() { got = append(got, 3) })
	e.Schedule(10*Microsecond, func() { got = append(got, 1) })
	e.Schedule(20*Microsecond, func() { got = append(got, 2) })
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	want := []int{1, 2, 3}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("order = %v, want %v", got, want)
		}
	}
	if e.Now() != Time(30*Microsecond) {
		t.Fatalf("Now = %v, want 30µs", e.Now())
	}
}

func TestSameTimeFIFO(t *testing.T) {
	e := New(1)
	var got []int
	for i := 0; i < 100; i++ {
		i := i
		e.Schedule(5*Millisecond, func() { got = append(got, i) })
	}
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	for i, v := range got {
		if v != i {
			t.Fatalf("same-time events fired out of order: got[%d]=%d", i, v)
		}
	}
}

func TestNestedScheduling(t *testing.T) {
	e := New(1)
	var fired []Time
	e.Schedule(10, func() {
		fired = append(fired, e.Now())
		e.Schedule(5, func() { fired = append(fired, e.Now()) })
		e.Schedule(0, func() { fired = append(fired, e.Now()) })
	})
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	want := []Time{10, 10, 15}
	for i := range want {
		if fired[i] != want[i] {
			t.Fatalf("fired = %v, want %v", fired, want)
		}
	}
}

func TestTimerStop(t *testing.T) {
	e := New(1)
	ran := false
	tm := e.Schedule(10, func() { ran = true })
	if !tm.Stop() {
		t.Fatal("Stop returned false on pending timer")
	}
	if tm.Stop() {
		t.Fatal("second Stop returned true")
	}
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	if ran {
		t.Fatal("canceled event ran")
	}
}

func TestProcSleep(t *testing.T) {
	e := New(1)
	var trace []string
	e.Go("a", func(p *Proc) {
		trace = append(trace, "a0")
		p.Sleep(10 * Microsecond)
		trace = append(trace, "a1")
		p.Sleep(10 * Microsecond)
		trace = append(trace, "a2")
	})
	e.Go("b", func(p *Proc) {
		p.Sleep(15 * Microsecond)
		trace = append(trace, "b")
	})
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	want := []string{"a0", "a1", "b", "a2"}
	if len(trace) != len(want) {
		t.Fatalf("trace = %v, want %v", trace, want)
	}
	for i := range want {
		if trace[i] != want[i] {
			t.Fatalf("trace = %v, want %v", trace, want)
		}
	}
	if e.Now() != Time(20*Microsecond) {
		t.Fatalf("Now = %v", e.Now())
	}
}

func TestParkUnpark(t *testing.T) {
	e := New(1)
	var order []string
	var waiter *Proc
	waiter = e.Go("waiter", func(p *Proc) {
		order = append(order, "park")
		p.Park()
		order = append(order, "woke")
	})
	e.Go("waker", func(p *Proc) {
		p.Sleep(100)
		order = append(order, "unpark")
		waiter.Unpark()
	})
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	want := []string{"park", "unpark", "woke"}
	for i := range want {
		if order[i] != want[i] {
			t.Fatalf("order = %v, want %v", order, want)
		}
	}
}

func TestUnparkBeforePark(t *testing.T) {
	e := New(1)
	done := false
	var p1 *Proc
	p1 = e.Go("p1", func(p *Proc) {
		p.Sleep(50)
		p.Park() // should consume the pending unpark and not block
		done = true
	})
	e.Go("p2", func(p *Proc) {
		p1.Unpark() // arrives while p1 sleeps
	})
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	if !done {
		t.Fatal("proc never finished")
	}
}

func TestDeadlockDetection(t *testing.T) {
	e := New(1)
	e.Go("stuck", func(p *Proc) { p.Park() })
	err := e.Run()
	de, ok := err.(*DeadlockError)
	if !ok {
		t.Fatalf("err = %v, want DeadlockError", err)
	}
	if len(de.Parked) != 1 || de.Parked[0] != "stuck" {
		t.Fatalf("Parked = %v", de.Parked)
	}
}

func TestProcPanicPropagates(t *testing.T) {
	e := New(1)
	e.Go("boom", func(p *Proc) { panic("kaput") })
	defer func() {
		if r := recover(); r == nil {
			t.Fatal("Run did not re-panic")
		}
	}()
	_ = e.Run()
}

func TestRunUntil(t *testing.T) {
	e := New(1)
	count := 0
	var tick func()
	tick = func() {
		count++
		e.Schedule(Millisecond, tick)
	}
	e.Schedule(Millisecond, tick)
	e.RunUntil(Time(10*Millisecond) + 1)
	if count != 10 {
		t.Fatalf("count = %d, want 10", count)
	}
}

func TestDeterminism(t *testing.T) {
	run := func() []int64 {
		e := New(42)
		var trace []int64
		for i := 0; i < 5; i++ {
			e.Go("p", func(p *Proc) {
				for j := 0; j < 10; j++ {
					d := Duration(e.Rand().Intn(1000)) * Microsecond
					p.Sleep(d)
					trace = append(trace, int64(p.Now()))
				}
			})
		}
		if err := e.Run(); err != nil {
			t.Fatal(err)
		}
		return trace
	}
	a, b := run(), run()
	if len(a) != len(b) {
		t.Fatal("lengths differ")
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("traces diverge at %d: %d vs %d", i, a[i], b[i])
		}
	}
}

// TestHeapProperty checks, over random batches of schedule times, that
// events always fire in nondecreasing time order with FIFO tie-breaks.
func TestHeapProperty(t *testing.T) {
	f := func(delays []uint16) bool {
		if len(delays) == 0 {
			return true
		}
		e := New(7)
		type rec struct {
			t   Time
			seq int
		}
		var fired []rec
		for i, d := range delays {
			i, d := i, d
			e.Schedule(Duration(d), func() { fired = append(fired, rec{e.Now(), i}) })
		}
		if err := e.Run(); err != nil {
			return false
		}
		if len(fired) != len(delays) {
			return false
		}
		for i := 1; i < len(fired); i++ {
			if fired[i].t < fired[i-1].t {
				return false
			}
			if fired[i].t == fired[i-1].t && fired[i].seq < fired[i-1].seq {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestDurationString(t *testing.T) {
	cases := []struct {
		d    Duration
		want string
	}{
		{500, "500ns"},
		{2 * Microsecond, "2.000µs"},
		{3 * Millisecond, "3.000ms"},
		{2 * Second, "2.000s"},
	}
	for _, c := range cases {
		if got := c.d.String(); got != c.want {
			t.Errorf("%d.String() = %q, want %q", int64(c.d), got, c.want)
		}
	}
}
