package sim

import "fmt"

type procState int

const (
	procCreated procState = iota
	procRunnable
	procRunning
	procSleeping
	procParked
	procDone
)

// Proc is a simulated process: a goroutine that runs cooperatively under the
// engine. At most one Proc runs at a time; it surrenders control by calling
// Sleep, Park, or returning from its body.
type Proc struct {
	eng   *Engine
	name  string
	state procState
	wake  chan struct{} // engine -> proc: run
	yield chan struct{} // proc -> engine: I stopped
	// unparkPending records an Unpark that arrived while the proc was not
	// parked; the next Park consumes it instead of blocking.
	unparkPending bool
}

// Name returns the process name given to Go.
func (p *Proc) Name() string { return p.name }

// Engine returns the engine this process belongs to.
func (p *Proc) Engine() *Engine { return p.eng }

// Now returns the current virtual time.
func (p *Proc) Now() Time { return p.eng.now }

// Go creates a process running fn and schedules it to start at the current
// virtual time (after already-queued events at this time).
func (e *Engine) Go(name string, fn func(p *Proc)) *Proc {
	p := &Proc{
		eng:   e,
		name:  name,
		state: procCreated,
		wake:  make(chan struct{}),
		yield: make(chan struct{}),
	}
	e.procs = append(e.procs, p)
	go func() {
		<-p.wake // wait for first dispatch
		defer func() {
			if r := recover(); r != nil {
				e.panic = fmt.Errorf("sim: proc %q panicked: %v", name, r)
			}
			p.state = procDone
			p.yield <- struct{}{}
		}()
		fn(p)
	}()
	e.Schedule(0, func() { e.dispatch(p) })
	p.state = procRunnable
	return p
}

// dispatch hands the CPU to p and waits for it to stop. It must be called
// from the engine goroutine (i.e. from an event).
func (e *Engine) dispatch(p *Proc) {
	if p.state == procDone {
		return
	}
	prev := e.running
	e.running = p
	p.state = procRunning
	p.wake <- struct{}{}
	<-p.yield
	e.running = prev
}

// yieldToEngine returns control to the engine and blocks until the engine
// dispatches this proc again.
func (p *Proc) yieldToEngine() {
	p.yield <- struct{}{}
	<-p.wake
	p.state = procRunning
}

// Sleep advances this process's local progress by virtual duration d,
// surrendering control so other events and processes run in the meantime.
// Sleep(0) yields without advancing time (the proc resumes after events
// already queued for the current instant).
func (p *Proc) Sleep(d Duration) {
	p.checkRunning("Sleep")
	if d < 0 {
		d = 0
	}
	p.state = procSleeping
	p.eng.Schedule(d, func() { p.eng.dispatch(p) })
	p.yieldToEngine()
}

// Park blocks the process until another piece of simulation code calls
// Unpark. If an Unpark already arrived since the last Park, it is consumed
// and Park returns immediately (no yielding at all).
func (p *Proc) Park() {
	p.checkRunning("Park")
	if p.unparkPending {
		p.unparkPending = false
		return
	}
	p.state = procParked
	p.yieldToEngine()
}

// Unpark makes p runnable again. If p is not parked, the unpark is
// remembered and consumed by p's next Park. Calling Unpark on an already
// pending or runnable proc is a no-op. Unpark may be called from any
// simulation code (events or other procs), never from outside the engine.
func (p *Proc) Unpark() {
	switch p.state {
	case procParked:
		p.state = procRunnable
		p.eng.Schedule(0, func() { p.eng.dispatch(p) })
	case procDone:
		// no-op
	default:
		p.unparkPending = true
	}
}

func (p *Proc) checkRunning(op string) {
	if p.eng.running != p {
		panic(fmt.Sprintf("sim: %s called on proc %q which is not the running proc", op, p.name))
	}
}
