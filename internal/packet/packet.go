// Package packet implements Packet, the paper's low-overhead reliable
// datagram protocol (§3) on top of the unreliable simulated Ethernet.
//
// Communication always occurs in request/reply pairs. Only request messages
// — which are small, 20 bytes or less — are buffered; a request is
// retransmitted until its reply arrives. Replies are never buffered: a
// retransmitted request is simply re-serviced and the reply regenerated
// from current state (for idempotent services) or replayed from a small
// per-sender cache (for the few non-idempotent ones).
//
// A service handler may also *drop* a request — returning no reply — which
// is the protocol's single recovery mechanism for mutual exclusion (a node
// in a critical section ignores messages that would modify critical data)
// and for the Mirage page time-window: the requester's retransmission
// carries the retry.
//
// Endpoint is the simulation binding of kernel.Transport; the real-time
// binding over UDP sockets is internal/rtnode.
package packet

import (
	"container/list"
	"fmt"

	"filaments/internal/kernel"
	"filaments/internal/obs"
	"filaments/internal/sim"
	"filaments/internal/simnet"
	"filaments/internal/threads"
)

// ServiceID identifies a registered request handler (alias of
// kernel.ServiceID).
type ServiceID = kernel.ServiceID

// Verdict is a service handler's decision about a request (alias of
// kernel.Verdict).
type Verdict = kernel.Verdict

// Handler verdicts, re-exported from package kernel.
const (
	// Reply sends the handler's reply to the requester.
	Reply = kernel.Reply
	// Drop ignores the request; the requester will retransmit. Used by
	// critical sections, the Mirage window, and deferred barrier releases.
	Drop = kernel.Drop
)

// Service describes one request type (alias of kernel.Service).
type Service = kernel.Service

// Stats counts protocol events.
type Stats struct {
	RequestsSent    int64
	Retransmits     int64
	RepliesSent     int64
	RepliesReceived int64
	Dropped         int64 // requests dropped by handlers or critical sections
	DupSuppressed   int64 // duplicate non-idempotent requests answered from cache
	MaxRequestSize  int
}

// wire message types.
type wireRequest struct {
	Svc  ServiceID
	Seq  uint64
	Data any
	Size int
}

type wireReply struct {
	Seq  uint64
	Data any
	Size int
}

// retransmitTick is injected into the node's inbox when a retransmission
// timer fires, so the resend consumes node CPU like any other send.
type retransmitTick struct{ seq uint64 }

type pending struct {
	seq      uint64
	dst      simnet.NodeID
	req      wireRequest
	cat      threads.Category
	cb       func(reply any)
	timer    kernel.Timer
	attempts int
	expect   int // expected reply payload size, for the timeout
	done     bool
}

// Handle identifies an outstanding request; it allows local completion
// (e.g. a broadcast carried the answer) or cancellation. It implements
// kernel.Handle.
type Handle struct {
	ep *Endpoint
	p  *pending
}

// Complete finishes the request locally with the given reply value, as if a
// reply had arrived; the retransmission timer is canceled and the callback
// is invoked. It is a no-op if the request already completed.
func (h *Handle) Complete(reply any) { h.ep.complete(h.p, reply) }

// Cancel abandons the request without invoking the callback.
func (h *Handle) Cancel() {
	if h.p.done {
		return
	}
	h.p.done = true
	h.p.timer.Stop()
	delete(h.ep.pending, h.p.seq)
}

// Done reports whether the request has completed or been canceled.
func (h *Handle) Done() bool { return h.p.done }

const replyCacheSize = 64

type cacheKey struct {
	src simnet.NodeID
	seq uint64
}

// cacheEntry is one cached reply, held in the LRU list; replyCache maps
// its key to its list element.
type cacheEntry struct {
	key      cacheKey
	wr       wireReply
	lastSent sim.Time
}

// Endpoint is a node's Packet protocol instance. Create one per node with
// New; it installs itself as the node's message handler.
type Endpoint struct {
	node     *threads.Node
	services map[ServiceID]*Service
	nextSeq  uint64
	pending  map[uint64]*pending

	// replyCache holds recent replies of non-idempotent services so a
	// duplicate request (reply lost in transit) is answered identically
	// rather than re-executed. The paper bounds the analogous request list
	// by the messages between synchronization points; we bound the cache
	// by size, evicting the least recently used entry — an entry still
	// being replayed to a retransmitting requester stays resident.
	replyCache map[cacheKey]*list.Element
	cacheLRU   *list.List // front = most recently used; values are *cacheEntry
	cacheCap   int

	// RawHandler, if set, receives frames whose payload is not a Packet
	// message (e.g. broadcast barrier releases, CG message-passing). The
	// handler must charge its own receive cost. For multiple consumers use
	// HandleRaw instead.
	RawHandler func(f simnet.Frame)

	rawChain []func(from simnet.NodeID, payload any) bool

	obs *obs.Obs
	ctr counters
}

// counters caches the endpoint's registered transport counters in the
// node's registry. Updates are atomic; Stats() snapshots race-free. The
// names match internal/udptrans so sim and UDP metrics line up under
// cluster aggregation.
type counters struct {
	requestsSent, retransmits, repliesSent, repliesReceived *obs.Counter
	dropped, dupSuppressed, maxRequestSize                  *obs.Counter
}

// New creates the endpoint for node and installs it as the node's handler.
func New(node *threads.Node) *Endpoint {
	o := node.Obs()
	ep := &Endpoint{
		node:       node,
		services:   make(map[ServiceID]*Service),
		pending:    make(map[uint64]*pending),
		replyCache: make(map[cacheKey]*list.Element),
		cacheLRU:   list.New(),
		cacheCap:   replyCacheSize,
		obs:        o,
		ctr: counters{
			requestsSent:    o.Counter("net.requests_sent"),
			retransmits:     o.Counter("net.retransmits"),
			repliesSent:     o.Counter("net.replies_sent"),
			repliesReceived: o.Counter("net.replies_received"),
			dropped:         o.Counter("net.dropped"),
			dupSuppressed:   o.Counter("net.dup_suppressed"),
			maxRequestSize:  o.Counter("net.max_request_size"),
		},
	}
	node.SetHandler(ep.handle)
	return ep
}

// Node returns the endpoint's node.
func (ep *Endpoint) Node() *threads.Node { return ep.node }

// Stats returns a snapshot of protocol counters. The counters are
// atomic, so the snapshot is safe to take from any goroutine.
func (ep *Endpoint) Stats() Stats {
	return Stats{
		RequestsSent:    ep.ctr.requestsSent.Load(),
		Retransmits:     ep.ctr.retransmits.Load(),
		RepliesSent:     ep.ctr.repliesSent.Load(),
		RepliesReceived: ep.ctr.repliesReceived.Load(),
		Dropped:         ep.ctr.dropped.Load(),
		DupSuppressed:   ep.ctr.dupSuppressed.Load(),
		MaxRequestSize:  int(ep.ctr.maxRequestSize.Load()),
	}
}

// Register installs a service. Registering the same ID twice panics.
func (ep *Endpoint) Register(id ServiceID, s Service) {
	if _, dup := ep.services[id]; dup {
		panic(fmt.Sprintf("packet: service %d registered twice", id))
	}
	ep.services[id] = &s
}

// RequestAsync sends a request to dst and arranges for cb to run (on this
// node's CPU) when the reply arrives. The request is buffered and
// retransmitted until then. It returns a Handle for local completion or
// cancellation. It must run on the node (thread or kernel context).
func (ep *Endpoint) RequestAsync(dst simnet.NodeID, svc ServiceID, req any, size int, cat threads.Category, cb func(reply any)) kernel.Handle {
	return ep.RequestSized(dst, svc, req, size, 0, cat, cb)
}

// RequestSized is RequestAsync with a hint about the expected reply payload
// size. Large replies (DSM pages, page groups) take long to transmit on a
// 10 Mbps medium, let alone a saturated one; the retransmission timeout is
// stretched accordingly so the requester does not re-request data that is
// still on the wire.
func (ep *Endpoint) RequestSized(dst simnet.NodeID, svc ServiceID, req any, size, expectedReply int, cat threads.Category, cb func(reply any)) kernel.Handle {
	ep.nextSeq++
	p := &pending{
		seq:    ep.nextSeq,
		dst:    dst,
		req:    wireRequest{Svc: svc, Seq: ep.nextSeq, Data: req, Size: size},
		cat:    cat,
		cb:     cb,
		expect: expectedReply,
	}
	ep.pending[p.seq] = p
	ep.ctr.requestsSent.Inc()
	ep.ctr.maxRequestSize.SetMax(int64(size))
	//dflint:allow tagspace the sim transport hands Go values over in memory; wireRequest never meets a serializer
	ep.node.Send(dst, p.req, size, cat)
	ep.armTimer(p)
	return &Handle{ep: ep, p: p}
}

// Call sends a request and blocks the calling server thread until the reply
// arrives, returning the reply payload.
func (ep *Endpoint) Call(t kernel.Thread, dst simnet.NodeID, svc ServiceID, req any, size int, cat threads.Category) any {
	var reply any
	done, waiting := false, false
	ep.RequestAsync(dst, svc, req, size, cat, func(r any) {
		reply = r
		done = true
		if waiting {
			ep.node.Ready(t, true)
		}
	})
	for !done {
		waiting = true
		t.Block()
		waiting = false
	}
	return reply
}

// Send transmits an unreliable one-way datagram through the node,
// charging send cost to cat (kernel.Transport).
func (ep *Endpoint) Send(dst simnet.NodeID, payload any, size int, cat threads.Category) {
	ep.node.Send(dst, payload, size, cat)
}

func (ep *Endpoint) armTimer(p *pending) {
	// Exponential backoff: a saturated network (e.g. the master serving
	// thousands of page requests in the matmul experiment) pushes reply
	// latency past the base timeout; without backoff, retransmissions
	// would feed the congestion they are reacting to.
	model := ep.node.Model()
	timeout := model.RetransmitTimeout + 6*model.TransmitTime(p.expect)
	for i := 0; i < p.attempts && i < 5; i++ {
		timeout *= 2
	}
	p.timer = ep.node.Schedule(timeout, func() {
		ep.node.Inject(retransmitTick{seq: p.seq})
	})
}

func (ep *Endpoint) complete(p *pending, reply any) {
	if p.done {
		return
	}
	p.done = true
	p.timer.Stop()
	delete(ep.pending, p.seq)
	if p.cb != nil {
		p.cb(reply)
	}
}

// handle processes every frame delivered to the node. It runs on the
// node's CPU (kernel or a preempting thread).
func (ep *Endpoint) handle(f simnet.Frame) {
	switch m := f.Payload.(type) {
	case wireRequest:
		ep.handleRequest(f.Src, m)
	case wireReply:
		ep.handleReply(m)
	case retransmitTick:
		ep.retransmit(m.seq)
	default:
		for _, h := range ep.rawChain {
			if h(f.Src, f.Payload) {
				return
			}
		}
		if ep.RawHandler != nil {
			ep.RawHandler(f)
		}
	}
}

// HandleRaw appends a consumer for non-Packet payloads (broadcasts,
// explicit message passing). Consumers are tried in registration order; the
// first one returning true consumes the payload. Handlers must charge their
// own receive cost.
func (ep *Endpoint) HandleRaw(h func(from simnet.NodeID, payload any) bool) {
	ep.rawChain = append(ep.rawChain, h)
}

func (ep *Endpoint) handleRequest(from simnet.NodeID, m wireRequest) {
	svc, ok := ep.services[m.Svc]
	if !ok {
		panic(fmt.Sprintf("packet: node %d: no service %d", ep.node.ID(), m.Svc))
	}
	model := ep.node.Model()
	ep.node.Charge(svc.Category, model.RecvCost(m.Size))

	if svc.ModifiesCritical && ep.node.InCritical() {
		ep.ctr.dropped.Inc()
		return
	}
	key := cacheKey{src: from, seq: m.Seq}
	if !svc.Idempotent {
		if el, dup := ep.replyCache[key]; dup {
			ep.ctr.dupSuppressed.Inc()
			ent := el.Value.(*cacheEntry)
			ep.cacheLRU.MoveToFront(el)
			// Resend the cached reply only if the previous copy has had
			// time to arrive; a retransmission racing a large reply that
			// is still on the (saturated) wire must not add another copy
			// — that feeds the very congestion that delayed it.
			now := ep.node.Now()
			guard := model.RetransmitTimeout/2 + 4*model.TransmitTime(ent.wr.Size)
			if now.Sub(ent.lastSent) < guard {
				return
			}
			ent.lastSent = now
			ep.ctr.repliesSent.Inc()
			//dflint:allow tagspace the sim transport hands Go values over in memory; wireReply never meets a serializer
			ep.node.Send(from, ent.wr, ent.wr.Size, svc.Category)
			return
		}
	}
	reply, size, v := svc.Handler(from, m.Data)
	if v == Drop {
		ep.ctr.dropped.Inc()
		return
	}
	wr := wireReply{Seq: m.Seq, Data: reply, Size: size}
	if !svc.Idempotent {
		ep.cacheReply(key, wr)
	}
	ep.ctr.repliesSent.Inc()
	//dflint:allow tagspace the sim transport hands Go values over in memory; wireReply never meets a serializer
	ep.node.Send(from, wr, size, svc.Category)
}

// cacheReply inserts a reply at the most-recently-used end of the cache,
// evicting the least recently used entry when full. O(1) per insert.
func (ep *Endpoint) cacheReply(key cacheKey, wr wireReply) {
	if ep.cacheLRU.Len() >= ep.cacheCap {
		lru := ep.cacheLRU.Back()
		ep.cacheLRU.Remove(lru)
		delete(ep.replyCache, lru.Value.(*cacheEntry).key)
	}
	ent := &cacheEntry{key: key, wr: wr, lastSent: ep.node.Now()}
	ep.replyCache[key] = ep.cacheLRU.PushFront(ent)
}

func (ep *Endpoint) handleReply(m wireReply) {
	model := ep.node.Model()
	p, ok := ep.pending[m.Seq]
	if !ok {
		// Duplicate reply for an already-completed request; charge the
		// receive and move on.
		ep.node.Charge(threads.CatData, model.RecvCost(m.Size))
		return
	}
	ep.node.Charge(p.cat, model.RecvCost(m.Size))
	ep.ctr.repliesReceived.Inc()
	ep.complete(p, m.Data)
}

func (ep *Endpoint) retransmit(seq uint64) {
	p, ok := ep.pending[seq]
	if !ok || p.done {
		return
	}
	ep.ctr.retransmits.Inc()
	p.attempts++
	ep.obs.Trace(int64(ep.node.Now()), "net", "retransmit",
		obs.Arg{Key: "dst", Val: int64(p.dst)}, obs.Arg{Key: "svc", Val: int64(p.req.Svc)},
		obs.Arg{Key: "attempt", Val: int64(p.attempts)})
	//dflint:allow tagspace the sim transport hands Go values over in memory; wireRequest never meets a serializer
	ep.node.Send(p.dst, p.req, p.req.Size, p.cat)
	ep.armTimer(p)
}

// Outstanding reports how many requests await replies (the paper's
// invariant: never more than the messages between synchronization points).
func (ep *Endpoint) Outstanding() int { return len(ep.pending) }
