package packet

import (
	"testing"
	"testing/quick"

	"filaments/internal/cost"
	"filaments/internal/kernel"
	"filaments/internal/sim"
	"filaments/internal/simnet"
	"filaments/internal/threads"
)

const (
	svcEcho ServiceID = iota
	svcCounter
	svcCritical
)

type fixture struct {
	eng   *sim.Engine
	nw    *simnet.Network
	nodes []*threads.Node
	eps   []*Endpoint
}

func newFixture(t *testing.T, n int) *fixture {
	t.Helper()
	eng := sim.New(1)
	m := cost.Default()
	nw := simnet.New(eng, &m, n)
	fx := &fixture{eng: eng, nw: nw}
	for i := 0; i < n; i++ {
		node := threads.NewNode(nw, simnet.NodeID(i))
		ep := New(node)
		fx.nodes = append(fx.nodes, node)
		fx.eps = append(fx.eps, ep)
		node.Start()
	}
	return fx
}

// registerEcho installs an idempotent echo service on every endpoint.
func (fx *fixture) registerEcho() {
	for _, ep := range fx.eps {
		ep.Register(svcEcho, Service{
			Name:       "echo",
			Idempotent: true,
			Category:   threads.CatData,
			Handler: func(from simnet.NodeID, req any) (any, int, Verdict) {
				return req, 16, Reply
			},
		})
	}
}

func (fx *fixture) run(t *testing.T) {
	t.Helper()
	if err := fx.eng.Run(); err != nil {
		t.Fatal(err)
	}
}

// Figure 3(a): no problems — request then reply, two messages total.
func TestScenarioNoProblems(t *testing.T) {
	fx := newFixture(t, 2)
	fx.registerEcho()
	var got any
	fx.eng.Schedule(0, func() {
		fx.nodes[0].Spawn("caller", func(th kernel.Thread) {
			got = fx.eps[0].Call(th, 1, svcEcho, "hi", 16, threads.CatData)
			fx.nodes[0].Stop()
			fx.nodes[1].Stop()
		})
	})
	fx.run(t)
	if got != "hi" {
		t.Fatalf("got %v", got)
	}
	st := fx.nw.Stats()
	if st.FramesSent != 2 {
		t.Fatalf("frames = %d, want 2 (request + reply)", st.FramesSent)
	}
	if fx.eps[0].Stats().Retransmits != 0 {
		t.Fatal("unexpected retransmission")
	}
}

// Figure 3(b): request lost — requester times out and retransmits.
func TestScenarioRequestLost(t *testing.T) {
	fx := newFixture(t, 2)
	fx.registerEcho()
	first := true
	fx.nw.DropFilter = func(f *simnet.Frame) bool {
		if _, isReq := f.Payload.(wireRequest); isReq && first {
			first = false
			return true
		}
		return false
	}
	var got any
	fx.eng.Schedule(0, func() {
		fx.nodes[0].Spawn("caller", func(th kernel.Thread) {
			got = fx.eps[0].Call(th, 1, svcEcho, "hi", 16, threads.CatData)
			fx.nodes[0].Stop()
			fx.nodes[1].Stop()
		})
	})
	fx.run(t)
	if got != "hi" {
		t.Fatalf("got %v", got)
	}
	if fx.eps[0].Stats().Retransmits != 1 {
		t.Fatalf("retransmits = %d, want 1", fx.eps[0].Stats().Retransmits)
	}
}

// Figure 3(c): reply lost — request retransmitted, reply regenerated.
func TestScenarioReplyLost(t *testing.T) {
	fx := newFixture(t, 2)
	fx.registerEcho()
	first := true
	fx.nw.DropFilter = func(f *simnet.Frame) bool {
		if _, isRep := f.Payload.(wireReply); isRep && first {
			first = false
			return true
		}
		return false
	}
	var got any
	fx.eng.Schedule(0, func() {
		fx.nodes[0].Spawn("caller", func(th kernel.Thread) {
			got = fx.eps[0].Call(th, 1, svcEcho, "hi", 16, threads.CatData)
			fx.nodes[0].Stop()
			fx.nodes[1].Stop()
		})
	})
	fx.run(t)
	if got != "hi" {
		t.Fatalf("got %v", got)
	}
	if fx.eps[0].Stats().Retransmits != 1 {
		t.Fatalf("retransmits = %d", fx.eps[0].Stats().Retransmits)
	}
	// Echo is idempotent, so the replier re-executed rather than caching.
	if fx.eps[1].Stats().RepliesSent != 2 {
		t.Fatalf("replies sent = %d, want 2", fx.eps[1].Stats().RepliesSent)
	}
}

// Figure 3(d): reply delayed past the timeout — the retransmission produces
// a duplicate reply, which the requester discards.
func TestScenarioReplyDelayed(t *testing.T) {
	fx := newFixture(t, 2)
	fx.registerEcho()
	m := fx.nodes[0].Model()
	delayed := false
	fx.nw.DelayFilter = func(f *simnet.Frame) sim.Duration {
		if _, isRep := f.Payload.(wireReply); isRep && !delayed {
			delayed = true
			return m.RetransmitTimeout + 5*sim.Millisecond
		}
		return 0
	}
	calls := 0
	var got any
	fx.eng.Schedule(0, func() {
		fx.nodes[0].Spawn("caller", func(th kernel.Thread) {
			got = fx.eps[0].Call(th, 1, svcEcho, "hi", 16, threads.CatData)
			calls++
			// Allow the delayed duplicate to arrive before stopping.
			fx.nodes[0].Engine().Schedule(2*m.RetransmitTimeout, func() {
				fx.nodes[0].Inject(struct{}{})
			})
			th.Block()
		})
	})
	// Stop the nodes once everything settles.
	fx.eng.Schedule(5*m.RetransmitTimeout, func() {
		fx.nodes[0].Stop()
		fx.nodes[1].Stop()
	})
	// RawHandler unblocks the parked caller thread at the end.
	err := fx.eng.Run()
	if _, deadlock := err.(*sim.DeadlockError); !deadlock {
		// The caller thread stays parked; that is expected in this test.
		if err != nil {
			t.Fatal(err)
		}
	}
	if got != "hi" || calls != 1 {
		t.Fatalf("got %v calls %d", got, calls)
	}
	if fx.eps[0].Stats().Retransmits != 1 {
		t.Fatalf("retransmits = %d", fx.eps[0].Stats().Retransmits)
	}
}

// A non-idempotent service must not re-execute on duplicate requests; the
// cached reply is replayed.
func TestNonIdempotentDedup(t *testing.T) {
	fx := newFixture(t, 2)
	count := 0
	fx.eps[1].Register(svcCounter, Service{
		Name:     "counter",
		Category: threads.CatData,
		Handler: func(from simnet.NodeID, req any) (any, int, Verdict) {
			count++
			return count, 8, Reply
		},
	})
	// Drop the first reply so the request is retransmitted.
	first := true
	fx.nw.DropFilter = func(f *simnet.Frame) bool {
		if _, isRep := f.Payload.(wireReply); isRep && first {
			first = false
			return true
		}
		return false
	}
	var got any
	fx.eng.Schedule(0, func() {
		fx.nodes[0].Spawn("caller", func(th kernel.Thread) {
			got = fx.eps[0].Call(th, 1, svcCounter, nil, 8, threads.CatData)
			fx.nodes[0].Stop()
			fx.nodes[1].Stop()
		})
	})
	fx.run(t)
	if got != 1 || count != 1 {
		t.Fatalf("got %v, count %d; duplicate re-executed", got, count)
	}
	if fx.eps[1].Stats().DupSuppressed != 1 {
		t.Fatalf("dupSuppressed = %d", fx.eps[1].Stats().DupSuppressed)
	}
}

// TestReplyCacheEvictionOrder pins the reply cache's replacement policy:
// least-recently-USED, not least-recently-inserted. A duplicate request
// refreshes its entry's recency, so the entry a retransmitting requester
// is still draining stays resident while a colder one is evicted. The
// execution counter discriminates: a suppressed duplicate leaves it
// unchanged, an evicted entry re-executes the handler.
func TestReplyCacheEvictionOrder(t *testing.T) {
	fx := newFixture(t, 2)
	count := 0
	fx.eps[1].Register(svcCounter, Service{
		Name:     "counter",
		Category: threads.CatData, // non-idempotent: replies are cached
		Handler: func(from simnet.NodeID, req any) (any, int, Verdict) {
			count++
			return count, 8, Reply
		},
	})
	fx.eps[1].cacheCap = 3
	send := func(seq uint64) {
		fx.eps[1].handleRequest(0, wireRequest{Svc: svcCounter, Seq: seq, Size: 8})
	}
	fx.eng.Schedule(0, func() {
		fx.nodes[1].Spawn("driver", func(th kernel.Thread) {
			send(1)
			send(2)
			send(3) // cache full, recency front→back [3 2 1]
			send(1) // duplicate: suppressed, refreshed → [1 3 2]
			send(4) // evicts 2 (LRU; FIFO would evict 1) → [4 1 3]
			send(2) // evicted, so re-executes; inserting evicts 3 → [2 4 1]
			send(1) // refreshed above, still resident: suppressed
			send(3) // evicted by 2's reinsertion: re-executes
			fx.nodes[0].Stop()
			fx.nodes[1].Stop()
		})
	})
	fx.run(t)
	if count != 6 {
		t.Fatalf("handler ran %d times, want 6 (seqs 1 2 3, then evicted 4 2 3)", count)
	}
	if dup := fx.eps[1].Stats().DupSuppressed; dup != 2 {
		t.Fatalf("dupSuppressed = %d, want 2", dup)
	}
}

// Critical sections: requests for services that modify critical data are
// dropped while the flag is set and serviced after it clears.
func TestCriticalSectionDrop(t *testing.T) {
	fx := newFixture(t, 2)
	served := 0
	fx.eps[1].Register(svcCritical, Service{
		Name:             "critical",
		Idempotent:       true,
		ModifiesCritical: true,
		Category:         threads.CatData,
		Handler: func(from simnet.NodeID, req any) (any, int, Verdict) {
			//dflint:allow handleridem the test counts handler executions on purpose to assert the drop/retry schedule
			served++
			return "ok", 8, Reply
		},
	})
	m := fx.nodes[0].Model()
	fx.eng.Schedule(0, func() {
		// Node 1 enters its critical section for 1.5 timeouts.
		fx.nodes[1].Critical = true
		fx.eng.Schedule(m.RetransmitTimeout+m.RetransmitTimeout/2, func() {
			fx.nodes[1].Critical = false
		})
		fx.nodes[0].Spawn("caller", func(th kernel.Thread) {
			got := fx.eps[0].Call(th, 1, svcCritical, nil, 8, threads.CatData)
			if got != "ok" {
				t.Errorf("got %v", got)
			}
			fx.nodes[0].Stop()
			fx.nodes[1].Stop()
		})
	})
	fx.run(t)
	if served != 1 {
		t.Fatalf("served = %d", served)
	}
	if fx.eps[1].Stats().Dropped == 0 {
		t.Fatal("no requests were dropped during the critical section")
	}
	if fx.eps[0].Stats().Retransmits == 0 {
		t.Fatal("requester never retransmitted")
	}
}

// Handle.Complete finishes a request locally (used by broadcast barrier
// release) and suppresses the retransmission.
func TestHandleComplete(t *testing.T) {
	fx := newFixture(t, 2)
	// Service that always drops: the reply will come "out of band".
	fx.eps[1].Register(svcEcho, Service{
		Name:       "defer",
		Idempotent: true,
		Category:   threads.CatSync,
		Handler: func(from simnet.NodeID, req any) (any, int, Verdict) {
			return nil, 0, Drop
		},
	})
	var got any
	fx.eng.Schedule(0, func() {
		fx.nodes[0].Spawn("caller", func(th kernel.Thread) {
			h := fx.eps[0].RequestAsync(1, svcEcho, "x", 8, threads.CatSync, func(r any) { got = r })
			fx.nodes[0].Engine().Schedule(sim.Millisecond, func() {
				fx.nodes[0].Inject(func() {})
				h.Complete("out-of-band")
			})
			fx.nodes[0].Stop()
			fx.nodes[1].Stop()
		})
	})
	fx.run(t)
	if got != "out-of-band" {
		t.Fatalf("got %v", got)
	}
	if fx.eps[0].Stats().Retransmits != 0 {
		t.Fatalf("retransmits = %d after local completion", fx.eps[0].Stats().Retransmits)
	}
	if fx.eps[0].Outstanding() != 0 {
		t.Fatal("request still outstanding")
	}
}

// Property: under any loss rate < 1, every request eventually completes
// exactly once.
func TestReliabilityUnderLoss(t *testing.T) {
	f := func(seed int64, lossPct uint8) bool {
		loss := float64(lossPct%90) / 100.0
		eng := sim.New(seed)
		m := cost.Default()
		nw := simnet.New(eng, &m, 2)
		nw.LossRate = loss
		a := threads.NewNode(nw, 0)
		b := threads.NewNode(nw, 1)
		epA, epB := New(a), New(b)
		epB.Register(svcEcho, Service{
			Name: "echo", Idempotent: true, Category: threads.CatData,
			Handler: func(from simnet.NodeID, req any) (any, int, Verdict) {
				return req, 16, Reply
			},
		})
		a.Start()
		b.Start()
		const calls = 5
		completions := 0
		eng.Schedule(0, func() {
			a.Spawn("caller", func(th kernel.Thread) {
				for i := 0; i < calls; i++ {
					if got := epA.Call(th, 1, svcEcho, i, 16, threads.CatData); got != i {
						t.Errorf("echo returned %v, want %d", got, i)
					}
					completions++
				}
				a.Stop()
				b.Stop()
			})
		})
		if err := eng.Run(); err != nil {
			return false
		}
		return completions == calls
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}
