package packet

import (
	"fmt"
	"testing"

	"filaments/internal/cost"
	"filaments/internal/kernel"
	"filaments/internal/sim"
	"filaments/internal/simnet"
	"filaments/internal/threads"
	"filaments/internal/transconf"
)

// simCluster adapts the simulated-Ethernet Packet endpoints to the shared
// conformance suite: the same scenarios that run on loopback UDP sockets
// run here in virtual time.
type simCluster struct {
	eng   *sim.Engine
	nw    *simnet.Network
	nodes []*threads.Node
	eps   []*Endpoint
	probe bool // read every endpoint's Stats() while workers run
}

// simCaller issues blocking calls from one server thread.
type simCaller struct {
	ep *Endpoint
	th kernel.Thread
}

func (c *simCaller) Call(dst, svc int, req []byte) ([]byte, error) {
	r := c.ep.Call(c.th, simnet.NodeID(dst), ServiceID(svc), req, len(req), threads.CatData)
	b, _ := r.([]byte)
	return b, nil
}

// Outstanding sums pending requests across endpoints. The engine is idle
// when this is read (Run has returned), so the unlocked reads are safe.
func (cl *simCluster) Outstanding() int {
	n := 0
	for _, ep := range cl.eps {
		n += ep.Outstanding()
	}
	return n
}

func (cl *simCluster) Run(t *testing.T, workers ...transconf.Worker) {
	if cl.probe {
		// The engine is single-threaded, so the probe runs as scheduled
		// events interleaved with the traffic — a bounded batch, so the
		// run still terminates once the queue drains. (True concurrent
		// probing is exercised by the UDP harness under -race; here the
		// point is that mid-traffic snapshots are coherent and legal.)
		for k := 1; k <= 64; k++ {
			cl.eng.Schedule(sim.Duration(k)*sim.Millisecond, func() {
				for _, ep := range cl.eps {
					_ = ep.Stats()
				}
			})
		}
	}
	remaining := len(workers)
	cl.eng.Schedule(0, func() {
		for i, w := range workers {
			w := w
			node := cl.nodes[w.Node]
			ep := cl.eps[w.Node]
			node.Spawn(fmt.Sprintf("worker%d", i), func(th kernel.Thread) {
				w.Body(&simCaller{ep: ep, th: th})
				remaining--
				if remaining == 0 {
					for _, n := range cl.nodes {
						n.Stop()
					}
				}
			})
		}
	})
	if err := cl.eng.Run(); err != nil {
		t.Fatal(err)
	}
}

// deferredState carries a Calls-handler execution across retransmissions:
// the first request spawns a server thread and is dropped; retries are
// dropped while the thread runs and answered from the stored reply once it
// finishes. This is the paper's own mechanism (a node that cannot answer
// yet drops the request; the requester's retransmission carries the retry),
// and it is how the simulation services the suite's nested-call handlers
// off the receive path.
type deferredState struct {
	running bool
	done    bool
	reply   []byte
	drop    bool
}

// register installs one conformance service on one endpoint.
func register(cl *simCluster, node int, svc int, s transconf.Service) {
	ep, nd := cl.eps[node], cl.nodes[node]
	if !s.Calls {
		ep.Register(ServiceID(svc), Service{
			Name:       fmt.Sprintf("conf%d", svc),
			Idempotent: s.Idempotent,
			Category:   threads.CatData,
			Handler: func(from simnet.NodeID, req any) (any, int, Verdict) {
				reply, drop := s.Handler(nil, int(from), req.([]byte))
				if drop {
					return nil, 0, Drop
				}
				return reply, len(reply), Reply
			},
		})
		return
	}
	states := make(map[string]*deferredState)
	ep.Register(ServiceID(svc), Service{
		Name:       fmt.Sprintf("conf%d", svc),
		Idempotent: true, // exactly-once is enforced by the state map
		Category:   threads.CatData,
		Handler: func(from simnet.NodeID, req any) (any, int, Verdict) {
			key := fmt.Sprintf("%d|%s", from, req.([]byte))
			st, ok := states[key]
			if !ok {
				st = &deferredState{running: true}
				states[key] = st
				nd.Spawn("deferred-"+key, func(th kernel.Thread) {
					st.reply, st.drop = s.Handler(&simCaller{ep: ep, th: th}, int(from), req.([]byte))
					st.done = true
				})
				return nil, 0, Drop
			}
			if !st.done || st.drop {
				return nil, 0, Drop
			}
			return st.reply, len(st.reply), Reply
		},
	})
}

// simHarness builds a simulated cluster with the suite's faults mapped onto
// simnet's injection hooks.
func simHarness(t *testing.T, cfg transconf.Config) transconf.Cluster {
	eng := sim.New(7)
	m := cost.Default()
	nw := simnet.New(eng, &m, cfg.Nodes)
	cl := &simCluster{eng: eng, nw: nw, probe: cfg.StatsProbe}
	for i := 0; i < cfg.Nodes; i++ {
		node := threads.NewNode(nw, simnet.NodeID(i))
		cl.nodes = append(cl.nodes, node)
		cl.eps = append(cl.eps, New(node))
		node.Start()
	}
	for svc, factory := range cfg.Services {
		for node := range cl.eps {
			register(cl, node, svc, factory(node))
		}
	}

	f := cfg.Faults
	nw.LossRate = f.Loss
	nw.DupRate = f.Dup
	nw.ReorderRate = f.Reorder
	droppedRequest, droppedReply := false, false
	if f.DropFirstRequest || f.DropFirstReply {
		nw.DropFilter = func(fr *simnet.Frame) bool {
			if _, isReq := fr.Payload.(wireRequest); isReq && f.DropFirstRequest && !droppedRequest {
				droppedRequest = true
				return true
			}
			if _, isRep := fr.Payload.(wireReply); isRep && f.DropFirstReply && !droppedReply {
				droppedReply = true
				return true
			}
			return false
		}
	}
	if f.DelayFirstReply {
		delayed := false
		nw.DelayFilter = func(fr *simnet.Frame) sim.Duration {
			if _, isRep := fr.Payload.(wireReply); isRep && !delayed {
				delayed = true
				return m.RetransmitTimeout + 5*sim.Millisecond
			}
			return 0
		}
	}
	return cl
}

// TestConformance runs the shared transport conformance suite on the
// simulated Ethernet — the same scenarios package udptrans runs on real
// loopback sockets. Passing on both is the sim↔real equivalence argument
// for the Packet protocol.
func TestConformance(t *testing.T) {
	transconf.RunAll(t, simHarness)
}
