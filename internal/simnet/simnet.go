// Package simnet models the cluster interconnect of the paper's testbed: a
// single shared 10 Mbps Ethernet segment connecting the workstations.
//
// The medium is serialized: one frame transmits at a time and later frames
// queue behind it, which is what makes network saturation emerge in the
// matrix-multiplication and 8-node Jacobi experiments exactly as the paper
// describes. Frames can be lost, duplicated, or delayed through injection
// hooks, which the Packet protocol tests use to reproduce the four
// scenarios of the paper's Figure 3.
//
// simnet is an unreliable datagram service, like UDP: delivery is not
// guaranteed and the sender gets no feedback. Reliability is layered on top
// by package packet.
package simnet

import (
	"fmt"

	"filaments/internal/cost"
	"filaments/internal/kernel"
	"filaments/internal/sim"
)

// NodeID identifies a node on the network, in [0, Nodes). It is an alias
// of the binding-neutral kernel.NodeID.
type NodeID = kernel.NodeID

// Broadcast is the destination address that delivers a frame to every node
// except the sender.
const Broadcast = kernel.Broadcast

// Frame is one datagram on the wire. Payload is carried by reference (the
// simulation is in-process); Size is the payload's size in bytes for timing
// purposes and must be set by the sender.
type Frame struct {
	Src     NodeID
	Dst     NodeID // Broadcast for all nodes
	Payload any
	Size    int
}

// Handler receives delivered frames. It runs as a simulation event at
// delivery time; implementations should only enqueue work and wake the
// node, charging receive CPU when the node processes the frame.
type Handler func(Frame)

// Stats aggregates network counters.
type Stats struct {
	FramesSent      int64
	FramesDropped   int64
	FramesDelivered int64
	BytesSent       int64 // payload bytes, excluding frame overhead
	Busy            sim.Duration
}

// Utilization reports the fraction of the elapsed time the medium was busy.
func (s Stats) Utilization(elapsed sim.Duration) float64 {
	if elapsed <= 0 {
		return 0
	}
	return s.Busy.Seconds() / elapsed.Seconds()
}

// MTU is the fragment granularity of the medium: a payload larger than
// this occupies the wire in several bursts, and bursts from different
// senders interleave (as IP fragments of competing UDP datagrams do on
// real Ethernet). Without this, one node's 4 KB page replies would
// monopolize the wire for milliseconds while other nodes' small
// acknowledgements starve.
const MTU = 1500

// queued is a frame waiting for (or in the middle of) transmission.
type queued struct {
	frame    Frame
	bitsLeft int64
	lost     bool
	delay    sim.Duration
}

// Network is a shared-medium Ethernet segment.
type Network struct {
	eng      *sim.Engine
	model    *cost.Model
	handlers []Handler

	// Per-sender transmit queues, arbitrated round-robin one MTU burst at
	// a time.
	queues  [][]*queued
	rrNext  int
	sending bool

	// Fault injection.

	// LossRate is the probability a frame is silently dropped after
	// transmission (it still occupies the medium).
	LossRate float64
	// DupRate is the probability a frame is delivered twice.
	DupRate float64
	// DupFilter, if non-nil, is consulted per frame; returning true delivers
	// the frame twice. It is applied before DupRate.
	DupFilter func(*Frame) bool
	// ReorderRate is the probability a frame's delivery is deferred by a few
	// extra wire latencies, landing it after frames sent later — datagram
	// reordering, as IP routes and interrupt coalescing produce on real
	// networks.
	ReorderRate float64
	// DropFilter, if non-nil, is consulted per frame; returning true drops
	// the frame. It is applied before LossRate.
	DropFilter func(*Frame) bool
	// DelayFilter, if non-nil, returns extra delivery delay for a frame.
	DelayFilter func(*Frame) sim.Duration

	stats Stats
}

// New creates a network for n nodes using the given engine and cost model.
func New(eng *sim.Engine, model *cost.Model, n int) *Network {
	if n <= 0 {
		panic("simnet: need at least one node")
	}
	return &Network{
		eng:      eng,
		model:    model,
		handlers: make([]Handler, n),
		queues:   make([][]*queued, n),
	}
}

// Nodes returns the number of nodes on the network.
func (nw *Network) Nodes() int { return len(nw.handlers) }

// Engine returns the simulation engine the network runs on.
func (nw *Network) Engine() *sim.Engine { return nw.eng }

// Model returns the cost model the network charges by.
func (nw *Network) Model() *cost.Model { return nw.model }

// Stats returns a snapshot of the network counters.
func (nw *Network) Stats() Stats { return nw.stats }

// Register installs the delivery handler for node id. It must be called
// before any frame addressed to id is delivered.
func (nw *Network) Register(id NodeID, h Handler) {
	nw.handlers[id] = h
}

// Send puts a frame on the wire. The sender's CPU cost is *not* charged
// here — the caller (the node's protocol layer) charges cost.SendCost — but
// medium occupancy, queueing, propagation latency, loss, and duplication
// are. Send must be called from simulation code.
func (nw *Network) Send(f Frame) {
	if f.Dst != Broadcast && (int(f.Dst) < 0 || int(f.Dst) >= len(nw.handlers)) {
		panic(fmt.Sprintf("simnet: bad destination %d", f.Dst))
	}
	nw.stats.FramesSent++
	nw.stats.BytesSent += int64(f.Size)

	q := &queued{
		frame:    f,
		bitsLeft: int64(f.Size+nw.model.FrameOverheadBytes) * 8,
	}
	// Loss, duplication, and extra delay are decided per frame at send
	// time; a lost frame still occupies the medium.
	if nw.DropFilter != nil && nw.DropFilter(&q.frame) {
		q.lost = true
	} else if nw.LossRate > 0 && nw.eng.Rand().Float64() < nw.LossRate {
		q.lost = true
	}
	if q.lost {
		nw.stats.FramesDropped++
	}
	if nw.DelayFilter != nil {
		q.delay = nw.DelayFilter(&q.frame)
	}
	if nw.ReorderRate > 0 && nw.eng.Rand().Float64() < nw.ReorderRate {
		q.delay += sim.Duration(2+nw.eng.Rand().Intn(6)) * nw.model.WireLatency
	}
	nw.queues[f.Src] = append(nw.queues[f.Src], q)
	if !nw.sending {
		nw.arbitrate()
	}
}

// arbitrate grants the medium to the next sender round-robin, one MTU
// burst at a time, so large transfers from one node interleave with other
// nodes' traffic instead of blocking it.
func (nw *Network) arbitrate() {
	n := len(nw.queues)
	for i := 0; i < n; i++ {
		src := (nw.rrNext + i) % n
		if len(nw.queues[src]) == 0 {
			continue
		}
		nw.rrNext = (src + 1) % n
		q := nw.queues[src][0]
		bits := q.bitsLeft
		if bits > MTU*8 {
			bits = MTU * 8
		}
		q.bitsLeft -= bits
		tx := sim.Duration(bits * int64(sim.Second) / nw.model.BandwidthBps)
		nw.stats.Busy += tx
		nw.sending = true
		nw.eng.Schedule(tx, func() {
			nw.sending = false
			if q.bitsLeft <= 0 {
				nw.queues[src] = nw.queues[src][1:]
				nw.finish(q)
			}
			nw.arbitrate()
		})
		return
	}
}

// finish completes a frame's transmission: schedule delivery (and a
// duplicate, if injected).
func (nw *Network) finish(q *queued) {
	if q.lost {
		return
	}
	f := q.frame
	arrive := nw.eng.Now().Add(nw.model.WireLatency + q.delay)
	nw.eng.ScheduleAt(arrive, func() { nw.deliver(f) })
	dup := nw.DupFilter != nil && nw.DupFilter(&q.frame)
	if !dup && nw.DupRate > 0 && nw.eng.Rand().Float64() < nw.DupRate {
		dup = true
	}
	if dup {
		nw.eng.ScheduleAt(arrive.Add(nw.model.WireLatency), func() { nw.deliver(f) })
	}
}

func (nw *Network) deliver(f Frame) {
	if f.Dst == Broadcast {
		for id, h := range nw.handlers {
			if NodeID(id) == f.Src || h == nil {
				continue
			}
			nw.stats.FramesDelivered++
			h(f)
		}
		return
	}
	if h := nw.handlers[f.Dst]; h != nil {
		nw.stats.FramesDelivered++
		h(f)
	}
}
