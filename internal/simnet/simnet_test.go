package simnet

import (
	"testing"
	"testing/quick"

	"filaments/internal/cost"
	"filaments/internal/sim"
)

func newNet(t *testing.T, n int) (*sim.Engine, *Network, *cost.Model) {
	t.Helper()
	eng := sim.New(1)
	m := cost.Default()
	return eng, New(eng, &m, n), &m
}

func TestUnicastDelivery(t *testing.T) {
	eng, nw, m := newNet(t, 2)
	var gotAt sim.Time
	var got Frame
	nw.Register(1, func(f Frame) { got = f; gotAt = eng.Now() })
	eng.Schedule(0, func() {
		nw.Send(Frame{Src: 0, Dst: 1, Payload: "hello", Size: 100})
	})
	if err := eng.Run(); err != nil {
		t.Fatal(err)
	}
	if got.Payload != "hello" {
		t.Fatalf("payload = %v", got.Payload)
	}
	want := m.TransmitTime(100) + m.WireLatency
	if gotAt != sim.Time(want) {
		t.Fatalf("delivered at %v, want %v", gotAt, want)
	}
}

func TestTransmitTime(t *testing.T) {
	m := cost.Default()
	// 4 KB page + 70 bytes overhead at 10 Mbps = 4166*8/10e6 s = 3332.8 µs.
	got := m.TransmitTime(4096)
	want := sim.Duration((4096 + 70) * 8 * 100) // ns at 10 Mbps: bits * 100ns/bit
	if got != want {
		t.Fatalf("TransmitTime(4096) = %v, want %v", got, want)
	}
}

func TestMediumSerialization(t *testing.T) {
	eng, nw, m := newNet(t, 3)
	var arrivals []sim.Time
	nw.Register(2, func(f Frame) { arrivals = append(arrivals, eng.Now()) })
	eng.Schedule(0, func() {
		// Two frames sent at the same instant from different nodes must
		// serialize on the shared medium.
		nw.Send(Frame{Src: 0, Dst: 2, Size: 1000})
		nw.Send(Frame{Src: 1, Dst: 2, Size: 1000})
	})
	if err := eng.Run(); err != nil {
		t.Fatal(err)
	}
	if len(arrivals) != 2 {
		t.Fatalf("arrivals = %v", arrivals)
	}
	tx := m.TransmitTime(1000)
	if arrivals[1]-arrivals[0] != sim.Time(tx) {
		t.Fatalf("frames not serialized: gap %v, want %v", arrivals[1]-arrivals[0], tx)
	}
}

func TestBroadcast(t *testing.T) {
	eng, nw, _ := newNet(t, 4)
	got := make([]int, 4)
	for i := 1; i < 4; i++ {
		i := i
		nw.Register(NodeID(i), func(f Frame) { got[i]++ })
	}
	nw.Register(0, func(f Frame) { got[0]++ })
	eng.Schedule(0, func() {
		nw.Send(Frame{Src: 0, Dst: Broadcast, Size: 64})
	})
	if err := eng.Run(); err != nil {
		t.Fatal(err)
	}
	if got[0] != 0 {
		t.Fatal("broadcast delivered to sender")
	}
	for i := 1; i < 4; i++ {
		if got[i] != 1 {
			t.Fatalf("node %d got %d frames", i, got[i])
		}
	}
	st := nw.Stats()
	if st.FramesSent != 1 || st.FramesDelivered != 3 {
		t.Fatalf("stats = %+v", st)
	}
}

func TestDropFilter(t *testing.T) {
	eng, nw, _ := newNet(t, 2)
	delivered := 0
	nw.Register(1, func(f Frame) { delivered++ })
	n := 0
	nw.DropFilter = func(f *Frame) bool { n++; return n == 1 } // drop first only
	eng.Schedule(0, func() {
		nw.Send(Frame{Src: 0, Dst: 1, Size: 10})
		nw.Send(Frame{Src: 0, Dst: 1, Size: 10})
	})
	if err := eng.Run(); err != nil {
		t.Fatal(err)
	}
	if delivered != 1 {
		t.Fatalf("delivered = %d, want 1", delivered)
	}
	if nw.Stats().FramesDropped != 1 {
		t.Fatalf("dropped = %d", nw.Stats().FramesDropped)
	}
}

func TestLossRateApproximate(t *testing.T) {
	eng, nw, _ := newNet(t, 2)
	delivered := 0
	nw.Register(1, func(f Frame) { delivered++ })
	nw.LossRate = 0.5
	const total = 2000
	eng.Schedule(0, func() {
		for i := 0; i < total; i++ {
			nw.Send(Frame{Src: 0, Dst: 1, Size: 10})
		}
	})
	if err := eng.Run(); err != nil {
		t.Fatal(err)
	}
	if delivered < total/3 || delivered > 2*total/3 {
		t.Fatalf("delivered = %d of %d with 50%% loss", delivered, total)
	}
}

func TestDuplication(t *testing.T) {
	eng, nw, _ := newNet(t, 2)
	delivered := 0
	nw.Register(1, func(f Frame) { delivered++ })
	nw.DupRate = 1.0
	eng.Schedule(0, func() { nw.Send(Frame{Src: 0, Dst: 1, Size: 10}) })
	if err := eng.Run(); err != nil {
		t.Fatal(err)
	}
	if delivered != 2 {
		t.Fatalf("delivered = %d, want 2 (duplicated)", delivered)
	}
}

func TestDupFilter(t *testing.T) {
	eng, nw, _ := newNet(t, 2)
	delivered := 0
	nw.Register(1, func(f Frame) { delivered++ })
	n := 0
	nw.DupFilter = func(f *Frame) bool { n++; return n == 1 } // duplicate first only
	eng.Schedule(0, func() {
		nw.Send(Frame{Src: 0, Dst: 1, Size: 10})
		nw.Send(Frame{Src: 0, Dst: 1, Size: 10})
	})
	if err := eng.Run(); err != nil {
		t.Fatal(err)
	}
	if delivered != 3 {
		t.Fatalf("delivered = %d, want 3 (first frame duplicated)", delivered)
	}
}

// ReorderRate must be able to land an earlier frame after a later one, which
// plain FIFO delivery (TestFIFOProperty) never does.
func TestReorderRate(t *testing.T) {
	eng, nw, _ := newNet(t, 2)
	var got []int
	nw.Register(1, func(f Frame) { got = append(got, f.Payload.(int)) })
	nw.ReorderRate = 0.5
	const total = 64
	eng.Schedule(0, func() {
		for i := 0; i < total; i++ {
			nw.Send(Frame{Src: 0, Dst: 1, Payload: i, Size: 10})
		}
	})
	if err := eng.Run(); err != nil {
		t.Fatal(err)
	}
	if len(got) != total {
		t.Fatalf("delivered %d of %d", len(got), total)
	}
	inversions := 0
	for i := 1; i < len(got); i++ {
		if got[i] < got[i-1] {
			inversions++
		}
	}
	if inversions == 0 {
		t.Fatal("ReorderRate=0.5 produced a fully ordered stream")
	}
}

func TestDelayFilter(t *testing.T) {
	eng, nw, m := newNet(t, 2)
	var at sim.Time
	nw.Register(1, func(f Frame) { at = eng.Now() })
	nw.DelayFilter = func(f *Frame) sim.Duration { return 5 * sim.Millisecond }
	eng.Schedule(0, func() { nw.Send(Frame{Src: 0, Dst: 1, Size: 10}) })
	if err := eng.Run(); err != nil {
		t.Fatal(err)
	}
	want := m.TransmitTime(10) + m.WireLatency + 5*sim.Millisecond
	if at != sim.Time(want) {
		t.Fatalf("delivered at %v, want %v", at, want)
	}
}

func TestUtilization(t *testing.T) {
	eng, nw, m := newNet(t, 2)
	nw.Register(1, func(f Frame) {})
	eng.Schedule(0, func() {
		for i := 0; i < 10; i++ {
			nw.Send(Frame{Src: 0, Dst: 1, Size: 4096})
		}
	})
	if err := eng.Run(); err != nil {
		t.Fatal(err)
	}
	busy := nw.Stats().Busy
	if busy != 10*m.TransmitTime(4096) {
		t.Fatalf("busy = %v", busy)
	}
	u := nw.Stats().Utilization(busy) // elapsed == busy here
	if u < 0.999 || u > 1.001 {
		t.Fatalf("utilization = %v, want 1", u)
	}
}

// Property: delivery order between one src/dst pair matches send order (the
// medium is FIFO), regardless of frame sizes.
func TestFIFOProperty(t *testing.T) {
	f := func(sizes []uint8) bool {
		if len(sizes) == 0 {
			return true
		}
		eng := sim.New(3)
		m := cost.Default()
		nw := New(eng, &m, 2)
		var got []int
		nw.Register(1, func(fr Frame) { got = append(got, fr.Payload.(int)) })
		eng.Schedule(0, func() {
			for i, s := range sizes {
				nw.Send(Frame{Src: 0, Dst: 1, Payload: i, Size: int(s)})
			}
		})
		if err := eng.Run(); err != nil {
			return false
		}
		if len(got) != len(sizes) {
			return false
		}
		for i, v := range got {
			if v != i {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

// A small frame sent while a large transfer is in flight must interleave at
// MTU granularity instead of waiting for the whole transfer — the property
// that keeps acknowledgement latency bounded on a saturated medium.
func TestMTUInterleaving(t *testing.T) {
	eng, nw, m := newNet(t, 3)
	var bigAt, smallAt sim.Time
	nw.Register(2, func(f Frame) {
		if f.Size > MTU {
			bigAt = eng.Now()
		} else {
			smallAt = eng.Now()
		}
	})
	eng.Schedule(0, func() {
		nw.Send(Frame{Src: 0, Dst: 2, Size: 60000}) // ~50 ms of wire
		nw.Send(Frame{Src: 1, Dst: 2, Size: 64})
	})
	if err := eng.Run(); err != nil {
		t.Fatal(err)
	}
	if smallAt == 0 || bigAt == 0 {
		t.Fatal("frames not delivered")
	}
	if smallAt >= bigAt {
		t.Fatalf("small frame at %v did not pass the big one at %v", smallAt, bigAt)
	}
	// The small frame waits at most ~two MTU bursts plus its own time.
	maxWait := 3*m.TransmitTime(MTU) + m.WireLatency
	if smallAt > sim.Time(maxWait) {
		t.Fatalf("small frame delayed to %v; MTU arbitration broken", smallAt)
	}
}

// Frames from one sender stay FIFO even when fragmented.
func TestSenderFIFOWithFragmentation(t *testing.T) {
	eng, nw, _ := newNet(t, 2)
	var got []int
	nw.Register(1, func(f Frame) { got = append(got, f.Payload.(int)) })
	eng.Schedule(0, func() {
		nw.Send(Frame{Src: 0, Dst: 1, Payload: 0, Size: 9000})
		nw.Send(Frame{Src: 0, Dst: 1, Payload: 1, Size: 10})
		nw.Send(Frame{Src: 0, Dst: 1, Payload: 2, Size: 5000})
	})
	if err := eng.Run(); err != nil {
		t.Fatal(err)
	}
	for i, v := range got {
		if v != i {
			t.Fatalf("sender order violated: %v", got)
		}
	}
}

// Total medium occupancy is conserved across fragmentation: N frames of any
// sizes occupy exactly the sum of their whole-frame transmit times.
func TestBusyConservedProperty(t *testing.T) {
	f := func(sizes []uint16) bool {
		eng := sim.New(11)
		m := cost.Default()
		nw := New(eng, &m, 2)
		nw.Register(1, func(f Frame) {})
		var want sim.Duration
		eng.Schedule(0, func() {
			for _, s := range sizes {
				nw.Send(Frame{Src: 0, Dst: 1, Size: int(s)})
				want += m.TransmitTime(int(s))
			}
		})
		if err := eng.Run(); err != nil {
			return false
		}
		return nw.Stats().Busy == want
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}
