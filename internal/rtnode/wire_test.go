package rtnode_test

import (
	"bytes"
	"encoding/gob"
	"reflect"
	"testing"

	"filaments/internal/rtnode"

	// Imported for their RegisterWire inits: every kernel-layer package
	// that puts payloads on the wire declares them in the registry, and
	// this test round-trips the lot.
	_ "filaments/internal/apps/exprtree"
	_ "filaments/internal/apps/jacobi"
	_ "filaments/internal/apps/matmul"
	_ "filaments/internal/apps/quadrature"
	_ "filaments/internal/dsm"
	_ "filaments/internal/filament"
	_ "filaments/internal/msg"
	_ "filaments/internal/reduce"
)

// TestWireTypesRoundTrip gob-encodes a value of every registered wire
// type as an interface — exactly how the real-time transport frames
// payloads — and decodes it back. A type that gob cannot handle (or that
// a package forgot to register) fails here instead of on the first UDP
// message.
func TestWireTypesRoundTrip(t *testing.T) {
	types := rtnode.WireTypes()
	if len(types) == 0 {
		t.Fatal("no wire types registered")
	}
	// Every protocol layer must have contributed: the DSM's four
	// messages, the reducer's two, fork/join's four, msg's envelope, and
	// the CG programs' payloads.
	if len(types) < 12 {
		t.Fatalf("only %d wire types registered: %v", len(types), types)
	}
	for _, typ := range types {
		var buf bytes.Buffer
		in := reflect.New(typ).Elem().Interface()
		if err := gob.NewEncoder(&buf).Encode(&in); err != nil {
			t.Errorf("%s: encode: %v", typ, err)
			continue
		}
		var out any
		if err := gob.NewDecoder(bytes.NewReader(buf.Bytes())).Decode(&out); err != nil {
			t.Errorf("%s: decode: %v", typ, err)
			continue
		}
		if got := reflect.TypeOf(out); got != typ {
			t.Errorf("round trip changed type: sent %s, got %s", typ, got)
		}
	}
}
