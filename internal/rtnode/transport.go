package rtnode

import (
	"bytes"
	"context"
	"encoding/binary"
	"encoding/gob"
	"fmt"
	"net"
	"sync"

	"filaments/internal/kernel"
	"filaments/internal/obs"
	"filaments/internal/udptrans"
)

// Codec selects the payload wire encoding. The codec is a cluster-wide
// setting — every node must run the same one, like the protocol itself.
type Codec int

const (
	// CodecBinary is the hand-rolled tagged binary codec (codec.go): zero
	// codec allocations on the page path, gob escape hatch for unregistered
	// types. The default.
	CodecBinary Codec = iota
	// CodecGob is the previous release's framing, bit for bit: every
	// payload as one raw gob stream. Kept for one release as the
	// `-codec=gob` fallback.
	CodecGob
)

// ParseCodec maps the CLI flag spelling to a Codec.
func ParseCodec(s string) (Codec, error) {
	switch s {
	case "", "binary":
		return CodecBinary, nil
	case "gob":
		return CodecGob, nil
	default:
		return 0, fmt.Errorf("unknown codec %q (supported: binary, gob)", s)
	}
}

func (c Codec) String() string {
	if c == CodecGob {
		return "gob"
	}
	return "binary"
}

// Transport implements kernel.Transport over a udptrans UDP endpoint.
// Payloads cross the wire binary-encoded by default (codec.go), with the
// gob framing of the previous release available via SetCodec(CodecGob);
// the kernel layers register their wire structs (gob and binary) in their
// init functions.
//
// Reliability division of labor: udptrans already provides retransmission
// with capped backoff, duplicate coalescing, and reply caching — the same
// Packet protocol the simulation binding implements — so this adapter only
// translates between kernel types and bytes, bridges handlers into node
// context, and keeps requests alive across udptrans retry-budget
// exhaustion (the kernel contract is "retransmitted until answered",
// matching the simulated Packet's unbounded persistence).
type Transport struct {
	node  *Node
	ep    *udptrans.Endpoint
	mux   *EventMux
	lane  uint16
	codec Codec

	// lanePrefix is uvarint(lane), prepended to every outgoing event so
	// the receiving EventMux can route it (mux.go).
	lanePrefix []byte

	peers []*net.UDPAddr           // indexed by NodeID
	ids   map[string]kernel.NodeID // reverse: observed source address → id
	raw   []func(from kernel.NodeID, payload any) bool

	svcs []uint16 // wire service ids registered on ep, for Detach

	outstanding int // guarded by node.mu
	inflight    sync.WaitGroup
}

// NewTransport wraps ep as node's kernel.Transport on lane 0, creating
// the endpoint's EventMux — the single-run form, where the endpoint
// lives exactly as long as the transport. Peers must be installed with
// SetPeers before traffic flows.
func NewTransport(node *Node, ep *udptrans.Endpoint) *Transport {
	return NewTransportOn(NewEventMux(ep), node, 0)
}

// NewTransportOn wraps the mux's endpoint as node's kernel.Transport on
// the given lane — the run-many form: the mux (and its endpoint) outlive
// the transport, which registers its services under lane-offset wire ids
// and tears them back down in Detach. Peers must be installed with
// SetPeers before traffic flows.
func NewTransportOn(mux *EventMux, node *Node, lane uint16) *Transport {
	if lane >= MaxLanes {
		panic(fmt.Sprintf("rtnode: lane %d out of range (max %d)", lane, MaxLanes-1))
	}
	tr := &Transport{
		node:       node,
		ep:         mux.Endpoint(),
		mux:        mux,
		lane:       lane,
		lanePrefix: binary.AppendUvarint(nil, uint64(lane)),
		ids:        make(map[string]kernel.NodeID),
	}
	mux.attach(lane, tr)
	return tr
}

// traceRetransmit surfaces a transport retransmission in the node's
// trace. Now() and the trace sink are goroutine-safe, so this may run on
// any caller goroutine (it is invoked from the endpoint's retry timer
// via the mux).
func (tr *Transport) traceRetransmit(svc uint16, attempt int) {
	n := tr.node
	n.Obs().Trace(int64(n.Now()), "net", "retransmit",
		obs.Arg{Key: "svc", Val: int64(svc)}, obs.Arg{Key: "attempt", Val: int64(attempt)})
}

// traceEventDrop surfaces a dropped one-way datagram: an event shed by a
// full worker queue (a barrier release, typically) delays whoever waited
// on it by a retransmission round-trip; make that visible in the trace
// instead of silent.
func (tr *Transport) traceEventDrop() {
	n := tr.node
	n.Obs().Trace(int64(n.Now()), "net", "event_dropped")
}

// SetCodec selects the wire codec. Must be called before traffic flows
// (like SetPeers), and with the same value on every node in the cluster.
func (tr *Transport) SetCodec(c Codec) { tr.codec = c }

// SetPeers installs the cluster address table: peers[i] is node i's
// endpoint address (including this node's own).
func (tr *Transport) SetPeers(peers []*net.UDPAddr) {
	tr.peers = peers
	for i, p := range peers {
		tr.ids[p.String()] = kernel.NodeID(i)
	}
}

// Endpoint returns the underlying UDP endpoint (stats, address).
func (tr *Transport) Endpoint() *udptrans.Endpoint { return tr.ep }

// Close shuts the transport down: the endpoint closes (failing pending
// calls), and every async request goroutine drains. The single-run form
// of teardown — a run-many endpoint uses Detach instead and closes the
// endpoint only once, at daemon shutdown.
func (tr *Transport) Close() error {
	err := tr.ep.Close()
	tr.inflight.Wait()
	return err
}

// Detach tears this transport off its endpoint without closing the
// socket: the lane detaches from the mux (late events for it are
// dropped — they are unreliable by contract), the lane's services
// unregister, and async request goroutines drain. The caller must have
// reached quiescence first — every thread past its final synchronization
// point and Outstanding()==0 — because an unregistered service silently
// ignores requests, so a peer still retrying against it would spin
// forever. Must be called outside node context.
func (tr *Transport) Detach() {
	tr.mux.detach(tr.lane)
	for _, id := range tr.svcs {
		tr.ep.Unregister(id)
	}
	tr.inflight.Wait()
}

// wireSvc maps a lane-relative kernel service id to its wire service id.
func (tr *Transport) wireSvc(id kernel.ServiceID) uint16 {
	if id < 0 || int(id) >= LaneStride {
		panic(fmt.Sprintf("rtnode: kernel service id %d outside lane stride %d", id, LaneStride))
	}
	return uint16(id) + tr.lane*LaneStride
}

func (tr *Transport) idOf(addr *net.UDPAddr) (kernel.NodeID, bool) {
	id, ok := tr.ids[addr.String()]
	return id, ok
}

// encodePayload turns a kernel-layer payload into bytes under the legacy
// gob framing. nil encodes as an empty payload (steal probes and ack-only
// replies are nil).
func encodePayload(v any) []byte {
	if v == nil {
		return nil
	}
	var buf bytes.Buffer
	if err := gob.NewEncoder(&buf).Encode(&v); err != nil {
		panic(fmt.Sprintf("rtnode: encode %T: %v", v, err))
	}
	return buf.Bytes()
}

// decodePayload inverts encodePayload.
func decodePayload(b []byte) any {
	if len(b) == 0 {
		return nil
	}
	var v any
	if err := gob.NewDecoder(bytes.NewReader(b)).Decode(&v); err != nil {
		panic(fmt.Sprintf("rtnode: decode: %v", err))
	}
	return v
}

// payloadPool recycles encode buffers on the request/event send path. The
// pool warms up to the largest payload the run ships (a DSM block), after
// which sends stop allocating.
var payloadPool = sync.Pool{
	New: func() any {
		b := make([]byte, 0, 4096)
		return &b
	},
}

// marshal encodes v under the transport's codec. In binary mode the bytes
// live in a pooled buffer and the caller must invoke release once the
// bytes are no longer referenced (the udptrans send paths copy payloads
// into frames synchronously, so release follows the send call). In gob
// mode release is nil.
func (tr *Transport) marshal(v any) (data []byte, release func()) {
	if tr.codec == CodecGob {
		return encodePayload(v), nil
	}
	if v == nil {
		return nil, nil
	}
	bp := payloadPool.Get().(*[]byte)
	*bp = AppendPayload((*bp)[:0], v)
	return *bp, func() {
		*bp = (*bp)[:0]
		payloadPool.Put(bp)
	}
}

// marshalOwned encodes v into a buffer the receiver may retain (service
// replies outlive the handler inside udptrans — they are copied into the
// reply frame and the reply cache after the handler returns).
func (tr *Transport) marshalOwned(v any) []byte {
	if tr.codec == CodecGob {
		return encodePayload(v)
	}
	return AppendPayload(nil, v)
}

// unmarshal decodes a payload under the transport's codec. In binary mode
// the decoded value may alias b — the kernel contract that receivers copy
// data they retain makes that safe while b's buffer lives.
func (tr *Transport) unmarshal(b []byte) any {
	if tr.codec == CodecGob {
		return decodePayload(b)
	}
	return UnmarshalPayload(b)
}

// Register installs a kernel service on the UDP endpoint. The wrapped
// handler decodes the payload, enters node context, charges receive and
// send costs to the ledger, and maps kernel.Drop to a udptrans drop (the
// requester's retransmission recovers, as in the paper).
func (tr *Transport) Register(id kernel.ServiceID, s kernel.Service) {
	n := tr.node
	wid := tr.wireSvc(id)
	tr.svcs = append(tr.svcs, wid)
	tr.ep.Register(wid, udptrans.Service{
		Idempotent: s.Idempotent,
		Handler: func(from *net.UDPAddr, req []byte) ([]byte, bool) {
			src, known := tr.idOf(from)
			if !known {
				return nil, true // stray datagram from outside the cluster
			}
			// The decoded payload may alias req's receive buffer; the
			// buffer stays alive until this handler returns, and the
			// handler runs to completion under the node monitor.
			payload := tr.unmarshal(req)
			n.mu.Lock()
			defer n.mu.Unlock()
			if n.closed {
				return nil, true
			}
			n.acct[s.Category] += n.model.RecvCost(len(req))
			reply, size, v := s.Handler(src, payload)
			if v == kernel.Drop {
				return nil, true
			}
			n.acct[s.Category] += n.model.SendCost(size)
			return tr.marshalOwned(reply), false
		},
	})
}

// call runs one reliable request to completion. The endpoint must carry an
// effectively unbounded retry budget (the bindings configure one): the
// kernel contract is "retransmitted until answered", and the
// retransmissions must reuse the request's sequence number so the
// receiver's reply cache absorbs duplicates. Re-issuing a timed-out call
// as a fresh request would re-execute non-idempotent handlers — a steal
// grant whose reply datagram was dropped would dequeue a second filament
// and strand the first. ok is false on endpoint close or cancellation.
func (tr *Transport) call(ctx context.Context, dst *net.UDPAddr, svc uint16, data []byte) ([]byte, bool) {
	reply, err := tr.ep.CallContext(ctx, dst, svc, data)
	if err != nil {
		return nil, false
	}
	return reply, true
}

// callBuffered is call without the reply copy: the reply aliases a pooled
// buffer and the caller must invoke release (when non-nil) after the
// reply has been consumed.
func (tr *Transport) callBuffered(ctx context.Context, dst *net.UDPAddr, svc uint16, data []byte) ([]byte, func(), bool) {
	reply, release, err := tr.ep.CallBuffered(ctx, dst, svc, data)
	if err != nil {
		return nil, nil, false
	}
	return reply, release, true
}

// Call issues a blocking request from thread t. The node monitor is
// released while the call is in flight — the calling thread is blocked,
// exactly as in the simulation, and other threads and handlers run.
func (tr *Transport) Call(t kernel.Thread, dst kernel.NodeID, svc kernel.ServiceID, req any, size int, cat kernel.Category) any {
	n := tr.node
	n.acct[cat] += n.model.SendCost(size)
	tr.outstanding++
	data, release := tr.marshal(req)
	addr := tr.peers[dst]
	wid := tr.wireSvc(svc)
	n.mu.Unlock()
	reply, ok := tr.call(context.Background(), addr, wid, data)
	if release != nil {
		release()
	}
	n.mu.Lock()
	tr.outstanding--
	if !ok {
		return nil // endpoint closed mid-run (shutdown)
	}
	n.acct[cat] += n.model.RecvCost(len(reply))
	// CallContext returned an owned copy of the reply, so the decoded
	// value (which may alias it) is safe for the calling thread to keep.
	return tr.unmarshal(reply)
}

// handle tracks one asynchronous request. Its fields are guarded by the
// node monitor; Complete/Cancel/Done must be called in node context.
type handle struct {
	cb     func(any)
	done   bool
	cancel context.CancelFunc
}

func (h *handle) Complete(reply any) {
	if h.done {
		return
	}
	h.done = true
	h.cancel()
	h.cb(reply)
}

func (h *handle) Cancel() {
	if h.done {
		return
	}
	h.done = true
	h.cancel()
}

func (h *handle) Done() bool { return h.done }

// RequestAsync issues a reliable request serviced by a dedicated
// goroutine; the callback runs in node context when the reply arrives.
func (tr *Transport) RequestAsync(dst kernel.NodeID, svc kernel.ServiceID, req any, size int, cat kernel.Category, cb func(reply any)) kernel.Handle {
	n := tr.node
	ctx, cancel := context.WithCancel(context.Background())
	h := &handle{cb: cb, cancel: cancel}
	n.acct[cat] += n.model.SendCost(size)
	tr.outstanding++
	data, relReq := tr.marshal(req)
	addr := tr.peers[dst]
	wid := tr.wireSvc(svc)
	tr.inflight.Add(1)
	go func() {
		defer tr.inflight.Done()
		// The buffered call avoids copying the reply (a page, on the DSM
		// path): the decoded payload aliases the pooled receive buffer,
		// which is released only after the callback — run to completion
		// under the node monitor — returns. Callbacks that retain payload
		// bytes copy them (the kernel contract; DSM install does).
		reply, relReply, ok := tr.callBuffered(ctx, addr, wid, data)
		if relReq != nil {
			relReq()
		}
		n.mu.Lock()
		defer n.mu.Unlock()
		defer func() {
			if relReply != nil {
				relReply()
			}
		}()
		tr.outstanding--
		if h.done {
			return // completed out of band or canceled
		}
		h.done = true
		if !ok {
			return // endpoint closed mid-run
		}
		n.acct[cat] += n.model.RecvCost(len(reply))
		cb(tr.unmarshal(reply))
	}()
	return h
}

// RequestSized is RequestAsync; the expected reply size only stretches
// timeouts in the simulation (real retransmission keeps retrying anyway).
func (tr *Transport) RequestSized(dst kernel.NodeID, svc kernel.ServiceID, req any, size, expectedReply int, cat kernel.Category, cb func(reply any)) kernel.Handle {
	return tr.RequestAsync(dst, svc, req, size, cat, cb)
}

// marshalEvent encodes an event payload behind the lane prefix, so the
// receiving mux can route it. Unlike marshal, a nil payload still yields
// bytes (the bare prefix — the remainder decodes back to nil). Release
// semantics match marshal: nil in gob mode, pooled buffer otherwise.
func (tr *Transport) marshalEvent(v any) (data []byte, release func()) {
	if tr.codec == CodecGob {
		body := encodePayload(v)
		buf := make([]byte, 0, len(tr.lanePrefix)+len(body))
		return append(append(buf, tr.lanePrefix...), body...), nil
	}
	bp := payloadPool.Get().(*[]byte)
	*bp = AppendPayload(append((*bp)[:0], tr.lanePrefix...), v)
	return *bp, func() {
		*bp = (*bp)[:0]
		payloadPool.Put(bp)
	}
}

// Send transmits an unreliable one-way datagram; Broadcast fans out to
// every peer but this node. Loss is tolerated by the protocols above
// (e.g. a lost barrier release is recovered by arrive retransmission).
func (tr *Transport) Send(dst kernel.NodeID, payload any, size int, cat kernel.Category) {
	n := tr.node
	n.acct[cat] += n.model.SendCost(size)
	data, release := tr.marshalEvent(payload)
	// SendEvent copies the payload into its frame (or batch) before
	// returning, so the pooled encode buffer can be released right after.
	if dst == kernel.Broadcast {
		for i, p := range tr.peers {
			if kernel.NodeID(i) == n.id {
				continue
			}
			tr.ep.SendEvent(p, data) //nolint:errcheck // unreliable by contract
		}
	} else {
		tr.ep.SendEvent(tr.peers[dst], data) //nolint:errcheck // unreliable by contract
	}
	if release != nil {
		release()
	}
}

// HandleRaw appends a one-way datagram handler. Registration happens
// during setup, before traffic flows.
func (tr *Transport) HandleRaw(h func(from kernel.NodeID, payload any) bool) {
	tr.raw = append(tr.raw, h)
}

// handleEvent delivers a one-way datagram through the raw handler chain in
// node context. It runs on the endpoint's worker pool.
func (tr *Transport) handleEvent(from *net.UDPAddr, b []byte) {
	src, known := tr.idOf(from)
	if !known {
		return
	}
	// The decoded payload may alias b's pooled receive buffer, which the
	// endpoint keeps alive until this handler returns; the raw chain runs
	// to completion inside it.
	payload := tr.unmarshal(b)
	n := tr.node
	n.mu.Lock()
	defer n.mu.Unlock()
	if n.closed {
		return
	}
	for _, h := range tr.raw {
		if h(src, payload) {
			return
		}
	}
}

// Outstanding returns the number of requests in flight. Must be called in
// node context.
func (tr *Transport) Outstanding() int { return tr.outstanding }
