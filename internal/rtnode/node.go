// Package rtnode is the real-time binding of the kernel seam: kernel.Node
// implemented with goroutines and wall-clock time, and kernel.Transport
// implemented over internal/udptrans UDP sockets.
//
// Where the simulation binding (internal/threads) models the paper's
// one-CPU node with a cooperative scheduler in virtual time, rtnode uses a
// per-node monitor: every server thread is a goroutine that holds the
// node's mutex while it runs and releases it when it blocks. At most one
// thread (or message handler) executes protocol code at a time, which
// preserves the kernel layers' single-CPU atomicity assumptions — DSM
// table updates, join bookkeeping, and barrier epochs are mutated only
// under the monitor — while real time, real sockets, and the Go scheduler
// replace the simulator's event loop.
//
// The paper's critical-section flag (drop requests that would modify
// critical data, §2.3) has no counterpart here: the monitor itself
// serializes handlers against threads, so a handler can never observe a
// thread's half-finished update.
package rtnode

import (
	"fmt"
	"runtime"
	"sync"
	"time"

	"filaments/internal/cost"
	"filaments/internal/kernel"
	"filaments/internal/obs"
)

// Node is one real-time node: an identity, a monitor, and a CPU-time
// ledger. It implements kernel.Node.
//
// "Node context" below means holding the node's monitor: thread bodies run
// in node context for their whole life (except while blocked), and so do
// service handlers, raw handlers, request callbacks, and scheduled timers.
type Node struct {
	id    kernel.NodeID
	model *cost.Model
	start time.Time

	mu     sync.Mutex
	closed bool
	acct   kernel.Account

	threads sync.WaitGroup

	obs *obs.Obs
}

// NewNode creates a node. The cost model is used for ledger accounting
// only; real operations take the time they take.
func NewNode(id kernel.NodeID, model *cost.Model) *Node {
	return &Node{id: id, model: model, start: time.Now(), obs: obs.New(int(id))}
}

// Obs returns the node's observability handle (obs.Provider). Its
// counters are atomic and its tracer carries its own lock, so it is safe
// to use from any goroutine, in or out of node context.
func (n *Node) Obs() *obs.Obs { return n.obs }

// ID returns the node's identity.
func (n *Node) ID() kernel.NodeID { return n.id }

// Model returns the node's cost model.
func (n *Node) Model() *cost.Model { return n.model }

// Now returns nanoseconds of wall time since the node was created
// (kernel.Clock). It is safe from any goroutine.
func (n *Node) Now() kernel.Time { return kernel.Time(time.Since(n.start)) }

// rtTimer adapts time.Timer to kernel.Timer.
type rtTimer struct{ t *time.Timer }

func (t *rtTimer) Stop() bool { return t.t.Stop() }

// Schedule runs fn in node context after wall duration d (kernel.Clock).
func (n *Node) Schedule(d kernel.Duration, fn func()) kernel.Timer {
	t := time.AfterFunc(time.Duration(d), func() {
		n.mu.Lock()
		defer n.mu.Unlock()
		if n.closed {
			return
		}
		fn()
	})
	return &rtTimer{t}
}

// Charge spends d of CPU in category c. Under real time the cost is
// ledger-only: the actual operation took however long it took. Must be
// called in node context.
func (n *Node) Charge(c kernel.Category, d kernel.Duration) {
	if d > 0 {
		n.acct[c] += d
	}
}

// AddDelay records d in the ledger without consuming CPU. Must be called
// in node context.
func (n *Node) AddDelay(c kernel.Category, d kernel.Duration) {
	if d > 0 {
		n.acct[c] += d
	}
}

// Account returns a snapshot of the node's CPU ledger.
func (n *Node) Account() kernel.Account {
	n.mu.Lock()
	defer n.mu.Unlock()
	return n.acct
}

// WithLock runs fn in node context. It is how code outside the node (test
// harnesses, result verification) inspects kernel-layer state races-free.
func (n *Node) WithLock(fn func()) {
	n.mu.Lock()
	defer n.mu.Unlock()
	fn()
}

// Close marks the node closed: scheduled timers that have not fired yet
// become no-ops. Threads must already have finished (or be about to).
func (n *Node) Close() {
	n.mu.Lock()
	n.closed = true
	n.mu.Unlock()
}

// Wait blocks until every spawned thread has returned.
func (n *Node) Wait() { n.threads.Wait() }

// Thread is a goroutine-backed server thread holding the node monitor
// while it runs. It implements kernel.Thread.
type Thread struct {
	node  *Node
	name  string
	cond  *sync.Cond
	ready bool // wake token: Ready before Block is not lost
}

// Spawn creates a thread running body. The goroutine acquires the monitor
// before body starts and releases it when body returns. Safe from any
// context (a caller already in node context keeps the monitor; the new
// thread starts once it is released).
func (n *Node) Spawn(name string, body func(t kernel.Thread)) kernel.Thread {
	t := &Thread{node: n, name: name}
	t.cond = sync.NewCond(&n.mu)
	n.threads.Add(1)
	go func() {
		defer n.threads.Done()
		n.mu.Lock()
		defer n.mu.Unlock()
		body(t)
	}()
	return t
}

// Ready wakes a blocked thread. The front hint is meaningless here — the Go
// scheduler owns ordering — and is ignored. Must be called in node context.
func (n *Node) Ready(kt kernel.Thread, front bool) {
	t, ok := kt.(*Thread)
	if !ok || t.node != n {
		panic(fmt.Sprintf("rtnode: Ready on foreign thread %q", kt.Name()))
	}
	t.ready = true
	t.cond.Signal()
}

// Name returns the thread's diagnostic name.
func (t *Thread) Name() string { return t.name }

// Block releases the monitor and suspends the thread until Ready. A Ready
// issued before Block is consumed immediately (wake tokens do not get
// lost, unlike a bare condition wait).
func (t *Thread) Block() {
	for !t.ready {
		t.cond.Wait()
	}
	t.ready = false
}

// Yield briefly releases the monitor so other threads and handlers can
// run.
func (t *Thread) Yield() {
	t.node.mu.Unlock()
	runtime.Gosched()
	t.node.mu.Lock()
}

// Preempt is a dispatch point. The simulation drains pending input here;
// under real time, handlers run concurrently on the worker pool, so
// Preempt just gives them a window to take the monitor.
func (t *Thread) Preempt() { t.Yield() }
