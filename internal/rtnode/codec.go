package rtnode

import (
	"bytes"
	"encoding/binary"
	"encoding/gob"
	"fmt"
	"math"
	"reflect"
	"sync"
)

// The binary wire codec.
//
// The real-time transport originally gob-encoded every payload as an
// interface value. Gob is self-describing and safe, but it costs dozens
// of allocations and a reflection walk per message — on the page-transfer
// hot path that software overhead is exactly what the paper says kills
// fine-grain parallelism on a cluster. This file replaces it with a
// hand-rolled binary codec: each wire struct registers an explicit
// encoder/decoder under a small numeric tag (RegisterWireCodec, next to
// the gob registration the dflint gobreg analyzer already enforces), and
// the encode path appends into caller-provided buffers so a page message
// round-trips with zero codec allocations.
//
// Frame format of one payload (CodecBinary mode):
//
//	empty            — nil payload (steal probes, ack-only replies)
//	uvarint tag, body — tagged value
//
// Tag 1 is the gob escape hatch: a type registered with RegisterWire but
// without a binary codec still crosses the wire as a length-prefixed gob
// blob, so the codec migration never silently strands a payload type.
// Tag 0 is nil (needed for nested nil values, e.g. msg envelopes). Tags
// 8–15 are reserved for builtin shapes registered by this package
// ([][]float64); kernel packages use 16 and up.
//
// CodecGob mode keeps the previous release's framing bit for bit (a raw
// gob stream, no tag), selected with `-codec=gob` on the CLIs. The codec
// is a cluster-wide setting: every node must agree, like the protocol.
//
// Decoded values may alias the input buffer ([]byte fields are not
// copied). The transport owns the buffer until the handler or callback
// returns, which matches the kernel contract that receivers copy data
// they retain — the simulation binding passes payloads by reference and
// has always imposed the same rule.

// Builtin tags (8–15) and the reserved structural tags.
const (
	tagNil     = 0
	tagGob     = 1
	tagF64Grid = 8 // [][]float64, the shape every CG program ships
	// TagTestBase and up are reserved for test-only registrations, so
	// fixture codecs can never collide with kernel tags.
	TagTestBase = 0x7F00
)

// Enc is an append-only encoder. B is the destination buffer; methods
// append and never allocate while capacity lasts, so callers that reuse
// buffers encode with zero allocations.
type Enc struct {
	B []byte
}

// Uvarint appends u in unsigned varint encoding.
//
//dflint:hotpath
func (e *Enc) Uvarint(u uint64) {
	e.B = binary.AppendUvarint(e.B, u)
}

// Varint appends i in zig-zag varint encoding.
//
//dflint:hotpath
func (e *Enc) Varint(i int64) {
	e.B = binary.AppendVarint(e.B, i)
}

// F64 appends f as 8 fixed little-endian bytes.
//
//dflint:hotpath
func (e *Enc) F64(f float64) {
	e.B = binary.LittleEndian.AppendUint64(e.B, math.Float64bits(f))
}

// Bool appends b as one byte.
//
//dflint:hotpath
func (e *Enc) Bool(b bool) {
	if b {
		e.B = append(e.B, 1)
	} else {
		e.B = append(e.B, 0)
	}
}

// Bytes appends a length-prefixed byte slice. nil and empty encode
// identically: the wire contract (pinned by the rtnode fuzz test since
// the gob era) is that nil-versus-empty carries no protocol meaning.
//
//dflint:hotpath
func (e *Enc) Bytes(b []byte) {
	e.Uvarint(uint64(len(b)))
	e.B = append(e.B, b...)
}

// String appends a length-prefixed string.
//
//dflint:hotpath
func (e *Enc) String(s string) {
	e.Uvarint(uint64(len(s)))
	e.B = append(e.B, s...)
}

// Dec decodes a buffer produced by Enc. Malformed input sets Bad and
// makes every subsequent read return zero values, so codecs can decode
// straight-line and check once at the end.
type Dec struct {
	B   []byte
	Off int
	Bad bool
}

func (d *Dec) fail() {
	d.Bad = true
}

// Fail marks the decode as malformed (codecs use it for their own
// structural validation, e.g. rejecting bogus element counts).
func (d *Dec) Fail() { d.fail() }

// Remaining reports how many bytes are left to decode.
func (d *Dec) Remaining() int { return len(d.B) - d.Off }

// Uvarint reads an unsigned varint.
//
//dflint:hotpath
func (d *Dec) Uvarint() uint64 {
	if d.Bad {
		return 0
	}
	u, n := binary.Uvarint(d.B[d.Off:])
	if n <= 0 {
		d.fail()
		return 0
	}
	d.Off += n
	return u
}

// Varint reads a zig-zag varint.
//
//dflint:hotpath
func (d *Dec) Varint() int64 {
	if d.Bad {
		return 0
	}
	i, n := binary.Varint(d.B[d.Off:])
	if n <= 0 {
		d.fail()
		return 0
	}
	d.Off += n
	return i
}

// F64 reads 8 fixed little-endian bytes as a float64.
//
//dflint:hotpath
func (d *Dec) F64() float64 {
	if d.Bad || d.Off+8 > len(d.B) {
		d.fail()
		return 0
	}
	f := math.Float64frombits(binary.LittleEndian.Uint64(d.B[d.Off:]))
	d.Off += 8
	return f
}

// Bool reads one byte as a bool.
//
//dflint:hotpath
func (d *Dec) Bool() bool {
	if d.Bad || d.Off >= len(d.B) {
		d.fail()
		return false
	}
	b := d.B[d.Off]
	d.Off++
	return b != 0
}

// Bytes reads a length-prefixed byte slice. The result ALIASES the input
// buffer — valid only while the buffer is; receivers that retain the
// bytes must copy (the DSM install path does).
//
//dflint:hotpath
func (d *Dec) Bytes() []byte {
	n := int(d.Uvarint())
	if d.Bad || n < 0 || d.Off+n > len(d.B) {
		d.fail()
		return nil
	}
	b := d.B[d.Off : d.Off+n : d.Off+n]
	d.Off += n
	if n == 0 {
		return nil
	}
	return b
}

// String reads a length-prefixed string (copies, as strings must).
func (d *Dec) String() string {
	return string(d.Bytes())
}

// wireCodec couples a tag with its encode/decode functions.
type wireCodec struct {
	tag uint16
	enc func(*Enc, any)
	dec func(*Dec) any
}

// The codec registry. Like the gob registry above it, registration
// happens from package inits (and test setup) before any traffic flows,
// so lookups run unlocked on the hot path.
var (
	codecMu     sync.Mutex
	codecByType = make(map[reflect.Type]wireCodec)
	codecByTag  = make(map[uint16]wireCodec)
)

// RegisterWireCodec installs the binary encoder/decoder for proto's
// concrete type under tag. Tags must be unique (16 and up for kernel
// packages, TagTestBase and up for tests; 8–15 are this package's
// builtins). enc receives a value of proto's exact type; dec must return
// one. A type without a registered codec still crosses the wire via the
// gob escape hatch, so registration is an optimization, not a liveness
// requirement — but the hot-path types (pages, forks, barriers) all have
// one.
func RegisterWireCodec(proto any, tag uint16, enc func(*Enc, any), dec func(*Dec) any) {
	if proto == nil {
		panic("rtnode.RegisterWireCodec: nil prototype")
	}
	if tag == tagNil || tag == tagGob {
		panic(fmt.Sprintf("rtnode.RegisterWireCodec: tag %d is reserved", tag))
	}
	t := reflect.TypeOf(proto)
	codecMu.Lock()
	defer codecMu.Unlock()
	if prev, dup := codecByType[t]; dup {
		panic(fmt.Sprintf("rtnode.RegisterWireCodec: %v already registered (tag %d)", t, prev.tag))
	}
	if prev, dup := codecByTag[tag]; dup {
		panic(fmt.Sprintf("rtnode.RegisterWireCodec: tag %d already used by %v", tag, prev))
	}
	c := wireCodec{tag: tag, enc: enc, dec: dec}
	codecByType[t] = c
	codecByTag[tag] = c
}

// EncodeAny appends v's tagged encoding to e: nil, a registered binary
// codec, or the length-prefixed gob escape hatch. It is the recursion
// point for envelope codecs whose payload is an interface (msg's wire
// struct).
func EncodeAny(e *Enc, v any) {
	if v == nil {
		e.Uvarint(tagNil)
		return
	}
	if c, ok := codecByType[reflect.TypeOf(v)]; ok {
		e.Uvarint(uint64(c.tag))
		c.enc(e, v)
		return
	}
	e.Uvarint(tagGob)
	var buf bytes.Buffer
	if err := gob.NewEncoder(&buf).Encode(&v); err != nil {
		panic(fmt.Sprintf("rtnode: encode %T: %v", v, err))
	}
	e.Bytes(buf.Bytes())
}

// DecodeAny inverts EncodeAny.
func DecodeAny(d *Dec) any {
	tag := d.Uvarint()
	if d.Bad {
		return nil
	}
	switch tag {
	case tagNil:
		return nil
	case tagGob:
		blob := d.Bytes()
		if d.Bad {
			return nil
		}
		var v any
		if err := gob.NewDecoder(bytes.NewReader(blob)).Decode(&v); err != nil {
			panic(fmt.Sprintf("rtnode: decode gob payload: %v", err))
		}
		return v
	}
	c, ok := codecByTag[uint16(tag)]
	if !ok {
		d.fail()
		return nil
	}
	return c.dec(d)
}

// AppendPayload appends the binary framing of a kernel payload to dst and
// returns the extended buffer. nil encodes as an empty payload, matching
// the transport convention that zero-length datagram bodies mean nil.
func AppendPayload(dst []byte, v any) []byte {
	if v == nil {
		return dst
	}
	e := Enc{B: dst}
	EncodeAny(&e, v)
	return e.B
}

// UnmarshalPayload decodes a binary-framed payload. It panics on
// malformed input for the same reason the gob path always has: payloads
// only arrive from validated cluster peers, so corruption is a bug, not
// an input.
func UnmarshalPayload(b []byte) any {
	if len(b) == 0 {
		return nil
	}
	d := Dec{B: b}
	v := DecodeAny(&d)
	if d.Bad {
		panic(fmt.Sprintf("rtnode: malformed binary payload (%d bytes, offset %d)", len(b), d.Off))
	}
	return v
}

// MarshalPayload is AppendPayload into a fresh buffer (tests and
// diagnostics; the transport uses AppendPayload with pooled buffers).
func MarshalPayload(v any) []byte {
	return AppendPayload(nil, v)
}

// The [][]float64 builtin: the matrix shape every CG program and
// fork/join result ships. Registered here because three app packages
// declare it in RegisterWire and a codec must be registered exactly once.
func init() {
	RegisterWireCodec([][]float64(nil), tagF64Grid,
		func(e *Enc, v any) {
			g := v.([][]float64)
			e.Uvarint(uint64(len(g)))
			for _, row := range g {
				e.Uvarint(uint64(len(row)))
				for _, f := range row {
					e.F64(f)
				}
			}
		},
		func(d *Dec) any {
			n := d.Uvarint()
			if d.Bad || n == 0 {
				return [][]float64(nil)
			}
			if n > uint64(len(d.B)) { // each row costs ≥1 byte; reject bogus lengths
				d.fail()
				return [][]float64(nil)
			}
			g := make([][]float64, n)
			for i := range g {
				m := d.Uvarint()
				if d.Bad || m*8 > uint64(len(d.B)-d.Off) {
					d.fail()
					return [][]float64(nil)
				}
				if m == 0 {
					continue // zero-length rows decode as nil, like gob
				}
				row := make([]float64, m)
				for j := range row {
					row[j] = d.F64()
				}
				g[i] = row
			}
			return g
		})
}
