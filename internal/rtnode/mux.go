package rtnode

import (
	"encoding/binary"
	"net"
	"sync"

	"filaments/internal/udptrans"
)

// Service-ID lanes.
//
// A udptrans endpoint owns one service table and one event handler, which
// was fine while an endpoint's lifetime was one program run. The service
// layer (internal/cluster) keeps endpoints alive across many runs — and
// runs several concurrently — so the kernel stacks of different runs must
// share an endpoint without colliding. A lane is the namespacing unit:
// run k's Transport registers kernel service id s as wire service
// k*LaneStride+s, and prefixes every one-way event with its lane so the
// EventMux can route it to the right run's handler chain. The kernel
// layers never see lanes; their ServiceIDs are lane-relative, exactly as
// before.

// LaneStride is the wire-service-id width of one lane. Kernel service ids
// (dsm 10–13, reduce 20, filament 30–33) all sit below it.
const LaneStride = 64

// MaxLanes bounds concurrent lanes per endpoint. Wire ids above
// MaxLanes*LaneStride are reserved for non-kernel services (the
// cluster-membership services live at 0xF000 and up).
const MaxLanes = 64

// EventMux owns an endpoint's event handler and transport hooks, routing
// lane-prefixed events (and per-service retransmit hooks) to the
// Transport attached on each lane. Create one per endpoint; transports
// attach and detach as runs come and go. An event for a detached lane is
// dropped — events are unreliable by contract, and a straggler from a
// finished run has no receiver by design.
type EventMux struct {
	ep *udptrans.Endpoint

	mu    sync.Mutex
	lanes map[uint16]*Transport
}

// NewEventMux wraps ep's event handler and hooks. It must be created
// before traffic flows, and at most once per endpoint.
func NewEventMux(ep *udptrans.Endpoint) *EventMux {
	m := &EventMux{ep: ep, lanes: make(map[uint16]*Transport)}
	ep.SetEventHandler(m.dispatch)
	ep.SetRetransmitHook(m.retransmit)
	ep.SetEventDropHook(m.eventDrop)
	return m
}

// Endpoint returns the wrapped endpoint.
func (m *EventMux) Endpoint() *udptrans.Endpoint { return m.ep }

func (m *EventMux) attach(lane uint16, tr *Transport) {
	m.mu.Lock()
	defer m.mu.Unlock()
	if _, dup := m.lanes[lane]; dup {
		panic("rtnode: lane already attached")
	}
	m.lanes[lane] = tr
}

func (m *EventMux) detach(lane uint16) {
	m.mu.Lock()
	defer m.mu.Unlock()
	delete(m.lanes, lane)
}

func (m *EventMux) lane(lane uint16) *Transport {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.lanes[lane]
}

// dispatch routes one event datagram: the uvarint lane prefix selects the
// transport, the rest is the kernel payload.
func (m *EventMux) dispatch(from *net.UDPAddr, b []byte) {
	lane, n := binary.Uvarint(b)
	if n <= 0 || lane >= MaxLanes {
		return // malformed or stray
	}
	if tr := m.lane(uint16(lane)); tr != nil {
		tr.handleEvent(from, b[n:])
	}
}

// retransmit routes a retransmission trace to the lane the wire service
// id belongs to; retransmits of non-lane services (membership) are not
// traced.
func (m *EventMux) retransmit(svc uint16, attempt int) {
	lane := svc / LaneStride
	if lane >= MaxLanes {
		return
	}
	if tr := m.lane(lane); tr != nil {
		tr.traceRetransmit(svc%LaneStride, attempt)
	}
}

// eventDrop fans the dropped-event trace to every attached transport: the
// endpoint cannot know which lane's event was shed, and the point of the
// instant is "a release may be delayed here", which is true for all of
// them.
func (m *EventMux) eventDrop() {
	m.mu.Lock()
	trs := make([]*Transport, 0, len(m.lanes))
	for _, tr := range m.lanes {
		trs = append(trs, tr)
	}
	m.mu.Unlock()
	for _, tr := range trs {
		tr.traceEventDrop()
	}
}
