package rtnode

import (
	"encoding/gob"
	"reflect"
	"sort"
	"sync"
)

// The wire-type registry.
//
// The real-time transport gob-encodes every payload as an interface
// value, and gob refuses to decode a concrete type it has not been told
// about — an omission the simulation binding, which passes payloads by
// reference, can never catch. Kernel-layer packages therefore declare
// their wire types here, from an init in the same package that sends
// them (the dflint gobreg analyzer checks exactly that pairing), and the
// registry's test round-trips everything declared so a type that gob
// cannot actually encode fails in CI rather than on the first real
// message.

var (
	wireMu    sync.Mutex
	wireTypes = make(map[reflect.Type]bool)
)

// RegisterWire registers each prototype's concrete type for gob transit
// inside an interface and records it for WireTypes. Prototypes are
// typically zero values: RegisterWire(pageReq{}, pageData{}).
func RegisterWire(protos ...any) {
	wireMu.Lock()
	defer wireMu.Unlock()
	for _, p := range protos {
		if p == nil {
			panic("rtnode.RegisterWire: nil prototype")
		}
		gob.Register(p)
		wireTypes[reflect.TypeOf(p)] = true
	}
}

// WireTypes returns every registered wire type, sorted by name.
func WireTypes() []reflect.Type {
	wireMu.Lock()
	defer wireMu.Unlock()
	out := make([]reflect.Type, 0, len(wireTypes))
	for t := range wireTypes {
		out = append(out, t)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].String() < out[j].String() })
	return out
}
