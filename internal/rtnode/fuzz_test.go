package rtnode_test

import (
	"bytes"
	"encoding/gob"
	"reflect"
	"testing"

	"filaments/internal/rtnode"
)

// fuzzPayload exercises the shapes kernel payloads actually use on the
// wire: a nested float64 matrix (page data, fork/join results), a raw
// byte slice, a string, and a scalar.
type fuzzPayload struct {
	Grid [][]float64
	Raw  []byte
	Name string
	N    int64
}

// fuzzEscape deliberately has no binary codec: it crosses the binary
// framing through the tagGob escape hatch, which must keep round-tripping
// so a codec migration can never strand a payload type.
type fuzzEscape struct {
	Label string
	Vals  []float64
}

func init() {
	rtnode.RegisterWire(fuzzPayload{}, fuzzEscape{})
	rtnode.RegisterWireCodec(fuzzPayload{}, rtnode.TagTestBase,
		func(e *rtnode.Enc, v any) {
			p := v.(fuzzPayload)
			e.Uvarint(uint64(len(p.Grid)))
			for _, row := range p.Grid {
				e.Uvarint(uint64(len(row)))
				for _, f := range row {
					e.F64(f)
				}
			}
			e.Bytes(p.Raw)
			e.String(p.Name)
			e.Varint(p.N)
		},
		func(d *rtnode.Dec) any {
			var p fuzzPayload
			n := d.Uvarint()
			if n > uint64(d.Remaining()) {
				d.Fail()
				return p
			}
			if n > 0 {
				p.Grid = make([][]float64, n)
				for i := range p.Grid {
					m := d.Uvarint()
					if m*8 > uint64(d.Remaining()) {
						d.Fail()
						return p
					}
					if m == 0 {
						continue
					}
					row := make([]float64, m)
					for j := range row {
						row[j] = d.F64()
					}
					p.Grid[i] = row
				}
			}
			p.Raw = d.Bytes()
			p.Name = d.String()
			p.N = d.Varint()
			return p
		})
}

// FuzzWireRoundTrip frames a payload under BOTH codecs the real-time
// transport supports — the legacy gob framing and the binary codec — and
// asserts each decodes to the original value, and that the two agree with
// each other (differential check: a divergence means one codec changed
// the payload). The seeds cover the edge shapes that have bitten gob
// users before (zero-length payloads, empty inner rows, negative and
// extreme scalars) and run on every plain `go test`, so CI exercises the
// corpus without a fuzzing engine.
//
// One asymmetry is inherent to gob and deliberately mirrored by the
// binary codec: neither distinguishes empty slices from nil, so the
// comparison normalizes zero-length slices on both sides. Kernel code
// must therefore never give nil-versus-empty a protocol meaning — a
// contract this fuzz target pins down.
func FuzzWireRoundTrip(f *testing.F) {
	f.Add(uint8(0), uint8(0), []byte{}, "", int64(0))
	f.Add(uint8(3), uint8(4), []byte{1, 2, 3, 4, 5}, "jacobi", int64(-1))
	f.Add(uint8(1), uint8(0), []byte{0xff}, "zero-length rows", int64(1)<<62)
	f.Add(uint8(16), uint8(16), []byte("page"), "full page", int64(4096))
	f.Fuzz(func(t *testing.T, rows, cols uint8, raw []byte, name string, n int64) {
		grid := make([][]float64, int(rows%32))
		for i := range grid {
			row := make([]float64, int(cols%32))
			for j := range row {
				var b byte
				if len(raw) > 0 {
					b = raw[(i*len(row)+j)%len(raw)]
				}
				row[j] = float64(int(b)-128) / 3
			}
			grid[i] = row
		}
		in := fuzzPayload{Grid: grid, Raw: raw, Name: name, N: n}
		want := normalize(in)

		// Leg 1: the legacy gob framing, exactly as CodecGob sends it.
		var buf bytes.Buffer
		var framed any = in
		if err := gob.NewEncoder(&buf).Encode(&framed); err != nil {
			t.Fatalf("gob encode: %v", err)
		}
		var out any
		if err := gob.NewDecoder(bytes.NewReader(buf.Bytes())).Decode(&out); err != nil {
			t.Fatalf("gob decode: %v", err)
		}
		gobGot, ok := out.(fuzzPayload)
		if !ok {
			t.Fatalf("gob round trip changed type: sent %T, got %T", in, out)
		}
		if !reflect.DeepEqual(normalize(gobGot), want) {
			t.Fatalf("gob round trip changed value:\n sent %#v\n got  %#v", in, gobGot)
		}

		// Leg 2: the binary codec, exactly as CodecBinary sends it.
		bout := rtnode.UnmarshalPayload(rtnode.MarshalPayload(in))
		binGot, ok := bout.(fuzzPayload)
		if !ok {
			t.Fatalf("binary round trip changed type: sent %T, got %T", in, bout)
		}
		if !reflect.DeepEqual(normalize(binGot), want) {
			t.Fatalf("binary round trip changed value:\n sent %#v\n got  %#v", in, binGot)
		}

		// Differential: both codecs must deliver the identical struct.
		if !reflect.DeepEqual(normalize(binGot), normalize(gobGot)) {
			t.Fatalf("codecs disagree:\n gob    %#v\n binary %#v", gobGot, binGot)
		}
	})
}

// TestGobEscapeHatch sends a type that has a gob registration but no
// binary codec through the binary framing: it must travel as a
// length-prefixed gob blob and come back intact.
func TestGobEscapeHatch(t *testing.T) {
	in := fuzzEscape{Label: "unregistered", Vals: []float64{1.5, -2.25, 0}}
	out := rtnode.UnmarshalPayload(rtnode.MarshalPayload(in))
	got, ok := out.(fuzzEscape)
	if !ok {
		t.Fatalf("escape hatch changed type: sent %T, got %T", in, out)
	}
	if !reflect.DeepEqual(got, in) {
		t.Fatalf("escape hatch changed value:\n sent %#v\n got  %#v", in, got)
	}
}

// TestNilPayloadFraming pins the framing conventions around nil: a nil
// payload is zero bytes on the wire, and decodes back to nil.
func TestNilPayloadFraming(t *testing.T) {
	if b := rtnode.MarshalPayload(nil); len(b) != 0 {
		t.Fatalf("nil payload framed as %d bytes, want 0", len(b))
	}
	if v := rtnode.UnmarshalPayload(nil); v != nil {
		t.Fatalf("empty payload decoded to %#v, want nil", v)
	}
}

// normalize maps zero-length slices to nil at every level, since both
// codecs erase that distinction.
func normalize(p fuzzPayload) fuzzPayload {
	if len(p.Raw) == 0 {
		p.Raw = nil
	}
	if len(p.Grid) == 0 {
		p.Grid = nil
	}
	for i, row := range p.Grid {
		if len(row) == 0 {
			p.Grid[i] = nil
		}
	}
	return p
}
