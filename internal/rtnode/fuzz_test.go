package rtnode_test

import (
	"bytes"
	"encoding/gob"
	"reflect"
	"testing"

	"filaments/internal/rtnode"
)

// fuzzPayload exercises the shapes kernel payloads actually use on the
// wire: a nested float64 matrix (page data, fork/join results), a raw
// byte slice, a string, and a scalar.
type fuzzPayload struct {
	Grid [][]float64
	Raw  []byte
	Name string
	N    int64
}

func init() {
	rtnode.RegisterWire(fuzzPayload{})
}

// FuzzWireRoundTrip frames a payload exactly as the real-time transport
// does — gob-encoded as an interface value after rtnode.RegisterWire —
// and asserts the decode returns the same value. The seeds cover the
// edge shapes that have bitten gob users before (zero-length payloads,
// empty inner rows, negative and extreme scalars) and run on every plain
// `go test`, so CI exercises the corpus without a fuzzing engine.
//
// One asymmetry is inherent to gob and deliberately accepted: it does
// not distinguish empty slices from nil, so the comparison normalizes
// zero-length slices on both sides. Kernel code must therefore never
// give nil-versus-empty a protocol meaning — a contract this fuzz target
// pins down.
func FuzzWireRoundTrip(f *testing.F) {
	f.Add(uint8(0), uint8(0), []byte{}, "", int64(0))
	f.Add(uint8(3), uint8(4), []byte{1, 2, 3, 4, 5}, "jacobi", int64(-1))
	f.Add(uint8(1), uint8(0), []byte{0xff}, "zero-length rows", int64(1)<<62)
	f.Add(uint8(16), uint8(16), []byte("page"), "full page", int64(4096))
	f.Fuzz(func(t *testing.T, rows, cols uint8, raw []byte, name string, n int64) {
		grid := make([][]float64, int(rows%32))
		for i := range grid {
			row := make([]float64, int(cols%32))
			for j := range row {
				var b byte
				if len(raw) > 0 {
					b = raw[(i*len(row)+j)%len(raw)]
				}
				row[j] = float64(int(b)-128) / 3
			}
			grid[i] = row
		}
		in := fuzzPayload{Grid: grid, Raw: raw, Name: name, N: n}

		var buf bytes.Buffer
		var framed any = in
		if err := gob.NewEncoder(&buf).Encode(&framed); err != nil {
			t.Fatalf("encode: %v", err)
		}
		var out any
		if err := gob.NewDecoder(bytes.NewReader(buf.Bytes())).Decode(&out); err != nil {
			t.Fatalf("decode: %v", err)
		}
		got, ok := out.(fuzzPayload)
		if !ok {
			t.Fatalf("round trip changed type: sent %T, got %T", in, out)
		}
		if !reflect.DeepEqual(normalize(got), normalize(in)) {
			t.Fatalf("round trip changed value:\n sent %#v\n got  %#v", in, got)
		}
	})
}

// normalize maps zero-length slices to nil at every level, since gob
// erases that distinction.
func normalize(p fuzzPayload) fuzzPayload {
	if len(p.Raw) == 0 {
		p.Raw = nil
	}
	if len(p.Grid) == 0 {
		p.Grid = nil
	}
	for i, row := range p.Grid {
		if len(row) == 0 {
			p.Grid[i] = nil
		}
	}
	return p
}
