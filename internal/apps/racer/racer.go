// Package racer is a deliberately broken DF program: cmd/dfcheck's
// self-test (and the dflint analyzer fixtures mirroring it) must detect
// every bug seeded here. It is not an experiment from the paper.
//
// The dynamic bug: after a barrier, node 0 rewrites a shared array in the
// same phase in which node 1 reads it — no barrier, reduction, or
// fork/join edge orders the two, so whichever interleaving the scheduler
// picks, the accesses race. Under write-invalidate (the default here) the
// reader works from a cached read-only copy, so the race is also a real
// stale-value hazard; under migratory every conflicting pair is ordered
// by the page's ownership transfer, which is why the checker documents
// migratory races as undetectable by construction.
//
// The static bugs, one per dflint analyzer seeded below with documented
// allow hatches: a filament body that indexes shared memory through a
// captured loop-shared variable (sharedrange), a filament closure
// capturing an assigned loop variable (loopcapture), and a DSM write
// distributed to filaments without an intervening barrier (barrierphase).
package racer

import (
	"filaments"
)

// Words is the length of the shared array the racing phase touches.
const Words = 64

// Config parameterizes a run.
type Config struct {
	// Nodes is the cluster size (>= 2 for the race to exist).
	Nodes int
	// Protocol defaults to write-invalidate; the seeded race is invisible
	// under migratory (see the package comment).
	Protocol filaments.Protocol
	// OverlapWriters replaces phase 1's write/read race with a
	// write/write race: nodes 0 and 1 both write every word of the shared
	// array in the same interval. Under lazy release consistency this is
	// exactly the program class the protocol does NOT promise anything
	// for — two twinned writers flush overlapping diffs and the home's
	// merge order picks a winner — so dfcheck must flag it.
	OverlapWriters bool
	// Seed for the simulation.
	Seed int64
	// Monitor, when non-nil, observes the run (the cmd/dfcheck seam).
	Monitor filaments.Monitor
	// MirageWindow overrides the Mirage anti-thrashing window: 0 keeps
	// the model default, negative disables it.
	MirageWindow filaments.Duration
	// Tracer, when non-nil, records kernel trace events.
	Tracer *filaments.Tracer
}

func (c *Config) defaults() {
	if c.Nodes == 0 {
		c.Nodes = 2
	}
	if c.Protocol == filaments.Migratory {
		c.Protocol = filaments.WriteInvalidate
	}
}

// DF runs the seeded-race program and returns the run report and the sum
// node 1 read during the racing phase (its value depends on the
// interleaving — that is the point).
func DF(cfg Config) (*filaments.Report, float64, *filaments.Cluster) {
	cfg.defaults()
	cl := filaments.New(filaments.Config{
		Nodes:        cfg.Nodes,
		Seed:         cfg.Seed,
		Protocol:     cfg.Protocol,
		Tracer:       cfg.Tracer,
		Monitor:      cfg.Monitor,
		MirageWindow: cfg.MirageWindow,
	})
	data := cl.AllocOwned(Words*8, 0)
	var racySum float64
	rep, err := cl.Run(func(rt *filaments.Runtime, e *filaments.Exec) {
		me := rt.ID()
		d := rt.DSM()
		e.Barrier()
		if cfg.OverlapWriters {
			// Phase 1, write/write variant: both nodes write every word in
			// the same interval. The home's diff-merge order decides each
			// word under lazy release consistency — a real lost-update bug.
			if me <= 1 {
				for i := 0; i < Words; i++ {
					d.WriteF64(e.Thread(), data+filaments.Addr(i*8), float64(me*1000+i))
				}
			}
		} else {
			// Phase 1 — the seeded data race: node 0 writes the array while
			// node 1 sums it, with no synchronization between them.
			if me == 1 {
				for i := 0; i < Words; i++ {
					racySum += e.ReadF64(data + filaments.Addr(i*8))
				}
			}
			if me == 0 {
				for i := 0; i < Words; i++ {
					d.WriteF64(e.Thread(), data+filaments.Addr(i*8), float64(i))
				}
			}
		}
		e.Barrier()
		// Phase 2 — the seeded static bugs, run by node 0 only, after a
		// barrier so they add no further dynamic races.
		if me == 0 {
			// sharedrange: the filament body indexes shared memory through
			// a captured plain int that every filament instance shares,
			// instead of deriving the index from its Args record.
			base := 4
			body := func(e *filaments.Exec, a filaments.Args) {
				_ = e.ReadF64(data + filaments.Addr(base*8)) //dflint:allow sharedrange seeded bug: captured index, dfcheck self-test
			}
			pool := rt.NewPool("seeded")
			pool.Add(e, body, filaments.Args{})
			// loopcapture: i is assigned, not declared, by the for
			// statement, so every closure added to the pool shares the
			// loop's final value.
			var i int
			for i = 0; i < 4; i++ {
				pool.Add(e, func(e *filaments.Exec, a filaments.Args) { //dflint:allow loopcapture seeded bug: assigned loop variable, dfcheck self-test
					_ = e.ReadF64(data + filaments.Addr(i%Words)*8) //dflint:allow sharedrange seeded bug: captured index, dfcheck self-test
				}, filaments.Args{})
			}
			// barrierphase: a DSM write followed by pool distribution with
			// no barrier between the write and the filaments that read it.
			d.WriteF64(e.Thread(), data, 1)
			rt.RunPools(e) //dflint:allow barrierphase seeded bug: write distributed without barrier, dfcheck self-test
		}
		e.Barrier()
	})
	if err != nil {
		panic(err)
	}
	return rep, racySum, cl
}
