// Package mergesort implements parallel merge sort with fork/join
// filaments over the DSM — one of the balanced recursive applications the
// paper names in §2.3 ("evaluating balanced binary expression trees, merge
// sort, or recursive FFT") when arguing that dynamic load balancing does
// not pay for well-balanced trees.
//
// The array lives in shared memory under the migratory protocol; each
// filament sorts a contiguous range, so page groups of the range migrate
// to the executing node once and stay for the whole leaf sort.
package mergesort

import (
	"sort"

	"filaments"
	"filaments/internal/dsm"
)

// Config parameterizes a run.
type Config struct {
	// N is the element count (default 1 << 15).
	N int
	// Leaf is the sequential-sort threshold (default 2048 elements).
	Leaf int
	// Nodes is the cluster size.
	Nodes int
	// Stealing enables dynamic load balancing (off by default: the tree
	// is balanced).
	Stealing bool
	// Protocol for the DF variant; the zero value is migratory, the app
	// default (each filament sorts a contiguous range, so its page groups
	// migrate once and stay for the whole leaf sort).
	Protocol filaments.Protocol
	// Seed for both the simulation and the input permutation.
	Seed int64
	// Tracer, when non-nil, records kernel trace events from the DF
	// variant.
	Tracer *filaments.Tracer
	// Monitor, when non-nil, observes the DF variant's DSM accesses and
	// synchronization events (the cmd/dfcheck seam).
	Monitor filaments.Monitor
	// MirageWindow overrides the Mirage anti-thrashing window in the DF
	// variant: 0 keeps the model default, negative disables it.
	MirageWindow filaments.Duration
}

func (c *Config) defaults() {
	if c.N == 0 {
		c.N = 1 << 15
	}
	if c.Leaf == 0 {
		c.Leaf = 2048
	}
	if c.Nodes == 0 {
		c.Nodes = 1
	}
	if c.Seed == 0 {
		c.Seed = 1
	}
}

// Virtual costs per element on the paper's hardware, modelling records
// with a nontrivial comparison (sorting is famously merge-bound: the top
// merges are serial, so cheap comparisons would leave the program
// network-dominated on a 10 Mbps cluster).
const (
	leafCostPerElem  = 45 * filaments.Microsecond // ~log(leaf) compares
	mergeCostPerElem = 6 * filaments.Microsecond
)

// input produces the deterministic unsorted input.
func input(n int, seed int64) []float64 {
	// xorshift-style generator, self-contained and stable.
	x := uint64(seed)*2685821657736338717 + 1442695040888963407
	out := make([]float64, n)
	for i := range out {
		x ^= x << 13
		x ^= x >> 7
		x ^= x << 17
		out[i] = float64(x % 1000003)
	}
	return out
}

// Reference sorts in plain Go.
func Reference(cfg Config) []float64 {
	cfg.defaults()
	v := input(cfg.N, cfg.Seed)
	sort.Float64s(v)
	return v
}

// Sequential runs the distinct single-node program: the same recursion,
// locally.
func Sequential(cfg Config) (*filaments.Report, []float64) {
	cfg.defaults()
	var out []float64
	c := filaments.New(filaments.Config{Nodes: 1, Seed: cfg.Seed})
	rep, err := c.Run(func(rt *filaments.Runtime, e *filaments.Exec) {
		v := input(cfg.N, cfg.Seed)
		scratch := make([]float64, cfg.N)
		var rec func(lo, hi int)
		rec = func(lo, hi int) {
			if hi-lo <= cfg.Leaf {
				sort.Float64s(v[lo:hi])
				e.Compute(filaments.Duration(hi-lo) * leafCostPerElem)
				return
			}
			mid := (lo + hi) / 2
			rec(lo, mid)
			rec(mid, hi)
			mergeLocal(v, scratch, lo, mid, hi)
			e.Compute(filaments.Duration(hi-lo) * mergeCostPerElem)
		}
		rec(0, cfg.N)
		out = v
	})
	if err != nil {
		panic(err)
	}
	return rep, out
}

func mergeLocal(v, scratch []float64, lo, mid, hi int) {
	i, j, k := lo, mid, lo
	for i < mid && j < hi {
		if v[i] <= v[j] {
			scratch[k] = v[i]
			i++
		} else {
			scratch[k] = v[j]
			j++
		}
		k++
	}
	copy(scratch[k:], v[i:mid])
	copy(scratch[k+mid-i:], v[j:hi])
	copy(v[lo:hi], scratch[lo:hi])
}

const fnSort = 1

// DF runs the fork/join Filaments program over the DSM.
func DF(cfg Config) (*filaments.Report, []float64, *filaments.Cluster) {
	cfg.defaults()
	cl := filaments.New(filaments.Config{
		Nodes:        cfg.Nodes,
		Seed:         cfg.Seed,
		Protocol:     cfg.Protocol,
		Stealing:     cfg.Stealing,
		WakeFront:    true,
		Tracer:       cfg.Tracer,
		Monitor:      cfg.Monitor,
		MirageWindow: cfg.MirageWindow,
	})
	// The array as page groups of one leaf each, so a leaf sort moves its
	// data in one request.
	groupPages := (cfg.Leaf*8 + dsm.PageSize - 1) / dsm.PageSize
	base := cl.Space().Alloc(int64(cfg.N)*8, dsm.AllocOpts{Owner: 0, GroupPages: groupPages})
	at := func(i int) filaments.Addr { return base + filaments.Addr(i*8) }

	rep, err := cl.Run(func(rt *filaments.Runtime, e *filaments.Exec) {
		if rt.ID() == 0 {
			for i, x := range input(cfg.N, cfg.Seed) {
				e.WriteF64(at(i), x)
			}
		}
		var body filaments.FJFunc
		body = func(e *filaments.Exec, a filaments.Args) float64 {
			lo, hi := int(a[0]), int(a[1])
			if hi-lo <= cfg.Leaf {
				// Pull the range, sort locally, write back.
				buf := make([]float64, hi-lo)
				for i := range buf {
					buf[i] = e.ReadF64(at(lo + i))
				}
				sort.Float64s(buf)
				for i, x := range buf {
					e.WriteF64(at(lo+i), x)
				}
				e.Compute(filaments.Duration(hi-lo) * leafCostPerElem)
				return 0
			}
			mid := (lo + hi) / 2
			rtl := e.Runtime()
			j := rtl.NewJoin()
			rtl.Fork(e, j, fnSort, filaments.Args{int64(lo), int64(mid)})
			rtl.Fork(e, j, fnSort, filaments.Args{int64(mid), int64(hi)})
			j.Wait(e)
			// Merge the two sorted runs through this node.
			merged := make([]float64, hi-lo)
			i, jj := lo, mid
			for k := range merged {
				switch {
				case i >= mid:
					merged[k] = e.ReadF64(at(jj))
					jj++
				case jj >= hi:
					merged[k] = e.ReadF64(at(i))
					i++
				default:
					l, r := e.ReadF64(at(i)), e.ReadF64(at(jj))
					if l <= r {
						merged[k] = l
						i++
					} else {
						merged[k] = r
						jj++
					}
				}
			}
			for k, x := range merged {
				e.WriteF64(at(lo+k), x)
			}
			e.Compute(filaments.Duration(hi-lo) * mergeCostPerElem)
			return 0
		}
		rt.RegisterFJ(fnSort, body)
		e.Barrier()
		rt.RunForkJoin(e, fnSort, filaments.Args{0, int64(cfg.N)})
	})
	if err != nil {
		panic(err)
	}
	out := make([]float64, cfg.N)
	for i := range out {
		out[i] = cl.PeekF64(at(i))
	}
	return rep, out, cl
}
