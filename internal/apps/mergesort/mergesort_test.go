package mergesort

import (
	"sort"
	"testing"
	"testing/quick"
)

func equal(a, b []float64) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

func TestSequentialMatchesReference(t *testing.T) {
	cfg := Config{N: 4096, Leaf: 256}
	_, got := Sequential(cfg)
	if !equal(got, Reference(cfg)) {
		t.Fatal("sequential sort wrong")
	}
}

func TestDFCorrect(t *testing.T) {
	cfg := Config{N: 4096, Leaf: 256}
	want := Reference(cfg)
	for _, p := range []int{1, 2, 4} {
		cfg.Nodes = p
		_, got, _ := DF(cfg)
		if !equal(got, want) {
			t.Fatalf("p=%d: sort wrong", p)
		}
	}
}

func TestDFWithStealing(t *testing.T) {
	cfg := Config{N: 4096, Leaf: 256, Nodes: 4, Stealing: true}
	if _, got, _ := DF(cfg); !equal(got, Reference(cfg)) {
		t.Fatal("sort wrong with stealing")
	}
}

// Property: any (size, leaf, seed) combination sorts correctly on 2 nodes.
func TestDFSortProperty(t *testing.T) {
	f := func(n uint16, leafShift uint8, seed int64) bool {
		size := 512 + int(n)%3584
		leaf := 64 << (leafShift % 3)
		cfg := Config{N: size, Leaf: leaf, Nodes: 2, Seed: seed%1000 + 1}
		_, got, _ := DF(cfg)
		if !sort.Float64sAreSorted(got) {
			return false
		}
		return equal(got, Reference(cfg))
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 10}); err != nil {
		t.Fatal(err)
	}
}

func TestSpeedup(t *testing.T) {
	if testing.Short() {
		t.Skip("timing test")
	}
	cfg := Config{}
	seq, _ := Sequential(cfg)
	cfg.Nodes = 4
	df, _, _ := DF(cfg)
	s := seq.Seconds() / df.Seconds()
	if s < 1.5 {
		t.Fatalf("speedup on 4 nodes = %.2f", s)
	}
}
