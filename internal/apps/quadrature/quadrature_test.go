package quadrature

import (
	"math"
	"testing"
)

func TestVariantsAgreeOnArea(t *testing.T) {
	cfg := Config{Tol: 1e-3} // coarse: fast tests
	want, evals := Reference(cfg)
	if evals == 0 || math.IsNaN(want) {
		t.Fatal("reference produced nothing")
	}
	_, seq := Sequential(cfg)
	if seq != want {
		t.Fatalf("sequential area %v != reference %v", seq, want)
	}
	for _, p := range []int{2, 4} {
		cfg.Nodes = p
		if _, cg := CoarseGrain(cfg); math.Abs(cg-want) > 1e-9*math.Abs(want) {
			t.Fatalf("p=%d CG area %v != %v", p, cg, want)
		}
		if _, df, _ := DF(cfg); math.Abs(df-want) > 1e-9*math.Abs(want) {
			t.Fatalf("p=%d DF area %v != %v", p, df, want)
		}
		if _, bag := BagOfTasks(cfg, 64); math.Abs(bag-want) > 1e-9*math.Abs(want) {
			t.Fatalf("p=%d bag area %v != %v", p, bag, want)
		}
	}
}

// The engineered integrand concentrates work at the interval's ends, so
// static decomposition cannot beat ~2x no matter how many nodes.
func TestCGImbalancePlateau(t *testing.T) {
	if testing.Short() {
		t.Skip("timing test")
	}
	cfg := Config{Tol: 1e-4}
	seq, _ := Sequential(cfg)
	cfg.Nodes = 8
	cg8, _ := CoarseGrain(cfg)
	s := seq.Seconds() / cg8.Seconds()
	if s > 2.2 {
		t.Fatalf("CG-8 speedup %.2f; the workload should cap it near 1.7", s)
	}
}

// DF with dynamic load balancing must beat the static CG decomposition
// decisively on 4+ nodes (the paper: 59.0s vs 133s on 4 nodes).
func TestDFBeatsCG(t *testing.T) {
	if testing.Short() {
		t.Skip("timing test")
	}
	cfg := Config{Tol: 1e-4, Nodes: 4}
	cg, _ := CoarseGrain(cfg)
	df, _, _ := DF(cfg)
	if df.Seconds() > cg.Seconds()*0.7 {
		t.Fatalf("DF %.1fs vs CG %.1fs: dynamic balancing should win big",
			df.Seconds(), cg.Seconds())
	}
}

// Bag-of-tasks balances better than static CG but with worse absolute time
// than DF (paper §4.3).
func TestBagOfTasksTradeoff(t *testing.T) {
	if testing.Short() {
		t.Skip("timing test")
	}
	cfg := Config{Tol: 1e-4, Nodes: 8}
	cg, _ := CoarseGrain(cfg)
	bag, _ := BagOfTasks(cfg, 256)
	df, _, _ := DF(cfg)
	if bag.Seconds() >= cg.Seconds() {
		t.Fatalf("bag %.1fs should beat static CG %.1fs", bag.Seconds(), cg.Seconds())
	}
	if df.Seconds() >= bag.Seconds() {
		t.Fatalf("DF %.1fs should beat the centralized bag %.1fs", df.Seconds(), bag.Seconds())
	}
}

func TestStealingHappensInDF(t *testing.T) {
	cfg := Config{Tol: 1e-4, Nodes: 4}
	_, _, cl := DF(cfg)
	var granted int64
	for i := 0; i < 4; i++ {
		granted += cl.Runtime(i).Stats().StealsGranted
	}
	if granted == 0 {
		t.Fatal("no steals on a workload engineered for imbalance")
	}
}
