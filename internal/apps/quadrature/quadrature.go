// Package quadrature implements the paper's adaptive quadrature experiment
// (§4.3, Figure 6): integrating a function over an interval by recursive
// bisection until the trapezoid and Simpson estimates agree.
//
// The integrand has sharp features near both ends of the interval, so the
// recursion is much deeper there — the workload imbalance the paper
// engineered. The coarse-grain program splits the interval statically into
// p pieces and suffers that imbalance badly; a bag-of-tasks variant
// balances well but pays a centralized-bag price; the DF fork/join program
// with receiver-initiated load balancing gets both locality and balance.
package quadrature

import (
	"math"

	"filaments"
	"filaments/internal/cost"
	"filaments/internal/msg"
	"filaments/internal/rtnode"
	"filaments/internal/simnet"
)

// interval is the bag-of-tasks work unit: one subinterval, or the Done
// sentinel that retires a slave.
type interval struct {
	A, B float64
	Done bool
}

// The real-time binding serializes payloads with gob; the CG programs'
// payloads cross the wire inside msg's envelope.
func init() {
	rtnode.RegisterWire(interval{})
}

// Config parameterizes a run.
type Config struct {
	// A, B is the interval; the paper integrates an interval of length 24.
	A, B float64
	// Tol is the relative tolerance driving recursion depth.
	Tol float64
	// Nodes is the cluster size.
	Nodes int
	// MaxDepth caps recursion (safety net; the tolerance terminates first).
	MaxDepth int
	// Seed for the simulation.
	Seed int64
	// Protocol for the DF variants. The program never touches the DSM, so
	// this only matters to harnesses (cmd/dfcheck) that sweep protocols.
	Protocol filaments.Protocol
	// Tracer, when non-nil, records kernel trace events from the DF
	// variants (sim and UDP).
	Tracer *filaments.Tracer
	// Monitor, when non-nil, observes the DF variants' DSM accesses and
	// synchronization events (the cmd/dfcheck seam).
	Monitor filaments.Monitor
	// MirageWindow overrides the Mirage anti-thrashing window in the DF
	// variants: 0 keeps the model default, negative disables it.
	MirageWindow filaments.Duration
	// Tuning collects the wall-clock wire-path knobs for the UDP variants
	// (codec, page diffs, event batching); ignored by the simulation.
	Tuning filaments.UDPTuning
}

func (c *Config) defaults() {
	if c.B == 0 && c.A == 0 {
		c.B = 24
	}
	if c.Tol == 0 {
		c.Tol = 1e-5
	}
	if c.Nodes == 0 {
		c.Nodes = 1
	}
	if c.MaxDepth == 0 {
		c.MaxDepth = 40
	}
}

// f is the integrand: smooth background plus near-singular needles by both
// endpoints, which concentrate the adaptive work in the extreme
// subintervals (paper: "the two nodes evaluating the extreme intervals
// initially contain most of the work").
// The weights are tuned so the work distribution over eighths of [0,24]
// matches the coarse-grain speedups in Figure 6: roughly 59% of the
// evaluations in the rightmost eighth, 35% in the leftmost, and the
// remainder spread thin — which caps static p-way decomposition at
// speedup ≈ 1.5–1.7 no matter how large p grows.
func f(x float64) float64 {
	return math.Sin(x) + 2 +
		0.006/((x-0.05)*(x-0.05)+3e-5) +
		0.012/((x-23.95)*(x-23.95)+2e-5)
}

// evalCost is the virtual time of one integrand evaluation.
const evalCost = cost.QuadEvalCost

// area integrates [a,b] adaptively, charging eval costs to e (nil e means
// plain Go, for Reference). fa, fb, fm are f(a), f(b), f((a+b)/2).
// Returns the area and the number of evaluations performed.
type evaluator struct {
	e     *filaments.Exec
	evals int64
	tol   float64
	whole float64
}

func (ev *evaluator) f(x float64) float64 {
	ev.evals++
	if ev.e != nil {
		ev.e.Compute(evalCost)
	}
	return f(x)
}

// serial integrates [a,b] without forking.
func (ev *evaluator) serial(a, b, fa, fb, fm float64, depth int) float64 {
	m := (a + b) / 2
	lm := ev.f((a + m) / 2)
	rm := ev.f((m + b) / 2)
	trap := (b - a) * (fa + fb) / 2
	simp := (b - a) * (fa + 4*lm + 2*fm + 4*rm + fb) / 12
	if depth <= 0 || math.Abs(simp-trap) < ev.tol*(b-a)/ev.whole {
		return simp
	}
	return ev.serial(a, m, fa, fm, lm, depth-1) + ev.serial(m, b, fm, fb, rm, depth-1)
}

// Reference integrates in plain Go and returns (area, evaluations).
func Reference(cfg Config) (float64, int64) {
	cfg.defaults()
	ev := &evaluator{tol: cfg.Tol, whole: cfg.B - cfg.A}
	fa, fb := ev.f(cfg.A), ev.f(cfg.B)
	fm := ev.f((cfg.A + cfg.B) / 2)
	return ev.serial(cfg.A, cfg.B, fa, fb, fm, cfg.MaxDepth), ev.evals
}

// Sequential runs the distinct single-node program.
func Sequential(cfg Config) (*filaments.Report, float64) {
	cfg.defaults()
	var out float64
	c := filaments.New(filaments.Config{Nodes: 1, Seed: cfg.Seed})
	rep, err := c.Run(func(rt *filaments.Runtime, e *filaments.Exec) {
		ev := &evaluator{e: e, tol: cfg.Tol, whole: cfg.B - cfg.A}
		fa, fb := ev.f(cfg.A), ev.f(cfg.B)
		fm := ev.f((cfg.A + cfg.B) / 2)
		out = ev.serial(cfg.A, cfg.B, fa, fb, fm, cfg.MaxDepth)
	})
	if err != nil {
		panic(err)
	}
	return rep, out
}

// CoarseGrain statically assigns one of p equal subintervals to each node
// — the paper's load-imbalanced baseline.
func CoarseGrain(cfg Config) (*filaments.Report, float64) {
	cfg.defaults()
	p := cfg.Nodes
	if p == 1 {
		return Sequential(cfg)
	}
	var out float64
	cl := filaments.New(filaments.Config{Nodes: p, Seed: cfg.Seed})
	rep, err := cl.Run(func(rt *filaments.Runtime, e *filaments.Exec) {
		me := rt.ID()
		w := (cfg.B - cfg.A) / float64(p)
		a := cfg.A + float64(me)*w
		b := a + w
		if me == p-1 {
			b = cfg.B
		}
		ev := &evaluator{e: e, tol: cfg.Tol, whole: cfg.B - cfg.A}
		fa, fb := ev.f(a), ev.f(b)
		fm := ev.f((a + b) / 2)
		part := ev.serial(a, b, fa, fb, fm, cfg.MaxDepth)
		total := e.Reduce(part, filaments.Sum)
		if me == 0 {
			out = total
		}
	})
	if err != nil {
		panic(err)
	}
	return rep, out
}

// BagOfTasks is the paper's second coarse-grain variant: the master holds
// a bag of small fixed subintervals; slaves repeatedly fetch one, solve it
// adaptively, and return the area. Balance is good but every task costs a
// round trip to the centralized bag.
func BagOfTasks(cfg Config, tasks int) (*filaments.Report, float64) {
	cfg.defaults()
	p := cfg.Nodes
	if tasks == 0 {
		tasks = 512
	}
	var out float64
	cl := filaments.New(filaments.Config{Nodes: p, Seed: cfg.Seed})
	const (
		tagGet = iota
		tagWork
		tagResult
	)
	rep, err := cl.Run(func(rt *filaments.Runtime, e *filaments.Exec) {
		me := rt.ID()
		mx := msg.New(rt.Node(), rt.Endpoint())
		if me == 0 {
			// Master: serve the bag, collect areas.
			w := (cfg.B - cfg.A) / float64(tasks)
			next := 0
			var sum float64
			finished := 0
			for finished < p-1 {
				src, _ := mx.RecvAny(e.Thread(), tagGet)
				if next < tasks {
					a := cfg.A + float64(next)*w
					b := a + w
					if next == tasks-1 {
						b = cfg.B
					}
					next++
					mx.Send(src, tagWork, interval{A: a, B: b}, 20)
				} else {
					mx.Send(src, tagWork, interval{Done: true}, 20)
					finished++
				}
			}
			for k := 1; k < p; k++ {
				sum += mx.Recv(e.Thread(), simnet.NodeID(k), tagResult).(float64)
			}
			out = sum
		} else {
			ev := &evaluator{e: e, tol: cfg.Tol, whole: cfg.B - cfg.A}
			var sum float64
			for {
				mx.Send(0, tagGet, me, 20)
				iv := mx.Recv(e.Thread(), 0, tagWork).(interval)
				if iv.Done {
					break
				}
				fa, fb := ev.f(iv.A), ev.f(iv.B)
				fm := ev.f((iv.A + iv.B) / 2)
				sum += ev.serial(iv.A, iv.B, fa, fb, fm, cfg.MaxDepth)
			}
			mx.Send(0, tagResult, sum, 20)
		}
	})
	if err != nil {
		panic(err)
	}
	return rep, out
}

const fnQuad = 1

// DF runs the fork/join Filaments program with dynamic load balancing. All
// information travels in the filament arguments (the paper notes this
// program does not use the DSM).
func DF(cfg Config) (*filaments.Report, float64, *filaments.Cluster) {
	rep, area, cl := dfRun(cfg, true)
	return rep, area, cl
}

// DFWithStealing runs the DF program with load balancing explicitly on or
// off (the paper's programmer-controllable switch), for ablation.
func DFWithStealing(cfg Config, stealing bool) (*filaments.Report, float64) {
	rep, area, _ := dfRun(cfg, stealing)
	return rep, area
}

func dfRun(cfg Config, stealing bool) (*filaments.Report, float64, *filaments.Cluster) {
	cfg.defaults()
	cl := filaments.New(filaments.Config{
		Nodes:        cfg.Nodes,
		Seed:         cfg.Seed,
		Protocol:     cfg.Protocol,
		Stealing:     stealing,
		WakeFront:    true,
		Tracer:       cfg.Tracer,
		Monitor:      cfg.Monitor,
		MirageWindow: cfg.MirageWindow,
	})
	var out float64
	rep, err := cl.Run(dfProgram(cfg, &out))
	if err != nil {
		panic(err)
	}
	return rep, out, cl
}

// DFUDP runs the same fork/join program on the single-process real-time
// cluster: goroutine nodes with UDP endpoints on loopback. Steal-race
// timing makes the summation order nondeterministic, so the area agrees
// with Reference only to rounding (callers compare within a tolerance).
func DFUDP(cfg Config, stealing bool) (*filaments.UDPReport, float64, error) {
	cfg.defaults()
	cl, err := filaments.NewUDPCluster(filaments.UDPConfig{
		Nodes:        cfg.Nodes,
		Protocol:     cfg.Protocol,
		Stealing:     stealing,
		WakeFront:    true,
		Tracer:       cfg.Tracer,
		Monitor:      cfg.Monitor,
		MirageWindow: cfg.MirageWindow,
		Tuning:       cfg.Tuning,
	})
	if err != nil {
		return nil, 0, err
	}
	var out float64
	rep, err := cl.Run(dfProgram(cfg, &out))
	if err != nil {
		return nil, 0, err
	}
	return rep, out, nil
}

// DFOn runs the fork/join program as one job on a live service cluster's
// run (internal/cluster/daemon submits jobs here). Stealing and
// WakeFront were fixed when the run was started; cfg supplies the
// integrand shape. As under DFUDP, steal-race timing makes the summation
// order nondeterministic, so the area agrees with Reference only to
// rounding.
func DFOn(cfg Config, run *filaments.UDPRun) (*filaments.UDPReport, float64, error) {
	cfg.Nodes = run.Nodes()
	cfg.defaults()
	var out float64
	rep, err := run.Run(dfProgram(cfg, &out))
	if err != nil {
		return rep, 0, err
	}
	return rep, out, nil
}

// dfProgram is the DF node program shared by every binding: the simulated
// cluster and the real-time UDP cluster run exactly this code. cfg must
// already be defaulted; *out receives the area on node 0.
func dfProgram(cfg Config, out *float64) filaments.Program {
	bits := func(x float64) int64 { return int64(math.Float64bits(x)) }
	val := func(b int64) float64 { return math.Float64frombits(uint64(b)) }
	return func(rt *filaments.Runtime, e *filaments.Exec) {
		// Filament arguments carry the interval and the already-computed
		// endpoint/midpoint values — "all the information is contained in
		// the function parameters" — so the eval count matches the serial
		// recursion exactly.
		quad := func(e *filaments.Exec, a filaments.Args) float64 {
			lo, hi := val(a[0]), val(a[1])
			fa, fb, fm := val(a[2]), val(a[3]), val(a[4])
			depth := int(a[5])
			ev := &evaluator{e: e, tol: cfg.Tol, whole: cfg.B - cfg.A}
			m := (lo + hi) / 2
			lm := ev.f((lo + m) / 2)
			rm := ev.f((m + hi) / 2)
			trap := (hi - lo) * (fa + fb) / 2
			simp := (hi - lo) * (fa + 4*lm + 2*fm + 4*rm + fb) / 12
			if depth <= 0 || math.Abs(simp-trap) < ev.tol*(hi-lo)/ev.whole {
				return simp
			}
			rtl := e.Runtime()
			j := rtl.NewJoin()
			rtl.Fork(e, j, fnQuad, filaments.Args{
				bits(lo), bits(m), bits(fa), bits(fm), bits(lm), int64(depth - 1),
			})
			rtl.Fork(e, j, fnQuad, filaments.Args{
				bits(m), bits(hi), bits(fm), bits(fb), bits(rm), int64(depth - 1),
			})
			return j.Wait(e)
		}
		rt.RegisterFJ(fnQuad, quad)
		ev := &evaluator{e: e, tol: cfg.Tol, whole: cfg.B - cfg.A}
		var root filaments.Args
		if rt.ID() == 0 {
			fa, fb := ev.f(cfg.A), ev.f(cfg.B)
			fm := ev.f((cfg.A + cfg.B) / 2)
			root = filaments.Args{
				bits(cfg.A), bits(cfg.B), bits(fa), bits(fb), bits(fm), int64(cfg.MaxDepth),
			}
		}
		v := rt.RunForkJoin(e, fnQuad, root)
		if rt.ID() == 0 {
			*out = v
		}
	}
}
