package quadrature

import "filaments/internal/rtnode"

// Binary wire codec for the bag-of-tasks work unit (tag 44; see the tag
// map in rtnode/codec.go).
func init() {
	rtnode.RegisterWireCodec(interval{}, 44,
		func(e *rtnode.Enc, v any) {
			iv := v.(interval)
			e.F64(iv.A)
			e.F64(iv.B)
			e.Bool(iv.Done)
		},
		func(d *rtnode.Dec) any {
			var iv interval
			iv.A = d.F64()
			iv.B = d.F64()
			iv.Done = d.Bool()
			return iv
		})
}
