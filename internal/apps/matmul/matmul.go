// Package matmul implements the paper's matrix multiplication experiment
// (§4.1, Figure 4): C = A×B for n×n matrices, as a sequential program, a
// coarse-grain message-passing program, and a Distributed Filaments
// program with one run-to-completion filament per point of C under the
// write-invalidate protocol.
//
// In the DF program A and B live on the master (node 0), so the p-1 slave
// nodes pull all of B and 1/p of A by page fault: (p-1)·(n²·8/4096·(1+1/p))
// requests — 4032 for n=512, p=8, exactly the count the paper reports —
// all serviced by the master, which saturates the network and explains the
// speedup drop-off at 4 and 8 nodes. C is striped so its writes are local.
//
// The CG program broadcasts B, sends each slave its strip of A, and
// gathers C strips; its distribution cost (the paper measured 5.1 s on 8
// nodes) bounds its speedup.
package matmul

import (
	"filaments"
	"filaments/internal/cost"
	"filaments/internal/msg"
	"filaments/internal/rtnode"
	"filaments/internal/simnet"
)

// The real-time binding serializes payloads with gob; the CG program
// broadcasts B and ships matrix strips through msg's envelope.
func init() {
	rtnode.RegisterWire([][]float64(nil))
}

// Config parameterizes a run.
type Config struct {
	// N is the matrix dimension (the paper uses 512).
	N int
	// Nodes is the cluster size.
	Nodes int
	// Protocol for the DF variant. The zero value selects the paper's
	// choice, write-invalidate.
	Protocol filaments.Protocol
	// UseMigratory forces the migratory protocol (the Protocol field's
	// zero value means "app default", i.e. write-invalidate).
	UseMigratory bool
	// Seed for the simulation (default 1).
	Seed int64
	// Tracer, when non-nil, records kernel trace events from the DF
	// variant.
	Tracer *filaments.Tracer
	// Monitor, when non-nil, observes the DF variants' DSM accesses and
	// synchronization events (the cmd/dfcheck seam).
	Monitor filaments.Monitor
	// MirageWindow overrides the Mirage anti-thrashing window in the DF
	// variants: 0 keeps the model default, negative disables it.
	MirageWindow filaments.Duration
	// Tuning collects the wall-clock wire-path knobs for the UDP variants
	// (codec, page diffs, event batching); ignored by the simulation.
	Tuning filaments.UDPTuning
}

func (c *Config) defaults() {
	if c.N == 0 {
		c.N = 512
	}
	if c.Nodes == 0 {
		c.Nodes = 1
	}
	if c.Protocol == filaments.Migratory {
		c.Protocol = filaments.WriteInvalidate
	}
}

// initA and initB give the deterministic input values.
func initA(i, j int) float64 { return float64((i+2*j)%10) - 4 }
func initB(i, j int) float64 { return float64((3*i+j)%7) - 3 }

// rowCost is the virtual compute time of one row of inner products: n
// points at n multiply-adds each is charged per point below.
func pointCost(n int) filaments.Duration {
	return filaments.Duration(n) * cost.MatmulMACost
}

// Reference computes C = A×B in plain Go, for verification.
func Reference(n int) [][]float64 {
	a, b := localInit(n)
	c := make([][]float64, n)
	for i := range c {
		c[i] = make([]float64, n)
		for j := 0; j < n; j++ {
			var s float64
			for k := 0; k < n; k++ {
				s += a[i][k] * b[k][j]
			}
			c[i][j] = s
		}
	}
	return c
}

func localInit(n int) (a, b [][]float64) {
	a = make([][]float64, n)
	b = make([][]float64, n)
	for i := 0; i < n; i++ {
		a[i] = make([]float64, n)
		b[i] = make([]float64, n)
		for j := 0; j < n; j++ {
			a[i][j] = initA(i, j)
			b[i][j] = initB(i, j)
		}
	}
	return a, b
}

// Sequential runs the single-node program: plain local arrays, no DSM, no
// messages — a distinct program, as in the paper.
func Sequential(cfg Config) (*filaments.Report, [][]float64) {
	cfg.defaults()
	n := cfg.N
	var out [][]float64
	c := filaments.New(filaments.Config{Nodes: 1, Seed: cfg.Seed})
	rep, err := c.Run(func(rt *filaments.Runtime, e *filaments.Exec) {
		a, b := localInit(n)
		out = make([][]float64, n)
		for i := 0; i < n; i++ {
			out[i] = make([]float64, n)
			for j := 0; j < n; j++ {
				var s float64
				for k := 0; k < n; k++ {
					s += a[i][k] * b[k][j]
				}
				out[i][j] = s
				e.Compute(pointCost(n))
			}
		}
	})
	if err != nil {
		panic(err)
	}
	return rep, out
}

// CoarseGrain runs the explicit message-passing program: one heavyweight
// process per node over unreliable datagrams.
func CoarseGrain(cfg Config) (*filaments.Report, [][]float64) {
	cfg.defaults()
	n, p := cfg.N, cfg.Nodes
	if p == 1 {
		return Sequential(cfg)
	}
	var out [][]float64
	cl := filaments.New(filaments.Config{Nodes: p, Seed: cfg.Seed})
	const (
		tagB = iota
		tagA
		tagC
	)
	rowBytes := n * 8
	rep, err := cl.Run(func(rt *filaments.Runtime, e *filaments.Exec) {
		me := rt.ID()
		mx := msg.New(rt.Node(), rt.Endpoint())
		lo, hi := strip(me, n, p)
		var a, b [][]float64
		if me == 0 {
			a, b = localInit(n)
			// Distribute: broadcast all of B, send each slave its strip
			// of A.
			mx.Broadcast(tagB, b, n*rowBytes)
			for k := 1; k < p; k++ {
				klo, khi := strip(k, n, p)
				mx.Send(simnet.NodeID(k), tagA, a[klo:khi], (khi-klo)*rowBytes)
			}
		} else {
			b = mx.Recv(e.Thread(), 0, tagB).([][]float64)
			a = mx.Recv(e.Thread(), 0, tagA).([][]float64)
			lo, hi = 0, hi-lo // index into the received strip rows
		}
		cpart := make([][]float64, hi-lo)
		for i := lo; i < hi; i++ {
			row := make([]float64, n)
			for j := 0; j < n; j++ {
				var s float64
				for k := 0; k < n; k++ {
					s += a[i][k] * b[k][j]
				}
				row[j] = s
				e.Compute(pointCost(n))
			}
			cpart[i-lo] = row
			e.Flush()
		}
		if me == 0 {
			out = make([][]float64, n)
			copy(out, cpart)
			for k := 1; k < p; k++ {
				klo, khi := strip(k, n, p)
				part := mx.Recv(e.Thread(), simnet.NodeID(k), tagC).([][]float64)
				copy(out[klo:khi], part)
			}
		} else {
			mx.Send(0, tagC, cpart, (hi-lo)*rowBytes)
		}
	})
	if err != nil {
		panic(err)
	}
	return rep, out
}

// DF runs the Distributed Filaments program: one RTC filament per point of
// C, write-invalidate, A and B initialized by the master.
func DF(cfg Config) (*filaments.Report, [][]float64, *filaments.Cluster) {
	cfg.defaults()
	n, p := cfg.N, cfg.Nodes
	proto := cfg.Protocol
	if cfg.UseMigratory {
		proto = filaments.Migratory
	}
	cl := filaments.New(filaments.Config{
		Nodes:        p,
		Seed:         cfg.Seed,
		Protocol:     proto,
		Tracer:       cfg.Tracer,
		Monitor:      cfg.Monitor,
		MirageWindow: cfg.MirageWindow,
	})
	a := cl.AllocMatrixOwned(n, n, 0)
	b := cl.AllocMatrixOwned(n, n, 0)
	cm := cl.AllocMatrixStriped(n, n)
	rep, err := cl.Run(dfProgram(cfg, a, b, cm))
	if err != nil {
		panic(err)
	}
	return rep, cl.PeekMatrix(cm), cl
}

// dfProgram is the DF node program shared by the simulated cluster (DF)
// and the real-time UDP cluster (DFUDP). cfg must already be defaulted.
func dfProgram(cfg Config, a, b, cm filaments.Matrix) filaments.Program {
	n, p := cfg.N, cfg.Nodes
	return func(rt *filaments.Runtime, e *filaments.Exec) {
		me := rt.ID()
		d := rt.DSM()
		if me == 0 {
			// Master initializes A and B (local writes; untimed fill, as
			// initialization is excluded from the paper's sequential
			// figure too).
			e.NoteWrite(filaments.Range{Lo: a.Addr(0, 0), Hi: a.Addr(n-1, n-1) + 8})
			e.NoteWrite(filaments.Range{Lo: b.Addr(0, 0), Hi: b.Addr(n-1, n-1) + 8})
			for i := 0; i < n; i++ {
				for j := 0; j < n; j++ {
					d.WriteF64(e.Thread(), a.Addr(i, j), initA(i, j))
					d.WriteF64(e.Thread(), b.Addr(i, j), initB(i, j))
				}
			}
		}
		// Barrier 1: A and B initialized before anyone computes.
		e.Barrier()
		lo, hi := strip(me, n, p)
		// Declared extents for the memory-model checker: every node reads
		// all of A and B and writes its own strip of C.
		e.NoteRead(filaments.Range{Lo: a.Addr(0, 0), Hi: a.Addr(n-1, n-1) + 8})
		e.NoteRead(filaments.Range{Lo: b.Addr(0, 0), Hi: b.Addr(n-1, n-1) + 8})
		e.NoteWrite(filaments.Range{Lo: cm.Addr(lo, 0), Hi: cm.Addr(hi-1, n-1) + 8})
		pool := rt.NewPool("cpoints")
		fn := func(e *filaments.Exec, args filaments.Args) {
			i, j := int(args[0]), int(args[1])
			var s float64
			for k := 0; k < n; k++ {
				s += e.ReadF64(a.Addr(i, k)) * e.ReadF64(b.Addr(k, j))
			}
			e.WriteF64(cm.Addr(i, j), s)
			e.Compute(pointCost(n))
		}
		for i := lo; i < hi; i++ {
			for j := 0; j < n; j++ {
				pool.Add(e, fn, filaments.Args{int64(i), int64(j)})
			}
		}
		rt.RunPools(e)
		// Barrier 2: all of C computed before the master would print it.
		e.Barrier()
	}
}

// udpHost is the slice of the UDPCluster/UDPRun surface the program
// needs; both satisfy it, so the single-program form (DFUDP) and the
// service form (DFOn, one job on a live daemon cluster) share one body.
type udpHost interface {
	AllocMatrixOwned(rows, cols, owner int) filaments.Matrix
	AllocMatrixStriped(rows, cols int) filaments.Matrix
	Run(filaments.Program) (*filaments.UDPReport, error)
	PeekMatrix(filaments.Matrix) [][]float64
}

// dfOn allocates the matrices on h, runs the DF program, and peeks the
// product. cfg must already be defaulted.
func dfOn(cfg Config, h udpHost) (*filaments.UDPReport, [][]float64, error) {
	n := cfg.N
	a := h.AllocMatrixOwned(n, n, 0)
	b := h.AllocMatrixOwned(n, n, 0)
	cm := h.AllocMatrixStriped(n, n)
	rep, err := h.Run(dfProgram(cfg, a, b, cm))
	if err != nil {
		return rep, nil, err
	}
	return rep, h.PeekMatrix(cm), nil
}

// DFUDP runs the same DF program on a single-process real-time cluster:
// every node is a set of goroutines with its own UDP endpoint on loopback.
// The result is bitwise-identical to Reference's (identical inner-product
// evaluation order), so callers verify with exact comparison.
func DFUDP(cfg Config) (*filaments.UDPReport, [][]float64, *filaments.UDPCluster, error) {
	cfg.defaults()
	proto := cfg.Protocol
	if cfg.UseMigratory {
		proto = filaments.Migratory
	}
	cl, err := filaments.NewUDPCluster(filaments.UDPConfig{
		Nodes:        cfg.Nodes,
		Protocol:     proto,
		Tracer:       cfg.Tracer,
		Monitor:      cfg.Monitor,
		MirageWindow: cfg.MirageWindow,
		Tuning:       cfg.Tuning,
	})
	if err != nil {
		return nil, nil, nil, err
	}
	rep, prod, err := dfOn(cfg, cl)
	if err != nil {
		return nil, nil, nil, err
	}
	return rep, prod, cl, nil
}

// DFOn runs the DF program as one job on a live service cluster's run
// (internal/cluster/daemon submits jobs here). Cluster-wide settings —
// protocol, tracing, codec — were fixed when the run was started; cfg
// supplies the problem shape. The product is bitwise-identical to
// Reference's, exactly as under DFUDP.
func DFOn(cfg Config, run *filaments.UDPRun) (*filaments.UDPReport, [][]float64, error) {
	cfg.Nodes = run.Nodes()
	cfg.defaults()
	return dfOn(cfg, run)
}

// strip returns the row range [lo, hi) node k computes.
func strip(k, n, p int) (int, int) {
	per := n / p
	lo := k * per
	hi := lo + per
	if k == p-1 {
		hi = n
	}
	return lo, hi
}
