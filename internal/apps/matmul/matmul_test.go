package matmul

import (
	"fmt"
	"testing"
)

func matEqual(a, b [][]float64) error {
	if len(a) != len(b) {
		return fmt.Errorf("rows %d vs %d", len(a), len(b))
	}
	for i := range a {
		for j := range a[i] {
			if a[i][j] != b[i][j] {
				return fmt.Errorf("C[%d][%d] = %v, want %v", i, j, a[i][j], b[i][j])
			}
		}
	}
	return nil
}

func TestSequentialMatchesReference(t *testing.T) {
	cfg := Config{N: 48}
	_, got := Sequential(cfg)
	if err := matEqual(got, Reference(48)); err != nil {
		t.Fatal(err)
	}
}

func TestCoarseGrainCorrect(t *testing.T) {
	want := Reference(48)
	for _, p := range []int{2, 3, 4} {
		_, got := CoarseGrain(Config{N: 48, Nodes: p})
		if err := matEqual(got, want); err != nil {
			t.Fatalf("p=%d: %v", p, err)
		}
	}
}

func TestDFCorrect(t *testing.T) {
	want := Reference(48)
	for _, p := range []int{1, 2, 4} {
		_, got, _ := DF(Config{N: 48, Nodes: p})
		if err := matEqual(got, want); err != nil {
			t.Fatalf("p=%d: %v", p, err)
		}
	}
}

// The DF page-request count is exactly the paper's formula: the p-1 slaves
// pull all of B and 1/p of A.
func TestDFPageRequestCount(t *testing.T) {
	const n, p = 128, 4
	_, _, cl := DF(Config{N: n, Nodes: p})
	pagesPerMatrix := n * n * 8 / 4096
	want := int64((p - 1) * (pagesPerMatrix + pagesPerMatrix/p))
	served := cl.Runtime(0).DSM().Stats().Served
	if served != want {
		t.Fatalf("master served %d page requests, want %d", served, want)
	}
}

func TestSpeedupSane(t *testing.T) {
	if testing.Short() {
		t.Skip("timing test")
	}
	seq, _ := Sequential(Config{N: 128})
	cg4, _ := CoarseGrain(Config{N: 128, Nodes: 4})
	df4, _, _ := DF(Config{N: 128, Nodes: 4})
	s := seq.Seconds()
	if cgS := s / cg4.Seconds(); cgS < 2 || cgS > 4.2 {
		t.Errorf("CG speedup on 4 nodes = %.2f", cgS)
	}
	if dfS := s / df4.Seconds(); dfS < 1.5 || dfS > 4.2 {
		t.Errorf("DF speedup on 4 nodes = %.2f", dfS)
	}
}
