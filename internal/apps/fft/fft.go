// Package fft implements a recursive radix-2 FFT with fork/join filaments
// over the DSM — the third balanced recursive application the paper names
// in §2.3 alongside expression trees and merge sort.
//
// The transform is decimation-in-frequency: each filament performs the
// butterflies over its contiguous range (good page locality), then forks
// the two half-size transforms; a final pool of run-to-completion
// filaments applies the bit-reversal permutation, showing both filament
// kinds in one program.
package fft

import (
	"math"
	"math/bits"

	"filaments"
	"filaments/internal/dsm"
	"filaments/internal/simnet"
)

// Config parameterizes a run.
type Config struct {
	// N is the transform size, a power of two (default 1 << 14).
	N int
	// Leaf is the size below which a filament transforms sequentially
	// (default 1024).
	Leaf int
	// Nodes is the cluster size.
	Nodes int
	// Protocol for the DF variant; the zero value means the app default,
	// write-invalidate (the bit-reversal phase reads scattered locations
	// across the whole array, and read-only copies must not tear
	// ownership away from the transform's writers).
	Protocol filaments.Protocol
	// UseMigratory forces the migratory protocol (the Protocol field's
	// zero value means "app default", i.e. write-invalidate).
	UseMigratory bool
	// Seed for the simulation and input signal.
	Seed int64
	// Tracer, when non-nil, records kernel trace events from the DF
	// variant.
	Tracer *filaments.Tracer
	// Monitor, when non-nil, observes the DF variant's DSM accesses and
	// synchronization events (the cmd/dfcheck seam).
	Monitor filaments.Monitor
	// MirageWindow overrides the Mirage anti-thrashing window in the DF
	// variant: 0 keeps the model default, negative disables it.
	MirageWindow filaments.Duration
}

func (c *Config) defaults() {
	if c.N == 0 {
		c.N = 1 << 14
	}
	if c.Leaf == 0 {
		c.Leaf = 1024
	}
	if c.Nodes == 0 {
		c.Nodes = 1
	}
	if c.Seed == 0 {
		c.Seed = 1
	}
	if c.Protocol == filaments.Migratory {
		c.Protocol = filaments.WriteInvalidate
	}
	if c.UseMigratory {
		c.Protocol = filaments.Migratory
	}
	if c.N&(c.N-1) != 0 || c.Leaf&(c.Leaf-1) != 0 || c.Leaf > c.N {
		panic("fft: N and Leaf must be powers of two with Leaf <= N")
	}
}

// butterflyCost is the virtual time of one complex butterfly on the
// paper's hardware. The code computes its twiddle factor on the fly, and
// sin/cos were ~50 µs each on a 25 MHz SPARC, which dominates the
// multiply-adds.
const butterflyCost = 120 * filaments.Microsecond

// input generates the deterministic test signal.
func input(n int, seed int64) (re, im []float64) {
	re = make([]float64, n)
	im = make([]float64, n)
	for i := 0; i < n; i++ {
		x := float64(i) + float64(seed)
		re[i] = math.Sin(0.03*x) + 0.5*math.Cos(0.11*x)
		im[i] = 0.25 * math.Sin(0.07*x)
	}
	return re, im
}

// difButterflies applies the top-level DIF butterflies over [lo, lo+n).
func difButterflies(re, im []float64, lo, n int) {
	half := n / 2
	for k := 0; k < half; k++ {
		ang := -2 * math.Pi * float64(k) / float64(n)
		wr, wi := math.Cos(ang), math.Sin(ang)
		a, b := lo+k, lo+k+half
		xr, xi := re[a], im[a]
		yr, yi := re[b], im[b]
		re[a], im[a] = xr+yr, xi+yi
		tr, ti := xr-yr, xi-yi
		re[b], im[b] = tr*wr-ti*wi, tr*wi+ti*wr
	}
}

// seqDIF transforms [lo, lo+n) recursively (no reordering).
func seqDIF(re, im []float64, lo, n int) {
	if n == 1 {
		return
	}
	difButterflies(re, im, lo, n)
	seqDIF(re, im, lo, n/2)
	seqDIF(re, im, lo+n/2, n/2)
}

// bitReverse permutes the DIF output into natural order.
func bitReverse(re, im []float64) {
	n := len(re)
	shift := 64 - uint(bits.Len(uint(n-1)))
	for i := 0; i < n; i++ {
		j := int(bits.Reverse64(uint64(i)) >> shift)
		if j > i {
			re[i], re[j] = re[j], re[i]
			im[i], im[j] = im[j], im[i]
		}
	}
}

// Reference computes the FFT in plain Go.
func Reference(cfg Config) (re, im []float64) {
	cfg.defaults()
	re, im = input(cfg.N, cfg.Seed)
	seqDIF(re, im, 0, cfg.N)
	bitReverse(re, im)
	return re, im
}

// NaiveDFT computes the DFT directly, for cross-validation on small sizes.
func NaiveDFT(re, im []float64) (or, oi []float64) {
	n := len(re)
	or = make([]float64, n)
	oi = make([]float64, n)
	for k := 0; k < n; k++ {
		for t := 0; t < n; t++ {
			ang := -2 * math.Pi * float64(k) * float64(t) / float64(n)
			c, s := math.Cos(ang), math.Sin(ang)
			or[k] += re[t]*c - im[t]*s
			oi[k] += re[t]*s + im[t]*c
		}
	}
	return or, oi
}

// Sequential runs the distinct single-node program.
func Sequential(cfg Config) (*filaments.Report, []float64, []float64) {
	cfg.defaults()
	var re, im []float64
	c := filaments.New(filaments.Config{Nodes: 1, Seed: cfg.Seed})
	rep, err := c.Run(func(rt *filaments.Runtime, e *filaments.Exec) {
		re, im = input(cfg.N, cfg.Seed)
		var rec func(lo, n int)
		rec = func(lo, n int) {
			if n == 1 {
				return
			}
			difButterflies(re, im, lo, n)
			e.Compute(filaments.Duration(n/2) * butterflyCost)
			rec(lo, n/2)
			rec(lo+n/2, n/2)
		}
		rec(0, cfg.N)
		bitReverse(re, im)
		e.Compute(filaments.Duration(cfg.N) * filaments.Microsecond)
	})
	if err != nil {
		panic(err)
	}
	return rep, re, im
}

const fnFFT = 1

// DF runs the fork/join + RTC Filaments program over the DSM.
func DF(cfg Config) (*filaments.Report, []float64, []float64, *filaments.Cluster) {
	cfg.defaults()
	n := cfg.N
	cl := filaments.New(filaments.Config{
		Nodes:        cfg.Nodes,
		Seed:         cfg.Seed,
		Protocol:     cfg.Protocol,
		WakeFront:    true,
		Tracer:       cfg.Tracer,
		Monitor:      cfg.Monitor,
		MirageWindow: cfg.MirageWindow,
	})
	groupPages := (cfg.Leaf*8 + dsm.PageSize - 1) / dsm.PageSize
	reB := cl.Space().Alloc(int64(n)*8, dsm.AllocOpts{Owner: 0, GroupPages: groupPages})
	imB := cl.Space().Alloc(int64(n)*8, dsm.AllocOpts{Owner: 0, GroupPages: groupPages})
	// Bit-reversal scratch (the permutation is not in-place across
	// nodes), owned in strips by the nodes that will write it.
	stripOwner := func(page int) simnet.NodeID {
		i := page * dsm.PageSize / 8 // first element on the page
		return simnet.NodeID(dsm.StripOf(i, n, cfg.Nodes))
	}
	reS := cl.Space().Alloc(int64(n)*8, dsm.AllocOpts{OwnerByPage: stripOwner, GroupPages: groupPages})
	imS := cl.Space().Alloc(int64(n)*8, dsm.AllocOpts{OwnerByPage: stripOwner, GroupPages: groupPages})
	reAt := func(i int) filaments.Addr { return reB + filaments.Addr(i*8) }
	imAt := func(i int) filaments.Addr { return imB + filaments.Addr(i*8) }

	rep, err := cl.Run(func(rt *filaments.Runtime, e *filaments.Exec) {
		if rt.ID() == 0 {
			re, im := input(n, cfg.Seed)
			for i := 0; i < n; i++ {
				e.WriteF64(reAt(i), re[i])
				e.WriteF64(imAt(i), im[i])
			}
		}
		var body filaments.FJFunc
		body = func(e *filaments.Exec, a filaments.Args) float64 {
			lo, sz := int(a[0]), int(a[1])
			if sz <= cfg.Leaf {
				// Pull the range and transform locally.
				re := make([]float64, sz)
				im := make([]float64, sz)
				for i := 0; i < sz; i++ {
					re[i] = e.ReadF64(reAt(lo + i))
					im[i] = e.ReadF64(imAt(lo + i))
				}
				seqDIF(re, im, 0, sz)
				for i := 0; i < sz; i++ {
					e.WriteF64(reAt(lo+i), re[i])
					e.WriteF64(imAt(lo+i), im[i])
				}
				e.Compute(filaments.Duration(sz/2*bits.Len(uint(sz-1))) * butterflyCost)
				return 0
			}
			// DIF butterflies over the whole range, then fork the halves.
			half := sz / 2
			for k := 0; k < half; k++ {
				ang := -2 * math.Pi * float64(k) / float64(sz)
				wr, wi := math.Cos(ang), math.Sin(ang)
				ar, ai := e.ReadF64(reAt(lo+k)), e.ReadF64(imAt(lo+k))
				br, bi := e.ReadF64(reAt(lo+k+half)), e.ReadF64(imAt(lo+k+half))
				e.WriteF64(reAt(lo+k), ar+br)
				e.WriteF64(imAt(lo+k), ai+bi)
				tr, ti := ar-br, ai-bi
				e.WriteF64(reAt(lo+k+half), tr*wr-ti*wi)
				e.WriteF64(imAt(lo+k+half), tr*wi+ti*wr)
			}
			e.Compute(filaments.Duration(half) * butterflyCost)
			rtl := e.Runtime()
			j := rtl.NewJoin()
			rtl.Fork(e, j, fnFFT, filaments.Args{int64(lo), int64(half)})
			rtl.Fork(e, j, fnFFT, filaments.Args{int64(lo + half), int64(half)})
			return j.Wait(e)
		}
		rt.RegisterFJ(fnFFT, body)
		e.Barrier()
		rt.RunForkJoin(e, fnFFT, filaments.Args{0, int64(n)})

		// Bit-reversal as a pool of RTC filaments, one per strip of
		// indices, reading from the transform arrays and writing the
		// scratch arrays.
		per := n / rt.Nodes()
		lo := rt.ID() * per
		hi := lo + per
		if rt.ID() == rt.Nodes()-1 {
			hi = n
		}
		shift := 64 - uint(bits.Len(uint(n-1)))
		pool := rt.NewPool("bitrev")
		reorder := func(e *filaments.Exec, a filaments.Args) {
			i := int(a[0])
			j := int(bits.Reverse64(uint64(i)) >> shift)
			e.WriteF64(reS+filaments.Addr(i*8), e.ReadF64(reAt(j)))
			e.WriteF64(imS+filaments.Addr(i*8), e.ReadF64(imAt(j)))
			e.Compute(2 * filaments.Microsecond)
		}
		for i := lo; i < hi; i++ {
			pool.Add(e, reorder, filaments.Args{int64(i)})
		}
		rt.RunPools(e)
		e.Barrier()
	})
	if err != nil {
		panic(err)
	}
	or := make([]float64, n)
	oi := make([]float64, n)
	for i := 0; i < n; i++ {
		or[i] = cl.PeekF64(reS + filaments.Addr(i*8))
		oi[i] = cl.PeekF64(imS + filaments.Addr(i*8))
	}
	return rep, or, oi, cl
}
