package fft

import (
	"math"
	"testing"
)

func maxDiff(a, b []float64) float64 {
	var m float64
	for i := range a {
		if d := math.Abs(a[i] - b[i]); d > m {
			m = d
		}
	}
	return m
}

// The recursive FFT must agree with the naive DFT.
func TestReferenceMatchesNaiveDFT(t *testing.T) {
	cfg := Config{N: 256, Leaf: 32}
	re, im := input(cfg.N, 1)
	wantR, wantI := NaiveDFT(re, im)
	gotR, gotI := Reference(cfg)
	if d := maxDiff(gotR, wantR); d > 1e-9*float64(cfg.N) {
		t.Fatalf("re diverges from DFT by %g", d)
	}
	if d := maxDiff(gotI, wantI); d > 1e-9*float64(cfg.N) {
		t.Fatalf("im diverges from DFT by %g", d)
	}
}

func TestSequentialMatchesReference(t *testing.T) {
	cfg := Config{N: 1024, Leaf: 128}
	wr, wi := Reference(cfg)
	_, gr, gi := Sequential(cfg)
	if maxDiff(gr, wr) != 0 || maxDiff(gi, wi) != 0 {
		t.Fatal("sequential FFT diverges from reference (same algorithm)")
	}
}

// The DF program performs the identical floating-point operations in the
// identical order, so results are bit-exact across cluster sizes.
func TestDFBitExact(t *testing.T) {
	cfg := Config{N: 2048, Leaf: 256}
	wr, wi := Reference(cfg)
	for _, p := range []int{1, 2, 4} {
		cfg.Nodes = p
		_, gr, gi, _ := DF(cfg)
		if maxDiff(gr, wr) != 0 || maxDiff(gi, wi) != 0 {
			t.Fatalf("p=%d: DF FFT diverges", p)
		}
	}
}

func TestParsevalInvariant(t *testing.T) {
	// Energy is preserved up to the 1/N convention: sum|X|^2 = N * sum|x|^2.
	cfg := Config{N: 1024, Leaf: 128, Nodes: 2}
	re, im := input(cfg.N, 1)
	var inE float64
	for i := range re {
		inE += re[i]*re[i] + im[i]*im[i]
	}
	_, gr, gi, _ := DF(cfg)
	var outE float64
	for i := range gr {
		outE += gr[i]*gr[i] + gi[i]*gi[i]
	}
	if math.Abs(outE-float64(cfg.N)*inE) > 1e-6*outE {
		t.Fatalf("Parseval violated: out %g, want %g", outE, float64(cfg.N)*inE)
	}
}

func TestSpeedup(t *testing.T) {
	if testing.Short() {
		t.Skip("timing test")
	}
	cfg := Config{}
	seq, _, _ := Sequential(cfg)
	cfg.Nodes = 4
	df, _, _, _ := DF(cfg)
	if s := seq.Seconds() / df.Seconds(); s < 1.5 {
		t.Fatalf("speedup on 4 nodes = %.2f", s)
	}
}
