// Package exprtree implements the paper's binary expression tree
// experiment (§4.4, Figure 7): a balanced binary tree of height h whose
// leaves are n×n matrices and whose interior operators are matrix
// multiplication. The tree is traversed in parallel; each multiplication
// is sequential.
//
// The DF program uses fork/join filaments over the DSM with the migratory
// protocol: every matrix (leaf or intermediate result) is one page group,
// so it moves to the node that needs it in a single request. Parallelism
// begins at a single root filament, so the DF program sends many more
// messages than the CG program, whose combining tree moves exactly 2(p-1)
// matrices.
//
// Speedup is capped by tail-end imbalance: near the root there are fewer
// multiplications than nodes. For height 7 the cap is 127/33 = 3.85 on 4
// nodes and 127/18 = 7.06 on 8 (the paper's numbers).
package exprtree

import (
	"filaments"
	"filaments/internal/cost"
	"filaments/internal/dsm"
	"filaments/internal/msg"
	"filaments/internal/rtnode"
	"filaments/internal/simnet"
)

// The real-time binding serializes payloads with gob; the CG program
// ships whole matrices through msg's envelope.
func init() {
	rtnode.RegisterWire([][]float64(nil))
}

// Config parameterizes a run.
type Config struct {
	// Height is the tree height: 2^Height leaves, 2^Height - 1
	// multiplications (the paper uses 7).
	Height int
	// N is the matrix dimension (the paper uses 70).
	N int
	// Nodes is the cluster size.
	Nodes int
	// Stealing enables dynamic load balancing in the DF variant. The
	// paper argues it does not pay for balanced trees, so the default is
	// off.
	Stealing bool
	// Protocol for the DF variant. The zero value selects the paper's
	// choice for this program, migratory.
	Protocol filaments.Protocol
	// Seed for the simulation.
	Seed int64
	// Tracer, when non-nil, records kernel trace events from the DF
	// variant.
	Tracer *filaments.Tracer
	// Monitor, when non-nil, observes the DF variant's DSM accesses and
	// synchronization events (the cmd/dfcheck seam).
	Monitor filaments.Monitor
	// MirageWindow overrides the Mirage anti-thrashing window in the DF
	// variant: 0 keeps the model default, negative disables it.
	MirageWindow filaments.Duration
}

func (c *Config) defaults() {
	if c.Height == 0 {
		c.Height = 7
	}
	if c.N == 0 {
		c.N = 70
	}
	if c.Nodes == 0 {
		c.Nodes = 1
	}
}

// leaf gives deterministic leaf matrix values; kept small so products stay
// exactly representable.
func leaf(idx, i, j, n int) float64 {
	return float64((i+3*j+7*idx)%5) - 2
}

func leafMatrix(idx, n int) [][]float64 {
	m := make([][]float64, n)
	for i := range m {
		m[i] = make([]float64, n)
		for j := range m[i] {
			m[i][j] = leaf(idx, i, j, n)
		}
	}
	return m
}

func multiply(a, b [][]float64) [][]float64 {
	n := len(a)
	c := make([][]float64, n)
	for i := 0; i < n; i++ {
		c[i] = make([]float64, n)
		for j := 0; j < n; j++ {
			var s float64
			for k := 0; k < n; k++ {
				s += a[i][k] * b[k][j]
			}
			c[i][j] = s
		}
	}
	return c
}

// mulCost is the virtual time of one n×n matrix multiplication.
func mulCost(n int) filaments.Duration {
	return filaments.Duration(n) * filaments.Duration(n) * filaments.Duration(n) * cost.ExprTreeMACost
}

// Reference evaluates the tree in plain Go.
func Reference(cfg Config) [][]float64 {
	cfg.defaults()
	return refNode(1, cfg.Height, cfg.N)
}

// refNode evaluates heap-numbered tree node k at the given remaining
// height (0 = leaf).
func refNode(k, height, n int) [][]float64 {
	if height == 0 {
		return leafMatrix(k, n)
	}
	return multiply(refNode(2*k, height-1, n), refNode(2*k+1, height-1, n))
}

// Sequential runs the distinct single-node program.
func Sequential(cfg Config) (*filaments.Report, [][]float64) {
	cfg.defaults()
	var out [][]float64
	c := filaments.New(filaments.Config{Nodes: 1, Seed: cfg.Seed})
	rep, err := c.Run(func(rt *filaments.Runtime, e *filaments.Exec) {
		var eval func(k, h int) [][]float64
		eval = func(k, h int) [][]float64 {
			if h == 0 {
				return leafMatrix(k, cfg.N)
			}
			l := eval(2*k, h-1)
			r := eval(2*k+1, h-1)
			e.Compute(mulCost(cfg.N))
			return multiply(l, r)
		}
		out = eval(1, cfg.Height)
	})
	if err != nil {
		panic(err)
	}
	return rep, out
}

// CoarseGrain runs the two-phase message-passing program: leaves are split
// evenly, each node reduces its share to one matrix, then a combining tree
// multiplies pairs, halving the active nodes each level — 2(p-1) matrix
// transfers in total.
func CoarseGrain(cfg Config) (*filaments.Report, [][]float64) {
	cfg.defaults()
	p := cfg.Nodes
	if p == 1 {
		return Sequential(cfg)
	}
	leaves := 1 << cfg.Height
	if leaves%p != 0 {
		// Uneven splits complicate the combining tree; the paper used
		// p | leaves configurations.
		panic("exprtree: CoarseGrain requires nodes to divide the leaf count")
	}
	var out [][]float64
	cl := filaments.New(filaments.Config{Nodes: p, Seed: cfg.Seed})
	const tagMat = 1
	matBytes := cfg.N * cfg.N * 8
	rep, err := cl.Run(func(rt *filaments.Runtime, e *filaments.Exec) {
		me := rt.ID()
		mx := msg.New(rt.Node(), rt.Endpoint())
		per := leaves / p
		// Phase 1: reduce my span of leaves. The leaves of the full tree
		// are heap nodes 2^h .. 2^(h+1)-1; my span is a subtree product.
		first := (1 << cfg.Height) + me*per
		cur := leafMatrix(first, cfg.N)
		for i := 1; i < per; i++ {
			next := leafMatrix(first+i, cfg.N)
			e.Compute(mulCost(cfg.N))
			cur = multiply(cur, next)
		}
		// Phase 2: combining tree; half the active nodes drop out each
		// level (tail-end imbalance handled here, as in the paper).
		for stride := 1; stride < p; stride <<= 1 {
			if me%(2*stride) != 0 {
				mx.Send(simnet.NodeID(me-stride), tagMat, cur, matBytes)
				break
			}
			peer := me + stride
			if peer < p {
				right := mx.Recv(e.Thread(), simnet.NodeID(peer), tagMat).([][]float64)
				e.Compute(mulCost(cfg.N))
				cur = multiply(cur, right)
			}
		}
		if me == 0 {
			out = cur
		}
	})
	if err != nil {
		panic(err)
	}
	return rep, out
}

const fnEval = 1

// DF runs the fork/join Filaments program over the DSM with the migratory
// protocol. Matrix slots — 2^(h+1)-1 of them, one per tree node — live in
// shared memory as single page groups; the master initializes the leaves,
// and each interior filament multiplies its children's slots into its own.
func DF(cfg Config) (*filaments.Report, [][]float64, *filaments.Cluster) {
	cfg.defaults()
	n, h, p := cfg.N, cfg.Height, cfg.Nodes
	cl := filaments.New(filaments.Config{
		Nodes:        p,
		Seed:         cfg.Seed,
		Protocol:     cfg.Protocol, // zero value is Migratory, the app default
		Stealing:     cfg.Stealing,
		WakeFront:    true,
		Tracer:       cfg.Tracer,
		Monitor:      cfg.Monitor,
		MirageWindow: cfg.MirageWindow,
	})
	matBytes := int64(n) * int64(n) * 8
	pagesPer := int((matBytes + dsm.PageSize - 1) / dsm.PageSize)
	slots := make([]filaments.Matrix, 1<<(h+1))
	for k := 1; k < 1<<(h+1); k++ {
		base := cl.Space().Alloc(matBytes, dsm.AllocOpts{Owner: 0, GroupPages: pagesPer})
		slots[k] = filaments.Matrix{Base: base, Rows: n, Cols: n}
	}
	rep, err := cl.Run(func(rt *filaments.Runtime, e *filaments.Exec) {
		slotRange := func(k int) filaments.Range {
			return filaments.Range{Lo: slots[k].Addr(0, 0), Hi: slots[k].Addr(n-1, n-1) + 8}
		}
		if rt.ID() == 0 {
			// Master initializes the leaf matrices (local writes).
			for k := 1 << h; k < 1<<(h+1); k++ {
				e.NoteWrite(slotRange(k))
				for i := 0; i < n; i++ {
					for j := 0; j < n; j++ {
						rt.DSM().WriteF64(e.Thread(), slots[k].Addr(i, j), leaf(k, i, j, n))
					}
				}
			}
		}
		// eval(k, height): compute slot k. Leaves are already material.
		eval := func(e *filaments.Exec, a filaments.Args) float64 {
			k, hh := int(a[0]), int(a[1])
			if hh == 0 {
				return 1
			}
			rtl := e.Runtime()
			j := rtl.NewJoin()
			if hh > 1 {
				rtl.Fork(e, j, fnEval, filaments.Args{int64(2 * k), int64(hh - 1)})
				rtl.Fork(e, j, fnEval, filaments.Args{int64(2*k + 1), int64(hh - 1)})
				j.Wait(e)
			}
			l, r, dst := slots[2*k], slots[2*k+1], slots[k]
			for i := 0; i < n; i++ {
				for jj := 0; jj < n; jj++ {
					var s float64
					for kk := 0; kk < n; kk++ {
						s += e.ReadF64(l.Addr(i, kk)) * e.ReadF64(r.Addr(kk, jj))
					}
					e.WriteF64(dst.Addr(i, jj), s)
				}
			}
			e.Compute(mulCost(n))
			return 1
		}
		rt.RegisterFJ(fnEval, eval)
		// Exact access describer for the memory-model checker: an interior
		// filament reads its children's slots and writes its own; a leaf
		// filament (hh == 0) touches nothing.
		rt.RegisterFJRanges(fnEval, func(a filaments.Args) (reads, writes []filaments.Range) {
			k, hh := int(a[0]), int(a[1])
			if hh == 0 {
				return nil, nil
			}
			return []filaments.Range{slotRange(2 * k), slotRange(2*k + 1)},
				[]filaments.Range{slotRange(k)}
		})
		// The initial barrier ensures the leaves exist before traversal.
		e.Barrier()
		rt.RunForkJoin(e, fnEval, filaments.Args{1, int64(h)})
	})
	if err != nil {
		panic(err)
	}
	return rep, cl.PeekMatrix(slots[1]), cl
}
