package exprtree

import (
	"fmt"
	"testing"
)

func matEqual(a, b [][]float64) error {
	if len(a) != len(b) {
		return fmt.Errorf("rows %d vs %d", len(a), len(b))
	}
	for i := range a {
		for j := range a[i] {
			if a[i][j] != b[i][j] {
				return fmt.Errorf("[%d][%d] = %v, want %v", i, j, a[i][j], b[i][j])
			}
		}
	}
	return nil
}

func TestSequentialMatchesReference(t *testing.T) {
	cfg := Config{Height: 4, N: 16}
	_, got := Sequential(cfg)
	if err := matEqual(got, Reference(cfg)); err != nil {
		t.Fatal(err)
	}
}

func TestCoarseGrainCorrect(t *testing.T) {
	cfg := Config{Height: 4, N: 16}
	want := Reference(cfg)
	for _, p := range []int{2, 4, 8} {
		cfg.Nodes = p
		_, got := CoarseGrain(cfg)
		if err := matEqual(got, want); err != nil {
			t.Fatalf("p=%d: %v", p, err)
		}
	}
}

func TestDFCorrect(t *testing.T) {
	cfg := Config{Height: 4, N: 16}
	want := Reference(cfg)
	for _, p := range []int{1, 2, 4} {
		cfg.Nodes = p
		_, got, _ := DF(cfg)
		if err := matEqual(got, want); err != nil {
			t.Fatalf("p=%d: %v", p, err)
		}
	}
}

func TestDFWithStealingCorrect(t *testing.T) {
	cfg := Config{Height: 5, N: 12, Nodes: 4, Stealing: true}
	want := Reference(cfg)
	_, got, _ := DF(cfg)
	if err := matEqual(got, want); err != nil {
		t.Fatal(err)
	}
}

// The DF program must move many more messages than CG (single root
// filament + implicit data movement by page fault vs 2(p-1) transfers).
func TestDFSendsMoreMessagesThanCG(t *testing.T) {
	cfg := Config{Height: 5, N: 16, Nodes: 4}
	cgCl := newCountingRun(t, cfg, false)
	dfCl := newCountingRun(t, cfg, true)
	if dfCl <= cgCl*2 {
		t.Fatalf("DF frames %d not ≫ CG frames %d", dfCl, cgCl)
	}
}

func newCountingRun(t *testing.T, cfg Config, df bool) int64 {
	t.Helper()
	if df {
		_, _, cl := DF(cfg)
		return cl.Network().Stats().FramesSent
	}
	// CoarseGrain does not return its cluster; measure via a fresh run
	// through the exported API and count from the report.
	rep, _ := CoarseGrain(cfg)
	return rep.Net.FramesSent
}

// Tail-end imbalance: the maximum possible speedup for height 7 is 3.85 on
// 4 nodes and 7.06 on 8; the measured speedup must stay below the cap.
func TestTailEndCap(t *testing.T) {
	if testing.Short() {
		t.Skip("timing test")
	}
	cfg := Config{Height: 5, N: 24}
	seq, _ := Sequential(cfg)
	cfg.Nodes = 4
	df, _, _ := DF(cfg)
	speedup := seq.Seconds() / df.Seconds()
	// Height 5: 31 multiplies; cap on 4 nodes = 31 / (1+1+1+2+4) = 3.44.
	if speedup > 3.45 {
		t.Fatalf("speedup %.2f exceeds the tail-end cap 3.44", speedup)
	}
	if speedup < 1.5 {
		t.Fatalf("speedup %.2f unreasonably low", speedup)
	}
}
