package jacobi

import (
	"fmt"
	"testing"

	"filaments"
)

func gridEqual(a, b [][]float64) error {
	if len(a) != len(b) {
		return fmt.Errorf("rows %d vs %d", len(a), len(b))
	}
	for i := range a {
		for j := range a[i] {
			if a[i][j] != b[i][j] {
				return fmt.Errorf("grid[%d][%d] = %v, want %v", i, j, a[i][j], b[i][j])
			}
		}
	}
	return nil
}

func TestSequentialMatchesReference(t *testing.T) {
	_, got := Sequential(Config{N: 32, Iters: 20})
	if err := gridEqual(got, Reference(32, 20)); err != nil {
		t.Fatal(err)
	}
}

func TestCoarseGrainCorrect(t *testing.T) {
	want := Reference(64, 30)
	for _, p := range []int{2, 4} {
		_, got := CoarseGrain(Config{N: 64, Iters: 30, Nodes: p})
		if err := gridEqual(got, want); err != nil {
			t.Fatalf("p=%d: %v", p, err)
		}
	}
}

func TestDFCorrectAllProtocols(t *testing.T) {
	want := Reference(64, 20)
	for _, proto := range []filaments.Protocol{
		filaments.ImplicitInvalidate, filaments.WriteInvalidate,
	} {
		for _, p := range []int{1, 2, 4} {
			_, got, _ := DF(Config{N: 64, Iters: 20, Nodes: p, Protocol: proto})
			if err := gridEqual(got, want); err != nil {
				t.Fatalf("proto=%v p=%d: %v", proto, p, err)
			}
		}
	}
}

// Uneven strips put two writers on one page; the protocols must still be
// correct (just slower).
func TestDFCorrectOddNodes(t *testing.T) {
	want := Reference(64, 10)
	_, got, _ := DF(Config{N: 64, Iters: 10, Nodes: 3, Protocol: filaments.WriteInvalidate})
	if err := gridEqual(got, want); err != nil {
		t.Fatal(err)
	}
}

func TestDFSinglePoolCorrect(t *testing.T) {
	want := Reference(64, 20)
	_, got, _ := DF(Config{N: 64, Iters: 20, Nodes: 4, SinglePool: true})
	if err := gridEqual(got, want); err != nil {
		t.Fatal(err)
	}
}

// Implicit-invalidate must send no invalidation messages; write-invalidate
// must send them every iteration.
func TestInvalidationTraffic(t *testing.T) {
	invals := func(proto filaments.Protocol) int64 {
		_, _, cl := DF(Config{N: 64, Iters: 10, Nodes: 4, Protocol: proto})
		var n int64
		for i := 0; i < 4; i++ {
			n += cl.Runtime(i).DSM().Stats().InvalsSent
		}
		return n
	}
	if n := invals(filaments.ImplicitInvalidate); n != 0 {
		t.Fatalf("implicit-invalidate sent %d invalidations", n)
	}
	if n := invals(filaments.WriteInvalidate); n == 0 {
		t.Fatal("write-invalidate sent no invalidations")
	}
}

// The paper's per-iteration fault structure (Figure 10): after the initial
// strip acquisition, the master and tail nodes fault once per iteration
// and interior nodes twice.
func TestSteadyStateFaultStructure(t *testing.T) {
	const n, p, iters = 256, 4, 40
	_, _, cl := DF(Config{N: n, Iters: iters, Nodes: p})
	for k := 0; k < p; k++ {
		rf := cl.Runtime(k).DSM().Stats().ReadFaults
		perIter := 1.0
		if k != 0 && k != p-1 {
			perIter = 2.0
		}
		// Allow slack for the initial strip pulls.
		min := int64(perIter * float64(iters-5))
		max := int64(perIter*float64(iters)) + 80
		if rf < min || rf > max {
			t.Errorf("node %d: %d read faults over %d iters, want ~%v/iter", k, rf, iters, perIter)
		}
	}
}

// Overlap: the three-pool program must beat the single-pool program (the
// paper measures 9%/21% on 4/8 nodes).
func TestOverlapBeatsSinglePool(t *testing.T) {
	if testing.Short() {
		t.Skip("timing test")
	}
	multi, _, _ := DF(Config{N: 256, Iters: 60, Nodes: 4})
	single, _, _ := DF(Config{N: 256, Iters: 60, Nodes: 4, SinglePool: true})
	if multi.Elapsed >= single.Elapsed {
		t.Fatalf("multi-pool %.2fs not faster than single-pool %.2fs",
			multi.Seconds(), single.Seconds())
	}
}

// Implicit-invalidate must beat write-invalidate (Figure 11 vs Figure 5:
// 3%/6% on 4/8 nodes).
func TestImplicitInvalidateBeatsWriteInvalidate(t *testing.T) {
	if testing.Short() {
		t.Skip("timing test")
	}
	ii, _, _ := DF(Config{N: 256, Iters: 60, Nodes: 4, Protocol: filaments.ImplicitInvalidate})
	wi, _, _ := DF(Config{N: 256, Iters: 60, Nodes: 4, Protocol: filaments.WriteInvalidate})
	if ii.Elapsed >= wi.Elapsed {
		t.Fatalf("implicit-invalidate %.2fs not faster than write-invalidate %.2fs",
			ii.Seconds(), wi.Seconds())
	}
}

// Automatic pool clustering (the paper's future-work extension) must be
// correct and cluster each node's filaments into a handful of pools.
func TestAutoPoolsCorrect(t *testing.T) {
	want := Reference(64, 20)
	_, got, cl := DF(Config{N: 64, Iters: 20, Nodes: 4, AutoPools: true})
	if err := gridEqual(got, want); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 4; i++ {
		// After adaptive consolidation only the faulting signatures keep
		// their own pools: 1 for the edge nodes, 2 for interior nodes.
		np := cl.Runtime(i).AutoPoolCount()
		want := 2
		if i == 0 || i == 3 {
			want = 1
		}
		if np != want {
			t.Fatalf("node %d: %d signature pools after consolidation, want %d", i, np, want)
		}
	}
}

// Auto pools must retain the overlap benefit: beat the single-pool layout
// once the one-time clustering cost (a noisier initial distribution, then
// consolidation) has amortized.
func TestAutoPoolsOverlap(t *testing.T) {
	if testing.Short() {
		t.Skip("timing test")
	}
	auto, _, _ := DF(Config{N: 256, Iters: 150, Nodes: 4, AutoPools: true})
	single, _, _ := DF(Config{N: 256, Iters: 150, Nodes: 4, SinglePool: true})
	if auto.Elapsed >= single.Elapsed {
		t.Fatalf("auto pools %.2fs not faster than single pool %.2fs",
			auto.Seconds(), single.Seconds())
	}
}

// After the sharing pattern stabilizes, the runtime must have consolidated
// the non-faulting pools: one pool per faulting edge plus one local pool.
func TestAutoPoolsConsolidate(t *testing.T) {
	_, _, cl := DF(Config{N: 256, Iters: 20, Nodes: 4, AutoPools: true})
	for i := 1; i < 3; i++ { // interior nodes: 2 edge pools + 1 local
		order := cl.Runtime(i).PoolOrder()
		if len(order) != 3 {
			t.Fatalf("node %d: %d pools after consolidation: %v", i, len(order), order)
		}
	}
}
