// Package jacobi implements the paper's Jacobi iteration experiment (§4.2,
// Figures 5, 10, 11, 12): solving Laplace's equation on an n×n grid by
// repeatedly replacing each interior point with the average of its four
// neighbours, double-buffered, with a convergence reduction every
// iteration.
//
// The DF program uses iterative filaments — one per interior point — in
// three pools per node: the strip's top row, its bottom row, and the
// interior. Only the top and bottom pools fault (on the neighbouring
// strip's edge page), so running them first frontloads the faults and the
// interior pool's computation overlaps the fetches completely. The default
// protocol is implicit-invalidate: the read-only copies of edge pages die
// at the per-iteration reduction, so no invalidation traffic exists.
//
// Both grids are initialized by (and initially owned by) the master; the
// other nodes acquire their strips by ordinary write faults during the
// first iterations, which is the paper's "master services all the initial
// page requests".
package jacobi

import (
	"filaments"
	"filaments/internal/cost"
	"filaments/internal/msg"
	"filaments/internal/rtnode"
	"filaments/internal/simnet"
)

// The real-time binding serializes payloads with gob; the CG program
// ships grid strips through msg's envelope.
func init() {
	rtnode.RegisterWire([][]float64(nil))
}

// Config parameterizes a run.
type Config struct {
	// N is the grid dimension (the paper uses 256).
	N int
	// Iters is the number of iterations (the paper converged after 360
	// with epsilon 1e-3).
	Iters int
	// Nodes is the cluster size.
	Nodes int
	// Protocol for the DF variant; default implicit-invalidate (Figure 5).
	// Write-invalidate reproduces Figure 11.
	Protocol filaments.Protocol
	// SinglePool disables the three-pool structure (and with it the
	// overlap of communication and computation), reproducing Figure 12.
	SinglePool bool
	// UseMigratory forces the migratory protocol (the Protocol field's
	// zero value means "app default", i.e. implicit-invalidate).
	UseMigratory bool
	// AutoPools lets the runtime cluster filaments into pools by fault
	// signature instead of using the hand-written top/bottom/interior
	// assignment (the paper's future-work automation).
	AutoPools bool
	// LossRate injects network frame loss into the DF variant.
	LossRate float64
	// Seed for the simulation.
	Seed int64
	// Tracer, when non-nil, records kernel trace events from the DF
	// variants (sim and UDP).
	Tracer *filaments.Tracer
	// Monitor, when non-nil, observes the DF variants' DSM accesses and
	// synchronization events (the cmd/dfcheck seam).
	Monitor filaments.Monitor
	// MirageWindow overrides the Mirage anti-thrashing window in the DF
	// variants: 0 keeps the model default, negative disables it.
	MirageWindow filaments.Duration
	// Tuning collects the wall-clock wire-path knobs for the UDP variants
	// (codec, page diffs, event batching); ignored by the simulation.
	Tuning filaments.UDPTuning
}

func (c *Config) defaults() {
	if c.N == 0 {
		c.N = 256
	}
	if c.Iters == 0 {
		c.Iters = 360
	}
	if c.Nodes == 0 {
		c.Nodes = 1
	}
	if c.Protocol == filaments.Migratory {
		c.Protocol = filaments.ImplicitInvalidate
	}
}

// boundary gives the fixed boundary values: a hot top edge, cold sides and
// bottom.
func boundary(i, j, n int) float64 {
	if i == 0 {
		return 100
	}
	return 0
}

// Reference runs the iteration in plain Go for verification.
func Reference(n, iters int) [][]float64 {
	src, dst := freshGrids(n)
	for it := 0; it < iters; it++ {
		for i := 1; i < n-1; i++ {
			for j := 1; j < n-1; j++ {
				dst[i][j] = 0.25 * (src[i-1][j] + src[i+1][j] + src[i][j-1] + src[i][j+1])
			}
		}
		src, dst = dst, src
	}
	return src
}

func freshGrids(n int) (src, dst [][]float64) {
	src = make([][]float64, n)
	dst = make([][]float64, n)
	for i := 0; i < n; i++ {
		src[i] = make([]float64, n)
		dst[i] = make([]float64, n)
		for j := 0; j < n; j++ {
			src[i][j] = boundary(i, j, n)
			dst[i][j] = boundary(i, j, n)
		}
	}
	return src, dst
}

// Sequential runs the distinct single-node program.
func Sequential(cfg Config) (*filaments.Report, [][]float64) {
	cfg.defaults()
	n, iters := cfg.N, cfg.Iters
	var out [][]float64
	c := filaments.New(filaments.Config{Nodes: 1, Seed: cfg.Seed})
	rep, err := c.Run(func(rt *filaments.Runtime, e *filaments.Exec) {
		src, dst := freshGrids(n)
		for it := 0; it < iters; it++ {
			for i := 1; i < n-1; i++ {
				for j := 1; j < n-1; j++ {
					dst[i][j] = 0.25 * (src[i-1][j] + src[i+1][j] + src[i][j-1] + src[i][j+1])
				}
				e.Compute(filaments.Duration(n-2) * cost.JacobiPointCost)
			}
			src, dst = dst, src
		}
		out = src
	})
	if err != nil {
		panic(err)
	}
	return rep, out
}

// CoarseGrain runs the explicit message-passing program: each node holds
// its strip plus ghost rows and, per iteration, sends edges, updates the
// interior, receives edges, updates the edge rows, and checks termination —
// the paper's maximal-overlap structure.
func CoarseGrain(cfg Config) (*filaments.Report, [][]float64) {
	cfg.defaults()
	n, iters, p := cfg.N, cfg.Iters, cfg.Nodes
	if p == 1 {
		return Sequential(cfg)
	}
	var out [][]float64
	cl := filaments.New(filaments.Config{Nodes: p, Seed: cfg.Seed})
	const (
		tagDown = iota // edge row travelling to the higher-numbered node
		tagUp
		tagGather
	)
	rowBytes := n * 8
	rep, err := cl.Run(func(rt *filaments.Runtime, e *filaments.Exec) {
		me := rt.ID()
		mx := msg.New(rt.Node(), rt.Endpoint())
		lo, hi := computeRange(me, n, p)
		// Local rows lo-1 .. hi: strip plus ghost rows.
		rows := hi - lo + 2
		src := make([][]float64, rows)
		dst := make([][]float64, rows)
		for r := 0; r < rows; r++ {
			src[r] = make([]float64, n)
			dst[r] = make([]float64, n)
			for j := 0; j < n; j++ {
				src[r][j] = boundary(lo-1+r, j, n)
				dst[r][j] = boundary(lo-1+r, j, n)
			}
		}
		up, down := me-1, me+1
		update := func(r int) { // r is a local row index
			for j := 1; j < n-1; j++ {
				dst[r][j] = 0.25 * (src[r-1][j] + src[r+1][j] + src[r][j-1] + src[r][j+1])
			}
			e.Compute(filaments.Duration(n-2) * cost.JacobiPointCost)
		}
		for it := 0; it < iters; it++ {
			// Send edges.
			if up >= 0 {
				mx.Send(simnet.NodeID(up), tagUp, src[1], rowBytes)
			}
			if down < p {
				mx.Send(simnet.NodeID(down), tagDown, src[rows-2], rowBytes)
			}
			// Update interior points (overlapping the edge exchange).
			for r := 2; r < rows-2; r++ {
				update(r)
			}
			// Receive edges.
			if up >= 0 {
				copy(src[0], mx.Recv(e.Thread(), simnet.NodeID(up), tagDown).([]float64))
			}
			if down < p {
				copy(src[rows-1], mx.Recv(e.Thread(), simnet.NodeID(down), tagUp).([]float64))
			}
			// Update edge rows.
			update(1)
			if rows-2 != 1 {
				update(rows - 2)
			}
			// Check for termination.
			e.Barrier()
			src, dst = dst, src
		}
		// Gather the result at the master (untimed in the paper; kept
		// after the final barrier here as well).
		if me == 0 {
			out = make([][]float64, n)
			for i := 0; i < n; i++ {
				out[i] = make([]float64, n)
				for j := 0; j < n; j++ {
					out[i][j] = boundary(i, j, n)
				}
			}
			for r := 1; r <= hi-lo; r++ {
				copy(out[lo-1+r], src[r])
			}
			for k := 1; k < p; k++ {
				klo, khi := computeRange(k, n, p)
				part := mx.Recv(e.Thread(), simnet.NodeID(k), tagGather).([][]float64)
				for r := 0; r < khi-klo; r++ {
					copy(out[klo+r], part[r])
				}
			}
		} else {
			mx.Send(0, tagGather, src[1:rows-1], (hi-lo)*rowBytes)
		}
	})
	if err != nil {
		panic(err)
	}
	return rep, out
}

// DF runs the Distributed Filaments program: iterative filaments, one per
// interior point, three pools per node (or one with cfg.SinglePool).
func DF(cfg Config) (*filaments.Report, [][]float64, *filaments.Cluster) {
	cfg.defaults()
	n, iters, p := cfg.N, cfg.Iters, cfg.Nodes
	proto := cfg.Protocol
	if cfg.UseMigratory {
		proto = filaments.Migratory
	}
	cl := filaments.New(filaments.Config{
		Nodes:        p,
		Seed:         cfg.Seed,
		Protocol:     proto,
		LossRate:     cfg.LossRate,
		Tracer:       cfg.Tracer,
		Monitor:      cfg.Monitor,
		MirageWindow: cfg.MirageWindow,
	})
	ga := cl.AllocMatrixOwned(n, n, 0)
	gb := cl.AllocMatrixOwned(n, n, 0)
	rep, err := cl.Run(dfProgram(cfg, ga, gb))
	if err != nil {
		panic(err)
	}
	final := ga
	if iters%2 == 1 {
		final = gb
	}
	return rep, cl.PeekMatrix(final), cl
}

// dfProgram is the DF node program shared by every binding: the simulated
// cluster (DF) and the real-time UDP cluster (DFUDP) run exactly this
// code. cfg must already be defaulted.
func dfProgram(cfg Config, ga, gb filaments.Matrix) filaments.Program {
	n, iters, p := cfg.N, cfg.Iters, cfg.Nodes
	return func(rt *filaments.Runtime, e *filaments.Exec) {
		me := rt.ID()
		d := rt.DSM()
		if me == 0 {
			e.NoteWrite(filaments.Range{Lo: ga.Addr(0, 0), Hi: ga.Addr(n-1, n-1) + 8})
			e.NoteWrite(filaments.Range{Lo: gb.Addr(0, 0), Hi: gb.Addr(n-1, n-1) + 8})
			for i := 0; i < n; i++ {
				for j := 0; j < n; j++ {
					v := boundary(i, j, n)
					d.WriteF64(e.Thread(), ga.Addr(i, j), v)
					d.WriteF64(e.Thread(), gb.Addr(i, j), v)
				}
			}
		}
		e.Barrier()

		lo, hi := computeRange(me, n, p)
		// Node-local iteration state captured by the filament function:
		// the grids swap every sweep.
		state := struct {
			src, dst filaments.Matrix
			maxDiff  float64
		}{ga, gb, 0}
		point := func(e *filaments.Exec, a filaments.Args) {
			i, j := int(a[0]), int(a[1])
			v := 0.25 * (e.ReadF64(state.src.Addr(i-1, j)) +
				e.ReadF64(state.src.Addr(i+1, j)) +
				e.ReadF64(state.src.Addr(i, j-1)) +
				e.ReadF64(state.src.Addr(i, j+1)))
			if d := v - e.ReadF64(state.src.Addr(i, j)); d > state.maxDiff {
				state.maxDiff = d
			} else if -d > state.maxDiff {
				state.maxDiff = -d
			}
			e.WriteF64(state.dst.Addr(i, j), v)
			e.Compute(cost.JacobiPointCost)
		}
		addRows := func(pool *filaments.Pool, r0, r1 int) {
			for i := r0; i < r1; i++ {
				for j := 1; j < n-1; j++ {
					pool.Add(e, point, filaments.Args{int64(i), int64(j)})
				}
			}
		}
		// Pool boundaries follow *page* boundaries, not single rows: the
		// strip's first and last pages hold the rows that share a page
		// with data a neighbour reads, so every filament that can fault —
		// on a read of the neighbour's edge or on a write-upgrade of a
		// downgraded edge page under write-invalidate — lives in the top
		// or bottom pool, and the interior pool never faults. This is the
		// paper's rule that "the filaments within a node should be
		// assigned to pools so that faults are minimized and good overlap
		// ... is achieved".
		rowsPerPage := dsmPageRows(n)
		topEnd := lo + rowsPerPage - lo%rowsPerPage
		botStart := hi - 1 - (hi-1)%rowsPerPage
		if cfg.AutoPools {
			// The runtime clusters by fault signature: every filament
			// declares the rows it touches and filaments sharing the same
			// page set land in one pool.
			for i := lo; i < hi; i++ {
				for j := 1; j < n-1; j++ {
					rt.AddAuto(e, point, filaments.Args{int64(i), int64(j)},
						ga.Addr(i-1, 0), ga.Addr(i+1, 0), ga.Addr(i, 0),
						gb.Addr(i-1, 0), gb.Addr(i+1, 0), gb.Addr(i, 0))
				}
			}
		} else if cfg.SinglePool || topEnd >= botStart || hi-lo < 3 {
			all := rt.NewPool("all")
			addRows(all, lo, hi)
		} else {
			// The faulting pools are created first so the very first
			// sweep already starts them first; afterwards the pool stack
			// keeps the faulting pools frontloaded.
			top := rt.NewPool("top")
			bottom := rt.NewPool("bottom")
			interior := rt.NewPool("interior")
			addRows(top, lo, topEnd)
			addRows(bottom, botStart, hi)
			addRows(interior, topEnd, botStart)
		}
		for it := 0; it < iters; it++ {
			state.maxDiff = 0
			// Declared extents for the memory-model checker: this sweep
			// reads its strip plus the neighbours' edge rows of src and
			// writes its own strip of dst.
			e.NoteRead(filaments.Range{Lo: state.src.Addr(lo-1, 0), Hi: state.src.Addr(hi, n-1) + 8})
			e.NoteWrite(filaments.Range{Lo: state.dst.Addr(lo, 0), Hi: state.dst.Addr(hi-1, n-1) + 8})
			rt.RunPools(e)
			// The convergence reduction doubles as the barrier (and, under
			// implicit-invalidate, drops the edge-page copies). The paper's
			// run converged (< 1e-3) at exactly its 360 iterations; we run
			// the configured count and report the residual to the caller
			// through the grid itself.
			e.Reduce(state.maxDiff, filaments.Max)
			state.src, state.dst = state.dst, state.src
		}
	}
}

// udpHost is the slice of the UDPCluster/UDPRun surface the program
// needs; both satisfy it, so the single-program form (DFUDP) and the
// service form (DFOn, one job on a live daemon cluster) share one body.
type udpHost interface {
	AllocMatrixOwned(rows, cols, owner int) filaments.Matrix
	Run(filaments.Program) (*filaments.UDPReport, error)
	PeekMatrix(filaments.Matrix) [][]float64
}

// dfOn allocates the grids on h, runs the DF program, and peeks the
// final grid. cfg must already be defaulted.
func dfOn(cfg Config, h udpHost) (*filaments.UDPReport, [][]float64, error) {
	n := cfg.N
	ga := h.AllocMatrixOwned(n, n, 0)
	gb := h.AllocMatrixOwned(n, n, 0)
	rep, err := h.Run(dfProgram(cfg, ga, gb))
	if err != nil {
		return rep, nil, err
	}
	final := ga
	if cfg.Iters%2 == 1 {
		final = gb
	}
	return rep, h.PeekMatrix(final), nil
}

// DFUDP runs the same DF program on a single-process real-time cluster:
// every node is a set of goroutines with its own UDP endpoint on
// loopback. The returned grid is bitwise-identical to Reference's (both
// evaluate 0.25*(up+down+left+right) over identical inputs in identical
// order), so callers verify with exact comparison.
func DFUDP(cfg Config) (*filaments.UDPReport, [][]float64, *filaments.UDPCluster, error) {
	cfg.defaults()
	proto := cfg.Protocol
	if cfg.UseMigratory {
		proto = filaments.Migratory
	}
	cl, err := filaments.NewUDPCluster(filaments.UDPConfig{
		Nodes:        cfg.Nodes,
		Protocol:     proto,
		Tracer:       cfg.Tracer,
		Monitor:      cfg.Monitor,
		MirageWindow: cfg.MirageWindow,
		Tuning:       cfg.Tuning,
	})
	if err != nil {
		return nil, nil, nil, err
	}
	rep, grid, err := dfOn(cfg, cl)
	if err != nil {
		return nil, nil, nil, err
	}
	return rep, grid, cl, nil
}

// DFOn runs the DF program as one job on a live service cluster's run
// (internal/cluster/daemon submits jobs here). Cluster-wide settings —
// protocol, tracing, codec — were fixed when the run was started; cfg
// supplies the problem shape. The grid is bitwise-identical to
// Reference's, exactly as under DFUDP.
func DFOn(cfg Config, run *filaments.UDPRun) (*filaments.UDPReport, [][]float64, error) {
	cfg.Nodes = run.Nodes()
	cfg.defaults()
	return dfOn(cfg, run)
}

// DFNode runs the same DF program as one node of a multi-process cluster
// (cmd/dfnode): every process calls this with its own UDPNode and the
// identical Config. The result is verified in-program — each node checks
// its n/p-row strip of the final grid against the sequential reference and
// the per-node mismatch counts are combined by a Sum reduction (the sum of
// small integers is exact and order-independent in float64), so every node
// returns the cluster-wide mismatch total.
func DFNode(cfg Config, u *filaments.UDPNode) (*filaments.UDPNodeReport, int, error) {
	cfg.defaults()
	n, p := cfg.N, cfg.Nodes
	ga := u.AllocMatrixOwned(n, n, 0)
	gb := u.AllocMatrixOwned(n, n, 0)
	prog := dfProgram(cfg, ga, gb)
	var mismatches float64
	rep, err := u.Run(func(rt *filaments.Runtime, e *filaments.Exec) {
		prog(rt, e)
		final := ga
		if cfg.Iters%2 == 1 {
			final = gb
		}
		want := Reference(n, cfg.Iters)
		me := rt.ID()
		var bad float64
		for i := me * n / p; i < (me+1)*n/p; i++ {
			for j := 0; j < n; j++ {
				if e.ReadF64(final.Addr(i, j)) != want[i][j] {
					bad++
				}
			}
		}
		mismatches = e.Reduce(bad, filaments.Sum)
	})
	return rep, int(mismatches), err
}

// dsmPageRows returns how many grid rows share one DSM page.
func dsmPageRows(n int) int {
	r := filaments.PageSize / (8 * n)
	if r < 1 {
		r = 1
	}
	return r
}

// computeRange returns the interior rows [lo, hi) node k updates: its
// n/p-row ownership strip intersected with the interior. Strips cover
// whole rows so that, for power-of-two clusters, strip boundaries coincide
// with page boundaries and no page has two writers.
func computeRange(k, n, p int) (int, int) {
	per := n / p
	lo := k * per
	hi := lo + per
	if k == p-1 {
		hi = n
	}
	if lo < 1 {
		lo = 1
	}
	if hi > n-1 {
		hi = n - 1
	}
	return lo, hi
}
