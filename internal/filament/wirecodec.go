package filament

import (
	"filaments/internal/kernel"
	"filaments/internal/rtnode"
)

// Binary wire codecs for the fork/join messages (tags 24–27; see the tag
// map in rtnode/codec.go). Forks and steals are the paper's fine-grain
// hot path: a forkMsg is ~20 bytes on the wire, so codec overhead — not
// bandwidth — is what these encoders remove.
func init() {
	rtnode.RegisterWireCodec(forkMsg{}, 24,
		func(e *rtnode.Enc, v any) { encTask(e, v.(forkMsg).T) },
		func(d *rtnode.Dec) any { return forkMsg{T: decTask(d)} })
	rtnode.RegisterWireCodec(resultMsg{}, 25,
		func(e *rtnode.Enc, v any) {
			m := v.(resultMsg)
			e.Varint(m.JoinID)
			e.F64(m.Value)
			e.Varint(int64(m.Fn))
			e.Uvarint(m.Sum)
		},
		func(d *rtnode.Dec) any {
			var m resultMsg
			m.JoinID = d.Varint()
			m.Value = d.F64()
			m.Fn = int32(d.Varint())
			m.Sum = d.Uvarint()
			return m
		})
	rtnode.RegisterWireCodec(stealReply{}, 26,
		func(e *rtnode.Enc, v any) {
			r := v.(stealReply)
			e.Bool(r.Granted)
			encTask(e, r.T)
		},
		func(d *rtnode.Dec) any {
			var r stealReply
			r.Granted = d.Bool()
			r.T = decTask(d)
			return r
		})
	rtnode.RegisterWireCodec(doneMsg{}, 27,
		func(e *rtnode.Enc, v any) { e.F64(v.(doneMsg).Result) },
		func(d *rtnode.Dec) any { return doneMsg{Result: d.F64()} })
}

//dflint:hotpath
func encTask(e *rtnode.Enc, t task) {
	e.Varint(int64(t.Fn))
	for _, a := range t.Args {
		e.Varint(a)
	}
	e.Varint(int64(t.Origin))
	e.Varint(t.JoinID)
}

//dflint:hotpath
func decTask(d *rtnode.Dec) task {
	var t task
	t.Fn = int32(d.Varint())
	for i := range t.Args {
		t.Args[i] = d.Varint()
	}
	t.Origin = kernel.NodeID(d.Varint())
	t.JoinID = d.Varint()
	return t
}
