// Package filament implements the Filaments runtime, the paper's core
// contribution (§2): very lightweight, stackless threads executed by a few
// stackful server threads per node.
//
// A filament is only a code pointer plus arguments — no private stack.
// Three kinds cover all the applications the paper examines:
//
//   - run-to-completion (RTC) filaments execute once (matrix
//     multiplication);
//   - iterative filaments execute repeatedly with a barrier between sweeps
//     (Jacobi iteration);
//   - fork/join filaments recursively fork children and wait for them
//     (adaptive quadrature, expression trees) — see forkjoin.go.
//
// RTC and iterative filaments are organized into pools, ideally grouping
// filaments that touch the same pages. Each pool is executed by a server
// thread; when a filament faults on a remote page its pool's thread
// suspends and another pool runs, overlapping the page fetch with useful
// computation. Pools that fault finish late and are pushed onto a stack,
// so the next iteration starts them first — the paper's fault
// frontloading.
//
// The package performs the paper's three optimizations: inlining (pool
// sweeps call the filament function in a loop rather than switching
// per-filament), pruning (fork/join forks become procedure calls once all
// nodes are busy), and pattern recognition (pools that form a contiguous
// 1-D or 2-D strip of filaments are detected on the fly and iterated with
// arguments generated in registers, i.e. without touching descriptors).
package filament

import (
	"reflect"
	"sort"
	"strconv"
	"strings"

	"filaments/internal/dsm"
	"filaments/internal/kernel"
	"filaments/internal/obs"
	"filaments/internal/reduce"
)

// Args is a filament's argument record. Filaments have no stack, only
// these values (floats are passed via math.Float64bits).
type Args [6]int64

// Func is the body of an RTC or iterative filament.
type Func func(e *Exec, a Args)

// flushQuantum bounds how much computed virtual time may accumulate before
// it is charged and pending messages are serviced — the simulation's
// analogue of SIGIO granularity.
const flushQuantum = kernel.Millisecond

// Stats counts runtime events on one node.
type Stats struct {
	FilamentsCreated int64
	FilamentsRun     int64
	InlinedRun       int64 // subset of FilamentsRun executed via strip recognition
	ForksSent        int64 // initial-distribution forks shipped to children
	ForksKept        int64 // forks kept as local filaments
	ForksPruned      int64 // forks turned into procedure calls
	StealsAttempted  int64
	StealsGranted    int64 // tasks this node stole
	StealsDenied     int64 // denials received
	TasksExecuted    int64 // fork/join tasks run
}

// Runtime is one node's Filaments instance.
type Runtime struct {
	node kernel.Node
	ep   kernel.Transport
	d    *dsm.DSM
	red  *reduce.Reducer
	n    int // cluster size

	pools []*Pool
	order []*Pool // run order for the next sweep (fault frontloading)
	// autoPools maps a fault signature (sorted touched-block list) to its
	// automatically created pool.
	autoPools map[string]*Pool
	// autoConsolidated is set once the observed faults have been used to
	// merge the never-faulting auto pools into one; sweeps counts RunPools
	// calls so consolidation skips the first sweep, whose faults are the
	// one-time initial data acquisition.
	autoConsolidated bool
	sweeps           int

	// MaxWorkers caps the fork/join server threads spawned on demand.
	MaxWorkers int
	// Stealing enables receiver-initiated dynamic load balancing (§2.3).
	Stealing bool

	fj fjState

	obs *obs.Obs
	ctr counters
}

// counters caches this node's registered runtime counters. Updates are
// atomic, so Stats() snapshots race-free from any goroutine while
// transport handlers (fork grants, steal replies) are live.
type counters struct {
	created, run, inlined                        *obs.Counter
	forksSent, forksKept, forksPruned            *obs.Counter
	stealsAttempted, stealsGranted, stealsDenied *obs.Counter
	tasksExecuted                                *obs.Counter
}

// New creates the runtime for one node. All subsystems (endpoint, DSM,
// reducer) must already be wired to the node.
func New(node kernel.Node, ep kernel.Transport, d *dsm.DSM, red *reduce.Reducer, n int) *Runtime {
	o := obs.Of(node)
	rt := &Runtime{
		node:       node,
		ep:         ep,
		d:          d,
		red:        red,
		n:          n,
		MaxWorkers: 16,
		autoPools:  make(map[string]*Pool),
		obs:        o,
	}
	rt.ctr = counters{
		created:         o.Counter("fil.created"),
		run:             o.Counter("fil.run"),
		inlined:         o.Counter("fil.inlined"),
		forksSent:       o.Counter("fil.forks_sent"),
		forksKept:       o.Counter("fil.forks_kept"),
		forksPruned:     o.Counter("fil.forks_pruned"),
		stealsAttempted: o.Counter("fil.steals_attempted"),
		stealsGranted:   o.Counter("fil.steals_granted"),
		stealsDenied:    o.Counter("fil.steals_denied"),
		tasksExecuted:   o.Counter("fil.tasks_executed"),
	}
	rt.initForkJoin()
	return rt
}

// Node returns the runtime's node.
func (rt *Runtime) Node() kernel.Node { return rt.node }

// Endpoint returns the node's transport endpoint (CG programs attach
// their explicit-messaging port to its raw-datagram chain).
func (rt *Runtime) Endpoint() kernel.Transport { return rt.ep }

// DSM returns the runtime's shared memory instance.
func (rt *Runtime) DSM() *dsm.DSM { return rt.d }

// Reducer returns the runtime's reduction/barrier instance.
func (rt *Runtime) Reducer() *reduce.Reducer { return rt.red }

// Nodes returns the cluster size.
func (rt *Runtime) Nodes() int { return rt.n }

// ID returns this node's rank.
func (rt *Runtime) ID() int { return int(rt.node.ID()) }

// monitor returns the memory-model monitor attached to the shared space,
// or nil (the common case; programs without a DSM never have one).
func (rt *Runtime) monitor() dsm.Monitor {
	if rt.d == nil {
		return nil
	}
	return rt.d.Space().Monitor()
}

// Stats returns a snapshot of runtime counters. The counters are atomic,
// so the snapshot is safe to take from any goroutine during a live run.
func (rt *Runtime) Stats() Stats {
	return Stats{
		FilamentsCreated: rt.ctr.created.Load(),
		FilamentsRun:     rt.ctr.run.Load(),
		InlinedRun:       rt.ctr.inlined.Load(),
		ForksSent:        rt.ctr.forksSent.Load(),
		ForksKept:        rt.ctr.forksKept.Load(),
		ForksPruned:      rt.ctr.forksPruned.Load(),
		StealsAttempted:  rt.ctr.stealsAttempted.Load(),
		StealsGranted:    rt.ctr.stealsGranted.Load(),
		StealsDenied:     rt.ctr.stealsDenied.Load(),
		TasksExecuted:    rt.ctr.tasksExecuted.Load(),
	}
}

// Exec is the execution context a filament runs in: the server thread plus
// an accumulator that batches virtual-time charges so that very small
// filaments do not pay a scheduling event each (the real machine equally
// charges time continuously, not per filament).
type Exec struct {
	rt      *Runtime
	t       kernel.Thread
	pending kernel.Duration // uncharged CatWork time
	filPend kernel.Duration // uncharged CatFilament overhead
	faulted bool            // a DSM access missed during this context's run
}

// NewExec wraps a server thread in an execution context.
func (rt *Runtime) NewExec(t kernel.Thread) *Exec { return &Exec{rt: rt, t: t} }

// Thread returns the underlying server thread.
func (e *Exec) Thread() kernel.Thread { return e.t }

// Runtime returns the owning runtime.
func (e *Exec) Runtime() *Runtime { return e.rt }

// Compute records d of application work. It is charged (and pending
// messages serviced) at the next flush point.
func (e *Exec) Compute(d kernel.Duration) {
	e.pending += d
	if e.pending >= flushQuantum {
		e.Flush()
	}
}

// overhead records filament-runtime overhead.
func (e *Exec) overhead(d kernel.Duration) { e.filPend += d }

// Flush charges all accumulated time and services pending messages.
// Large charges (a coarse filament's whole computation) are spent in
// quantum-sized slices with a dispatch point after each, so incoming
// requests are serviced with bounded latency exactly as SIGIO would
// interrupt a long computation on the real machine.
func (e *Exec) Flush() {
	for e.pending > 0 {
		d := e.pending
		if d > flushQuantum {
			d = flushQuantum
		}
		e.pending -= d
		e.rt.node.Charge(kernel.CatWork, d)
		e.t.Preempt()
	}
	if e.filPend > 0 {
		e.rt.node.Charge(kernel.CatFilament, e.filPend)
		e.filPend = 0
	}
	e.t.Preempt()
}

// --- DSM access. ---
//
// The wrappers flush accumulated work before an access that will fault, so
// virtual time is accurate at the moment the server thread suspends.

// ReadF64 reads a shared float64.
func (e *Exec) ReadF64(a dsm.Addr) float64 {
	if !e.rt.d.Readable(a) {
		e.faulted = true
		e.Flush()
	}
	return e.rt.d.ReadF64(e.t, a)
}

// WriteF64 writes a shared float64.
func (e *Exec) WriteF64(a dsm.Addr, v float64) {
	if !e.rt.d.Writable(a) {
		e.faulted = true
		e.Flush()
	}
	e.rt.d.WriteF64(e.t, a, v)
}

// ReadI64 reads a shared int64.
func (e *Exec) ReadI64(a dsm.Addr) int64 {
	if !e.rt.d.Readable(a) {
		e.faulted = true
		e.Flush()
	}
	return e.rt.d.ReadI64(e.t, a)
}

// WriteI64 writes a shared int64.
func (e *Exec) WriteI64(a dsm.Addr, v int64) {
	if !e.rt.d.Writable(a) {
		e.faulted = true
		e.Flush()
	}
	e.rt.d.WriteI64(e.t, a, v)
}

// NoteRead declares a shared range this node is about to read, for the
// memory-model checker (see dsm.Monitor). A no-op without a monitor.
func (e *Exec) NoteRead(r dsm.Range) { e.rt.d.NoteRead(r) }

// NoteWrite declares a shared range this node is about to write.
func (e *Exec) NoteWrite(r dsm.Range) { e.rt.d.NoteWrite(r) }

// Reduce flushes and performs a cluster-wide reduction (a barrier point).
func (e *Exec) Reduce(x float64, op reduce.Op) float64 {
	e.Flush()
	return e.rt.red.Reduce(e.t, x, op)
}

// Barrier flushes and waits for all nodes.
func (e *Exec) Barrier() {
	e.Flush()
	e.rt.red.Barrier(e.t)
}

// --- Pools of RTC / iterative filaments. ---

type fil struct {
	fn   Func
	args Args
}

// Pool is a collection of filaments that ideally reference the same pages.
// Assigning filaments to pools well is the programmer's (or compiler's)
// job, per the paper.
type Pool struct {
	rt   *Runtime
	name string
	fils []fil

	// Strip pattern recognition (paper §2.1): a pool whose filaments share
	// one function and whose args form a row-major 1-D/2-D lattice is
	// executed by an inline loop generating arguments directly.
	patOK    bool
	patFn    Func
	patFnPtr uintptr
	patBase  Args
	patWidth int // columns per row once detected; 0 while still 1-D
}

// NewPool creates an empty pool.
func (rt *Runtime) NewPool(name string) *Pool {
	p := &Pool{rt: rt, name: name, patOK: true}
	rt.pools = append(rt.pools, p)
	rt.order = append(rt.order, p)
	return p
}

// Name returns the pool's name.
func (p *Pool) Name() string { return p.name }

// Size returns the number of filaments in the pool.
func (p *Pool) Size() int { return len(p.fils) }

// Add appends a filament. Creation cost is charged (batched) to the
// caller's context.
func (p *Pool) Add(e *Exec, fn Func, args Args) {
	p.recognize(fn, args)
	p.fils = append(p.fils, fil{fn: fn, args: args})
	p.rt.ctr.created.Inc()
	e.overhead(p.rt.node.Model().FilamentCreate)
	if e.filPend >= flushQuantum {
		e.Flush()
	}
}

// recognize updates the strip-pattern state machine with the next
// filament. The recognized pattern is args laid out row-major:
// (i0+k/w, j0+k%w, c2, c3).
func (p *Pool) recognize(fn Func, args Args) {
	if !p.patOK {
		return
	}
	k := len(p.fils)
	if k == 0 {
		p.patFn = fn
		p.patFnPtr = reflect.ValueOf(fn).Pointer()
		p.patBase = args
		return
	}
	if reflect.ValueOf(fn).Pointer() != p.patFnPtr {
		p.patOK = false
		return
	}
	for q := 2; q < len(args); q++ {
		if args[q] != p.patBase[q] {
			p.patOK = false
			return
		}
	}
	if p.patWidth == 0 {
		// Still scanning the first row.
		switch {
		case args[0] == p.patBase[0] && args[1] == p.patBase[1]+int64(k):
			return // continues the first row
		case args[0] == p.patBase[0]+1 && args[1] == p.patBase[1]:
			p.patWidth = k // first row had k columns
			return
		default:
			p.patOK = false
			return
		}
	}
	i := p.patBase[0] + int64(k/p.patWidth)
	j := p.patBase[1] + int64(k%p.patWidth)
	if args[0] != i || args[1] != j {
		p.patOK = false
	}
}

// Inlined reports whether the pool will run via the recognized strip
// pattern.
func (p *Pool) Inlined() bool { return p.patOK && len(p.fils) >= 2 }

// run executes every filament in the pool on the given context.
func (p *Pool) run(e *Exec) {
	model := p.rt.node.Model()
	if p.Inlined() {
		// Pattern-recognized strip: iterate generating args in
		// "registers"; descriptors are not read.
		w := p.patWidth
		if w == 0 {
			w = len(p.fils)
		}
		for k := range p.fils {
			a := p.patBase
			a[0] += int64(k / w)
			a[1] += int64(k % w)
			e.overhead(model.FilamentSwitchInlined)
			p.patFn(e, a)
			p.rt.ctr.run.Inc()
			p.rt.ctr.inlined.Inc()
			if e.pending+e.filPend >= flushQuantum {
				e.Flush()
			}
		}
		e.Flush()
		return
	}
	for _, f := range p.fils {
		e.overhead(model.FilamentSwitch)
		f.fn(e, f.args)
		p.rt.ctr.run.Inc()
		if e.pending+e.filPend >= flushQuantum {
			e.Flush()
		}
	}
	e.Flush()
}

// RunPools executes every pool once and returns when all have completed on
// this node. Pools run in frontloaded order: pools that faulted during the
// previous sweep (and therefore finished late) run first this time. Woken
// threads go to the back of the ready queue (dsm.WakeFront=false is the
// iterative setting), which together with the pool stack maximizes the
// overlap of communication and computation.
func (rt *Runtime) RunPools(e *Exec) {
	e.Flush()
	order := rt.order
	live := 0
	for _, p := range order {
		if len(p.fils) > 0 {
			live++
		}
	}
	if live == 0 {
		return
	}
	type done struct {
		p       *Pool
		faulted bool
	}
	var completed []done
	remaining := live
	waiter := e.t
	waiting := false
	for _, p := range order {
		if len(p.fils) == 0 {
			continue
		}
		p := p
		rt.node.Spawn("pool/"+p.name, func(t kernel.Thread) {
			pe := rt.NewExec(t)
			p.run(pe)
			completed = append(completed, done{p: p, faulted: pe.faulted})
			remaining--
			if remaining == 0 && waiting {
				waiting = false
				rt.node.Ready(waiter, false)
			}
		})
	}
	for remaining > 0 {
		waiting = true
		waiter.Block()
	}
	waiting = false
	// Next sweep runs every pool that faulted first (the paper: "all
	// faulting pools are run first"), newest completion first so the pool
	// that waited longest issues its request earliest; non-faulting pools
	// follow in their completion order.
	next := make([]*Pool, 0, len(rt.order))
	for i := len(completed) - 1; i >= 0; i-- {
		if completed[i].faulted {
			next = append(next, completed[i].p)
		}
	}
	for i := 0; i < len(completed); i++ {
		if !completed[i].faulted {
			next = append(next, completed[i].p)
		}
	}
	for _, p := range rt.order {
		if len(p.fils) == 0 {
			next = append(next, p)
		}
	}
	rt.order = next

	// Adaptive consolidation for automatically clustered pools (the
	// paper's future work: "adaptive algorithms for making both of these
	// decisions within DF at run time"): after the first sweep has shown
	// which pools actually fault, all never-faulting auto pools merge
	// into a single local pool, leaving one pool per fault signature plus
	// one big pool whose computation overlaps the fetches.
	rt.sweeps++
	if len(rt.autoPools) > 1 && !rt.autoConsolidated {
		faulted := make(map[*Pool]bool, len(completed))
		anyClean, anyFaulted := false, false
		for _, c := range completed {
			faulted[c.p] = c.faulted
			if c.faulted {
				anyFaulted = true
			} else {
				anyClean = true
			}
		}
		// Wait until the sharing pattern has stabilized: during the first
		// sweeps either every pool faults (a node pulling its strips in)
		// or none does (the node that owns all the data initially), and
		// neither says anything about steady-state sharing. A sweep with
		// both faulting and clean pools is the signature of the stable
		// pattern.
		if anyClean && anyFaulted {
			rt.autoConsolidated = true
			rt.consolidateAutoPools(e, faulted)
		}
	}
}

// consolidateAutoPools merges the auto pools that did not fault during the
// last sweep into one pool, re-adding their filaments in creation order so
// strip recognition still applies.
func (rt *Runtime) consolidateAutoPools(e *Exec, faulted map[*Pool]bool) {
	var local []*Pool
	for _, p := range rt.pools {
		if _, auto := rt.autoPools[strings.TrimPrefix(p.name, "auto:")]; auto && !faulted[p] {
			local = append(local, p)
		}
	}
	if len(local) < 2 {
		return
	}
	merged := rt.NewPool("auto-local")
	moved := 0
	for _, p := range local {
		for _, f := range p.fils {
			merged.recognize(f.fn, f.args)
			merged.fils = append(merged.fils, f)
			moved++
		}
		p.fils = nil
		delete(rt.autoPools, strings.TrimPrefix(p.name, "auto:"))
	}
	// Re-clustering walks every descriptor once.
	e.overhead(kernel.Duration(moved) * rt.node.Model().FilamentSwitch)
	// Drop the emptied pools from the run order and pool list.
	rt.order = dropEmpty(rt.order)
	rt.pools = dropEmpty(rt.pools)
}

func dropEmpty(ps []*Pool) []*Pool {
	out := ps[:0]
	for _, p := range ps {
		if len(p.fils) > 0 {
			out = append(out, p)
		}
	}
	return out
}

// AddAuto appends a filament to an automatically chosen pool, clustering
// filaments that share pages into the same pool — the automation the paper
// lists as future work ("automatic clustering of filaments that share
// pages into execution pools"). The clustering key is the set of shared-
// memory blocks the filament will touch, supplied by the caller as the
// addresses its arguments refer to; filaments with identical fault
// signatures land in one pool, so a fault suspends exactly the filaments
// that would fault on the same page, and fault frontloading orders the
// pools from the second sweep on.
func (rt *Runtime) AddAuto(e *Exec, fn Func, args Args, touches ...dsm.Addr) {
	key := rt.signature(touches)
	p, ok := rt.autoPools[key]
	if !ok {
		p = rt.NewPool("auto:" + key)
		rt.autoPools[key] = p
	}
	p.Add(e, fn, args)
}

// signature canonicalizes a touch set to its sorted list of block ids.
func (rt *Runtime) signature(touches []dsm.Addr) string {
	sp := rt.d.Space()
	blocks := make([]int, 0, len(touches))
	for _, a := range touches {
		b := sp.BlockOf(a)
		dup := false
		for _, x := range blocks {
			if x == b {
				dup = true
				break
			}
		}
		if !dup {
			blocks = append(blocks, b)
		}
	}
	sort.Ints(blocks)
	var sb strings.Builder
	for i, b := range blocks {
		if i > 0 {
			sb.WriteByte(',')
		}
		sb.WriteString(strconv.Itoa(b))
	}
	return sb.String()
}

// AutoPoolCount reports how many pools AddAuto has created.
func (rt *Runtime) AutoPoolCount() int { return len(rt.autoPools) }

// PoolOrder returns the names of the pools in the order the next sweep
// will run them (fault-frontloaded after the first sweep).
func (rt *Runtime) PoolOrder() []string {
	names := make([]string, len(rt.order))
	for i, p := range rt.order {
		names[i] = p.name
	}
	return names
}

// ResetPools clears all pools (filaments and recognition state), keeping
// the pool objects and their frontloaded order.
func (rt *Runtime) ResetPools() {
	for _, p := range rt.pools {
		p.fils = p.fils[:0]
		p.patOK = true
		p.patWidth = 0
	}
}
