package filament

import (
	"fmt"
	"math"

	"filaments/internal/dsm"
	"filaments/internal/kernel"
	"filaments/internal/obs"
	"filaments/internal/rtnode"
)

// Fork/join filaments (paper §2.3). A recursive computation starts on node
// 0; the initial distribution phase sends alternate forks down a binomial
// tree (Figure 2), doubling the number of busy nodes at each step. Once a
// node has fed all its children it keeps its forks, and pruning turns them
// into plain procedure calls when enough local work exists. Idle nodes
// optionally run receiver-initiated load balancing, stealing pending
// filaments round-robin.

// FJFunc is the body of a fork/join filament. It returns the filament's
// result value (applications with larger results place them in shared
// memory and return a token).
type FJFunc func(e *Exec, a Args) float64

// Packet services used by fork/join.
const (
	// SvcFork ships a filament to another node during initial
	// distribution.
	SvcFork kernel.ServiceID = 30 + iota
	// SvcResult returns a completed filament's value to its join's node.
	SvcResult
	// SvcSteal asks a victim for a pending filament.
	SvcSteal
)

const fjMsgSize = 20

// pruneThreshold is how many pending local filaments count as "enough work
// to keep the node busy", switching forks to procedure calls.
const pruneThreshold = 2

// stealBackoff is how long an idle node waits after a full unsuccessful
// round of steal requests before probing again.
const stealBackoff = 5 * kernel.Millisecond

type task struct {
	Fn     int32
	Args   Args
	Origin kernel.NodeID // node holding the join
	JoinID int64
}

type forkMsg struct{ T task }

type resultMsg struct {
	JoinID int64
	Value  float64
	// Fn and Sum echo the task's identity so the memory-model monitor can
	// pair this delivery with its OnResultShip event. The wire charge stays
	// fjMsgSize, so simulated timings are unchanged.
	Fn  int32
	Sum uint64
}

// A steal request carries no payload (the request itself is the probe);
// it travels as a nil payload so both bindings encode it as empty.

type stealReply struct {
	Granted bool
	T       task
}

type doneMsg struct{ Result float64 }

// The real-time binding serializes payloads with gob.
func init() {
	rtnode.RegisterWire(forkMsg{}, resultMsg{}, stealReply{}, doneMsg{})
}

// Join accumulates the results of forked children.
type Join struct {
	rt     *Runtime
	id     int64
	need   int
	have   int
	sum    float64
	waiter kernel.Thread
}

type worker struct {
	t        kernel.Thread
	parked   bool
	timedIdx int64 // nonzero while a timed wake is armed
}

// RangeFunc describes the shared-memory ranges one fork/join filament
// will touch, as a function of its arguments. Registered describers let
// the distributor auto-emit NoteRead/NoteWrite annotations for every
// filament it runs, at the filament's declared index range.
type RangeFunc func(a Args) (reads, writes []dsm.Range)

type fjState struct {
	funcs  []FJFunc
	ranges []RangeFunc

	children  []kernel.NodeID // binomial-tree children, nearest first
	nextChild int
	sendNext  bool // alternate send/keep during distribution

	pending []task // local deque: back = newest (LIFO for locals, FIFO for steals)
	joins   map[int64]*Join
	nextID  int64

	// joinWaiters are joins whose threads are blocked in Wait. Their Wait
	// loops drain pending work, so when every worker is busy or blocked
	// they are the remaining way to get an arriving filament executed.
	joinWaiters []*Join

	workers     []*worker
	idle        []*worker
	active      int
	stealVictim int
	stealing    bool // a steal probe is in flight (only one at a time)

	done       bool
	result     float64
	mainWaiter kernel.Thread
	exitWaiter kernel.Thread
	timedSeq   int64
}

func (rt *Runtime) initForkJoin() {
	fj := &rt.fj
	fj.joins = make(map[int64]*Join)
	fj.sendNext = true
	id := rt.ID()
	// Binomial-tree children (Figure 2): node i feeds i+2^j for every
	// 2^j > i, so in each step of the initial distribution the number of
	// nodes with work doubles and every node is fed exactly once.
	start := 1
	for start <= id {
		start <<= 1
	}
	for bit := start; id+bit < rt.n; bit <<= 1 {
		fj.children = append(fj.children, kernel.NodeID(id+bit))
	}
	fj.stealVictim = (id + 1) % rt.n

	rt.ep.Register(SvcFork, kernel.Service{
		Name: "fj-fork", Idempotent: false, Category: kernel.CatFilament,
		Handler: rt.serveFork,
	})
	rt.ep.Register(SvcResult, kernel.Service{
		Name: "fj-result", Idempotent: false, Category: kernel.CatFilament,
		Handler: rt.serveResult,
	})
	rt.ep.Register(SvcSteal, kernel.Service{
		Name: "fj-steal", Idempotent: false, Category: kernel.CatFilament,
		Handler: rt.serveSteal,
	})
	rt.ep.HandleRaw(rt.handleDone)
}

// RegisterFJ registers fn under an application-chosen small ID, identically
// on every node, so filaments can be shipped by ID.
func (rt *Runtime) RegisterFJ(id int, fn FJFunc) {
	fj := &rt.fj
	for len(fj.funcs) <= id {
		fj.funcs = append(fj.funcs, nil)
	}
	if fj.funcs[id] != nil {
		panic(fmt.Sprintf("filament: fork/join func %d registered twice", id))
	}
	fj.funcs[id] = fn
}

// RegisterFJRanges registers the range describer for the fork/join
// function with the given ID (identically on every node, like
// RegisterFJ). When a memory-model monitor is attached, every execution
// of the function is bracketed with the describer's declared ranges.
func (rt *Runtime) RegisterFJRanges(id int, fn RangeFunc) {
	fj := &rt.fj
	for len(fj.ranges) <= id {
		fj.ranges = append(fj.ranges, nil)
	}
	fj.ranges[id] = fn
}

// taskKey is the monitor identity of tk.
func taskKey(tk task) dsm.TaskKey {
	return dsm.TaskKey{Origin: tk.Origin, Join: tk.JoinID, Fn: tk.Fn, Sum: argsSum(tk.Args)}
}

// argsSum is an FNV-1a hash of the task arguments, used only to pair
// monitor events for tasks that share an origin, join, and function.
func argsSum(a Args) uint64 {
	const (
		offset64 = 14695981039346656037
		prime64  = 1099511628211
	)
	h := uint64(offset64)
	for _, v := range a {
		for i := 0; i < 8; i++ {
			h ^= uint64(v>>(8*i)) & 0xff
			h *= prime64
		}
	}
	return h
}

// callFJ invokes a fork/join body, bracketing it for the memory-model
// monitor with the ranges its registered describer declares. Without a
// monitor it is a plain call.
func (rt *Runtime) callFJ(e *Exec, fnID int32, args Args) float64 {
	m := rt.monitor()
	if m == nil {
		return rt.fj.funcs[fnID](e, args)
	}
	var reads, writes []dsm.Range
	if int(fnID) < len(rt.fj.ranges) && rt.fj.ranges[fnID] != nil {
		reads, writes = rt.fj.ranges[fnID](args)
	}
	now := rt.node.Now()
	m.OnFilamentBegin(rt.node.ID(), fmt.Sprintf("fj/%d%v", fnID, args), reads, writes, now)
	for _, r := range reads {
		m.OnNote(rt.node.ID(), r, false, now)
	}
	for _, r := range writes {
		m.OnNote(rt.node.ID(), r, true, now)
	}
	v := rt.fj.funcs[fnID](e, args)
	m.OnFilamentEnd(rt.node.ID(), rt.node.Now())
	return v
}

// NewJoin creates an empty join.
func (rt *Runtime) NewJoin() *Join {
	rt.fj.nextID++
	j := &Join{rt: rt, id: rt.fj.nextID}
	rt.fj.joins[j.id] = j
	return j
}

// Fork creates a child filament contributing to j. During the initial
// distribution phase alternate forks are shipped to the node's binomial
// children ("it sends one filament to its child and keeps the other");
// afterwards forks are pruned to procedure calls when enough local work
// exists, and otherwise become local (stealable) filaments.
func (rt *Runtime) Fork(e *Exec, j *Join, fnID int, args Args) {
	fj := &rt.fj
	j.need++
	tk := task{Fn: int32(fnID), Args: args, Origin: rt.node.ID(), JoinID: j.id}

	if fj.nextChild < len(fj.children) && fj.sendNext && rt.canShip() {
		fj.sendNext = false
		dst := fj.children[fj.nextChild]
		fj.nextChild++
		rt.ctr.forksSent.Inc()
		e.Flush()
		if m := rt.monitor(); m != nil {
			m.OnTaskShip(rt.node.ID(), dst, taskKey(tk), rt.node.Now())
		}
		rt.ep.RequestAsync(dst, SvcFork, forkMsg{T: tk}, fjMsgSize, kernel.CatFilament, func(any) {})
		return
	}
	if fj.nextChild < len(fj.children) {
		fj.sendNext = true // this one is kept; the next is sent
	} else if len(fj.pending) >= pruneThreshold {
		// Pruning: the fork becomes a procedure call, the join a return.
		rt.ctr.forksPruned.Inc()
		v := rt.callFJ(e, int32(fnID), args)
		e.Flush()
		j.deliver(v)
		return
	}
	rt.ctr.forksKept.Inc()
	rt.ctr.created.Inc()
	e.overhead(rt.node.Model().FilamentCreate)
	rt.enqueue(tk)
}

// Wait blocks until every forked child has delivered, returning the sum of
// their results. While waiting, the server thread executes pending local
// filaments — the recursion's sibling work — rather than idling.
func (j *Join) Wait(e *Exec) float64 {
	rt := j.rt
	for j.have < j.need {
		if tk, ok := rt.dequeueBack(); ok {
			rt.execTask(e, tk)
			continue
		}
		e.Flush()
		// Flush is a dispatch point: deliveries can land while it runs.
		// Re-check before parking, or a result that arrived mid-Flush
		// (before the waiter was registered) would never wake us.
		if j.have >= j.need {
			continue
		}
		j.waiter = e.t
		rt.fj.joinWaiters = append(rt.fj.joinWaiters, j)
		e.t.Block()
		for i, w := range rt.fj.joinWaiters {
			if w == j {
				rt.fj.joinWaiters = append(rt.fj.joinWaiters[:i], rt.fj.joinWaiters[i+1:]...)
				break
			}
		}
	}
	delete(rt.fj.joins, j.id)
	return j.sum
}

func (j *Join) deliver(v float64) {
	j.have++
	j.sum += v
	if j.have >= j.need && j.waiter != nil {
		w := j.waiter
		j.waiter = nil
		j.rt.node.Ready(w, true)
	}
}

// enqueue adds a local pending filament and makes sure a worker will run
// it.
func (rt *Runtime) enqueue(tk task) {
	rt.fj.pending = append(rt.fj.pending, tk)
	rt.ensureWorker()
}

func (rt *Runtime) dequeueBack() (task, bool) {
	fj := &rt.fj
	if len(fj.pending) == 0 {
		return task{}, false
	}
	tk := fj.pending[len(fj.pending)-1]
	fj.pending = fj.pending[:len(fj.pending)-1]
	return tk, true
}

// canShip reports whether fork/join tasks may move between nodes. Under
// lazy release consistency a task shipment is a synchronization edge the
// protocol does not flush on (only barriers are release points), so a
// shipped filament could read home frames that are missing its parent's
// unflushed writes. Programs that allocate shared memory therefore keep
// their filaments local under LRC — pure fork/join programs (no DSM
// blocks, e.g. quadrature) still distribute.
func (rt *Runtime) canShip() bool {
	return rt.d == nil || rt.d.Protocol() != dsm.LazyRelease || rt.d.Space().Blocks() == 0
}

func (rt *Runtime) dequeueFront() (task, bool) {
	fj := &rt.fj
	if len(fj.pending) == 0 {
		return task{}, false
	}
	tk := fj.pending[0]
	fj.pending = fj.pending[1:]
	return tk, true
}

// execTask runs one filament and routes its result to the join.
func (rt *Runtime) execTask(e *Exec, tk task) {
	rt.ctr.tasksExecuted.Inc()
	rt.ctr.run.Inc()
	e.overhead(rt.node.Model().FilamentSwitch)
	v := rt.callFJ(e, tk.Fn, tk.Args)
	e.Flush()
	if tk.Origin == rt.node.ID() {
		rt.joinDeliver(tk.JoinID, v)
		return
	}
	k := taskKey(tk)
	if m := rt.monitor(); m != nil {
		m.OnResultShip(rt.node.ID(), tk.Origin, k, rt.node.Now())
	}
	rt.ep.RequestAsync(tk.Origin, SvcResult, resultMsg{JoinID: tk.JoinID, Value: v, Fn: k.Fn, Sum: k.Sum},
		fjMsgSize, kernel.CatFilament, func(any) {})
}

func (rt *Runtime) joinDeliver(id int64, v float64) {
	if j, ok := rt.fj.joins[id]; ok {
		j.deliver(v)
	}
}

// ensureWorker wakes an idle worker or spawns a new one so pending work
// makes progress ("DF creates multiple server threads per node").
func (rt *Runtime) ensureWorker() {
	fj := &rt.fj
	if len(fj.pending) == 0 {
		return
	}
	if len(fj.idle) > 0 {
		w := fj.idle[len(fj.idle)-1]
		fj.idle = fj.idle[:len(fj.idle)-1]
		w.parked = false
		rt.node.Ready(w.t, false)
		return
	}
	if fj.active >= rt.MaxWorkers {
		// Every worker is running or blocked inside a join. Wake a join
		// waiter: its Wait loop picks up the pending filament. Without
		// this, a fork arriving while all workers sit in joins would
		// never run, and the join it feeds would never complete. Clearing
		// waiter keeps the wake single-shot (deliver uses the same
		// discipline); entries already woken have a nil waiter.
		for i := len(fj.joinWaiters) - 1; i >= 0; i-- {
			j := fj.joinWaiters[i]
			if j.waiter != nil {
				w := j.waiter
				j.waiter = nil
				rt.node.Ready(w, false)
				break
			}
		}
		return
	}
	fj.active++
	w := &worker{}
	fj.workers = append(fj.workers, w)
	w.t = rt.node.Spawn(fmt.Sprintf("fjworker%d", len(fj.workers)), func(kernel.Thread) {
		rt.workerLoop(w)
	})
}

func (rt *Runtime) workerLoop(w *worker) {
	fj := &rt.fj
	e := rt.NewExec(w.t)
	for {
		if tk, ok := rt.dequeueBack(); ok {
			rt.execTask(e, tk)
			continue
		}
		if fj.done {
			break
		}
		if rt.Stealing && rt.n > 1 && !fj.stealing && rt.canShip() {
			fj.stealing = true
			got := rt.trySteal(e)
			fj.stealing = false
			if got {
				continue
			}
			if fj.done {
				break
			}
			rt.parkWorker(w, stealBackoff)
			continue
		}
		rt.parkWorker(w, 0)
	}
	fj.active--
	if fj.active == 0 && fj.exitWaiter != nil {
		wt := fj.exitWaiter
		fj.exitWaiter = nil
		rt.node.Ready(wt, true)
	}
}

// parkWorker idles the worker until work arrives, done is signalled, or
// (if d > 0) the timeout elapses.
func (rt *Runtime) parkWorker(w *worker, d kernel.Duration) {
	fj := &rt.fj
	fj.idle = append(fj.idle, w)
	w.parked = true
	if d > 0 {
		fj.timedSeq++
		seq := fj.timedSeq
		w.timedIdx = seq
		rt.node.Schedule(d, func() {
			if w.parked && w.timedIdx == seq {
				// Still idle: remove from the idle list and wake.
				for i, x := range fj.idle {
					if x == w {
						fj.idle = append(fj.idle[:i], fj.idle[i+1:]...)
						break
					}
				}
				w.parked = false
				rt.node.Ready(w.t, false)
			}
		})
	}
	w.t.Block()
	w.timedIdx = 0
}

// trySteal probes victims round-robin once around the cluster. It returns
// true if a filament was obtained (and enqueued).
func (rt *Runtime) trySteal(e *Exec) bool {
	fj := &rt.fj
	for i := 0; i < rt.n-1; i++ {
		if fj.done || len(fj.pending) > 0 {
			return len(fj.pending) > 0
		}
		victim := fj.stealVictim
		fj.stealVictim = (fj.stealVictim + 1) % rt.n
		if victim == rt.ID() {
			victim = fj.stealVictim
			fj.stealVictim = (fj.stealVictim + 1) % rt.n
			if victim == rt.ID() {
				return false
			}
		}
		rt.ctr.stealsAttempted.Inc()
		reply := rt.ep.Call(e.t, kernel.NodeID(victim), SvcSteal, nil, fjMsgSize, kernel.CatFilament)
		m := reply.(stealReply)
		var granted int64
		if m.Granted {
			granted = 1
		}
		rt.obs.Trace(int64(rt.node.Now()), "fil", "steal",
			obs.Arg{Key: "victim", Val: int64(victim)}, obs.Arg{Key: "granted", Val: granted})
		if m.Granted {
			rt.ctr.stealsGranted.Inc()
			if mon := rt.monitor(); mon != nil {
				mon.OnTaskStart(rt.node.ID(), taskKey(m.T), rt.node.Now())
			}
			rt.enqueue(m.T)
			return true
		}
		rt.ctr.stealsDenied.Inc()
	}
	return false
}

// serveFork receives a distributed filament.
func (rt *Runtime) serveFork(from kernel.NodeID, req any) (any, int, kernel.Verdict) {
	m := req.(forkMsg)
	if rt.fj.done {
		return nil, 8, kernel.Reply
	}
	if mon := rt.monitor(); mon != nil {
		mon.OnTaskStart(rt.node.ID(), taskKey(m.T), rt.node.Now())
	}
	rt.enqueue(m.T)
	return nil, 8, kernel.Reply
}

// serveResult receives a child's result.
func (rt *Runtime) serveResult(from kernel.NodeID, req any) (any, int, kernel.Verdict) {
	m := req.(resultMsg)
	if mon := rt.monitor(); mon != nil {
		k := dsm.TaskKey{Origin: rt.node.ID(), Join: m.JoinID, Fn: m.Fn, Sum: m.Sum}
		mon.OnResultDeliver(rt.node.ID(), k, rt.node.Now())
	}
	rt.joinDeliver(m.JoinID, m.Value)
	return nil, 8, kernel.Reply
}

// serveSteal hands a pending filament to an idle node, or denies.
func (rt *Runtime) serveSteal(from kernel.NodeID, req any) (any, int, kernel.Verdict) {
	if rt.fj.done {
		return stealReply{}, fjMsgSize, kernel.Reply
	}
	if !rt.canShip() {
		return stealReply{}, fjMsgSize, kernel.Reply
	}
	// Steal from the front: the oldest filament is highest in the
	// recursion tree and so the biggest piece of work.
	if tk, ok := rt.dequeueFront(); ok {
		if mon := rt.monitor(); mon != nil {
			mon.OnTaskShip(rt.node.ID(), from, taskKey(tk), rt.node.Now())
		}
		return stealReply{Granted: true, T: tk}, fjMsgSize, kernel.Reply
	}
	return stealReply{}, fjMsgSize, kernel.Reply
}

func (rt *Runtime) handleDone(from kernel.NodeID, payload any) bool {
	m, ok := payload.(doneMsg)
	if !ok {
		return false
	}
	rt.node.Charge(kernel.CatFilament, rt.node.Model().RecvCost(fjMsgSize))
	rt.finish(m.Result)
	return true
}

// finish marks the computation complete and wakes everyone local.
func (rt *Runtime) finish(result float64) {
	fj := &rt.fj
	if fj.done {
		return
	}
	fj.done = true
	fj.result = result
	for _, w := range fj.idle {
		w.parked = false
		rt.node.Ready(w.t, false)
	}
	fj.idle = nil
	if fj.mainWaiter != nil {
		mw := fj.mainWaiter
		fj.mainWaiter = nil
		rt.node.Ready(mw, true)
	}
}

// RunForkJoin executes the registered root filament on node 0 and returns
// its result on every node; it must be called by every node's main thread.
// Workers drain, a done broadcast releases the cluster, and a final
// barrier makes completion global.
func (rt *Runtime) RunForkJoin(e *Exec, fnID int, args Args) float64 {
	fj := &rt.fj
	if rt.ID() == 0 {
		// The root filament runs here; its forks fan out down the tree.
		v := rt.callFJ(e, int32(fnID), args)
		e.Flush()
		rt.finish(v)
		if rt.n > 1 {
			rt.ep.Send(kernel.Broadcast, doneMsg{Result: v}, fjMsgSize, kernel.CatFilament)
		}
	} else {
		for !fj.done {
			fj.mainWaiter = e.t
			e.t.Block()
		}
	}
	for fj.active > 0 {
		fj.exitWaiter = e.t
		e.t.Block()
	}
	rt.red.Barrier(e.t)
	return fj.result
}

// FJResult returns the finished computation's result (NaN before
// completion).
func (rt *Runtime) FJResult() float64 {
	if !rt.fj.done {
		return math.NaN()
	}
	return rt.fj.result
}
