package filament_test

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"filaments"
	fl "filaments/internal/filament"
	"filaments/internal/sim"
)

func run(t *testing.T, cfg filaments.Config, setup func(c *filaments.Cluster), prog filaments.Program) (*filaments.Cluster, *filaments.Report) {
	t.Helper()
	c := filaments.New(cfg)
	if setup != nil {
		setup(c)
	}
	rep, err := c.Run(prog)
	if err != nil {
		t.Fatal(err)
	}
	return c, rep
}

func TestRTCPoolRunsEveryFilamentOnce(t *testing.T) {
	const n = 100
	counts := make([]int, n)
	run(t, filaments.Config{Nodes: 1}, nil, func(rt *filaments.Runtime, e *filaments.Exec) {
		p := rt.NewPool("rtc")
		for i := 0; i < n; i++ {
			p.Add(e, func(e *filaments.Exec, a filaments.Args) {
				counts[a[0]]++
				e.Compute(10 * sim.Microsecond)
			}, filaments.Args{int64(i)})
		}
		rt.RunPools(e)
	})
	for i, got := range counts {
		if got != 1 {
			t.Fatalf("filament %d ran %d times", i, got)
		}
	}
}

func TestStripRecognition2D(t *testing.T) {
	var visited [8][8]bool
	c, _ := run(t, filaments.Config{Nodes: 1}, nil, func(rt *filaments.Runtime, e *filaments.Exec) {
		p := rt.NewPool("strip")
		fn := func(e *filaments.Exec, a filaments.Args) {
			visited[a[0]-2][a[1]-3] = true
		}
		for i := 2; i < 2+8; i++ {
			for j := 3; j < 3+8; j++ {
				p.Add(e, fn, filaments.Args{int64(i), int64(j), 7, 9})
			}
		}
		if !p.Inlined() {
			t.Error("row-major lattice not recognized as a strip")
		}
		rt.RunPools(e)
	})
	for i := range visited {
		for j := range visited[i] {
			if !visited[i][j] {
				t.Fatalf("lattice point (%d,%d) not visited", i, j)
			}
		}
	}
	st := c.Runtime(0).Stats()
	if st.InlinedRun != 64 {
		t.Fatalf("inlined executions = %d, want 64", st.InlinedRun)
	}
}

func TestStripRecognitionRejectsIrregular(t *testing.T) {
	run(t, filaments.Config{Nodes: 1}, nil, func(rt *filaments.Runtime, e *filaments.Exec) {
		p := rt.NewPool("irregular")
		fn := func(e *filaments.Exec, a filaments.Args) {}
		p.Add(e, fn, filaments.Args{0, 0})
		p.Add(e, fn, filaments.Args{0, 1})
		p.Add(e, fn, filaments.Args{5, 9}) // breaks the lattice
		if p.Inlined() {
			t.Error("irregular args recognized as strip")
		}
		rt.RunPools(e)
	})
}

func TestStripRecognitionRejectsMixedFuncs(t *testing.T) {
	run(t, filaments.Config{Nodes: 1}, nil, func(rt *filaments.Runtime, e *filaments.Exec) {
		p := rt.NewPool("mixed")
		sum := 0
		f1 := func(e *filaments.Exec, a filaments.Args) { sum++ }
		f2 := func(e *filaments.Exec, a filaments.Args) { sum += 100 }
		p.Add(e, f1, filaments.Args{0, 0})
		p.Add(e, f2, filaments.Args{0, 1})
		if p.Inlined() {
			t.Error("different functions recognized as one strip")
		}
		rt.RunPools(e)
		if sum != 101 {
			t.Errorf("sum = %d", sum)
		}
	})
}

// A pool whose filaments fault should finish after a non-faulting pool, and
// the next sweep must start with the faulting pool (fault frontloading).
func TestFaultFrontloading(t *testing.T) {
	var addr filaments.Addr
	c := filaments.New(filaments.Config{Nodes: 2, Protocol: filaments.ImplicitInvalidate})
	addr = c.AllocOwned(8, 1) // page owned by node 1: node 0 faults on it
	var order []string
	var nextOrder []string
	_, err := c.Run(func(rt *filaments.Runtime, e *filaments.Exec) {
		if rt.ID() == 1 {
			// Node 1 just owns the page and participates in the barrier.
			e.Barrier()
			return
		}
		// Registration order puts "local" first; without frontloading it
		// would also run first next sweep.
		local := rt.NewPool("local")
		faulting := rt.NewPool("faulting")
		faulting.Add(e, func(e *filaments.Exec, a filaments.Args) {
			_ = e.ReadF64(addr) // remote: faults
			order = append(order, "faulting")
		}, filaments.Args{})
		local.Add(e, func(e *filaments.Exec, a filaments.Args) {
			e.Compute(100 * sim.Microsecond)
			order = append(order, "local")
		}, filaments.Args{})
		rt.RunPools(e)
		nextOrder = rt.PoolOrder()
		e.Barrier()
	})
	if err != nil {
		t.Fatal(err)
	}
	// The faulting pool finished last (it was suspended during the fetch
	// while the local pool ran — that is the overlap)...
	if len(order) != 2 || order[0] != "local" || order[1] != "faulting" {
		t.Fatalf("sweep order = %v: faulting pool should finish last", order)
	}
	// ...so the next sweep is scheduled to *start* with it: fault
	// frontloading via the pool stack.
	if len(nextOrder) < 1 || nextOrder[0] != "faulting" {
		t.Fatalf("next sweep order = %v: faulting pool should start first", nextOrder)
	}
}

// Communication/computation overlap: with two pools, a page fetch in one
// overlaps the other pool's computation, so the sweep takes about
// max(fetch, work), not their sum.
func TestOverlapReducesElapsed(t *testing.T) {
	elapsed := func(pools int) sim.Duration {
		c := filaments.New(filaments.Config{Nodes: 2, Protocol: filaments.ImplicitInvalidate})
		addr := c.AllocOwned(8, 1)
		rep, err := c.Run(func(rt *filaments.Runtime, e *filaments.Exec) {
			if rt.ID() == 1 {
				e.Barrier()
				return
			}
			remote := rt.NewPool("remote")
			remote.Add(e, func(e *filaments.Exec, a filaments.Args) {
				_ = e.ReadF64(addr)
			}, filaments.Args{})
			work := remote
			if pools == 2 {
				work = rt.NewPool("work")
			}
			for i := 0; i < 40; i++ {
				work.Add(e, func(e *filaments.Exec, a filaments.Args) {
					e.Compute(100 * sim.Microsecond)
				}, filaments.Args{int64(i), 0, 1, 1})
			}
			rt.RunPools(e)
			e.Barrier()
		})
		if err != nil {
			t.Fatal(err)
		}
		return rep.Elapsed
	}
	one := elapsed(1)
	two := elapsed(2)
	if two >= one {
		t.Fatalf("two pools (%v) not faster than one (%v): no overlap", two, one)
	}
}

const (
	fnLeafSum = iota
	fnImbalanced
)

// leafSum recursively sums the leaves of a binary tree of the given depth;
// each leaf is worth its index.
func leafSum(e *fl.Exec, a fl.Args) float64 {
	depth, base := a[0], a[1]
	e.Compute(50 * sim.Microsecond)
	if depth == 0 {
		return float64(base)
	}
	rt := e.Runtime()
	j := rt.NewJoin()
	width := int64(1) << (depth - 1)
	rt.Fork(e, j, fnLeafSum, fl.Args{depth - 1, base})
	rt.Fork(e, j, fnLeafSum, fl.Args{depth - 1, base + width})
	return j.Wait(e)
}

func TestForkJoinCorrectAllClusterSizes(t *testing.T) {
	const depth = 8 // 256 leaves
	leaves := int64(1) << depth
	want := float64(leaves * (leaves - 1) / 2)
	for _, nodes := range []int{1, 2, 3, 4, 8} {
		results := make([]float64, nodes)
		run(t, filaments.Config{Nodes: nodes, Stealing: true}, nil,
			func(rt *filaments.Runtime, e *filaments.Exec) {
				rt.RegisterFJ(fnLeafSum, leafSum)
				results[rt.ID()] = rt.RunForkJoin(e, fnLeafSum, filaments.Args{depth, 0})
			})
		for id, got := range results {
			if got != want {
				t.Fatalf("nodes=%d node %d: got %v, want %v", nodes, id, got, want)
			}
		}
	}
}

// Figure 2: during initial distribution the number of nodes with work
// doubles each step, following the binomial tree.
func TestTreeDistributionDoubling(t *testing.T) {
	const nodes = 8
	var firstWork [nodes]sim.Time
	run(t, filaments.Config{Nodes: nodes}, nil, func(rt *filaments.Runtime, e *filaments.Exec) {
		rt.RegisterFJ(fnLeafSum, func(e *fl.Exec, a fl.Args) float64 {
			id := e.Runtime().ID()
			if firstWork[id] == 0 {
				firstWork[id] = e.Runtime().Node().Now()
			}
			return leafSum(e, a)
		})
		rt.RunForkJoin(e, fnLeafSum, filaments.Args{8, 0})
	})
	// Every node must have received work.
	for id, ts := range firstWork {
		if id != 0 && ts == 0 {
			t.Fatalf("node %d never got work", id)
		}
	}
	// Binomial order: node 1 before node 3 and 5; node 2 before node 6.
	if !(firstWork[1] < firstWork[3] && firstWork[1] <= firstWork[5]) {
		t.Errorf("distribution order wrong: %v", firstWork)
	}
	if firstWork[2] > firstWork[6] {
		t.Errorf("node 2 should get work before its child 6: %v", firstWork)
	}
}

func TestPruningDominatesDeepRecursion(t *testing.T) {
	c, _ := run(t, filaments.Config{Nodes: 2}, nil, func(rt *filaments.Runtime, e *filaments.Exec) {
		rt.RegisterFJ(fnLeafSum, leafSum)
		rt.RunForkJoin(e, fnLeafSum, filaments.Args{10, 0})
	})
	var pruned, sent, kept int64
	for i := 0; i < 2; i++ {
		st := c.Runtime(i).Stats()
		pruned += st.ForksPruned
		sent += st.ForksSent
		kept += st.ForksKept
	}
	total := pruned + sent + kept
	if total == 0 {
		t.Fatal("no forks recorded")
	}
	if pruned < total*9/10 {
		t.Fatalf("pruned %d of %d forks; pruning should dominate", pruned, total)
	}
	if sent == 0 {
		t.Fatal("initial distribution sent nothing")
	}
}

// imbalanced puts all real work in the leftmost leaf chain, so without
// stealing most nodes idle.
func imbalanced(e *fl.Exec, a fl.Args) float64 {
	depth := a[0]
	heavy := a[1] != 0
	if depth == 0 {
		if heavy {
			// The heavy leaf spawns a burst of uneven subtasks.
			rt := e.Runtime()
			j := rt.NewJoin()
			for i := 0; i < 64; i++ {
				rt.Fork(e, j, fnImbalanced, fl.Args{-1, int64(i)})
			}
			return j.Wait(e)
		}
		e.Compute(20 * sim.Microsecond)
		return 1
	}
	if depth == -1 {
		e.Compute(sim.Duration(1+a[1]%7) * sim.Millisecond)
		return 1
	}
	rt := e.Runtime()
	j := rt.NewJoin()
	rt.Fork(e, j, fnImbalanced, fl.Args{depth - 1, a[1]})
	rt.Fork(e, j, fnImbalanced, fl.Args{depth - 1, 0})
	return j.Wait(e)
}

func TestStealingBalancesLoad(t *testing.T) {
	elapsed := map[bool]sim.Duration{}
	for _, stealing := range []bool{false, true} {
		c, rep := run(t, filaments.Config{Nodes: 4, Stealing: stealing}, nil,
			func(rt *filaments.Runtime, e *filaments.Exec) {
				rt.RegisterFJ(fnLeafSum, leafSum)
				rt.RegisterFJ(fnImbalanced, imbalanced)
				rt.RunForkJoin(e, fnImbalanced, filaments.Args{4, 1})
			})
		elapsed[stealing] = rep.Elapsed
		var granted int64
		for i := 0; i < 4; i++ {
			granted += c.Runtime(i).Stats().StealsGranted
		}
		if stealing && granted == 0 {
			t.Fatal("stealing enabled but nothing was stolen")
		}
		if !stealing && granted != 0 {
			t.Fatal("stealing disabled but steals happened")
		}
	}
	if elapsed[true] >= elapsed[false] {
		t.Fatalf("stealing (%v) did not beat no-stealing (%v) on an imbalanced load",
			elapsed[true], elapsed[false])
	}
}

func TestForkJoinResultBroadcastConsistent(t *testing.T) {
	var results [4]float64
	run(t, filaments.Config{Nodes: 4, Stealing: true}, nil,
		func(rt *filaments.Runtime, e *filaments.Exec) {
			rt.RegisterFJ(fnLeafSum, leafSum)
			results[rt.ID()] = rt.RunForkJoin(e, fnLeafSum, filaments.Args{6, 0})
		})
	for i := 1; i < 4; i++ {
		if math.Abs(results[i]-results[0]) > 1e-9 {
			t.Fatalf("results diverge: %v", results)
		}
	}
}

func TestFilamentCreationAccounted(t *testing.T) {
	c, _ := run(t, filaments.Config{Nodes: 1}, nil, func(rt *filaments.Runtime, e *filaments.Exec) {
		p := rt.NewPool("p")
		for i := 0; i < 1000; i++ {
			p.Add(e, func(e *filaments.Exec, a filaments.Args) {}, filaments.Args{int64(i)})
		}
		rt.RunPools(e)
	})
	st := c.Runtime(0).Stats()
	if st.FilamentsCreated != 1000 || st.FilamentsRun != 1000 {
		t.Fatalf("created %d run %d", st.FilamentsCreated, st.FilamentsRun)
	}
}

// Property: any contiguous row-major lattice is recognized as a strip, and
// the inlined iteration visits exactly the declared points.
func TestStripRecognitionProperty(t *testing.T) {
	f := func(i0, j0 int8, w, h uint8) bool {
		width := 1 + int(w)%9
		height := 1 + int(h)%9
		visited := make(map[[2]int64]int)
		ok := true
		_, err := filaments.New(filaments.Config{Nodes: 1}).Run(
			func(rt *filaments.Runtime, e *filaments.Exec) {
				p := rt.NewPool("prop")
				fn := func(e *filaments.Exec, a filaments.Args) {
					visited[[2]int64{a[0], a[1]}]++
				}
				for i := 0; i < height; i++ {
					for j := 0; j < width; j++ {
						p.Add(e, fn, filaments.Args{int64(i0) + int64(i), int64(j0) + int64(j)})
					}
				}
				if width*height >= 2 && !p.Inlined() {
					ok = false
				}
				rt.RunPools(e)
			})
		if err != nil || !ok {
			return false
		}
		if len(visited) != width*height {
			return false
		}
		for _, c := range visited {
			if c != 1 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

// Property: shuffling a lattice's insertion order breaks recognition (the
// pattern matcher only accepts row-major streams) but execution still
// visits every filament exactly once.
func TestShuffledLatticeStillRunsProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		type pt struct{ i, j int64 }
		var pts []pt
		for i := int64(0); i < 6; i++ {
			for j := int64(0); j < 6; j++ {
				pts = append(pts, pt{i, j})
			}
		}
		rng.Shuffle(len(pts), func(a, b int) { pts[a], pts[b] = pts[b], pts[a] })
		visited := map[pt]int{}
		_, err := filaments.New(filaments.Config{Nodes: 1}).Run(
			func(rt *filaments.Runtime, e *filaments.Exec) {
				p := rt.NewPool("shuffled")
				fn := func(e *filaments.Exec, a filaments.Args) {
					visited[pt{a[0], a[1]}]++
				}
				for _, q := range pts {
					p.Add(e, fn, filaments.Args{q.i, q.j})
				}
				rt.RunPools(e)
			})
		if err != nil {
			return false
		}
		if len(visited) != len(pts) {
			return false
		}
		for _, c := range visited {
			if c != 1 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Fatal(err)
	}
}

// Fork/join must survive network loss end to end.
func TestForkJoinUnderLoss(t *testing.T) {
	const depth = 6
	leaves := int64(1) << depth
	want := float64(leaves * (leaves - 1) / 2)
	c := filaments.New(filaments.Config{Nodes: 4, Stealing: true, LossRate: 0.1, Seed: 3})
	var results [4]float64
	_, err := c.Run(func(rt *filaments.Runtime, e *filaments.Exec) {
		rt.RegisterFJ(fnLeafSum, leafSum)
		results[rt.ID()] = rt.RunForkJoin(e, fnLeafSum, filaments.Args{depth, 0})
	})
	if err != nil {
		t.Fatal(err)
	}
	for id, got := range results {
		if got != want {
			t.Fatalf("node %d: got %v, want %v", id, got, want)
		}
	}
}

// ResetPools clears filaments but keeps the pool objects usable.
func TestResetPools(t *testing.T) {
	runs := 0
	_, err := filaments.New(filaments.Config{Nodes: 1}).Run(
		func(rt *filaments.Runtime, e *filaments.Exec) {
			p := rt.NewPool("r")
			fn := func(e *filaments.Exec, a filaments.Args) { runs++ }
			p.Add(e, fn, filaments.Args{0})
			rt.RunPools(e)
			rt.ResetPools()
			if p.Size() != 0 {
				t.Error("pool not cleared")
			}
			p.Add(e, fn, filaments.Args{0})
			p.Add(e, fn, filaments.Args{1})
			rt.RunPools(e)
		})
	if err != nil {
		t.Fatal(err)
	}
	if runs != 3 {
		t.Fatalf("runs = %d, want 3", runs)
	}
}
