package bench

import (
	"fmt"
	"io"
	"time"

	"filaments"
	"filaments/internal/apps/jacobi"
)

// Wall-clock experiments over the real-time UDP binding.
//
// These live in their own registry (AllUDP/FindUDP, `dfbench
// -transport=udp`), not next to the paper tables: the simulation
// experiments report calibrated virtual time and reproduce the paper's
// numbers anywhere, while these report wall time on real loopback
// sockets, so the absolute numbers depend on the host. What IS portable
// is the ratio between wire-path configurations — the gob framing the
// transport started with, the zero-allocation binary codec, and the
// codec plus twin-and-diff page shipping — which is exactly what the
// tables put side by side.

var udpRegistry []Experiment

func registerUDP(id, title string, run func(w io.Writer, o Options)) {
	udpRegistry = append(udpRegistry, Experiment{ID: id, Title: title, Run: run})
}

// AllUDP returns the wall-clock UDP experiments.
func AllUDP() []Experiment {
	return append([]Experiment(nil), udpRegistry...)
}

// FindUDP returns the UDP experiment with the given ID.
func FindUDP(id string) (Experiment, bool) {
	for _, e := range udpRegistry {
		if e.ID == id {
			return e, true
		}
	}
	return Experiment{}, false
}

func init() {
	registerUDP("udp_pages", "Page transfer throughput over loopback UDP, by wire configuration", udpPages)
	registerUDP("udp_barrier", "Barrier latency over loopback UDP, by wire configuration", udpBarrier)
}

// udpTunings is the wire-path sweep every UDP experiment runs: the
// previous release's framing as the baseline, then each optimization
// layered in.
var udpTunings = []struct {
	name   string
	tuning filaments.UDPTuning
}{
	{"gob", filaments.UDPTuning{Codec: "gob", NoDiffs: true}},
	{"binary", filaments.UDPTuning{Codec: "binary", NoDiffs: true}},
	{"binary+diffs", filaments.UDPTuning{Codec: "binary"}},
}

func wireBytes(rep *filaments.UDPReport) int64 {
	var n int64
	for _, nr := range rep.PerNode {
		n += nr.Transport.BytesSent
	}
	return n
}

// udpPages runs jacobi over loopback UDP under each wire configuration
// and reports wall time, page-transfer throughput, and total bytes put
// on the wire. Jacobi is the page-traffic-bound program of the paper's
// suite: every iteration moves boundary strips between neighbours, so
// the wire path dominates.
func udpPages(w io.Writer, o Options) {
	n, iters, nodes := 128, 24, 4
	if o.Quick {
		n, iters = 48, 6
	}
	fmt.Fprintf(w, "jacobi %dx%d, %d iterations, %d nodes over loopback UDP (wall clock)\n", n, n, iters, nodes)
	fmt.Fprintf(w, "  %-14s %12s %12s %12s %12s\n",
		"Config", "Elapsed(ms)", "Pages", "Pages/sec", "Wire KB")
	for _, tc := range udpTunings {
		cfg := jacobi.Config{
			N: n, Iters: iters, Nodes: nodes,
			Protocol: filaments.ImplicitInvalidate,
			Tuning:   tc.tuning,
		}
		rep, _, _, err := jacobi.DFUDP(cfg)
		if err != nil {
			panic(err)
		}
		var served int64
		for _, nr := range rep.PerNode {
			served += nr.DSM.Served
		}
		elapsed := rep.Elapsed
		r := UDPRow{
			Config:      tc.name,
			Nodes:       nodes,
			ElapsedMS:   fmt.Sprintf("%.1f", float64(elapsed.Microseconds())/1000),
			PagesPerSec: fmt.Sprintf("%.0f", float64(served)/elapsed.Seconds()),
			WireBytes:   wireBytes(rep),
		}
		fmt.Fprintf(w, "  %-14s %12s %12d %12s %12.1f\n",
			r.Config, r.ElapsedMS, served, r.PagesPerSec, float64(r.WireBytes)/1024)
		if o.result != nil {
			o.result.UDPRows = append(o.result.UDPRows, r)
		}
	}
}

// udpBarrier times a pure barrier loop over loopback UDP — the paper's
// Figure 8 shape, but wall clock. Barriers ship tiny payloads, so this
// isolates per-message software overhead (and is why event batching is
// off by default: nothing here amortizes a held-back datagram).
func udpBarrier(w io.Writer, o Options) {
	const nodes = 4
	k := 200
	if o.Quick {
		k = 50
	}
	fmt.Fprintf(w, "%d barriers, %d nodes over loopback UDP (wall clock)\n", k, nodes)
	fmt.Fprintf(w, "  %-14s %12s %14s %12s\n", "Config", "Elapsed(ms)", "Barrier(µs)", "Wire KB")
	for _, tc := range udpTunings {
		cl, err := filaments.NewUDPCluster(filaments.UDPConfig{
			Nodes:  nodes,
			Tuning: tc.tuning,
		})
		if err != nil {
			panic(err)
		}
		rep, err := cl.Run(func(rt *filaments.Runtime, e *filaments.Exec) {
			for i := 0; i < k; i++ {
				e.Barrier()
			}
		})
		if err != nil {
			panic(err)
		}
		perBarrier := rep.Elapsed / time.Duration(k)
		r := UDPRow{
			Config:    tc.name,
			Nodes:     nodes,
			ElapsedMS: fmt.Sprintf("%.1f", float64(rep.Elapsed.Microseconds())/1000),
			BarrierUS: fmt.Sprintf("%.1f", float64(perBarrier.Nanoseconds())/1000),
			WireBytes: wireBytes(rep),
		}
		fmt.Fprintf(w, "  %-14s %12s %14s %12.1f\n",
			r.Config, r.ElapsedMS, r.BarrierUS, float64(r.WireBytes)/1024)
		if o.result != nil {
			o.result.UDPRows = append(o.result.UDPRows, r)
		}
	}
}
