package bench

import (
	"fmt"
	"io"

	"filaments/internal/apps/fft"
	"filaments/internal/apps/mergesort"
)

func init() {
	register("ext-apps", "Extension applications: merge sort and recursive FFT (paper §2.3)", extApps)
}

// extApps runs the two additional balanced fork/join applications the paper
// names in §2.3 alongside expression trees.
func extApps(w io.Writer, o Options) {
	msCfg := mergesort.Config{}
	fftCfg := fft.Config{}
	if o.Quick {
		msCfg.N = 1 << 13
		msCfg.Leaf = 512
		fftCfg.N = 1 << 12
		fftCfg.Leaf = 256
	}
	fmt.Fprintf(w, "merge sort, %d float64 elements (fork/join over migratory DSM)\n", pick(msCfg.N, 1<<15))
	msSeq, _ := mergesort.Sequential(msCfg)
	fmt.Fprintf(w, "  %-6s %12s %12s\n", "Nodes", "Time (s)", "Speedup")
	fmt.Fprintf(w, "  %-6d %12.2f %12.2f\n", 1, msSeq.Seconds(), 1.0)
	for _, p := range []int{2, 4, 8} {
		c := msCfg
		c.Nodes = p
		rep, _, _ := mergesort.DF(c)
		fmt.Fprintf(w, "  %-6d %12.2f %12.2f\n", p, rep.Seconds(), msSeq.Seconds()/rep.Seconds())
	}

	fmt.Fprintf(w, "recursive FFT, %d points (fork/join DIF + RTC bit-reversal)\n", pick(fftCfg.N, 1<<14))
	fftSeq, _, _ := fft.Sequential(fftCfg)
	fmt.Fprintf(w, "  %-6s %12s %12s\n", "Nodes", "Time (s)", "Speedup")
	fmt.Fprintf(w, "  %-6d %12.2f %12.2f\n", 1, fftSeq.Seconds(), 1.0)
	for _, p := range []int{2, 4, 8} {
		c := fftCfg
		c.Nodes = p
		rep, _, _, _ := fft.DF(c)
		fmt.Fprintf(w, "  %-6d %12.2f %12.2f\n", p, rep.Seconds(), fftSeq.Seconds()/rep.Seconds())
	}
	fmt.Fprintf(w, "(balanced trees: per the paper, run without dynamic load balancing)\n")
}

func pick(v, def int) int {
	if v != 0 {
		return v
	}
	return def
}
