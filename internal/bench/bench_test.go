package bench

import (
	"io"
	"strings"
	"testing"
)

func TestRegistryComplete(t *testing.T) {
	// Every figure of the paper's evaluation must be registered.
	for _, id := range []string{
		"fig2", "fig3", "fig4", "fig5", "fig6", "fig7",
		"fig8", "fig9", "fig10", "fig11", "fig12",
	} {
		if _, ok := Find(id); !ok {
			t.Errorf("experiment %s not registered", id)
		}
	}
	if len(All()) < 17 {
		t.Errorf("only %d experiments registered; figures + ablations expected", len(All()))
	}
}

func TestFindUnknown(t *testing.T) {
	if _, ok := Find("nope"); ok {
		t.Fatal("Find returned ok for unknown id")
	}
}

func TestAllSorted(t *testing.T) {
	all := All()
	for i := 1; i < len(all); i++ {
		if all[i-1].ID > all[i].ID {
			t.Fatalf("experiments not sorted: %s > %s", all[i-1].ID, all[i].ID)
		}
	}
}

// Every experiment must run to completion at quick scale and produce
// output. This is the end-to-end smoke test of the whole reproduction.
func TestAllExperimentsQuick(t *testing.T) {
	if testing.Short() {
		t.Skip("runs every experiment")
	}
	for _, e := range All() {
		e := e
		t.Run(e.ID, func(t *testing.T) {
			var sb strings.Builder
			e.Run(&sb, Options{Quick: true})
			if sb.Len() == 0 {
				t.Fatal("experiment produced no output")
			}
		})
	}
}

// The machine-readable result must agree with the prose output bit for
// bit: every captured cell string appears verbatim in the text the same
// run printed, and the streamed copy equals the captured copy.
func TestRunCapturedMatchesProse(t *testing.T) {
	if testing.Short() {
		t.Skip("runs an experiment")
	}
	e, ok := Find("fig5")
	if !ok {
		t.Fatal("fig5 not registered")
	}
	var stream strings.Builder
	res := RunCaptured(e, Options{Quick: true, Nodes: []int{1, 2}}, &stream)
	if res.Output != stream.String() {
		t.Fatal("captured output differs from streamed output")
	}
	if res.Sequential == "" || len(res.Rows) == 0 {
		t.Fatalf("result not populated: seq=%q rows=%d", res.Sequential, len(res.Rows))
	}
	if !strings.Contains(res.Output, "Sequential program: "+res.Sequential+" sec") {
		t.Errorf("sequential baseline %q not verbatim in prose", res.Sequential)
	}
	for i, r := range res.Rows {
		for _, cell := range []string{r.CGTime, r.CGSpeedup, r.DFTime, r.DFSpeedup} {
			if !strings.Contains(res.Output, cell) {
				t.Errorf("row %d cell %q not found verbatim in prose output", i, cell)
			}
		}
	}
}

// Key quantitative checks against the paper, at quick scale where the
// shapes (not absolutes) must hold.
func TestHeadlineShapes(t *testing.T) {
	if testing.Short() {
		t.Skip("timing test")
	}
	// These run full experiments; reuse one output sink.
	w := io.Discard
	_ = w
	// Shape checks live in the app packages' tests; here we only assert
	// the harness agrees with itself: fig5 and fig12's shared sequential
	// baseline, via jacobiTable, must be deterministic.
	var a, b strings.Builder
	e, _ := Find("fig8")
	e.Run(&a, Options{Quick: true})
	e.Run(&b, Options{Quick: true})
	if a.String() != b.String() {
		t.Fatal("fig8 not deterministic across runs")
	}
}
