package bench

import (
	"fmt"
	"io"

	"filaments"
	"filaments/internal/apps/fft"
	"filaments/internal/apps/jacobi"
	"filaments/internal/apps/matmul"
	"filaments/internal/apps/mergesort"
)

// The four-protocol crossover experiment: every shipped DSM app under
// migratory, write-invalidate, implicit-invalidate, and lazy-release,
// across cluster sizes, with the protocol-revealing counters alongside
// the times. The point is to locate the crossovers: where the paper's
// implicit-invalidate stops winning and home-based LRC starts paying
// (false sharing), and where LRC's keep-it-local fork/join rule makes it
// the wrong choice entirely (recursive apps).

func init() {
	register("proto-x", "Protocol crossover: all four protocols across apps and cluster sizes", protoCrossover)
}

// protoList is the sweep order: the three paper protocols, then LRC.
var protoList = []filaments.Protocol{
	filaments.Migratory, filaments.WriteInvalidate, filaments.ImplicitInvalidate,
	filaments.LazyRelease,
}

// protoStats sums the protocol-revealing counters across the cluster.
type protoStats struct {
	faults, invals, merges, notices, twinKB int64
}

func gatherProto(cl *filaments.Cluster, nodes int) protoStats {
	var s protoStats
	for i := 0; i < nodes; i++ {
		st := cl.Runtime(i).DSM().Stats()
		s.faults += st.ReadFaults + st.WriteFaults
		s.invals += st.InvalsSent
		s.merges += st.LRCMerges
		s.notices += st.WriteNotices
		s.twinKB += st.TwinBytes / 1024
	}
	return s
}

func protoRow(w io.Writer, proto filaments.Protocol, secs float64, s protoStats) {
	fmt.Fprintf(w, "  %-20v %8.1f s   faults=%-6d invals=%-5d merges=%-5d notices=%-5d twins=%dKB\n",
		proto, secs, s.faults, s.invals, s.merges, s.notices, s.twinKB)
}

func protoCrossover(w io.Writer, o Options) {
	jn, ji := 256, 360
	fftN, fftLeaf := 1<<14, 1024
	msN, msLeaf := 1<<15, 2048
	mmN := 256
	if o.Quick {
		jn, ji = 128, 60
		fftN, fftLeaf = 1<<12, 256
		msN, msLeaf = 1<<13, 512
		mmN = 64
	}

	fmt.Fprintf(w, "Jacobi %dx%d, %d iters (aligned strips: one writer per page)\n", jn, jn, ji)
	for _, p := range []int{2, 4, 8} {
		fmt.Fprintf(w, " %d nodes:\n", p)
		for _, proto := range protoList {
			cfg := jacobi.Config{N: jn, Iters: ji, Nodes: p}
			if proto == filaments.Migratory {
				cfg.UseMigratory = true
			} else {
				cfg.Protocol = proto
			}
			rep, _, cl := jacobi.DF(cfg)
			protoRow(w, proto, rep.Seconds(), gatherProto(cl, p))
		}
	}
	fmt.Fprintf(w, " (aligned writers are implicit-invalidate's home turf: LRC pays diff\n")
	fmt.Fprintf(w, "  flushes every barrier for pages II re-fetches only when read)\n\n")

	fmt.Fprintf(w, "False sharing: %d writers ping-ponging one page, %d barriered rounds\n", 2, fsRounds(o))
	for _, proto := range protoList {
		secs, moves, merges := falseShare(proto, 2, fsRounds(o))
		fmt.Fprintf(w, "  %-20v %8.2f s   page moves=%-5d merges=%d\n", proto, secs, moves, merges)
	}
	fmt.Fprintf(w, " (the crossover: single-writer protocols move or invalidate the page on\n")
	fmt.Fprintf(w, "  every interleaved write; LRC twins locally and flushes one diff per\n")
	fmt.Fprintf(w, "  barrier, so its cost is flat in the write rate)\n\n")

	fmt.Fprintf(w, "Matmul %dx%d (read-shared inputs, strip-owned output)\n", mmN, mmN)
	for _, p := range []int{2, 4, 8} {
		fmt.Fprintf(w, " %d nodes:\n", p)
		for _, proto := range protoList {
			cfg := matmul.Config{N: mmN, Nodes: p}
			if proto == filaments.Migratory {
				cfg.UseMigratory = true
			} else {
				cfg.Protocol = proto
			}
			rep, _, cl := matmul.DF(cfg)
			protoRow(w, proto, rep.Seconds(), gatherProto(cl, p))
		}
	}
	fmt.Fprintf(w, "\nFFT n=%d leaf=%d and mergesort n=%d leaf=%d on 4 nodes (fork/join)\n", fftN, fftLeaf, msN, msLeaf)
	for _, proto := range protoList {
		fcfg := fft.Config{N: fftN, Leaf: fftLeaf, Nodes: 4}
		if proto == filaments.Migratory {
			fcfg.UseMigratory = true
		} else {
			fcfg.Protocol = proto
		}
		frep, _, _, fcl := fft.DF(fcfg)
		fs := gatherProto(fcl, 4)
		mrep, _, mcl := mergesort.DF(mergesort.Config{N: msN, Leaf: msLeaf, Nodes: 4, Protocol: proto})
		ms := gatherProto(mcl, 4)
		fmt.Fprintf(w, "  %-20v fft %8.1f s (faults=%d)   mergesort %8.1f s (faults=%d)\n",
			proto, frep.Seconds(), fs.faults, mrep.Seconds(), ms.faults)
	}
	fmt.Fprintf(w, " (under lazy-release the runtime keeps fork/join filaments local — a task\n")
	fmt.Fprintf(w, "  ship is a sync edge the protocol does not flush on — so both recursive\n")
	fmt.Fprintf(w, "  apps degrade to sequential: the honest cost of barrier-only release\n")
	fmt.Fprintf(w, "  consistency, and the reason it is not the default anywhere)\n")
}

func fsRounds(o Options) int {
	if o.Quick {
		return 200
	}
	return 1000
}

// falseShare is the crossover microkernel: two nodes repeatedly update
// their own halves of ONE shared page inside barriered rounds. Every
// single-writer protocol serializes the interleaved writes through page
// moves or invalidation rounds; LRC lets both nodes write their twinned
// copies and reconciles at each barrier with one diff flush.
func falseShare(proto filaments.Protocol, nodes, rounds int) (secs float64, moves, merges int64) {
	cl := filaments.New(filaments.Config{Nodes: nodes, Protocol: proto})
	addr := cl.AllocOwned(8*64, 0)
	rep, err := cl.Run(func(rt *filaments.Runtime, e *filaments.Exec) {
		me := rt.ID()
		per := 64 / rt.Nodes()
		for r := 0; r < rounds; r++ {
			for k := 0; k < per; k++ {
				slot := me*per + k
				e.WriteF64(addr+filaments.Addr(slot*8), float64(r))
			}
			e.Barrier()
		}
	})
	if err != nil {
		panic(err)
	}
	s := gatherProto(cl, nodes)
	var served int64
	for i := 0; i < nodes; i++ {
		served += cl.Runtime(i).DSM().Stats().Served
	}
	return rep.Seconds(), served, s.merges
}
