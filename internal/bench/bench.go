// Package bench regenerates every table and figure of the paper's
// evaluation (§4). Each experiment runs the same programs as the paper —
// sequential, coarse-grain, and Distributed Filaments — on the simulated
// cluster and prints a table in the paper's format next to the paper's
// published numbers, so divergence is visible at a glance.
package bench

import (
	"bytes"
	"fmt"
	"io"
	"sort"
)

// Options controls experiment scale.
type Options struct {
	// Quick shrinks problem sizes for fast smoke runs; tables keep their
	// shape but absolute numbers no longer match the paper.
	Quick bool
	// Nodes overrides the cluster sizes swept (default 1, 2, 4, 8).
	Nodes []int

	// result, when non-nil, collects the machine-readable form of every
	// table the experiment prints (set by RunCaptured).
	result *Result
}

func (o *Options) nodes() []int {
	if len(o.Nodes) > 0 {
		return o.Nodes
	}
	return []int{1, 2, 4, 8}
}

// Experiment is one regenerable table or figure.
type Experiment struct {
	ID    string
	Title string
	Run   func(w io.Writer, o Options)
}

var registry []Experiment

func register(id, title string, run func(w io.Writer, o Options)) {
	registry = append(registry, Experiment{ID: id, Title: title, Run: run})
}

// All returns the registered experiments sorted by ID.
func All() []Experiment {
	out := append([]Experiment(nil), registry...)
	sort.Slice(out, func(i, j int) bool { return out[i].ID < out[j].ID })
	return out
}

// Find returns the experiment with the given ID.
func Find(id string) (Experiment, bool) {
	for _, e := range registry {
		if e.ID == id {
			return e, true
		}
	}
	return Experiment{}, false
}

// Row is one machine-readable table row. The time and speedup cells are
// the formatted strings that appear in the prose table — formatted once,
// printed and recorded from the same value — so the JSON numbers match
// the human-readable output bit for bit.
type Row struct {
	Nodes     int    `json:"nodes"`
	CGTime    string `json:"cg_time_s"`
	CGSpeedup string `json:"cg_speedup"`
	DFTime    string `json:"df_time_s"`
	DFSpeedup string `json:"df_speedup"`
	PaperCG   string `json:"paper_cg_s"`
	PaperDF   string `json:"paper_df_s"`
}

// UDPRow is one machine-readable row of a wall-clock UDP experiment:
// one wire configuration's numbers. Cells are formatted strings for the
// same reason Row's are; WireBytes is exact, so it stays numeric.
type UDPRow struct {
	Config      string `json:"config"`
	Nodes       int    `json:"nodes"`
	ElapsedMS   string `json:"elapsed_ms"`
	PagesPerSec string `json:"pages_per_sec,omitempty"`
	BarrierUS   string `json:"barrier_us,omitempty"`
	WireBytes   int64  `json:"wire_bytes"`
}

// Result is one experiment's machine-readable output.
type Result struct {
	ID    string `json:"id"`
	Title string `json:"title"`
	Quick bool   `json:"quick"`
	// Sequential is the sequential baseline in seconds, formatted as in
	// the prose output; PaperSequential is the paper's published value.
	Sequential      string `json:"sequential_s"`
	PaperSequential string `json:"paper_sequential_s"`
	// Rows holds every table row the experiment printed, in print order
	// (experiments that print several tables append to the same slice).
	Rows []Row `json:"rows"`
	// UDPRows holds the wall-clock rows of the UDP experiments (which
	// sweep wire configurations, not the CG/DF variant pair).
	UDPRows []UDPRow `json:"udp_rows,omitempty"`
	// Output is the full prose output, verbatim.
	Output string `json:"output"`
}

// RunCaptured runs the experiment, streaming its prose output to w while
// capturing both the machine-readable rows and the verbatim text.
func RunCaptured(e Experiment, o Options, w io.Writer) *Result {
	res := &Result{ID: e.ID, Title: e.Title, Quick: o.Quick}
	o.result = res
	var buf bytes.Buffer
	e.Run(io.MultiWriter(w, &buf), o)
	res.Output = buf.String()
	return res
}

// table prints a Nodes / CG / DF table in the paper's style.
type table struct {
	w   io.Writer
	seq float64
	res *Result
}

func newTable(w io.Writer, o Options, title string, seq float64, paperSeq string) *table {
	seqStr := fmt.Sprintf("%.1f", seq)
	fmt.Fprintf(w, "%s\n", title)
	fmt.Fprintf(w, "  Sequential program: %s sec (paper: %s)\n", seqStr, paperSeq)
	fmt.Fprintf(w, "  %-6s %12s %12s %12s %12s %18s\n",
		"Nodes", "CG Time(s)", "CG Speedup", "DF Time(s)", "DF Speedup", "paper CG/DF (s)")
	if o.result != nil {
		o.result.Sequential = seqStr
		o.result.PaperSequential = paperSeq
	}
	return &table{w: w, seq: seq, res: o.result}
}

func (t *table) row(nodes int, cg, df float64, paperCG, paperDF string) {
	r := Row{
		Nodes:     nodes,
		CGTime:    fmt.Sprintf("%.1f", cg),
		CGSpeedup: fmt.Sprintf("%.2f", t.seq/cg),
		DFTime:    fmt.Sprintf("%.1f", df),
		DFSpeedup: fmt.Sprintf("%.2f", t.seq/df),
		PaperCG:   paperCG,
		PaperDF:   paperDF,
	}
	fmt.Fprintf(t.w, "  %-6d %12s %12s %12s %12s %11s/%s\n",
		r.Nodes, r.CGTime, r.CGSpeedup, r.DFTime, r.DFSpeedup, r.PaperCG, r.PaperDF)
	if t.res != nil {
		t.res.Rows = append(t.res.Rows, r)
	}
}
