// Package bench regenerates every table and figure of the paper's
// evaluation (§4). Each experiment runs the same programs as the paper —
// sequential, coarse-grain, and Distributed Filaments — on the simulated
// cluster and prints a table in the paper's format next to the paper's
// published numbers, so divergence is visible at a glance.
package bench

import (
	"fmt"
	"io"
	"sort"
)

// Options controls experiment scale.
type Options struct {
	// Quick shrinks problem sizes for fast smoke runs; tables keep their
	// shape but absolute numbers no longer match the paper.
	Quick bool
	// Nodes overrides the cluster sizes swept (default 1, 2, 4, 8).
	Nodes []int
}

func (o *Options) nodes() []int {
	if len(o.Nodes) > 0 {
		return o.Nodes
	}
	return []int{1, 2, 4, 8}
}

// Experiment is one regenerable table or figure.
type Experiment struct {
	ID    string
	Title string
	Run   func(w io.Writer, o Options)
}

var registry []Experiment

func register(id, title string, run func(w io.Writer, o Options)) {
	registry = append(registry, Experiment{ID: id, Title: title, Run: run})
}

// All returns the registered experiments sorted by ID.
func All() []Experiment {
	out := append([]Experiment(nil), registry...)
	sort.Slice(out, func(i, j int) bool { return out[i].ID < out[j].ID })
	return out
}

// Find returns the experiment with the given ID.
func Find(id string) (Experiment, bool) {
	for _, e := range registry {
		if e.ID == id {
			return e, true
		}
	}
	return Experiment{}, false
}

// table prints a Nodes / CG / DF table in the paper's style.
type table struct {
	w        io.Writer
	seq      float64
	paperSeq string
}

func newTable(w io.Writer, title string, seq float64, paperSeq string) *table {
	fmt.Fprintf(w, "%s\n", title)
	fmt.Fprintf(w, "  Sequential program: %.1f sec (paper: %s)\n", seq, paperSeq)
	fmt.Fprintf(w, "  %-6s %12s %12s %12s %12s %18s\n",
		"Nodes", "CG Time(s)", "CG Speedup", "DF Time(s)", "DF Speedup", "paper CG/DF (s)")
	return &table{w: w, seq: seq}
}

func (t *table) row(nodes int, cg, df float64, paperCG, paperDF string) {
	fmt.Fprintf(t.w, "  %-6d %12.1f %12.2f %12.1f %12.2f %11s/%s\n",
		nodes, cg, t.seq/cg, df, t.seq/df, paperCG, paperDF)
}
