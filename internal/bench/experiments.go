package bench

import (
	"fmt"
	"io"

	"filaments"
	"filaments/internal/apps/exprtree"
	"filaments/internal/apps/jacobi"
	"filaments/internal/apps/matmul"
	"filaments/internal/apps/quadrature"
	"filaments/internal/cost"
	fl "filaments/internal/filament"
	"filaments/internal/kernel"
	"filaments/internal/packet"
	"filaments/internal/sim"
	"filaments/internal/simnet"
	"filaments/internal/threads"
)

func init() {
	register("fig2", "Initial fork/join work distribution over the logical tree (Figure 2)", fig2)
	register("fig3", "Packet protocol scenarios (Figure 3)", fig3)
	register("fig4", "Matrix multiplication 512x512 (Figure 4)", fig4)
	register("fig5", "Jacobi iteration 256x256, 360 iterations (Figure 5)", fig5)
	register("fig6", "Adaptive quadrature, interval of length 24 (Figure 6)", fig6)
	register("fig7", "Binary expression trees, 70x70, height 7 (Figure 7)", fig7)
	register("fig8", "Barrier synchronization, 1000 barriers (Figure 8)", fig8)
	register("fig9", "Filaments overheads (Figure 9)", fig9)
	register("fig10", "Jacobi per-node overhead breakdown, 8 nodes (Figure 10)", fig10)
	register("fig11", "Jacobi with write-invalidate PCP (Figure 11)", fig11)
	register("fig12", "Jacobi, single pool / no overlap (Figure 12)", fig12)
}

// --- Figure 2 ---

func fig2(w io.Writer, o Options) {
	const nodes = 16
	firstStep := make([]int, nodes)
	cl := filaments.New(filaments.Config{Nodes: nodes})
	var firstWork [nodes]sim.Time
	_, err := cl.Run(func(rt *filaments.Runtime, e *filaments.Exec) {
		const fnID = 1
		var body fl.FJFunc
		body = func(e *fl.Exec, a fl.Args) float64 {
			id := e.Runtime().ID()
			if firstWork[id] == 0 {
				firstWork[id] = e.Runtime().Node().Now()
			}
			depth := a[0]
			e.Compute(200 * sim.Microsecond)
			if depth == 0 {
				return 1
			}
			rtl := e.Runtime()
			j := rtl.NewJoin()
			rtl.Fork(e, j, fnID, fl.Args{depth - 1})
			rtl.Fork(e, j, fnID, fl.Args{depth - 1})
			return j.Wait(e)
		}
		rt.RegisterFJ(fnID, body)
		rt.RunForkJoin(e, fnID, filaments.Args{10})
	})
	if err != nil {
		panic(err)
	}
	// Assign steps by arrival-time order: the number of nodes with work
	// must double each step.
	type nt struct {
		id int
		t  sim.Time
	}
	order := make([]nt, 0, nodes)
	for id, t := range firstWork {
		order = append(order, nt{id, t})
	}
	for i := range order { // insertion sort by time (stable, deterministic)
		for j := i; j > 0 && order[j].t < order[j-1].t; j-- {
			order[j], order[j-1] = order[j-1], order[j]
		}
	}
	step, covered := 0, 1
	firstStep[order[0].id] = 0
	for i := 1; i < nodes; i++ {
		if i >= covered {
			step++
			covered = 1 << step
		}
		firstStep[order[i].id] = step
	}
	fmt.Fprintf(w, "step at which each of %d nodes first received work\n", nodes)
	fmt.Fprintf(w, "  paper (Figure 2): node i joins at step = 1 + floor(log2(i)); counts double per step\n")
	fmt.Fprintf(w, "  node: ")
	for id := 0; id < nodes; id++ {
		fmt.Fprintf(w, "%3d", id)
	}
	fmt.Fprintf(w, "\n  step: ")
	for id := 0; id < nodes; id++ {
		fmt.Fprintf(w, "%3d", firstStep[id])
	}
	fmt.Fprintln(w)
	counts := map[int]int{}
	for _, s := range firstStep {
		counts[s]++
	}
	fmt.Fprintf(w, "  nodes newly busy per step:")
	for s := 0; s <= step; s++ {
		fmt.Fprintf(w, " %d", counts[s])
	}
	fmt.Fprintf(w, "  (want 1 1 2 4 8)\n")
}

// --- Figure 3 ---

func fig3(w io.Writer, o Options) {
	scenarios := []struct {
		name  string
		setup func(nw *simnet.Network, m *cost.Model)
	}{
		{"(a) no problems", func(nw *simnet.Network, m *cost.Model) {}},
		// In each lossy scenario the second frame from the relevant node
		// is the DSM page request/reply (the first is barrier traffic).
		{"(b) request lost", func(nw *simnet.Network, m *cost.Model) {
			n := 0
			nw.DropFilter = func(f *simnet.Frame) bool {
				if f.Src == 1 {
					n++
					return n == 2
				}
				return false
			}
		}},
		{"(c) reply lost", func(nw *simnet.Network, m *cost.Model) {
			n := 0
			nw.DropFilter = func(f *simnet.Frame) bool {
				if f.Src == 0 {
					n++
					return n == 2
				}
				return false
			}
		}},
		{"(d) reply delayed", func(nw *simnet.Network, m *cost.Model) {
			n := 0
			nw.DelayFilter = func(f *simnet.Frame) sim.Duration {
				if f.Src == 0 {
					n++
					if n == 2 {
						return m.RetransmitTimeout + 10*sim.Millisecond
					}
				}
				return 0
			}
		}},
	}
	for _, sc := range scenarios {
		cl := filaments.New(filaments.Config{Nodes: 2, Protocol: filaments.ImplicitInvalidate})
		addr := cl.AllocOwned(8, 0)
		sc.setup(cl.Network(), cl.Model())
		var got float64
		var elapsed sim.Duration
		_, err := cl.Run(func(rt *filaments.Runtime, e *filaments.Exec) {
			if rt.ID() == 0 {
				rt.DSM().WriteF64(e.Thread(), addr, 42)
			}
			e.Barrier()
			if rt.ID() == 1 {
				t0 := rt.Node().Now()
				got = e.ReadF64(addr)
				elapsed = rt.Node().Now().Sub(t0)
			}
			e.Barrier()
		})
		if err != nil {
			panic(err)
		}
		ps := cl.Runtime(1).Endpoint().(*packet.Endpoint).Stats()
		fmt.Fprintf(w, "%-18s page read ok=%v  latency=%-10v retransmits=%d\n",
			sc.name, got == 42, elapsed, ps.Retransmits)
	}
	fmt.Fprintf(w, "paper: request retransmitted on timeout; replies regenerated, never buffered;\n")
	fmt.Fprintf(w, "       duplicate replies discarded by the requester\n")
}

// --- Figure 4 ---

func fig4(w io.Writer, o Options) {
	cfg := matmul.Config{}
	if o.Quick {
		cfg.N = 128
	}
	seq, _ := matmul.Sequential(cfg)
	n := cfg.N
	if n == 0 {
		n = 512
	}
	t := newTable(w, o, fmt.Sprintf("matrix multiplication, %dx%d", n, n), seq.Seconds(), "205")
	paperCG := map[int]string{1: "205", 2: "104", 4: "53.3", 8: "30.1"}
	paperDF := map[int]string{1: "206", 2: "107", 4: "64.8", 8: "39.7"}
	var served8 int64
	for _, p := range o.nodes() {
		c := cfg
		c.Nodes = p
		cg, _ := matmul.CoarseGrain(c)
		df, _, cl := matmul.DF(c)
		t.row(p, cg.Seconds(), df.Seconds(), paperCG[p], paperDF[p])
		if p == 8 {
			served8 = cl.Runtime(0).DSM().Stats().Served
		}
	}
	if served8 > 0 {
		fmt.Fprintf(w, "  master page requests serviced on 8 nodes: %d (paper: 4032)\n", served8)
	}
}

// --- Figure 5 ---

func jacobiTable(w io.Writer, o Options, title string, dfCfg func(*jacobi.Config), paperDF map[int]string) {
	cfg := jacobi.Config{}
	if o.Quick {
		cfg.N = 128
		cfg.Iters = 60
	}
	seq, _ := jacobi.Sequential(cfg)
	t := newTable(w, o, title, seq.Seconds(), "215")
	paperCG := map[int]string{1: "215", 2: "98.1", 4: "53.1", 8: "35.8"}
	for _, p := range o.nodes() {
		c := cfg
		c.Nodes = p
		cg, _ := jacobi.CoarseGrain(c)
		dc := c
		if dfCfg != nil {
			dfCfg(&dc)
		}
		df, _, _ := jacobi.DF(dc)
		t.row(p, cg.Seconds(), df.Seconds(), paperCG[p], paperDF[p])
	}
}

func fig5(w io.Writer, o Options) {
	jacobiTable(w, o, "Jacobi iteration, implicit-invalidate, 3 pools", nil,
		map[int]string{1: "212", 2: "102", 4: "59.8", 8: "38.5"})
}

// --- Figure 6 ---

func fig6(w io.Writer, o Options) {
	cfg := quadrature.Config{}
	if o.Quick {
		cfg.Tol = 1e-4
	}
	seq, _ := quadrature.Sequential(cfg)
	t := newTable(w, o, "adaptive quadrature, interval of length 24", seq.Seconds(), "203")
	paperCG := map[int]string{1: "203", 2: "137", 4: "133", 8: "118"}
	paperDF := map[int]string{1: "210", 2: "119", 4: "59.0", 8: "35.7"}
	for _, p := range o.nodes() {
		c := cfg
		c.Nodes = p
		cg, _ := quadrature.CoarseGrain(c)
		df, _, _ := quadrature.DF(c)
		t.row(p, cg.Seconds(), df.Seconds(), paperCG[p], paperDF[p])
	}
	// §4.3's second coarse-grain program: the centralized bag of tasks.
	fmt.Fprintf(w, "  bag-of-tasks CG variant (paper: better balance, much worse absolute time):\n")
	for _, p := range o.nodes() {
		if p == 1 {
			continue
		}
		c := cfg
		c.Nodes = p
		bag, _ := quadrature.BagOfTasks(c, 0)
		fmt.Fprintf(w, "    %d nodes: %.1f s (speedup %.2f)\n", p, bag.Seconds(), seq.Seconds()/bag.Seconds())
	}
}

// --- Figure 7 ---

func fig7(w io.Writer, o Options) {
	cfg := exprtree.Config{}
	if o.Quick {
		cfg.Height = 5
		cfg.N = 24
	}
	seq, _ := exprtree.Sequential(cfg)
	t := newTable(w, o, "binary expression trees, 70x70 matrices, height 7", seq.Seconds(), "92.1")
	paperCG := map[int]string{1: "90.7", 2: "47.9", 4: "25.4", 8: "14.1"}
	paperDF := map[int]string{1: "92.2", 2: "54.0", 4: "28.1", 8: "17.5"}
	for _, p := range o.nodes() {
		c := cfg
		c.Nodes = p
		cg, _ := exprtree.CoarseGrain(c)
		df, _, _ := exprtree.DF(c)
		t.row(p, cg.Seconds(), df.Seconds(), paperCG[p], paperDF[p])
	}
	fmt.Fprintf(w, "  tail-end speedup cap for height 7: 3.85 on 4 nodes, 7.06 on 8 (paper)\n")
}

// --- Figure 8 ---

func fig8(w io.Writer, o Options) {
	fmt.Fprintf(w, "barrier synchronization, 1000 barriers\n")
	fmt.Fprintf(w, "  %-6s %16s %16s\n", "Nodes", "Time (ms)", "paper (ms)")
	paper := map[int]string{2: "3.20", 4: "5.29", 8: "8.45"}
	for _, p := range []int{2, 4, 8} {
		cl := filaments.New(filaments.Config{Nodes: p})
		rep, err := cl.Run(func(rt *filaments.Runtime, e *filaments.Exec) {
			for i := 0; i < 1000; i++ {
				e.Barrier()
			}
		})
		if err != nil {
			panic(err)
		}
		fmt.Fprintf(w, "  %-6d %16.2f %16s\n", p, rep.Elapsed.Milliseconds()/1000, paper[p])
	}
}

// --- Figure 9 ---

func fig9(w io.Writer, o Options) {
	fmt.Fprintf(w, "filaments overheads (virtual time)\n")
	fmt.Fprintf(w, "  %-28s %12s %14s %12s\n", "Operation", "Time (µs)", "ops/sec", "paper (µs)")

	line := func(name string, d sim.Duration, paper string) {
		fmt.Fprintf(w, "  %-28s %12.3f %14.0f %12s\n", name, d.Microseconds(), 1e6/d.Microseconds(), paper)
	}

	// Filament creation: build a large pool and take the per-Add cost.
	{
		const n = 100000
		cl := filaments.New(filaments.Config{Nodes: 1})
		var per sim.Duration
		cl.Run(func(rt *filaments.Runtime, e *filaments.Exec) {
			p := rt.NewPool("bench")
			t0 := rt.Node().Now()
			for i := 0; i < n; i++ {
				p.Add(e, func(e *filaments.Exec, a filaments.Args) {}, filaments.Args{int64(i)})
			}
			e.Flush()
			per = rt.Node().Now().Sub(t0) / n
		})
		line("Filaments creation", per, "2.10")
	}
	// Context switch between filaments, non-inlined (args break the strip
	// pattern) and inlined.
	for _, inlined := range []bool{false, true} {
		const n = 100000
		cl := filaments.New(filaments.Config{Nodes: 1})
		var per sim.Duration
		cl.Run(func(rt *filaments.Runtime, e *filaments.Exec) {
			p := rt.NewPool("bench")
			for i := 0; i < n; i++ {
				a := filaments.Args{int64(i)}
				if !inlined {
					a[2] = int64(i % 7) // break the lattice
				}
				p.Add(e, func(e *filaments.Exec, a filaments.Args) {}, a)
			}
			e.Flush()
			t0 := rt.Node().Now()
			rt.RunPools(e)
			per = rt.Node().Now().Sub(t0) / n
		})
		if inlined {
			line("Context switch: Fil. Inlined", per, "0.126")
		} else {
			line("Context switch: Filaments", per, "0.643")
		}
	}
	// Server-thread context switch: two threads ping-pong via the ready
	// queue.
	{
		const n = 20000
		cl := filaments.New(filaments.Config{Nodes: 1})
		var per sim.Duration
		cl.Run(func(rt *filaments.Runtime, e *filaments.Exec) {
			node := rt.Node()
			done := 0
			main := e.Thread()
			body := func(t kernel.Thread) {
				for i := 0; i < n; i++ {
					t.Yield()
				}
				done++
				if done == 2 {
					node.Ready(main, false)
				}
			}
			t0 := node.Now()
			node.Spawn("a", body)
			node.Spawn("b", body)
			main.Block()
			per = node.Now().Sub(t0) / (2 * n)
		})
		line("Context switch: Threads", per, "48.8")
	}
	// Page fault: remote 4 KB read on an otherwise idle pair of nodes,
	// owner known, page immediately available (the paper's conditions).
	{
		const n = 50
		cl := filaments.New(filaments.Config{Nodes: 2, Protocol: filaments.ImplicitInvalidate})
		addr := cl.AllocOwned(8, 0)
		var per sim.Duration
		cl.Run(func(rt *filaments.Runtime, e *filaments.Exec) {
			if rt.ID() == 0 {
				rt.DSM().WriteF64(e.Thread(), addr, 1)
				e.Barrier()
				e.Barrier()
				return
			}
			e.Barrier()
			var total sim.Duration
			for i := 0; i < n; i++ {
				t0 := rt.Node().Now()
				_ = rt.DSM().ReadF64(e.Thread(), addr)
				total += rt.Node().Now().Sub(t0)
				rt.DSM().AtBarrier() // drop the copy so the next read faults
			}
			per = total / n
			e.Barrier()
		})
		line("Page fault (4 KB)", per, "4120")
	}
}

// --- Figure 10 ---

func fig10(w io.Writer, o Options) {
	cfg := jacobi.Config{Nodes: 8}
	if o.Quick {
		cfg.N = 128
		cfg.Iters = 60
	}
	rep, _, _ := jacobi.DF(cfg)
	fmt.Fprintf(w, "Jacobi iteration, 8 nodes: per-node time breakdown (seconds)\n")
	fmt.Fprintf(w, "  total execution time: %.1f s (paper, profiled: 42.1 s)\n", rep.Seconds())
	fmt.Fprintf(w, "  %-10s %8s %14s %14s %14s %12s\n",
		"Node", "Work", "Filament Exec", "Data Transfer", "Sync Overhead", "Sync Delay")
	name := func(i int) string {
		switch i {
		case 0:
			return "master"
		case 7:
			return "tail"
		}
		return fmt.Sprintf("interior%d", i)
	}
	for i, nr := range rep.PerNode {
		a := nr.CPU
		fmt.Fprintf(w, "  %-10s %8.1f %14.2f %14.2f %14.2f %12.1f\n",
			name(i),
			a[threads.CatWork].Seconds(),
			a[threads.CatFilament].Seconds(),
			a[threads.CatData].Seconds(),
			a[threads.CatSync].Seconds(),
			a[threads.CatSyncDelay].Seconds())
	}
	fmt.Fprintf(w, "  paper:   master 22.3 / 1.57 / 7.75 / 0.99 / 6.62\n")
	fmt.Fprintf(w, "           interior 22.9-24.4 / 1.54-1.87 / 2.31-3.02 / 1.51-2.14 / 5.24-10.3\n")
	fmt.Fprintf(w, "           tail 22.6 / 1.73 / 1.53 / 1.12 / 14.7\n")
}

// --- Figures 11 and 12 ---

func fig11(w io.Writer, o Options) {
	jacobiTable(w, o, "Jacobi iteration, write-invalidate PCP (ablation of implicit-invalidate)",
		func(c *jacobi.Config) { c.Protocol = filaments.WriteInvalidate },
		map[int]string{1: "212", 2: "103", 4: "61.4", 8: "40.9"})
}

func fig12(w io.Writer, o Options) {
	jacobiTable(w, o, "Jacobi iteration, implicit-invalidate, single pool (no overlap)",
		func(c *jacobi.Config) { c.SinglePool = true },
		map[int]string{1: "212", 2: "104", 4: "65.5", 8: "48.5"})
}
