package bench

import (
	"fmt"
	"io"

	"filaments"
	"filaments/internal/apps/exprtree"
	"filaments/internal/apps/jacobi"
	"filaments/internal/apps/quadrature"
	"filaments/internal/cost"
	"filaments/internal/sim"
)

// Ablations for the design choices DESIGN.md calls out: each isolates one
// mechanism the paper introduces and measures the system with and without
// it.

func init() {
	register("abl-pcp", "Ablation: page consistency protocol sweep on Jacobi", ablPCP)
	register("abl-overlap", "Ablation: multithreaded overlap (pools) on Jacobi", ablOverlap)
	register("abl-steal", "Ablation: receiver-initiated load balancing", ablSteal)
	register("abl-barrier", "Ablation: tournament vs centralized barrier", ablBarrier)
	register("abl-mirage", "Ablation: Mirage time window under false sharing", ablMirage)
	register("abl-frag", "Ablation: packet loss resilience (Packet under injected loss)", ablLoss)
	register("abl-autopool", "Ablation: automatic pool clustering vs hand assignment", ablAutoPool)
	register("abl-dissem", "Ablation: dissemination barrier vs tournament", ablDissem)
}

// ablAutoPool compares the hand-written jacobi pool layout with the
// runtime's automatic clustering (create one pool per fault signature,
// then adaptively consolidate the never-faulting ones) and the single-pool
// baseline.
func ablAutoPool(w io.Writer, o Options) {
	cfg := jacobi.Config{Nodes: 8}
	if o.Quick {
		cfg.N = 128
		cfg.Iters = 60
	}
	fmt.Fprintf(w, "Jacobi on 8 nodes: pool assignment strategies\n")
	hand, _, _ := jacobi.DF(cfg)
	a := cfg
	a.AutoPools = true
	auto, _, cl := jacobi.DF(a)
	s := cfg
	s.SinglePool = true
	single, _, _ := jacobi.DF(s)
	fmt.Fprintf(w, "  hand pools (top/bottom/interior): %8.1f s\n", hand.Seconds())
	fmt.Fprintf(w, "  automatic clustering:             %8.1f s (%d pools on node 1 after consolidation)\n",
		auto.Seconds(), len(cl.Runtime(1).PoolOrder()))
	fmt.Fprintf(w, "  single pool:                      %8.1f s\n", single.Seconds())
}

// ablDissem compares the tournament barrier with the butterfly
// dissemination allreduce on power-of-two clusters.
func ablDissem(w io.Writer, o Options) {
	fmt.Fprintf(w, "1000 reductions: tournament vs dissemination butterfly\n")
	fmt.Fprintf(w, "  %-6s %16s %18s %14s %14s\n", "Nodes", "tournament (ms)", "dissemination (ms)", "frames/barrier", "(tournament)")
	for _, p := range []int{2, 4, 8, 16} {
		var times [2]float64
		var frames [2]int64
		for i, dis := range []bool{false, true} {
			cl := filaments.New(filaments.Config{Nodes: p, DisseminationBarrier: dis})
			rep, err := cl.Run(func(rt *filaments.Runtime, e *filaments.Exec) {
				for k := 0; k < 1000; k++ {
					e.Reduce(1, filaments.Sum)
				}
			})
			if err != nil {
				panic(err)
			}
			times[i] = rep.Elapsed.Milliseconds() / 1000
			frames[i] = rep.Net.FramesSent / 1000
		}
		fmt.Fprintf(w, "  %-6d %16.2f %18.2f %14d %14d\n", p, times[0], times[1], frames[1], frames[0])
	}
	fmt.Fprintf(w, "  (the butterfly trades O(p log p) messages for fully parallel rounds)\n")
}

// ablPCP sweeps the three protocols over Jacobi.
func ablPCP(w io.Writer, o Options) {
	cfg := jacobi.Config{Nodes: 8}
	if o.Quick {
		cfg.N = 128
		cfg.Iters = 60
	}
	fmt.Fprintf(w, "Jacobi on 8 nodes under each page consistency protocol\n")
	for _, proto := range []filaments.Protocol{
		filaments.ImplicitInvalidate, filaments.WriteInvalidate, filaments.Migratory,
	} {
		c := cfg
		if proto == filaments.Migratory {
			// The Config's Protocol zero value means "app default", so a
			// genuine migratory run uses the explicit flag.
			c.UseMigratory = true
		} else {
			c.Protocol = proto
		}
		rep, _, cl := jacobi.DF(c)
		var invals, faults int64
		for i := 0; i < cfg.Nodes; i++ {
			st := cl.Runtime(i).DSM().Stats()
			invals += st.InvalsSent
			faults += st.ReadFaults + st.WriteFaults
		}
		fmt.Fprintf(w, "  %-20v %8.1f s   faults=%-6d invalidations=%d\n",
			cl.Runtime(0).DSM().Protocol(), rep.Seconds(), faults, invals)
	}
	fmt.Fprintf(w, "  (implicit-invalidate must win: same faults, zero invalidations)\n")
}

// ablOverlap compares 3-pool and single-pool Jacobi across cluster sizes —
// the paper's 9%%/21%% overlap claim generalized.
func ablOverlap(w io.Writer, o Options) {
	cfg := jacobi.Config{}
	if o.Quick {
		cfg.N = 128
		cfg.Iters = 60
	}
	fmt.Fprintf(w, "Jacobi: communication/computation overlap from multiple pools\n")
	fmt.Fprintf(w, "  %-6s %12s %12s %12s\n", "Nodes", "3 pools (s)", "1 pool (s)", "gain")
	for _, p := range []int{2, 4, 8} {
		c := cfg
		c.Nodes = p
		multi, _, _ := jacobi.DF(c)
		c.SinglePool = true
		single, _, _ := jacobi.DF(c)
		fmt.Fprintf(w, "  %-6d %12.1f %12.1f %11.1f%%\n", p,
			multi.Seconds(), single.Seconds(),
			100*(single.Seconds()-multi.Seconds())/single.Seconds())
	}
	fmt.Fprintf(w, "  paper: 9%% on 4 nodes, 21%% on 8\n")
}

// ablSteal measures dynamic load balancing where it should win (adaptive
// quadrature) and where the paper says it does not pay (balanced trees).
func ablSteal(w io.Writer, o Options) {
	qcfg := quadrature.Config{Nodes: 8}
	if o.Quick {
		qcfg.Tol = 1e-4
	}
	ecfg := exprtree.Config{Nodes: 8}
	if o.Quick {
		ecfg.Height = 5
		ecfg.N = 24
	}
	fmt.Fprintf(w, "receiver-initiated load balancing on 8 nodes\n")
	qOn, _, _ := quadrature.DF(qcfg)
	qOffRep := runQuadNoSteal(qcfg)
	fmt.Fprintf(w, "  adaptive quadrature: stealing %8.1f s, no stealing %8.1f s (imbalanced: stealing must win)\n",
		qOn.Seconds(), qOffRep.Seconds())
	eOff, _, _ := exprtree.DF(ecfg)
	ecfg.Stealing = true
	eOn, _, _ := exprtree.DF(ecfg)
	fmt.Fprintf(w, "  expression trees:    stealing %8.1f s, no stealing %8.1f s (balanced: paper says stealing \"does not pay\")\n",
		eOn.Seconds(), eOff.Seconds())
}

// runQuadNoSteal reruns the DF quadrature with stealing disabled. The
// quadrature app enables stealing unconditionally (as the paper's program
// did), so this variant reimplements the call with the flag off via the
// public API.
func runQuadNoSteal(cfg quadrature.Config) *filaments.Report {
	rep, _ := quadrature.DFWithStealing(cfg, false)
	return rep
}

// ablBarrier compares the tournament barrier with the centralized
// coordinator baseline.
func ablBarrier(w io.Writer, o Options) {
	fmt.Fprintf(w, "1000 barriers: tournament (paper) vs centralized coordinator\n")
	fmt.Fprintf(w, "  %-6s %16s %16s\n", "Nodes", "tournament (ms)", "central (ms)")
	for _, p := range []int{2, 4, 8, 16} {
		var times [2]float64
		for i, central := range []bool{false, true} {
			cl := filaments.New(filaments.Config{Nodes: p, CentralBarrier: central})
			rep, err := cl.Run(func(rt *filaments.Runtime, e *filaments.Exec) {
				for k := 0; k < 1000; k++ {
					e.Barrier()
				}
			})
			if err != nil {
				panic(err)
			}
			times[i] = rep.Elapsed.Milliseconds() / 1000
		}
		fmt.Fprintf(w, "  %-6d %16.2f %16.2f\n", p, times[0], times[1])
	}
	fmt.Fprintf(w, "  (the coordinator serializes p-1 merges; the tournament pipelines them)\n")
}

// ablMirage stresses two writers false-sharing one page, with and without
// the Mirage window. Without the window the page can bounce between the
// nodes forever with neither writer progressing (each arrival is handed
// straight to the peer's queued request before the local thread runs), so
// the ablation measures progress within a fixed virtual time budget.
func ablMirage(w io.Writer, o Options) {
	fmt.Fprintf(w, "two nodes alternately writing one page (false sharing), 1 virtual second\n")
	for _, window := range []sim.Duration{0, 2 * sim.Millisecond, 10 * sim.Millisecond} {
		rounds, moves := runMirageStress(window)
		fmt.Fprintf(w, "  window %-8v rounds completed %-6d page moves %d\n",
			window, rounds, moves)
	}
	fmt.Fprintf(w, "  (the window amortizes each page move over a burst of local writes;\n")
	fmt.Fprintf(w, "   with window 0 the writers can starve completely)\n")
}

func runMirageStress(window sim.Duration) (int, int64) {
	var model filaments.CostModel
	cl := filaments.New(filaments.Config{Nodes: 2, Protocol: filaments.WriteInvalidate,
		Model: mirageModel(&model, window)})
	addr := cl.AllocOwned(8*64, 0)
	stop := false
	// The flag ends well-behaved runs; the engine stop ends the genuine
	// livelock, whose threads never leave their first write fault.
	cl.Engine().Schedule(sim.Second, func() { stop = true })
	cl.Engine().Schedule(sim.Second+10*sim.Millisecond, func() { cl.Engine().Stop() })
	rounds := [2]int{}
	_, err := cl.Run(func(rt *filaments.Runtime, e *filaments.Exec) {
		me := rt.ID()
		// Each node updates its own 32 slots of the same page.
		for !stop {
			for k := 0; k < 32; k++ {
				slot := me*32 + k
				e.WriteF64(addr+filaments.Addr(slot*8), float64(rounds[me]))
				e.Compute(20 * sim.Microsecond)
			}
			e.Flush()
			rounds[me]++
		}
	})
	if err != nil {
		panic(err)
	}
	var served int64
	for i := 0; i < 2; i++ {
		served += cl.Runtime(i).DSM().Stats().Served
	}
	min := rounds[0]
	if rounds[1] < min {
		min = rounds[1]
	}
	return min, served
}

func mirageModel(m *filaments.CostModel, window sim.Duration) *filaments.CostModel {
	*m = cost.Default()
	m.MirageWindow = window
	return m
}

// ablLoss runs Jacobi-DF under increasing injected frame loss: Packet must
// deliver correct results with graceful slowdown, where the paper's CG
// programs simply hung ("when a message was lost, the program hung and the
// test was aborted").
func ablLoss(w io.Writer, o Options) {
	cfg := jacobi.Config{Nodes: 4, N: 128, Iters: 60}
	want := jacobi.Reference(128, 60)
	fmt.Fprintf(w, "Jacobi DF on 4 nodes under injected frame loss\n")
	for _, loss := range []float64{0, 0.01, 0.05, 0.10} {
		c := cfg
		c.LossRate = loss
		rep, grid, _ := jacobi.DF(c)
		ok := true
		for i := range grid {
			for j := range grid[i] {
				if grid[i][j] != want[i][j] {
					ok = false
				}
			}
		}
		fmt.Fprintf(w, "  loss %4.0f%%: %8.2f s, result exact: %v\n", loss*100, rep.Seconds(), ok)
	}
}
