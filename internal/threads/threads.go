// Package threads implements the per-node execution machinery of
// Distributed Filaments: a single-CPU node running a non-preemptive
// scheduler over stackful server threads (paper §2.2).
//
// Each Node owns one virtual CPU. A kernel process dispatches incoming
// network messages and ready server threads; at most one of them runs at a
// time. Server threads execute filaments and block at unpredictable points
// (DSM page faults, fork/join joins); when one blocks, the kernel switches
// to another, which is how DF overlaps communication with computation.
//
// Message handling follows the paper's SIGIO model as closely as the
// simulation allows: a message that arrives while the node is idle is
// handled immediately; one that arrives while a thread is computing is
// handled at the thread's next dispatch point (Thread.Preempt, called
// between filaments), so handler latency is bounded by one filament.
//
// Node is the simulation binding of kernel.Node (kernel.Executor +
// kernel.Clock); the real-time binding is internal/rtnode.
package threads

import (
	"fmt"

	"filaments/internal/cost"
	"filaments/internal/kernel"
	"filaments/internal/obs"
	"filaments/internal/sim"
	"filaments/internal/simnet"
)

// Category classifies where a node's CPU time goes, matching the breakdown
// of the paper's Figure 10. It is an alias of the binding-neutral
// kernel.Category.
type Category = kernel.Category

// Accounting categories, re-exported from package kernel.
const (
	CatWork       = kernel.CatWork
	CatFilament   = kernel.CatFilament
	CatData       = kernel.CatData
	CatSync       = kernel.CatSync
	CatSyncDelay  = kernel.CatSyncDelay
	CatIdle       = kernel.CatIdle
	NumCategories = kernel.NumCategories
)

// Account is the per-node CPU time ledger.
type Account = kernel.Account

// Handler processes a delivered frame. It runs on the node's CPU (kernel or
// preempting thread context) and must charge its own receive cost via
// Node.Charge before acting.
type Handler func(f simnet.Frame)

// Node is one simulated workstation: a CPU, a kernel dispatcher, an inbox,
// and a set of server threads.
type Node struct {
	id    simnet.NodeID
	eng   *sim.Engine
	nw    *simnet.Network
	model *cost.Model

	kernel     *sim.Proc
	idle       bool
	idleSince  sim.Time
	shutdown   bool
	inbox      []simnet.Frame
	ready      []*Thread // FIFO deque; index 0 is the front
	handler    Handler
	lastThread *Thread

	// Critical mirrors the paper's one-assignment critical-section flag:
	// while set, protocol handlers that would modify critical data drop
	// the message (the requester retransmits).
	Critical bool

	acct     Account
	switches int64
	started  sim.Time
	finished sim.Time

	obs *obs.Obs
}

// NewNode creates a node attached to the network and registers its delivery
// handler. Start must be called before the simulation delivers messages
// that need processing.
func NewNode(nw *simnet.Network, id simnet.NodeID) *Node {
	n := &Node{
		id:    id,
		eng:   nw.Engine(),
		nw:    nw,
		model: nw.Model(),
		obs:   obs.New(int(id)),
	}
	nw.Register(id, n.deliver)
	return n
}

// Obs returns the node's observability handle (obs.Provider).
func (n *Node) Obs() *obs.Obs { return n.obs }

// ID returns the node's network identity.
func (n *Node) ID() simnet.NodeID { return n.id }

// InCritical reports whether the node is inside a critical section.
func (n *Node) InCritical() bool { return n.Critical }

// SetHandler installs the protocol upcall for delivered frames.
func (n *Node) SetHandler(h Handler) { n.handler = h }

// Engine returns the simulation engine.
func (n *Node) Engine() *sim.Engine { return n.eng }

// Network returns the network this node is attached to.
func (n *Node) Network() *simnet.Network { return n.nw }

// Model returns the node's cost model.
func (n *Node) Model() *cost.Model { return n.model }

// Now returns the current virtual time (kernel.Clock).
func (n *Node) Now() sim.Time { return n.eng.Now() }

// Schedule runs fn after virtual duration d (kernel.Clock). The callback
// runs as a simulation event, i.e. in node context for a one-CPU node.
func (n *Node) Schedule(d sim.Duration, fn func()) kernel.Timer {
	return n.eng.Schedule(d, fn)
}

// Account returns the node's CPU-time ledger so far.
func (n *Node) Account() Account { return n.acct }

// Switches returns the number of server-thread context switches performed.
func (n *Node) Switches() int64 { return n.switches }

// deliver runs as a simulation event when a frame arrives. It only
// enqueues; CPU costs are charged when the node processes the frame.
func (n *Node) deliver(f simnet.Frame) {
	trace(n, "deliver", f.Payload)
	n.inbox = append(n.inbox, f)
	if n.idle {
		n.idle = false
		n.acct[CatIdle] += n.eng.Now().Sub(n.idleSince)
		n.kernel.Unpark()
	}
}

// Inject enqueues a local work item that is processed through the node's
// handler exactly like an incoming frame (charging node CPU when handled).
// Protocol layers use it to run timer-driven work, such as retransmissions,
// on the node's CPU. It is safe to call from plain event code.
func (n *Node) Inject(payload any) {
	n.inbox = append(n.inbox, simnet.Frame{Src: n.id, Dst: n.id, Payload: payload})
	n.wakeIfIdle()
}

// Start launches the kernel dispatcher. It must be called once.
func (n *Node) Start() {
	if n.kernel != nil {
		panic("threads: node already started")
	}
	n.started = n.eng.Now()
	n.kernel = n.eng.Go(fmt.Sprintf("node%d/kernel", n.id), n.kernelLoop)
}

// Stop shuts the kernel down once current work drains. Threads must have
// finished (or be deliberately abandoned) by the caller's protocol.
func (n *Node) Stop() {
	n.shutdown = true
	n.finished = n.eng.Now()
	if n.idle {
		n.idle = false
		n.acct[CatIdle] += n.eng.Now().Sub(n.idleSince)
		n.kernel.Unpark()
	}
}

// Uptime returns how long the node ran (Start to Stop, or to now).
func (n *Node) Uptime() sim.Duration {
	end := n.finished
	if end == 0 {
		end = n.eng.Now()
	}
	return end.Sub(n.started)
}

// Trace, when non-nil, is called at interesting scheduler points
// (debugging hook; no cost charged).
var Trace func(n *Node, what string, detail any)

func trace(n *Node, what string, detail any) {
	if Trace != nil {
		Trace(n, what, detail)
	}
}

func (n *Node) kernelLoop(p *sim.Proc) {
	for {
		switch {
		case len(n.inbox) > 0:
			n.drainInbox()
		case len(n.ready) > 0:
			t := n.ready[0]
			n.ready = n.ready[1:]
			n.dispatch(t)
		case n.shutdown:
			return
		default:
			n.idle = true
			n.idleSince = n.eng.Now()
			p.Park()
		}
	}
}

// drainInbox processes every pending frame through the protocol handler.
// It runs on the active proc (kernel or a preempting thread).
func (n *Node) drainInbox() {
	for len(n.inbox) > 0 {
		f := n.inbox[0]
		n.inbox = n.inbox[1:]
		if n.handler == nil {
			continue
		}
		trace(n, "handle", f.Payload)
		n.handler(f)
	}
}

// dispatch runs thread t until it yields, blocks, or finishes.
func (n *Node) dispatch(t *Thread) {
	if t.state == threadDone {
		return
	}
	trace(n, "dispatch", t.name)
	if n.lastThread != t {
		n.switches++
		n.Charge(CatData, n.model.ThreadSwitch)
	}
	n.lastThread = t
	t.state = threadRunning
	t.proc.Unpark()
	n.kernel.Park() // thread unparks us when it stops running
}

// Charge spends d of the node's CPU in virtual time and accounts it to
// category c. It must be called from node code (kernel or thread).
func (n *Node) Charge(c Category, d sim.Duration) {
	if d <= 0 {
		return
	}
	n.acct[c] += d
	cur := n.eng.Current()
	if cur == nil {
		panic("threads: Charge outside simulation process")
	}
	cur.Sleep(d)
}

// AddDelay records d against category c without consuming CPU time (used
// for measured waiting, e.g. barrier arrival skew).
func (n *Node) AddDelay(c Category, d sim.Duration) {
	if d > 0 {
		n.acct[c] += d
	}
}

// Send transmits payload to dst, charging the sender's CPU cost to
// category c.
func (n *Node) Send(dst simnet.NodeID, payload any, size int, c Category) {
	n.Charge(c, n.model.SendCost(size))
	n.nw.Send(simnet.Frame{Src: n.id, Dst: dst, Payload: payload, Size: size})
}

// thread states.
type threadState int

const (
	threadReady threadState = iota
	threadRunning
	threadBlocked
	threadDone
)

// Thread is a stackful server thread. Filaments run on threads; a thread
// blocks when a filament faults on a remote page or waits at a join, and
// the kernel switches to another thread. Thread is the simulation binding
// of kernel.Thread.
type Thread struct {
	node  *Node
	proc  *sim.Proc
	name  string
	state threadState
}

// Spawn creates a server thread that will run body when first scheduled.
// The thread is placed at the back of the ready queue.
func (n *Node) Spawn(name string, body func(t kernel.Thread)) kernel.Thread {
	t := &Thread{node: n, name: name, state: threadReady}
	t.proc = n.eng.Go(fmt.Sprintf("node%d/%s", n.id, name), func(p *sim.Proc) {
		p.Park() // wait for first dispatch
		body(t)
		t.state = threadDone
		n.kernel.Unpark()
	})
	n.ready = append(n.ready, t)
	n.wakeIfIdle()
	return t
}

func (n *Node) wakeIfIdle() {
	if n.idle {
		n.idle = false
		n.acct[CatIdle] += n.eng.Now().Sub(n.idleSince)
		n.kernel.Unpark()
	}
}

// Node returns the thread's node.
func (t *Thread) Node() *Node { return t.node }

// Name returns the thread's name.
func (t *Thread) Name() string { return t.name }

// Block suspends the thread until some other code calls Ready on it. It
// returns when the thread is next dispatched.
func (t *Thread) Block() {
	t.state = threadBlocked
	t.node.kernel.Unpark()
	t.proc.Park()
}

// Yield places the thread at the back of the ready queue and returns to the
// kernel; the thread resumes after other ready threads (and pending
// messages) have had their turn.
func (t *Thread) Yield() {
	t.state = threadReady
	t.node.ready = append(t.node.ready, t)
	t.node.kernel.Unpark()
	t.proc.Park()
}

// Ready makes a blocked thread runnable. With front true the thread goes to
// the front of the ready queue (the paper schedules page-arrival wakeups at
// the front in the fork/join anti-thrashing path, and at the back for
// iterative fault frontloading). The thread must be one of this node's.
func (n *Node) Ready(kt kernel.Thread, front bool) {
	t, ok := kt.(*Thread)
	if !ok || t.node != n {
		panic(fmt.Sprintf("threads: Ready on foreign thread %q", kt.Name()))
	}
	if t.state != threadBlocked {
		panic(fmt.Sprintf("threads: Ready on %s thread %q", []string{"ready", "running", "blocked", "done"}[t.state], t.name))
	}
	t.state = threadReady
	if front {
		n.ready = append([]*Thread{t}, n.ready...)
	} else {
		n.ready = append(n.ready, t)
	}
	n.wakeIfIdle()
}

// Preempt is a dispatch point: if messages arrived while this thread was
// computing, they are handled now, on this thread's stack, exactly like a
// SIGIO handler interrupting the computation. Control then returns to the
// thread.
func (t *Thread) Preempt() {
	if len(t.node.inbox) > 0 {
		t.node.drainInbox()
	}
}

// ReadyLen reports how many threads are ready to run (used by load-balance
// policies to detect an idle node).
func (n *Node) ReadyLen() int { return len(n.ready) }

// InboxLen reports how many frames await processing.
func (n *Node) InboxLen() int { return len(n.inbox) }
