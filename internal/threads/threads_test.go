package threads

import (
	"testing"

	"filaments/internal/cost"
	"filaments/internal/kernel"
	"filaments/internal/sim"
	"filaments/internal/simnet"
)

func newNode(t *testing.T, nNodes int) (*sim.Engine, *simnet.Network, []*Node) {
	t.Helper()
	eng := sim.New(1)
	m := cost.Default()
	nw := simnet.New(eng, &m, nNodes)
	nodes := make([]*Node, nNodes)
	for i := range nodes {
		nodes[i] = NewNode(nw, simnet.NodeID(i))
	}
	return eng, nw, nodes
}

func TestSpawnRunsToCompletion(t *testing.T) {
	eng, _, nodes := newNode(t, 1)
	n := nodes[0]
	done := false
	n.Start()
	eng.Schedule(0, func() {
		n.Spawn("t0", func(th kernel.Thread) {
			n.Charge(CatWork, sim.Millisecond)
			done = true
			n.Stop()
		})
	})
	if err := eng.Run(); err != nil {
		t.Fatal(err)
	}
	if !done {
		t.Fatal("thread did not run")
	}
	if n.Account()[CatWork] != sim.Millisecond {
		t.Fatalf("work account = %v", n.Account()[CatWork])
	}
}

func TestYieldRoundRobin(t *testing.T) {
	eng, _, nodes := newNode(t, 1)
	n := nodes[0]
	var order []string
	n.Start()
	eng.Schedule(0, func() {
		for _, name := range []string{"a", "b"} {
			name := name
			n.Spawn(name, func(th kernel.Thread) {
				for i := 0; i < 3; i++ {
					order = append(order, name)
					th.Yield()
				}
			})
		}
		n.Spawn("closer", func(th kernel.Thread) {
			// Let a and b finish first: they were spawned before us and
			// yield keeps them in the queue.
			for len(order) < 6 {
				th.Yield()
			}
			n.Stop()
		})
	})
	if err := eng.Run(); err != nil {
		t.Fatal(err)
	}
	want := []string{"a", "b", "a", "b", "a", "b"}
	for i, w := range want {
		if order[i] != w {
			t.Fatalf("order = %v, want %v", order, want)
		}
	}
}

func TestBlockAndReady(t *testing.T) {
	eng, _, nodes := newNode(t, 1)
	n := nodes[0]
	var blocked kernel.Thread
	var trace []string
	n.Start()
	eng.Schedule(0, func() {
		blocked = n.Spawn("sleeper", func(th kernel.Thread) {
			trace = append(trace, "block")
			th.Block()
			trace = append(trace, "woke")
			n.Stop()
		})
		n.Spawn("waker", func(th kernel.Thread) {
			n.Charge(CatWork, 5*sim.Millisecond)
			trace = append(trace, "ready")
			n.Ready(blocked, false)
		})
	})
	if err := eng.Run(); err != nil {
		t.Fatal(err)
	}
	want := []string{"block", "ready", "woke"}
	for i, w := range want {
		if trace[i] != w {
			t.Fatalf("trace = %v", trace)
		}
	}
}

func TestReadyFrontVsBack(t *testing.T) {
	for _, front := range []bool{true, false} {
		eng, _, nodes := newNode(t, 1)
		n := nodes[0]
		var woken, other kernel.Thread
		var order []string
		n.Start()
		eng.Schedule(0, func() {
			woken = n.Spawn("woken", func(th kernel.Thread) {
				th.Block()
				order = append(order, "woken")
			})
			other = n.Spawn("other", func(th kernel.Thread) {
				th.Block()
				order = append(order, "other")
			})
			n.Spawn("driver", func(th kernel.Thread) {
				// Both blocked now (they were spawned first). Wake "other"
				// at the back, then "woken" with the front flag under test.
				n.Ready(other, false)
				n.Ready(woken, front)
				th.Yield()
				n.Stop()
			})
		})
		if err := eng.Run(); err != nil {
			t.Fatal(err)
		}
		wantFirst := "other"
		if front {
			wantFirst = "woken"
		}
		if order[0] != wantFirst {
			t.Fatalf("front=%v: order = %v", front, order)
		}
	}
}

func TestMessageWakesIdleNode(t *testing.T) {
	eng, _, nodes := newNode(t, 2)
	a, b := nodes[0], nodes[1]
	got := 0
	b.SetHandler(func(f simnet.Frame) {
		b.Charge(CatData, b.Model().RecvCost(f.Size))
		got = f.Payload.(int)
		b.Stop()
	})
	a.SetHandler(func(f simnet.Frame) {})
	a.Start()
	b.Start()
	eng.Schedule(0, func() {
		a.Spawn("sender", func(th kernel.Thread) {
			a.Send(b.ID(), 42, 20, CatData)
			a.Stop()
		})
	})
	if err := eng.Run(); err != nil {
		t.Fatal(err)
	}
	if got != 42 {
		t.Fatalf("got = %d", got)
	}
	if b.Account()[CatIdle] == 0 {
		t.Fatal("receiver should have accumulated idle time before the message")
	}
}

func TestPreemptHandlesPendingMessages(t *testing.T) {
	eng, _, nodes := newNode(t, 2)
	a, b := nodes[0], nodes[1]
	var handledAt sim.Time
	b.SetHandler(func(f simnet.Frame) {
		b.Charge(CatData, b.Model().RecvCost(f.Size))
		handledAt = eng.Now()
	})
	a.SetHandler(func(f simnet.Frame) {})
	a.Start()
	b.Start()
	eng.Schedule(0, func() {
		a.Spawn("sender", func(th kernel.Thread) {
			a.Send(b.ID(), "ping", 20, CatData)
			a.Stop()
		})
		b.Spawn("compute", func(th kernel.Thread) {
			// Long computation in filament-sized slices; the message
			// arrives mid-way and is handled at the next Preempt.
			for i := 0; i < 100; i++ {
				b.Charge(CatWork, sim.Millisecond)
				th.Preempt()
			}
			b.Stop()
		})
	})
	if err := eng.Run(); err != nil {
		t.Fatal(err)
	}
	if handledAt == 0 {
		t.Fatal("message never handled")
	}
	if handledAt.Milliseconds() > 10 {
		t.Fatalf("message handled at %v; preempt should bound latency to ~one slice", handledAt)
	}
}

func TestThreadSwitchAccounting(t *testing.T) {
	eng, _, nodes := newNode(t, 1)
	n := nodes[0]
	n.Start()
	eng.Schedule(0, func() {
		n.Spawn("a", func(th kernel.Thread) { th.Yield(); th.Yield() })
		n.Spawn("b", func(th kernel.Thread) { th.Yield(); th.Yield() })
		n.Spawn("stop", func(th kernel.Thread) {
			for n.ReadyLen() > 0 {
				th.Yield()
			}
			n.Stop()
		})
	})
	if err := eng.Run(); err != nil {
		t.Fatal(err)
	}
	if n.Switches() < 4 {
		t.Fatalf("switches = %d, want >= 4", n.Switches())
	}
	wantMin := sim.Duration(n.Switches()) * n.Model().ThreadSwitch
	if n.Account()[CatData] < wantMin {
		t.Fatalf("data account %v < switch cost %v", n.Account()[CatData], wantMin)
	}
}

func TestStopDrainsCleanly(t *testing.T) {
	eng, _, nodes := newNode(t, 1)
	n := nodes[0]
	n.Start()
	eng.Schedule(0, func() {
		n.Spawn("t", func(th kernel.Thread) { n.Stop() })
	})
	if err := eng.Run(); err != nil {
		t.Fatal(err)
	}
	if eng.Live() != 0 {
		t.Fatalf("%d procs still live", eng.Live())
	}
}
