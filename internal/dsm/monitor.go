package dsm

import (
	"filaments/internal/kernel"
)

// Range is a half-open byte range [Lo, Hi) of the shared address space,
// used by the access-annotation API (NoteRead/NoteWrite) to declare the
// extent a phase or filament touches.
type Range struct {
	Lo, Hi Addr
}

// Contains reports whether a lies in the range.
func (r Range) Contains(a Addr) bool { return a >= r.Lo && a < r.Hi }

// TaskKey identifies one fork/join task across nodes: the join it reports
// to (origin node and join id), the registered function, and a hash of
// its arguments. It is defined here, not in internal/filament, so the
// whole Monitor seam lives in one package without an import cycle.
type TaskKey struct {
	Origin kernel.NodeID
	Join   int64
	Fn     int32
	Sum    uint64
}

// A Monitor observes the memory-model-relevant events of a run: every
// typed access, the declared access ranges, page-ownership transfers,
// barrier/reduction epochs, and fork/join task and result shipment. It is
// the seam cmd/dfcheck's happens-before checker attaches to.
//
// All callbacks run synchronously in node context (under the simulation,
// on the single scheduler goroutine; under the real-time binding, on the
// calling node's monitor goroutine), so a Monitor shared by several nodes
// must synchronize internally for the UDP binding. Callbacks must not
// block and must not call back into the DSM. A nil monitor costs one
// pointer load per access.
type Monitor interface {
	// OnAttach is called once when the monitor is installed on a Space.
	OnAttach(s *Space)
	// OnAccess reports one typed access of size bytes at a.
	OnAccess(node kernel.NodeID, a Addr, size int, write bool, now kernel.Time)
	// OnNote reports a declared access range (NoteRead/NoteWrite).
	OnNote(node kernel.NodeID, r Range, write bool, now kernel.Time)
	// OnPageServe reports that node from served block b to node to.
	// grantOwner is true when ownership moved with the data.
	OnPageServe(from, to kernel.NodeID, b int, grantOwner bool, now kernel.Time)
	// OnPageInstall reports that node installed block b received from from.
	OnPageInstall(node, from kernel.NodeID, b int, grantOwner bool, now kernel.Time)
	// OnDiffFlush reports that node from shipped its interval diff of
	// block b toward the block's home node to, at a release point (lazy
	// release consistency).
	OnDiffFlush(from, to kernel.NodeID, b int, now kernel.Time)
	// OnDiffMerge reports that the home node merged a flushed diff of
	// block b received from from.
	OnDiffMerge(node, from kernel.NodeID, b int, now kernel.Time)
	// OnBarrierArrive/OnBarrierRelease bracket one node's passage through
	// barrier (or reduction) epoch.
	OnBarrierArrive(node kernel.NodeID, epoch int64, now kernel.Time)
	OnBarrierRelease(node kernel.NodeID, epoch int64, now kernel.Time)
	// OnEpochQuiesced fires once per epoch, on the node that completed the
	// global fold, at an instant when every node has arrived and quiesced:
	// a safe point to snapshot page contents. The dissemination barrier
	// has no such global instant and never fires this.
	OnEpochQuiesced(node kernel.NodeID, epoch int64, now kernel.Time)
	// OnTaskShip/OnTaskStart pair a fork/join task's shipment to another
	// node (a fork send or a granted steal) with its arrival there.
	OnTaskShip(from, to kernel.NodeID, k TaskKey, now kernel.Time)
	OnTaskStart(node kernel.NodeID, k TaskKey, now kernel.Time)
	// OnResultShip/OnResultDeliver pair a remotely executed task's result
	// with its delivery at the join's origin node.
	OnResultShip(from, to kernel.NodeID, k TaskKey, now kernel.Time)
	OnResultDeliver(node kernel.NodeID, k TaskKey, now kernel.Time)
	// OnFilamentBegin/OnFilamentEnd bracket one fork/join filament body,
	// with the ranges its registered describer declared (nil when the
	// function has no describer). Bodies nest: a filament that waits on a
	// join runs pending tasks inline.
	OnFilamentBegin(node kernel.NodeID, label string, reads, writes []Range, now kernel.Time)
	OnFilamentEnd(node kernel.NodeID, now kernel.Time)
}

// SetMonitor installs m as the space's monitor (nil detaches). It must be
// called before the run starts; the DSM layer never synchronizes with it.
func (s *Space) SetMonitor(m Monitor) {
	s.monitor = m
	if m != nil {
		m.OnAttach(s)
	}
}

// Monitor returns the installed monitor, or nil.
func (s *Space) Monitor() Monitor { return s.monitor }

// Nodes returns how many node DSMs share this space.
func (s *Space) Nodes() int { return len(s.dsms) }

// NoteRead declares that this node is about to read the range, at
// range granularity, for the memory-model checker. A no-op without a
// monitor.
func (d *DSM) NoteRead(r Range) {
	if m := d.space.monitor; m != nil {
		m.OnNote(d.node.ID(), r, false, d.node.Now())
	}
}

// NoteWrite declares that this node is about to write the range.
func (d *DSM) NoteWrite(r Range) {
	if m := d.space.monitor; m != nil {
		m.OnNote(d.node.ID(), r, true, d.node.Now())
	}
}

// UnflushedDirty counts, across the cluster, the blocks still carrying
// unflushed multi-writer state: entries on an interval dirty list, or a
// live twin. It is meaningful only at globally quiescent instants
// (OnEpochQuiesced, or after the run), when every node has passed a
// release and the count must be zero; the release-consistency oracle
// asserts exactly that. Always zero under the single-writer protocols.
func (s *Space) UnflushedDirty() int {
	n := 0
	for _, d := range s.dsms {
		n += len(d.lrcDirty)
		for b := range d.blocks {
			if d.blocks[b].twin != nil {
				n++
			}
		}
	}
	return n
}

// BlockDigest returns an FNV-1a digest of block b's content as held by
// its current owner. It is meaningful only at globally quiescent instants
// (OnEpochQuiesced, or after the run), when exactly one node owns the
// block and no transfer is in flight; the second result is false if no
// owner frame was found.
func (s *Space) BlockDigest(b int) (uint64, bool) {
	for _, d := range s.dsms {
		st := &d.blocks[b]
		if st.owner && st.frame != nil {
			const (
				offset64 = 14695981039346656037
				prime64  = 1099511628211
			)
			h := uint64(offset64)
			for _, c := range st.frame {
				h ^= uint64(c)
				h *= prime64
			}
			return h, true
		}
	}
	return 0, false
}
