package dsm

import (
	"fmt"
	"sort"

	"filaments/internal/kernel"
)

// Lazy release consistency (home-based, barrier-scoped intervals).
//
// Every block permanently belongs to its home node (Space.HomeOf), which
// never loses ownership: there are no redirects, no ownership grants, and
// no Mirage window under this protocol. Any node may make its copy of a
// block writable at any time, locally, by twinning the content it holds;
// concurrent writers of the same block are legal as long as the program
// is data-race-free (they touch disjoint words between barriers).
//
// At barrier release (AtRelease, called by the reducer before it drains
// and arrives) each node run-length-diffs every dirty copy against its
// twin and flushes the diffs to the homes in one batched request per
// peer; the home merges them word-by-word into the master frame. The
// interval's dirty-block list doubles as the node's write notices: the
// reducer unions them up the tournament and broadcasts the cluster-wide
// set with the release, and AtAcquire invalidates exactly the noticed
// stale copies — unrelated read-only copies survive the barrier, which
// implicit-invalidate cannot do.

// lrcFlush carries one writer's interval diffs for all blocks homed at
// the destination. Blocks[i] is patched with Diffs[i].
type lrcFlush struct {
	Blocks []int32
	// Diffs alias the transport's receive buffer after decode;
	// serveFlush patches home frames synchronously.
	//dflint:frame
	Diffs [][]byte
}

// lrcBeginWrite makes a non-home copy writable in place: the current
// content becomes the twin (the merge base the release flush diffs
// against) and the block joins the interval's dirty list.
func (d *DSM) lrcBeginWrite(b int, st *blockState) {
	st.twin = make([]byte, len(st.frame))
	copy(st.twin, st.frame)
	d.ctr.twinBytes.Add(int64(len(st.twin)))
	st.access = accRW
	d.lrcDirty = append(d.lrcDirty, int32(b))
}

// AtRelease performs the release-side duties of the protocol at a
// synchronization point, before the node drains and arrives: under lazy
// release consistency every non-home dirty copy is diffed against its
// twin and flushed to the block's home (counted in outstanding, so the
// usual Quiesce covers the acks), and write access is dropped so the next
// interval re-faults and re-twins. It returns this node's write notices —
// the sorted dirty-block list — for the reducer to propagate with the
// barrier. A no-op returning nil under the single-writer protocols.
func (d *DSM) AtRelease() []int32 {
	if d.proto != LazyRelease || len(d.lrcDirty) == 0 {
		return nil
	}
	notices := append([]int32(nil), d.lrcDirty...)
	sort.Slice(notices, func(i, j int) bool { return notices[i] < notices[j] })
	d.ctr.writeNotices.Add(int64(len(notices)))

	// Group the non-home dirty blocks by home peer, preserving first-use
	// order so the flush fan-out is deterministic in the simulator.
	var homes []kernel.NodeID
	flushes := make(map[kernel.NodeID]*lrcFlush)
	me := d.node.ID()
	mon := d.space.monitor
	for _, b := range d.lrcDirty {
		st := &d.blocks[b]
		if st.owner {
			continue // home writes merge in place; notices still carry them
		}
		home := d.space.HomeOf(int(b))
		diff, ok := diffEncode(st.twin, st.frame, 2*len(st.frame)+64)
		if !ok {
			panic(fmt.Sprintf("dsm: node %d could not encode the flush diff for block %d", me, b))
		}
		f := flushes[home]
		if f == nil {
			f = &lrcFlush{}
			flushes[home] = f
			homes = append(homes, home)
		}
		f.Blocks = append(f.Blocks, b)
		f.Diffs = append(f.Diffs, diff)
		d.node.Charge(kernel.CatData, d.node.Model().PageServe)
		d.ctr.bytesOut.Add(int64(len(diff)))
		if mon != nil {
			mon.OnDiffFlush(me, home, int(b), d.node.Now())
		}
		// Drop the writable copy: the merged content lives at the home
		// now, and the next interval's first access re-fetches it. The
		// transport diff base (shadow) keeps the content as installed, a
		// version the home really published, so it stays valid.
		st.access = accNone
		st.snap = false
		st.frame = nil
		st.twin = nil
	}
	d.lrcDirty = d.lrcDirty[:0]
	for _, home := range homes {
		f := flushes[home]
		size := reqSize
		for _, diff := range f.Diffs {
			size += 4 + len(diff)
		}
		d.outstanding++
		d.ep.RequestAsync(home, SvcFlush, *f, size, kernel.CatData, func(any) {
			d.outstanding--
			d.checkQuiescent()
		})
	}
	return notices
}

// serveFlush merges a writer's interval diffs into the home frames. It
// runs at a release point of the sender, before any node has passed the
// barrier, so for data-race-free programs the patched words of concurrent
// writers are disjoint and merge order does not matter.
func (d *DSM) serveFlush(from kernel.NodeID, req any) (any, int, kernel.Verdict) {
	m := req.(lrcFlush)
	model := d.node.Model()
	mon := d.space.monitor
	for i, b := range m.Blocks {
		st := &d.blocks[b]
		if !st.owner {
			panic(fmt.Sprintf("dsm: node %d got a flush for block %d it does not home", d.node.ID(), b))
		}
		d.node.Charge(kernel.CatData, model.PageInstall)
		if st.snap {
			// The frame was published as st.ver; merging produces new
			// content, so twin it first and advance the version.
			d.snapshot(st)
		}
		if !diffApply(st.frame, m.Diffs[i]) {
			panic(fmt.Sprintf("dsm: node %d got a malformed flush diff for block %d", d.node.ID(), b))
		}
		st.touched = true
		d.ctr.lrcMerges.Inc()
		d.ctr.bytesIn.Add(int64(len(m.Diffs[i])))
		if mon != nil {
			mon.OnDiffMerge(d.node.ID(), from, int(b), d.node.Now())
		}
	}
	return nil, 8, kernel.Reply
}

// AtAcquire applies the write notices that arrived with a barrier
// release: stale copies of noticed blocks are discarded (message-free,
// like implicit-invalidate, but scoped to the blocks actually written),
// and noticed home blocks this node holds writable are downgraded so the
// next interval's first write re-enters the dirty list. A no-op under the
// single-writer protocols, whose notice lists are always empty.
func (d *DSM) AtAcquire(notices []int32) {
	if d.proto != LazyRelease {
		return
	}
	for _, b := range notices {
		st := &d.blocks[b]
		if st.owner {
			// The home's frame holds all merged diffs — never stale. The
			// downgrade only re-arms notice generation for home writes.
			if st.access == accRW {
				st.access = accRO
			}
			continue
		}
		if st.access != accNone {
			st.access = accNone
			if d.diffs {
				// Retain the invalidated copy as a stale diff base for
				// the next fetch, exactly as an explicit invalidation
				// would (serveInval).
				st.shadow = st.frame
				st.shadowVer = st.ver
			}
			st.snap = false
			st.frame = nil
		}
	}
}
