package dsm

import (
	"bytes"
	"encoding/gob"
	"math/rand"
	"testing"

	"filaments/internal/kernel"
	"filaments/internal/rtnode"
)

// TestDiffRoundTrip is the twin-and-diff property test: for random page
// contents and random write patterns, encoding the diff from twin to
// current and applying it to a copy of the twin must reproduce the
// current page exactly — the same sequence install() runs when a diff
// arrives. Patterns sweep the shapes the apps generate: sparse word
// writes (quadrature results), contiguous strips (jacobi boundary rows),
// whole-page rewrites, and the no-change case.
func TestDiffRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	sizes := []int{64, 1024, 4096, 4096 + 8, 100} // including a non-word-multiple tail
	for _, size := range sizes {
		for trial := 0; trial < 200; trial++ {
			base := make([]byte, size)
			rng.Read(base)
			cur := append([]byte(nil), base...)
			switch trial % 4 {
			case 0: // sparse word writes
				for k := 0; k < 1+trial%8; k++ {
					off := rng.Intn(size)
					cur[off] ^= byte(1 + rng.Intn(255))
				}
			case 1: // one contiguous strip
				lo := rng.Intn(size)
				hi := lo + 1 + rng.Intn(size-lo)
				rng.Read(cur[lo:hi])
			case 2: // whole-page rewrite
				rng.Read(cur)
			case 3: // no change
			}

			// Generous limit (size + entry-header headroom): always encodable.
			diff, ok := diffEncode(base, cur, size+64)
			if !ok {
				t.Fatalf("size %d trial %d: diffEncode gave up under a generous limit", size, trial)
			}
			if bytes.Equal(base, cur) && len(diff) != 0 {
				t.Fatalf("size %d trial %d: identical pages produced %d-byte diff", size, trial, len(diff))
			}
			got := append([]byte(nil), base...)
			if !diffApply(got, diff) {
				t.Fatalf("size %d trial %d: diffApply rejected its own encoder's diff", size, trial)
			}
			if !bytes.Equal(got, cur) {
				t.Fatalf("size %d trial %d: twin+diff != page", size, trial)
			}
		}
	}
}

// TestDiffLimitFallback pins the full-page fallback decision: when the
// changed region exceeds the limit, diffEncode must report !ok rather
// than return an oversized diff.
func TestDiffLimitFallback(t *testing.T) {
	base := make([]byte, 4096)
	cur := make([]byte, 4096)
	for i := range cur {
		cur[i] = byte(i + 1) // every word differs
	}
	if _, ok := diffEncode(base, cur, len(cur)/2); ok {
		t.Fatal("whole-page rewrite fit under a half-page limit")
	}
	// And a small change must come in far under it.
	cur2 := append([]byte(nil), base...)
	cur2[100] = 0xff
	diff, ok := diffEncode(base, cur2, len(cur2)/2)
	if !ok {
		t.Fatal("single-byte change did not fit under a half-page limit")
	}
	if len(diff) >= 64 {
		t.Fatalf("single-byte change produced a %d-byte diff", len(diff))
	}
}

// TestDiffApplyMalformed feeds diffApply corrupt input: it must reject
// (return false) without panicking or writing out of bounds, for runs
// and skips that overshoot the frame and for truncated entries.
func TestDiffApplyMalformed(t *testing.T) {
	frame := make([]byte, 64)
	cases := []struct {
		name string
		diff []byte
	}{
		{"skip past end", []byte{200, 1, 0xff}},
		{"run past end", []byte{0, 200, 0xff}},
		{"zero run", []byte{0, 0}},
		{"truncated head", []byte{5}},
		{"truncated run", []byte{0, 8, 1, 2, 3}},
	}
	for _, tc := range cases {
		if diffApply(frame, tc.diff) {
			t.Errorf("%s: malformed diff accepted", tc.name)
		}
	}
	// Random garbage: must never panic.
	rng := rand.New(rand.NewSource(2))
	for trial := 0; trial < 2000; trial++ {
		junk := make([]byte, rng.Intn(80))
		rng.Read(junk)
		diffApply(frame, junk)
	}
}

// TestPageDataCodecZeroAlloc is the allocation gate from the issue: one
// pageData encode+decode round trip through the binary codec must cost
// zero allocations when the caller reuses buffers, because this is the
// per-page-transfer hot path the gob framing was replaced to fix. The
// registry's `any` boxing is excluded by design — the transport hands
// pooled buffers straight to these helpers.
func TestPageDataCodecZeroAlloc(t *testing.T) {
	data := make([]byte, 4096)
	for i := range data {
		data[i] = byte(i * 7)
	}
	in := pageData{
		Block:      42,
		GrantOwner: true,
		Ver:        9,
		Data:       data,
		Copyset:    []kernel.NodeID{0, 3, 7},
	}
	e := &rtnode.Enc{B: make([]byte, 0, len(data)+64)}
	var out pageData
	out.Copyset = make([]kernel.NodeID, 0, 8)
	allocs := testing.AllocsPerRun(100, func() {
		e.B = e.B[:0]
		encPageData(e, &in)
		d := rtnode.Dec{B: e.B}
		decPageDataInto(&d, &out)
		if d.Bad {
			t.Fatal("decode failed")
		}
	})
	if allocs != 0 {
		t.Fatalf("pageData codec round trip costs %.0f allocs/op, want 0", allocs)
	}
	if out.Block != in.Block || out.Ver != in.Ver || !bytes.Equal(out.Data, in.Data) {
		t.Fatal("round trip changed value")
	}
}

// TestPageDataCodecBogusCount pins the decoder's structural validation: a
// copyset count larger than the remaining bytes must fail the decode, not
// allocate.
func TestPageDataCodecBogusCount(t *testing.T) {
	e := &rtnode.Enc{}
	encPageData(e, &pageData{Block: 1, Data: []byte{1, 2, 3}})
	// Rewrite the trailing copyset count (last varint, value 0) to a lie.
	b := append(e.B[:len(e.B)-1:len(e.B)-1], 0xff, 0xff, 0x7f)
	var out pageData
	d := rtnode.Dec{B: b}
	decPageDataInto(&d, &out)
	if !d.Bad {
		t.Fatal("bogus copyset count decoded cleanly")
	}
}

// Benchmarks: the codec replacement's reason to exist, measured. Run with
//
//	go test ./internal/dsm -bench PageData -benchmem
//
// to compare the binary page codec against the gob framing it replaced.
func BenchmarkPageDataBinary(b *testing.B) {
	in := pageData{Block: 42, Ver: 3, Data: make([]byte, 4096), Copyset: []kernel.NodeID{1, 2}}
	e := &rtnode.Enc{B: make([]byte, 0, 4200)}
	var out pageData
	out.Copyset = make([]kernel.NodeID, 0, 8)
	b.ReportAllocs()
	b.SetBytes(4096)
	for i := 0; i < b.N; i++ {
		e.B = e.B[:0]
		encPageData(e, &in)
		d := rtnode.Dec{B: e.B}
		decPageDataInto(&d, &out)
	}
}

func BenchmarkPageDataGob(b *testing.B) {
	var in any = pageData{Block: 42, Ver: 3, Data: make([]byte, 4096), Copyset: []kernel.NodeID{1, 2}}
	b.ReportAllocs()
	b.SetBytes(4096)
	for i := 0; i < b.N; i++ {
		var buf bytes.Buffer
		if err := gob.NewEncoder(&buf).Encode(&in); err != nil {
			b.Fatal(err)
		}
		var out any
		if err := gob.NewDecoder(&buf).Decode(&out); err != nil {
			b.Fatal(err)
		}
	}
}
