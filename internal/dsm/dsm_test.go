package dsm

import (
	"testing"
	"testing/quick"

	"filaments/internal/cost"
	"filaments/internal/kernel"
	"filaments/internal/obs"
	"filaments/internal/packet"
	"filaments/internal/sim"
	"filaments/internal/simnet"
	"filaments/internal/threads"
)

// spawn adapts a *threads.Thread body to the kernel.Thread Spawn signature.
func spawn(n *threads.Node, name string, body func(*threads.Thread)) {
	n.Spawn(name, func(kt kernel.Thread) { body(kt.(*threads.Thread)) })
}

type fixture struct {
	eng   *sim.Engine
	nw    *simnet.Network
	nodes []*threads.Node
	eps   []*packet.Endpoint
	dsms  []*DSM
	space *Space
}

func newFixture(t *testing.T, n int, proto Protocol) *fixture {
	t.Helper()
	return newFixtureSeed(t, n, proto, 1)
}

func newFixtureSeed(t *testing.T, n int, proto Protocol, seed int64) *fixture {
	if t != nil {
		t.Helper()
	}
	eng := sim.New(seed)
	m := cost.Default()
	nw := simnet.New(eng, &m, n)
	fx := &fixture{eng: eng, nw: nw, space: NewSpace(1 << 24)}
	for i := 0; i < n; i++ {
		node := threads.NewNode(nw, simnet.NodeID(i))
		ep := packet.New(node)
		d := New(node, ep, fx.space, proto)
		fx.nodes = append(fx.nodes, node)
		fx.eps = append(fx.eps, ep)
		fx.dsms = append(fx.dsms, d)
		node.Start()
	}
	return fx
}

// run executes body on the given node's thread after setup, then stops all
// nodes when every spawned body finishes.
func (fx *fixture) run(t *testing.T, bodies map[int]func(th *threads.Thread)) {
	t.Helper()
	remaining := len(bodies)
	fx.eng.Schedule(0, func() {
		// Spawn in node order: map iteration order would vary the spawn
		// sequence run to run (dflint: maprange).
		for id := range fx.nodes {
			body, ok := bodies[id]
			if !ok {
				continue
			}
			spawn(fx.nodes[id], "test", func(th *threads.Thread) {
				body(th)
				remaining--
				if remaining == 0 {
					for _, n := range fx.nodes {
						n.Stop()
					}
				}
			})
		}
	})
	if err := fx.eng.Run(); err != nil {
		t.Fatal(err)
	}
}

// stopAll stops every node (used by tests that manage their own bodies).
func (fx *fixture) stopAll() {
	for _, n := range fx.nodes {
		n.Stop()
	}
}

// testBarrier is a test-only cluster barrier built directly on thread
// block/ready (the real tournament barrier lives in package reduce).
type testBarrier struct {
	fx      *fixture
	arrived int
	waiting []*threads.Thread
}

func (b *testBarrier) wait(id int, th *threads.Thread) {
	b.arrived++
	if b.arrived == len(b.fx.nodes) {
		b.arrived = 0
		for _, d := range b.fx.dsms {
			d.AtBarrier()
		}
		ws := b.waiting
		b.waiting = nil
		for _, w := range ws {
			w.Node().Ready(w, false)
		}
		return
	}
	b.waiting = append(b.waiting, th)
	th.Block()
}

// compute charges total CPU in filament-sized slices with dispatch points,
// the way real Filaments programs run: incoming requests are serviced with
// at most one slice of delay.
func compute(th *threads.Thread, total sim.Duration) {
	const slice = sim.Millisecond
	for total > 0 {
		d := slice
		if total < d {
			d = total
		}
		th.Node().Charge(threads.CatWork, d)
		th.Preempt()
		total -= d
	}
}

func TestAllocPaddingAndAlignment(t *testing.T) {
	s := NewSpace(1 << 20)
	a := s.Alloc(100, AllocOpts{})
	b := s.Alloc(100, AllocOpts{})
	if a%PageSize != 0 || b%PageSize != 0 {
		t.Fatalf("allocations not page aligned: %d %d", a, b)
	}
	if PageOf(a) == PageOf(b) {
		t.Fatal("two allocations share a page; padding failed")
	}
	if s.BlockOf(a) == s.BlockOf(b) {
		t.Fatal("two allocations share a block")
	}
}

func TestAllocGroups(t *testing.T) {
	s := NewSpace(1 << 20)
	a := s.Alloc(4*PageSize, AllocOpts{GroupPages: 2})
	if s.BlockOf(a) != s.BlockOf(a+PageSize) {
		t.Fatal("pages 0,1 should share a block")
	}
	if s.BlockOf(a) == s.BlockOf(a+2*PageSize) {
		t.Fatal("pages 0,2 should be in different blocks")
	}
	if got := s.blockSize(s.BlockOf(a)); got != 2*PageSize {
		t.Fatalf("block size = %d", got)
	}
}

func TestAllocOutOfMemory(t *testing.T) {
	s := NewSpace(2 * PageSize)
	s.Alloc(PageSize, AllocOpts{})
	s.Alloc(PageSize, AllocOpts{})
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic on exhaustion")
		}
	}()
	s.Alloc(1, AllocOpts{})
}

func TestGroupOwnershipBoundaryPanics(t *testing.T) {
	s := NewSpace(1 << 20)
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic when a group spans owners")
		}
	}()
	s.Alloc(2*PageSize, AllocOpts{
		GroupPages:  2,
		OwnerByPage: func(p int) simnet.NodeID { return simnet.NodeID(p) },
	})
}

func TestLocalAccessNoMessages(t *testing.T) {
	fx := newFixture(t, 2, WriteInvalidate)
	a := fx.space.Alloc(PageSize, AllocOpts{Owner: 0})
	fx.run(t, map[int]func(*threads.Thread){
		0: func(th *threads.Thread) {
			fx.dsms[0].WriteF64(th, a, 3.25)
			if got := fx.dsms[0].ReadF64(th, a); got != 3.25 {
				t.Errorf("got %v", got)
			}
		},
	})
	if fx.nw.Stats().FramesSent != 0 {
		t.Fatalf("local access sent %d frames", fx.nw.Stats().FramesSent)
	}
}

func TestRemoteReadFetch(t *testing.T) {
	for _, proto := range []Protocol{Migratory, WriteInvalidate, ImplicitInvalidate} {
		fx := newFixture(t, 2, proto)
		a := fx.space.Alloc(PageSize, AllocOpts{Owner: 0})
		var got float64
		fx.run(t, map[int]func(*threads.Thread){
			0: func(th *threads.Thread) {
				fx.dsms[0].WriteF64(th, a, 7.5)
				// Give node 1 time to fetch after the write.
				th.Node().Engine().Schedule(sim.Millisecond, func() { th.Node().Ready(th, false) })
				th.Block()
			},
			1: func(th *threads.Thread) {
				compute(th, 2*sim.Millisecond) // let 0 write first
				got = fx.dsms[1].ReadF64(th, a)
			},
		})
		if got != 7.5 {
			t.Fatalf("%v: got %v", proto, got)
		}
		if fx.dsms[1].Stats().ReadFaults != 1 {
			t.Fatalf("%v: faults = %d", proto, fx.dsms[1].Stats().ReadFaults)
		}
	}
}

func TestMigratoryOwnershipMoves(t *testing.T) {
	fx := newFixture(t, 3, Migratory)
	a := fx.space.Alloc(PageSize, AllocOpts{Owner: 0})
	fx.run(t, map[int]func(*threads.Thread){
		0: func(th *threads.Thread) {
			fx.dsms[0].WriteF64(th, a, 1)
		},
		1: func(th *threads.Thread) {
			compute(th, 50*sim.Millisecond)
			v := fx.dsms[1].ReadF64(th, a)
			fx.dsms[1].WriteF64(th, a, v+1) // no extra fault: migratory granted RW
		},
		2: func(th *threads.Thread) {
			compute(th, 150*sim.Millisecond)
			// Node 2's hint still points at node 0: exercises the redirect
			// chain 0 -> 1.
			if v := fx.dsms[2].ReadF64(th, a); v != 2 {
				t.Errorf("node 2 read %v, want 2", v)
			}
		},
	})
	if fx.dsms[1].Stats().WriteFaults != 0 {
		t.Fatal("migratory read grant should include write access")
	}
	if fx.dsms[2].Stats().Redirected == 0 {
		t.Fatal("expected a redirect following the ownership chain")
	}
}

func TestWriteInvalidateInvalidatesReaders(t *testing.T) {
	fx := newFixture(t, 3, WriteInvalidate)
	a := fx.space.Alloc(PageSize, AllocOpts{Owner: 0})
	var after1, after2 float64
	fx.run(t, map[int]func(*threads.Thread){
		0: func(th *threads.Thread) {
			fx.dsms[0].WriteF64(th, a, 10)
			compute(th, 100*sim.Millisecond)
			// Readers hold copies now; upgrading must invalidate them.
			fx.dsms[0].WriteF64(th, a, 20)
		},
		1: func(th *threads.Thread) {
			compute(th, 20*sim.Millisecond)
			after1 = fx.dsms[1].ReadF64(th, a)
			compute(th, 200*sim.Millisecond)
			after2 = fx.dsms[1].ReadF64(th, a) // must refault and see 20
		},
		2: func(th *threads.Thread) {
			compute(th, 20*sim.Millisecond)
			_ = fx.dsms[2].ReadF64(th, a)
		},
	})
	if after1 != 10 || after2 != 20 {
		t.Fatalf("reads = %v, %v; want 10, 20", after1, after2)
	}
	if fx.dsms[0].Stats().InvalsSent != 2 {
		t.Fatalf("invals sent = %d, want 2", fx.dsms[0].Stats().InvalsSent)
	}
	if fx.dsms[1].Stats().ReadFaults != 2 {
		t.Fatalf("node1 faults = %d, want 2 (copy was invalidated)", fx.dsms[1].Stats().ReadFaults)
	}
}

func TestImplicitInvalidateNoInvalMessages(t *testing.T) {
	fx := newFixture(t, 2, ImplicitInvalidate)
	a := fx.space.Alloc(PageSize, AllocOpts{Owner: 0})
	bar := &testBarrier{fx: fx}
	var r1, r2 float64
	fx.run(t, map[int]func(*threads.Thread){
		0: func(th *threads.Thread) {
			fx.dsms[0].WriteF64(th, a, 1)
			bar.wait(0, th)
			// Owner keeps write access even while node 1 holds a copy: no
			// downgrade, no invalidation — implicit-invalidate's point.
			// (Exactly one local write fault exists: the virgin-block
			// upgrade at the very first write.)
			fx.dsms[0].WriteF64(th, a, 2)
			if fx.dsms[0].Stats().WriteFaults != 1 {
				t.Errorf("owner write faults = %d, want only the virgin upgrade",
					fx.dsms[0].Stats().WriteFaults)
			}
			bar.wait(0, th)
			bar.wait(0, th)
		},
		1: func(th *threads.Thread) {
			bar.wait(1, th)
			r1 = fx.dsms[1].ReadF64(th, a)
			bar.wait(1, th) // copy dies here
			bar.wait(1, th)
			r2 = fx.dsms[1].ReadF64(th, a)
		},
	})
	// Interleaving: write(1); barrier; read r1 and write(2) race-free only
	// per-page... here they do race in real time, but the write is local
	// and the read faults before it — accept either 1 or 2 for r1? No:
	// node 1 reads after the first barrier, node 0 writes 2 after it too.
	// This would be a data race in a real program; what the protocol must
	// guarantee is only that after the *second* barrier node 1 refetches.
	if r2 != 2 {
		t.Fatalf("read after barrier = %v, want 2", r2)
	}
	_ = r1
	if fx.dsms[0].Stats().InvalsSent != 0 || fx.dsms[1].Stats().InvalsRecved != 0 {
		t.Fatal("implicit-invalidate sent invalidation messages")
	}
	if fx.dsms[1].Stats().ReadFaults != 2 {
		t.Fatalf("node1 faults = %d, want 2 (copy discarded at barrier)", fx.dsms[1].Stats().ReadFaults)
	}
}

func TestMirageWindowDropsAndRetries(t *testing.T) {
	fx := newFixture(t, 2, Migratory)
	m := fx.nodes[0].Model()
	m.MirageWindow = 50 * sim.Millisecond
	a := fx.space.Alloc(PageSize, AllocOpts{Owner: 0})
	var got float64
	var elapsed sim.Duration
	fx.run(t, map[int]func(*threads.Thread){
		0: func(th *threads.Thread) {
			fx.dsms[0].WriteF64(th, a, 5)
		},
		1: func(th *threads.Thread) {
			// Request immediately: inside node 0's window (page acquired
			// at alloc, re-acquired at t=0 via local write).
			start := th.Node().Engine().Now()
			got = fx.dsms[1].ReadF64(th, a)
			elapsed = th.Node().Engine().Now().Sub(start)
		},
	})
	if got != 5 {
		t.Fatalf("got %v", got)
	}
	if fx.dsms[0].Stats().MirageDrops == 0 {
		t.Fatal("window never dropped a request")
	}
	if elapsed < m.MirageWindow {
		t.Fatalf("page obtained after %v, inside the %v window", elapsed, m.MirageWindow)
	}
}

// TestMirageDropCounterAndTraceAgree pins down that a window drop is
// observable through BOTH channels the observability layer offers: the
// dsm.mirage_drops counter and a "mirage_drop" trace instant naming the
// block and the rejected requester. Dashboards read the counter and the
// trace viewer reads the instant; a drop that shows up in one but not
// the other would make the two tell different stories about the same
// run.
func TestMirageDropCounterAndTraceAgree(t *testing.T) {
	fx := newFixture(t, 2, Migratory)
	m := fx.nodes[0].Model()
	m.MirageWindow = 50 * sim.Millisecond
	tr := obs.NewTracer()
	for _, n := range fx.nodes {
		n.Obs().SetTracer(tr)
	}
	a := fx.space.Alloc(PageSize, AllocOpts{Owner: 0})
	b := fx.space.BlockOf(a)
	fx.run(t, map[int]func(*threads.Thread){
		0: func(th *threads.Thread) {
			fx.dsms[0].WriteF64(th, a, 5)
		},
		1: func(th *threads.Thread) {
			_ = fx.dsms[1].ReadF64(th, a)
		},
	})
	drops := fx.dsms[0].Stats().MirageDrops
	if drops == 0 {
		t.Fatal("window never dropped a request")
	}
	var instants int64
	for _, ev := range tr.Events() {
		if ev.Cat != "dsm" || ev.Name != "mirage_drop" {
			continue
		}
		instants++
		if ev.Dur >= 0 {
			t.Errorf("mirage_drop must be an instant event, got span of %d", ev.Dur)
		}
		if ev.Node != 0 {
			t.Errorf("drop emitted by node %d; only node 0 holds the page", ev.Node)
		}
		want := []obs.Arg{{Key: "block", Val: int64(b)}, {Key: "from", Val: 1}}
		for _, w := range want {
			found := false
			for _, arg := range ev.Args {
				if arg.Key != w.Key {
					continue
				}
				found = true
				if arg.Val != w.Val {
					t.Errorf("mirage_drop arg %s = %d, want %d", arg.Key, arg.Val, w.Val)
				}
			}
			if !found {
				t.Errorf("mirage_drop instant missing arg %q", w.Key)
			}
		}
	}
	if instants != int64(drops) {
		t.Errorf("counter recorded %d drops but the trace has %d mirage_drop instants", drops, instants)
	}
}

func TestOverlapOtherThreadRunsDuringFault(t *testing.T) {
	fx := newFixture(t, 2, ImplicitInvalidate)
	a := fx.space.Alloc(PageSize, AllocOpts{Owner: 0})
	workDone := false
	fx.run(t, map[int]func(*threads.Thread){
		0: func(th *threads.Thread) {
			fx.dsms[0].WriteF64(th, a, 1)
		},
		1: func(th *threads.Thread) {
			n := th.Node()
			spawn(n, "background", func(bg *threads.Thread) {
				n.Charge(threads.CatWork, sim.Millisecond)
				workDone = true
			})
			before := workDone
			_ = fx.dsms[1].ReadF64(th, a) // blocks ~4 ms; background runs
			if before {
				t.Error("background ran before the fault — test setup broken")
			}
			if !workDone {
				t.Error("fault did not overlap with other thread's computation")
			}
		},
	})
}

func TestQuiesce(t *testing.T) {
	fx := newFixture(t, 2, ImplicitInvalidate)
	a := fx.space.Alloc(PageSize, AllocOpts{Owner: 0})
	fx.run(t, map[int]func(*threads.Thread){
		0: func(th *threads.Thread) {
			fx.dsms[0].WriteF64(th, a, 1)
		},
		1: func(th *threads.Thread) {
			d := fx.dsms[1]
			// Fault from a helper thread, then quiesce on the main one.
			n := th.Node()
			spawn(n, "faulter", func(ft *threads.Thread) {
				_ = d.ReadF64(ft, a)
			})
			th.Yield() // let the faulter start its fetch
			d.Quiesce(th)
			if d.Outstanding() != 0 {
				t.Error("outstanding after quiesce")
			}
		},
	})
}

func TestMatrixStriping(t *testing.T) {
	s := NewSpace(1 << 24)
	const rows, cols, nodes = 256, 256, 8
	m := AllocMatrixStriped(s, rows, cols, nodes)
	for k := 0; k < nodes; k++ {
		lo, hi := StripBounds(k, rows, nodes)
		if StripOf(lo, rows, nodes) != k || StripOf(hi-1, rows, nodes) != k {
			t.Fatalf("strip bounds inconsistent for %d: [%d,%d)", k, lo, hi)
		}
		// A row in the middle of the strip is owned by node k.
		mid := (lo + hi) / 2
		b := s.BlockOf(m.Addr(mid, 0))
		if s.HomeOf(b) != simnet.NodeID(k) {
			t.Fatalf("row %d homed at %d, want %d", mid, s.HomeOf(b), k)
		}
	}
}

// Race-free property check: nodes repeatedly write their own strip and read
// neighbours' strips between barriers; every read must observe the latest
// barrier-ordered values, for every protocol.
func TestConsistencyRaceFreeRounds(t *testing.T) {
	for _, proto := range []Protocol{Migratory, WriteInvalidate, ImplicitInvalidate} {
		proto := proto
		t.Run(proto.String(), func(t *testing.T) {
			const n, cells, rounds = 4, 4, 5
			fx := newFixture(t, n, proto)
			// One page-sized cell array per node.
			addrs := make([]Addr, n)
			for i := range addrs {
				addrs[i] = fx.space.Alloc(cells*8, AllocOpts{Owner: simnet.NodeID(i)})
			}
			bar := &testBarrier{fx: fx}
			bodies := make(map[int]func(*threads.Thread))
			for id := 0; id < n; id++ {
				id := id
				bodies[id] = func(th *threads.Thread) {
					d := fx.dsms[id]
					for r := 1; r <= rounds; r++ {
						for c := 0; c < cells; c++ {
							d.WriteF64(th, addrs[id]+Addr(c*8), float64(r*100+id*10+c))
						}
						bar.wait(id, th)
						// Read the next node's strip; expect this round's
						// values.
						peer := (id + 1) % n
						for c := 0; c < cells; c++ {
							want := float64(r*100 + peer*10 + c)
							got := d.ReadF64(th, addrs[peer]+Addr(c*8))
							if got != want {
								t.Errorf("round %d node %d read %v, want %v", r, id, got, want)
								return
							}
						}
						bar.wait(id, th)
					}
				}
			}
			fx.run(t, bodies)
		})
	}
}

// Consistency must survive frame loss: Packet retransmission makes the DSM
// reliable over an unreliable wire.
func TestConsistencyUnderLoss(t *testing.T) {
	for _, seed := range []int64{1, 7} {
		fx := newFixtureSeed(t, 4, ImplicitInvalidate, seed)
		fx.nw.LossRate = 0.15
		const n, cells, rounds = 4, 4, 4
		addrs := make([]Addr, n)
		for i := range addrs {
			addrs[i] = fx.space.Alloc(cells*8, AllocOpts{Owner: simnet.NodeID(i)})
		}
		bar := &testBarrier{fx: fx}
		bodies := make(map[int]func(*threads.Thread))
		for id := 0; id < n; id++ {
			id := id
			bodies[id] = func(th *threads.Thread) {
				d := fx.dsms[id]
				for r := 1; r <= rounds; r++ {
					for c := 0; c < cells; c++ {
						d.WriteF64(th, addrs[id]+Addr(c*8), float64(r*100+id*10+c))
					}
					bar.wait(id, th)
					peer := (id + 1) % n
					for c := 0; c < cells; c++ {
						want := float64(r*100 + peer*10 + c)
						if got := d.ReadF64(th, addrs[peer]+Addr(c*8)); got != want {
							t.Errorf("seed %d round %d node %d: got %v want %v", seed, r, id, got, want)
							return
						}
					}
					bar.wait(id, th)
				}
			}
		}
		fx.run(t, bodies)
	}
}

// A page group must move as one unit: one request fetches every page in it.
func TestGroupMovesAsUnit(t *testing.T) {
	fx := newFixture(t, 2, Migratory)
	a := fx.space.Alloc(4*PageSize, AllocOpts{Owner: 0, GroupPages: 4})
	fx.run(t, map[int]func(*threads.Thread){
		0: func(th *threads.Thread) {
			for p := 0; p < 4; p++ {
				fx.dsms[0].WriteF64(th, a+Addr(p*PageSize), float64(p))
			}
		},
		1: func(th *threads.Thread) {
			compute(th, 5*sim.Millisecond)
			// Touch the last page; all four must arrive together.
			if got := fx.dsms[1].ReadF64(th, a+Addr(3*PageSize)); got != 3 {
				t.Errorf("got %v", got)
			}
			for p := 0; p < 3; p++ {
				if !fx.dsms[1].Readable(a + Addr(p*PageSize)) {
					t.Errorf("page %d of the group did not arrive", p)
				}
			}
		},
	})
	if rf := fx.dsms[1].Stats().ReadFaults; rf != 1 {
		t.Fatalf("faults = %d, want 1 for the whole group", rf)
	}
}

// Peek must find the owner wherever the block migrated.
func TestPeekFollowsOwnership(t *testing.T) {
	fx := newFixture(t, 3, Migratory)
	a := fx.space.Alloc(8, AllocOpts{Owner: 0})
	fx.run(t, map[int]func(*threads.Thread){
		0: func(th *threads.Thread) { fx.dsms[0].WriteF64(th, a, 5) },
		2: func(th *threads.Thread) {
			compute(th, 10*sim.Millisecond)
			fx.dsms[2].WriteF64(th, a, 9)
		},
	})
	// After the run, node 2 owns the block.
	if v, ok := fx.dsms[2].Peek(a); !ok || v != 9 {
		t.Fatalf("node2 peek = %v, %v", v, ok)
	}
	if _, ok := fx.dsms[0].Peek(a); ok {
		t.Fatal("node0 still claims ownership")
	}
}

// The virgin-block optimization must not transfer data for never-written
// blocks, and the receiver must see zeros.
func TestVirginBlockTransfersNoData(t *testing.T) {
	fx := newFixture(t, 2, Migratory)
	a := fx.space.Alloc(PageSize, AllocOpts{Owner: 0})
	fx.run(t, map[int]func(*threads.Thread){
		1: func(th *threads.Thread) {
			if got := fx.dsms[1].ReadF64(th, a); got != 0 {
				t.Errorf("virgin block read %v, want 0", got)
			}
		},
	})
	if out := fx.dsms[0].Stats().BytesOut; out != 0 {
		t.Fatalf("virgin transfer moved %d bytes", out)
	}
}

// Sequentially-consistent single-location history: with one writer and many
// readers under write-invalidate, a reader never observes values out of
// write order.
func TestMonotonicReadsProperty(t *testing.T) {
	f := func(seed int64) bool {
		fx := newFixtureSeed(nil, 3, WriteInvalidate, seed%100+1)
		a := fx.space.Alloc(8, AllocOpts{Owner: 0})
		ok := true
		fx.eng.Schedule(0, func() {
			spawn(fx.nodes[0], "writer", func(th *threads.Thread) {
				for v := 1; v <= 20; v++ {
					fx.dsms[0].WriteF64(th, a, float64(v))
					compute(th, 2*sim.Millisecond)
				}
				fx.stopAll()
			})
			for r := 1; r <= 2; r++ {
				r := r
				spawn(fx.nodes[r], "reader", func(th *threads.Thread) {
					last := 0.0
					for i := 0; i < 15; i++ {
						v := fx.dsms[r].ReadF64(th, a)
						if v < last {
							ok = false
						}
						last = v
						fx.dsms[r].AtBarrier() // drop copy to force refetch
						compute(th, 3*sim.Millisecond)
					}
				})
			}
		})
		if err := fx.eng.Run(); err != nil {
			if _, dl := err.(*sim.DeadlockError); !dl {
				return false
			}
		}
		return ok
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 8}); err != nil {
		t.Fatal(err)
	}
}
