package dsm

import (
	"encoding/binary"
	"fmt"
	"math"

	"filaments/internal/kernel"
	"filaments/internal/obs"
	"filaments/internal/rtnode"
)

// Service IDs used by the DSM on each node's transport endpoint.
const (
	// SvcPage requests a block (read or write/ownership, per the request's
	// Write flag). Non-idempotent: ownership transfers must not be
	// re-executed for a duplicate request, so replies are replayed from
	// the transport's reply cache.
	SvcPage kernel.ServiceID = 10 + iota
	// SvcInval invalidates a read-only copy (write-invalidate protocol).
	SvcInval
	// SvcFlush delivers a writer's interval diffs to a block's home node
	// at barrier release (lazy release consistency). Non-idempotent: the
	// home merges each flush exactly once; duplicates are answered from
	// the transport's reply cache.
	SvcFlush
)

type access uint8

const (
	accNone access = iota
	accRO
	accRW
)

// wire messages.
type pageReq struct {
	Block int32
	Write bool
	// HaveVer advertises the version of the stale copy the requester still
	// retains as a diff base, or -1 when it has none. The server may then
	// answer with a diff against that version instead of the full frame.
	HaveVer int64
}

type pageData struct {
	Block int32
	// Data aliases the transport's receive buffer after decode; the
	// install path must copy synchronously.
	//dflint:frame
	Data       []byte
	GrantOwner bool
	Copyset    []kernel.NodeID // WI ownership transfer: copies to invalidate
	// Ver is the version of the block content this message carries (or
	// produces, when Diff is set).
	Ver int64
	// Diff marks Data as a run-length diff against the base the requester
	// advertised in pageReq.HaveVer, rather than full content. A nil Data
	// with Diff set means "your base is already this version".
	Diff bool
}

type redirect struct {
	Block int32
	Owner kernel.NodeID
}

type invalReq struct{ Block int32 }

// The real-time binding serializes payloads with gob; declaring the wire
// types lets them travel as interface values.
func init() {
	rtnode.RegisterWire(pageReq{}, pageData{}, redirect{}, invalReq{}, lrcFlush{})
}

const reqSize = 16 // bytes on the wire for a small DSM request

// Stats counts DSM events on one node.
type Stats struct {
	ReadFaults   int64
	WriteFaults  int64
	Requests     int64 // page requests sent (including redirect retries)
	Served       int64 // page requests served with data
	Redirected   int64 // requests answered with a redirect
	InvalsSent   int64
	InvalsRecved int64
	MirageDrops  int64           // requests dropped by the time window
	BusyDrops    int64           // requests dropped mid-transition
	FaultWait    kernel.Duration // total time threads spent suspended in faults
	BytesIn      int64           // page data received
	BytesOut     int64           // page data sent
	DiffsSent    int64           // page requests answered with a diff
	DiffBytes    int64           // bytes shipped as diffs (subset of BytesOut)
	FullPages    int64           // touched frames shipped whole
	LRCMerges    int64           // diffs merged into home frames (LRC)
	WriteNotices int64           // write-notice entries generated at releases (LRC)
	TwinBytes    int64           // bytes copied into multi-writer twins (LRC)
}

type waiter struct {
	t     kernel.Thread
	write bool
}

type blockState struct {
	access access
	owner  bool
	// touched is false while the block has never been written anywhere: a
	// "virgin" block's content is all zeros, so serving it transfers
	// ownership without shipping a frame of zeros across the wire. The
	// original owner keeps the block read-only until its first local
	// write so the write is observed.
	touched   bool
	probOwner kernel.NodeID // best guess at the owner (starts at home)
	copyset   []kernel.NodeID
	// frame is the block's local content; revoked, re-homed, and
	// recycled at protocol events, so aliases must not outlive the
	// current epoch (the framescope analyzer enforces this).
	//dflint:frame
	frame    []byte
	waiting  []waiter
	fetching bool
	invals   int // outstanding invalidation acks before RW install
	acquired kernel.Time

	// Twin-and-diff state (active only when the DSM's diff mode is on).
	//
	// ver is the version of frame's content. Versions are per-block and
	// advance only at the owner, on the first write after a publish, so
	// they stay consistent as ownership migrates: a frame at version v
	// always holds exactly the content that was published as v.
	ver int64
	// snap marks frame's content as published at ver (served to a peer,
	// or installed from one): the next local write first snapshots it
	// into shadow as the diff base and bumps ver.
	snap bool
	// shadow is the diff base: for an owner, the twin — a copy of the
	// last published version; for a non-owner, the stale frame retained
	// when access was revoked. shadowVer is its version; a nil shadow
	// means no base is held.
	//dflint:frame
	shadow    []byte
	shadowVer int64

	// twin is the lazy-release merge base: a copy of the frame taken when
	// a non-home node made the block writable, so the release flush can
	// diff out exactly this interval's words. Unlike shadow it is a
	// correctness structure, active regardless of the transport diff
	// mode. Nil outside an LRC write interval.
	//dflint:frame
	twin []byte
}

// DSM is one node's view of the shared address space. It is written
// against the kernel interfaces, so the same code runs on the simulated
// cluster and over real UDP endpoints.
type DSM struct {
	node  kernel.Node
	ep    kernel.Transport
	space *Space
	proto Protocol
	// strat makes every consistency decision for proto; the DSM itself
	// is pure mechanism (see protocol.go).
	strat strategy

	blocks []blockState
	// roCopies lists blocks holding a non-owned read-only copy, for O(copies)
	// implicit invalidation at barriers.
	roCopies []int32
	// lrcDirty lists blocks this node wrote during the current interval
	// (lazy release consistency): non-home writable copies to flush at
	// the next release, plus home blocks whose writes become notices.
	// Each block appears at most once per interval.
	lrcDirty []int32

	// diffs enables twin-and-diff page shipping: revoked frames are
	// retained as diff bases, owners twin pages on the first write after a
	// publish, and page replies carry run-length diffs when the requester
	// holds a usable base. Off by default — the simulation keeps the
	// paper's whole-page byte accounting — and switched on cluster-wide by
	// the UDP binding. Must be set before traffic flows, identically on
	// every node.
	diffs bool

	// WakeFront controls where threads woken by a page arrival go in the
	// ready queue: the front for fork/join programs (the page is used
	// while still resident — the paper's second anti-thrashing mechanism)
	// or the back for iterative programs (fault frontloading).
	WakeFront bool

	outstanding int // fetches + invalidation rounds in flight
	quiescers   []kernel.Thread

	obs *obs.Obs
	ctr counters
}

// counters caches this node's registered DSM counters. Updates are
// atomic, so Stats() snapshots race-free from any goroutine — under the
// real-time binding, transport handlers mutate these while foreign
// goroutines read them.
type counters struct {
	readFaults, writeFaults, requests, served, redirected *obs.Counter
	invalsSent, invalsRecved, mirageDrops, busyDrops      *obs.Counter
	faultWaitNS, bytesIn, bytesOut                        *obs.Counter
	diffsSent, diffBytes, fullPages                       *obs.Counter
	lrcMerges, writeNotices, twinBytes                    *obs.Counter
}

// New creates the DSM instance for one node and registers its services on
// the node's transport endpoint. All nodes must be created before the
// first allocation.
func New(node kernel.Node, ep kernel.Transport, space *Space, proto Protocol) *DSM {
	o := obs.Of(node)
	d := &DSM{node: node, ep: ep, space: space, proto: proto, strat: strategyFor(proto), obs: o}
	d.ctr = counters{
		readFaults:   o.Counter("dsm.read_faults"),
		writeFaults:  o.Counter("dsm.write_faults"),
		requests:     o.Counter("dsm.requests"),
		served:       o.Counter("dsm.served"),
		redirected:   o.Counter("dsm.redirected"),
		invalsSent:   o.Counter("dsm.invals_sent"),
		invalsRecved: o.Counter("dsm.invals_recved"),
		mirageDrops:  o.Counter("dsm.mirage_drops"),
		busyDrops:    o.Counter("dsm.busy_drops"),
		faultWaitNS:  o.Counter("dsm.fault_wait_ns"),
		bytesIn:      o.Counter("dsm.bytes_in"),
		bytesOut:     o.Counter("dsm.bytes_out"),
		diffsSent:    o.Counter("dsm.diffs_sent"),
		diffBytes:    o.Counter("dsm.diff_bytes"),
		fullPages:    o.Counter("dsm.full_pages"),
		lrcMerges:    o.Counter("dsm.lrc_merges"),
		writeNotices: o.Counter("dsm.write_notices"),
		twinBytes:    o.Counter("dsm.twin_bytes"),
	}
	if len(space.blockStart) != 0 {
		panic("dsm: all DSMs must be created before the first Alloc")
	}
	space.dsms = append(space.dsms, d)
	ep.Register(SvcPage, kernel.Service{
		Name:       "dsm-page",
		Idempotent: false,
		Category:   kernel.CatData,
		Handler:    d.servePage,
	})
	ep.Register(SvcInval, kernel.Service{
		Name:       "dsm-inval",
		Idempotent: true,
		Category:   kernel.CatData,
		Handler:    d.serveInval,
	})
	ep.Register(SvcFlush, kernel.Service{
		Name:       "dsm-flush",
		Idempotent: false,
		Category:   kernel.CatData,
		Handler:    d.serveFlush,
	})
	return d
}

// Node returns the node this DSM belongs to.
func (d *DSM) Node() kernel.Node { return d.node }

// Space returns the shared space descriptor.
func (d *DSM) Space() *Space { return d.space }

// Protocol returns the page consistency protocol in use.
func (d *DSM) Protocol() Protocol { return d.proto }

// Stats returns a snapshot of this node's DSM counters. The counters are
// atomic, so the snapshot is safe to take from any goroutine while
// handlers are live (each field is individually consistent; the struct is
// not a single cut, which monotonic counters don't need).
func (d *DSM) Stats() Stats {
	return Stats{
		ReadFaults:   d.ctr.readFaults.Load(),
		WriteFaults:  d.ctr.writeFaults.Load(),
		Requests:     d.ctr.requests.Load(),
		Served:       d.ctr.served.Load(),
		Redirected:   d.ctr.redirected.Load(),
		InvalsSent:   d.ctr.invalsSent.Load(),
		InvalsRecved: d.ctr.invalsRecved.Load(),
		MirageDrops:  d.ctr.mirageDrops.Load(),
		BusyDrops:    d.ctr.busyDrops.Load(),
		FaultWait:    kernel.Duration(d.ctr.faultWaitNS.Load()),
		BytesIn:      d.ctr.bytesIn.Load(),
		BytesOut:     d.ctr.bytesOut.Load(),
		DiffsSent:    d.ctr.diffsSent.Load(),
		DiffBytes:    d.ctr.diffBytes.Load(),
		FullPages:    d.ctr.fullPages.Load(),
		LRCMerges:    d.ctr.lrcMerges.Load(),
		WriteNotices: d.ctr.writeNotices.Load(),
		TwinBytes:    d.ctr.twinBytes.Load(),
	}
}

// SetDiffs switches twin-and-diff page shipping on or off. Like the
// protocol choice it is a cluster-wide setting: call it on every node,
// with the same value, before any traffic flows.
func (d *DSM) SetDiffs(on bool) { d.diffs = on }

// DiffsEnabled reports whether twin-and-diff page shipping is on.
func (d *DSM) DiffsEnabled() bool { return d.diffs }

// addBlock is called by Space.Alloc for every new block.
func (d *DSM) addBlock(b int32, owner kernel.NodeID) {
	if int(b) != len(d.blocks) {
		panic("dsm: block sequence out of order")
	}
	st := blockState{probOwner: owner}
	if owner == d.node.ID() {
		st.owner = true
		st.access = accRO // upgraded (and marked touched) on first write
		st.frame = make([]byte, d.space.blockSize(int(b)))
	}
	d.blocks = append(d.blocks, st)
}

// --- Typed accessors (the mprotect-fault substitution). ---
//
// Each accessor checks the containing block's protection; on a miss it
// takes the fault path, which suspends the calling server thread and lets
// the node run other work while the page is fetched — the multithreaded
// overlap at the heart of the paper.

// ReadF64 reads the float64 at address a.
func (d *DSM) ReadF64(t kernel.Thread, a Addr) float64 {
	b := d.space.pageBlock[a>>pageShift]
	st := &d.blocks[b]
	if st.access == accNone {
		d.fault(t, int(b), false)
	}
	if m := d.space.monitor; m != nil {
		m.OnAccess(d.node.ID(), a, 8, false, d.node.Now())
	}
	off := a - Addr(d.space.blockStart[b])<<pageShift
	return math.Float64frombits(binary.LittleEndian.Uint64(st.frame[off:]))
}

// WriteF64 writes the float64 v at address a.
func (d *DSM) WriteF64(t kernel.Thread, a Addr, v float64) {
	b := d.space.pageBlock[a>>pageShift]
	st := &d.blocks[b]
	if st.access != accRW {
		d.fault(t, int(b), true)
	}
	if st.snap {
		d.snapshot(st)
	}
	if m := d.space.monitor; m != nil {
		m.OnAccess(d.node.ID(), a, 8, true, d.node.Now())
	}
	off := a - Addr(d.space.blockStart[b])<<pageShift
	binary.LittleEndian.PutUint64(st.frame[off:], math.Float64bits(v))
}

// ReadI64 reads the int64 at address a.
func (d *DSM) ReadI64(t kernel.Thread, a Addr) int64 {
	b := d.space.pageBlock[a>>pageShift]
	st := &d.blocks[b]
	if st.access == accNone {
		d.fault(t, int(b), false)
	}
	if m := d.space.monitor; m != nil {
		m.OnAccess(d.node.ID(), a, 8, false, d.node.Now())
	}
	off := a - Addr(d.space.blockStart[b])<<pageShift
	return int64(binary.LittleEndian.Uint64(st.frame[off:]))
}

// WriteI64 writes the int64 v at address a.
func (d *DSM) WriteI64(t kernel.Thread, a Addr, v int64) {
	b := d.space.pageBlock[a>>pageShift]
	st := &d.blocks[b]
	if st.access != accRW {
		d.fault(t, int(b), true)
	}
	if st.snap {
		d.snapshot(st)
	}
	if m := d.space.monitor; m != nil {
		m.OnAccess(d.node.ID(), a, 8, true, d.node.Now())
	}
	off := a - Addr(d.space.blockStart[b])<<pageShift
	binary.LittleEndian.PutUint64(st.frame[off:], uint64(v))
}

// snapshot is the copy-on-first-write twin: frame's content was published
// at st.ver, so before the first post-publish write it is copied into
// shadow as the diff base and the version advances. With diffs off only
// the publish mark is cleared — versions stay at zero cluster-wide.
func (d *DSM) snapshot(st *blockState) {
	st.snap = false
	if !d.diffs {
		return
	}
	if len(st.shadow) != len(st.frame) {
		st.shadow = make([]byte, len(st.frame))
	}
	copy(st.shadow, st.frame)
	st.shadowVer = st.ver
	st.ver++
}

// Readable reports whether address a can currently be read without
// faulting (used by tests and the pool placement heuristics).
func (d *DSM) Readable(a Addr) bool {
	return d.blocks[d.space.pageBlock[a>>pageShift]].access != accNone
}

// Writable reports whether address a can currently be written without
// faulting.
func (d *DSM) Writable(a Addr) bool {
	return d.blocks[d.space.pageBlock[a>>pageShift]].access == accRW
}

// --- Fault path. ---

func sufficient(a access, write bool) bool {
	if write {
		return a == accRW
	}
	return a != accNone
}

// FaultTrace, when non-nil, observes every fault (diagnostics hook).
var FaultTrace func(node kernel.NodeID, block int, write bool)

// fault suspends t until the block is accessible at the needed level.
func (d *DSM) fault(t kernel.Thread, b int, write bool) {
	if FaultTrace != nil {
		FaultTrace(d.node.ID(), b, write)
	}
	if write {
		d.ctr.writeFaults.Inc()
	} else {
		d.ctr.readFaults.Inc()
	}
	d.node.Charge(kernel.CatData, d.node.Model().FaultHandle)
	st := &d.blocks[b]
	t0 := d.node.Now()
	for !sufficient(st.access, write) {
		d.ensure(b, write)
		if sufficient(st.access, write) {
			// ensure completed synchronously (owner write-upgrade with an
			// empty copyset); do not park, nobody would wake us.
			break
		}
		st.waiting = append(st.waiting, waiter{t: t, write: write})
		t.Block()
	}
	wait := d.node.Now().Sub(t0)
	d.ctr.faultWaitNS.Add(int64(wait))
	if d.obs.Enabled() {
		var w int64
		if write {
			w = 1
		}
		d.obs.TraceSpan(int64(t0), int64(wait), "dsm", "fault",
			obs.Arg{Key: "block", Val: int64(b)}, obs.Arg{Key: "write", Val: w})
	}
}

// ensure starts whatever protocol action is needed to raise this block's
// access, unless one is already in flight.
func (d *DSM) ensure(b int, write bool) {
	st := &d.blocks[b]
	if st.fetching || st.invals > 0 {
		return // something already in flight; waiters recheck on install
	}
	if st.owner && write && st.access == accRO {
		// Write upgrade by the owner (first write to a virgin block, or
		// write-invalidate downgraded us while serving readers):
		// invalidate the copyset, no data transfer.
		st.touched = true
		d.strat.ownerUpgraded(d, b, st)
		d.startInvalidation(b)
		return
	}
	if st.owner {
		panic(fmt.Sprintf("dsm: node %d owner of block %d with access %d cannot ensure", d.node.ID(), b, st.access))
	}
	if write && d.strat.localWriteUpgrade(d, b, st) {
		// The strategy satisfied the write fault in place (LRC's
		// multi-writer upgrade of a held read copy); nothing in flight.
		return
	}
	st.fetching = true
	d.outstanding++
	d.sendRequest(b, write, st.probOwner)
}

func (d *DSM) sendRequest(b int, write bool, dst kernel.NodeID) {
	if dst == d.node.ID() {
		panic(fmt.Sprintf("dsm: node %d would request block %d from itself", d.node.ID(), b))
	}
	d.ctr.requests.Inc()
	req := pageReq{Block: int32(b), Write: write, HaveVer: -1}
	if st := &d.blocks[b]; d.diffs && len(st.shadow) == d.space.blockSize(b) {
		// Advertise the retained stale copy as a diff base. The base is
		// stable while the fetch is in flight: with no access there are no
		// local writes, and every revocation path only fires on held
		// copies.
		req.HaveVer = st.shadowVer
	}
	d.ep.RequestSized(dst, SvcPage, req, reqSize, d.space.blockSize(b), kernel.CatData, func(r any) {
		d.onPageReply(b, write, dst, r)
	})
}

// onPageReply handles the reply to one of our page requests. It runs in
// node context (kernel or a preempting thread).
func (d *DSM) onPageReply(b int, write bool, from kernel.NodeID, r any) {
	st := &d.blocks[b]
	switch m := r.(type) {
	case redirect:
		// Follow the probable-owner chain (path compression on the hint).
		st.probOwner = m.Owner
		d.ctr.redirected.Inc()
		d.sendRequest(b, write, m.Owner)
	case pageData:
		d.install(b, write, from, m)
	default:
		panic(fmt.Sprintf("dsm: unexpected page reply %T", r))
	}
}

// install places received page data, completing or continuing the fetch.
func (d *DSM) install(b int, write bool, from kernel.NodeID, m pageData) {
	st := &d.blocks[b]
	d.node.Charge(kernel.CatData, d.node.Model().PageInstall)
	d.ctr.bytesIn.Add(int64(len(m.Data)))
	if m.Diff {
		// The server diffed against the base we advertised in HaveVer;
		// adopt the base buffer as the new frame and patch it in place.
		// m.Data may alias a transport receive buffer, but diffApply
		// copies out of it before this callback returns.
		if len(st.shadow) != d.space.blockSize(b) {
			panic(fmt.Sprintf("dsm: node %d got a diff for block %d without a base", d.node.ID(), b))
		}
		st.frame = st.shadow
		st.shadow = nil
		if !diffApply(st.frame, m.Data) {
			panic(fmt.Sprintf("dsm: node %d got a malformed diff for block %d", d.node.ID(), b))
		}
	} else {
		if st.frame == nil {
			st.frame = make([]byte, d.space.blockSize(b))
		}
		if m.Data != nil {
			copy(st.frame, m.Data)
		} else {
			clear(st.frame) // virgin transfer: content is zeros
		}
	}
	// The installed content is published at m.Ver — the server holds (or
	// held) the identical bytes — so it is twin-snapshotted before our
	// first write. A full install keeps any old shadow: its (version,
	// content) pair is still valid and may serve future diffs.
	st.ver = m.Ver
	st.snap = true
	st.fetching = false
	st.acquired = d.node.Now()
	if m.GrantOwner {
		st.owner = true
		st.touched = true // conservative: we may write without faulting
		st.probOwner = d.node.ID()
		st.copyset = append(st.copyset[:0], m.Copyset...)
	}
	if mon := d.space.monitor; mon != nil {
		mon.OnPageInstall(d.node.ID(), from, b, m.GrantOwner, d.node.Now())
	}
	switch {
	case m.GrantOwner && write && d.strat.invalidateOnGrant() && len(st.copyset) > 0:
		// We own the block but read-only copies are out there; they must
		// be invalidated before we may write (IVY-style requester-driven
		// invalidation). Access stays None until all acks arrive.
		d.outstanding--
		d.startInvalidation(b)
	case m.GrantOwner:
		st.access = accRW
		st.copyset = st.copyset[:0]
		d.outstanding--
		d.wake(b)
	default:
		d.strat.installCopy(d, b, st, write)
		d.outstanding--
		d.wake(b)
	}
	d.checkQuiescent()
}

// startInvalidation sends invalidations to every copyset member and defers
// the RW grant until all acks arrive.
func (d *DSM) startInvalidation(b int) {
	st := &d.blocks[b]
	targets := make([]kernel.NodeID, 0, len(st.copyset))
	for _, n := range st.copyset {
		if n != d.node.ID() {
			targets = append(targets, n)
		}
	}
	st.copyset = st.copyset[:0]
	if len(targets) == 0 {
		st.access = accRW
		d.wake(b)
		return
	}
	st.invals = len(targets)
	d.outstanding++
	d.obs.Trace(int64(d.node.Now()), "dsm", "inval",
		obs.Arg{Key: "block", Val: int64(b)}, obs.Arg{Key: "copies", Val: int64(len(targets))})
	for _, n := range targets {
		d.ctr.invalsSent.Inc()
		d.ep.RequestAsync(n, SvcInval, invalReq{Block: int32(b)}, reqSize, kernel.CatData, func(any) {
			// Re-lookup: d.blocks may have grown since the request went out.
			bs := &d.blocks[b]
			bs.invals--
			if bs.invals == 0 {
				bs.access = accRW
				bs.acquired = d.node.Now()
				d.outstanding--
				d.wake(b)
				d.checkQuiescent()
			}
		})
	}
}

// wake makes every satisfied waiter runnable; unsatisfied waiters (writers
// woken by a read-only install) recheck in the fault loop and re-arm.
func (d *DSM) wake(b int) {
	st := &d.blocks[b]
	ws := st.waiting
	st.waiting = nil
	for _, w := range ws {
		d.node.Ready(w.t, d.WakeFront)
	}
}

// --- Serving. ---

// servePage handles a page request from another node.
func (d *DSM) servePage(from kernel.NodeID, req any) (any, int, kernel.Verdict) {
	m := req.(pageReq)
	b := int(m.Block)
	st := &d.blocks[b]
	if !st.owner {
		if st.probOwner == from {
			// Our hint says the requester owns this block, but it clearly
			// does not believe so: the grant that makes the hint true is
			// still in flight to it — its request overtook our earlier
			// reply, an ordering real UDP permits (the simulated Ethernet
			// delivers in send order, so this never fires there). A
			// redirect would point the requester at itself; drop instead,
			// and its retransmission arrives after the grant installs.
			d.ctr.busyDrops.Inc()
			return nil, 0, kernel.Drop
		}
		return redirect{Block: m.Block, Owner: st.probOwner}, reqSize, kernel.Reply
	}
	if st.fetching || st.invals > 0 {
		// Mid-transition (e.g. we just got ownership and are still
		// invalidating); the requester retries.
		d.ctr.busyDrops.Inc()
		return nil, 0, kernel.Drop
	}
	takesAway := d.strat.takesAway(m.Write)
	model := d.node.Model()
	if takesAway && model.MirageWindow > 0 {
		if held := d.node.Now().Sub(st.acquired); held < model.MirageWindow {
			d.ctr.mirageDrops.Inc()
			d.obs.Trace(int64(d.node.Now()), "dsm", "mirage_drop",
				obs.Arg{Key: "block", Val: int64(b)}, obs.Arg{Key: "from", Val: int64(from)})
			return nil, 0, kernel.Drop
		}
	}
	d.node.Charge(kernel.CatData, model.PageServe)
	if st.frame == nil {
		st.frame = make([]byte, d.space.blockSize(b))
	}
	var data []byte
	isDiff := false
	size := reqSize
	if st.touched {
		switch {
		case d.diffs && m.HaveVer >= 0 && m.HaveVer == st.ver:
			// The requester's retained copy is already the current
			// version; an empty diff transfers only the grant.
			isDiff = true
		case d.diffs && m.HaveVer >= 0 && st.shadow != nil && m.HaveVer == st.shadowVer:
			if dd, ok := diffEncode(st.shadow, st.frame, len(st.frame)/2); ok {
				data = dd
				isDiff = true
			}
			// A diff above half the frame ships the full page instead:
			// past that point the entry overhead plus the apply pass cost
			// more than the bytes they save.
		}
		if isDiff {
			d.ctr.diffsSent.Inc()
			d.ctr.diffBytes.Add(int64(len(data)))
		} else {
			data = make([]byte, len(st.frame))
			copy(data, st.frame)
			d.ctr.fullPages.Inc()
		}
		size = len(data) + reqSize
	}
	d.ctr.served.Inc()
	d.ctr.bytesOut.Add(int64(len(data)))
	if mon := d.space.monitor; mon != nil {
		mon.OnPageServe(d.node.ID(), from, b, takesAway, d.node.Now())
	}

	if takesAway {
		// Ownership moves to the requester (migratory always; write fault
		// under write-invalidate or implicit-invalidate).
		cs := st.copyset
		st.copyset = nil
		reply := pageData{Block: m.Block, Data: data, GrantOwner: true, Ver: st.ver, Diff: isDiff}
		if d.strat.shipsCopyset() {
			reply.Copyset = cs
		}
		st.owner = false
		st.access = accNone
		st.probOwner = from
		if d.diffs {
			// Retain the departing frame as a stale diff base — the next
			// fetch advertises it, and the buffer is patched in place if
			// the reply is a diff.
			st.shadow = st.frame
			st.shadowVer = st.ver
		}
		st.snap = false
		st.frame = nil
		return reply, size, kernel.Reply
	}
	// Non-owning copy: the strategy decides what the serve does to our
	// own state (write-invalidate records the copy and downgrades us;
	// implicit-invalidate and LRC just mark the content published).
	d.strat.servedCopy(d, b, st, from)
	return pageData{Block: m.Block, Data: data, Ver: st.ver, Diff: isDiff}, size, kernel.Reply
}

func appendUnique(s []kernel.NodeID, n kernel.NodeID) []kernel.NodeID {
	for _, x := range s {
		if x == n {
			return s
		}
	}
	return append(s, n)
}

// serveInval drops our read-only copy.
func (d *DSM) serveInval(from kernel.NodeID, req any) (any, int, kernel.Verdict) {
	m := req.(invalReq)
	st := &d.blocks[m.Block]
	d.ctr.invalsRecved.Inc()
	if !st.owner && st.access == accRO {
		st.access = accNone
		if d.diffs {
			// Retain the invalidated copy as a stale diff base for the
			// next fetch of this block.
			st.shadow = st.frame
			st.shadowVer = st.ver
		}
		st.frame = nil
	}
	return nil, 8, kernel.Reply
}

// --- Synchronization hooks. ---

// AtBarrier applies the protocol's synchronization-point rule: under
// implicit-invalidate every non-owned read-only copy is discarded with no
// messages; the other protocols only reset the copy bookkeeping.
func (d *DSM) AtBarrier() {
	d.strat.atBarrier(d)
}

// Quiesce blocks t until the node has no outstanding page operations, the
// paper's rule that "nodes delay at synchronization points until all
// outstanding page requests have been satisfied".
func (d *DSM) Quiesce(t kernel.Thread) {
	for d.outstanding > 0 {
		d.quiescers = append(d.quiescers, t)
		t.Block()
	}
}

func (d *DSM) checkQuiescent() {
	if d.outstanding != 0 {
		return
	}
	qs := d.quiescers
	d.quiescers = nil
	for _, t := range qs {
		d.node.Ready(t, true)
	}
}

// Outstanding reports in-flight page operations (fetches and invalidation
// rounds).
func (d *DSM) Outstanding() int { return d.outstanding }

// DebugBlock formats the protocol state of the block containing a, for
// diagnostics.
func (d *DSM) DebugBlock(a Addr) string {
	b := d.space.pageBlock[a>>pageShift]
	st := &d.blocks[b]
	return fmt.Sprintf("blk%d{acc=%d own=%v prob=%d cs=%v fetch=%v invals=%d wait=%d}",
		b, st.access, st.owner, st.probOwner, st.copyset, st.fetching, st.invals, len(st.waiting))
}

// Peek returns the float64 at address a if this node owns the containing
// block. It is a debugging/verification accessor (no protocol action, no
// cost) intended for use after a run completes.
func (d *DSM) Peek(a Addr) (float64, bool) {
	b := d.space.pageBlock[a>>pageShift]
	st := &d.blocks[b]
	if !st.owner || st.frame == nil {
		return 0, false
	}
	off := a - Addr(d.space.blockStart[b])<<pageShift
	return math.Float64frombits(binary.LittleEndian.Uint64(st.frame[off:])), true
}
