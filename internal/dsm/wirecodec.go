package dsm

import (
	"filaments/internal/kernel"
	"filaments/internal/rtnode"
)

// Binary wire codecs for the page protocol (tags 16–19; see the tag map
// in rtnode/codec.go). pageData is THE hot payload of the real-UDP
// binding — a whole block frame per message — so its encoder appends
// into the transport's pooled buffer and its decoder aliases the receive
// buffer: zero codec allocations in both directions (the install path
// copies synchronously, per the kernel contract). The encode/decode pair
// below is split into *Into helpers so the allocation-gate benchmark can
// measure the codec body without the interface boxing the registry
// requires.
func init() {
	rtnode.RegisterWireCodec(pageReq{}, 16,
		func(e *rtnode.Enc, v any) { m := v.(pageReq); encPageReq(e, &m) },
		func(d *rtnode.Dec) any {
			var m pageReq
			decPageReqInto(d, &m)
			return m
		})
	rtnode.RegisterWireCodec(pageData{}, 17,
		func(e *rtnode.Enc, v any) { m := v.(pageData); encPageData(e, &m) },
		func(d *rtnode.Dec) any {
			var m pageData
			decPageDataInto(d, &m)
			return m
		})
	rtnode.RegisterWireCodec(redirect{}, 18,
		func(e *rtnode.Enc, v any) {
			m := v.(redirect)
			e.Varint(int64(m.Block))
			e.Varint(int64(m.Owner))
		},
		func(d *rtnode.Dec) any {
			var m redirect
			m.Block = int32(d.Varint())
			m.Owner = kernel.NodeID(d.Varint())
			return m
		})
	rtnode.RegisterWireCodec(invalReq{}, 19,
		func(e *rtnode.Enc, v any) { e.Varint(int64(v.(invalReq).Block)) },
		func(d *rtnode.Dec) any { return invalReq{Block: int32(d.Varint())} })
	rtnode.RegisterWireCodec(lrcFlush{}, 20,
		func(e *rtnode.Enc, v any) { m := v.(lrcFlush); encLRCFlush(e, &m) },
		func(d *rtnode.Dec) any {
			var m lrcFlush
			decLRCFlushInto(d, &m)
			return m
		})
}

//dflint:hotpath
func encLRCFlush(e *rtnode.Enc, m *lrcFlush) {
	e.Uvarint(uint64(len(m.Blocks)))
	for i, b := range m.Blocks {
		e.Varint(int64(b))
		e.Bytes(m.Diffs[i])
	}
}

// decLRCFlushInto decodes into m; the diff slices alias the input buffer
// (serveFlush patches the home frame synchronously, per the kernel
// contract).
//
//dflint:hotpath
func decLRCFlushInto(d *rtnode.Dec, m *lrcFlush) {
	n := d.Uvarint()
	if n > uint64(d.Remaining()) { // each entry costs ≥2 bytes; reject bogus lengths
		d.Fail()
		return
	}
	for i := uint64(0); i < n; i++ {
		m.Blocks = append(m.Blocks, int32(d.Varint()))
		m.Diffs = append(m.Diffs, d.Bytes())
	}
	if len(m.Blocks) == 0 {
		m.Blocks, m.Diffs = nil, nil // normalize like gob
	}
}

//dflint:hotpath
func encPageReq(e *rtnode.Enc, m *pageReq) {
	e.Varint(int64(m.Block))
	e.Bool(m.Write)
	e.Varint(m.HaveVer)
}

//dflint:hotpath
func decPageReqInto(d *rtnode.Dec, m *pageReq) {
	m.Block = int32(d.Varint())
	m.Write = d.Bool()
	m.HaveVer = d.Varint()
}

//dflint:hotpath
func encPageData(e *rtnode.Enc, m *pageData) {
	e.Varint(int64(m.Block))
	e.Bool(m.GrantOwner)
	e.Bool(m.Diff)
	e.Varint(m.Ver)
	e.Bytes(m.Data)
	e.Uvarint(uint64(len(m.Copyset)))
	for _, n := range m.Copyset {
		e.Varint(int64(n))
	}
}

// decPageDataInto decodes into m, reusing m.Copyset's capacity; m.Data
// aliases the input buffer.
//
//dflint:hotpath
func decPageDataInto(d *rtnode.Dec, m *pageData) {
	m.Block = int32(d.Varint())
	m.GrantOwner = d.Bool()
	m.Diff = d.Bool()
	m.Ver = d.Varint()
	m.Data = d.Bytes()
	n := d.Uvarint()
	if n > uint64(d.Remaining()) { // each entry costs ≥1 byte; reject bogus lengths
		d.Fail()
		return
	}
	m.Copyset = m.Copyset[:0]
	for i := uint64(0); i < n; i++ {
		m.Copyset = append(m.Copyset, kernel.NodeID(d.Varint()))
	}
	if len(m.Copyset) == 0 {
		m.Copyset = nil // nil-vs-empty carries no wire meaning; normalize like gob
	}
}
