package dsm

import (
	"filaments/internal/kernel"
)

// strategy is the per-protocol policy seam. The DSM owns the mechanism —
// faults, requests, installs, invalidation rounds, quiescence — and
// delegates every consistency decision to its strategy, one per Protocol
// value. The three single-writer protocols differ only in when a serve
// takes the master copy away, who tracks read copies, and what happens
// at synchronization points; lazy release consistency additionally takes
// over the write-fault path (multi-writer copies) and the release and
// acquire actions.
type strategy interface {
	// takesAway reports whether serving a request with the given write
	// flag moves the master copy (and ownership) to the requester.
	takesAway(write bool) bool
	// shipsCopyset reports whether an ownership grant carries the
	// server's copyset for requester-driven invalidation.
	shipsCopyset() bool
	// invalidateOnGrant reports whether a requester that was granted
	// ownership for a write must invalidate the shipped copyset before
	// the write may proceed (IVY-style).
	invalidateOnGrant() bool
	// servedCopy adjusts the server's own state after it replied with a
	// non-owning copy of block b to node from.
	servedCopy(d *DSM, b int, st *blockState, from kernel.NodeID)
	// installCopy installs a non-owning page reply on the requester,
	// setting the block's access level and any copy bookkeeping. The
	// frame content and version are already in place.
	installCopy(d *DSM, b int, st *blockState, write bool)
	// localWriteUpgrade gives the strategy a chance to satisfy a
	// non-owner write fault locally, without protocol traffic. It
	// reports whether it did (LRC's multi-writer upgrade).
	localWriteUpgrade(d *DSM, b int, st *blockState) bool
	// ownerUpgraded is called when the owner begins a write upgrade of
	// block b (first write to a virgin block, or re-arming after a
	// downgrade), before the invalidation round starts.
	ownerUpgraded(d *DSM, b int, st *blockState)
	// atBarrier applies the protocol's synchronization-point rule to the
	// node's read-only copies.
	atBarrier(d *DSM)
}

// strategyFor maps a Protocol to its (stateless, shared) strategy.
func strategyFor(p Protocol) strategy {
	switch p {
	case Migratory:
		return migratoryStrategy{}
	case WriteInvalidate:
		return writeInvalidateStrategy{}
	case ImplicitInvalidate:
		return implicitInvalidateStrategy{}
	case LazyRelease:
		return lazyReleaseStrategy{}
	}
	panic("dsm: unknown protocol " + p.String())
}

// singleWriter collects the behavior all three paper protocols share:
// ownership is exclusive, a non-owner write fault always fetches, and
// read-copy bookkeeping is a plain roCopies entry.
type singleWriter struct{}

func (singleWriter) invalidateOnGrant() bool { return false }

func (singleWriter) installCopy(d *DSM, b int, st *blockState, write bool) {
	st.access = accRO
	d.roCopies = append(d.roCopies, int32(b))
}

func (singleWriter) localWriteUpgrade(d *DSM, b int, st *blockState) bool { return false }

func (singleWriter) ownerUpgraded(d *DSM, b int, st *blockState) {}

func (singleWriter) atBarrier(d *DSM) {
	d.roCopies = d.roCopies[:0]
}

// migratoryStrategy keeps a single copy of each page, moving it on every
// request.
type migratoryStrategy struct{ singleWriter }

func (migratoryStrategy) takesAway(write bool) bool { return true }
func (migratoryStrategy) shipsCopyset() bool        { return false }

// servedCopy is unreachable under migratory (every serve takes the page
// away); keep the publish mark correct anyway.
func (migratoryStrategy) servedCopy(d *DSM, b int, st *blockState, from kernel.NodeID) {
	st.snap = true
}

// writeInvalidateStrategy replicates read-only copies and explicitly
// invalidates them all when any node writes.
type writeInvalidateStrategy struct{ singleWriter }

func (writeInvalidateStrategy) takesAway(write bool) bool { return write }
func (writeInvalidateStrategy) shipsCopyset() bool        { return true }
func (writeInvalidateStrategy) invalidateOnGrant() bool   { return true }

func (writeInvalidateStrategy) servedCopy(d *DSM, b int, st *blockState, from kernel.NodeID) {
	// Remember the copy and downgrade ourselves so a future local write
	// faults and invalidates.
	st.copyset = appendUnique(st.copyset, from)
	if st.access == accRW {
		st.access = accRO
	}
	st.snap = true // published at st.ver; the next write re-twins
}

// implicitInvalidateStrategy replicates read-only copies that die,
// message-free, at the holder's next synchronization point.
type implicitInvalidateStrategy struct{ singleWriter }

func (implicitInvalidateStrategy) takesAway(write bool) bool { return write }
func (implicitInvalidateStrategy) shipsCopyset() bool        { return false }

func (implicitInvalidateStrategy) servedCopy(d *DSM, b int, st *blockState, from kernel.NodeID) {
	// Track nothing and keep our write access: the copy dies at the
	// requester's next synchronization point (the protocol's whole point).
	st.snap = true // published at st.ver; the next write re-twins
}

func (implicitInvalidateStrategy) atBarrier(d *DSM) {
	for _, b := range d.roCopies {
		st := &d.blocks[b]
		if !st.owner && st.access == accRO {
			st.access = accNone
			if d.diffs {
				// Retain the discarded copy as a stale diff base: under
				// implicit-invalidate the same read-only pages are
				// re-fetched every iteration, and the diff against last
				// iteration's copy is exactly the owner's writes.
				st.shadow = st.frame
				st.shadowVer = st.ver
			}
			st.frame = nil
		}
	}
	d.roCopies = d.roCopies[:0]
}

// lazyReleaseStrategy is home-based LRC: the home node never loses
// ownership, writers fault in their own writable copies (twinning the
// received content), and the interval's diffs are flushed to the home at
// barrier release (see lrc.go for the release/acquire machinery).
type lazyReleaseStrategy struct{}

func (lazyReleaseStrategy) takesAway(write bool) bool { return false }
func (lazyReleaseStrategy) shipsCopyset() bool        { return false }
func (lazyReleaseStrategy) invalidateOnGrant() bool   { return false }

func (lazyReleaseStrategy) servedCopy(d *DSM, b int, st *blockState, from kernel.NodeID) {
	// The home keeps its access whatever it was: concurrent writers are
	// legal, and staleness is handled by write notices at acquire.
	st.snap = true // published at st.ver; the next write re-twins
}

func (lazyReleaseStrategy) installCopy(d *DSM, b int, st *blockState, write bool) {
	if write {
		// Multi-writer install: make the copy writable immediately, with
		// a twin of the received content as the merge base. No other node
		// is told, no copies are invalidated — the diff flushed at the
		// next release carries exactly this interval's words.
		d.lrcBeginWrite(b, st)
		return
	}
	st.access = accRO
	d.roCopies = append(d.roCopies, int32(b))
}

func (lazyReleaseStrategy) localWriteUpgrade(d *DSM, b int, st *blockState) bool {
	if st.access != accRO {
		return false
	}
	// Read copy upgraded in place: twin the current content and write.
	// Zero messages — this is the false-sharing win over the
	// single-writer protocols, which would move or invalidate the page.
	d.lrcBeginWrite(b, st)
	return true
}

func (lazyReleaseStrategy) ownerUpgraded(d *DSM, b int, st *blockState) {
	// Home writes need no twin (the frame is the master copy) but must
	// appear in the interval's write notices like any other write.
	d.lrcDirty = append(d.lrcDirty, int32(b))
}

func (lazyReleaseStrategy) atBarrier(d *DSM) {
	// Copies survive synchronization points; only the write notices
	// applied at acquire (AtAcquire) invalidate them. The list is
	// bookkeeping for the other protocols, so just reset it.
	d.roCopies = d.roCopies[:0]
}
