package dsm

import (
	"bytes"
	"encoding/binary"
)

// Run-length page diffs.
//
// A diff describes how to turn a block's content at one version (the
// base) into its content at a later version: a sequence of
// [uvarint skip][uvarint runLen][runLen bytes] entries, each skipping
// over an unchanged region and overwriting a changed one. Trailing
// unchanged bytes are implicit. An empty (or nil) diff means "identical
// to the base".
//
// Runs are found at 8-byte-word granularity — the accessors write the
// space in word units, so finer boundaries would only fragment runs and
// inflate the entry overhead. The final sub-word tail is compared
// bytewise.

// diffWord is the comparison granularity.
const diffWord = 8

// diffEncode computes the diff from base to cur (equal lengths). It gives
// up and reports ok=false as soon as the diff exceeds limit bytes —
// past that point shipping the full page is cheaper than shipping the
// diff plus applying it.
func diffEncode(base, cur []byte, limit int) (diff []byte, ok bool) {
	var out []byte
	i, n := 0, len(cur)
	for i < n {
		skipStart := i
		for i < n {
			s := min(diffWord, n-i)
			if wordDiffers(base, cur, i, s) {
				break
			}
			i += s
		}
		if i == n {
			break // trailing unchanged region is implicit
		}
		skip := i - skipStart
		runStart := i
		for i < n {
			s := min(diffWord, n-i)
			if !wordDiffers(base, cur, i, s) {
				break
			}
			i += s
		}
		out = binary.AppendUvarint(out, uint64(skip))
		out = binary.AppendUvarint(out, uint64(i-runStart))
		out = append(out, cur[runStart:i]...)
		if len(out) > limit {
			return nil, false
		}
	}
	return out, true
}

func wordDiffers(base, cur []byte, i, s int) bool {
	if s == diffWord {
		return binary.LittleEndian.Uint64(base[i:]) != binary.LittleEndian.Uint64(cur[i:])
	}
	return !bytes.Equal(base[i:i+s], cur[i:i+s])
}

// diffApply patches frame in place with a diff produced by diffEncode
// against frame's current content. It reports false (leaving frame
// partially patched) on a malformed diff — which peers never send, so
// callers treat it as a protocol bug.
//
//dflint:hotpath
func diffApply(frame, diff []byte) bool {
	off := 0
	for len(diff) > 0 {
		skip, w := binary.Uvarint(diff)
		if w <= 0 {
			return false
		}
		diff = diff[w:]
		run, w2 := binary.Uvarint(diff)
		if w2 <= 0 {
			return false
		}
		diff = diff[w2:]
		if skip > uint64(len(frame)-off) {
			return false
		}
		off += int(skip)
		if run == 0 || run > uint64(len(frame)-off) || run > uint64(len(diff)) {
			return false
		}
		copy(frame[off:], diff[:run])
		off += int(run)
		diff = diff[run:]
	}
	return true
}
