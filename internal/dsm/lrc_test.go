package dsm

import (
	"bytes"
	"math/rand"
	"testing"
)

// TestDisjointDiffsCommute is the multi-writer soundness property behind
// lazy release consistency: two writers of the same block that touch
// disjoint word sets (a data-race-free interval) produce diffs the home
// can merge in either order with the same result. serveFlush relies on
// exactly this — flush arrival order at the home is scheduling-dependent.
func TestDisjointDiffsCommute(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	const words = PageSize / diffWord
	for trial := 0; trial < 200; trial++ {
		base := make([]byte, PageSize)
		rng.Read(base)

		// Partition a random subset of words between the two writers.
		curA := append([]byte(nil), base...)
		curB := append([]byte(nil), base...)
		for w := 0; w < words; w++ {
			switch rng.Intn(4) {
			case 0: // writer A touches this word
				rng.Read(curA[w*diffWord : (w+1)*diffWord])
			case 1: // writer B touches this word
				rng.Read(curB[w*diffWord : (w+1)*diffWord])
			}
		}

		limit := 2*PageSize + 64
		diffA, ok := diffEncode(base, curA, limit)
		if !ok {
			t.Fatalf("trial %d: writer A's diff exceeded the limit", trial)
		}
		diffB, ok := diffEncode(base, curB, limit)
		if !ok {
			t.Fatalf("trial %d: writer B's diff exceeded the limit", trial)
		}

		ab := append([]byte(nil), base...)
		if !diffApply(ab, diffA) || !diffApply(ab, diffB) {
			t.Fatalf("trial %d: A-then-B application failed", trial)
		}
		ba := append([]byte(nil), base...)
		if !diffApply(ba, diffB) || !diffApply(ba, diffA) {
			t.Fatalf("trial %d: B-then-A application failed", trial)
		}
		if !bytes.Equal(ab, ba) {
			t.Fatalf("trial %d: disjoint diffs do not commute", trial)
		}

		// Either order must contain exactly both writers' words.
		for w := 0; w < words; w++ {
			lo, hi := w*diffWord, (w+1)*diffWord
			want := base[lo:hi]
			if !bytes.Equal(curA[lo:hi], base[lo:hi]) {
				want = curA[lo:hi]
			} else if !bytes.Equal(curB[lo:hi], base[lo:hi]) {
				want = curB[lo:hi]
			}
			if !bytes.Equal(ab[lo:hi], want) {
				t.Fatalf("trial %d: word %d lost an update", trial, w)
			}
		}
	}
}

// TestOverlappingDiffsLastMergeWins documents the flip side: when writers
// overlap (a racy program), the home's merge order picks the winner —
// which is why dfcheck must flag overlapping writers under LRC rather
// than the DSM trying to reconcile them.
func TestOverlappingDiffsLastMergeWins(t *testing.T) {
	base := make([]byte, PageSize)
	curA := append([]byte(nil), base...)
	curB := append([]byte(nil), base...)
	for i := 0; i < diffWord; i++ {
		curA[i] = 0xAA
		curB[i] = 0xBB
	}
	limit := 2*PageSize + 64
	diffA, _ := diffEncode(base, curA, limit)
	diffB, _ := diffEncode(base, curB, limit)

	ab := append([]byte(nil), base...)
	diffApply(ab, diffA)
	diffApply(ab, diffB)
	if ab[0] != 0xBB {
		t.Fatalf("A-then-B must end with B's value, got %#x", ab[0])
	}
	ba := append([]byte(nil), base...)
	diffApply(ba, diffB)
	diffApply(ba, diffA)
	if ba[0] != 0xAA {
		t.Fatalf("B-then-A must end with A's value, got %#x", ba[0])
	}
}
