// Package dsm implements the paper's multi-threaded distributed shared
// memory (§3): a paged shared address space replicated at the same
// locations on every node, with three page consistency protocols
// (migratory, write-invalidate, and the paper's new implicit-invalidate),
// page grouping, padded allocation, the Mirage anti-thrashing time window,
// and server-thread suspension on fault so communication overlaps
// computation.
package dsm

import (
	"fmt"

	"filaments/internal/kernel"
)

// Addr is a byte offset into the shared address space. The space is
// replicated at the same location on every node, so an Addr means the same
// thing everywhere (the paper's requirement for shared pointers).
type Addr int64

// PageSize is the protection granularity, matching SunOS on the paper's
// testbed.
const PageSize = 4096

const pageShift = 12

// Protocol selects the page consistency protocol for the whole space.
type Protocol int

const (
	// Migratory keeps a single copy of each page, moving it from node to
	// node as needed (read or write).
	Migratory Protocol = iota
	// WriteInvalidate allows replicated read-only copies that are all
	// explicitly invalidated when any node writes.
	WriteInvalidate
	// ImplicitInvalidate is the paper's new protocol: read-only copies are
	// implicitly discarded at every synchronization point, so no
	// invalidation messages are ever sent. Correct only for regular
	// problems with a stable, single-writer-per-page sharing pattern.
	ImplicitInvalidate
	// LazyRelease is home-based lazy release consistency, the post-1994
	// answer to false-sharing ping-pong: every block stays owned by its
	// home node, any number of nodes may write their own copies of the
	// same block concurrently (each diffing against a twin taken at the
	// first write), the diffs are flushed to the home at barrier release,
	// and write notices propagated with the release invalidate stale
	// copies at acquire. Correct for data-race-free barrier programs.
	LazyRelease
)

func (p Protocol) String() string {
	switch p {
	case Migratory:
		return "migratory"
	case WriteInvalidate:
		return "write-invalidate"
	case ImplicitInvalidate:
		return "implicit-invalidate"
	case LazyRelease:
		return "lazy-release"
	}
	return fmt.Sprintf("Protocol(%d)", int(p))
}

// Space is the cluster-wide description of the shared address space: the
// allocator plus per-page initial ownership and grouping. It is created
// once and shared (by reference) by every node's DSM. Allocation happens
// during program setup, deterministically, mirroring the paper's library
// routine that "allocates a data structure in global memory and
// automatically pads".
type Space struct {
	npages int
	brk    Addr

	// block is the protocol granularity: one or more pages grouped so a
	// request for any page fetches all of them (paper §3). pageBlock maps
	// page -> block; blockPages maps block -> page range.
	pageBlock  []int32
	blockStart []int32 // first page of each block
	blockLen   []int32 // pages in each block

	home []kernel.NodeID // initial owner per block

	dsms []*DSM // every node's DSM, for initial-state setup

	// monitor, when non-nil, observes accesses, transfers, and sync events
	// on every node (see Monitor in monitor.go).
	monitor Monitor
}

// NewSpace creates a shared address space of at most maxBytes (rounded up
// to whole pages).
func NewSpace(maxBytes int64) *Space {
	np := int((maxBytes + PageSize - 1) / PageSize)
	if np <= 0 {
		panic("dsm: empty space")
	}
	return &Space{
		npages:    np,
		pageBlock: make([]int32, np),
	}
}

// Pages returns the total number of pages in the space.
func (s *Space) Pages() int { return s.npages }

// Blocks returns the number of allocated protocol blocks.
func (s *Space) Blocks() int { return len(s.blockStart) }

// Used returns the number of allocated bytes.
func (s *Space) Used() Addr { return s.brk }

// AllocOpts controls placement of an allocation.
type AllocOpts struct {
	// Owner is the initial owner of all pages (ignored if OwnerByPage is
	// set). Default node 0, matching the paper's master-initialized data.
	Owner kernel.NodeID
	// OwnerByPage, if non-nil, gives the initial owner of the i-th page of
	// the allocation — used to distribute one strip per node, as the
	// paper's Jacobi program does.
	OwnerByPage func(page int) kernel.NodeID
	// GroupPages groups this many consecutive pages into one protocol
	// block (0 or 1 means no grouping). A group never spans an ownership
	// boundary; the allocator panics if OwnerByPage disagrees within a
	// group.
	GroupPages int
}

// Alloc reserves size bytes of shared memory, page-aligned, and returns its
// base address. Every allocation starts on a fresh page — this is the
// paper's automatic padding: distinct data structures never share a page.
func (s *Space) Alloc(size int64, opts AllocOpts) Addr {
	if size <= 0 {
		panic("dsm: Alloc of non-positive size")
	}
	base := s.brk
	if rem := base % PageSize; rem != 0 {
		base += PageSize - rem
	}
	npages := int((size + PageSize - 1) / PageSize)
	first := int(base >> pageShift)
	if first+npages > s.npages {
		panic(fmt.Sprintf("dsm: out of shared memory (need %d pages beyond page %d of %d)", npages, first, s.npages))
	}
	group := opts.GroupPages
	if group <= 1 {
		group = 1
	}
	for p := 0; p < npages; p += group {
		g := group
		if p+g > npages {
			g = npages - p
		}
		owner := opts.Owner
		if opts.OwnerByPage != nil {
			owner = opts.OwnerByPage(p)
			for q := 1; q < g; q++ {
				if opts.OwnerByPage(p+q) != owner {
					panic("dsm: page group spans an ownership boundary")
				}
			}
		}
		block := int32(len(s.blockStart))
		s.blockStart = append(s.blockStart, int32(first+p))
		s.blockLen = append(s.blockLen, int32(g))
		s.home = append(s.home, owner)
		for q := 0; q < g; q++ {
			s.pageBlock[first+p+q] = block
		}
		for _, d := range s.dsms {
			d.addBlock(block, owner)
		}
	}
	s.brk = base + Addr(npages)*PageSize
	return base
}

// PageOf returns the page index containing a.
func PageOf(a Addr) int { return int(a >> pageShift) }

// BlockOf returns the protocol block containing address a.
func (s *Space) BlockOf(a Addr) int { return int(s.pageBlock[a>>pageShift]) }

// HomeOf returns the initial owner (the directory node) of block b.
func (s *Space) HomeOf(b int) kernel.NodeID { return s.home[b] }

// blockBytes returns the byte extent [start, end) of block b.
func (s *Space) blockBytes(b int) (Addr, Addr) {
	start := Addr(s.blockStart[b]) << pageShift
	end := start + Addr(s.blockLen[b])*PageSize
	return start, end
}

// blockSize returns the size of block b in bytes.
func (s *Space) blockSize(b int) int { return int(s.blockLen[b]) * PageSize }
