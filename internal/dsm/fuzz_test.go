package dsm

import (
	"bytes"
	"encoding/gob"
	"reflect"
	"testing"

	"filaments/internal/rtnode"
)

// FuzzLRCFlushRoundTrip frames an LRC release flush (wire tag 20) under
// both codecs the transport supports — the legacy gob framing and the
// binary codec — and asserts each decodes to the original value and that
// the two agree (differential check, same discipline as rtnode's
// FuzzWireRoundTrip). lrcFlush is the one page-protocol payload with a
// nested length-prefixed sequence (per-block diff blobs), which is
// exactly where count/width bugs hide. Seeds cover the empty flush, a
// single block, shared diff tails, and counts past the single-byte
// uvarint boundary; they run on every plain `go test`.
func FuzzLRCFlushRoundTrip(f *testing.F) {
	f.Add(uint8(0), int64(0), []byte{})
	f.Add(uint8(1), int64(7), []byte{0xde, 0xad})
	f.Add(uint8(5), int64(-3), []byte("diff bytes spanning several blocks"))
	f.Add(uint8(200), int64(1)<<40, bytes.Repeat([]byte{0xaa}, 300))
	f.Fuzz(func(t *testing.T, nBlocks uint8, seed int64, diffs []byte) {
		var in lrcFlush
		for i := 0; i < int(nBlocks); i++ {
			in.Blocks = append(in.Blocks, int32(seed>>(uint(i)%48))+int32(i))
			lo := 0
			if len(diffs) > 0 {
				lo = (i * 7) % len(diffs)
			}
			in.Diffs = append(in.Diffs, diffs[lo:])
		}
		want := normalizeFlush(in)

		// Leg 1: the legacy gob framing, exactly as CodecGob sends it.
		var buf bytes.Buffer
		var framed any = in
		if err := gob.NewEncoder(&buf).Encode(&framed); err != nil {
			t.Fatalf("gob encode: %v", err)
		}
		var out any
		if err := gob.NewDecoder(bytes.NewReader(buf.Bytes())).Decode(&out); err != nil {
			t.Fatalf("gob decode: %v", err)
		}
		gobGot, ok := out.(lrcFlush)
		if !ok {
			t.Fatalf("gob round trip changed type: sent %T, got %T", in, out)
		}
		if !reflect.DeepEqual(normalizeFlush(gobGot), want) {
			t.Fatalf("gob round trip changed value:\n sent %#v\n got  %#v", in, gobGot)
		}

		// Leg 2: the binary codec, exactly as CodecBinary sends it.
		bout := rtnode.UnmarshalPayload(rtnode.MarshalPayload(in))
		binGot, ok := bout.(lrcFlush)
		if !ok {
			t.Fatalf("binary round trip changed type: sent %T, got %T", in, bout)
		}
		if !reflect.DeepEqual(normalizeFlush(binGot), want) {
			t.Fatalf("binary round trip changed value:\n sent %#v\n got  %#v", in, binGot)
		}

		// Differential: both codecs must deliver the identical struct.
		if !reflect.DeepEqual(normalizeFlush(binGot), normalizeFlush(gobGot)) {
			t.Fatalf("codecs disagree:\n gob    %#v\n binary %#v", gobGot, binGot)
		}
	})
}

// FuzzLRCFlushDecode feeds raw bytes straight into the tag-20 decoder:
// it must reject or accept without panicking (the decoder runs before
// UnmarshalPayload's corruption check), and anything it accepts must
// re-encode and re-decode to the same value, so a lenient decode can't
// smuggle an unencodable state into serveFlush.
func FuzzLRCFlushDecode(f *testing.F) {
	f.Add([]byte{})
	f.Add([]byte{0x00})
	f.Add([]byte{0x01, 0x02, 0x01, 0xff})        // one block, one diff byte
	f.Add([]byte{0xff, 0xff, 0xff, 0xff, 0x0f})  // bogus huge count
	f.Add(rtnode.MarshalPayload(lrcFlush{})[1:]) // valid empty body
	f.Fuzz(func(t *testing.T, raw []byte) {
		d := rtnode.Dec{B: raw}
		var m lrcFlush
		decLRCFlushInto(&d, &m)
		if d.Bad {
			return
		}
		var e rtnode.Enc
		encLRCFlush(&e, &m)
		d2 := rtnode.Dec{B: e.B}
		var m2 lrcFlush
		decLRCFlushInto(&d2, &m2)
		if d2.Bad {
			t.Fatalf("re-encoding an accepted flush produced a rejected buffer: %#v", m)
		}
		if !reflect.DeepEqual(normalizeFlush(m2), normalizeFlush(m)) {
			t.Fatalf("decode/encode/decode not idempotent:\n first  %#v\n second %#v", m, m2)
		}
	})
}

// normalizeFlush maps zero-length slices to nil at every level, since
// neither codec gives nil-versus-empty a wire meaning.
func normalizeFlush(m lrcFlush) lrcFlush {
	if len(m.Blocks) == 0 {
		m.Blocks = nil
	}
	if len(m.Diffs) == 0 {
		m.Diffs = nil
	}
	for i, d := range m.Diffs {
		if len(d) == 0 {
			m.Diffs[i] = nil
		}
	}
	return m
}
