package dsm

import (
	"filaments/internal/kernel"
)

// Matrix describes a dense row-major float64 matrix in shared memory. It is
// plain metadata — the same Matrix value is used on every node, with access
// going through each node's own DSM, exactly as shared pointers work in the
// paper's replicated address space.
type Matrix struct {
	Base Addr
	Rows int
	Cols int
}

// Bytes returns the matrix's size in bytes.
func (m Matrix) Bytes() int64 { return int64(m.Rows) * int64(m.Cols) * 8 }

// AllocMatrix allocates a rows×cols matrix with the given placement.
func AllocMatrix(s *Space, rows, cols int, opts AllocOpts) Matrix {
	m := Matrix{Rows: rows, Cols: cols}
	m.Base = s.Alloc(m.Bytes(), opts)
	return m
}

// AllocMatrixStriped allocates a matrix whose pages are owned in horizontal
// strips: node k of n owns the pages holding rows [k*rows/n, (k+1)*rows/n).
// Rows that share a page go to the strip of the page's first row, like the
// paper's per-node strip distribution of the Jacobi grids.
func AllocMatrixStriped(s *Space, rows, cols, nodes int) Matrix {
	rowBytes := int64(cols) * 8
	m := Matrix{Rows: rows, Cols: cols}
	m.Base = s.Alloc(m.Bytes(), AllocOpts{
		OwnerByPage: func(page int) kernel.NodeID {
			row := int(int64(page) * PageSize / rowBytes)
			if row >= rows {
				row = rows - 1
			}
			return kernel.NodeID(StripOf(row, rows, nodes))
		},
	})
	return m
}

// Addr returns the address of element (i, j).
func (m Matrix) Addr(i, j int) Addr {
	return m.Base + Addr(i*m.Cols+j)*8
}

// At reads element (i, j) through d.
func (m Matrix) At(d *DSM, t kernel.Thread, i, j int) float64 {
	return d.ReadF64(t, m.Addr(i, j))
}

// Set writes element (i, j) through d.
func (m Matrix) Set(d *DSM, t kernel.Thread, i, j int, v float64) {
	d.WriteF64(t, m.Addr(i, j), v)
}

// StripOf returns which of n equal horizontal strips row i of rows belongs
// to (the last strip absorbs the remainder).
func StripOf(i, rows, n int) int {
	per := rows / n
	if per == 0 {
		per = 1
	}
	s := i / per
	if s >= n {
		s = n - 1
	}
	return s
}

// StripBounds returns the row range [lo, hi) of strip k of n over rows.
func StripBounds(k, rows, n int) (lo, hi int) {
	per := rows / n
	lo = k * per
	hi = lo + per
	if k == n-1 {
		hi = rows
	}
	return lo, hi
}
