// Package check is the DSM memory-model checker behind cmd/dfcheck. It
// attaches to the dsm.Monitor seam and runs a vector-clock happens-before
// race detector over every typed access of a run, plus a sequential-
// consistency oracle that compares per-epoch page digests of a p-node run
// against a single-node run of the same program.
//
// The happens-before model mirrors the kernel's real synchronization:
//
//   - Barrier/reduction epochs: every arrive happens-before every release
//     of the same epoch (the reducer's fold reads all arrivals before any
//     node resumes).
//   - Page-ownership transfers: a serve that grants ownership
//     happens-before the matching install. Read-only copy grants are
//     deliberately NOT edges — a node that keeps reading a cached copy
//     while the owner writes is exactly the stale-read race the checker
//     exists to catch under write-invalidate and implicit-invalidate.
//   - Fork/join shipment: forking a task to another node (or granting a
//     steal) happens-before the task starts there; a remote task's result
//     ship happens-before its delivery at the join's origin.
//   - Lazy-release diff traffic: a writer's diff flush happens-before the
//     home's merge of that diff. Both fire at barrier time (the flush runs
//     at the writer's release, after every access of its interval), so the
//     edge never orders two same-interval accesses — concurrent writes to
//     the same word between barriers stay visible as races under LRC.
//
// Within one node all events are totally ordered (one virtual CPU), so
// races are only reported between different nodes. Under the migratory
// protocol every conflicting access pair is ordered by an ownership
// transfer, so data races are, by construction, undetectable there; run
// the checker under write-invalidate or implicit-invalidate to see them.
//
// Detection is at word granularity (8-byte cells, the DSM's typed-access
// unit), which is finer than the page-and-range granularity the reports
// aggregate to: each reported race names the block and both accesses, and
// coalesces all further conflicts of the same (block, node pair, kind).
package check

import (
	"fmt"
	"sort"
	"sync"

	"filaments/internal/dsm"
	"filaments/internal/kernel"
)

// vclock is a fixed-width vector clock, one component per node.
type vclock []uint64

func (v vclock) clone() vclock {
	c := make(vclock, len(v))
	copy(c, v)
	return c
}

// join folds other into v component-wise (max).
func (v vclock) join(other vclock) {
	for i, o := range other {
		if o > v[i] {
			v[i] = o
		}
	}
}

// Access describes one side of a reported race.
type Access struct {
	Node  int
	Write bool
	Time  kernel.Time
	// Label is the fork/join filament the access ran in ("" when it ran
	// outside any labelled filament, e.g. on a pool or the main thread).
	Label string
}

func (a Access) kind() string {
	if a.Write {
		return "write"
	}
	return "read"
}

func (a Access) String() string {
	s := fmt.Sprintf("%s by node %d at t=%v", a.kind(), a.Node, a.Time)
	if a.Label != "" {
		s += " in " + a.Label
	}
	return s
}

// Race is one detected happens-before violation. Further conflicts on the
// same (block, node pair, access kinds) are coalesced into Count.
type Race struct {
	Addr          dsm.Addr // first conflicting word
	Page          int
	Block         int
	First, Second Access
	Count         int // conflicting word pairs coalesced into this report
}

func (r Race) String() string {
	return fmt.Sprintf("race on addr %#x (page %d, block %d): %s is concurrent with %s (%d word pair(s) on this block)",
		int64(r.Addr), r.Page, r.Block, r.First, r.Second, r.Count)
}

// Violation is an access outside every range its node declared with
// NoteRead/NoteWrite (or its filament's registered range describer) for
// the current barrier phase.
type Violation struct {
	Addr dsm.Addr
	Acc  Access
}

func (v Violation) String() string {
	return fmt.Sprintf("undeclared %s of addr %#x (node %d, t=%v, label %q)",
		v.Acc.kind(), int64(v.Addr), v.Acc.Node, v.Acc.Time, v.Acc.Label)
}

// EpochDigest is the content digest of every block at one quiescent
// barrier epoch.
type EpochDigest struct {
	Epoch   int64
	Digests []uint64
	// Unflushed counts blocks still carrying multi-writer state (dirty
	// lists, live twins) at the quiescent instant. The release-consistency
	// oracle requires zero: every interval's diffs must have reached their
	// homes before the fold. Always zero under single-writer protocols.
	Unflushed int
}

// Report is the checker's accumulated findings after a run.
type Report struct {
	Races      []Race
	Violations []Violation
	// Epochs holds per-epoch block digests (Config.CollectDigests).
	Epochs []EpochDigest
	// Accesses is the number of typed accesses observed.
	Accesses int64
	// Notes is the number of declared ranges observed.
	Notes int64
}

// Config parameterizes a Checker.
type Config struct {
	// CollectDigests snapshots every block's digest at each quiescent
	// epoch, for the sequential-consistency oracle. Simulation binding
	// only: under the UDP binding the digest would race with the owner.
	CollectDigests bool
	// CheckDeclared enforces that, once a node has declared any range for
	// the current barrier phase, all its accesses of that kind fall inside
	// a declared range.
	CheckDeclared bool
	// MaxReports caps the race and violation lists (default 100 each).
	MaxReports int
}

// Checker implements dsm.Monitor. Install it with filaments.Config.Monitor
// (or an app Config's Monitor field) before the run, then read Report
// after. It is internally locked, so it works under both bindings.
type Checker struct {
	cfg Config

	mu    sync.Mutex
	space *dsm.Space
	n     int

	clocks []vclock // one per node; component [i][i] starts at 1

	transfers map[transferKey][]vclock
	flushes   map[transferKey][]vclock
	tasks     map[taskKey][]vclock
	results   map[dsm.TaskKey][]vclock
	epochs    map[int64]*epochState

	cells map[dsm.Addr]*cell

	frames   [][]frame   // per-node filament frame stack
	declared []phaseDecl // per-node declared ranges for the current phase

	raceKeys map[raceKey]int // index into report.Races
	report   Report
}

type transferKey struct {
	from, to kernel.NodeID
	block    int
}

type taskKey struct {
	k    dsm.TaskKey
	from kernel.NodeID
}

type epochState struct {
	arrive   vclock
	released int
}

// cell is the happens-before state of one 8-byte word: the last write
// epoch and, per node, the last read epoch (FastTrack-style, but keeping
// the full read vector since reads are checked against writes only).
type cell struct {
	wNode  int
	wClock uint64 // writer's own component at the write; 0 = never written
	wAcc   Access
	rClock []uint64 // per-node own-component at last read; 0 = never
	rAcc   []Access
}

type frame struct {
	label  string
	reads  []dsm.Range
	writes []dsm.Range
}

type phaseDecl struct {
	reads  []dsm.Range
	writes []dsm.Range
}

type raceKey struct {
	block          int
	nodeA, nodeB   int
	writeA, writeB bool
}

// New creates a Checker.
func New(cfg Config) *Checker {
	if cfg.MaxReports == 0 {
		cfg.MaxReports = 100
	}
	return &Checker{
		cfg:       cfg,
		transfers: make(map[transferKey][]vclock),
		flushes:   make(map[transferKey][]vclock),
		tasks:     make(map[taskKey][]vclock),
		results:   make(map[dsm.TaskKey][]vclock),
		epochs:    make(map[int64]*epochState),
		cells:     make(map[dsm.Addr]*cell),
		raceKeys:  make(map[raceKey]int),
	}
}

// Report returns the findings. Call after the run completes.
func (c *Checker) Report() *Report {
	c.mu.Lock()
	defer c.mu.Unlock()
	r := c.report
	sort.Slice(r.Epochs, func(i, j int) bool { return r.Epochs[i].Epoch < r.Epochs[j].Epoch })
	return &r
}

// OnAttach sizes the per-node state lazily: the space knows its node count
// only once every DSM is constructed, so the real sizing happens on the
// first callback.
func (c *Checker) OnAttach(s *dsm.Space) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.space = s
}

// ensure sizes per-node state once the cluster size is known.
func (c *Checker) ensure() {
	if c.n != 0 {
		return
	}
	c.n = c.space.Nodes()
	if c.n == 0 {
		c.n = 1
	}
	c.clocks = make([]vclock, c.n)
	for i := range c.clocks {
		c.clocks[i] = make(vclock, c.n)
		c.clocks[i][i] = 1
	}
	c.frames = make([][]frame, c.n)
	c.declared = make([]phaseDecl, c.n)
}

// tick advances a node's own component after it attaches its clock to an
// outgoing edge, so later events are distinguishable from the edge.
func (c *Checker) tick(node kernel.NodeID) {
	c.clocks[node][node]++
}

func (c *Checker) label(node kernel.NodeID) string {
	st := c.frames[node]
	if len(st) == 0 {
		return ""
	}
	return st[len(st)-1].label
}

// OnAccess runs the race check for one typed access.
func (c *Checker) OnAccess(node kernel.NodeID, a dsm.Addr, size int, write bool, now kernel.Time) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.ensure()
	c.report.Accesses++
	acc := Access{Node: int(node), Write: write, Time: now, Label: c.label(node)}
	word := a &^ 7
	cl := c.cells[word]
	if cl == nil {
		cl = &cell{wNode: -1, rClock: make([]uint64, c.n), rAcc: make([]Access, c.n)}
		c.cells[word] = cl
	}
	me := int(node)
	vc := c.clocks[node]
	if write {
		// Write-write and write-after-read conflicts.
		if cl.wClock != 0 && cl.wNode != me && cl.wClock > vc[cl.wNode] {
			c.race(word, cl.wAcc, acc)
		}
		for rn := 0; rn < c.n; rn++ {
			if rn != me && cl.rClock[rn] != 0 && cl.rClock[rn] > vc[rn] {
				c.race(word, cl.rAcc[rn], acc)
			}
		}
		cl.wNode = me
		cl.wClock = vc[me]
		cl.wAcc = acc
	} else {
		// Read-after-write conflict.
		if cl.wClock != 0 && cl.wNode != me && cl.wClock > vc[cl.wNode] {
			c.race(word, cl.wAcc, acc)
		}
		cl.rClock[me] = vc[me]
		cl.rAcc[me] = acc
	}
	if c.cfg.CheckDeclared {
		c.checkDeclared(node, a, write, acc)
	}
}

// race records a conflict, coalescing repeats on the same block/pair/kind.
func (c *Checker) race(word dsm.Addr, first, second Access) {
	b := c.space.BlockOf(word)
	key := raceKey{block: b, nodeA: first.Node, nodeB: second.Node, writeA: first.Write, writeB: second.Write}
	if i, ok := c.raceKeys[key]; ok {
		c.report.Races[i].Count++
		return
	}
	if len(c.report.Races) >= c.cfg.MaxReports {
		return
	}
	c.raceKeys[key] = len(c.report.Races)
	c.report.Races = append(c.report.Races, Race{
		Addr:   word,
		Page:   dsm.PageOf(word),
		Block:  b,
		First:  first,
		Second: second,
		Count:  1,
	})
}

// checkDeclared reports accesses outside every declared range of the
// matching kind. A write must fall in a declared write range; a read may
// fall in a declared read or write range. Enforcement is armed per node
// and kind only once the node declares at least one range this phase, so
// undeclared programs (and phases) are not flagged.
func (c *Checker) checkDeclared(node kernel.NodeID, a dsm.Addr, write bool, acc Access) {
	covered, armed := false, false
	scan := func(reads, writes []dsm.Range) {
		if write {
			armed = armed || len(writes) > 0
			for _, r := range writes {
				if r.Contains(a) {
					covered = true
				}
			}
			return
		}
		armed = armed || len(reads) > 0 || len(writes) > 0
		for _, r := range reads {
			if r.Contains(a) {
				covered = true
			}
		}
		for _, r := range writes {
			if r.Contains(a) {
				covered = true
			}
		}
	}
	d := &c.declared[node]
	scan(d.reads, d.writes)
	for _, f := range c.frames[node] {
		scan(f.reads, f.writes)
	}
	if armed && !covered && len(c.report.Violations) < c.cfg.MaxReports {
		c.report.Violations = append(c.report.Violations, Violation{Addr: a, Acc: acc})
	}
}

// OnNote records a declared range for the node's current phase.
func (c *Checker) OnNote(node kernel.NodeID, r dsm.Range, write bool, now kernel.Time) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.ensure()
	c.report.Notes++
	d := &c.declared[node]
	if write {
		d.writes = append(d.writes, r)
	} else {
		d.reads = append(d.reads, r)
	}
}

// OnPageServe pushes the server's clock on ownership grants.
func (c *Checker) OnPageServe(from, to kernel.NodeID, b int, grantOwner bool, now kernel.Time) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.ensure()
	if !grantOwner {
		return
	}
	k := transferKey{from: from, to: to, block: b}
	c.transfers[k] = append(c.transfers[k], c.clocks[from].clone())
	c.tick(from)
}

// OnPageInstall joins the granting owner's clock into the receiver.
func (c *Checker) OnPageInstall(node, from kernel.NodeID, b int, grantOwner bool, now kernel.Time) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.ensure()
	if !grantOwner {
		return
	}
	k := transferKey{from: from, to: node, block: b}
	if q := c.transfers[k]; len(q) > 0 {
		c.clocks[node].join(q[0])
		c.transfers[k] = q[1:]
	}
}

// OnDiffFlush pushes the flushing writer's clock for the home's merge.
func (c *Checker) OnDiffFlush(from, to kernel.NodeID, b int, now kernel.Time) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.ensure()
	k := transferKey{from: from, to: to, block: b}
	c.flushes[k] = append(c.flushes[k], c.clocks[from].clone())
	c.tick(from)
}

// OnDiffMerge joins the flushing writer's clock into the home node.
func (c *Checker) OnDiffMerge(node, from kernel.NodeID, b int, now kernel.Time) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.ensure()
	k := transferKey{from: from, to: node, block: b}
	if q := c.flushes[k]; len(q) > 0 {
		c.clocks[node].join(q[0])
		c.flushes[k] = q[1:]
	}
}

// OnBarrierArrive folds the node's clock into the epoch and ticks it.
func (c *Checker) OnBarrierArrive(node kernel.NodeID, epoch int64, now kernel.Time) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.ensure()
	e := c.epochs[epoch]
	if e == nil {
		e = &epochState{arrive: make(vclock, c.n)}
		c.epochs[epoch] = e
	}
	e.arrive.join(c.clocks[node])
	c.tick(node)
}

// OnBarrierRelease joins the epoch's accumulated arrivals into the node:
// the release only happens after every node arrived, so by now the epoch
// clock dominates all pre-barrier events, and the node also starts a fresh
// declared-range phase.
func (c *Checker) OnBarrierRelease(node kernel.NodeID, epoch int64, now kernel.Time) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.ensure()
	if e := c.epochs[epoch]; e != nil {
		c.clocks[node].join(e.arrive)
		e.released++
		if e.released == c.n {
			delete(c.epochs, epoch)
		}
	}
	c.declared[node] = phaseDecl{}
}

// OnEpochQuiesced snapshots every block's digest at the fold's globally
// quiescent instant.
func (c *Checker) OnEpochQuiesced(node kernel.NodeID, epoch int64, now kernel.Time) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.ensure()
	if !c.cfg.CollectDigests {
		return
	}
	nb := c.space.Blocks()
	ed := EpochDigest{Epoch: epoch, Digests: make([]uint64, nb), Unflushed: c.space.UnflushedDirty()}
	for b := 0; b < nb; b++ {
		ed.Digests[b], _ = c.space.BlockDigest(b)
	}
	c.report.Epochs = append(c.report.Epochs, ed)
}

// OnTaskShip pushes the sender's clock for a fork or granted steal.
func (c *Checker) OnTaskShip(from, to kernel.NodeID, k dsm.TaskKey, now kernel.Time) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.ensure()
	tk := taskKey{k: k, from: from}
	c.tasks[tk] = append(c.tasks[tk], c.clocks[from].clone())
	c.tick(from)
}

// OnTaskStart joins the shipper's clock into the executing node.
func (c *Checker) OnTaskStart(node kernel.NodeID, k dsm.TaskKey, now kernel.Time) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.ensure()
	// The start does not know which node shipped the task (a steal may
	// re-route it), so join every pending shipment of this key: joining
	// more than the true sender only strengthens ordering.
	for from := 0; from < c.n; from++ {
		tk := taskKey{k: k, from: kernel.NodeID(from)}
		if q := c.tasks[tk]; len(q) > 0 {
			c.clocks[node].join(q[0])
			c.tasks[tk] = q[1:]
		}
	}
}

// OnResultShip pushes the executing node's clock for a remote result.
func (c *Checker) OnResultShip(from, to kernel.NodeID, k dsm.TaskKey, now kernel.Time) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.ensure()
	c.results[k] = append(c.results[k], c.clocks[from].clone())
	c.tick(from)
}

// OnResultDeliver joins the executor's clock into the join's origin node.
func (c *Checker) OnResultDeliver(node kernel.NodeID, k dsm.TaskKey, now kernel.Time) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.ensure()
	if q := c.results[k]; len(q) > 0 {
		c.clocks[node].join(q[0])
		c.results[k] = q[1:]
	}
}

// OnFilamentBegin pushes a frame carrying the describer's declared ranges.
func (c *Checker) OnFilamentBegin(node kernel.NodeID, label string, reads, writes []dsm.Range, now kernel.Time) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.ensure()
	c.frames[node] = append(c.frames[node], frame{label: label, reads: reads, writes: writes})
}

// OnFilamentEnd pops the node's frame stack.
func (c *Checker) OnFilamentEnd(node kernel.NodeID, now kernel.Time) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.ensure()
	if st := c.frames[node]; len(st) > 0 {
		c.frames[node] = st[:len(st)-1]
	}
}

var _ dsm.Monitor = (*Checker)(nil)
