package check

import (
	"strings"
	"testing"

	"filaments"
	"filaments/internal/dsm"
	"filaments/internal/kernel"
)

// synthetic drives the Checker directly, without a cluster, to pin the
// happens-before algebra down hermetically.
type synthetic struct {
	t     *testing.T
	c     *Checker
	space *dsm.Space
}

func newSynthetic(t *testing.T, nodes int) *synthetic {
	t.Helper()
	// Attach via a tiny simulated cluster so Space.Nodes() reports the
	// cluster size (a bare NewSpace has no DSMs yet).
	c := filaments.New(filaments.Config{Nodes: nodes, Seed: 1})
	chk := New(Config{})
	c.Space().SetMonitor(chk)
	return &synthetic{t: t, c: chk, space: c.Space()}
}

func (s *synthetic) access(node, addr int, write bool) {
	s.c.OnAccess(kernel.NodeID(node), dsm.Addr(addr), 8, write, 0)
}

func (s *synthetic) barrier(epoch int64, nodes ...int) {
	for _, n := range nodes {
		s.c.OnBarrierArrive(kernel.NodeID(n), epoch, 0)
	}
	for _, n := range nodes {
		s.c.OnBarrierRelease(kernel.NodeID(n), epoch, 0)
	}
}

func (s *synthetic) races() []Race { return s.c.Report().Races }

func TestUnsynchronizedWriteReadRaces(t *testing.T) {
	s := newSynthetic(t, 2)
	s.access(0, 0, true)
	s.access(1, 0, false)
	races := s.races()
	if len(races) != 1 {
		t.Fatalf("want 1 race, got %v", races)
	}
	r := races[0]
	if r.First.Node != 0 || !r.First.Write || r.Second.Node != 1 || r.Second.Write {
		t.Fatalf("race does not name both accesses correctly: %v", r)
	}
	if !strings.Contains(r.String(), "write by node 0") || !strings.Contains(r.String(), "read by node 1") {
		t.Fatalf("report should name both accesses: %s", r)
	}
}

func TestBarrierOrdersAccesses(t *testing.T) {
	s := newSynthetic(t, 2)
	s.access(0, 0, true)
	s.barrier(1, 0, 1)
	s.access(1, 0, false)
	s.access(1, 8, true)
	s.barrier(2, 0, 1)
	s.access(0, 8, false)
	if races := s.races(); len(races) != 0 {
		t.Fatalf("barrier-separated accesses must not race: %v", races)
	}
}

func TestWriteAfterUnsynchronizedReadRaces(t *testing.T) {
	s := newSynthetic(t, 2)
	s.barrier(1, 0, 1)
	s.access(1, 0, false)
	s.access(0, 0, true)
	races := s.races()
	if len(races) != 1 {
		t.Fatalf("want 1 write-after-read race, got %v", races)
	}
	if races[0].First.Write || !races[0].Second.Write {
		t.Fatalf("want read-then-write pair, got %v", races[0])
	}
}

func TestOwnershipTransferOrdersAccesses(t *testing.T) {
	s := newSynthetic(t, 2)
	b := s.space.BlockOf(0)
	s.access(0, 0, true)
	s.c.OnPageServe(0, 1, b, true, 0)
	s.c.OnPageInstall(1, 0, b, true, 0)
	s.access(1, 0, true)
	if races := s.races(); len(races) != 0 {
		t.Fatalf("ownership transfer must order the writes: %v", races)
	}
}

func TestReadCopyGrantIsNotAnEdge(t *testing.T) {
	s := newSynthetic(t, 2)
	b := s.space.BlockOf(0)
	s.access(0, 0, true)
	s.c.OnPageServe(0, 1, b, false, 0) // read-only copy
	s.c.OnPageInstall(1, 0, b, false, 0)
	s.access(1, 0, false)
	if races := s.races(); len(races) != 1 {
		t.Fatalf("a read-copy grant must not hide the race: %v", races)
	}
}

func TestTaskAndResultEdges(t *testing.T) {
	s := newSynthetic(t, 2)
	k := dsm.TaskKey{Origin: 0, Join: 1, Fn: 1, Sum: 42}
	s.access(0, 0, true) // parent writes inputs
	s.c.OnTaskShip(0, 1, k, 0)
	s.c.OnTaskStart(1, k, 0)
	s.access(1, 0, false) // child reads inputs
	s.access(1, 8, true)  // child writes result slot
	s.c.OnResultShip(1, 0, k, 0)
	s.c.OnResultDeliver(0, k, 0)
	s.access(0, 8, false) // parent reads result slot after join
	if races := s.races(); len(races) != 0 {
		t.Fatalf("fork and result edges must order parent and child: %v", races)
	}
}

func TestRaceCoalescing(t *testing.T) {
	s := newSynthetic(t, 2)
	for a := 0; a < 80; a += 8 {
		s.access(0, a, true)
	}
	for a := 0; a < 80; a += 8 {
		s.access(1, a, false)
	}
	races := s.races()
	if len(races) != 1 {
		t.Fatalf("same-block same-pair races must coalesce: %v", races)
	}
	if races[0].Count != 10 {
		t.Fatalf("want 10 coalesced word pairs, got %d", races[0].Count)
	}
}

func TestDeclaredRangeViolation(t *testing.T) {
	cl := filaments.New(filaments.Config{Nodes: 2, Seed: 1})
	chk := New(Config{CheckDeclared: true})
	cl.Space().SetMonitor(chk)
	chk.OnNote(0, dsm.Range{Lo: 0, Hi: 64}, true, 0)
	chk.OnAccess(0, 8, 8, true, 0)   // inside: fine
	chk.OnAccess(0, 128, 8, true, 0) // outside every declared range
	chk.OnAccess(1, 128, 8, true, 0) // node 1 declared nothing: not armed
	rep := chk.Report()
	if len(rep.Violations) != 1 || rep.Violations[0].Addr != 128 || rep.Violations[0].Acc.Node != 0 {
		t.Fatalf("want exactly one undeclared-access violation for node 0 addr 128, got %v", rep.Violations)
	}
}

// TestShippedAppsCleanAndSequentiallyConsistent is the tentpole
// acceptance check: all four shipped apps, all three protocols, Mirage
// window on and off, must be race-free, annotation-clean, and
// bitwise-equal to their single-node runs at every quiescent epoch.
func TestShippedAppsCleanAndSequentiallyConsistent(t *testing.T) {
	for _, app := range Apps() {
		app := app
		t.Run(app.Name, func(t *testing.T) {
			results := Sweep(app, 4)
			// All three protocols, window on and off where terminable:
			// 3 on-legs always, off-legs per MirageOffSafe.
			if len(results) < 4 {
				t.Fatalf("sweep ran only %d configurations", len(results))
			}
			for _, res := range results {
				name := res.Protocol.String() + "/mirage=" + map[bool]string{true: "on", false: "off"}[res.Mirage]
				if res.Err != nil {
					t.Errorf("%s: oracle structure: %v", name, res.Err)
					continue
				}
				for _, r := range res.Parallel.Races {
					t.Errorf("%s: race: %s", name, r)
				}
				for _, v := range res.Parallel.Violations {
					t.Errorf("%s: violation: %s", name, v)
				}
				for _, m := range res.Mismatches {
					t.Errorf("%s: oracle: %s", name, m)
				}
				if app.UsesDSM && res.Epochs == 0 {
					t.Errorf("%s: oracle compared no epochs for a DSM app", name)
				}
				if res.Parallel.Accesses == 0 && app.UsesDSM {
					t.Errorf("%s: checker observed no accesses", name)
				}
			}
		})
	}
}

// TestRacerDetected is the seeded-race acceptance check: the checker must
// report the race and name both accesses.
func TestRacerDetected(t *testing.T) {
	res := CheckApp(Racer(), 2, filaments.WriteInvalidate, true)
	if res.Err != nil {
		t.Fatalf("oracle structure: %v", res.Err)
	}
	if len(res.Parallel.Races) == 0 {
		t.Fatalf("the seeded race must be detected")
	}
	r := res.Parallel.Races[0]
	if r.First.Node == r.Second.Node {
		t.Fatalf("race must involve two nodes: %v", r)
	}
	msg := r.String()
	if !strings.Contains(msg, "node 0") || !strings.Contains(msg, "node 1") {
		t.Fatalf("report must name both accesses: %s", msg)
	}
}

// TestOverlapWritersDetectedUnderLRC is the release-consistency seeded-
// race check: two nodes write the same words in one interval, which lazy
// release consistency resolves by merge order (a lost update). The
// flush→merge edges fire at barrier time, after both interval writes, so
// they must not mask the write/write race.
func TestOverlapWritersDetectedUnderLRC(t *testing.T) {
	res := CheckApp(RacerOverlap(), 2, filaments.LazyRelease, true)
	if res.Err != nil {
		t.Fatalf("oracle structure: %v", res.Err)
	}
	if res.Model != ReleaseConsistency {
		t.Fatalf("LazyRelease must map to the release-consistency model, got %v", res.Model)
	}
	if len(res.Parallel.Races) == 0 {
		t.Fatalf("the overlapping writers must be detected under lazy release consistency")
	}
	r := res.Parallel.Races[0]
	if !r.First.Write || !r.Second.Write {
		t.Fatalf("want a write/write pair, got %v", r)
	}
	if r.First.Node == r.Second.Node {
		t.Fatalf("race must involve two nodes: %v", r)
	}
}

// TestLRCCleanAppsReportModel pins ModelOf's mapping.
func TestLRCCleanAppsReportModel(t *testing.T) {
	for _, proto := range []filaments.Protocol{
		filaments.Migratory, filaments.WriteInvalidate, filaments.ImplicitInvalidate,
	} {
		if ModelOf(proto) != SequentialConsistency {
			t.Fatalf("%v must be sequentially consistent", proto)
		}
	}
	if ModelOf(filaments.LazyRelease) != ReleaseConsistency {
		t.Fatalf("LazyRelease must be release-consistent")
	}
}

// TestCentralBarrierQuiesces checks the oracle also works under the
// centralized barrier (the champion fold is global there too).
func TestCentralBarrierQuiesces(t *testing.T) {
	chk := New(Config{CollectDigests: true})
	cl := filaments.New(filaments.Config{Nodes: 3, Seed: 1, CentralBarrier: true, Monitor: chk})
	a := cl.Alloc(8 * 8)
	_, err := cl.Run(func(rt *filaments.Runtime, e *filaments.Exec) {
		if rt.ID() == 0 {
			e.WriteF64(a, 7)
		}
		e.Barrier()
		_ = e.ReadF64(a)
		e.Barrier()
	})
	if err != nil {
		t.Fatal(err)
	}
	rep := chk.Report()
	if len(rep.Epochs) != 2 {
		t.Fatalf("want 2 quiescent epochs under the central barrier, got %d", len(rep.Epochs))
	}
	if len(rep.Races) != 0 {
		t.Fatalf("unexpected races: %v", rep.Races)
	}
}

// TestDisseminationHasNoQuiescentEpochs documents why the oracle does not
// support the dissemination barrier: no node ever holds the global fold.
func TestDisseminationHasNoQuiescentEpochs(t *testing.T) {
	chk := New(Config{CollectDigests: true})
	cl := filaments.New(filaments.Config{Nodes: 4, Seed: 1, DisseminationBarrier: true, Monitor: chk})
	_, err := cl.Run(func(rt *filaments.Runtime, e *filaments.Exec) {
		e.Barrier()
	})
	if err != nil {
		t.Fatal(err)
	}
	if n := len(chk.Report().Epochs); n != 0 {
		t.Fatalf("dissemination barrier must yield no quiescent epochs, got %d", n)
	}
}
