package check

import (
	"filaments"
	"filaments/internal/apps/exprtree"
	"filaments/internal/apps/fft"
	"filaments/internal/apps/jacobi"
	"filaments/internal/apps/matmul"
	"filaments/internal/apps/mergesort"
	"filaments/internal/apps/quadrature"
	"filaments/internal/apps/racer"
)

// Apps returns the four shipped applications wired to small checkable
// problem sizes. The checker observes every typed access, so dfcheck
// trades scale for exhaustive coverage; the DF programs themselves are
// the shipped ones, unchanged.
func Apps() []App {
	// The grid/matrix sizes are chosen so that, on power-of-two clusters,
	// each node's write strip covers whole pages (64 rows × 64 cols × 8 B
	// = 8 rows per 4 KB page): write false sharing would otherwise
	// livelock the window-off legs of the sweep (see App.MirageOffSafe).
	alignedWrites := func(nodes int) bool {
		return nodes > 0 && 64%nodes == 0 && (64/nodes)%8 == 0
	}
	// Read-sharing under migratory thrashes without the window (reads
	// take the page away); replicated read-only copies under the other
	// two protocols do not. Lazy release consistency is always safe:
	// ownership never moves (home-based), so there is nothing to thrash,
	// and misaligned write strips just become concurrent twinned writers.
	invalidateSafe := func(proto filaments.Protocol, nodes int) bool {
		if proto == filaments.LazyRelease {
			return true
		}
		return proto != filaments.Migratory && alignedWrites(nodes)
	}
	return []App{
		{Name: "jacobi", UsesDSM: true, MirageOffSafe: invalidateSafe, Run: func(c AppConfig) {
			cfg := jacobi.Config{
				N: 64, Iters: 3,
				Nodes: c.Nodes, Seed: 1,
				Monitor: c.Monitor, MirageWindow: c.MirageWindow,
			}
			// The app's Protocol zero value means "app default"; the only
			// way to ask for migratory is the explicit flag.
			if c.Protocol == filaments.Migratory {
				cfg.UseMigratory = true
			} else {
				cfg.Protocol = c.Protocol
			}
			jacobi.DF(cfg)
		}},
		{Name: "matmul", UsesDSM: true, MirageOffSafe: invalidateSafe, Run: func(c AppConfig) {
			cfg := matmul.Config{
				N:     64,
				Nodes: c.Nodes, Seed: 1,
				Monitor: c.Monitor, MirageWindow: c.MirageWindow,
			}
			if c.Protocol == filaments.Migratory {
				cfg.UseMigratory = true
			} else {
				cfg.Protocol = c.Protocol
			}
			matmul.DF(cfg)
		}},
		{Name: "fft", UsesDSM: true,
			// Migratory thrashes without the window: the bit-reversal phase
			// has every node reading the whole transform array, and each
			// read tears the page away from the previous reader.
			MirageOffSafe: func(proto filaments.Protocol, nodes int) bool {
				return proto != filaments.Migratory
			},
			Run: func(c AppConfig) {
				// Leaf 512 = exactly one 4 KB page, so leaf transforms and
				// bit-reversal strips are single-writer-per-page under the
				// invalidate protocols.
				cfg := fft.Config{
					N: 2048, Leaf: 512,
					Nodes: c.Nodes, Seed: 1,
					Monitor: c.Monitor, MirageWindow: c.MirageWindow,
				}
				if c.Protocol == filaments.Migratory {
					cfg.UseMigratory = true
				} else {
					cfg.Protocol = c.Protocol
				}
				fft.DF(cfg)
			}},
		{Name: "mergesort", UsesDSM: true, Run: func(c AppConfig) {
			mergesort.DF(mergesort.Config{
				N: 2048, Leaf: 512,
				Nodes: c.Nodes, Seed: 1,
				Stealing: true,
				Protocol: c.Protocol, // zero value is migratory, the app default
				Monitor:  c.Monitor, MirageWindow: c.MirageWindow,
			})
		}},
		{Name: "exprtree", UsesDSM: true, Run: func(c AppConfig) {
			exprtree.DF(exprtree.Config{
				Height: 3, N: 8,
				Nodes: c.Nodes, Seed: 1,
				Stealing: true,
				Protocol: c.Protocol, // zero value is migratory, the app default
				Monitor:  c.Monitor, MirageWindow: c.MirageWindow,
			})
		}},
		{Name: "quadrature", UsesDSM: false, Run: func(c AppConfig) {
			quadrature.DF(quadrature.Config{
				Tol: 5e-3, MaxDepth: 10,
				Nodes: c.Nodes, Seed: 1,
				Protocol: c.Protocol,
				Monitor:  c.Monitor, MirageWindow: c.MirageWindow,
			})
		}},
	}
}

// Racer returns the seeded-race application: CheckApp on it must report
// races (under write-invalidate or implicit-invalidate), which is
// cmd/dfcheck's self-test.
func Racer() App {
	return App{Name: "racer", UsesDSM: true, Run: func(c AppConfig) {
		racer.DF(racer.Config{
			Nodes: c.Nodes, Seed: 1,
			Protocol: c.Protocol,
			Monitor:  c.Monitor, MirageWindow: c.MirageWindow,
		})
	}}
}

// RacerOverlap returns the write/write variant of the racer: two nodes
// write every word of the same array in one interval. Lazy release
// consistency merges both writers' diffs at the home (last merge wins per
// word — a lost update), so the checker must flag it even though no
// single-writer page traffic orders the writes.
func RacerOverlap() App {
	return App{Name: "racer-overlap", UsesDSM: true, Run: func(c AppConfig) {
		racer.DF(racer.Config{
			Nodes: c.Nodes, Seed: 1,
			OverlapWriters: true,
			Protocol:       c.Protocol,
			Monitor:        c.Monitor, MirageWindow: c.MirageWindow,
		})
	}}
}

// AppByName finds a shipped app (or the racer) by name.
func AppByName(name string) (App, bool) {
	if name == "racer" {
		return Racer(), true
	}
	if name == "racer-overlap" {
		return RacerOverlap(), true
	}
	for _, a := range Apps() {
		if a.Name == name {
			return a, true
		}
	}
	return App{}, false
}
