package check

import (
	"fmt"

	"filaments"
)

// This file is the sequential-consistency oracle: it runs an app's DF
// program twice in the simulator — once on p nodes, once on one node —
// with digest collection on, and asserts the shared pages are bitwise
// equal at every quiescent barrier epoch. The comparison is meaningful
// because the allocator's block layout is node-count-invariant (Alloc
// advances the brk identically regardless of ownership, and striping only
// changes owners), and because OnEpochQuiesced fires at the reduction
// fold, when every node has arrived and no node has resumed, so exactly
// one owner holds each block.
//
// The tournament and centralized barriers both have that global instant;
// the dissemination barrier does not (no node ever holds the whole fold),
// so the oracle reports zero comparable epochs there and the caller must
// treat Dissemination as unsupported.
//
// The oracle generalizes across memory models. Under the single-writer
// protocols (sequential consistency) the digests are valid because exactly
// one owner holds each block. Under lazy release consistency (a release-
// consistency model) the home never loses ownership, every writer flushes
// its interval diffs before arriving, and the reducer's Quiesce covers the
// flush acks — so at the fold the home frames hold every merge and the
// same digest comparison applies. The RC oracle additionally asserts that
// no unflushed multi-writer state (dirty lists, twins) survives into the
// quiescent instant: see EpochDigest.Unflushed.

// Model is the memory model a protocol promises, which picks the oracle
// variant CheckApp runs.
type Model int

const (
	// SequentialConsistency: single-writer protocols — one owner per
	// block, every access sees the latest write.
	SequentialConsistency Model = iota
	// ReleaseConsistency: writes are only guaranteed visible at the next
	// synchronization point; correct for data-race-free barrier programs.
	ReleaseConsistency
)

func (m Model) String() string {
	if m == ReleaseConsistency {
		return "release-consistency"
	}
	return "sequential-consistency"
}

// ModelOf maps a protocol to the memory model it implements.
func ModelOf(p filaments.Protocol) Model {
	if p == filaments.LazyRelease {
		return ReleaseConsistency
	}
	return SequentialConsistency
}

// Mismatch is one block whose content differs between the parallel and
// sequential runs at a quiescent epoch.
type Mismatch struct {
	Epoch int64
	Block int
	Par   uint64
	Seq   uint64
}

func (m Mismatch) String() string {
	return fmt.Sprintf("epoch %d block %d: parallel digest %#x != sequential digest %#x",
		m.Epoch, m.Block, m.Par, m.Seq)
}

// CompareEpochs diffs two runs' per-epoch digests. It returns the
// mismatches, the number of epochs compared, and an error if the epoch
// sequences themselves disagree (different barrier structure).
func CompareEpochs(par, seq []EpochDigest) ([]Mismatch, int, error) {
	if len(par) != len(seq) {
		return nil, 0, fmt.Errorf("check: %d quiescent epochs in parallel run, %d in sequential run", len(par), len(seq))
	}
	var out []Mismatch
	for i := range par {
		if par[i].Epoch != seq[i].Epoch {
			return nil, 0, fmt.Errorf("check: epoch sequence diverges at %d: %d vs %d", i, par[i].Epoch, seq[i].Epoch)
		}
		if len(par[i].Digests) != len(seq[i].Digests) {
			return nil, 0, fmt.Errorf("check: epoch %d: %d blocks in parallel run, %d in sequential run",
				par[i].Epoch, len(par[i].Digests), len(seq[i].Digests))
		}
		for b := range par[i].Digests {
			if par[i].Digests[b] != seq[i].Digests[b] {
				out = append(out, Mismatch{Epoch: par[i].Epoch, Block: b, Par: par[i].Digests[b], Seq: seq[i].Digests[b]})
			}
		}
	}
	return out, len(par), nil
}

// AppConfig parameterizes one checked app run.
type AppConfig struct {
	Nodes    int
	Protocol filaments.Protocol
	// MirageWindow: 0 keeps the model default, negative disables it.
	MirageWindow filaments.Duration
	Monitor      filaments.Monitor
}

// An App is a checkable application: Run executes its DF program in the
// simulator under the given configuration. The shipped apps use small
// problem sizes here — the checker observes every access, so dfcheck
// trades scale for full coverage.
type App struct {
	Name string
	// UsesDSM is false for programs that never touch shared memory
	// (quadrature); the oracle still compares their (empty) digests.
	UsesDSM bool
	// MirageOffSafe reports whether the app terminates on this cluster
	// size under proto with the Mirage anti-thrashing window disabled.
	// With the window off, migratory read-sharing (and any write false
	// sharing, e.g. strips that don't align to page boundaries) hands the
	// page back and forth forever before the woken thread can touch it —
	// the livelock the window exists to prevent — so those legs of the
	// sweep are skipped by design, not by oversight. nil means always
	// safe.
	MirageOffSafe func(proto filaments.Protocol, nodes int) bool
	Run           func(cfg AppConfig)
}

// Result is the outcome of checking one app under one configuration.
type Result struct {
	App      string
	Nodes    int
	Protocol filaments.Protocol
	Model    Model
	Mirage   bool
	// Parallel is the p-node run's report.
	Parallel *Report
	// Epochs is how many quiescent epochs the oracle compared.
	Epochs int
	// Mismatches are oracle failures (parallel vs sequential digests).
	Mismatches []Mismatch
	// Err reports structural oracle failures (epoch sequences diverged).
	Err error
}

// Ok reports whether the run was race-free and oracle-clean.
func (r *Result) Ok() bool {
	return r.Err == nil && len(r.Mismatches) == 0 &&
		len(r.Parallel.Races) == 0 && len(r.Parallel.Violations) == 0
}

// Sweep checks app on nodes under every protocol, with the Mirage window
// on and (where the app declares it safe — see App.MirageOffSafe) off.
func Sweep(app App, nodes int) []*Result {
	var out []*Result
	for _, proto := range []filaments.Protocol{
		filaments.Migratory, filaments.WriteInvalidate, filaments.ImplicitInvalidate,
		filaments.LazyRelease,
	} {
		for _, mirage := range []bool{true, false} {
			if !mirage && app.MirageOffSafe != nil && !app.MirageOffSafe(proto, nodes) {
				continue
			}
			out = append(out, CheckApp(app, nodes, proto, mirage))
		}
	}
	return out
}

// CheckApp runs app on nodes under proto (with the Mirage window on or
// off), with the happens-before checker attached, then replays it on a
// single node and compares per-epoch digests.
func CheckApp(app App, nodes int, proto filaments.Protocol, mirage bool) *Result {
	window := filaments.Duration(0)
	if !mirage {
		window = -1
	}
	par := New(Config{CollectDigests: true, CheckDeclared: true})
	app.Run(AppConfig{Nodes: nodes, Protocol: proto, MirageWindow: window, Monitor: par})
	seq := New(Config{CollectDigests: true})
	app.Run(AppConfig{Nodes: 1, Protocol: proto, MirageWindow: window, Monitor: seq})
	res := &Result{App: app.Name, Nodes: nodes, Protocol: proto, Model: ModelOf(proto),
		Mirage: mirage, Parallel: par.Report()}
	res.Mismatches, res.Epochs, res.Err = CompareEpochs(res.Parallel.Epochs, seq.Report().Epochs)
	if res.Err == nil && res.Model == ReleaseConsistency {
		// RC obligation: every interval's diffs reached their homes before
		// the fold. A nonzero count means a release was skipped or a flush
		// escaped Quiesce — the digests above would be comparing a frame
		// that is still missing merges.
		for _, ed := range res.Parallel.Epochs {
			if ed.Unflushed != 0 {
				res.Err = fmt.Errorf("check: epoch %d: %d block(s) with unflushed multi-writer state at the quiescent instant",
					ed.Epoch, ed.Unflushed)
				break
			}
		}
	}
	return res
}
