package cluster

import (
	"testing"

	"filaments/internal/obs"
)

// The membership tests drive the state machine on a virtual clock —
// plain int64 nanoseconds — so every decay path is exact and
// deterministic, per the package's explicit-clock design.

const (
	sec     = int64(1_000_000_000)
	suspect = 2 * sec
	dead    = 6 * sec
)

func newMS(t *testing.T) *Membership {
	t.Helper()
	return New(Policy{SuspectAfter: suspect, DeadAfter: dead}, obs.NewRegistry())
}

func state(t *testing.T, ms *Membership, addr string) State {
	t.Helper()
	m, ok := ms.View().Find(addr)
	if !ok {
		t.Fatalf("member %q not in view", addr)
	}
	return m.State
}

func TestJoinIsIdempotent(t *testing.T) {
	ms := newMS(t)
	ms.Join("a:1", 0)
	gen := ms.Generation()
	if gen == 0 {
		t.Fatal("join did not bump the generation")
	}
	// A retransmitted join must not look like a membership change.
	m := ms.Join("a:1", sec)
	if ms.Generation() != gen {
		t.Fatalf("duplicate join bumped generation %d -> %d", gen, ms.Generation())
	}
	if m.Incarnation != 1 || m.LastBeat != sec {
		t.Fatalf("duplicate join: incarnation %d lastbeat %d, want 1, %d", m.Incarnation, m.LastBeat, sec)
	}
}

func TestDecayAliveSuspectDead(t *testing.T) {
	ms := newMS(t)
	ms.Join("a:1", 0)
	if ms.Tick(suspect - 1) {
		t.Fatal("tick before SuspectAfter changed state")
	}
	if !ms.Tick(suspect) || state(t, ms, "a:1") != Suspect {
		t.Fatalf("no Alive->Suspect at SuspectAfter; state %v", state(t, ms, "a:1"))
	}
	if ms.Tick(dead - 1) {
		t.Fatal("tick before DeadAfter changed state")
	}
	if !ms.Tick(dead) || state(t, ms, "a:1") != Dead {
		t.Fatalf("no Suspect->Dead at DeadAfter; state %v", state(t, ms, "a:1"))
	}
}

func TestHeartbeatRevivesSuspect(t *testing.T) {
	ms := newMS(t)
	ms.Join("a:1", 0)
	ms.Tick(suspect)
	gen := ms.Generation()
	g, known := ms.Heartbeat("a:1", suspect+sec)
	if !known || g != gen+1 || state(t, ms, "a:1") != Alive {
		t.Fatalf("beat on Suspect: known=%v gen=%d state=%v, want true, %d, alive", known, g, state(t, ms, "a:1"), gen+1)
	}
	// Thresholds measure from the latest beat, not the join.
	if ms.Tick(suspect + 2*sec) {
		t.Fatal("fresh beat did not reset the decay clock")
	}
}

func TestHeartbeatRefusedForDeadAndUnknown(t *testing.T) {
	ms := newMS(t)
	if _, known := ms.Heartbeat("ghost:1", 0); known {
		t.Fatal("beat from a never-joined node was accepted")
	}
	ms.Join("a:1", 0)
	ms.Tick(suspect)
	ms.Tick(dead)
	if _, known := ms.Heartbeat("a:1", dead+1); known {
		t.Fatal("beat resurrected a Dead member without a rejoin")
	}
	if state(t, ms, "a:1") != Dead {
		t.Fatal("refused beat still changed state")
	}
}

func TestRejoinBumpsIncarnation(t *testing.T) {
	ms := newMS(t)
	ms.Join("a:1", 0)
	ms.Tick(suspect)
	ms.Tick(dead)
	m := ms.Join("a:1", dead+sec)
	if m.Incarnation != 2 || m.State != Alive {
		t.Fatalf("rejoin after death: incarnation %d state %v, want 2, alive", m.Incarnation, m.State)
	}
	if _, known := ms.Heartbeat("a:1", dead+2*sec); !known {
		t.Fatal("beat after rejoin refused")
	}
}

func TestLeaveIsVoluntaryAndIdempotent(t *testing.T) {
	ms := newMS(t)
	ms.Join("a:1", 0)
	ms.Join("b:2", 0)
	gen := ms.Leave("a:1", sec)
	if state(t, ms, "a:1") != Left {
		t.Fatal("leave did not mark the member Left")
	}
	if g := ms.Leave("a:1", 2*sec); g != gen {
		t.Fatalf("duplicate leave bumped generation %d -> %d", gen, g)
	}
	if _, known := ms.Heartbeat("a:1", 2*sec); known {
		t.Fatal("beat from a Left member was accepted")
	}
	// Left members never decay further; only live ones do. (Decay is one
	// step per tick: Suspect on the first, Dead on the next.)
	ms.Tick(dead * 10)
	ms.Tick(dead * 20)
	if state(t, ms, "a:1") != Left {
		t.Fatal("Left member decayed")
	}
	if state(t, ms, "b:2") != Dead {
		t.Fatal("live member did not decay")
	}
}

func TestViewIsASnapshot(t *testing.T) {
	ms := newMS(t)
	ms.Join("a:1", 0)
	v := ms.View()
	ms.Join("b:2", 0)
	if len(v.Members) != 1 {
		t.Fatal("view mutated after snapshot")
	}
	if v.Alive() != 1 {
		t.Fatalf("alive = %d, want 1", v.Alive())
	}
	if _, ok := v.Find("b:2"); ok {
		t.Fatal("snapshot sees later join")
	}
	w := ms.View()
	if w.Generation <= v.Generation {
		t.Fatalf("generation did not advance: %d then %d", v.Generation, w.Generation)
	}
}
