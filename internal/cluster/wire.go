package cluster

import (
	"filaments/internal/rtnode"
)

// Membership wire protocol.
//
// Join/Beat/Leave are reliable request/reply calls on the same udptrans
// endpoints that carry kernel traffic, registered under service ids
// above the lane space (rtnode.MaxLanes*rtnode.LaneStride = 0x1000), so
// a daemon needs exactly one socket for both roles. Payloads use the
// binary wire codec under tags 48–53 (see the tag map in
// rtnode/codec.go); gob registration keeps the `-codec=gob` fallback
// working.

// Service ids for the membership services on the coordinator's endpoint.
const (
	SvcJoin  = 0xF0A0
	SvcBeat  = 0xF0A1
	SvcLeave = 0xF0A2
)

// JoinMsg announces a node to the coordinator. Addr is the address the
// node's kernel endpoint serves on — the membership identity.
type JoinMsg struct {
	Addr string
}

// JoinAck acknowledges a join with the resulting membership generation
// and the policy's beat deadline, so agents pace heartbeats from the
// coordinator's thresholds rather than guessing.
type JoinAck struct {
	Gen          uint64
	SuspectAfter int64 // Policy.SuspectAfter, ns; beat several times per
}

// BeatMsg is a heartbeat from a joined node.
type BeatMsg struct {
	Addr string
}

// BeatAck carries the membership generation and whether the coordinator
// still recognizes the sender. Known=false tells the agent to rejoin
// (the coordinator restarted, or condemned this node while it was
// partitioned away).
type BeatAck struct {
	Gen   uint64
	Known bool
}

// LeaveMsg deregisters a node voluntarily (clean shutdown).
type LeaveMsg struct {
	Addr string
}

// LeaveAck acknowledges a leave.
type LeaveAck struct {
	Gen uint64
}

func init() {
	rtnode.RegisterWire(JoinMsg{}, JoinAck{}, BeatMsg{}, BeatAck{}, LeaveMsg{}, LeaveAck{})

	rtnode.RegisterWireCodec(JoinMsg{}, 48,
		func(e *rtnode.Enc, v any) { e.String(v.(JoinMsg).Addr) },
		func(d *rtnode.Dec) any { return JoinMsg{Addr: d.String()} })
	rtnode.RegisterWireCodec(JoinAck{}, 49,
		func(e *rtnode.Enc, v any) {
			a := v.(JoinAck)
			e.Uvarint(a.Gen)
			e.Varint(a.SuspectAfter)
		},
		func(d *rtnode.Dec) any {
			var a JoinAck
			a.Gen = d.Uvarint()
			a.SuspectAfter = d.Varint()
			return a
		})
	rtnode.RegisterWireCodec(BeatMsg{}, 50,
		func(e *rtnode.Enc, v any) { e.String(v.(BeatMsg).Addr) },
		func(d *rtnode.Dec) any { return BeatMsg{Addr: d.String()} })
	rtnode.RegisterWireCodec(BeatAck{}, 51,
		func(e *rtnode.Enc, v any) {
			a := v.(BeatAck)
			e.Uvarint(a.Gen)
			e.Bool(a.Known)
		},
		func(d *rtnode.Dec) any {
			var a BeatAck
			a.Gen = d.Uvarint()
			a.Known = d.Bool()
			return a
		})
	rtnode.RegisterWireCodec(LeaveMsg{}, 52,
		func(e *rtnode.Enc, v any) { e.String(v.(LeaveMsg).Addr) },
		func(d *rtnode.Dec) any { return LeaveMsg{Addr: d.String()} })
	rtnode.RegisterWireCodec(LeaveAck{}, 53,
		func(e *rtnode.Enc, v any) { e.Uvarint(v.(LeaveAck).Gen) },
		func(d *rtnode.Dec) any { return LeaveAck{Gen: d.Uvarint()} })
}

// DecodeWire decodes a membership payload defensively. Kernel traffic
// may assume validated peers and panic on corruption, but the membership
// services are the cluster's front door — any host can send a datagram
// at them — so a malformed payload must be a dropped request, not a
// crashed coordinator.
func DecodeWire(b []byte) (v any, ok bool) {
	defer func() {
		if recover() != nil {
			v, ok = nil, false
		}
	}()
	return rtnode.UnmarshalPayload(b), true
}
