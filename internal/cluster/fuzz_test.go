package cluster

import (
	"bytes"
	"encoding/gob"
	"reflect"
	"testing"

	"filaments/internal/rtnode"
)

// FuzzMembershipRoundTrip frames every membership payload (wire tags
// 48–53) under both codecs the transport supports — the legacy gob
// framing and the binary codec — and asserts each decodes to the
// original value and that the two agree, the same differential
// discipline as dsm's FuzzLRCFlushRoundTrip. The membership messages
// are the cluster's front door, so their wire behavior is pinned per
// message rather than trusted to the shared registry.
func FuzzMembershipRoundTrip(f *testing.F) {
	f.Add("", uint64(0), int64(0), false)
	f.Add("127.0.0.1:9000", uint64(1), int64(50_000_000), true)
	f.Add("host-with-a-fairly-long-name.example.com:65535", uint64(1)<<63, int64(-1), false)
	f.Add(string(bytes.Repeat([]byte{0xff}, 300)), uint64(300), int64(1)<<40, true)
	f.Fuzz(func(t *testing.T, addr string, gen uint64, after int64, known bool) {
		msgs := []any{
			JoinMsg{Addr: addr},
			JoinAck{Gen: gen, SuspectAfter: after},
			BeatMsg{Addr: addr},
			BeatAck{Gen: gen, Known: known},
			LeaveMsg{Addr: addr},
			LeaveAck{Gen: gen},
		}
		for _, in := range msgs {
			// Leg 1: the legacy gob framing, exactly as CodecGob sends it.
			var buf bytes.Buffer
			framed := in
			if err := gob.NewEncoder(&buf).Encode(&framed); err != nil {
				t.Fatalf("%T: gob encode: %v", in, err)
			}
			var gobGot any
			if err := gob.NewDecoder(bytes.NewReader(buf.Bytes())).Decode(&gobGot); err != nil {
				t.Fatalf("%T: gob decode: %v", in, err)
			}
			if !reflect.DeepEqual(gobGot, in) {
				t.Fatalf("gob round trip changed value:\n sent %#v\n got  %#v", in, gobGot)
			}

			// Leg 2: the binary codec, exactly as CodecBinary sends it.
			binGot := rtnode.UnmarshalPayload(rtnode.MarshalPayload(in))
			if !reflect.DeepEqual(binGot, in) {
				t.Fatalf("binary round trip changed value:\n sent %#v\n got  %#v", in, binGot)
			}

			// Differential: both codecs must deliver the identical struct.
			if !reflect.DeepEqual(binGot, gobGot) {
				t.Fatalf("codecs disagree:\n gob    %#v\n binary %#v", gobGot, binGot)
			}
		}
	})
}

// FuzzMembershipDecode feeds raw bytes into the defensive decode path
// the coordinator uses for unauthenticated datagrams: DecodeWire must
// reject or accept without panicking, and anything it accepts must
// re-encode and re-decode to the same value.
func FuzzMembershipDecode(f *testing.F) {
	f.Add([]byte{})
	f.Add([]byte{48})
	f.Add([]byte{49, 0x00})
	f.Add([]byte{51, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0x0f})
	f.Add(rtnode.MarshalPayload(JoinMsg{Addr: "n1:9000"}))
	f.Add(rtnode.MarshalPayload(JoinAck{Gen: 7, SuspectAfter: 1 << 30}))
	f.Add(rtnode.MarshalPayload(BeatAck{Gen: 9, Known: true}))
	f.Add(rtnode.MarshalPayload(LeaveAck{Gen: 3}))
	f.Fuzz(func(t *testing.T, raw []byte) {
		v, ok := DecodeWire(raw)
		if !ok || v == nil {
			return
		}
		switch v.(type) {
		case JoinMsg, JoinAck, BeatMsg, BeatAck, LeaveMsg, LeaveAck:
		default:
			return // some other registered payload's tag: not ours to pin
		}
		again, ok := DecodeWire(rtnode.MarshalPayload(v))
		if !ok {
			t.Fatalf("re-encoding an accepted payload produced a rejected buffer: %#v", v)
		}
		if !reflect.DeepEqual(again, v) {
			t.Fatalf("decode/encode/decode not idempotent:\n first  %#v\n second %#v", v, again)
		}
	})
}
