package daemon

import (
	"context"
	"fmt"
	"net"
	"sync"
	"time"

	"filaments/internal/cluster"
	"filaments/internal/rtnode"
	"filaments/internal/udptrans"
)

// Agent is a worker node's membership client: it joins the coordinator,
// heartbeats at the pace the coordinator's policy dictates, rejoins when
// the coordinator stops recognizing it (restart, or condemned during a
// partition), and leaves cleanly on Close.
type Agent struct {
	ep    *udptrans.Endpoint
	owned bool // the agent opened ep and must close it
	self  string
	coord *net.UDPAddr

	stop     chan struct{}
	done     chan struct{}
	stopOnce sync.Once

	mu  sync.Mutex
	gen uint64 // last membership generation acked
}

// NewAgent builds an agent that announces ep's address to the
// coordinator at coord. ep may be nil: the agent then binds its own
// loopback endpoint purely as a membership identity. The endpoint uses
// the transport's default retry budget (a few seconds), so a dead
// coordinator shows up as failed calls, not hung ones.
func NewAgent(coord string, ep *udptrans.Endpoint) (*Agent, error) {
	dst, err := net.ResolveUDPAddr("udp", coord)
	if err != nil {
		return nil, fmt.Errorf("daemon: coordinator address: %w", err)
	}
	a := &Agent{coord: dst, ep: ep, stop: make(chan struct{}), done: make(chan struct{})}
	if a.ep == nil {
		a.ep, err = udptrans.Listen("127.0.0.1:0", udptrans.Options{})
		if err != nil {
			return nil, err
		}
		a.owned = true
	}
	a.self = a.ep.Addr().String()
	return a, nil
}

// Self returns the address this agent is known by in the membership.
func (a *Agent) Self() string { return a.self }

// Generation returns the last membership generation the coordinator
// acked to this agent (0 before the first successful join).
func (a *Agent) Generation() uint64 {
	a.mu.Lock()
	defer a.mu.Unlock()
	return a.gen
}

func (a *Agent) setGen(g uint64) {
	a.mu.Lock()
	a.gen = g
	a.mu.Unlock()
}

// Start runs the join/heartbeat loop until Close. Call once.
func (a *Agent) Start() {
	go a.loop()
}

// call performs one membership RPC with a bounded deadline, decoding
// the ack defensively (the reply crosses the open network too).
func (a *Agent) call(svc uint16, msg any) (any, error) {
	ctx, cancel := context.WithTimeout(context.Background(), 2*time.Second)
	defer cancel()
	reply, err := a.ep.CallContext(ctx, a.coord, svc, rtnode.MarshalPayload(msg))
	if err != nil {
		return nil, err
	}
	v, ok := cluster.DecodeWire(reply)
	if !ok {
		return nil, fmt.Errorf("daemon: malformed ack from coordinator")
	}
	return v, nil
}

// join announces the agent; it returns the beat interval derived from
// the coordinator's policy (several beats per SuspectAfter, so one lost
// datagram never suspects a healthy node).
func (a *Agent) join() (time.Duration, error) {
	v, err := a.call(cluster.SvcJoin, cluster.JoinMsg{Addr: a.self})
	if err != nil {
		return 0, err
	}
	ack, ok := v.(cluster.JoinAck)
	if !ok {
		return 0, fmt.Errorf("daemon: unexpected join ack %T", v)
	}
	a.setGen(ack.Gen)
	beat := time.Duration(ack.SuspectAfter) / 3
	if beat < 50*time.Millisecond {
		beat = 50 * time.Millisecond
	}
	return beat, nil
}

func (a *Agent) loop() {
	defer close(a.done)
	const retry = 500 * time.Millisecond
	var beatEvery time.Duration
	for {
		// Join (or rejoin) until it sticks.
		for {
			d, err := a.join()
			if err == nil {
				beatEvery = d
				break
			}
			select {
			case <-a.stop:
				return
			case <-time.After(retry):
			}
		}
		// Beat until told to rejoin or to stop. Transport errors don't
		// abandon the loop: the coordinator may be briefly unreachable,
		// and its failure detector is the judge of our liveness, not us.
		rejoin := false
		for !rejoin {
			select {
			case <-a.stop:
				return
			case <-time.After(beatEvery):
			}
			v, err := a.call(cluster.SvcBeat, cluster.BeatMsg{Addr: a.self})
			if err != nil {
				continue
			}
			ack, ok := v.(cluster.BeatAck)
			if !ok {
				continue
			}
			a.setGen(ack.Gen)
			rejoin = !ack.Known
		}
	}
}

// Close leaves the membership (best effort), stops the loop, and closes
// the endpoint if the agent owns it. Idempotent.
func (a *Agent) Close() {
	a.stopOnce.Do(func() {
		close(a.stop)
		<-a.done
		if v, err := a.call(cluster.SvcLeave, cluster.LeaveMsg{Addr: a.self}); err == nil {
			if ack, ok := v.(cluster.LeaveAck); ok {
				a.setGen(ack.Gen)
			}
		}
		if a.owned {
			a.ep.Close() //nolint:errcheck // best-effort shutdown
		}
	})
}
