package daemon

import (
	"sync"
	"testing"
	"time"

	"filaments/internal/cluster"
)

// fastPolicy makes failure detection visible inside a test's patience.
func fastPolicy() cluster.Policy {
	return cluster.Policy{
		SuspectAfter: int64(300 * time.Millisecond),
		DeadAfter:    int64(900 * time.Millisecond),
	}
}

func startCoordinator(t *testing.T, cfg Config) *Coordinator {
	t.Helper()
	co, err := NewCoordinator(cfg)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { co.Close() })
	return co
}

// waitState polls until addr reaches want in the coordinator's view.
func waitState(t *testing.T, co *Coordinator, addr string, want cluster.State) {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for time.Now().Before(deadline) {
		if m, ok := co.View().Find(addr); ok && m.State == want {
			return
		}
		time.Sleep(20 * time.Millisecond)
	}
	m, ok := co.View().Find(addr)
	t.Fatalf("member %q never reached %v (now %v, present %v)", addr, want, m.State, ok)
}

// TestAgentsJoinBeatLeaveAndTimeOut walks two agents through the whole
// membership lifecycle against a live coordinator: join (alive), clean
// leave (left), and unclean death (suspect, then dead, by heartbeat
// timeout) — then a rejoin under a fresh incarnation.
func TestAgentsJoinBeatLeaveAndTimeOut(t *testing.T) {
	co := startCoordinator(t, Config{
		Nodes:     2,
		Policy:    fastPolicy(),
		TickEvery: 50 * time.Millisecond,
	})
	coord := co.Addr().String()

	a1, err := NewAgent(coord, nil)
	if err != nil {
		t.Fatal(err)
	}
	a2, err := NewAgent(coord, nil)
	if err != nil {
		t.Fatal(err)
	}
	a1.Start()
	a2.Start()
	waitState(t, co, a1.Self(), cluster.Alive)
	waitState(t, co, a2.Self(), cluster.Alive)
	if a1.Generation() == 0 {
		t.Fatal("agent never learned a generation")
	}

	// Clean shutdown: the agent leaves; the coordinator marks it Left
	// immediately rather than waiting out the failure detector.
	a1.Close()
	waitState(t, co, a1.Self(), cluster.Left)

	// Unclean death: stop a2's beats without a leave by tearing its loop
	// down after its endpoint is gone — the coordinator must decay it
	// Suspect and then Dead on heartbeat silence alone.
	a2.ep.Close()
	waitState(t, co, a2.Self(), cluster.Suspect)
	waitState(t, co, a2.Self(), cluster.Dead)
	a2.Close()

	// A new instance reclaiming the identity rejoins under a bumped
	// incarnation, so its beats are distinguishable from the ghost's.
	a3, err := NewAgent(coord, nil)
	if err != nil {
		t.Fatal(err)
	}
	a3.Start()
	defer a3.Close()
	waitState(t, co, a3.Self(), cluster.Alive)
	m, _ := co.View().Find(a2.Self())
	if m.State != cluster.Dead {
		t.Fatalf("dead identity mutated by unrelated join: %v", m.State)
	}
}

// TestCoordinatorRunsConcurrentJobs is the service acceptance scenario:
// two jobs submitted together on one live cluster, running concurrently
// on separate lanes, both verified against the sequential reference,
// each with its own metrics, followed by a clean shutdown.
func TestCoordinatorRunsConcurrentJobs(t *testing.T) {
	co := startCoordinator(t, Config{Nodes: 4, MaxConcurrent: 2})

	specs := []JobSpec{
		{App: "jacobi", N: 48, Iters: 12, Trace: true},
		{App: "jacobi", N: 32, Iters: 20},
	}
	var jobs []*Job
	for _, s := range specs {
		j, err := co.Submit(s)
		if err != nil {
			t.Fatal(err)
		}
		jobs = append(jobs, j)
	}
	var wg sync.WaitGroup
	for _, j := range jobs {
		wg.Add(1)
		go func() {
			defer wg.Done()
			select {
			case <-j.Done():
			case <-time.After(120 * time.Second):
				t.Errorf("%s never finished", j.ID)
			}
		}()
	}
	wg.Wait()
	if t.Failed() {
		t.FailNow()
	}
	lanes := map[int]bool{}
	for _, j := range jobs {
		if j.State() != JobDone {
			t.Fatalf("%s state %v error %q", j.ID, j.State(), j.Err())
		}
		res := j.Result()
		if res == nil || !res.OK {
			t.Fatalf("%s result not verified: %+v", j.ID, res)
		}
		if len(res.Metrics) == 0 {
			t.Fatalf("%s has no per-job metrics", j.ID)
		}
		v := j.view()
		lanes[v.Lane] = true
	}
	if len(lanes) != len(jobs) {
		t.Fatalf("concurrent jobs shared a lane: %v", lanes)
	}
	if jobs[0].Trace() == nil {
		t.Fatal("traced job produced no trace")
	}
	if jobs[1].Trace() != nil {
		t.Fatal("untraced job produced a trace")
	}
	if err := co.Close(); err != nil {
		t.Fatalf("clean shutdown failed: %v", err)
	}
}

// TestSubmitValidation exercises the scheduler-side rejections.
func TestSubmitValidation(t *testing.T) {
	co := startCoordinator(t, Config{Nodes: 1})
	if _, err := co.Submit(JobSpec{App: "fizzbuzz"}); err == nil {
		t.Fatal("unknown app accepted")
	}
	if _, err := co.Submit(JobSpec{App: "jacobi", Protocol: "telepathy"}); err == nil {
		t.Fatal("unknown protocol accepted")
	}
	if _, err := co.Submit(JobSpec{}); err == nil {
		t.Fatal("empty spec accepted")
	}
	if err := co.Close(); err != nil {
		t.Fatal(err)
	}
	if _, err := co.Submit(JobSpec{App: "jacobi"}); err == nil {
		t.Fatal("submission accepted after shutdown")
	}
}
